package def

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/scan"
)

// FuzzReadDEF asserts the crash-proofing contract of the DEF reader: it
// never panics, every failure is a structured *scan.ParseError, and any
// input it accepts re-emits as a write->read->write fixpoint.
func FuzzReadDEF(f *testing.F) {
	b := designs.Generate(designs.TinySpec(7))
	var seed bytes.Buffer
	if err := Write(&seed, b.Design); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("VERSION 5.8 ;\nDESIGN top ;\nUNITS DISTANCE MICRONS 1000 ;\n" +
		"DIEAREA ( 0 0 ) ( 100000 100000 ) ;\n" +
		"ROW CORE_AREA site 0 0 N DO 100 BY 50 STEP 400 1400 ;\nEND DESIGN\n")
	f.Add("DESIGN d ;\nNETS 1 ;\n- n1 ( PIN a ) + WEIGHT 3 + USE CLOCK ;\nEND NETS\n")
	f.Add("DESIGN d ;\nROW r s 0 0 N DO 1 BY 1 STEP\n")
	f.Add("DESIGN d ;\nCOMPONENTS 1 ;\n- u1 INV_X1 + PLACED ( 12000 2800 ) N ;\nEND COMPONENTS\n")
	f.Fuzz(func(t *testing.T, in string) {
		d, _, err := ParseWith(strings.NewReader(in), designs.Lib(), Options{File: "fuzz.def"})
		// Lenient mode must also never panic, whatever strict mode decided.
		if _, _, lerr := ParseWith(strings.NewReader(in), designs.Lib(),
			Options{File: "fuzz.def", Lenient: true}); lerr != nil {
			requireParseError(t, lerr)
		}
		if err != nil {
			requireParseError(t, err)
			return
		}
		var w1 bytes.Buffer
		if err := Write(&w1, d); err != nil {
			t.Fatalf("write after accepting parse: %v", err)
		}
		d2, err := Parse(bytes.NewReader(w1.Bytes()), designs.Lib())
		if err != nil {
			t.Fatalf("re-parse of own output failed: %v\noutput:\n%s", err, w1.String())
		}
		var w2 bytes.Buffer
		if err := Write(&w2, d2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("write->read->write is not a fixpoint\n--- first:\n%s--- second:\n%s",
				w1.String(), w2.String())
		}
	})
}

func requireParseError(t *testing.T, err error) {
	t.Helper()
	var pe *scan.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is not a *scan.ParseError: %T: %v", err, err)
	}
	if pe.File == "" {
		t.Fatalf("ParseError without file context: %v", pe)
	}
}
