package def

import (
	"errors"
	"strings"
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/scan"
)

// TestMalformedInputs drives the strict parser through every former panic
// or silent-default site and checks the structured error carries the right
// file and line.
func TestMalformedInputs(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		line    int
		msgPart string
	}{
		{"row twelve fields", "DESIGN d ;\nROW r site 0 0 N DO 10 BY 2 STEP 400\n", 2, "fields"},
		{"row bad keyword", "DESIGN d ;\nROW r site 0 0 N DO 10 XX 2 STEP 400 1400 ;\n", 2, "DO/BY/STEP"},
		{"row bad float", "DESIGN d ;\nROW r site zero 0 N DO 1 BY 1 STEP 400 1400 ;\n", 2, "number"},
		{"row bad count", "DESIGN d ;\nROW r site 0 0 N DO 1.5 BY 1 STEP 400 1400 ;\n", 2, "integer"},
		{"row huge extent", "DESIGN d ;\nROW r site 0 0 N DO 1000000 BY 1 STEP 99999999999 1400 ;\n", 2, "past"},
		{"units bad", "VERSION 5.8 ;\nDESIGN d ;\nUNITS DISTANCE MICRONS zero ;\n", 3, "number"},
		{"units range", "DESIGN d ;\nUNITS DISTANCE MICRONS 0 ;\n", 2, "range"},
		{"diearea short", "DESIGN d ;\nDIEAREA ( 0 0 ) ;\n", 2, "4 coordinates"},
		{"diearea bad coord", "DESIGN d ;\nDIEAREA ( 0 x ) ( 1 1 ) ;\n", 2, "number"},
		{"duplicate design", "DESIGN a ;\nDESIGN b ;\n", 2, "duplicate"},
		{"component placed truncated", "DESIGN d ;\nCOMPONENTS 1 ;\n- u INV_X1 + PLACED ( 1\n", 3, "( x y )"},
		{"component bad coord", "DESIGN d ;\nCOMPONENTS 1 ;\n- u INV_X1 + PLACED ( a 2 ) N ;\n", 3, "number"},
		{"pin placed bad", "DESIGN d ;\nPINS 1 ;\n- p + NET p + DIRECTION INPUT + PLACED ( 1 b ) N ;\n", 3, "number"},
		{"net truncated conn", "DESIGN d ;\nCOMPONENTS 1 ;\n- u INV_X1 ;\nEND COMPONENTS\nNETS 1 ;\n- n ( u\n", 6, "truncated"},
		{"net bad weight", "DESIGN d ;\nNETS 1 ;\n- n ( PIN a ) + WEIGHT x ;\n", 3, "integer"},
		{"weight fractional", "DESIGN d ;\nNETS 1 ;\n- n ( PIN a ) + WEIGHT 2.5 ;\n", 3, "integer"},
		{"coord overflow", "DESIGN d ;\nDIEAREA ( 0 0 ) ( 99999999999999 1 ) ;\n", 2, "range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.in), designs.Lib())
			if err == nil {
				t.Fatalf("parse accepted %q", tc.in)
			}
			var pe *scan.ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error is %T, not *scan.ParseError: %v", err, err)
			}
			if pe.File != "def" {
				t.Fatalf("file = %q", pe.File)
			}
			if pe.Line != tc.line {
				t.Fatalf("line = %d, want %d (%v)", pe.Line, tc.line, pe)
			}
			if !strings.Contains(pe.Msg, tc.msgPart) {
				t.Fatalf("msg %q does not mention %q", pe.Msg, tc.msgPart)
			}
		})
	}
}

// TestLenientMode checks that recoverable field errors become warnings and
// the parse still succeeds, while structural errors stay fatal.
func TestLenientMode(t *testing.T) {
	in := "DESIGN d ;\n" +
		"DIEAREA ( 0 0 ) ( 1 ) ;\n" + // tolerable: bad geometry
		"ROW r site 0 0 N DO 10 BY 2 STEP 400\n" + // tolerable: short ROW
		"COMPONENTS 1 ;\n" +
		"- u INV_X1 + PLACED ( x 2 ) N ;\n" + // tolerable: bad placement
		"END COMPONENTS\nEND DESIGN\n"
	d, warns, err := ParseWith(strings.NewReader(in), designs.Lib(), Options{Lenient: true})
	if err != nil {
		t.Fatalf("lenient parse failed: %v", err)
	}
	if len(warns) != 3 {
		t.Fatalf("warnings = %d, want 3: %v", len(warns), warns)
	}
	if d.Instance("u") == nil || d.Instance("u").Placed {
		t.Fatal("instance should exist unplaced")
	}
	for i, wantLine := range []int{2, 3, 5} {
		if warns[i].Line != wantLine {
			t.Fatalf("warning %d line = %d, want %d", i, warns[i].Line, wantLine)
		}
	}
	// Structural errors stay fatal even in lenient mode.
	if _, _, err := ParseWith(strings.NewReader("DESIGN d ;\nCOMPONENTS 1 ;\n- u NO_SUCH ;\n"),
		designs.Lib(), Options{Lenient: true}); err == nil {
		t.Fatal("unknown master must stay fatal in lenient mode")
	}
	if _, _, err := ParseWith(strings.NewReader("DESIGN d ;\nUNITS DISTANCE MICRONS x ;\n"),
		designs.Lib(), Options{Lenient: true}); err == nil {
		t.Fatal("corrupt UNITS must stay fatal in lenient mode")
	}
}
