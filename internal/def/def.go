// Package def reads and writes the DEF subset carrying the floorplan view:
// die area, placed/fixed components, pin locations, and net connectivity.
// Coordinates are stored in DEF database units (microns x 1000).
package def

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ppaclust/internal/netlist"
)

const dbu = 1000.0 // database units per micron

// Write emits the design's floorplan and netlist as DEF.
func Write(w io.Writer, d *netlist.Design) error {
	fmt.Fprintf(w, "VERSION 5.8 ;\nDESIGN %s ;\nUNITS DISTANCE MICRONS %d ;\n", d.Name, int(dbu))
	fmt.Fprintf(w, "DIEAREA ( %d %d ) ( %d %d ) ;\n",
		du(d.Die.X0), du(d.Die.Y0), du(d.Die.X1), du(d.Die.Y1))
	// A single summary ROW carries the core box and site geometry.
	if d.Core.Area() > 0 && d.RowHeight > 0 && d.SiteWidth > 0 {
		nSites := int(d.Core.W() / d.SiteWidth)
		nRows := int(d.Core.H() / d.RowHeight)
		fmt.Fprintf(w, "ROW CORE_AREA coresite %d %d N DO %d BY %d STEP %d %d ;\n",
			du(d.Core.X0), du(d.Core.Y0), nSites, nRows, du(d.SiteWidth), du(d.RowHeight))
	}
	fmt.Fprintf(w, "COMPONENTS %d ;\n", len(d.Insts))
	for _, inst := range d.Insts {
		state := "UNPLACED"
		loc := ""
		if inst.Fixed {
			state = "FIXED"
		} else if inst.Placed {
			state = "PLACED"
		}
		if inst.Placed || inst.Fixed {
			loc = fmt.Sprintf(" ( %d %d ) N", du(inst.X), du(inst.Y))
		}
		fmt.Fprintf(w, "- %s %s + %s%s ;\n", escape(inst.Name), inst.Master.Name, state, loc)
	}
	fmt.Fprintln(w, "END COMPONENTS")
	fmt.Fprintf(w, "PINS %d ;\n", len(d.Ports))
	for _, p := range d.Ports {
		dir := "INPUT"
		switch p.Dir {
		case netlist.DirOutput:
			dir = "OUTPUT"
		case netlist.DirInout:
			dir = "INOUT"
		}
		loc := ""
		if p.Placed {
			loc = fmt.Sprintf(" + PLACED ( %d %d ) N", du(p.X), du(p.Y))
		}
		fmt.Fprintf(w, "- %s + NET %s + DIRECTION %s%s ;\n", escape(p.Name), escape(p.Name), dir, loc)
	}
	fmt.Fprintln(w, "END PINS")
	fmt.Fprintf(w, "NETS %d ;\n", len(d.Nets))
	for _, n := range d.Nets {
		fmt.Fprintf(w, "- %s", escape(n.Name))
		for _, pr := range n.Pins {
			if pr.IsPort() {
				fmt.Fprintf(w, " ( PIN %s )", escape(pr.Pin))
			} else {
				fmt.Fprintf(w, " ( %s %s )", escape(d.Insts[pr.Inst].Name), pr.Pin)
			}
		}
		if n.Weight != 1 {
			fmt.Fprintf(w, " + WEIGHT %d", int(n.Weight))
		}
		if n.Clock {
			fmt.Fprintf(w, " + USE CLOCK")
		}
		fmt.Fprintln(w, " ;")
	}
	fmt.Fprintln(w, "END NETS")
	_, err := fmt.Fprintln(w, "END DESIGN")
	return err
}

func du(v float64) int { return int(v*dbu + 0.5) }

// escape replaces characters DEF treats as separators inside names.
func escape(s string) string { return strings.ReplaceAll(s, " ", "_") }

// Parse reads DEF into a new design bound to lib.
func Parse(r io.Reader, lib *netlist.Library) (*netlist.Design, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 4*1024*1024), 4*1024*1024)
	var d *netlist.Design
	section := ""
	units := dbu
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		f := strings.Fields(line)
		switch {
		case f[0] == "DESIGN" && len(f) >= 2 && section == "":
			d = netlist.NewDesign(f[1], lib)
		case f[0] == "UNITS" && len(f) >= 4:
			if v, err := strconv.ParseFloat(f[3], 64); err == nil && v > 0 {
				units = v
			}
		case f[0] == "DIEAREA":
			if d == nil {
				return nil, fmt.Errorf("def: line %d: DIEAREA before DESIGN", lineNo)
			}
			nums := numbers(f)
			if len(nums) >= 4 {
				d.Die = netlist.Rect{X0: nums[0] / units, Y0: nums[1] / units,
					X1: nums[2] / units, Y1: nums[3] / units}
				d.Core = d.Die
			}
		case f[0] == "ROW" && len(f) >= 12:
			if d == nil {
				return nil, fmt.Errorf("def: line %d: ROW before DESIGN", lineNo)
			}
			x0, _ := strconv.ParseFloat(f[3], 64)
			y0, _ := strconv.ParseFloat(f[4], 64)
			nx, _ := strconv.Atoi(f[7])
			ny, _ := strconv.Atoi(f[9])
			sw, _ := strconv.ParseFloat(f[11], 64)
			rh, _ := strconv.ParseFloat(f[12], 64)
			d.SiteWidth = sw / units
			d.RowHeight = rh / units
			d.Core = netlist.Rect{
				X0: x0 / units, Y0: y0 / units,
				X1: x0/units + float64(nx)*d.SiteWidth,
				Y1: y0/units + float64(ny)*d.RowHeight,
			}
		case f[0] == "COMPONENTS":
			section = "COMPONENTS"
		case f[0] == "PINS":
			section = "PINS"
		case f[0] == "NETS":
			section = "NETS"
		case f[0] == "END":
			if len(f) >= 2 && f[1] == section {
				section = ""
			}
		case f[0] == "-":
			if d == nil {
				return nil, fmt.Errorf("def: line %d: item before DESIGN", lineNo)
			}
			switch section {
			case "COMPONENTS":
				if err := parseComponent(d, lib, f, units, lineNo); err != nil {
					return nil, err
				}
			case "PINS":
				if err := parsePin(d, f, units, lineNo); err != nil {
					return nil, err
				}
			case "NETS":
				if err := parseNet(d, f, lineNo); err != nil {
					return nil, err
				}
			}
		}
	}
	if d == nil {
		return nil, fmt.Errorf("def: no DESIGN statement")
	}
	return d, sc.Err()
}

func numbers(f []string) []float64 {
	var out []float64
	for _, tok := range f {
		if v, err := strconv.ParseFloat(tok, 64); err == nil {
			out = append(out, v)
		}
	}
	return out
}

func parseComponent(d *netlist.Design, lib *netlist.Library, f []string, units float64, lineNo int) error {
	if len(f) < 3 {
		return fmt.Errorf("def: line %d: bad component", lineNo)
	}
	m := lib.Master(f[2])
	if m == nil {
		return fmt.Errorf("def: line %d: unknown master %q", lineNo, f[2])
	}
	inst, err := d.AddInstance(f[1], m)
	if err != nil {
		return err
	}
	for i := 3; i < len(f); i++ {
		switch f[i] {
		case "PLACED", "FIXED":
			inst.Placed = true
			inst.Fixed = f[i] == "FIXED"
		}
	}
	nums := numbers(f[3:])
	if len(nums) >= 2 {
		inst.X, inst.Y = nums[0]/units, nums[1]/units
	}
	return nil
}

func parsePin(d *netlist.Design, f []string, units float64, lineNo int) error {
	if len(f) < 2 {
		return fmt.Errorf("def: line %d: bad pin", lineNo)
	}
	dir := netlist.DirInput
	for i := range f {
		if f[i] == "DIRECTION" && i+1 < len(f) {
			switch f[i+1] {
			case "OUTPUT":
				dir = netlist.DirOutput
			case "INOUT":
				dir = netlist.DirInout
			}
		}
	}
	p, err := d.AddPort(f[1], dir)
	if err != nil {
		return err
	}
	for i := range f {
		if f[i] == "PLACED" {
			nums := numbers(f[i:])
			if len(nums) >= 2 {
				p.X, p.Y, p.Placed = nums[0]/units, nums[1]/units, true
			}
		}
	}
	return nil
}

func parseNet(d *netlist.Design, f []string, lineNo int) error {
	if len(f) < 2 {
		return fmt.Errorf("def: line %d: bad net", lineNo)
	}
	n, err := d.AddNet(f[1])
	if err != nil {
		return err
	}
	i := 2
	for i < len(f) {
		switch f[i] {
		case "(":
			if i+2 >= len(f) {
				return fmt.Errorf("def: line %d: truncated net connection", lineNo)
			}
			a, b := f[i+1], f[i+2]
			if a == "PIN" {
				d.Connect(n, netlist.PinRef{Inst: -1, Pin: b})
			} else {
				inst := d.Instance(a)
				if inst == nil {
					return fmt.Errorf("def: line %d: unknown instance %q", lineNo, a)
				}
				d.Connect(n, netlist.PinRef{Inst: inst.ID, Pin: b})
			}
			i += 3
			if i < len(f) && f[i] == ")" {
				i++
			}
		case "+":
			if i+1 < len(f) {
				switch f[i+1] {
				case "WEIGHT":
					if i+2 < len(f) {
						if v, err := strconv.ParseFloat(f[i+2], 64); err == nil {
							n.Weight = v
						}
					}
					i += 3
					continue
				case "USE":
					if i+2 < len(f) && f[i+2] == "CLOCK" {
						n.Clock = true
					}
					i += 3
					continue
				}
			}
			i++
		default:
			i++
		}
	}
	return nil
}
