// Package def reads and writes the DEF subset carrying the floorplan view:
// die area, placed/fixed components, pin locations, and net connectivity.
// Coordinates are stored in DEF database units (microns x 1000).
package def

import (
	"fmt"
	"io"
	"math"
	"strings"

	"ppaclust/internal/netlist"
	"ppaclust/internal/scan"
)

const dbu = 1000.0 // database units per micron

// Parse-time sanity bounds. Out-of-range geometry is rejected in both modes:
// a kilometer-scale coordinate is input corruption, and keeping magnitudes
// below maxCoordUM keeps every derived database-unit value exactly
// representable in float64 (|um|*dbu < 2^53), so write->read->write is a
// fixpoint.
const (
	maxCoordUM  = 1e9 // microns
	maxRowCount = 1e9 // ROW DO/BY repeat counts
	maxWeight   = 1e9 // NET WEIGHT magnitude
	minUnits    = 1   // UNITS DISTANCE MICRONS range
	maxUnits    = 1e6
)

// Write emits the design's floorplan and netlist as DEF.
func Write(w io.Writer, d *netlist.Design) error {
	fmt.Fprintf(w, "VERSION 5.8 ;\nDESIGN %s ;\nUNITS DISTANCE MICRONS %d ;\n", d.Name, int(dbu))
	fmt.Fprintf(w, "DIEAREA ( %d %d ) ( %d %d ) ;\n",
		du(d.Die.X0), du(d.Die.Y0), du(d.Die.X1), du(d.Die.Y1))
	// A single summary ROW carries the core box and site geometry. The site
	// counts round to the nearest integer so that a parsed core box (X1 =
	// X0 + count*step) survives re-emission unchanged.
	if d.Core.Area() > 0 && d.RowHeight > 0 && d.SiteWidth > 0 {
		nSites := int(d.Core.W()/d.SiteWidth + 0.5)
		nRows := int(d.Core.H()/d.RowHeight + 0.5)
		fmt.Fprintf(w, "ROW CORE_AREA coresite %d %d N DO %d BY %d STEP %d %d ;\n",
			du(d.Core.X0), du(d.Core.Y0), nSites, nRows, du(d.SiteWidth), du(d.RowHeight))
	}
	fmt.Fprintf(w, "COMPONENTS %d ;\n", len(d.Insts))
	for _, inst := range d.Insts {
		state := "UNPLACED"
		loc := ""
		if inst.Fixed {
			state = "FIXED"
		} else if inst.Placed {
			state = "PLACED"
		}
		if inst.Placed || inst.Fixed {
			loc = fmt.Sprintf(" ( %d %d ) N", du(inst.X), du(inst.Y))
		}
		fmt.Fprintf(w, "- %s %s + %s%s ;\n", escape(inst.Name), inst.Master.Name, state, loc)
	}
	fmt.Fprintln(w, "END COMPONENTS")
	fmt.Fprintf(w, "PINS %d ;\n", len(d.Ports))
	for _, p := range d.Ports {
		dir := "INPUT"
		switch p.Dir {
		case netlist.DirOutput:
			dir = "OUTPUT"
		case netlist.DirInout:
			dir = "INOUT"
		}
		loc := ""
		if p.Placed {
			loc = fmt.Sprintf(" + PLACED ( %d %d ) N", du(p.X), du(p.Y))
		}
		fmt.Fprintf(w, "- %s + NET %s + DIRECTION %s%s ;\n", escape(p.Name), escape(p.Name), dir, loc)
	}
	fmt.Fprintln(w, "END PINS")
	fmt.Fprintf(w, "NETS %d ;\n", len(d.Nets))
	for _, n := range d.Nets {
		fmt.Fprintf(w, "- %s", escape(n.Name))
		for _, pr := range n.Pins {
			if pr.IsPort() {
				fmt.Fprintf(w, " ( PIN %s )", escape(pr.Pin))
			} else {
				fmt.Fprintf(w, " ( %s %s )", escape(d.Insts[pr.Inst].Name), pr.Pin)
			}
		}
		if n.Weight != 1 {
			fmt.Fprintf(w, " + WEIGHT %d", int(n.Weight))
		}
		if n.Clock {
			fmt.Fprintf(w, " + USE CLOCK")
		}
		fmt.Fprintln(w, " ;")
	}
	fmt.Fprintln(w, "END NETS")
	_, err := fmt.Fprintln(w, "END DESIGN")
	return err
}

// du converts microns to database units, rounding half away from zero so
// negative coordinates round symmetrically (truncation would drift one unit
// per write/read cycle).
func du(v float64) int { return int(math.Round(v * dbu)) }

// escape replaces characters DEF treats as separators inside names.
func escape(s string) string { return strings.ReplaceAll(s, " ", "_") }

// Options configures a parse.
type Options struct {
	// File names the input in errors; defaults to "def".
	File string
	// Lenient tolerates recoverable field errors — bad placement
	// coordinates, malformed ROW/DIEAREA geometry, unparsable net weights —
	// by skipping the field and recording a warning. Structural errors
	// (unknown masters or instances, missing DESIGN, corrupt UNITS) are
	// fatal in both modes.
	Lenient bool
}

// Parse reads DEF into a new design bound to lib, strictly: every malformed
// field is a *scan.ParseError.
func Parse(r io.Reader, lib *netlist.Library) (*netlist.Design, error) {
	d, _, err := ParseWith(r, lib, Options{})
	return d, err
}

// ParseWith reads DEF under the given options. In lenient mode the returned
// warnings list the fields that were skipped.
func ParseWith(r io.Reader, lib *netlist.Library, o Options) (*netlist.Design, []*scan.ParseError, error) {
	file := o.File
	if file == "" {
		file = "def"
	}
	p := &defParser{lib: lib, units: dbu, strict: !o.Lenient}
	if o.Lenient {
		p.warns = &scan.Warnings{}
	}
	sc := scan.NewScanner(r, file, 4*1024*1024)
	for sc.Scan() {
		if err := p.line(sc.Line()); err != nil {
			return nil, p.warns.List(), err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, p.warns.List(), err
	}
	if p.d == nil {
		return nil, p.warns.List(), scan.Errorf(file, 0, "", "no DESIGN statement")
	}
	return p.d, p.warns.List(), nil
}

type defParser struct {
	lib     *netlist.Library
	d       *netlist.Design
	section string
	units   float64
	strict  bool
	warns   *scan.Warnings
}

// tolerate routes a recoverable field error: strict mode returns it, lenient
// mode records it as a warning and continues.
func (p *defParser) tolerate(err error) error {
	if err == nil || p.strict {
		return err
	}
	p.warns.Add(asParseError(err))
	return nil
}

func asParseError(err error) *scan.ParseError {
	if pe, ok := err.(*scan.ParseError); ok {
		return pe
	}
	return &scan.ParseError{Msg: err.Error()}
}

func (p *defParser) line(ln *scan.Line) error {
	switch {
	case ln.Tok(0) == "DESIGN" && p.section == "":
		if err := ln.Require(2); err != nil {
			return err
		}
		if p.d != nil {
			return ln.Errf(ln.Tok(1), "duplicate DESIGN statement")
		}
		p.d = netlist.NewDesign(ln.Tok(1), p.lib)
	case ln.Tok(0) == "UNITS":
		// Corrupt units rescale every coordinate in the file; fatal in both
		// modes.
		if err := ln.Require(4); err != nil {
			return err
		}
		v, err := ln.Float(3)
		if err != nil {
			return err
		}
		if v < minUnits || v > maxUnits {
			return ln.Errf(ln.Tok(3), "UNITS out of range [%g, %g]", float64(minUnits), float64(maxUnits))
		}
		p.units = v
	case ln.Tok(0) == "DIEAREA":
		if p.d == nil {
			return ln.Errf(ln.Tok(0), "DIEAREA before DESIGN")
		}
		nums, err := p.coords(ln, 1)
		if err == nil && len(nums) < 4 {
			err = ln.Errf(ln.Tok(0), "DIEAREA needs 4 coordinates, got %d", len(nums))
		}
		if err != nil {
			return p.tolerate(err)
		}
		p.d.Die = netlist.Rect{X0: nums[0], Y0: nums[1], X1: nums[2], Y1: nums[3]}
		p.d.Core = p.d.Die
	case ln.Tok(0) == "ROW":
		if p.d == nil {
			return ln.Errf(ln.Tok(0), "ROW before DESIGN")
		}
		if err := p.tolerate(p.row(ln)); err != nil {
			return err
		}
	case ln.Tok(0) == "COMPONENTS":
		p.section = "COMPONENTS"
	case ln.Tok(0) == "PINS":
		p.section = "PINS"
	case ln.Tok(0) == "NETS":
		p.section = "NETS"
	case ln.Tok(0) == "END":
		if ln.Len() >= 2 && ln.Tok(1) == p.section {
			p.section = ""
		}
	case ln.Tok(0) == "-":
		if p.d == nil {
			return ln.Errf(ln.Tok(0), "item before DESIGN")
		}
		switch p.section {
		case "COMPONENTS":
			return p.component(ln)
		case "PINS":
			return p.pin(ln)
		case "NETS":
			return p.net(ln)
		}
	}
	return nil
}

// coord parses one coordinate token into microns, applying the units scale
// and the geometry bound.
func (p *defParser) coord(ln *scan.Line, i int) (float64, error) {
	v, err := ln.Float(i)
	if err != nil {
		return 0, err
	}
	um := v / p.units
	if um < -maxCoordUM || um > maxCoordUM {
		return 0, ln.Errf(ln.Tok(i), "coordinate out of range (|%g| > %g um)", um, float64(maxCoordUM))
	}
	// Quantize to the database-unit grid: DEF coordinates are integral dbu,
	// and the grid makes the writer's du() rounding an exact inverse (a
	// sub-dbu step would otherwise collapse to zero on re-emission).
	return math.Round(um*dbu) / dbu, nil
}

// coords parses every token from index start as a coordinate, skipping the
// DEF punctuation "(", ")" and ";". A token that is neither punctuation nor
// a number is an error.
func (p *defParser) coords(ln *scan.Line, start int) ([]float64, error) {
	var out []float64
	for i := start; i < ln.Len(); i++ {
		switch ln.Tok(i) {
		case "(", ")", ";":
			continue
		}
		v, err := p.coord(ln, i)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// row parses "ROW name site x0 y0 orient DO nx BY ny STEP sw rh ;".
func (p *defParser) row(ln *scan.Line) error {
	if err := ln.Require(13); err != nil {
		return err
	}
	if ln.Tok(6) != "DO" || ln.Tok(8) != "BY" || ln.Tok(10) != "STEP" {
		return ln.Errf(ln.Tok(0), "ROW wants DO/BY/STEP at fields 7/9/11, got %q/%q/%q", ln.Tok(6), ln.Tok(8), ln.Tok(10))
	}
	x0, err := p.coord(ln, 3)
	if err != nil {
		return err
	}
	y0, err := p.coord(ln, 4)
	if err != nil {
		return err
	}
	nx, err := ln.Int(7)
	if err != nil {
		return err
	}
	ny, err := ln.Int(9)
	if err != nil {
		return err
	}
	if nx < 0 || ny < 0 || float64(nx) > maxRowCount || float64(ny) > maxRowCount {
		return ln.Errf(ln.Tok(7), "ROW repeat counts out of range [0, %g]", float64(maxRowCount))
	}
	sw, err := p.coord(ln, 11)
	if err != nil {
		return err
	}
	rh, err := p.coord(ln, 12)
	if err != nil {
		return err
	}
	if sw < 0 || rh < 0 {
		return ln.Errf(ln.Tok(11), "negative ROW step")
	}
	x1 := x0 + float64(nx)*sw
	y1 := y0 + float64(ny)*rh
	if x1 > maxCoordUM || y1 > maxCoordUM {
		return ln.Errf(ln.Tok(7), "ROW extends past %g um", float64(maxCoordUM))
	}
	p.d.SiteWidth = sw
	p.d.RowHeight = rh
	p.d.Core = netlist.Rect{X0: x0, Y0: y0, X1: x1, Y1: y1}
	return nil
}

// placedAt finds a "+ PLACED|FIXED ( x y )" group starting the scan at from,
// returning (x, y, fixed, found). The keyword must follow a "+" so that
// ports or instances *named* PLACED do not start a group.
func (p *defParser) placedAt(ln *scan.Line, from int) (x, y float64, fixed, found bool, err error) {
	for i := from; i < ln.Len(); i++ {
		if (ln.Tok(i) != "PLACED" && ln.Tok(i) != "FIXED") || ln.Tok(i-1) != "+" {
			continue
		}
		if i+3 >= ln.Len() || ln.Tok(i+1) != "(" {
			return 0, 0, false, false, ln.Errf(ln.Tok(i), "%s needs ( x y )", ln.Tok(i))
		}
		x, err = p.coord(ln, i+2)
		if err != nil {
			return 0, 0, false, false, err
		}
		y, err = p.coord(ln, i+3)
		if err != nil {
			return 0, 0, false, false, err
		}
		return x, y, ln.Tok(i) == "FIXED", true, nil
	}
	return 0, 0, false, false, nil
}

// component parses "- name master [+ PLACED|FIXED ( x y ) orient] ;".
func (p *defParser) component(ln *scan.Line) error {
	if err := ln.Require(3); err != nil {
		return err
	}
	m := p.lib.Master(ln.Tok(2))
	if m == nil {
		return ln.Errf(ln.Tok(2), "unknown master")
	}
	inst, err := p.d.AddInstance(ln.Tok(1), m)
	if err != nil {
		return ln.Errf(ln.Tok(1), "%v", err)
	}
	x, y, fixed, found, err := p.placedAt(ln, 3)
	if err := p.tolerate(err); err != nil {
		return err
	}
	if found {
		inst.X, inst.Y = x, y
		inst.Placed = true
		inst.Fixed = fixed
	}
	return nil
}

// pin parses "- name + NET net + DIRECTION dir [+ PLACED ( x y ) orient] ;".
func (p *defParser) pin(ln *scan.Line) error {
	if err := ln.Require(2); err != nil {
		return err
	}
	dir := netlist.DirInput
	for i := 2; i < ln.Len(); i++ {
		if ln.Tok(i) != "DIRECTION" || ln.Tok(i-1) != "+" {
			continue
		}
		if i+1 >= ln.Len() {
			if err := p.tolerate(ln.Errf(ln.Tok(i), "DIRECTION without a value")); err != nil {
				return err
			}
			continue
		}
		switch ln.Tok(i + 1) {
		case "OUTPUT":
			dir = netlist.DirOutput
		case "INOUT":
			dir = netlist.DirInout
		}
	}
	port, err := p.d.AddPort(ln.Tok(1), dir)
	if err != nil {
		return ln.Errf(ln.Tok(1), "%v", err)
	}
	x, y, _, found, err := p.placedAt(ln, 2)
	if err := p.tolerate(err); err != nil {
		return err
	}
	if found {
		port.X, port.Y, port.Placed = x, y, true
	}
	return nil
}

// net parses "- name ( inst pin )... [+ WEIGHT w] [+ USE CLOCK] ;".
func (p *defParser) net(ln *scan.Line) error {
	if err := ln.Require(2); err != nil {
		return err
	}
	n, err := p.d.AddNet(ln.Tok(1))
	if err != nil {
		return ln.Errf(ln.Tok(1), "%v", err)
	}
	i := 2
	for i < ln.Len() {
		switch ln.Tok(i) {
		case "(":
			if i+2 >= ln.Len() {
				return ln.Errf(ln.Tok(i), "truncated net connection")
			}
			a, b := ln.Tok(i+1), ln.Tok(i+2)
			if a == "PIN" {
				p.d.Connect(n, netlist.PinRef{Inst: -1, Pin: b})
			} else {
				inst := p.d.Instance(a)
				if inst == nil {
					return ln.Errf(a, "unknown instance")
				}
				p.d.Connect(n, netlist.PinRef{Inst: inst.ID, Pin: b})
			}
			i += 3
			if i < ln.Len() && ln.Tok(i) == ")" {
				i++
			}
		case "+":
			if i+1 >= ln.Len() {
				i++
				continue
			}
			switch ln.Tok(i + 1) {
			case "WEIGHT":
				w, werr := p.weight(ln, i+2)
				if err := p.tolerate(werr); err != nil {
					return err
				}
				if werr == nil {
					n.Weight = w
				}
				i += 3
			case "USE":
				if i+2 < ln.Len() && ln.Tok(i+2) == "CLOCK" {
					n.Clock = true
				}
				i += 3
			default:
				i++
			}
		default:
			i++
		}
	}
	return nil
}

// weight parses a NET WEIGHT value: DEF weights are integers.
func (p *defParser) weight(ln *scan.Line, i int) (float64, error) {
	w, err := ln.Int(i)
	if err != nil {
		return 0, err
	}
	if w < -maxWeight || w > maxWeight {
		return 0, ln.Errf(ln.Tok(i), "WEIGHT out of range")
	}
	return float64(w), nil
}
