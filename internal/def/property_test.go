package def

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"ppaclust/internal/designs"
	"ppaclust/internal/place"
)

// TestPropertyRoundTripManySeeds checks DEF write->parse equivalence on
// placed designs across seeds: geometry within DBU rounding, connectivity
// counts exact.
func TestPropertyRoundTripManySeeds(t *testing.T) {
	f := func(seed int64) bool {
		spec := designs.TinySpec(2000 + seed%13)
		spec.TargetInsts = 150
		b := designs.Generate(spec)
		place.Global(b.Design, place.Options{Seed: seed})
		var buf bytes.Buffer
		if err := Write(&buf, b.Design); err != nil {
			return false
		}
		got, err := Parse(bytes.NewReader(buf.Bytes()), b.Design.Lib)
		if err != nil {
			return false
		}
		if len(got.Insts) != len(b.Design.Insts) || len(got.Nets) != len(b.Design.Nets) {
			return false
		}
		for _, inst := range b.Design.Insts {
			ri := got.Instance(inst.Name)
			if ri == nil {
				return false
			}
			if math.Abs(ri.X-inst.X) > 1e-3 || math.Abs(ri.Y-inst.Y) > 1e-3 {
				return false
			}
		}
		// Core geometry survives via the summary ROW.
		if math.Abs(got.Core.W()-b.Design.Core.W()) > 1 {
			return false
		}
		return got.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
