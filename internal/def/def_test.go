package def

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/place"
)

func TestWriteParseRoundTrip(t *testing.T) {
	b := designs.Generate(designs.TinySpec(111))
	place.Global(b.Design, place.Options{Seed: 1, Legalize: true})
	var buf bytes.Buffer
	if err := Write(&buf, b.Design); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(bytes.NewReader(buf.Bytes()), b.Design.Lib)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(got.Insts) != len(b.Design.Insts) || len(got.Nets) != len(b.Design.Nets) ||
		len(got.Ports) != len(b.Design.Ports) {
		t.Fatal("counts changed in round trip")
	}
	// Placement coordinates survive within DBU rounding.
	for _, inst := range b.Design.Insts {
		ri := got.Instance(inst.Name)
		if ri == nil {
			t.Fatalf("instance %q lost", inst.Name)
		}
		if math.Abs(ri.X-inst.X) > 1e-3 || math.Abs(ri.Y-inst.Y) > 1e-3 {
			t.Fatalf("%s moved: (%v,%v) vs (%v,%v)", inst.Name, ri.X, ri.Y, inst.X, inst.Y)
		}
		if ri.Placed != inst.Placed || ri.Fixed != inst.Fixed {
			t.Fatalf("%s placement state changed", inst.Name)
		}
	}
	// Die area survives.
	if math.Abs(got.Die.X1-b.Design.Die.X1) > 1e-3 {
		t.Fatal("die area changed")
	}
	// Net weights and clock flags survive.
	clk := got.Net("clk")
	if clk == nil || !clk.Clock {
		t.Fatal("clock flag lost")
	}
	// HPWL nearly identical (pins snap to DBU).
	if math.Abs(got.HPWL()-b.Design.HPWL()) > 1.0 {
		t.Fatalf("HPWL %v vs %v", got.HPWL(), b.Design.HPWL())
	}
}

func TestWeightsRoundTrip(t *testing.T) {
	b := designs.Generate(designs.TinySpec(112))
	b.Design.Nets[3].Weight = 4
	var buf bytes.Buffer
	if err := Write(&buf, b.Design); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(bytes.NewReader(buf.Bytes()), b.Design.Lib)
	if err != nil {
		t.Fatal(err)
	}
	if got.Nets[3].Weight != 4 {
		t.Fatalf("weight=%v", got.Nets[3].Weight)
	}
}

func TestParseErrors(t *testing.T) {
	lib := designs.Lib()
	cases := []string{
		"",
		"DESIGN top ;\nCOMPONENTS 1 ;\n- u1 NOPE + PLACED ( 0 0 ) N ;\nEND COMPONENTS\nEND DESIGN",
		"DESIGN top ;\nNETS 1 ;\n- n1 ( ghost A ) ;\nEND NETS\nEND DESIGN",
		"DIEAREA ( 0 0 ) ( 1 1 ) ;",
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src), lib); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
}

func TestUnitsScaling(t *testing.T) {
	lib := designs.Lib()
	src := `DESIGN t ;
UNITS DISTANCE MICRONS 2000 ;
DIEAREA ( 0 0 ) ( 20000 20000 ) ;
COMPONENTS 1 ;
- u1 INV_X1 + PLACED ( 2000 4000 ) N ;
END COMPONENTS
END DESIGN`
	d, err := Parse(strings.NewReader(src), lib)
	if err != nil {
		t.Fatal(err)
	}
	if d.Die.X1 != 10 {
		t.Fatalf("die X1=%v want 10", d.Die.X1)
	}
	u1 := d.Instance("u1")
	if u1.X != 1 || u1.Y != 2 {
		t.Fatalf("u1 at (%v,%v)", u1.X, u1.Y)
	}
}
