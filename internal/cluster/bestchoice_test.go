package cluster

import (
	"testing"
)

func TestBestChoiceFindsBlocks(t *testing.T) {
	h := blocks(4, 8)
	res := BestChoice(h, Options{TargetClusters: 4, Seed: 1})
	if res.NumClusters != 4 {
		t.Fatalf("clusters=%d want 4", res.NumClusters)
	}
	if cut := h.CutSize(res.Assign); cut > 1.0 {
		t.Fatalf("cut=%v", cut)
	}
}

func TestBestChoiceRespectsTarget(t *testing.T) {
	h := blocks(6, 5)
	res := BestChoice(h, Options{TargetClusters: 6, Seed: 2})
	if res.NumClusters < 6 {
		t.Fatalf("overshot target: %d", res.NumClusters)
	}
}

func TestBestChoiceSizeCap(t *testing.T) {
	h := blocks(1, 24)
	res := BestChoice(h, Options{TargetClusters: 3, MaxClusterFactor: 1.0})
	maxW := h.TotalVertexWeight() / 3.0
	for _, s := range Sizes(res.Assign, res.NumClusters) {
		if float64(s) > maxW+1e-9 {
			t.Fatalf("cluster size %d exceeds cap %v", s, maxW)
		}
	}
}

func TestBestChoiceQualityVsFC(t *testing.T) {
	// On clean block structure, BC should match FC's cut quality.
	h := blocks(5, 6)
	bc := BestChoice(h, Options{TargetClusters: 5})
	fc := MultilevelFC(h, Options{TargetClusters: 5, Seed: 3})
	if h.CutSize(bc.Assign) > h.CutSize(fc.Assign)+1 {
		t.Fatalf("BC cut %v much worse than FC %v", h.CutSize(bc.Assign), h.CutSize(fc.Assign))
	}
}

func TestBestChoicePPATerms(t *testing.T) {
	// Timing cost steers the first merge, as in the FC variant.
	h := blocks(2, 3)
	e := h.AddEdge([]int{2, 3}, 1) // bridge
	tc := make([]float64, h.NumEdges())
	tc[e] = 5
	res := BestChoice(h, Options{Alpha: 1, Beta: 10, TargetClusters: 5, EdgeTimingCost: tc})
	if res.Assign[2] != res.Assign[3] {
		t.Fatal("critical bridge should merge under BC with timing cost")
	}
}

func TestBestChoiceEmpty(t *testing.T) {
	h := blocks(1, 2)
	res := BestChoice(h, Options{TargetClusters: 8})
	if len(res.Assign) != 2 {
		t.Fatal("assign length")
	}
}
