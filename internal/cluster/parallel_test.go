package cluster

import (
	"math/rand"
	"testing"

	"ppaclust/internal/hypergraph"
)

// randHypergraph builds an irregular hypergraph with mixed edge arities and
// weights — enough structure to exercise ties, the size cap and the budgeted
// priority pass.
func randHypergraph(n, edges int, seed int64) *hypergraph.Hypergraph {
	rng := rand.New(rand.NewSource(seed))
	h := hypergraph.New(n)
	for v := 0; v < n; v++ {
		h.SetVertexWeight(v, 1+rng.Float64()*3)
	}
	for e := 0; e < edges; e++ {
		k := 2 + rng.Intn(5)
		verts := make([]int, 0, k)
		seen := map[int]bool{}
		for len(verts) < k {
			v := rng.Intn(n)
			if !seen[v] {
				seen[v] = true
				verts = append(verts, v)
			}
		}
		h.AddEdge(verts, 0.25+rng.Float64())
	}
	return h
}

// TestMultilevelFCWorkersEquivalent asserts the determinism contract: the
// cluster assignment with Workers=N is identical (not just statistically
// similar) to Workers=1, across plain, grouped, and PPA-weighted runs.
func TestMultilevelFCWorkersEquivalent(t *testing.T) {
	type fixture struct {
		name string
		h    *hypergraph.Hypergraph
		opt  Options
	}
	hr := randHypergraph(600, 1400, 42)
	tCost := make([]float64, hr.NumEdges())
	sCost := make([]float64, hr.NumEdges())
	crng := rand.New(rand.NewSource(7))
	for e := range tCost {
		tCost[e] = crng.Float64()
		sCost[e] = 1 + crng.Float64()
	}
	groups := make([]int, 600)
	for v := range groups {
		groups[v] = -1
		if v < 300 {
			groups[v] = v % 3
		}
	}
	fixtures := []fixture{
		{"blocks", blocks(20, 30), Options{TargetClusters: 20, Seed: 5}},
		{"random-ppa", hr, Options{TargetClusters: 40, Seed: 9,
			Alpha: 1, Beta: 0.8, Gamma: 0.5,
			EdgeTimingCost: tCost, EdgeSwitchCost: sCost}},
		{"random-groups", hr, Options{TargetClusters: 30, Seed: 3, Groups: groups}},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			seq := fx.opt
			seq.Workers = 1
			pp := fx.opt
			pp.Workers = 4
			rs := MultilevelFC(fx.h, seq)
			rp := MultilevelFC(fx.h, pp)
			if rs.NumClusters != rp.NumClusters || rs.Levels != rp.Levels ||
				rs.Singletons != rp.Singletons {
				t.Fatalf("summary differs: seq %+v par %+v",
					Result{NumClusters: rs.NumClusters, Levels: rs.Levels, Singletons: rs.Singletons},
					Result{NumClusters: rp.NumClusters, Levels: rp.Levels, Singletons: rp.Singletons})
			}
			for v := range rs.Assign {
				if rs.Assign[v] != rp.Assign[v] {
					t.Fatalf("vertex %d assigned %d (seq) vs %d (par)",
						v, rs.Assign[v], rp.Assign[v])
				}
			}
		})
	}
}

// TestFcPassDeterministicAcrossRuns guards the map-iteration fix: repeated
// runs with the same seed must give identical assignments (the old candidate
// pick iterated a Go map, whose order is randomized per run).
func TestFcPassDeterministicAcrossRuns(t *testing.T) {
	h := randHypergraph(400, 900, 11)
	opt := Options{TargetClusters: 25, Seed: 13, Workers: 1}
	base := MultilevelFC(h, opt)
	for i := 0; i < 3; i++ {
		got := MultilevelFC(h, opt)
		for v := range base.Assign {
			if base.Assign[v] != got.Assign[v] {
				t.Fatalf("run %d: vertex %d assigned %d vs %d", i, v, got.Assign[v], base.Assign[v])
			}
		}
	}
}
