// Package cluster implements the paper's PPA-aware multilevel clustering: a
// First-Choice (FC) coarsening framework (after TritonPart [29]) whose
// heavy-edge rating is extended (Eq. 3) with per-hyperedge timing costs t_e
// (from critical-path slacks, as in [5]) and switching costs s_e (Eq. 2),
// subject to hierarchy-derived grouping constraints.
//
// Running with Beta=Gamma=0 and no groups reproduces the plain multilevel FC
// baseline the paper calls MFC (Table 5).
package cluster

import (
	"math"
	"math/rand"
	"sort"

	"ppaclust/internal/hypergraph"
	"ppaclust/internal/par"
)

// Options configures multilevel FC clustering.
type Options struct {
	// Alpha, Beta, Gamma scale connectivity, timing and switching terms of
	// the rating function (Eq. 3). Defaults: 1, 1, 1.
	Alpha, Beta, Gamma float64
	// TargetClusters stops coarsening once the vertex count reaches it.
	TargetClusters int
	// MaxClusterFactor caps cluster weight at factor * totalWeight/target.
	// Default 4.
	MaxClusterFactor float64
	// MaxEdgeSize skips hyperedges larger than this during rating (huge nets
	// carry no locality information). Default 300.
	MaxEdgeSize int
	// Seed drives the vertex visit order.
	Seed int64
	// Groups holds per-vertex grouping constraints (-1 = unconstrained).
	// During the guided phase, vertices in different groups are never
	// merged; an unconstrained vertex adopts the group of whatever it
	// merges with. Once within-group coarsening exhausts while the vertex
	// count is still above target, the constraints relax and whole groups
	// may merge (the "guides, not walls" reading of [5]) — unless
	// StrictGroups is set.
	Groups []int
	// StrictGroups keeps grouping constraints hard for the entire run.
	StrictGroups bool
	// EdgeTimingCost is t_e per hyperedge (0 when absent).
	EdgeTimingCost []float64
	// EdgeSwitchCost is s_e per hyperedge (0 when absent; note Eq. 2 yields
	// values >= 1 for driven nets).
	EdgeSwitchCost []float64
	// MaxLevels bounds the number of coarsening levels. Default 20.
	MaxLevels int
	// KeepLevelAssigns records the fine-vertex assignment after every
	// coarsening level in Result.LevelAssigns/LevelCounts, so callers can
	// reuse the whole hierarchy (e.g. as a multigrid coarse-space ladder)
	// instead of only the final clustering.
	KeepLevelAssigns bool
	// Workers bounds the goroutines used by the rating scans: 0 = auto
	// (PPACLUST_WORKERS, else GOMAXPROCS), 1 = fully sequential. Matching
	// itself always commits sequentially, so the cluster assignment is
	// bit-identical for every worker count.
	Workers int
}

func (o Options) withDefaults(h *hypergraph.Hypergraph) Options {
	if o.Alpha == 0 && o.Beta == 0 && o.Gamma == 0 {
		o.Alpha = 1
	}
	if o.TargetClusters <= 0 {
		o.TargetClusters = defaultTarget(h.NumVertices())
	}
	if o.MaxClusterFactor <= 0 {
		o.MaxClusterFactor = 4
	}
	if o.MaxEdgeSize <= 0 {
		o.MaxEdgeSize = 300
	}
	if o.MaxLevels <= 0 {
		o.MaxLevels = 20
	}
	return o
}

// defaultTarget picks a cluster count that shrinks the placement problem by
// roughly 400x, bounded to stay meaningful on tiny and huge designs. The
// paper's seed placement works on a few tens to hundreds of blob-scale
// clusters; coarse seeds both keep the clustered-placement runtime win and
// give the incremental placer freedom to recover detail.
func defaultTarget(n int) int {
	t := n / 400
	if t < 8 {
		t = 8
	}
	if t > 2000 {
		t = 2000
	}
	return t
}

// Result is the outcome of multilevel clustering.
type Result struct {
	// Assign maps each fine vertex to a dense cluster label.
	Assign []int
	// NumClusters is the number of distinct clusters.
	NumClusters int
	// Levels is the number of coarsening levels performed.
	Levels int
	// Singletons counts clusters of size one. Per the paper (footnote 2)
	// they are deliberately NOT merged together.
	Singletons int
	// LevelAssigns (with Options.KeepLevelAssigns) holds the fine-vertex
	// assignment after each coarsening level, finest first. Labels at level
	// j are coarse-hypergraph vertex ids, dense in [0, LevelCounts[j]), and
	// nest strictly: equal labels at one level stay equal at every deeper
	// level.
	LevelAssigns [][]int
	LevelCounts  []int
}

// MultilevelFC coarsens h level by level using first-choice matching under
// the (optionally PPA-aware) rating of Eq. 3, and returns the fine-level
// cluster assignment.
func MultilevelFC(h *hypergraph.Hypergraph, opt Options) Result {
	opt = opt.withDefaults(h)
	rng := rand.New(rand.NewSource(opt.Seed))

	n := h.NumVertices()
	assign := make([]int, n)
	for i := range assign {
		assign[i] = i
	}
	cur := h
	groups := opt.Groups
	tCost := opt.EdgeTimingCost
	sCost := opt.EdgeSwitchCost
	maxW := opt.MaxClusterFactor * h.TotalVertexWeight() / float64(opt.TargetClusters)

	levels := 0
	var levelAssigns [][]int
	var levelCounts []int
	if opt.KeepLevelAssigns {
		levelAssigns = make([][]int, 0, opt.MaxLevels)
		levelCounts = make([]int, 0, opt.MaxLevels)
	}
	for cur.NumVertices() > opt.TargetClusters && levels < opt.MaxLevels {
		// Far from the target, run unrestricted FC passes; near it, spend
		// the remaining merge budget on the highest-rated pairs so the
		// result lands at the target instead of overshooting.
		budget := cur.NumVertices() - opt.TargetClusters
		if budget >= cur.NumVertices()/2 {
			budget = 0 // far from target: unrestricted pass
		}
		merge := fcPass(cur, groups, tCost, sCost, opt, maxW, budget, rng)
		con, err := cur.ContractWorkers(merge, opt.Workers)
		if err != nil {
			break
		}
		if con.Coarse.NumVertices() >= cur.NumVertices() {
			if groups != nil && !opt.StrictGroups {
				// No merge was possible under the guides: relax them so
				// whole hierarchy groups can merge toward the target.
				groups = nil
				continue
			}
			break // no progress
		}
		// Thread fine-level assignment through the new level.
		for i := range assign {
			assign[i] = con.VertexMap[assign[i]]
		}
		if opt.KeepLevelAssigns {
			snap := make([]int, len(assign))
			copy(snap, assign)
			levelAssigns = append(levelAssigns, snap)
			levelCounts = append(levelCounts, con.Coarse.NumVertices())
		}
		// Propagate groups and edge costs to the coarse level.
		if groups != nil {
			ng := make([]int, con.Coarse.NumVertices())
			for i := range ng {
				ng[i] = -1
			}
			for v, g := range groups {
				if g >= 0 {
					ng[con.VertexMap[v]] = g
				}
			}
			groups = ng
		}
		tCost = mapEdgeCost(tCost, con, cur.NumEdges())
		sCost = mapEdgeCost(sCost, con, cur.NumEdges())
		stalled := float64(con.Coarse.NumVertices()) > 0.98*float64(len(con.VertexMap))
		cur = con.Coarse
		levels++
		if stalled {
			if groups != nil && !opt.StrictGroups {
				// Within-group coarsening is exhausted: relax the guides so
				// whole hierarchy groups can merge toward the target.
				groups = nil
				continue
			}
			break
		}
	}

	dense, k := densify(assign)
	res := Result{Assign: dense, NumClusters: k, Levels: levels,
		LevelAssigns: levelAssigns, LevelCounts: levelCounts}
	count := make([]int, k)
	for _, c := range dense {
		count[c]++
	}
	for _, c := range count {
		if c == 1 {
			res.Singletons++
		}
	}
	return res
}

// mapEdgeCost carries a per-edge cost array through a contraction, taking
// the max over fine edges that merge into one coarse edge.
func mapEdgeCost(cost []float64, con *hypergraph.Contraction, fineEdges int) []float64 {
	if cost == nil {
		return nil
	}
	out := make([]float64, con.Coarse.NumEdges())
	for e := 0; e < fineEdges; e++ {
		ce := con.EdgeMap[e]
		if ce >= 0 && cost[e] > out[ce] {
			out[ce] = cost[e]
		}
	}
	return out
}

// fcPass performs one first-choice matching pass and returns the merge map
// (vertex -> representative label).
func fcPass(h *hypergraph.Hypergraph, groups []int, tCost, sCost []float64,
	opt Options, maxW float64, budget int, rng *rand.Rand) []int {

	n := h.NumVertices()
	parent := make([]int, n)
	weight := make([]float64, n)
	grp := make([]int, n)
	for v := 0; v < n; v++ {
		parent[v] = v
		weight[v] = h.VertexWeight(v)
		if groups != nil {
			grp[v] = groups[v]
		} else {
			grp[v] = -1
		}
	}
	var find func(int) int
	find = func(v int) int {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}

	workers := par.Workers(opt.Workers)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	if budget > 0 {
		// Priority pass: visit vertices in descending order of their best
		// candidate rating so the limited budget buys the best merges. Each
		// score is accumulated per vertex in incident-edge order, so the
		// parallel fan-out is bit-identical to the sequential loop.
		score := make([]float64, n)
		par.ForEach(workers, n, func(v int) {
			for _, e := range h.Incident(v) {
				verts := h.Edge(e)
				if len(verts) < 2 || len(verts) > opt.MaxEdgeSize {
					continue
				}
				num := opt.Alpha * h.EdgeWeight(e)
				if tCost != nil {
					num += opt.Beta * tCost[e]
				}
				if sCost != nil {
					num += opt.Gamma * sCost[e]
				}
				score[v] += num / float64(len(verts)-1)
			}
		})
		sort.Slice(order, func(a, b int) bool {
			if score[order[a]] != score[order[b]] {
				return score[order[a]] > score[order[b]]
			}
			return order[a] < order[b]
		})
	}

	if workers > 1 {
		fcMatchPar(h, parent, weight, grp, tCost, sCost, &opt, maxW, budget, order, find, workers)
	} else {
		fcMatchSeq(h, parent, weight, grp, tCost, sCost, &opt, maxW, budget, order, find)
	}

	merge := make([]int, n)
	for v := 0; v < n; v++ {
		merge[v] = find(v)
	}
	return merge
}

// ratedCand is one merge candidate of the vertex being visited.
type ratedCand struct {
	root int
	r    float64
}

// ratingScratch holds the reusable state of one rating scan.
type ratingScratch struct {
	idx   map[int]int
	cands []ratedCand
}

func newRatingScratch() ratingScratch { return ratingScratch{idx: make(map[int]int)} }

// rate accumulates the merge candidates of v (whose current root is rv) in
// first-touch order over v's incident edges. That order — not Go's randomized
// map iteration — is what pick consumes, so a rating scan is deterministic.
// find resolves the current root of a vertex; passing a non-compressing find
// makes the scan read-only, which is what lets speculative scans run in
// parallel without mutating the union-find.
func (sc *ratingScratch) rate(h *hypergraph.Hypergraph, v, rv int, tCost, sCost []float64,
	opt *Options, find func(int) int) []ratedCand {

	sc.cands = sc.cands[:0]
	clear(sc.idx)
	for _, e := range h.Incident(v) {
		verts := h.Edge(e)
		if len(verts) < 2 || len(verts) > opt.MaxEdgeSize {
			continue
		}
		num := opt.Alpha * h.EdgeWeight(e)
		if tCost != nil {
			num += opt.Beta * tCost[e]
		}
		if sCost != nil {
			num += opt.Gamma * sCost[e]
		}
		r := num / float64(len(verts)-1)
		for _, u := range verts {
			ru := find(u)
			if ru == rv {
				continue
			}
			pos, ok := sc.idx[ru]
			if !ok {
				pos = len(sc.cands)
				sc.idx[ru] = pos
				sc.cands = append(sc.cands, ratedCand{root: ru})
			}
			sc.cands[pos].r += r
		}
	}
	return sc.cands
}

// pick returns the best admissible candidate (or -1) under the epsilon
// tie-break, scanning candidates in their accumulation order.
func pick(cands []ratedCand, rv int, grp []int, weight []float64, maxW float64) int {
	bestU, bestR := -1, 0.0
	for _, c := range cands {
		if c.r <= 0 {
			continue
		}
		if grp[rv] >= 0 && grp[c.root] >= 0 && grp[rv] != grp[c.root] {
			continue // grouping constraint
		}
		if weight[rv]+weight[c.root] > maxW {
			continue // size cap
		}
		if c.r > bestR+1e-15 || (c.r > bestR-1e-15 && bestR > 0 && c.root < bestU) {
			bestU, bestR = c.root, c.r
		}
	}
	return bestU
}

// fcMatchSeq is the exact sequential matching loop.
func fcMatchSeq(h *hypergraph.Hypergraph, parent []int, weight []float64, grp []int,
	tCost, sCost []float64, opt *Options, maxW float64, budget int,
	order []int, find func(int) int) {

	sc := newRatingScratch()
	for _, v := range order {
		rv := find(v)
		if rv != v {
			continue // already absorbed this pass
		}
		bestU := pick(sc.rate(h, v, rv, tCost, sCost, opt, find), rv, grp, weight, maxW)
		if bestU < 0 {
			continue
		}
		// Union: attach rv under bestU.
		parent[rv] = bestU
		weight[bestU] += weight[rv]
		if grp[bestU] < 0 {
			grp[bestU] = grp[rv]
		}
		if budget > 0 {
			budget--
			if budget == 0 {
				break // don't coarsen past the target
			}
		}
	}
}

// fcMatchPar runs the same matching loop with speculative batched ratings:
// a batch of upcoming root vertices is rated in parallel against the frozen
// union-find (read-only, non-compressing find), then commits replay strictly
// in visit order. A speculative rating is reused only if no vertex involved
// in it was touched by an earlier commit in the batch (the dirty set tracks
// both endpoints of every merge); otherwise the rating is recomputed on the
// spot — which is exactly what the sequential loop would have seen. The
// result is bit-identical to fcMatchSeq for any worker count.
func fcMatchPar(h *hypergraph.Hypergraph, parent []int, weight []float64, grp []int,
	tCost, sCost []float64, opt *Options, maxW float64, budget int,
	order []int, find func(int) int, workers int) {

	findRO := func(v int) int {
		for parent[v] != v {
			v = parent[v]
		}
		return v
	}

	n := len(order)
	batch := workers * 8
	if batch > n {
		batch = n
	}
	scratch := make([]ratingScratch, workers)
	for w := range scratch {
		scratch[w] = newRatingScratch()
	}
	specBuf := make([][]ratedCand, batch)
	specOK := make([]bool, batch)
	commitSc := newRatingScratch()
	dirty := make(map[int]bool)

	for pos := 0; pos < n; pos += batch {
		end := pos + batch
		if end > n {
			end = n
		}
		m := end - pos
		par.Blocks(workers, m, func(w, lo, hi int) {
			sc := &scratch[w]
			for k := lo; k < hi; k++ {
				v := order[pos+k]
				if findRO(v) != v {
					specOK[k] = false
					continue // absorbed in an earlier batch
				}
				specBuf[k] = append(specBuf[k][:0], sc.rate(h, v, v, tCost, sCost, opt, findRO)...)
				specOK[k] = true
			}
		})
		clear(dirty)
		for k := 0; k < m; k++ {
			v := order[pos+k]
			rv := find(v)
			if rv != v {
				continue // already absorbed this pass
			}
			cands := specBuf[k]
			if !specOK[k] || staleSpec(v, cands, dirty) {
				cands = commitSc.rate(h, v, rv, tCost, sCost, opt, find)
			}
			bestU := pick(cands, rv, grp, weight, maxW)
			if bestU < 0 {
				continue
			}
			parent[rv] = bestU
			weight[bestU] += weight[rv]
			if grp[bestU] < 0 {
				grp[bestU] = grp[rv]
			}
			dirty[rv] = true
			dirty[bestU] = true
			if budget > 0 {
				budget--
				if budget == 0 {
					return // don't coarsen past the target
				}
			}
		}
	}
}

// staleSpec reports whether a speculative rating for v may disagree with what
// the sequential loop would compute now: v itself merged (its weight grew) or
// any rated candidate root was an endpoint of a merge this batch (it may no
// longer be a root, or its weight/group changed).
func staleSpec(v int, cands []ratedCand, dirty map[int]bool) bool {
	if len(dirty) == 0 {
		return false
	}
	if dirty[v] {
		return true
	}
	for _, c := range cands {
		if dirty[c.root] {
			return true
		}
	}
	return false
}

func densify(assign []int) ([]int, int) {
	dense := map[int]int{}
	out := make([]int, len(assign))
	for i, c := range assign {
		id, ok := dense[c]
		if !ok {
			id = len(dense)
			dense[c] = id
		}
		out[i] = id
	}
	return out, len(dense)
}

// TimingCosts converts top-path slacks into per-hyperedge timing costs t_e,
// following the criticality weighting of [5]: each path p carries
// t_p = (1 - slack_p/T)^2 (clamped at 0), a hyperedge takes the worst
// criticality over the paths traversing it, and the result is normalized to
// max 1. Taking the max rather than the sum keeps t_e a *criticality*
// measure instead of a traversal-popularity measure.
//
// pathNets lists, per path, the hyperedge IDs the path traverses; slacks is
// aligned with pathNets; numEdges sizes the result.
func TimingCosts(pathNets [][]int, slacks []float64, clockPeriod float64, numEdges int) []float64 {
	t := make([]float64, numEdges)
	if clockPeriod <= 0 {
		return t
	}
	for i, nets := range pathNets {
		crit := 1 - slacks[i]/clockPeriod
		if crit <= 0 {
			continue
		}
		tp := crit * crit
		for _, e := range nets {
			if e >= 0 && e < numEdges && tp > t[e] {
				t[e] = tp
			}
		}
	}
	var max float64
	for _, v := range t {
		if v > max {
			max = v
		}
	}
	if max > 0 {
		for i := range t {
			t[i] /= max
		}
	}
	return t
}

// SwitchCosts computes per-hyperedge switching costs s_e per Eq. 2:
//
//	s_e = (1 + θ_e / Σθ)^μ
//
// where θ_e is the switching activity of edge e.
func SwitchCosts(activity []float64, mu float64) []float64 {
	if mu == 0 {
		mu = 2
	}
	var total float64
	for _, a := range activity {
		total += a
	}
	out := make([]float64, len(activity))
	if total <= 0 {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	for i, a := range activity {
		out[i] = math.Pow(1+a/total, mu)
	}
	return out
}

// Sizes returns the size of each cluster in a dense assignment.
func Sizes(assign []int, k int) []int {
	out := make([]int, k)
	for _, c := range assign {
		out[c]++
	}
	return out
}
