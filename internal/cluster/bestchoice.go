package cluster

import (
	"container/heap"

	"ppaclust/internal/hypergraph"
)

// BestChoice implements the Best-Choice clustering of Alpert et al. [1]:
// instead of first-choice's per-vertex greedy matching, a global priority
// queue always merges the best-rated pair in the whole netlist, with lazy
// rating updates. It serves as an additional baseline to multilevel FC (the
// paper discusses BC in related work and notes its scaling limits — visible
// here as the O(V log V) heap churn with full neighborhood rescans).
//
// The rating function is the same Eq. 3 heavy-edge rating as MultilevelFC,
// including the optional PPA terms.
func BestChoice(h *hypergraph.Hypergraph, opt Options) Result {
	opt = opt.withDefaults(h)
	n := h.NumVertices()

	parent := make([]int, n)
	weight := make([]float64, n)
	for v := 0; v < n; v++ {
		parent[v] = v
		weight[v] = h.VertexWeight(v)
	}
	var find func(int) int
	find = func(v int) int {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	maxW := opt.MaxClusterFactor * h.TotalVertexWeight() / float64(opt.TargetClusters)

	// bestPair computes v's best merge partner and rating among current
	// cluster representatives.
	rating := map[int]float64{}
	bestPair := func(v int) (int, float64) {
		for k := range rating {
			delete(rating, k)
		}
		rv := find(v)
		for _, e := range h.Incident(v) {
			verts := h.Edge(e)
			if len(verts) < 2 || len(verts) > opt.MaxEdgeSize {
				continue
			}
			num := opt.Alpha * h.EdgeWeight(e)
			if opt.EdgeTimingCost != nil {
				num += opt.Beta * opt.EdgeTimingCost[e]
			}
			if opt.EdgeSwitchCost != nil {
				num += opt.Gamma * opt.EdgeSwitchCost[e]
			}
			r := num / float64(len(verts)-1)
			for _, u := range verts {
				ru := find(u)
				if ru != rv {
					rating[ru] += r
				}
			}
		}
		bu, br := -1, 0.0
		for ru, r := range rating {
			if weight[rv]+weight[ru] > maxW {
				continue
			}
			if r > br+1e-15 || (r > br-1e-15 && br > 0 && ru < bu) {
				bu, br = ru, r
			}
		}
		return bu, br
	}

	pq := &pairHeap{}
	heap.Init(pq)
	for v := 0; v < n; v++ {
		if u, r := bestPair(v); u >= 0 {
			heap.Push(pq, &pair{v: v, u: u, rating: r})
		}
	}

	clusters := n
	merged := 0
	for clusters > opt.TargetClusters && pq.Len() > 0 {
		p := heap.Pop(pq).(*pair)
		rv, ru := find(p.v), find(p.u)
		if rv == ru {
			continue
		}
		// Lazy validation: recompute v's current best; if it changed, requeue.
		u2, r2 := bestPair(p.v)
		if u2 < 0 {
			continue
		}
		if u2 != ru || r2 < p.rating-1e-12 {
			heap.Push(pq, &pair{v: p.v, u: u2, rating: r2})
			continue
		}
		if weight[rv]+weight[ru] > maxW {
			continue
		}
		parent[rv] = ru
		weight[ru] += weight[rv]
		clusters--
		merged++
		// Requeue the merged representative with its new best partner.
		if u3, r3 := bestPair(p.u); u3 >= 0 {
			heap.Push(pq, &pair{v: p.u, u: u3, rating: r3})
		}
	}

	assign := make([]int, n)
	for v := 0; v < n; v++ {
		assign[v] = find(v)
	}
	dense, k := densify(assign)
	res := Result{Assign: dense, NumClusters: k, Levels: merged}
	count := make([]int, k)
	for _, c := range dense {
		count[c]++
	}
	for _, c := range count {
		if c == 1 {
			res.Singletons++
		}
	}
	return res
}

type pair struct {
	v, u   int
	rating float64
}

type pairHeap []*pair

func (h pairHeap) Len() int      { return len(h) }
func (h pairHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h pairHeap) Less(i, j int) bool {
	if h[i].rating != h[j].rating {
		return h[i].rating > h[j].rating
	}
	return h[i].v < h[j].v
}

func (h *pairHeap) Push(x any) { *h = append(*h, x.(*pair)) }

func (h *pairHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
