package cluster

import "testing"

// BenchmarkMultilevelFC measures FC coarsening on a 6000-vertex block graph.
func BenchmarkMultilevelFC(b *testing.B) {
	h := blocks(100, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MultilevelFC(h, Options{TargetClusters: 100, Seed: int64(i)})
	}
}

// BenchmarkBestChoice measures BC clustering on the same graph (the related
// work's scaling concern is visible against BenchmarkMultilevelFC).
func BenchmarkBestChoice(b *testing.B) {
	h := blocks(40, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BestChoice(h, Options{TargetClusters: 40})
	}
}
