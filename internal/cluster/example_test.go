package cluster_test

import (
	"fmt"

	"ppaclust/internal/cluster"
	"ppaclust/internal/hypergraph"
)

// Two disconnected triangles coarsen into exactly two clusters: FC merges
// along hyperedges, so components never mix.
func ExampleMultilevelFC() {
	h := hypergraph.New(6)
	for v := 0; v < 6; v++ {
		h.SetVertexWeight(v, 1)
	}
	for _, e := range [][]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}} {
		h.AddEdge(e, 1)
	}

	res := cluster.MultilevelFC(h, cluster.Options{TargetClusters: 2, Seed: 1})
	fmt.Println("clusters:", res.NumClusters)
	fmt.Println("triangles separated:", res.Assign[0] != res.Assign[3])
	// Output:
	// clusters: 2
	// triangles separated: true
}

// Eq. 2 switching costs grow with a net's share of total activity.
func ExampleSwitchCosts() {
	costs := cluster.SwitchCosts([]float64{1, 3}, 2)
	fmt.Printf("%.4f %.4f\n", costs[0], costs[1])
	// Output:
	// 1.5625 3.0625
}
