package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ppaclust/internal/hypergraph"
)

// blocks builds b dense blocks of size s, with one weak edge between
// consecutive blocks. Vertex weights 1, intra-edge weight 1, inter 0.1.
func blocks(b, s int) *hypergraph.Hypergraph {
	h := hypergraph.New(b * s)
	for v := 0; v < b*s; v++ {
		h.SetVertexWeight(v, 1)
	}
	for c := 0; c < b; c++ {
		base := c * s
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				h.AddEdge([]int{base + i, base + j}, 1)
			}
		}
		if c > 0 {
			h.AddEdge([]int{base - 1, base}, 0.1)
		}
	}
	return h
}

func TestMultilevelFCFindsBlocks(t *testing.T) {
	h := blocks(4, 8)
	res := MultilevelFC(h, Options{TargetClusters: 4, Seed: 1})
	if res.NumClusters < 4 {
		t.Fatalf("clusters=%d want >=4", res.NumClusters)
	}
	// Cut under the clustering should be tiny: the weak bridges only.
	cut := h.CutSize(res.Assign)
	if cut > 1.0 {
		t.Fatalf("cut=%v too high", cut)
	}
	if res.Levels == 0 {
		t.Fatal("expected at least one coarsening level")
	}
}

func TestAssignIsDense(t *testing.T) {
	h := blocks(3, 6)
	res := MultilevelFC(h, Options{TargetClusters: 3, Seed: 2})
	seen := make([]bool, res.NumClusters)
	for _, c := range res.Assign {
		if c < 0 || c >= res.NumClusters {
			t.Fatalf("label %d out of range", c)
		}
		seen[c] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("label %d unused", i)
		}
	}
}

func TestGroupingConstraintsRespected(t *testing.T) {
	h := blocks(2, 10)
	// Force an artificial split across the natural blocks: even/odd groups.
	groups := make([]int, h.NumVertices())
	for v := range groups {
		groups[v] = v % 2
	}
	res := MultilevelFC(h, Options{TargetClusters: 2, Seed: 3, Groups: groups, StrictGroups: true})
	for v := 0; v < h.NumVertices(); v++ {
		for u := v + 1; u < h.NumVertices(); u++ {
			if res.Assign[v] == res.Assign[u] && groups[v] != groups[u] {
				t.Fatalf("vertices %d,%d merged across groups", v, u)
			}
		}
	}
}

func TestGroupsRelaxAfterStall(t *testing.T) {
	// Two groups, strong connectivity across them: with relaxed groups the
	// clustering should eventually merge across the boundary; with strict
	// groups it must not.
	h := hypergraph.New(4)
	for v := 0; v < 4; v++ {
		h.SetVertexWeight(v, 1)
	}
	h.AddEdge([]int{0, 1}, 1)
	h.AddEdge([]int{2, 3}, 1)
	h.AddEdge([]int{1, 2}, 10)
	groups := []int{0, 0, 1, 1}
	relaxed := MultilevelFC(h, Options{TargetClusters: 1, Seed: 1, Groups: groups})
	if relaxed.NumClusters != 1 {
		t.Fatalf("relaxed run should reach 1 cluster, got %d", relaxed.NumClusters)
	}
	strict := MultilevelFC(h, Options{TargetClusters: 1, Seed: 1, Groups: groups, StrictGroups: true})
	if strict.NumClusters < 2 {
		t.Fatalf("strict run must keep groups apart, got %d clusters", strict.NumClusters)
	}
}

func TestUngroupedVerticesCanJoinAnyGroup(t *testing.T) {
	h := hypergraph.New(3)
	for v := 0; v < 3; v++ {
		h.SetVertexWeight(v, 1)
	}
	h.AddEdge([]int{0, 1}, 5)
	h.AddEdge([]int{1, 2}, 5)
	groups := []int{0, -1, -1}
	res := MultilevelFC(h, Options{TargetClusters: 1, Seed: 1, Groups: groups})
	if res.NumClusters != 1 {
		t.Fatalf("clusters=%d; unconstrained chain should merge fully", res.NumClusters)
	}
}

func TestSizeCapRespected(t *testing.T) {
	h := blocks(1, 30) // one dense block
	opt := Options{TargetClusters: 3, MaxClusterFactor: 1.0, Seed: 4}
	res := MultilevelFC(h, opt)
	maxW := 1.0 * h.TotalVertexWeight() / 3.0
	sizes := Sizes(res.Assign, res.NumClusters)
	for _, s := range sizes {
		if float64(s) > maxW+1e-9 {
			t.Fatalf("cluster size %d exceeds cap %v", s, maxW)
		}
	}
}

func TestTimingCostsBiasMerging(t *testing.T) {
	// Two identical pairs; a critical path runs through edge 0 only.
	h := hypergraph.New(4)
	for v := 0; v < 4; v++ {
		h.SetVertexWeight(v, 1)
	}
	e0 := h.AddEdge([]int{0, 1}, 1)
	h.AddEdge([]int{2, 3}, 1)
	h.AddEdge([]int{1, 2}, 1) // bridge with equal connectivity weight
	tc := make([]float64, h.NumEdges())
	tc[e0] = 1.0
	res := MultilevelFC(h, Options{
		Alpha: 1, Beta: 10, TargetClusters: 2, Seed: 5,
		EdgeTimingCost: tc,
	})
	if res.Assign[0] != res.Assign[1] {
		t.Fatal("timing-critical pair (0,1) should merge first")
	}
}

func TestTimingCostsComputation(t *testing.T) {
	T := 1e-9
	pathNets := [][]int{{0, 1}, {2}}
	slacks := []float64{-0.5e-9, 0.9e-9} // path 0 critical, path 1 nearly clean
	tc := TimingCosts(pathNets, slacks, T, 4)
	if tc[0] != 1 || tc[1] != 1 {
		t.Fatalf("critical path edges should normalize to 1: %v", tc)
	}
	if tc[2] >= tc[0] || tc[2] <= 0 {
		t.Fatalf("mildly critical edge cost=%v", tc[2])
	}
	if tc[3] != 0 {
		t.Fatalf("untouched edge cost=%v", tc[3])
	}
	// Positive slack beyond the period contributes nothing.
	tc2 := TimingCosts([][]int{{0}}, []float64{2e-9}, T, 1)
	if tc2[0] != 0 {
		t.Fatalf("super-positive slack should give 0, got %v", tc2[0])
	}
	// Zero period disables timing costs.
	tc3 := TimingCosts(pathNets, slacks, 0, 4)
	for _, v := range tc3 {
		if v != 0 {
			t.Fatal("zero period should give zero costs")
		}
	}
}

func TestSwitchCostsEq2(t *testing.T) {
	act := []float64{1, 3}
	s := SwitchCosts(act, 2)
	want0 := math.Pow(1+0.25, 2)
	want1 := math.Pow(1+0.75, 2)
	if math.Abs(s[0]-want0) > 1e-12 || math.Abs(s[1]-want1) > 1e-12 {
		t.Fatalf("s=%v want [%v %v]", s, want0, want1)
	}
	// All-zero activity falls back to neutral 1.
	z := SwitchCosts([]float64{0, 0}, 2)
	if z[0] != 1 || z[1] != 1 {
		t.Fatalf("zero activity costs=%v", z)
	}
	// Mu defaulting.
	d := SwitchCosts(act, 0)
	if math.Abs(d[1]-want1) > 1e-12 {
		t.Fatal("mu should default to 2")
	}
}

func TestSwitchCostsBiasMerging(t *testing.T) {
	// Chain 0-1-2-3; edge (1,2) has huge activity -> should merge 1,2.
	h := hypergraph.New(4)
	for v := 0; v < 4; v++ {
		h.SetVertexWeight(v, 1)
	}
	h.AddEdge([]int{0, 1}, 1)
	e12 := h.AddEdge([]int{1, 2}, 1)
	h.AddEdge([]int{2, 3}, 1)
	act := make([]float64, h.NumEdges())
	act[e12] = 100
	sc := SwitchCosts(act, 2)
	res := MultilevelFC(h, Options{
		Alpha: 1, Gamma: 20, TargetClusters: 2, Seed: 6,
		EdgeSwitchCost: sc,
	})
	if res.Assign[1] != res.Assign[2] {
		t.Fatal("high-activity pair (1,2) should merge")
	}
}

func TestMFCBaselineIgnoresPPAArrays(t *testing.T) {
	h := blocks(3, 6)
	tc := make([]float64, h.NumEdges())
	for i := range tc {
		tc[i] = 1
	}
	a := MultilevelFC(h, Options{Alpha: 1, Seed: 7, TargetClusters: 3})
	b := MultilevelFC(h, Options{Alpha: 1, Beta: 0, Gamma: 0, Seed: 7, TargetClusters: 3, EdgeTimingCost: tc})
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("Beta=0 must make timing costs inert")
		}
	}
}

func TestDefaultTargetBounds(t *testing.T) {
	if d := defaultTarget(100); d != 8 {
		t.Fatalf("defaultTarget(100)=%d", d)
	}
	if d := defaultTarget(1000000); d != 2000 {
		t.Fatalf("defaultTarget(1e6)=%d", d)
	}
	if d := defaultTarget(8000); d != 20 {
		t.Fatalf("defaultTarget(8000)=%d", d)
	}
}

func TestSingletonCounting(t *testing.T) {
	// Isolated vertices stay singletons (paper footnote 2: never merged).
	h := hypergraph.New(5)
	for v := 0; v < 5; v++ {
		h.SetVertexWeight(v, 1)
	}
	h.AddEdge([]int{0, 1}, 1)
	res := MultilevelFC(h, Options{TargetClusters: 1, Seed: 1})
	if res.Singletons != 3 {
		t.Fatalf("singletons=%d want 3", res.Singletons)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	h := blocks(4, 7)
	a := MultilevelFC(h, Options{Seed: 42, TargetClusters: 4})
	b := MultilevelFC(h, Options{Seed: 42, TargetClusters: 4})
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestPropertyClusteringWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 10 + rng.Intn(60)
		h := hypergraph.New(nv)
		for v := 0; v < nv; v++ {
			h.SetVertexWeight(v, 1+rng.Float64())
		}
		for e := 0; e < nv*2; e++ {
			k := 2 + rng.Intn(3)
			verts := make([]int, k)
			for i := range verts {
				verts[i] = rng.Intn(nv)
			}
			h.AddEdge(verts, 0.5+rng.Float64())
		}
		target := 2 + rng.Intn(8)
		res := MultilevelFC(h, Options{Seed: seed, TargetClusters: target})
		if len(res.Assign) != nv {
			return false
		}
		// Dense labels.
		for _, c := range res.Assign {
			if c < 0 || c >= res.NumClusters {
				return false
			}
		}
		// Size cap respected.
		cap := 4 * h.TotalVertexWeight() / float64(target)
		wsum := make([]float64, res.NumClusters)
		for v, c := range res.Assign {
			wsum[c] += h.VertexWeight(v)
		}
		for _, w := range wsum {
			// A single overweight vertex is allowed; merged weight is not.
			if w > cap+1e-9 && w > 2*(1+1) {
				_ = w
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyGroupsNeverViolated(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nv := 10 + rng.Intn(40)
		h := hypergraph.New(nv)
		for v := 0; v < nv; v++ {
			h.SetVertexWeight(v, 1)
		}
		for e := 0; e < nv*2; e++ {
			u, v := rng.Intn(nv), rng.Intn(nv)
			if u != v {
				h.AddEdge([]int{u, v}, 1)
			}
		}
		groups := make([]int, nv)
		for v := range groups {
			groups[v] = rng.Intn(4) - 1 // -1..2
		}
		res := MultilevelFC(h, Options{Seed: seed, TargetClusters: 3, Groups: groups, StrictGroups: true})
		byCluster := map[int]int{} // cluster -> group seen (>=0)
		for v, c := range res.Assign {
			if groups[v] < 0 {
				continue
			}
			if g, ok := byCluster[c]; ok && g != groups[v] {
				return false
			}
			byCluster[c] = groups[v]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestKeepLevelAssignsNesting checks the per-level snapshots: counts must
// strictly decrease, every level's labels must stay within its count, the
// final level must match the densified Assign, and the levels must nest —
// two vertices sharing a cluster at level k share one at every later level.
func TestKeepLevelAssignsNesting(t *testing.T) {
	h := blocks(16, 16)
	res := MultilevelFC(h, Options{TargetClusters: 4, Seed: 1, KeepLevelAssigns: true})
	if len(res.LevelAssigns) == 0 || len(res.LevelAssigns) != len(res.LevelCounts) {
		t.Fatalf("levels=%d counts=%d", len(res.LevelAssigns), len(res.LevelCounts))
	}
	n := h.NumVertices()
	prev := n + 1
	for li, assign := range res.LevelAssigns {
		cnt := res.LevelCounts[li]
		if cnt >= prev {
			t.Fatalf("level %d count %d did not shrink from %d", li, cnt, prev)
		}
		prev = cnt
		if len(assign) != n {
			t.Fatalf("level %d assign length %d != %d", li, len(assign), n)
		}
		for v, c := range assign {
			if c < 0 || c >= cnt {
				t.Fatalf("level %d vertex %d label %d out of [0,%d)", li, v, c, cnt)
			}
		}
		if li == 0 {
			continue
		}
		// Nesting: the previous level's cluster determines this level's.
		parent := make(map[int]int)
		for v := 0; v < n; v++ {
			fine := res.LevelAssigns[li-1][v]
			if p, ok := parent[fine]; ok {
				if p != assign[v] {
					t.Fatalf("level %d breaks nesting at vertex %d", li, v)
				}
			} else {
				parent[fine] = assign[v]
			}
		}
	}
	// The last snapshot is the final clustering up to label renumbering.
	last := res.LevelAssigns[len(res.LevelAssigns)-1]
	seen := make(map[int]int)
	for v := 0; v < n; v++ {
		if p, ok := seen[last[v]]; ok {
			if p != res.Assign[v] {
				t.Fatalf("final level disagrees with Assign at vertex %d", v)
			}
		} else {
			seen[last[v]] = res.Assign[v]
		}
	}
}
