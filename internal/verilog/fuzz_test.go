package verilog

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/scan"
)

// FuzzReadVerilog asserts the structural-Verilog reader never panics,
// returns structured errors, and round-trips its own emission
// byte-for-byte (including assign canonicalization and escaped
// identifiers).
func FuzzReadVerilog(f *testing.F) {
	b := designs.Generate(designs.TinySpec(7))
	var seed bytes.Buffer
	if err := Write(&seed, b.Design); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("module m (a, z);\n  input a;\n  output z;\n  wire w1;\n" +
		"  INV_X1 u1 (.A(a), .ZN(w1));\n  INV_X1 u2 (.A(w1), .ZN(z));\nendmodule\n")
	f.Add("module m (x, y);\n  input x;\n  input y;\n  assign x = y;\nendmodule\n")
	f.Add("module m (\\a/b );\n  input \\a/b ;\nendmodule\n")
	f.Add("module m (a);\n  input a;\n  BOGUS u (.A(a));\nendmodule\n")
	f.Fuzz(func(t *testing.T, in string) {
		d, _, err := ParseWith(strings.NewReader(in), designs.Lib(), Options{File: "fuzz.v"})
		if _, _, lerr := ParseWith(strings.NewReader(in), designs.Lib(),
			Options{File: "fuzz.v", Lenient: true}); lerr != nil {
			requireParseError(t, lerr)
		}
		if err != nil {
			requireParseError(t, err)
			return
		}
		var w1 bytes.Buffer
		if err := Write(&w1, d); err != nil {
			t.Fatalf("write after accepting parse: %v", err)
		}
		d2, err := Parse(bytes.NewReader(w1.Bytes()), designs.Lib())
		if err != nil {
			t.Fatalf("re-parse of own output failed: %v\noutput:\n%s", err, w1.String())
		}
		var w2 bytes.Buffer
		if err := Write(&w2, d2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("write->read->write is not a fixpoint\n--- first:\n%s--- second:\n%s",
				w1.String(), w2.String())
		}
	})
}

func requireParseError(t *testing.T, err error) {
	t.Helper()
	var pe *scan.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is not a *scan.ParseError: %T: %v", err, err)
	}
	if pe.File == "" {
		t.Fatalf("ParseError without file context: %v", pe)
	}
}
