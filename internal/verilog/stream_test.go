package verilog

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/iotest"

	"ppaclust/internal/designs"
	"ppaclust/internal/scan"
)

// TestStreamingLexerChunkInvariant checks that the streaming lexer is
// insensitive to how the reader chops the byte stream: a one-byte-at-a-time
// reader (worst case for tokens spanning read boundaries) must yield exactly
// the design a whole-buffer read does. The comparison is the written form,
// which canonicalizes ordering.
func TestStreamingLexerChunkInvariant(t *testing.T) {
	b := designs.Generate(designs.TinySpec(321))
	var src bytes.Buffer
	if err := Write(&src, b.Design); err != nil {
		t.Fatal(err)
	}
	whole, err := Parse(bytes.NewReader(src.Bytes()), b.Design.Lib)
	if err != nil {
		t.Fatal(err)
	}
	chunked, err := Parse(iotest.OneByteReader(bytes.NewReader(src.Bytes())), b.Design.Lib)
	if err != nil {
		t.Fatalf("one-byte reader: %v", err)
	}
	var w1, w2 bytes.Buffer
	if err := Write(&w1, whole); err != nil {
		t.Fatal(err)
	}
	if err := Write(&w2, chunked); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Fatal("parse differs between whole-buffer and one-byte readers")
	}
}

// TestStreamingReadErrorSurfaces checks that an I/O failure mid-parse comes
// back as a structured *scan.ParseError mentioning the read, not as a
// spurious syntax diagnosis.
func TestStreamingReadErrorSurfaces(t *testing.T) {
	head := "module m (a);\n  input a;\n  INV_X1 u (.A("
	boom := errors.New("disk on fire")
	r := io.MultiReader(strings.NewReader(head), iotest.ErrReader(boom))
	_, err := Parse(r, designs.Lib())
	if err == nil {
		t.Fatal("parse accepted a failing reader")
	}
	var pe *scan.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T, not *scan.ParseError: %v", err, err)
	}
	if !strings.Contains(pe.Error(), "read") || !strings.Contains(pe.Error(), "disk on fire") {
		t.Fatalf("error %q does not carry the read failure", pe.Error())
	}
}
