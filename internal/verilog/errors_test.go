package verilog

import (
	"errors"
	"strings"
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/netlist"
	"ppaclust/internal/scan"
)

// TestMalformedInputs checks that syntax and reference errors carry file
// and line context as structured *scan.ParseError values.
func TestMalformedInputs(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		line    int
		msgPart string
	}{
		{"not a module", "wire w;\n", 1, `expected "module"`},
		{"eof mid header", "module m (a, b\n", 1, `expected ")"`},
		{"eof in body", "module m ();\n  wire w;\n", 2, "end of file"},
		{"bad port decl", "module m (a);\n  input a b;\n", 2, "port declaration"},
		{"duplicate port", "module m (a);\n  input a;\n  output a;\n", 3, "a"},
		{"unknown cell", "module m ();\n  BOGUS u ();\nendmodule\n", 2, "unknown cell"},
		{"unknown pin", "module m ();\n  INV_X1 u (.Q(w));\nendmodule\n", 2, "no such pin"},
		{"eof in instance", "module m ();\n  INV_X1 u (.A(\n", 2, `expected ")"`},
		{"non-port assign", "module m ();\n  wire a, b;\n  assign a = b;\nendmodule\n", 3, "outside the subset"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.in), designs.Lib())
			if err == nil {
				t.Fatalf("parse accepted %q", tc.in)
			}
			var pe *scan.ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error is %T, not *scan.ParseError: %v", err, err)
			}
			if pe.File != "verilog" {
				t.Fatalf("file = %q", pe.File)
			}
			if pe.Line != tc.line {
				t.Fatalf("line = %d, want %d (%v)", pe.Line, tc.line, pe)
			}
			if !strings.Contains(pe.Error(), tc.msgPart) {
				t.Fatalf("error %q does not mention %q", pe.Error(), tc.msgPart)
			}
		})
	}
}

// TestLenientSkipsNonPortAssign checks the one lenient-tolerable construct:
// an assign between two non-port names is skipped with a warning.
func TestLenientSkipsNonPortAssign(t *testing.T) {
	in := "module m (p);\n  input p;\n  wire a, b;\n  assign a = b;\n  INV_X1 u (.A(a), .ZN(b));\nendmodule\n"
	d, warns, err := ParseWith(strings.NewReader(in), designs.Lib(), Options{Lenient: true})
	if err != nil {
		t.Fatalf("lenient parse failed: %v", err)
	}
	if len(warns) != 1 || warns[0].Line != 4 {
		t.Fatalf("warnings = %v, want one at line 4", warns)
	}
	if d.Instance("u") == nil {
		t.Fatal("instance after skipped assign lost")
	}
	// Unknown cells stay fatal in lenient mode.
	if _, _, err := ParseWith(strings.NewReader("module m ();\n  BOGUS u ();\nendmodule\n"),
		designs.Lib(), Options{Lenient: true}); err == nil {
		t.Fatal("unknown cell must stay fatal in lenient mode")
	}
}

// TestPortToPortAssignStable checks the canonicalization order fix: an
// assign between two input ports keeps the same direction through a
// write/parse cycle instead of flipping every iteration.
func TestPortToPortAssignStable(t *testing.T) {
	in := "module m (x, y);\n  input x;\n  input y;\n  assign x = y;\nendmodule\n"
	d, err := Parse(strings.NewReader(in), designs.Lib())
	if err != nil {
		t.Fatal(err)
	}
	var w1 strings.Builder
	if err := Write(&w1, d); err != nil {
		t.Fatal(err)
	}
	d2, err := Parse(strings.NewReader(w1.String()), designs.Lib())
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, w1.String())
	}
	var w2 strings.Builder
	if err := Write(&w2, d2); err != nil {
		t.Fatal(err)
	}
	if w1.String() != w2.String() {
		t.Fatalf("port-to-port assign not stable:\n--- w1:\n%s--- w2:\n%s", w1.String(), w2.String())
	}
}

// TestOutputPortAssignPrecedence checks the lhs-output case wins over the
// rhs-port case, matching the writer's emission for output ports.
func TestOutputPortAssignPrecedence(t *testing.T) {
	in := "module m (o, i);\n  output o;\n  input i;\n  assign o = i;\nendmodule\n"
	d, err := Parse(strings.NewReader(in), designs.Lib())
	if err != nil {
		t.Fatal(err)
	}
	// Port o should ride on net i.
	n := d.Net("i")
	if n == nil {
		t.Fatal("net i missing")
	}
	found := false
	for _, pr := range n.Pins {
		if pr.IsPort() && pr.Pin == "o" {
			found = true
		}
	}
	if !found {
		t.Fatal("output port o not attached to net i")
	}
	_ = netlist.DirOutput
}
