package verilog

import (
	"bytes"
	"strings"
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/netlist"
)

func TestWriteParseRoundTrip(t *testing.T) {
	b := designs.Generate(designs.TinySpec(101))
	var buf bytes.Buffer
	if err := Write(&buf, b.Design); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(bytes.NewReader(buf.Bytes()), b.Design.Lib)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(got.Insts) != len(b.Design.Insts) {
		t.Fatalf("insts %d != %d", len(got.Insts), len(b.Design.Insts))
	}
	if len(got.Ports) != len(b.Design.Ports) {
		t.Fatalf("ports %d != %d", len(got.Ports), len(b.Design.Ports))
	}
	// Hierarchy must survive (escaped identifiers).
	orig := b.Design.Insts[0]
	ri := got.Instance(orig.Name)
	if ri == nil {
		t.Fatalf("instance %q lost", orig.Name)
	}
	if ri.Master.Name != orig.Master.Name {
		t.Fatal("master changed")
	}
	// Connectivity: same pin counts per net name.
	for _, n := range b.Design.Nets {
		rn := got.Net(n.Name)
		if rn == nil {
			t.Fatalf("net %q lost", n.Name)
		}
		if len(rn.Pins) != len(n.Pins) {
			t.Fatalf("net %q pins %d != %d", n.Name, len(rn.Pins), len(n.Pins))
		}
	}
}

func TestParseSimpleModule(t *testing.T) {
	lib := designs.Lib()
	src := `
// comment
module top (a, y, clk);
  input a;
  input clk;
  output y;
  wire n1;
  INV_X1 u1 (.A(a), .ZN(n1));
  DFF_X1 ff1 (.D(n1), .CK(clk), .Q(y));
endmodule
`
	d, err := Parse(strings.NewReader(src), lib)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Insts) != 2 || len(d.Ports) != 3 || len(d.Nets) != 4 {
		t.Fatalf("counts: %d insts %d ports %d nets", len(d.Insts), len(d.Ports), len(d.Nets))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Port "a" is on net "a" which feeds u1/A.
	na := d.Net("a")
	if len(na.Pins) != 2 {
		t.Fatalf("net a pins=%v", na.Pins)
	}
}

func TestParseAssign(t *testing.T) {
	lib := designs.Lib()
	src := `module top (a, y);
  input a;
  output y;
  wire n1;
  INV_X1 u1 (.A(a), .ZN(n1));
  assign y = n1;
endmodule`
	d, err := Parse(strings.NewReader(src), lib)
	if err != nil {
		t.Fatal(err)
	}
	n1 := d.Net("n1")
	foundPort := false
	for _, pr := range n1.Pins {
		if pr.IsPort() && pr.Pin == "y" {
			foundPort = true
		}
	}
	if !foundPort {
		t.Fatal("assign did not attach port y to n1")
	}
}

func TestParseErrors(t *testing.T) {
	lib := designs.Lib()
	cases := []string{
		"module top (a); input a; UNKNOWN_CELL u1 (.A(a)); endmodule",
		"module top (a); input a; INV_X1 u1 (.NOPE(a)); endmodule",
		"module top (a); input a;", // truncated
		"notamodule",
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src), lib); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
}

func TestEscapedIdentifiers(t *testing.T) {
	if ident("plain_name") != "plain_name" {
		t.Fatal("plain identifier escaped")
	}
	if got := ident("a/b/c"); got != "\\a/b/c " {
		t.Fatalf("escaped=%q", got)
	}
	if got := ident("0start"); !strings.HasPrefix(got, "\\") {
		t.Fatal("leading digit must be escaped")
	}
	lib := designs.Lib()
	src := "module top (a);\n input a;\n INV_X1 \\u/1 (.A(a));\nendmodule"
	d, err := Parse(strings.NewReader(src), lib)
	if err != nil {
		t.Fatal(err)
	}
	if d.Instance("u/1") == nil {
		t.Fatal("escaped instance name lost")
	}
	_ = netlist.PinRef{}
}
