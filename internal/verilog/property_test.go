package verilog

import (
	"bytes"
	"testing"
	"testing/quick"

	"ppaclust/internal/designs"
)

// TestPropertyRoundTripManySeeds checks write->parse equivalence across many
// generated designs: instance/net/port counts, per-net pin counts, and
// hierarchy paths all survive.
func TestPropertyRoundTripManySeeds(t *testing.T) {
	f := func(seed int64) bool {
		spec := designs.TinySpec(1000 + seed%17)
		spec.TargetInsts = 150
		b := designs.Generate(spec)
		var buf bytes.Buffer
		if err := Write(&buf, b.Design); err != nil {
			return false
		}
		got, err := Parse(bytes.NewReader(buf.Bytes()), b.Design.Lib)
		if err != nil {
			return false
		}
		if len(got.Insts) != len(b.Design.Insts) ||
			len(got.Nets) != len(b.Design.Nets) ||
			len(got.Ports) != len(b.Design.Ports) {
			return false
		}
		for _, n := range b.Design.Nets {
			rn := got.Net(n.Name)
			if rn == nil || len(rn.Pins) != len(n.Pins) {
				return false
			}
		}
		for _, inst := range b.Design.Insts {
			ri := got.Instance(inst.Name)
			if ri == nil || ri.Master.Name != inst.Master.Name {
				return false
			}
		}
		return got.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestWriteIsDeterministic confirms byte-identical output for the same
// design (required for reproducible ppagen artifacts).
func TestWriteIsDeterministic(t *testing.T) {
	b := designs.Generate(designs.TinySpec(77))
	var b1, b2 bytes.Buffer
	if err := Write(&b1, b.Design); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b2, b.Design); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("verilog writer not deterministic")
	}
}
