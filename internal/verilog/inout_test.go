package verilog

import (
	"bytes"
	"strings"
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/netlist"
)

func TestInoutPortRoundTrip(t *testing.T) {
	lib := designs.Lib()
	d := netlist.NewDesign("io", lib)
	if _, err := d.AddPort("bidir", netlist.DirInout); err != nil {
		t.Fatal(err)
	}
	g, _ := d.AddInstance("g", lib.Master("INV_X1"))
	n, _ := d.AddNet("bidir")
	d.Connect(n, netlist.PinRef{Inst: -1, Pin: "bidir"})
	d.Connect(n, netlist.PinRef{Inst: g.ID, Pin: "A"})
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "inout bidir;") {
		t.Fatalf("missing inout declaration:\n%s", buf.String())
	}
	got, err := Parse(bytes.NewReader(buf.Bytes()), lib)
	if err != nil {
		t.Fatal(err)
	}
	p := got.Port("bidir")
	if p == nil || p.Dir != netlist.DirInout {
		t.Fatal("inout direction lost")
	}
}

func TestTokenizerComments(t *testing.T) {
	src := `module t (a); // line comment
/* block
comment */ input a;
endmodule`
	d, err := Parse(strings.NewReader(src), designs.Lib())
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Ports) != 1 {
		t.Fatal("comment handling broke parsing")
	}
}
