// Package verilog reads and writes the gate-level structural Verilog subset
// the flow consumes: one flat module with scalar ports, wires, and primitive
// instances using named port connections. Hierarchical instance names are
// emitted as escaped identifiers (\a/b/c ), so the logical hierarchy
// round-trips through the file format.
package verilog

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"ppaclust/internal/netlist"
	"ppaclust/internal/scan"
)

// Write emits the design as structural Verilog.
func Write(w io.Writer, d *netlist.Design) error {
	var names []string
	for _, p := range d.Ports {
		names = append(names, ident(p.Name))
	}
	if _, err := fmt.Fprintf(w, "module %s (%s);\n", ident(d.Name), strings.Join(names, ", ")); err != nil {
		return err
	}
	for _, p := range d.Ports {
		dir := "input"
		switch p.Dir {
		case netlist.DirOutput:
			dir = "output"
		case netlist.DirInout:
			dir = "inout"
		}
		fmt.Fprintf(w, "  %s %s;\n", dir, ident(p.Name))
	}
	// Wires: nets that are not port nets need declarations. A net named the
	// same as a port is the port itself.
	portSet := map[string]bool{}
	for _, p := range d.Ports {
		portSet[p.Name] = true
	}
	for _, n := range d.Nets {
		if !portSet[n.Name] {
			fmt.Fprintf(w, "  wire %s;\n", ident(n.Name))
		}
	}
	// Port pins riding on differently-named nets become assigns, emitted in
	// sorted order: net creation order differs between a parsed design and
	// its re-parsed emission, so iteration order alone is not canonical.
	var assigns []string
	for _, n := range d.Nets {
		for _, pr := range n.Pins {
			if !pr.IsPort() || pr.Pin == n.Name {
				continue
			}
			port := d.Port(pr.Pin)
			if port == nil {
				continue
			}
			if port.Dir == netlist.DirOutput {
				assigns = append(assigns, fmt.Sprintf("  assign %s = %s;\n", ident(port.Name), ident(n.Name)))
			} else {
				assigns = append(assigns, fmt.Sprintf("  assign %s = %s;\n", ident(n.Name), ident(port.Name)))
			}
		}
	}
	sort.Strings(assigns)
	for _, a := range assigns {
		io.WriteString(w, a)
	}
	// Instance connections: gather per instance.
	conns := make(map[int][][2]string) // inst -> [pin, net]
	for _, n := range d.Nets {
		for _, pr := range n.Pins {
			if pr.IsPort() {
				continue
			}
			conns[pr.Inst] = append(conns[pr.Inst], [2]string{pr.Pin, n.Name})
		}
	}
	for _, inst := range d.Insts {
		cs := conns[inst.ID]
		// Order by (pin, net): duplicate pin connections must emit
		// deterministically, and sort.Slice is not stable.
		sort.Slice(cs, func(i, j int) bool {
			if cs[i][0] != cs[j][0] {
				return cs[i][0] < cs[j][0]
			}
			return cs[i][1] < cs[j][1]
		})
		parts := make([]string, 0, len(cs))
		for _, c := range cs {
			parts = append(parts, fmt.Sprintf(".%s(%s)", c[0], ident(c[1])))
		}
		fmt.Fprintf(w, "  %s %s (%s);\n", inst.Master.Name, ident(inst.Name), strings.Join(parts, ", "))
	}
	_, err := fmt.Fprintln(w, "endmodule")
	return err
}

// ident escapes identifiers that are not plain Verilog names.
func ident(s string) string {
	plain := true
	for i, r := range s {
		ok := r == '_' || r == '$' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			plain = false
			break
		}
	}
	if plain && s != "" {
		return s
	}
	return "\\" + s + " " // escaped identifier, trailing space required
}

// Options configures a parse.
type Options struct {
	// File names the input in errors; defaults to "verilog".
	File string
	// Lenient tolerates assigns between two non-port names by skipping the
	// statement and recording a warning. Structural errors (unknown cells,
	// unknown pins, broken syntax) are fatal in both modes.
	Lenient bool
}

// Parse reads a structural Verilog module into a design bound to lib,
// strictly: every malformed construct is a *scan.ParseError. Every
// instantiated cell must exist in lib.
func Parse(r io.Reader, lib *netlist.Library) (*netlist.Design, error) {
	d, _, err := ParseWith(r, lib, Options{})
	return d, err
}

// ParseWith reads Verilog under the given options. In lenient mode the
// returned warnings list the statements that were skipped.
func ParseWith(r io.Reader, lib *netlist.Library, o Options) (*netlist.Design, []*scan.ParseError, error) {
	file := o.File
	if file == "" {
		file = "verilog"
	}
	p := &parser{lx: newLexer(r), lib: lib, file: file, strict: !o.Lenient}
	if o.Lenient {
		p.warns = &scan.Warnings{}
	}
	d, err := p.parseModule()
	return d, p.warns.List(), err
}

type token struct {
	text string
	line int
}

// lexer streams tokens from the reader one at a time, so parsing a
// multi-hundred-MB netlist never holds the raw file bytes or a whole-file
// token slice — peak memory is one bufio window plus the design being built.
// The empty token text marks exhaustion: EOF, or a read failure left sticky
// in err.
type lexer struct {
	br   *bufio.Reader
	line int
	last int    // line of the last real token; exhaustion reports here
	err  error  // sticky non-EOF read error
	buf  []byte // scratch for multi-byte tokens
}

func newLexer(r io.Reader) *lexer {
	return &lexer{br: bufio.NewReaderSize(r, 64<<10), line: 1}
}

func (lx *lexer) readByte() (byte, bool) {
	if lx.err != nil {
		return 0, false
	}
	c, err := lx.br.ReadByte()
	if err != nil {
		if err != io.EOF {
			lx.err = err
		}
		return 0, false
	}
	return c, true
}

func (lx *lexer) next() token {
	t := lx.scanToken()
	if t.text != "" {
		lx.last = t.line
	}
	return t
}

func (lx *lexer) scanToken() token {
	for {
		c, ok := lx.readByte()
		if !ok {
			return token{"", lx.last}
		}
		switch {
		case c == '\n':
			lx.line++
		case c == ' ' || c == '\t' || c == '\r':
		case c == '/':
			d, ok := lx.readByte()
			if !ok {
				return token{"/", lx.line}
			}
			switch d {
			case '/':
				for {
					c, ok := lx.readByte()
					if !ok {
						return token{"", lx.last}
					}
					if c == '\n' {
						lx.line++
						break
					}
				}
			case '*':
				prev := byte(0)
				for {
					c, ok := lx.readByte()
					if !ok {
						return token{"", lx.last}
					}
					if c == '\n' {
						lx.line++
					}
					if prev == '*' && c == '/' {
						break
					}
					prev = c
				}
			default:
				lx.br.UnreadByte()
				return lx.word(c)
			}
		case c == '\\': // escaped identifier: up to whitespace, backslash dropped
			ln := lx.line
			lx.buf = lx.buf[:0]
			for {
				c, ok := lx.readByte()
				if !ok {
					break
				}
				if c == ' ' || c == '\t' || c == '\n' {
					lx.br.UnreadByte()
					break
				}
				lx.buf = append(lx.buf, c)
			}
			return token{string(lx.buf), ln}
		case c == '(' || c == ')' || c == ',' || c == '.' || c == ';' || c == '=':
			return token{string(c), lx.line}
		default:
			return lx.word(c)
		}
	}
}

// word accumulates an ordinary token starting with c, up to the next
// whitespace or punctuation byte (which stays unread for the next call).
func (lx *lexer) word(c byte) token {
	ln := lx.line
	lx.buf = append(lx.buf[:0], c)
	for {
		c, ok := lx.readByte()
		if !ok {
			break
		}
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' ||
			c == '(' || c == ')' || c == ',' || c == '.' || c == ';' || c == '=' || c == '\\' {
			lx.br.UnreadByte()
			break
		}
		lx.buf = append(lx.buf, c)
	}
	return token{string(lx.buf), ln}
}

type parser struct {
	lx      *lexer
	pend    token
	hasPend bool
	lib     *netlist.Library
	file    string
	strict  bool
	warns   *scan.Warnings
}

func (p *parser) peek() token {
	if !p.hasPend {
		p.pend = p.lx.next()
		p.hasPend = true
	}
	return p.pend
}

func (p *parser) next() token {
	t := p.peek()
	p.hasPend = false
	return t
}

// eofErr reports token exhaustion: the underlying read error when one is
// pending, otherwise the parse-level message.
func (p *parser) eofErr(line int, format string, args ...any) *scan.ParseError {
	if p.lx.err != nil {
		return p.errf(p.lx.line, "", "read: %v", p.lx.err)
	}
	return p.errf(line, "", format, args...)
}

func (p *parser) errf(line int, tok, format string, args ...any) *scan.ParseError {
	return scan.Errorf(p.file, line, tok, format, args...)
}

func (p *parser) expect(text string) error {
	t := p.next()
	if t.text != text {
		if t.text == "" && p.lx.err != nil {
			return p.eofErr(t.line, "")
		}
		return p.errf(t.line, t.text, "expected %q", text)
	}
	return nil
}

func (p *parser) parseModule() (*netlist.Design, error) {
	if err := p.expect("module"); err != nil {
		return nil, err
	}
	name := p.next().text
	d := netlist.NewDesign(name, p.lib)
	// Port list (names only).
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for p.peek().text != ")" && p.peek().text != "" {
		p.next() // names declared with directions below
		if p.peek().text == "," {
			p.next()
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	// Body.
	netFor := func(name string) (*netlist.Net, error) {
		if n := d.Net(name); n != nil {
			return n, nil
		}
		return d.AddNet(name)
	}
	for {
		t := p.next()
		switch t.text {
		case "endmodule":
			// Attach port pins to their same-named nets (unless an assign
			// already placed the port on another net).
			for _, port := range d.Ports {
				n := d.Net(port.Name)
				if n == nil {
					continue
				}
				has := false
				for _, pr := range n.Pins {
					if pr.IsPort() && pr.Pin == port.Name {
						has = true
					}
				}
				if !has {
					d.Connect(n, netlist.PinRef{Inst: -1, Pin: port.Name})
				}
			}
			return d, nil
		case "":
			return nil, p.eofErr(t.line, "unexpected end of file before endmodule")
		case "input", "output", "inout":
			dir := netlist.DirInput
			if t.text == "output" {
				dir = netlist.DirOutput
			} else if t.text == "inout" {
				dir = netlist.DirInout
			}
			for {
				nm := p.next()
				if _, err := d.AddPort(nm.text, dir); err != nil {
					return nil, p.errf(nm.line, nm.text, "%v", err)
				}
				nx := p.next()
				if nx.text == ";" {
					break
				}
				if nx.text != "," {
					return nil, p.errf(nx.line, nx.text, "bad port declaration")
				}
			}
		case "assign":
			lhs := p.next().text
			if err := p.expect("="); err != nil {
				return nil, err
			}
			rhs := p.next().text
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			// Canonicalize to (port, net). Checking the output-port case
			// first keeps port-to-port assigns stable across a write/parse
			// cycle: the writer emits "assign out = net" for output ports
			// and "assign net = in" for inputs.
			lp, rp := d.Port(lhs), d.Port(rhs)
			var portName, netName string
			switch {
			case lp != nil && lp.Dir == netlist.DirOutput:
				portName, netName = lhs, rhs
			case rp != nil:
				portName, netName = rhs, lhs
			case lp != nil:
				portName, netName = lhs, rhs
			default:
				err := p.errf(t.line, lhs, "assign between non-ports %s = %s is outside the subset", lhs, rhs)
				if p.strict {
					return nil, err
				}
				p.warns.Add(err)
				continue
			}
			n, err := netFor(netName)
			if err != nil {
				return nil, p.errf(t.line, netName, "%v", err)
			}
			d.Connect(n, netlist.PinRef{Inst: -1, Pin: portName})
		case "wire":
			for {
				nm := p.next()
				if _, err := netFor(nm.text); err != nil {
					return nil, p.errf(nm.line, nm.text, "%v", err)
				}
				nx := p.next()
				if nx.text == ";" {
					break
				}
				if nx.text != "," {
					return nil, p.errf(nx.line, nx.text, "bad wire declaration")
				}
			}
		default:
			// Instance: MASTER name ( .pin(net), ... ) ;
			master := p.lib.Master(t.text)
			if master == nil {
				return nil, p.errf(t.line, t.text, "unknown cell")
			}
			instName := p.next()
			inst, err := d.AddInstance(instName.text, master)
			if err != nil {
				return nil, p.errf(instName.line, instName.text, "%v", err)
			}
			if err := p.expect("("); err != nil {
				return nil, err
			}
			for p.peek().text != ")" {
				if p.peek().text == "" {
					return nil, p.eofErr(p.peek().line, "unexpected end of file in instance %s", instName.text)
				}
				if err := p.expect("."); err != nil {
					return nil, err
				}
				pin := p.next()
				if master.Pin(pin.text) == nil {
					return nil, p.errf(pin.line, pin.text, "cell %s has no such pin", master.Name)
				}
				if err := p.expect("("); err != nil {
					return nil, err
				}
				netName := p.next()
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				n, err := netFor(netName.text)
				if err != nil {
					return nil, p.errf(netName.line, netName.text, "%v", err)
				}
				d.Connect(n, netlist.PinRef{Inst: inst.ID, Pin: pin.text})
				if p.peek().text == "," {
					p.next()
				}
			}
			p.next() // ")"
			if err := p.expect(";"); err != nil {
				return nil, err
			}
		}
	}
}
