package viz

import (
	"strings"
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/netlist"
	"ppaclust/internal/place"
	"ppaclust/internal/route"
)

func TestWritePlacement(t *testing.T) {
	spec := designs.TinySpec(901)
	spec.Macros = 1
	b := designs.Generate(spec)
	place.Global(b.Design, place.Options{Seed: 1, Legalize: true})
	var sb strings.Builder
	if err := WritePlacement(&sb, b.Design, Options{DrawNets: 4}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not a well-formed SVG document")
	}
	for _, want := range []string{"#b5651d", "#4f8fdd", "#e8c547", "<line"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing element %q", want)
		}
	}
}

func TestWritePlacementNoDie(t *testing.T) {
	d := netlist.NewDesign("empty", designs.Lib())
	var sb strings.Builder
	if err := WritePlacement(&sb, d, Options{}); err == nil {
		t.Fatal("expected error without a die")
	}
}

func TestWriteCongestion(t *testing.T) {
	b := designs.Generate(designs.TinySpec(902))
	place.Global(b.Design, place.Options{Seed: 2, Legalize: true})
	res := route.GlobalRoute(b.Design, route.Options{})
	var sb strings.Builder
	if err := WriteCongestion(&sb, b.Design, res.Grid, Options{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "rgb(") {
		t.Fatal("no heatmap cells")
	}
}

func TestHeatRamp(t *testing.T) {
	r0, _, b0 := heat(0)
	r1, _, b1 := heat(1.5)
	if r1 <= r0 || b1 >= b0 {
		t.Fatalf("heat ramp broken: cold(%d,%d) hot(%d,%d)", r0, b0, r1, b1)
	}
	heat(-1) // clamps, no panic
	heat(99)
}
