// Package viz renders placements and congestion maps as standalone SVG
// files — the quick visual sanity check every placement tool ships with.
package viz

import (
	"fmt"
	"io"

	"ppaclust/internal/netlist"
	"ppaclust/internal/route"
)

// Options controls rendering.
type Options struct {
	// WidthPX is the output image width in pixels (height follows the die
	// aspect ratio). Default 800.
	WidthPX float64
	// DrawNets draws flylines for nets with at most this many pins
	// (0 disables flylines).
	DrawNets int
}

func (o Options) withDefaults() Options {
	if o.WidthPX <= 0 {
		o.WidthPX = 800
	}
	return o
}

// WritePlacement renders the design's die, core, macros, cells and ports.
func WritePlacement(w io.Writer, d *netlist.Design, opt Options) error {
	opt = opt.withDefaults()
	if d.Die.W() <= 0 || d.Die.H() <= 0 {
		return fmt.Errorf("viz: design has no die area")
	}
	s := opt.WidthPX / d.Die.W()
	hPX := d.Die.H() * s
	// SVG y grows downward; chip y grows upward.
	x := func(v float64) float64 { return (v - d.Die.X0) * s }
	y := func(v float64) float64 { return hPX - (v-d.Die.Y0)*s }

	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		opt.WidthPX, hPX, opt.WidthPX, hPX)
	fmt.Fprintf(w, `<rect width="100%%" height="100%%" fill="#10131a"/>`+"\n")
	// Core outline.
	fmt.Fprintf(w, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#3a4356" stroke-width="1"/>`+"\n",
		x(d.Core.X0), y(d.Core.Y1), d.Core.W()*s, d.Core.H()*s)
	// Cells.
	for _, inst := range d.Insts {
		if !inst.Placed && !inst.Fixed {
			continue
		}
		fill := "#4f8fdd"
		if inst.Master.Class == netlist.ClassMacro {
			fill = "#b5651d"
		} else if inst.Fixed {
			fill = "#888888"
		}
		cw := inst.Master.Width * s
		ch := inst.Master.Height * s
		if cw < 0.6 {
			cw = 0.6
		}
		if ch < 0.6 {
			ch = 0.6
		}
		fmt.Fprintf(w, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s" fill-opacity="0.75"/>`+"\n",
			x(inst.X), y(inst.Y+inst.Master.Height), cw, ch, fill)
	}
	// Flylines.
	if opt.DrawNets > 0 {
		for _, n := range d.Nets {
			if len(n.Pins) < 2 || len(n.Pins) > opt.DrawNets {
				continue
			}
			px, py := d.PinPos(n.Pins[0])
			for _, pr := range n.Pins[1:] {
				qx, qy := d.PinPos(pr)
				fmt.Fprintf(w, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="#5fd068" stroke-width="0.4" stroke-opacity="0.35"/>`+"\n",
					x(px), y(py), x(qx), y(qy))
			}
		}
	}
	// Ports.
	for _, p := range d.Ports {
		if !p.Placed {
			continue
		}
		fmt.Fprintf(w, `<circle cx="%.2f" cy="%.2f" r="2.5" fill="#e8c547"/>`+"\n", x(p.X), y(p.Y))
	}
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}

// WriteCongestion renders a routing congestion heatmap over the core.
func WriteCongestion(w io.Writer, d *netlist.Design, grid *route.Grid, opt Options) error {
	opt = opt.withDefaults()
	nx, ny := grid.Dims()
	if nx == 0 || ny == 0 {
		return fmt.Errorf("viz: empty routing grid")
	}
	cong := grid.CellCongestion()
	s := opt.WidthPX / d.Core.W()
	hPX := d.Core.H() * s
	cellW := opt.WidthPX / float64(nx)
	cellH := hPX / float64(ny)
	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		opt.WidthPX, hPX, opt.WidthPX, hPX)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			c := cong[j*nx+i]
			r, g, b := heat(c)
			fmt.Fprintf(w, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="rgb(%d,%d,%d)"/>`+"\n",
				float64(i)*cellW, hPX-float64(j+1)*cellH, cellW+0.5, cellH+0.5, r, g, b)
		}
	}
	_, err := fmt.Fprintln(w, `</svg>`)
	return err
}

// heat maps congestion in [0, 1.5+] to a dark-blue -> red ramp.
func heat(c float64) (int, int, int) {
	if c < 0 {
		c = 0
	}
	if c > 1.5 {
		c = 1.5
	}
	t := c / 1.5
	r := int(20 + 235*t)
	g := int(24 + 60*(1-t))
	b := int(48 + 160*(1-t)*(1-t))
	return r, g, b
}
