// Package par is the repo's shared concurrency layer: a bounded fork-join
// worker pool sized from GOMAXPROCS (or the PPACLUST_WORKERS environment
// knob) with index- and block-parallel helpers.
//
// Determinism contract: every helper assigns each index to exactly one
// worker and callers write only per-index slots (or per-worker private
// accumulators that they merge afterwards in a fixed order). Combined with
// the "parallel map into slots, sequential ordered reduce" idiom used by the
// sta, cluster and place kernels, parallel results are bit-identical to the
// sequential (Workers=1) code path: the same floating-point operations run
// in the same association order, only spread over goroutines.
//
// A panic inside any worker is captured and re-raised on the calling
// goroutine once all workers have stopped, so failures surface exactly as
// they would from a sequential loop.
package par

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
)

// EnvWorkers is the environment variable consulted when a caller leaves its
// worker count at 0 ("auto"). Set PPACLUST_WORKERS=1 to force every kernel
// onto the exact sequential code path.
const EnvWorkers = "PPACLUST_WORKERS"

// Workers resolves a requested worker count: a positive request wins;
// otherwise PPACLUST_WORKERS applies when set to a positive integer;
// otherwise GOMAXPROCS(0). The result is always >= 1.
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	if s := os.Getenv(EnvWorkers); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			return v
		}
	}
	return runtime.GOMAXPROCS(0)
}

// panicBox records the first worker panic for re-raising on the caller.
type panicBox struct {
	once sync.Once
	val  any
	set  bool
}

func (b *panicBox) capture() {
	if r := recover(); r != nil {
		b.once.Do(func() { b.val, b.set = r, true })
	}
}

func (b *panicBox) rethrow() {
	if b.set {
		panic(b.val)
	}
}

// ForEach runs fn(i) for every i in [0, n), spread over up to `workers`
// goroutines. workers <= 1 (or small n) degenerates to the plain inline
// loop. Work is handed out in contiguous chunks through an atomic cursor, so
// uneven per-index cost still balances; which worker runs an index is
// scheduling-dependent, but since fn may only touch state owned by index i
// the outcome is deterministic.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var cursor atomic.Int64
	var box panicBox
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer box.capture()
			for {
				lo := int(cursor.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
	box.rethrow()
}

// Blocks splits [0, n) into exactly min(workers, n) contiguous blocks and
// runs fn(w, lo, hi) for block w on its own goroutine. Use it when each
// worker needs a private accumulator: merge the per-block results afterwards
// in block order to keep the reduction order fixed.
func Blocks(workers, n int, fn func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	var box panicBox
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		go func(w, lo, hi int) {
			defer wg.Done()
			defer box.capture()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	box.rethrow()
}

// Map computes out[i] = fn(i) for i in [0, n) in parallel. Each slot is
// written by exactly one worker, so the result is deterministic; reduce it
// sequentially in index order when bit-exact totals matter.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}
