package par

import (
	"os"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("explicit request: got %d want 3", got)
	}
	t.Setenv(EnvWorkers, "5")
	if got := Workers(0); got != 5 {
		t.Fatalf("env request: got %d want 5", got)
	}
	t.Setenv(EnvWorkers, "bogus")
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("bad env should fall back to GOMAXPROCS, got %d", got)
	}
	os.Unsetenv(EnvWorkers)
	if got := Workers(-2); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("negative request should fall back to GOMAXPROCS, got %d", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 13} {
		for _, n := range []int{0, 1, 7, 1000} {
			counts := make([]int32, n)
			ForEach(workers, n, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestBlocksPartitionContiguous(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		n := 100
		covered := make([]int32, n)
		var calls atomic.Int32
		Blocks(workers, n, func(w, lo, hi int) {
			calls.Add(1)
			if lo > hi || lo < 0 || hi > n {
				t.Errorf("bad block [%d,%d)", lo, hi)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&covered[i], 1)
			}
		})
		want := workers
		if want > n {
			want = n
		}
		if int(calls.Load()) != want {
			t.Fatalf("workers=%d: %d blocks, want %d", workers, calls.Load(), want)
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("workers=%d: index %d covered %d times", workers, i, c)
			}
		}
	}
}

func TestMapDeterministic(t *testing.T) {
	a := Map(4, 500, func(i int) int { return i * i })
	b := Map(1, 500, func(i int) int { return i * i })
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("slot %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestPanicPropagation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Fatalf("workers=%d: recovered %v, want boom", workers, r)
				}
			}()
			ForEach(workers, 100, func(i int) {
				if i == 37 {
					panic("boom")
				}
			})
		}()
	}
}
