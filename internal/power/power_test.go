package power

import (
	"math"
	"testing"

	"ppaclust/internal/netlist"
	"ppaclust/internal/sta"
)

// oneGate builds port->INV->port with all pins coincident (no wire cap).
func oneGate(t *testing.T) (*netlist.Design, sta.Constraints) {
	t.Helper()
	l := netlist.NewLibrary("t")
	inv := &netlist.Master{Name: "INV", Width: 1, Height: 2, Leakage: 5e-9}
	inv.AddPin(netlist.MasterPin{Name: "A", Dir: netlist.DirInput, Cap: 2e-15})
	y := inv.AddPin(netlist.MasterPin{Name: "Y", Dir: netlist.DirOutput})
	y.Arcs = []netlist.TimingArc{{From: "A", Kind: netlist.ArcComb,
		Delay: netlist.Const(10e-12), Slew: netlist.Const(5e-12), Energy: 3e-15}}
	if err := l.AddMaster(inv); err != nil {
		t.Fatal(err)
	}
	d := netlist.NewDesign("p", l)
	in, _ := d.AddPort("in", netlist.DirInput)
	in.X, in.Y = 0, 0
	out, _ := d.AddPort("out", netlist.DirOutput)
	out.X, out.Y = 0, 0
	g, _ := d.AddInstance("g", inv)
	g.X, g.Y = -0.5, -1
	n0, _ := d.AddNet("n0")
	d.Connect(n0, netlist.PinRef{Inst: -1, Pin: "in"})
	d.Connect(n0, netlist.PinRef{Inst: g.ID, Pin: "A"})
	n1, _ := d.AddNet("n1")
	d.Connect(n1, netlist.PinRef{Inst: g.ID, Pin: "Y"})
	d.Connect(n1, netlist.PinRef{Inst: -1, Pin: "out"})
	cons := sta.DefaultConstraints(1e-9)
	return d, cons
}

func TestAnalyzeHandComputed(t *testing.T) {
	d, cons := oneGate(t)
	a := sta.New(d, cons)
	rep := Analyze(a, 1.0)
	freq := 1 / cons.ClockPeriod
	act := cons.InputActivity
	// n0 load = inv A cap; n1 load = port cap. Activity on both = input act.
	wantSw := 0.5*2e-15*act*freq + 0.5*cons.PortCap*act*freq
	if math.Abs(rep.Switching-wantSw)/wantSw > 1e-9 {
		t.Fatalf("switching=%v want %v", rep.Switching, wantSw)
	}
	wantInt := 3e-15 * act * freq
	if math.Abs(rep.Internal-wantInt)/wantInt > 1e-9 {
		t.Fatalf("internal=%v want %v", rep.Internal, wantInt)
	}
	if rep.Leakage != 5e-9 {
		t.Fatalf("leakage=%v", rep.Leakage)
	}
	if math.Abs(rep.Total()-(rep.Switching+rep.Internal+rep.Leakage)) > 1e-18 {
		t.Fatal("total mismatch")
	}
}

func TestPowerScalesWithVdd(t *testing.T) {
	d, cons := oneGate(t)
	a := sta.New(d, cons)
	p1 := Analyze(a, 1.0)
	p2 := Analyze(a, 2.0)
	if math.Abs(p2.Switching-4*p1.Switching)/p1.Switching > 1e-9 {
		t.Fatalf("switching should scale with Vdd^2: %v vs %v", p2.Switching, p1.Switching)
	}
	if p2.Leakage != p1.Leakage {
		t.Fatal("leakage should not depend on Vdd in this model")
	}
}

func TestPowerGrowsWithWireLength(t *testing.T) {
	d, cons := oneGate(t)
	a := sta.New(d, cons)
	before := Analyze(a, 1.0).Switching
	d.Port("out").X = 1000 // long wire on n1
	a.Update()
	after := Analyze(a, 1.0).Switching
	if after <= before {
		t.Fatalf("longer wire should burn more switching power: %v <= %v", after, before)
	}
}

func TestZeroPeriodNoDynamic(t *testing.T) {
	d, cons := oneGate(t)
	cons.ClockPeriod = 0
	a := sta.New(d, cons)
	rep := Analyze(a, 1.0)
	if rep.Switching != 0 || rep.Internal != 0 {
		t.Fatalf("no clock -> no dynamic power, got %+v", rep)
	}
	if rep.Leakage == 0 {
		t.Fatal("leakage should remain")
	}
}

func TestSwitchingPowerScalesWithActivity(t *testing.T) {
	d, cons := oneGate(t)
	lo := cons
	lo.InputActivity = 0.1
	hi := cons
	hi.InputActivity = 0.2
	pLo := Analyze(sta.New(d, lo), 1.0)
	pHi := Analyze(sta.New(d, hi), 1.0)
	if math.Abs(pHi.Switching-2*pLo.Switching)/pLo.Switching > 1e-9 {
		t.Fatalf("switching should scale linearly with activity: %v vs %v", pHi.Switching, pLo.Switching)
	}
	if math.Abs(pHi.Internal-2*pLo.Internal)/pLo.Internal > 1e-9 {
		t.Fatalf("internal should scale linearly with activity")
	}
}

func TestPowerScalesWithFrequency(t *testing.T) {
	d, cons := oneGate(t)
	slow := cons
	slow.ClockPeriod = 2e-9
	fast := cons
	fast.ClockPeriod = 1e-9
	pSlow := Analyze(sta.New(d, slow), 1.0)
	pFast := Analyze(sta.New(d, fast), 1.0)
	if math.Abs(pFast.Switching-2*pSlow.Switching)/pSlow.Switching > 1e-9 {
		t.Fatal("switching should scale with frequency")
	}
}
