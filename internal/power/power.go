// Package power computes design power from switching activity: dynamic
// switching power over net capacitances, internal (short-circuit + parasitic)
// power from library arc energies, and static leakage. It is the
// reproduction's stand-in for OpenSTA/Innovus vectorless power analysis.
package power

import (
	"ppaclust/internal/netlist"
	"ppaclust/internal/sta"
)

// DefaultVdd is the supply voltage used when the caller does not override it.
const DefaultVdd = 1.1 // volts, NanGate45-like

// Report is a power breakdown in watts.
type Report struct {
	Switching float64
	Internal  float64
	Leakage   float64
}

// Total returns the sum of the components.
func (r Report) Total() float64 { return r.Switching + r.Internal + r.Leakage }

// Analyze computes the power report for the analyzer's design at supply vdd.
// Activities are toggles per clock cycle; frequency comes from the analyzer's
// clock period.
func Analyze(a *sta.Analyzer, vdd float64) Report {
	d := a.Design()
	cons := a.Constraints()
	freq := 0.0
	if cons.ClockPeriod > 0 {
		freq = 1 / cons.ClockPeriod
	}
	act := a.NetActivity()
	var rep Report
	// Switching power: 1/2 C V^2 * toggles/sec per net.
	for _, net := range d.Nets {
		c := a.NetLoad(net.ID)
		rep.Switching += 0.5 * c * vdd * vdd * act[net.ID] * freq
	}
	// Internal power: arc energy per output transition.
	for _, inst := range d.Insts {
		rep.Leakage += inst.Master.Leakage
		for pi := range inst.Master.Pins {
			mp := &inst.Master.Pins[pi]
			if mp.Dir != netlist.DirOutput || len(mp.Arcs) == 0 {
				continue
			}
			outAct := a.PinActivity(sta.PinID{Inst: inst.ID, Pin: mp.Name})
			var energy float64
			for ai := range mp.Arcs {
				energy += mp.Arcs[ai].Energy
			}
			energy /= float64(len(mp.Arcs))
			rep.Internal += energy * outAct * freq
		}
	}
	return rep
}
