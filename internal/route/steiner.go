package route

// Rectilinear Steiner tree decomposition: the classic iterated 1-Steiner
// heuristic on the Hanan grid, applied to small and mid-size nets before
// pattern routing. Compared to plain MST decomposition it shortens
// multi-terminal nets by up to 1/3 (the textbook 3-terminal L case), which
// is what real global routers (FastRoute's FLUTE topologies) rely on.

// steinerDecompose returns 2-pin segments connecting all cells, possibly
// through added Steiner points, for nets with 3..maxSteinerPins terminals.
// Smaller or larger nets fall back to decompose().
const maxSteinerPins = 16

func steinerDecompose(cells [][2]int, maxPins int) [][4]int {
	if len(cells) < 3 || len(cells) > maxSteinerPins {
		return decompose(cells, maxPins)
	}
	pts := make([][2]int, len(cells))
	copy(pts, cells)
	terminals := len(pts)

	mstLen := func(ps [][2]int) int {
		segs := decompose(ps, maxPins)
		total := 0
		for _, s := range segs {
			total += abs(s[2]-s[0]) + abs(s[3]-s[1])
		}
		return total
	}

	base := mstLen(pts)
	// Iterated 1-Steiner: greedily add the Hanan-grid point with the best
	// gain until no point helps. Bounded by #terminals additions.
	for added := 0; added < terminals-2; added++ {
		bestGain := 0
		var bestPt [2]int
		seen := map[[2]int]bool{}
		for _, p := range pts {
			seen[p] = true
		}
		for _, a := range pts[:terminals] {
			for _, b := range pts[:terminals] {
				cand := [2]int{a[0], b[1]}
				if seen[cand] {
					continue
				}
				seen[cand] = true
				trial := append(pts, cand)
				if g := base - mstLen(trial); g > bestGain {
					bestGain = g
					bestPt = cand
				}
			}
		}
		if bestGain <= 0 {
			break
		}
		pts = append(pts, bestPt)
		base -= bestGain
	}
	// Prune Steiner points of degree <= 1 implicitly: decompose() on the
	// final point set yields the tree; degree-1 Steiner points can only
	// appear if they did not improve length, which the gain test excludes.
	return decompose(pts, maxPins)
}

// SteinerLength returns the total length of the Steiner decomposition of
// the given cells (in grid units) — exposed for wirelength estimation.
func SteinerLength(cells [][2]int) int {
	segs := steinerDecompose(cells, 1<<30)
	total := 0
	for _, s := range segs {
		total += abs(s[2]-s[0]) + abs(s[3]-s[1])
	}
	return total
}
