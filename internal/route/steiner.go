package route

// Rectilinear Steiner tree decomposition: the classic iterated 1-Steiner
// heuristic on the Hanan grid, applied to small and mid-size nets before
// pattern routing. Compared to plain MST decomposition it shortens
// multi-terminal nets by up to 1/3 (the textbook 3-terminal L case), which
// is what real global routers (FastRoute's FLUTE topologies) rely on.

import (
	"math"

	"ppaclust/internal/sortx"
)

// maxSteinerPins bounds the iterated 1-Steiner search; smaller or larger
// nets fall back to MST / chain decomposition.
const maxSteinerPins = 16

// decScratch holds one worker's decomposition scratch: the Prim MST state,
// the radix-sort buffers for huge-net chains, and the candidate point set of
// the 1-Steiner search. Reusing it across nets keeps the per-net hot loop
// allocation-free for the MST and chain paths (gated by
// TestDecomposeHotLoopAllocFree).
type decScratch struct {
	inTree []bool
	dist   []int
	from   []int
	keys   []uint64
	ord    []int32
	sorter sortx.Sorter
	pts    [][2]int
	tmp    [][4]int
}

// decompose splits a multi-terminal net into 2-pin segments appended to out:
// Prim MST for small nets, a sorted chain for huge nets (e.g. the
// unsynthesized clock). The chain ordering uses the shared radix sort on
// (i+j, i) keys — unique per deduplicated GCell, so the chain matches the
// comparator sort it replaced.
func (sc *decScratch) decompose(cells [][2]int, maxPins int, out [][4]int) [][4]int {
	n := len(cells)
	if n > maxPins {
		if cap(sc.keys) < n {
			sc.keys = make([]uint64, n)
			sc.ord = make([]int32, n)
		}
		keys := sc.keys[:n]
		ord := sc.ord[:n]
		for i, c := range cells {
			keys[i] = uint64(uint32(c[0]+c[1]))<<32 | uint64(uint32(c[0]))
		}
		sc.sorter.IndexByKeys(ord, keys)
		prev := cells[ord[0]]
		for i := 1; i < n; i++ {
			cur := cells[ord[i]]
			out = append(out, [4]int{prev[0], prev[1], cur[0], cur[1]})
			prev = cur
		}
		return out
	}
	if cap(sc.inTree) < n {
		sc.inTree = make([]bool, n)
		sc.dist = make([]int, n)
		sc.from = make([]int, n)
	}
	inTree := sc.inTree[:n]
	dist := sc.dist[:n]
	from := sc.from[:n]
	for i := 0; i < n; i++ {
		inTree[i] = false
		dist[i] = math.MaxInt32
		from[i] = 0
	}
	inTree[0] = true
	for i := 1; i < n; i++ {
		dist[i] = manhattan(cells[0], cells[i])
	}
	for k := 1; k < n; k++ {
		best, bestD := -1, math.MaxInt32
		for i := 0; i < n; i++ {
			if !inTree[i] && dist[i] < bestD {
				best, bestD = i, dist[i]
			}
		}
		if best < 0 {
			break
		}
		inTree[best] = true
		out = append(out, [4]int{cells[from[best]][0], cells[from[best]][1], cells[best][0], cells[best][1]})
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := manhattan(cells[best], cells[i]); d < dist[i] {
					dist[i] = d
					from[i] = best
				}
			}
		}
	}
	return out
}

// decompose is the scratch-free wrapper used by tests and SteinerLength.
func decompose(cells [][2]int, maxPins int) [][4]int {
	var sc decScratch
	return sc.decompose(cells, maxPins, nil)
}

// steiner appends 2-pin segments connecting all cells, possibly through
// added Steiner points, for nets with 3..maxSteinerPins terminals. Smaller
// or larger nets take the pure MST / chain path above.
func (sc *decScratch) steiner(cells [][2]int, maxPins int, out [][4]int) [][4]int {
	if len(cells) < 3 || len(cells) > maxSteinerPins {
		return sc.decompose(cells, maxPins, out)
	}
	pts := append(sc.pts[:0], cells...)
	terminals := len(pts)

	mstLen := func(ps [][2]int) int {
		sc.tmp = sc.decompose(ps, maxPins, sc.tmp[:0])
		total := 0
		for _, s := range sc.tmp {
			total += abs(s[2]-s[0]) + abs(s[3]-s[1])
		}
		return total
	}

	base := mstLen(pts)
	// Iterated 1-Steiner: greedily add the Hanan-grid point with the best
	// gain until no point helps. Bounded by #terminals additions.
	for added := 0; added < terminals-2; added++ {
		bestGain := 0
		var bestPt [2]int
		seen := map[[2]int]bool{}
		for _, p := range pts {
			seen[p] = true
		}
		for _, a := range pts[:terminals] {
			for _, b := range pts[:terminals] {
				cand := [2]int{a[0], b[1]}
				if seen[cand] {
					continue
				}
				seen[cand] = true
				trial := append(pts, cand)
				if g := base - mstLen(trial); g > bestGain {
					bestGain = g
					bestPt = cand
				}
			}
		}
		if bestGain <= 0 {
			break
		}
		pts = append(pts, bestPt)
		base -= bestGain
	}
	sc.pts = pts
	// Prune Steiner points of degree <= 1 implicitly: decompose() on the
	// final point set yields the tree; degree-1 Steiner points can only
	// appear if they did not improve length, which the gain test excludes.
	return sc.decompose(pts, maxPins, out)
}

// steinerDecompose is the scratch-free wrapper.
func steinerDecompose(cells [][2]int, maxPins int) [][4]int {
	var sc decScratch
	return sc.steiner(cells, maxPins, nil)
}

// SteinerLength returns the total length of the Steiner decomposition of
// the given cells (in grid units) — exposed for wirelength estimation.
func SteinerLength(cells [][2]int) int {
	segs := steinerDecompose(cells, 1<<30)
	total := 0
	for _, s := range segs {
		total += abs(s[2]-s[0]) + abs(s[3]-s[1])
	}
	return total
}
