package route

import (
	"math"
	"testing"

	"ppaclust/internal/netlist"
)

func TestGridBasics(t *testing.T) {
	core := netlist.Rect{X0: 0, Y0: 0, X1: 100, Y1: 100}
	g := NewGrid(core, 10, 5, 5)
	if g.nx != 11 || g.ny != 11 {
		t.Fatalf("grid %dx%d", g.nx, g.ny)
	}
	i, j := g.Cell(55, 5)
	if i != 5 || j != 0 {
		t.Fatalf("cell=(%d,%d)", i, j)
	}
	// Clamping outside the core.
	i, j = g.Cell(-10, 1e9)
	if i != 0 || j != g.ny-1 {
		t.Fatalf("clamped cell=(%d,%d)", i, j)
	}
	if g.NumCells() != 121 {
		t.Fatalf("cells=%d", g.NumCells())
	}
}

func TestEdgeCostGrowsWithOverflow(t *testing.T) {
	if edgeCost(0, 10) != 1 {
		t.Fatal("free edge should cost 1")
	}
	if edgeCost(10, 10) <= edgeCost(5, 10) {
		t.Fatal("full edge should cost more")
	}
	if edgeCost(20, 10) <= edgeCost(10, 10) {
		t.Fatal("overflowed edge should cost even more")
	}
	if edgeCost(0, 0) < 1e5 {
		t.Fatal("zero-capacity edge should be prohibitive")
	}
}

func TestRouteStraightLine(t *testing.T) {
	core := netlist.Rect{X0: 0, Y0: 0, X1: 100, Y1: 100}
	g := NewGrid(core, 10, 5, 5)
	s := g.route(0, 0, 5, 0)
	if s.length() != 5 {
		t.Fatalf("length=%d want 5", s.length())
	}
	g.apply(s, 1)
	for i := 0; i < 5; i++ {
		if g.hUse[g.hIdx(i, 0)] != 1 {
			t.Fatalf("edge %d not used", i)
		}
	}
	g.apply(s, -1)
	for i := 0; i < 5; i++ {
		if g.hUse[g.hIdx(i, 0)] != 0 {
			t.Fatal("rip-up did not restore usage")
		}
	}
}

func TestRouteAvoidsCongestion(t *testing.T) {
	core := netlist.Rect{X0: 0, Y0: 0, X1: 100, Y1: 100}
	g := NewGrid(core, 10, 1, 1) // capacity 1
	// Saturate the direct horizontal row j=0.
	for i := 0; i < 10; i++ {
		g.hUse[g.hIdx(i, 0)] = 1
	}
	s := g.route(0, 0, 9, 0)
	// The best route should detour off row 0.
	cost := g.cost(s)
	direct := segRoute{i0: 0, j0: 0, i1: 9, j1: 0, im: 9, hFirst: true}
	if cost >= g.cost(direct) {
		t.Fatalf("router did not avoid congestion: cost %v vs direct %v", cost, g.cost(direct))
	}
}

func TestDecomposeMST(t *testing.T) {
	cells := [][2]int{{0, 0}, {0, 5}, {5, 0}}
	segs := decompose(cells, 64)
	if len(segs) != 2 {
		t.Fatalf("segments=%d want 2", len(segs))
	}
	// Total MST length = 10.
	total := 0
	for _, s := range segs {
		total += abs(s[2]-s[0]) + abs(s[3]-s[1])
	}
	if total != 10 {
		t.Fatalf("MST length=%d want 10", total)
	}
}

func TestDecomposeHugeNetChains(t *testing.T) {
	var cells [][2]int
	for i := 0; i < 200; i++ {
		cells = append(cells, [2]int{i % 20, i / 20})
	}
	segs := decompose(cells, 64)
	if len(segs) != len(cells)-1 {
		t.Fatalf("chain segments=%d want %d", len(segs), len(cells)-1)
	}
}

func TestTopPercentAvg(t *testing.T) {
	core := netlist.Rect{X0: 0, Y0: 0, X1: 100, Y1: 100}
	g := NewGrid(core, 10, 10, 10)
	// One very hot edge.
	g.hUse[g.hIdx(0, 0)] = 20
	top1 := g.TopPercentAvg(1)
	top100 := g.TopPercentAvg(100)
	if top1 < top100 {
		t.Fatalf("top1=%v should be >= top100=%v", top1, top100)
	}
	if math.Abs(top1-2.0) > 1e-9 {
		t.Fatalf("top1=%v want 2.0", top1)
	}
	// x clamps to at least one cell.
	if g.TopPercentAvg(0.0001) != 2.0 {
		t.Fatal("tiny percent should still include the hottest cell")
	}
}

func TestCellCongestionShape(t *testing.T) {
	core := netlist.Rect{X0: 0, Y0: 0, X1: 50, Y1: 50}
	g := NewGrid(core, 10, 4, 4)
	c := g.CellCongestion()
	if len(c) != g.NumCells() {
		t.Fatalf("len=%d want %d", len(c), g.NumCells())
	}
	g.hUse[g.hIdx(2, 3)] = 2
	c = g.CellCongestion()
	if c[3*g.nx+2] != 0.5 {
		t.Fatalf("congestion=%v want 0.5", c[3*g.nx+2])
	}
}
