// External test package: the placer now consumes this package for its
// routability-driven checkpoints, so an in-package test importing place
// would be an import cycle.
package route_test

import (
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/place"
	"ppaclust/internal/route"
)

// BenchmarkGlobalRoute measures routing a placed ariane.
func BenchmarkGlobalRoute(b *testing.B) {
	spec, _ := designs.Named("ariane")
	bench := designs.Generate(spec)
	place.Global(bench.Design, place.Options{Seed: 1, Legalize: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		route.GlobalRoute(bench.Design, route.Options{})
	}
}
