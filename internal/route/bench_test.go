package route

import (
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/place"
)

// BenchmarkGlobalRoute measures routing a placed ariane.
func BenchmarkGlobalRoute(b *testing.B) {
	spec, _ := designs.Named("ariane")
	bench := designs.Generate(spec)
	place.Global(bench.Design, place.Options{Seed: 1, Legalize: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GlobalRoute(bench.Design, Options{})
	}
}
