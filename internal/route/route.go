// Package route is a GCell-grid global router in the style of FastRoute: nets
// are decomposed into two-pin segments over rectilinear Steiner trees
// (iterated 1-Steiner; MST for tiny or huge nets), segments are routed with
// L/Z/U pattern routing against per-edge capacities, and overflowed nets are
// ripped up and rerouted with congestion-aware costs.
// Its outputs — routed wirelength and the GCell congestion distribution — are
// exactly what the paper's V-P&R cost (Eqs. 4-5) and post-route metrics need.
package route

import (
	"math"
	"sort"

	"ppaclust/internal/netlist"
	"ppaclust/internal/par"
)

// Options configures global routing.
type Options struct {
	// GCellSize is the GCell edge length in microns (0 = auto: ~40x40 grid).
	GCellSize float64
	// CapacityH and CapacityV are routing track capacities per GCell edge.
	// Defaults 10 and 10.
	CapacityH, CapacityV int
	// Passes is the number of rip-up-and-reroute passes. Default 2.
	Passes int
	// MaxNetPins skips decomposition quality for huge nets (chain routing).
	// Default 64.
	MaxNetPins int
	// Workers caps the worker goroutines used for net decomposition and
	// batched initial routing (0 = PPACLUST_WORKERS or GOMAXPROCS). Results
	// are bit-identical at every worker count.
	Workers int
}

func (o Options) withDefaults(d *netlist.Design) Options {
	if o.GCellSize <= 0 {
		side := math.Max(d.Core.W(), d.Core.H())
		o.GCellSize = side / 40
		if o.GCellSize < 1 {
			o.GCellSize = 1
		}
	}
	if o.CapacityH <= 0 {
		o.CapacityH = 10
	}
	if o.CapacityV <= 0 {
		o.CapacityV = 10
	}
	if o.Passes <= 0 {
		o.Passes = 2
	}
	if o.MaxNetPins <= 0 {
		o.MaxNetPins = 64
	}
	return o
}

// Result reports global routing outcomes.
type Result struct {
	// WirelengthUM is the total routed wirelength in microns.
	WirelengthUM float64
	// Overflow is the total demand above capacity summed over edges.
	Overflow int
	// MaxCongestion is the highest edge utilization (use/capacity).
	MaxCongestion float64
	// Grid exposes the congestion distribution for Eq. 5.
	Grid *Grid
	// Vias counts bends (layer changes) across all routed segments.
	Vias int
}

// Grid is the GCell routing grid with per-edge usage.
type Grid struct {
	core   netlist.Rect
	nx, ny int
	size   float64
	hUse   []int // edge (i,j)->(i+1,j): index j*(nx-1)+i
	vUse   []int // edge (i,j)->(i,j+1): index j*nx+i
	hCap   int
	vCap   int
}

// NewGrid builds an empty routing grid over the core.
func NewGrid(core netlist.Rect, size float64, capH, capV int) *Grid {
	nx := int(math.Ceil(core.W()/size)) + 1
	ny := int(math.Ceil(core.H()/size)) + 1
	if nx < 2 {
		nx = 2
	}
	if ny < 2 {
		ny = 2
	}
	return &Grid{
		core: core, nx: nx, ny: ny, size: size,
		hUse: make([]int, (nx-1)*ny),
		vUse: make([]int, nx*(ny-1)),
		hCap: capH, vCap: capV,
	}
}

// Cell maps a physical position to GCell coordinates.
func (g *Grid) Cell(x, y float64) (int, int) {
	i := int((x - g.core.X0) / g.size)
	j := int((y - g.core.Y0) / g.size)
	if i < 0 {
		i = 0
	}
	if i >= g.nx {
		i = g.nx - 1
	}
	if j < 0 {
		j = 0
	}
	if j >= g.ny {
		j = g.ny - 1
	}
	return i, j
}

// NumCells returns the total number of GCells.
func (g *Grid) NumCells() int { return g.nx * g.ny }

func (g *Grid) hIdx(i, j int) int { return j*(g.nx-1) + i }
func (g *Grid) vIdx(i, j int) int { return j*g.nx + i }

// edgeCost is the congestion-aware cost of using an edge once more.
func edgeCost(use, cap int) float64 {
	if cap <= 0 {
		return 1e6
	}
	over := float64(use+1-cap) / float64(cap)
	if over <= 0 {
		return 1
	}
	return 1 + 20*over*over + 4*over
}

func (g *Grid) applyH(i0, i1, j, delta int) {
	if i0 > i1 {
		i0, i1 = i1, i0
	}
	for i := i0; i < i1; i++ {
		g.hUse[g.hIdx(i, j)] += delta
	}
}

func (g *Grid) applyV(j0, j1, i, delta int) {
	if j0 > j1 {
		j0, j1 = j1, j0
	}
	for j := j0; j < j1; j++ {
		g.vUse[g.vIdx(i, j)] += delta
	}
}

// segRoute is one routed 2-pin connection: an optional Z with two bends.
// Path: (i0,j0) -> (im,j0) -> (im,j1) -> (i1,j1) horizontally-first, or the
// vertical-first mirror.
type segRoute struct {
	i0, j0, i1, j1 int
	im             int  // intermediate column (hFirst) or row (!hFirst)
	hFirst         bool // horizontal-vertical-horizontal vs V-H-V
}

func (g *Grid) apply(s segRoute, delta int) {
	if s.hFirst {
		g.applyH(s.i0, s.im, s.j0, delta)
		g.applyV(s.j0, s.j1, s.im, delta)
		g.applyH(s.im, s.i1, s.j1, delta)
	} else {
		g.applyV(s.j0, s.im, s.i0, delta)
		g.applyH(s.i0, s.i1, s.im, delta)
		g.applyV(s.im, s.j1, s.i1, delta)
	}
}

// routeCtx prices candidate routes against the grid plus an optional overlay
// of one net's own, not-yet-merged usage. Batched initial routing freezes
// the grid for a whole batch — every net prices edges against the same
// snapshot, which is what makes the batch independent of how its nets are
// split across workers — and the overlay lets a net's later segments still
// see its earlier ones, exactly what the serial walk saw. The overlay counts
// are generation-stamped with the net ID, so switching nets never clears the
// tiny grid-sized arrays. A zero ctx (nil overlay) reads the live grid.
type routeCtx struct {
	g          *Grid
	ownH, ownV []int32 // own-usage counts, valid where the stamp matches gen
	stH, stV   []int32
	gen        int32
}

func (c *routeCtx) useH(idx int) int {
	u := c.g.hUse[idx]
	if c.stH != nil && c.stH[idx] == c.gen {
		u += int(c.ownH[idx])
	}
	return u
}

func (c *routeCtx) useV(idx int) int {
	u := c.g.vUse[idx]
	if c.stV != nil && c.stV[idx] == c.gen {
		u += int(c.ownV[idx])
	}
	return u
}

// runCostH/runCostV price a straight run; addOwnH/addOwnV record one into
// the overlay.
func (c *routeCtx) runCostH(i0, i1, j int) float64 {
	if i0 > i1 {
		i0, i1 = i1, i0
	}
	g := c.g
	var cost float64
	for i := i0; i < i1; i++ {
		cost += edgeCost(c.useH(g.hIdx(i, j)), g.hCap)
	}
	return cost
}

func (c *routeCtx) runCostV(j0, j1, i int) float64 {
	if j0 > j1 {
		j0, j1 = j1, j0
	}
	g := c.g
	var cost float64
	for j := j0; j < j1; j++ {
		cost += edgeCost(c.useV(g.vIdx(i, j)), g.vCap)
	}
	return cost
}

func (c *routeCtx) addOwnH(i0, i1, j int) {
	if i0 > i1 {
		i0, i1 = i1, i0
	}
	g := c.g
	for i := i0; i < i1; i++ {
		idx := g.hIdx(i, j)
		if c.stH[idx] != c.gen {
			c.stH[idx] = c.gen
			c.ownH[idx] = 0
		}
		c.ownH[idx]++
	}
}

func (c *routeCtx) addOwnV(j0, j1, i int) {
	if j0 > j1 {
		j0, j1 = j1, j0
	}
	g := c.g
	for j := j0; j < j1; j++ {
		idx := g.vIdx(i, j)
		if c.stV[idx] != c.gen {
			c.stV[idx] = c.gen
			c.ownV[idx] = 0
		}
		c.ownV[idx]++
	}
}

func (c *routeCtx) addOwn(s segRoute) {
	if s.hFirst {
		c.addOwnH(s.i0, s.im, s.j0)
		c.addOwnV(s.j0, s.j1, s.im)
		c.addOwnH(s.im, s.i1, s.j1)
	} else {
		c.addOwnV(s.j0, s.im, s.i0)
		c.addOwnH(s.i0, s.i1, s.im)
		c.addOwnV(s.im, s.j1, s.i1)
	}
}

func (c *routeCtx) cost(s segRoute) float64 {
	if s.hFirst {
		return c.runCostH(s.i0, s.im, s.j0) + c.runCostV(s.j0, s.j1, s.im) + c.runCostH(s.im, s.i1, s.j1)
	}
	return c.runCostV(s.j0, s.im, s.i0) + c.runCostH(s.i0, s.i1, s.im) + c.runCostV(s.im, s.j1, s.i1)
}

// route finds the best L/Z/U route for a 2-pin segment. Candidates are
// tried in a fixed order and strict improvement wins, so the choice is a
// pure function of the ctx's view of edge usage.
func (c *routeCtx) route(i0, j0, i1, j1 int) segRoute {
	g := c.g
	best := segRoute{i0: i0, j0: j0, i1: i1, j1: j1, im: i1, hFirst: true} // L: H then V
	bestCost := c.cost(best)
	try := func(s segRoute) {
		if cc := c.cost(s); cc < bestCost {
			best, bestCost = s, cc
		}
	}
	try(segRoute{i0: i0, j0: j0, i1: i1, j1: j1, im: i0, hFirst: true})  // V then H (im=i0)
	try(segRoute{i0: i0, j0: j0, i1: i1, j1: j1, im: j1, hFirst: false}) // degenerate mirrors
	try(segRoute{i0: i0, j0: j0, i1: i1, j1: j1, im: j0, hFirst: false})
	// Z candidates: a few intermediate columns/rows.
	if di := abs(i1 - i0); di > 1 {
		for _, f := range []float64{0.25, 0.5, 0.75} {
			im := i0 + int(f*float64(i1-i0))
			try(segRoute{i0: i0, j0: j0, i1: i1, j1: j1, im: im, hFirst: true})
		}
	}
	if dj := abs(j1 - j0); dj > 1 {
		for _, f := range []float64{0.25, 0.5, 0.75} {
			jm := j0 + int(f*float64(j1-j0))
			try(segRoute{i0: i0, j0: j0, i1: i1, j1: j1, im: jm, hFirst: false})
		}
	}
	// U-detours: essential escape for straight runs through congestion
	// (the Z candidates above degenerate when the pins share a row/column).
	for _, dj := range []int{-2, -1, 1, 2} {
		jm := clampInt(j0+dj, 0, g.ny-1)
		try(segRoute{i0: i0, j0: j0, i1: i1, j1: j1, im: jm, hFirst: false})
	}
	for _, di := range []int{-2, -1, 1, 2} {
		im := clampInt(i0+di, 0, g.nx-1)
		try(segRoute{i0: i0, j0: j0, i1: i1, j1: j1, im: im, hFirst: true})
	}
	return best
}

// route and cost against the live grid (no overlay): the rip-up passes and
// the tests use this serial view.
func (g *Grid) route(i0, j0, i1, j1 int) segRoute {
	c := routeCtx{g: g}
	return c.route(i0, j0, i1, j1)
}

func (g *Grid) cost(s segRoute) float64 {
	c := routeCtx{g: g}
	return c.cost(s)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func (s segRoute) length() int {
	if s.hFirst {
		return abs(s.im-s.i0) + abs(s.j1-s.j0) + abs(s.i1-s.im)
	}
	return abs(s.im-s.j0) + abs(s.i1-s.i0) + abs(s.j1-s.im)
}

func (s segRoute) bends() int {
	b := 0
	if s.hFirst {
		if s.im != s.i0 && s.j1 != s.j0 {
			b++
		}
		if s.im != s.i1 && s.j1 != s.j0 {
			b++
		}
	} else {
		if s.im != s.j0 && s.i1 != s.i0 {
			b++
		}
		if s.im != s.j1 && s.i1 != s.i0 {
			b++
		}
	}
	return b
}

// routeBatch is the number of nets initial routing prices against one
// frozen grid snapshot before merging their usage. Smaller batches track
// the serial congestion estimate more closely; larger ones amortize the
// merge. The size is a fixed constant — never derived from the worker
// count — so batch boundaries, and therefore results, are identical at
// every worker count.
const routeBatch = 1024

// routeScratch is one worker's reusable state: the GCell dedup stamps, the
// pin-cell buffer, the decomposition scratch, the own-usage overlay, and
// the partial usage grid the worker's batch share accumulates into. All of
// it is allocated once per GlobalRoute call (the grids involved are tiny —
// the ~40x40 GCell grid, not the design) and reused across every net and
// batch the worker touches.
type routeScratch struct {
	cellStamp    []int32 // last net to claim each GCell (pin dedup)
	cells        [][2]int
	dec          decScratch
	ctx          routeCtx
	partH, partV []int32 // per-worker usage accumulated during a batch
}

func newRouteScratch(g *Grid) *routeScratch {
	sc := &routeScratch{
		cellStamp: make([]int32, g.nx*g.ny),
		partH:     make([]int32, len(g.hUse)),
		partV:     make([]int32, len(g.vUse)),
	}
	for i := range sc.cellStamp {
		sc.cellStamp[i] = -1
	}
	sc.ctx = routeCtx{
		g:    g,
		ownH: make([]int32, len(g.hUse)), stH: make([]int32, len(g.hUse)),
		ownV: make([]int32, len(g.vUse)), stV: make([]int32, len(g.vUse)),
	}
	for i := range sc.ctx.stH {
		sc.ctx.stH[i] = -1
	}
	for i := range sc.ctx.stV {
		sc.ctx.stV[i] = -1
	}
	return sc
}

// applyPart mirrors Grid.apply into the worker's partial usage grid.
func (sc *routeScratch) applyPart(s segRoute) {
	g := sc.ctx.g
	addH := func(i0, i1, j int) {
		if i0 > i1 {
			i0, i1 = i1, i0
		}
		for i := i0; i < i1; i++ {
			sc.partH[g.hIdx(i, j)]++
		}
	}
	addV := func(j0, j1, i int) {
		if j0 > j1 {
			j0, j1 = j1, j0
		}
		for j := j0; j < j1; j++ {
			sc.partV[g.vIdx(i, j)]++
		}
	}
	if s.hFirst {
		addH(s.i0, s.im, s.j0)
		addV(s.j0, s.j1, s.im)
		addH(s.im, s.i1, s.j1)
	} else {
		addV(s.j0, s.im, s.i0)
		addH(s.i0, s.i1, s.im)
		addV(s.im, s.j1, s.i1)
	}
}

// GlobalRoute routes all nets of a placed design.
//
// The phases and their determinism contract:
//
//  1. Decomposition (parallel): each net's pins are resolved through the
//     netlist.Compact CSR view, deduplicated to GCells with a per-worker
//     generation-stamped bin grid, and split into 2-pin segments over a
//     Steiner tree. Per-net results depend on nothing but the net, and the
//     per-worker segment arenas are concatenated in ascending block order,
//     so the flat segment list is identical at every worker count.
//
//  2. Initial routing (parallel, batched): nets are processed in fixed-size
//     batches (routeBatch). Within a batch every net prices candidates
//     against the grid as it stood when the batch started, plus its own
//     earlier segments (routeCtx overlay); each worker accumulates the usage
//     of the nets it routed into a private partial grid, and the partials
//     are merged into the shared grid in worker order after the batch.
//     The merge is pure integer addition, so the grid state entering the
//     next batch — and hence every routing decision — is independent of how
//     nets were split across workers.
//
//  3. Rip-up and reroute (serial): nets touching overflowed edges are
//     rerouted in net ID order against the live grid, exactly the classic
//     sequential sweep. Congestion relief converges like the serial router;
//     only the (already deterministic) initial state differs.
//
// Wirelength and via totals are integer sums over segments, reduced per
// worker and then in worker order — exact arithmetic, so parallel totals
// match serial ones bit for bit.
func GlobalRoute(d *netlist.Design, opt Options) *Result {
	opt = opt.withDefaults(d)
	g := NewGrid(d.Core, opt.GCellSize, opt.CapacityH, opt.CapacityV)
	c := d.Compact()
	workers := par.Workers(opt.Workers)

	instX := make([]float64, len(d.Insts))
	instY := make([]float64, len(d.Insts))
	par.Blocks(workers, len(d.Insts), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			instX[i] = d.Insts[i].X
			instY[i] = d.Insts[i].Y
		}
	})

	scratch := make([]*routeScratch, workers)
	for w := range scratch {
		scratch[w] = newRouteScratch(g)
	}

	// Phase 1: pin gather + GCell dedup + Steiner decomposition.
	nNets := len(d.Nets)
	segStart := make([]int32, nNets+1)
	arenas := make([][][4]int, workers)
	par.Blocks(workers, nNets, func(w, lo, hi int) {
		sc := scratch[w]
		var arena [][4]int
		for ni := lo; ni < hi; ni++ {
			cells := sc.cells[:0]
			for k := c.NetStart[ni]; k < c.NetStart[ni+1]; k++ {
				var x, y float64
				if id := c.PinInst[k]; id >= 0 {
					x, y = instX[id]+c.PinDX[k], instY[id]+c.PinDY[k]
				} else if id == netlist.CompactNoPort {
					x, y = 0, 0
				} else {
					p := d.Ports[-1-id]
					x, y = p.X, p.Y
				}
				i, j := g.Cell(x, y)
				idx := j*g.nx + i
				if sc.cellStamp[idx] == int32(ni) {
					continue
				}
				sc.cellStamp[idx] = int32(ni)
				cells = append(cells, [2]int{i, j})
			}
			sc.cells = cells
			if len(cells) < 2 {
				continue
			}
			pre := len(arena)
			arena = sc.dec.steiner(cells, opt.MaxNetPins, arena)
			segStart[ni+1] = int32(len(arena) - pre) //ppalint:ignore i32trunc per-net segment count, bounded by the MaxNetPins-capped Steiner decomposition
		}
		arenas[w] = arena
	})
	for i := 0; i < nNets; i++ {
		segStart[i+1] += segStart[i]
	}
	total := int(segStart[nNets])
	flat := make([][4]int, 0, total)
	for _, a := range arenas {
		flat = append(flat, a...)
	}

	// Phase 2: batched initial routing against frozen grid snapshots.
	routed := make([]segRoute, total)
	for b0 := 0; b0 < nNets; b0 += routeBatch {
		b1 := b0 + routeBatch
		if b1 > nNets {
			b1 = nNets
		}
		par.Blocks(workers, b1-b0, func(w, lo, hi int) {
			sc := scratch[w]
			ctx := &sc.ctx
			for ni := b0 + lo; ni < b0+hi; ni++ {
				s0, s1 := segStart[ni], segStart[ni+1]
				if s0 == s1 {
					continue
				}
				ctx.gen = int32(ni)
				for k := s0; k < s1; k++ {
					sp := flat[k]
					s := ctx.route(sp[0], sp[1], sp[2], sp[3])
					routed[k] = s
					ctx.addOwn(s)
					sc.applyPart(s)
				}
			}
		})
		for _, sc := range scratch {
			for i, v := range sc.partH {
				if v != 0 {
					g.hUse[i] += int(v)
					sc.partH[i] = 0
				}
			}
			for i, v := range sc.partV {
				if v != 0 {
					g.vUse[i] += int(v)
					sc.partV[i] = 0
				}
			}
		}
	}

	// Phase 3: serial rip-up and reroute of nets touching overflow.
	for pass := 1; pass < opt.Passes; pass++ {
		for ni := 0; ni < nNets; ni++ {
			s0, s1 := segStart[ni], segStart[ni+1]
			if s0 == s1 {
				continue
			}
			touches := false
			for k := s0; k < s1; k++ {
				if g.segmentOverflowed(routed[k]) {
					touches = true
					break
				}
			}
			if !touches {
				continue
			}
			for k := s0; k < s1; k++ {
				s := routed[k]
				g.apply(s, -1)
				ns := g.route(s.i0, s.j0, s.i1, s.j1)
				g.apply(ns, 1)
				routed[k] = ns
			}
		}
	}

	res := &Result{Grid: g}
	lenSum := make([]int64, workers)
	viaSum := make([]int64, workers)
	par.Blocks(workers, total, func(w, lo, hi int) {
		var wl, vias int64
		for k := lo; k < hi; k++ {
			wl += int64(routed[k].length())
			vias += int64(routed[k].bends())
		}
		lenSum[w] = wl
		viaSum[w] = vias
	})
	var wl, vias int64
	for w := 0; w < workers; w++ {
		wl += lenSum[w]
		vias += viaSum[w]
	}
	res.WirelengthUM = float64(wl) * g.size
	res.Vias = int(vias)
	for _, u := range g.hUse {
		if u > g.hCap {
			res.Overflow += u - g.hCap
		}
		if c := float64(u) / float64(g.hCap); c > res.MaxCongestion {
			res.MaxCongestion = c
		}
	}
	for _, u := range g.vUse {
		if u > g.vCap {
			res.Overflow += u - g.vCap
		}
		if c := float64(u) / float64(g.vCap); c > res.MaxCongestion {
			res.MaxCongestion = c
		}
	}
	return res
}

func (g *Grid) segmentOverflowed(s segRoute) bool {
	over := false
	walk := func(kind byte, a0, a1, fixed int) {
		if a0 > a1 {
			a0, a1 = a1, a0
		}
		for a := a0; a < a1 && !over; a++ {
			if kind == 'h' {
				if g.hUse[g.hIdx(a, fixed)] > g.hCap {
					over = true
				}
			} else {
				if g.vUse[g.vIdx(fixed, a)] > g.vCap {
					over = true
				}
			}
		}
	}
	if s.hFirst {
		walk('h', s.i0, s.im, s.j0)
		walk('v', s.j0, s.j1, s.im)
		walk('h', s.im, s.i1, s.j1)
	} else {
		walk('v', s.j0, s.im, s.i0)
		walk('h', s.i0, s.i1, s.im)
		walk('v', s.im, s.j1, s.i1)
	}
	return over
}

func manhattan(a, b [2]int) int {
	return abs(a[0]-b[0]) + abs(a[1]-b[1])
}

// CellCongestion returns the per-GCell congestion (max of the utilizations of
// the edges leaving the cell rightward and upward).
func (g *Grid) CellCongestion() []float64 {
	out := make([]float64, g.nx*g.ny)
	for j := 0; j < g.ny; j++ {
		for i := 0; i < g.nx; i++ {
			var c float64
			if i < g.nx-1 {
				c = math.Max(c, float64(g.hUse[g.hIdx(i, j)])/float64(g.hCap))
			}
			if j < g.ny-1 {
				c = math.Max(c, float64(g.vUse[g.vIdx(i, j)])/float64(g.vCap))
			}
			out[j*g.nx+i] = c
		}
	}
	return out
}

// TopPercentAvg implements Eq. 5: the mean congestion over the top x% most
// congested GCells (x in (0,100]).
func (g *Grid) TopPercentAvg(x float64) float64 {
	cong := g.CellCongestion()
	sort.Sort(sort.Reverse(sort.Float64Slice(cong)))
	n := int(float64(len(cong)) * x / 100)
	if n < 1 {
		n = 1
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += cong[i]
	}
	return sum / float64(n)
}

// Dims returns the grid dimensions (nx, ny).
func (g *Grid) Dims() (int, int) { return g.nx, g.ny }
