// Package route is a GCell-grid global router in the style of FastRoute: nets
// are decomposed into two-pin segments over rectilinear Steiner trees
// (iterated 1-Steiner; MST for tiny or huge nets), segments are routed with
// L/Z/U pattern routing against per-edge capacities, and overflowed nets are
// ripped up and rerouted with congestion-aware costs.
// Its outputs — routed wirelength and the GCell congestion distribution — are
// exactly what the paper's V-P&R cost (Eqs. 4-5) and post-route metrics need.
package route

import (
	"math"
	"sort"

	"ppaclust/internal/netlist"
	"ppaclust/internal/sortx"
)

// Options configures global routing.
type Options struct {
	// GCellSize is the GCell edge length in microns (0 = auto: ~40x40 grid).
	GCellSize float64
	// CapacityH and CapacityV are routing track capacities per GCell edge.
	// Defaults 10 and 10.
	CapacityH, CapacityV int
	// Passes is the number of rip-up-and-reroute passes. Default 2.
	Passes int
	// MaxNetPins skips decomposition quality for huge nets (chain routing).
	// Default 64.
	MaxNetPins int
}

func (o Options) withDefaults(d *netlist.Design) Options {
	if o.GCellSize <= 0 {
		side := math.Max(d.Core.W(), d.Core.H())
		o.GCellSize = side / 40
		if o.GCellSize < 1 {
			o.GCellSize = 1
		}
	}
	if o.CapacityH <= 0 {
		o.CapacityH = 10
	}
	if o.CapacityV <= 0 {
		o.CapacityV = 10
	}
	if o.Passes <= 0 {
		o.Passes = 2
	}
	if o.MaxNetPins <= 0 {
		o.MaxNetPins = 64
	}
	return o
}

// Result reports global routing outcomes.
type Result struct {
	// WirelengthUM is the total routed wirelength in microns.
	WirelengthUM float64
	// Overflow is the total demand above capacity summed over edges.
	Overflow int
	// MaxCongestion is the highest edge utilization (use/capacity).
	MaxCongestion float64
	// Grid exposes the congestion distribution for Eq. 5.
	Grid *Grid
	// Vias counts bends (layer changes) across all routed segments.
	Vias int
}

// Grid is the GCell routing grid with per-edge usage.
type Grid struct {
	core   netlist.Rect
	nx, ny int
	size   float64
	hUse   []int // edge (i,j)->(i+1,j): index j*(nx-1)+i
	vUse   []int // edge (i,j)->(i,j+1): index j*nx+i
	hCap   int
	vCap   int
}

// NewGrid builds an empty routing grid over the core.
func NewGrid(core netlist.Rect, size float64, capH, capV int) *Grid {
	nx := int(math.Ceil(core.W()/size)) + 1
	ny := int(math.Ceil(core.H()/size)) + 1
	if nx < 2 {
		nx = 2
	}
	if ny < 2 {
		ny = 2
	}
	return &Grid{
		core: core, nx: nx, ny: ny, size: size,
		hUse: make([]int, (nx-1)*ny),
		vUse: make([]int, nx*(ny-1)),
		hCap: capH, vCap: capV,
	}
}

// Cell maps a physical position to GCell coordinates.
func (g *Grid) Cell(x, y float64) (int, int) {
	i := int((x - g.core.X0) / g.size)
	j := int((y - g.core.Y0) / g.size)
	if i < 0 {
		i = 0
	}
	if i >= g.nx {
		i = g.nx - 1
	}
	if j < 0 {
		j = 0
	}
	if j >= g.ny {
		j = g.ny - 1
	}
	return i, j
}

// NumCells returns the total number of GCells.
func (g *Grid) NumCells() int { return g.nx * g.ny }

func (g *Grid) hIdx(i, j int) int { return j*(g.nx-1) + i }
func (g *Grid) vIdx(i, j int) int { return j*g.nx + i }

// edgeCost is the congestion-aware cost of using an edge once more.
func edgeCost(use, cap int) float64 {
	if cap <= 0 {
		return 1e6
	}
	over := float64(use+1-cap) / float64(cap)
	if over <= 0 {
		return 1
	}
	return 1 + 20*over*over + 4*over
}

// hCost/vCost of a straight run; addH/addV apply usage.
func (g *Grid) runCostH(i0, i1, j int) float64 {
	if i0 > i1 {
		i0, i1 = i1, i0
	}
	var c float64
	for i := i0; i < i1; i++ {
		c += edgeCost(g.hUse[g.hIdx(i, j)], g.hCap)
	}
	return c
}

func (g *Grid) runCostV(j0, j1, i int) float64 {
	if j0 > j1 {
		j0, j1 = j1, j0
	}
	var c float64
	for j := j0; j < j1; j++ {
		c += edgeCost(g.vUse[g.vIdx(i, j)], g.vCap)
	}
	return c
}

func (g *Grid) applyH(i0, i1, j, delta int) {
	if i0 > i1 {
		i0, i1 = i1, i0
	}
	for i := i0; i < i1; i++ {
		g.hUse[g.hIdx(i, j)] += delta
	}
}

func (g *Grid) applyV(j0, j1, i, delta int) {
	if j0 > j1 {
		j0, j1 = j1, j0
	}
	for j := j0; j < j1; j++ {
		g.vUse[g.vIdx(i, j)] += delta
	}
}

// segRoute is one routed 2-pin connection: an optional Z with two bends.
// Path: (i0,j0) -> (im,j0) -> (im,j1) -> (i1,j1) horizontally-first, or the
// vertical-first mirror.
type segRoute struct {
	i0, j0, i1, j1 int
	im             int  // intermediate column (hFirst) or row (!hFirst)
	hFirst         bool // horizontal-vertical-horizontal vs V-H-V
}

func (g *Grid) apply(s segRoute, delta int) {
	if s.hFirst {
		g.applyH(s.i0, s.im, s.j0, delta)
		g.applyV(s.j0, s.j1, s.im, delta)
		g.applyH(s.im, s.i1, s.j1, delta)
	} else {
		g.applyV(s.j0, s.im, s.i0, delta)
		g.applyH(s.i0, s.i1, s.im, delta)
		g.applyV(s.im, s.j1, s.i1, delta)
	}
}

func (g *Grid) cost(s segRoute) float64 {
	if s.hFirst {
		return g.runCostH(s.i0, s.im, s.j0) + g.runCostV(s.j0, s.j1, s.im) + g.runCostH(s.im, s.i1, s.j1)
	}
	return g.runCostV(s.j0, s.im, s.i0) + g.runCostH(s.i0, s.i1, s.im) + g.runCostV(s.im, s.j1, s.i1)
}

// route finds the best L/Z route for a 2-pin segment.
func (g *Grid) route(i0, j0, i1, j1 int) segRoute {
	best := segRoute{i0: i0, j0: j0, i1: i1, j1: j1, im: i1, hFirst: true} // L: H then V
	bestCost := g.cost(best)
	try := func(s segRoute) {
		if c := g.cost(s); c < bestCost {
			best, bestCost = s, c
		}
	}
	try(segRoute{i0: i0, j0: j0, i1: i1, j1: j1, im: i0, hFirst: true})  // V then H (im=i0)
	try(segRoute{i0: i0, j0: j0, i1: i1, j1: j1, im: j1, hFirst: false}) // degenerate mirrors
	try(segRoute{i0: i0, j0: j0, i1: i1, j1: j1, im: j0, hFirst: false})
	// Z candidates: a few intermediate columns/rows.
	if di := abs(i1 - i0); di > 1 {
		for _, f := range []float64{0.25, 0.5, 0.75} {
			im := i0 + int(f*float64(i1-i0))
			try(segRoute{i0: i0, j0: j0, i1: i1, j1: j1, im: im, hFirst: true})
		}
	}
	if dj := abs(j1 - j0); dj > 1 {
		for _, f := range []float64{0.25, 0.5, 0.75} {
			jm := j0 + int(f*float64(j1-j0))
			try(segRoute{i0: i0, j0: j0, i1: i1, j1: j1, im: jm, hFirst: false})
		}
	}
	// U-detours: essential escape for straight runs through congestion
	// (the Z candidates above degenerate when the pins share a row/column).
	for _, dj := range []int{-2, -1, 1, 2} {
		jm := clampInt(j0+dj, 0, g.ny-1)
		try(segRoute{i0: i0, j0: j0, i1: i1, j1: j1, im: jm, hFirst: false})
	}
	for _, di := range []int{-2, -1, 1, 2} {
		im := clampInt(i0+di, 0, g.nx-1)
		try(segRoute{i0: i0, j0: j0, i1: i1, j1: j1, im: im, hFirst: true})
	}
	return best
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func (s segRoute) length() int {
	if s.hFirst {
		return abs(s.im-s.i0) + abs(s.j1-s.j0) + abs(s.i1-s.im)
	}
	return abs(s.im-s.j0) + abs(s.i1-s.i0) + abs(s.j1-s.im)
}

func (s segRoute) bends() int {
	b := 0
	if s.hFirst {
		if s.im != s.i0 && s.j1 != s.j0 {
			b++
		}
		if s.im != s.i1 && s.j1 != s.j0 {
			b++
		}
	} else {
		if s.im != s.j0 && s.i1 != s.i0 {
			b++
		}
		if s.im != s.j1 && s.i1 != s.i0 {
			b++
		}
	}
	return b
}

// GlobalRoute routes all nets of a placed design.
//
// Net pins are resolved through the netlist.Compact CSR view against
// positions gathered once up front, and deduplicated to GCells with a
// generation-stamped flat bin grid — no per-net map allocation and no
// pointer-API walks, which is what keeps the congestion estimate tractable at
// millions of nets. The routing itself (pattern routing + rip-up/reroute) is
// unchanged and processes nets in ID order, so results are deterministic.
func GlobalRoute(d *netlist.Design, opt Options) *Result {
	opt = opt.withDefaults(d)
	g := NewGrid(d.Core, opt.GCellSize, opt.CapacityH, opt.CapacityV)
	c := d.Compact()

	instX := make([]float64, len(d.Insts))
	instY := make([]float64, len(d.Insts))
	for i, inst := range d.Insts {
		instX[i] = inst.X
		instY[i] = inst.Y
	}
	// stamp[cell] holds the last net that claimed the GCell; comparing
	// against the current net ID dedups without clearing between nets.
	stamp := make([]int32, g.nx*g.ny)
	for i := range stamp {
		stamp[i] = -1
	}

	type netRoute struct {
		netID int
		segs  []segRoute
	}
	routes := make([]netRoute, 0, len(d.Nets))
	var cells [][2]int // reused across nets
	for ni := range d.Nets {
		cells = cells[:0]
		for k := c.NetStart[ni]; k < c.NetStart[ni+1]; k++ {
			var x, y float64
			if id := c.PinInst[k]; id >= 0 {
				x, y = instX[id]+c.PinDX[k], instY[id]+c.PinDY[k]
			} else if id == netlist.CompactNoPort {
				x, y = 0, 0
			} else {
				p := d.Ports[-1-id]
				x, y = p.X, p.Y
			}
			i, j := g.Cell(x, y)
			idx := j*g.nx + i
			if stamp[idx] == int32(ni) {
				continue
			}
			stamp[idx] = int32(ni)
			cells = append(cells, [2]int{i, j})
		}
		if len(cells) < 2 {
			continue
		}
		segs := steinerDecompose(cells, opt.MaxNetPins)
		nr := netRoute{netID: ni}
		for _, sp := range segs {
			s := g.route(sp[0], sp[1], sp[2], sp[3])
			g.apply(s, 1)
			nr.segs = append(nr.segs, s)
		}
		routes = append(routes, nr)
	}

	// Rip-up and reroute nets that touch overflowed edges.
	for pass := 1; pass < opt.Passes; pass++ {
		for ri := range routes {
			nr := &routes[ri]
			touches := false
			for _, s := range nr.segs {
				if g.segmentOverflowed(s) {
					touches = true
					break
				}
			}
			if !touches {
				continue
			}
			for si, s := range nr.segs {
				g.apply(s, -1)
				ns := g.route(s.i0, s.j0, s.i1, s.j1)
				g.apply(ns, 1)
				nr.segs[si] = ns
			}
		}
	}

	res := &Result{Grid: g}
	for _, nr := range routes {
		for _, s := range nr.segs {
			res.WirelengthUM += float64(s.length()) * g.size
			res.Vias += s.bends()
		}
	}
	for i, u := range g.hUse {
		_ = i
		if u > g.hCap {
			res.Overflow += u - g.hCap
		}
		if c := float64(u) / float64(g.hCap); c > res.MaxCongestion {
			res.MaxCongestion = c
		}
	}
	for _, u := range g.vUse {
		if u > g.vCap {
			res.Overflow += u - g.vCap
		}
		if c := float64(u) / float64(g.vCap); c > res.MaxCongestion {
			res.MaxCongestion = c
		}
	}
	return res
}

func (g *Grid) segmentOverflowed(s segRoute) bool {
	over := false
	walk := func(kind byte, a0, a1, fixed int) {
		if a0 > a1 {
			a0, a1 = a1, a0
		}
		for a := a0; a < a1 && !over; a++ {
			if kind == 'h' {
				if g.hUse[g.hIdx(a, fixed)] > g.hCap {
					over = true
				}
			} else {
				if g.vUse[g.vIdx(fixed, a)] > g.vCap {
					over = true
				}
			}
		}
	}
	if s.hFirst {
		walk('h', s.i0, s.im, s.j0)
		walk('v', s.j0, s.j1, s.im)
		walk('h', s.im, s.i1, s.j1)
	} else {
		walk('v', s.j0, s.im, s.i0)
		walk('h', s.i0, s.i1, s.im)
		walk('v', s.im, s.j1, s.i1)
	}
	return over
}

// decompose splits a multi-terminal net into 2-pin segments: Prim MST for
// small nets, a sorted chain for huge nets (e.g. the unsynthesized clock).
// The chain ordering uses the shared radix sort on (i+j, i) keys — unique per
// deduplicated GCell, so the chain matches the comparator sort it replaced.
func decompose(cells [][2]int, maxPins int) [][4]int {
	if len(cells) > maxPins {
		n := len(cells)
		keys := make([]uint64, n)
		for i, c := range cells {
			keys[i] = uint64(uint32(c[0]+c[1]))<<32 | uint64(uint32(c[0]))
		}
		ord := make([]int32, n)
		var s sortx.Sorter
		s.IndexByKeys(ord, keys)
		out := make([][4]int, 0, n-1)
		prev := cells[ord[0]]
		for i := 1; i < n; i++ {
			cur := cells[ord[i]]
			out = append(out, [4]int{prev[0], prev[1], cur[0], cur[1]})
			prev = cur
		}
		return out
	}
	n := len(cells)
	inTree := make([]bool, n)
	dist := make([]int, n)
	from := make([]int, n)
	for i := range dist {
		dist[i] = math.MaxInt32
	}
	inTree[0] = true
	for i := 1; i < n; i++ {
		dist[i] = manhattan(cells[0], cells[i])
		from[i] = 0
	}
	out := make([][4]int, 0, n-1)
	for k := 1; k < n; k++ {
		best, bestD := -1, math.MaxInt32
		for i := 0; i < n; i++ {
			if !inTree[i] && dist[i] < bestD {
				best, bestD = i, dist[i]
			}
		}
		if best < 0 {
			break
		}
		inTree[best] = true
		out = append(out, [4]int{cells[from[best]][0], cells[from[best]][1], cells[best][0], cells[best][1]})
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := manhattan(cells[best], cells[i]); d < dist[i] {
					dist[i] = d
					from[i] = best
				}
			}
		}
	}
	return out
}

func manhattan(a, b [2]int) int {
	return abs(a[0]-b[0]) + abs(a[1]-b[1])
}

// CellCongestion returns the per-GCell congestion (max of the utilizations of
// the edges leaving the cell rightward and upward).
func (g *Grid) CellCongestion() []float64 {
	out := make([]float64, g.nx*g.ny)
	for j := 0; j < g.ny; j++ {
		for i := 0; i < g.nx; i++ {
			var c float64
			if i < g.nx-1 {
				c = math.Max(c, float64(g.hUse[g.hIdx(i, j)])/float64(g.hCap))
			}
			if j < g.ny-1 {
				c = math.Max(c, float64(g.vUse[g.vIdx(i, j)])/float64(g.vCap))
			}
			out[j*g.nx+i] = c
		}
	}
	return out
}

// TopPercentAvg implements Eq. 5: the mean congestion over the top x% most
// congested GCells (x in (0,100]).
func (g *Grid) TopPercentAvg(x float64) float64 {
	cong := g.CellCongestion()
	sort.Sort(sort.Reverse(sort.Float64Slice(cong)))
	n := int(float64(len(cong)) * x / 100)
	if n < 1 {
		n = 1
	}
	var sum float64
	for i := 0; i < n; i++ {
		sum += cong[i]
	}
	return sum / float64(n)
}

// Dims returns the grid dimensions (nx, ny).
func (g *Grid) Dims() (int, int) { return g.nx, g.ny }
