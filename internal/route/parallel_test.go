package route

import (
	"math"
	"math/rand"
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/netlist"
)

// scatterTiny generates the tiny benchmark and scatters its movable cells
// deterministically across the core. The placer cannot be used here — it
// imports this package for its routability-driven checkpoints, so an
// in-package import would be a cycle — and routing equivalence only needs a
// placed design, not a good placement.
func scatterTiny(t *testing.T, seed int64) *netlist.Design {
	t.Helper()
	b := designs.Generate(designs.TinySpec(seed))
	d := b.Design
	rng := rand.New(rand.NewSource(seed))
	core := d.Core
	for _, inst := range d.Insts {
		if inst.Fixed {
			continue
		}
		inst.X = core.X0 + rng.Float64()*(core.W()-inst.Master.Width)
		inst.Y = core.Y0 + rng.Float64()*(core.H()-inst.Master.Height)
		inst.Placed = true
	}
	return d
}

// TestGlobalRouteWorkersEquivalent checks the router's bit-identity
// contract: every worker count must produce exactly the same routed
// wirelength, overflow, max congestion, via count, and per-edge usage.
// The parallel phases only ever price candidates against frozen grid
// snapshots and merge integer partial grids, so nothing may drift.
func TestGlobalRouteWorkersEquivalent(t *testing.T) {
	ref := GlobalRoute(scatterTiny(t, 41), Options{Workers: 1})
	for _, w := range []int{2, 8} {
		got := GlobalRoute(scatterTiny(t, 41), Options{Workers: w})
		if math.Float64bits(got.WirelengthUM) != math.Float64bits(ref.WirelengthUM) {
			t.Fatalf("W=%d wirelength %v != %v", w, got.WirelengthUM, ref.WirelengthUM)
		}
		if got.Overflow != ref.Overflow {
			t.Fatalf("W=%d overflow %d != %d", w, got.Overflow, ref.Overflow)
		}
		if math.Float64bits(got.MaxCongestion) != math.Float64bits(ref.MaxCongestion) {
			t.Fatalf("W=%d max congestion %v != %v", w, got.MaxCongestion, ref.MaxCongestion)
		}
		if got.Vias != ref.Vias {
			t.Fatalf("W=%d vias %d != %d", w, got.Vias, ref.Vias)
		}
		for i := range ref.Grid.hUse {
			if got.Grid.hUse[i] != ref.Grid.hUse[i] {
				t.Fatalf("W=%d hUse[%d] %d != %d", w, i, got.Grid.hUse[i], ref.Grid.hUse[i])
			}
		}
		for i := range ref.Grid.vUse {
			if got.Grid.vUse[i] != ref.Grid.vUse[i] {
				t.Fatalf("W=%d vUse[%d] %d != %d", w, i, got.Grid.vUse[i], ref.Grid.vUse[i])
			}
		}
	}
}

// TestRouteHotLoopAllocFree gates the per-net scratch reuse: once a
// worker's routeScratch exists, decomposing and pattern-routing a net
// (the MST path, the overlay bookkeeping, and the partial-grid apply)
// must not allocate.
func TestRouteHotLoopAllocFree(t *testing.T) {
	core := netlist.Rect{X0: 0, Y0: 0, X1: 400, Y1: 400}
	g := NewGrid(core, 10, 4, 4)
	sc := newRouteScratch(g)
	cells := [][2]int{{1, 2}, {17, 3}, {9, 30}, {25, 25}, {33, 8}}
	var segs [][4]int
	// Warm the scratch so capacity growth happens outside the measured runs.
	segs = sc.dec.decompose(cells, 64, segs[:0])
	gen := int32(0)
	avg := testing.AllocsPerRun(100, func() {
		segs = sc.dec.decompose(cells, 64, segs[:0])
		ctx := &sc.ctx
		gen++
		ctx.gen = gen
		for _, sp := range segs {
			s := ctx.route(sp[0], sp[1], sp[2], sp[3])
			ctx.addOwn(s)
			sc.applyPart(s)
		}
		for i := range sc.partH {
			sc.partH[i] = 0
		}
		for i := range sc.partV {
			sc.partV[i] = 0
		}
	})
	if avg != 0 {
		t.Fatalf("route hot loop allocates %.1f times per net, want 0", avg)
	}
}

// TestDecomposeHotLoopAllocFree gates the chain path for huge nets, which
// must reuse the radix-sort buffers across nets.
func TestDecomposeHotLoopAllocFree(t *testing.T) {
	var sc decScratch
	var cells [][2]int
	for i := 0; i < 300; i++ {
		cells = append(cells, [2]int{i % 20, i / 20})
	}
	var segs [][4]int
	segs = sc.decompose(cells, 64, segs[:0]) // warm
	avg := testing.AllocsPerRun(50, func() {
		segs = sc.decompose(cells, 64, segs[:0])
	})
	if avg != 0 {
		t.Fatalf("chain decompose allocates %.1f times per net, want 0", avg)
	}
}
