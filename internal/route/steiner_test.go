package route

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSteinerBeatsMSTOnLCase(t *testing.T) {
	// Classic 3-terminal case: MST = 6, Steiner (via (1,0)) = 5.
	cells := [][2]int{{0, 0}, {2, 0}, {1, 3}}
	mst := 0
	for _, s := range decompose(cells, 64) {
		mst += abs(s[2]-s[0]) + abs(s[3]-s[1])
	}
	st := SteinerLength(cells)
	if st >= mst {
		t.Fatalf("steiner %d should beat mst %d", st, mst)
	}
	if st != 5 {
		t.Fatalf("steiner length=%d want 5", st)
	}
}

func TestSteinerTwoPinsIsDirect(t *testing.T) {
	if got := SteinerLength([][2]int{{0, 0}, {3, 4}}); got != 7 {
		t.Fatalf("2-pin steiner=%d want 7", got)
	}
}

func TestPropertySteinerNeverWorseThanMST(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		seen := map[[2]int]bool{}
		var cells [][2]int
		for len(cells) < n {
			c := [2]int{rng.Intn(20), rng.Intn(20)}
			if !seen[c] {
				seen[c] = true
				cells = append(cells, c)
			}
		}
		mst := 0
		for _, s := range decompose(cells, 64) {
			mst += abs(s[2]-s[0]) + abs(s[3]-s[1])
		}
		st := SteinerLength(cells)
		// Steiner must not exceed MST, and must stay above the HPWL bound.
		minX, maxX := cells[0][0], cells[0][0]
		minY, maxY := cells[0][1], cells[0][1]
		for _, c := range cells {
			if c[0] < minX {
				minX = c[0]
			}
			if c[0] > maxX {
				maxX = c[0]
			}
			if c[1] < minY {
				minY = c[1]
			}
			if c[1] > maxY {
				maxY = c[1]
			}
		}
		hpwl := (maxX - minX) + (maxY - minY)
		return st <= mst && st >= hpwl
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySteinerStillConnects(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		seen := map[[2]int]bool{}
		var cells [][2]int
		for len(cells) < n {
			c := [2]int{rng.Intn(15), rng.Intn(15)}
			if !seen[c] {
				seen[c] = true
				cells = append(cells, c)
			}
		}
		segs := steinerDecompose(cells, 64)
		// Union-find over all endpoint coordinates; every terminal must end
		// in one component.
		id := map[[2]int]int{}
		get := func(p [2]int) int {
			if v, ok := id[p]; ok {
				return v
			}
			id[p] = len(id)
			return id[p]
		}
		parent := []int{}
		find := func(v int) int {
			for parent[v] != v {
				parent[v] = parent[parent[v]]
				v = parent[v]
			}
			return v
		}
		ensure := func(v int) {
			for len(parent) <= v {
				parent = append(parent, len(parent))
			}
		}
		for _, s := range segs {
			a, b := get([2]int{s[0], s[1]}), get([2]int{s[2], s[3]})
			ensure(a)
			ensure(b)
			parent[find(a)] = find(b)
		}
		if len(parent) == 0 {
			return false
		}
		root := -1
		for _, c := range cells {
			v, ok := id[c]
			if !ok {
				return false // terminal dropped
			}
			if root < 0 {
				root = find(v)
			} else if find(v) != root {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
