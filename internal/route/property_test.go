package route

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ppaclust/internal/netlist"
)

// TestPropertySegmentLengthLowerBound: every routed 2-pin segment is at
// least as long as its Manhattan distance, and usage applied then removed
// restores a clean grid.
func TestPropertySegmentLengthLowerBound(t *testing.T) {
	core := netlist.Rect{X0: 0, Y0: 0, X1: 200, Y1: 200}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGrid(core, 10, 4, 4)
		for k := 0; k < 30; k++ {
			i0, j0 := rng.Intn(g.nx), rng.Intn(g.ny)
			i1, j1 := rng.Intn(g.nx), rng.Intn(g.ny)
			s := g.route(i0, j0, i1, j1)
			if s.length() < abs(i1-i0)+abs(j1-j0) {
				return false
			}
			g.apply(s, 1)
			g.apply(s, -1)
		}
		for _, u := range g.hUse {
			if u != 0 {
				return false
			}
		}
		for _, u := range g.vUse {
			if u != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMSTConnects: decompose yields exactly n-1 segments over n
// distinct cells and touches every cell.
func TestPropertyMSTConnects(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		seen := map[[2]int]bool{}
		var cells [][2]int
		for len(cells) < n {
			c := [2]int{rng.Intn(30), rng.Intn(30)}
			if !seen[c] {
				seen[c] = true
				cells = append(cells, c)
			}
		}
		segs := decompose(cells, 64)
		if len(segs) != n-1 {
			return false
		}
		// Union-find connectivity over cells.
		idx := map[[2]int]int{}
		for i, c := range cells {
			idx[c] = i
		}
		parent := make([]int, n)
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(v int) int {
			for parent[v] != v {
				parent[v] = parent[parent[v]]
				v = parent[v]
			}
			return v
		}
		for _, s := range segs {
			a := idx[[2]int{s[0], s[1]}]
			b := idx[[2]int{s[2], s[3]}]
			parent[find(a)] = find(b)
		}
		root := find(0)
		for i := 1; i < n; i++ {
			if find(i) != root {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
