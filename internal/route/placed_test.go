// External tests: these exercise GlobalRoute on placed designs and need the
// placer, which now imports this package for its routability-driven
// checkpoints — an in-package import would be a cycle.
package route_test

import (
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/netlist"
	"ppaclust/internal/place"
	"ppaclust/internal/route"
)

func placedTiny(t *testing.T, seed int64) *netlist.Design {
	t.Helper()
	b := designs.Generate(designs.TinySpec(seed))
	place.Global(b.Design, place.Options{Seed: seed})
	return b.Design
}

func TestGlobalRouteOnPlacedDesign(t *testing.T) {
	d := placedTiny(t, 31)
	res := route.GlobalRoute(d, route.Options{})
	if res.WirelengthUM <= 0 {
		t.Fatal("no wirelength")
	}
	// Routed WL should be at least comparable to HPWL (usually larger).
	if res.WirelengthUM < 0.4*d.HPWL() {
		t.Fatalf("rWL %v suspiciously below HPWL %v", res.WirelengthUM, d.HPWL())
	}
	if res.MaxCongestion < 0 {
		t.Fatal("bad congestion")
	}
	if res.Grid == nil {
		t.Fatal("missing grid")
	}
}

func TestRipUpReducesOverflow(t *testing.T) {
	d := placedTiny(t, 32)
	r1 := route.GlobalRoute(d, route.Options{Passes: 1, CapacityH: 3, CapacityV: 3})
	r2 := route.GlobalRoute(d, route.Options{Passes: 3, CapacityH: 3, CapacityV: 3})
	if r2.Overflow > r1.Overflow {
		t.Fatalf("rip-up increased overflow: %d -> %d", r1.Overflow, r2.Overflow)
	}
}

func TestDeterministicRouting(t *testing.T) {
	d1 := placedTiny(t, 33)
	d2 := placedTiny(t, 33)
	r1 := route.GlobalRoute(d1, route.Options{})
	r2 := route.GlobalRoute(d2, route.Options{})
	if r1.WirelengthUM != r2.WirelengthUM || r1.Overflow != r2.Overflow {
		t.Fatal("routing not deterministic")
	}
}
