package designs

import (
	"math"
	"testing"

	"ppaclust/internal/hier"
	"ppaclust/internal/netlist"
	"ppaclust/internal/sta"
)

func TestLibMasters(t *testing.T) {
	lib := Lib()
	for _, name := range []string{"INV_X1", "NAND2_X1", "DFF_X1", "CLKBUF_X2", "RAM32X32", "XOR2_X1", "MUX2_X1"} {
		m := lib.Master(name)
		if m == nil {
			t.Fatalf("missing master %s", name)
		}
		if m.Width <= 0 || m.Height <= 0 {
			t.Fatalf("%s has degenerate size", name)
		}
	}
	if !lib.Master("DFF_X1").IsSequential() {
		t.Fatal("DFF_X1 should be sequential")
	}
	if lib.Master("INV_X1").IsSequential() {
		t.Fatal("INV_X1 should not be sequential")
	}
	if lib.Master("RAM32X32").Class != netlist.ClassMacro {
		t.Fatal("RAM should be a macro")
	}
	// Delay tables: more load -> more delay.
	arc := &lib.Master("INV_X1").Pin("ZN").Arcs[0]
	if arc.Delay.Lookup(10e-12, 40e-15) <= arc.Delay.Lookup(10e-12, 2e-15) {
		t.Fatal("delay should grow with load")
	}
}

func TestNamedSpecs(t *testing.T) {
	names := []string{"aes", "jpeg", "ariane", "bp", "mb", "mpg"}
	var prev int
	for _, n := range names {
		s, ok := Named(n)
		if !ok {
			t.Fatalf("missing spec %s", n)
		}
		if s.TargetInsts <= prev {
			t.Fatalf("specs should grow in size: %s", n)
		}
		prev = s.TargetInsts
		if _, ok := PaperNames[n]; !ok {
			t.Fatalf("missing paper name for %s", n)
		}
	}
	if _, ok := Named("nonexistent"); ok {
		t.Fatal("unknown spec should report !ok")
	}
	if len(AllSpecs()) != 6 {
		t.Fatal("want 6 specs")
	}
}

func TestGenerateTiny(t *testing.T) {
	b := Generate(TinySpec(7))
	d := b.Design
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Insts < 200 || st.Insts > 600 {
		t.Fatalf("tiny insts=%d", st.Insts)
	}
	if st.Seq == 0 {
		t.Fatal("no registers generated")
	}
	// Clock net reaches every register.
	clkNet := d.Net("clk")
	if clkNet == nil || !clkNet.Clock {
		t.Fatal("clock net missing")
	}
	ckPins := 0
	for _, p := range clkNet.Pins {
		if !p.IsPort() {
			ckPins++
		}
	}
	if ckPins != st.Seq {
		t.Fatalf("clock reaches %d pins, %d sequential cells", ckPins, st.Seq)
	}
	// Floorplan sanity.
	if d.Core.Area() <= 0 || d.Die.Area() <= d.Core.Area() {
		t.Fatal("bad floorplan")
	}
	util := d.Utilization()
	if util < 0.3 || util > 0.8 {
		t.Fatalf("utilization=%v", util)
	}
	// Every net has at most one driver and at least one pin.
	for _, n := range d.Nets {
		drivers := 0
		for _, p := range n.Pins {
			if p.IsPort() {
				if port := d.Port(p.Pin); port != nil && port.Dir == netlist.DirInput {
					drivers++
				}
				continue
			}
			mp := d.Insts[p.Inst].Master.Pin(p.Pin)
			if mp.Dir == netlist.DirOutput {
				drivers++
			}
		}
		if drivers > 1 {
			t.Fatalf("net %s has %d drivers", n.Name, drivers)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(TinySpec(3))
	b := Generate(TinySpec(3))
	if a.Design.Stats() != b.Design.Stats() {
		t.Fatal("same spec should generate identical stats")
	}
	if len(a.Design.Nets) != len(b.Design.Nets) {
		t.Fatal("net counts differ")
	}
	for i := range a.Design.Nets {
		if len(a.Design.Nets[i].Pins) != len(b.Design.Nets[i].Pins) {
			t.Fatal("net pin counts differ")
		}
	}
}

func TestGenerateHierarchyIsClusterable(t *testing.T) {
	b := Generate(TinySpec(11))
	res, ok := hier.Cluster(b.Design, b.Design.ToHypergraph().H)
	if !ok {
		t.Fatal("generated design should have usable hierarchy")
	}
	if res.Clusters < 2 {
		t.Fatalf("clusters=%d", res.Clusters)
	}
}

func TestGenerateTimingIsAnalyzable(t *testing.T) {
	b := Generate(TinySpec(5))
	// Spread instances over the core so wire delays are nonzero but sane.
	d := b.Design
	i := 0
	cols := int(math.Sqrt(float64(len(d.Insts)))) + 1
	for _, inst := range d.Insts {
		if inst.Fixed {
			continue
		}
		inst.X = d.Core.X0 + float64(i%cols)*2
		inst.Y = d.Core.Y0 + float64(i/cols)*1.4
		inst.Placed = true
		i++
	}
	a := sta.New(d, b.Cons)
	sum := a.Timing()
	if sum.Endpoints == 0 {
		t.Fatal("no timing endpoints")
	}
	paths := a.TopPaths(50)
	if len(paths) == 0 {
		t.Fatal("no paths extracted")
	}
	act := a.NetActivity()
	nonzero := 0
	for _, x := range act {
		if x > 0 {
			nonzero++
		}
	}
	if nonzero < len(act)/4 {
		t.Fatalf("too few active nets: %d/%d", nonzero, len(act))
	}
}

func TestGenerateWithMacros(t *testing.T) {
	spec := TinySpec(13)
	spec.Macros = 2
	b := Generate(spec)
	st := b.Design.Stats()
	if st.Macros != 2 {
		t.Fatalf("macros=%d want 2", st.Macros)
	}
	for _, inst := range b.Design.Insts {
		if inst.Master.Class == netlist.ClassMacro {
			if !inst.Fixed || !inst.Placed {
				t.Fatal("macros must be preplaced and fixed")
			}
			if !b.Design.Core.Contains(inst.X, inst.Y) {
				t.Fatal("macro outside core")
			}
		}
	}
	if err := b.Design.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPortsOnBoundary(t *testing.T) {
	b := Generate(TinySpec(17))
	d := b.Design
	for _, p := range d.Ports {
		if !p.Placed {
			t.Fatalf("port %s unplaced", p.Name)
		}
		onX := math.Abs(p.X-d.Core.X0) < 1e-9 || math.Abs(p.X-d.Core.X1) < 1e-9
		onY := math.Abs(p.Y-d.Core.Y0) < 1e-9 || math.Abs(p.Y-d.Core.Y1) < 1e-9
		if !onX && !onY {
			t.Fatalf("port %s not on boundary (%v,%v)", p.Name, p.X, p.Y)
		}
	}
}

func TestPointOnPerimeter(t *testing.T) {
	r := netlist.Rect{X0: 0, Y0: 0, X1: 10, Y1: 10}
	cases := []struct{ t, x, y float64 }{
		{0, 0, 0}, {5, 5, 0}, {10, 10, 0}, {15, 10, 5}, {25, 5, 10}, {35, 0, 5},
	}
	for _, c := range cases {
		x, y := pointOnPerimeter(r, c.t)
		if math.Abs(x-c.x) > 1e-9 || math.Abs(y-c.y) > 1e-9 {
			t.Errorf("t=%v got (%v,%v) want (%v,%v)", c.t, x, y, c.x, c.y)
		}
	}
}
