package designs

import (
	"math"
	"math/rand"
	"sync"

	"ppaclust/internal/netlist"
	"ppaclust/internal/par"
	"ppaclust/internal/sta"
)

// Spec parameterizes one synthetic benchmark.
type Spec struct {
	Name        string
	TargetInsts int     // approximate instance count
	Depth       int     // logical hierarchy depth (>=1)
	Branch      int     // children per hierarchy node
	SeqRatio    float64 // fraction of leaf cells that are registers
	CrossFrac   float64 // fraction of sinks wired across leaf modules
	SiblingBias float64 // of cross wires, fraction kept under the same parent
	// BroadcastFrac is the fraction of gate inputs tied to global control
	// signals (enables/selects): high-fanout, design-wide nets that mislead
	// connectivity-only clustering but are not timing-critical. Default 0.03.
	BroadcastFrac float64
	IOs           int     // primary data IO count (split between in/out)
	Macros        int     // preplaced RAM macros
	ClockPeriod   float64 // target clock period (s)
	Utilization   float64 // floorplan utilization target
	LogicDepth    int     // max combinational depth between registers (default 16)
	Seed          int64
}

// Benchmark bundles a generated design with its timing constraints.
type Benchmark struct {
	Design *netlist.Design
	Cons   sta.Constraints
	Spec   Spec
}

// specs are the six paper benchmarks, scaled ~40-100x down with ordering and
// relative character preserved (aes: small flat crypto core; MemPool Group:
// huge, deeply hierarchical, many macros). Clock periods follow Table 1's
// TCP_OR column (in ns there; here the generator's gate depth is tuned so
// those periods yield mildly violating paths, as in the paper's Tables 3-4).
var specs = []Spec{
	{Name: "aes", TargetInsts: 1500, Depth: 2, Branch: 4, SeqRatio: 0.18, CrossFrac: 0.10, SiblingBias: 0.7, IOs: 64, Macros: 0, ClockPeriod: 0.55e-9, Utilization: 0.55, LogicDepth: 10, Seed: 1001},
	{Name: "jpeg", TargetInsts: 3200, Depth: 2, Branch: 5, SeqRatio: 0.16, CrossFrac: 0.08, SiblingBias: 0.7, IOs: 48, Macros: 0, ClockPeriod: 0.80e-9, Utilization: 0.55, LogicDepth: 14, Seed: 1002},
	{Name: "ariane", TargetInsts: 6500, Depth: 3, Branch: 4, SeqRatio: 0.20, CrossFrac: 0.09, SiblingBias: 0.75, IOs: 96, Macros: 4, ClockPeriod: 1.05e-9, Utilization: 0.52, LogicDepth: 18, Seed: 1003},
	{Name: "bp", TargetInsts: 13000, Depth: 3, Branch: 5, SeqRatio: 0.22, CrossFrac: 0.08, SiblingBias: 0.8, IOs: 128, Macros: 8, ClockPeriod: 1.25e-9, Utilization: 0.50, LogicDepth: 20, Seed: 1004},
	{Name: "mb", TargetInsts: 19000, Depth: 4, Branch: 4, SeqRatio: 0.22, CrossFrac: 0.07, SiblingBias: 0.8, IOs: 128, Macros: 12, ClockPeriod: 1.35e-9, Utilization: 0.50, LogicDepth: 22, Seed: 1005},
	{Name: "mpg", TargetInsts: 27000, Depth: 4, Branch: 5, SeqRatio: 0.24, CrossFrac: 0.06, SiblingBias: 0.85, IOs: 160, Macros: 16, ClockPeriod: 1.50e-9, Utilization: 0.48, LogicDepth: 24, Seed: 1006},
}

// PaperNames maps our short names to the paper's design names.
var PaperNames = map[string]string{
	"aes": "aes", "jpeg": "jpeg", "ariane": "ariane",
	"bp": "BlackParrot", "mb": "MegaBoom", "mpg": "MemPool Group",
}

// Named returns the spec for one of the six benchmark names.
func Named(name string) (Spec, bool) {
	for _, s := range specs {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// AllSpecs returns the six benchmark specs in paper order.
func AllSpecs() []Spec {
	out := make([]Spec, len(specs))
	copy(out, specs)
	return out
}

// TinySpec returns a fast, small spec for unit/integration tests.
func TinySpec(seed int64) Spec {
	return Spec{
		Name: "tiny", TargetInsts: 320, Depth: 2, Branch: 3, SeqRatio: 0.2,
		CrossFrac: 0.1, SiblingBias: 0.7, IOs: 16, Macros: 0,
		ClockPeriod: 0.6e-9, Utilization: 0.5, LogicDepth: 10, Seed: seed,
	}
}

// driver is an available signal source during generation. Combinational
// depths live in the record pass (leafRecorder.depths); by materialization
// time only the pin reference and the lazily created net matter.
type driver struct {
	ref  netlist.PinRef
	net  *netlist.Net // nil until first sink connects
	leaf int          // producing leaf module index, -1 for primary inputs
}

type generator struct {
	rng     *rand.Rand
	workers int
	d       *netlist.Design
	lib     *netlist.Library
	spec    Spec
	gates   []*netlist.Master // comb masters, sampled by weight; resolved once
	dff     *netlist.Master
	ram     *netlist.Master

	clockNet  *netlist.Net
	netCount  int
	instCount int

	// exported drivers per leaf, available to later leaves for cross wiring
	exports    [][]driver
	expCount   int // exports per leaf, fixed a priori (every leaf is perLeaf cells)
	leafParent []int
	broadcast  []driver // global control signals (register outputs)
}

// Generate builds the benchmark for a spec. The same spec always yields the
// identical design (deterministic RNG; no map iteration in generation).
// genCache memoizes one master benchmark per Spec. The Spec value is the
// complete generation input (including Seed), so equal specs always produce
// equal benchmarks; Generate hands out clones of the cached master, which
// makes repeated and concurrent generation cheap while keeping every caller
// free to mutate its copy.
var genCache sync.Map // Spec -> *genEntry

type genEntry struct {
	once sync.Once
	b    *Benchmark
}

func Generate(spec Spec) *Benchmark {
	e, _ := genCache.LoadOrStore(spec, &genEntry{})
	entry := e.(*genEntry)
	entry.once.Do(func() { entry.b = generate(spec, 0) })
	cons := entry.b.Cons
	cons.ClockPorts = append([]string(nil), cons.ClockPorts...)
	return &Benchmark{Design: entry.b.Design.Clone(), Cons: cons, Spec: entry.b.Spec}
}

// GenerateWorkers builds the benchmark with an explicit worker count and
// without the cache. The result is bit-identical at every worker count
// (leaf records come from per-leaf RNG streams, and materialization is a
// fixed serial order — gated by TestGenerateWorkersEquivalent). Benchmarks
// that time generation use this so repeat runs do not measure a cache hit.
func GenerateWorkers(spec Spec, workers int) *Benchmark {
	return generate(spec, workers)
}

func generate(spec Spec, workers int) *Benchmark {
	g := &generator{
		rng:     rand.New(rand.NewSource(spec.Seed)),
		workers: par.Workers(workers),
		lib:     Lib(),
		spec:    spec,
	}
	// Pre-size the design for the requested cell count: instances get the
	// target plus control registers and macros, nets track instances nearly
	// one-to-one (every driver pin opens at most one net).
	instCap := spec.TargetInsts + spec.TargetInsts/16 + spec.Macros + 64
	g.d = netlist.NewDesignSized(spec.Name, g.lib, instCap, instCap+spec.IOs+8)
	// Resolve masters once instead of a name-map lookup per instance.
	for _, name := range []string{
		"INV_X1", "INV_X1", "INV_X2", "BUF_X1",
		"NAND2_X1", "NAND2_X1", "NOR2_X1", "AND2_X1", "OR2_X1",
		"XOR2_X1", "AOI21_X1", "MUX2_X1",
	} {
		g.gates = append(g.gates, g.lib.Master(name))
	}
	g.dff = g.lib.Master("DFF_X1")
	g.ram = g.lib.Master("RAM32X32")
	if g.spec.LogicDepth <= 0 {
		g.spec.LogicDepth = 16
	}
	if g.spec.BroadcastFrac == 0 {
		g.spec.BroadcastFrac = 0.03
	}
	g.build()
	cons := sta.DefaultConstraints(spec.ClockPeriod)
	cons.ClockPorts = []string{"clk"}
	return &Benchmark{Design: g.d, Cons: cons, Spec: spec}
}

// must asserts a generator invariant: every AddNet/AddInstance/AddPort name
// derives from a monotone counter, so duplicate-name errors cannot occur on
// any input. A failure here is a bug in the generator itself, which no
// caller could meaningfully handle.
func must(err error) {
	if err != nil {
		panic(err) //ppalint:ignore nopanic invariant assertion: counter-derived names are unique by construction, failure is a generator bug
	}
}

func (g *generator) newNetFor(drv *driver) *netlist.Net {
	if drv.net != nil {
		return drv.net
	}
	n, err := g.d.AddNet("n" + itoa(g.netCount))
	must(err)
	g.netCount++
	g.d.Connect(n, drv.ref)
	drv.net = n
	return n
}

func (g *generator) addInst(path string, master *netlist.Master) *netlist.Instance {
	inst, err := g.d.AddInstance(path+"/g"+itoa(g.instCount), master)
	must(err)
	g.instCount++
	return inst
}

// leafPaths enumerates the hierarchy tree's leaf module paths.
func (g *generator) leafPaths() []string {
	var out []string
	g.leafParent = nil
	parentOf := map[string]int{}
	var rec func(prefix string, depth, parentIdx int)
	rec = func(prefix string, depth, parentIdx int) {
		if depth == g.spec.Depth {
			out = append(out, prefix)
			g.leafParent = append(g.leafParent, parentIdx)
			return
		}
		idx := len(parentOf)
		parentOf[prefix] = idx
		for c := 0; c < g.spec.Branch; c++ {
			rec(prefix+"/m"+itoa(c), depth+1, idx)
		}
	}
	rec("top", 0, -1)
	return out
}

func (g *generator) build() {
	d := g.d
	spec := g.spec

	// Clock port and net.
	clk, _ := d.AddPort("clk", netlist.DirInput)
	g.clockNet, _ = d.AddNet("clk")
	g.clockNet.Clock = true
	d.Connect(g.clockNet, netlist.PinRef{Inst: -1, Pin: "clk"})
	_ = clk

	// Primary inputs.
	nIn := spec.IOs / 2
	if nIn < 4 {
		nIn = 4
	}
	primary := make([]driver, 0, nIn)
	for i := 0; i < nIn; i++ {
		name := "in" + itoa(i)
		_, err := d.AddPort(name, netlist.DirInput)
		must(err)
		primary = append(primary, driver{ref: netlist.PinRef{Inst: -1, Pin: name}, leaf: -1})
	}

	// Global control registers: their outputs broadcast across the design.
	nCtrl := 3 + spec.TargetInsts/2500
	for i := 0; i < nCtrl; i++ {
		ff := g.addInst("top/ctrl", g.dff)
		d.Connect(g.clockNet, netlist.PinRef{Inst: ff.ID, Pin: "CK"})
		// Control registers resample a primary input: a one-hop, timing-
		// harmless path.
		drv := &primary[g.rng.Intn(len(primary))]
		n := g.newNetFor(drv)
		d.Connect(n, netlist.PinRef{Inst: ff.ID, Pin: "D"})
		g.broadcast = append(g.broadcast, driver{ref: netlist.PinRef{Inst: ff.ID, Pin: "Q"}, leaf: -1})
	}

	leaves := g.leafPaths()
	perLeaf := spec.TargetInsts / len(leaves)
	if perLeaf < 12 {
		perLeaf = 12
	}
	// Every leaf is exactly perLeaf cells, so its export count is known
	// before any leaf is built — cross-module picks in the record phase can
	// index another leaf's exports without waiting for them to materialize.
	g.expCount = perLeaf / 8
	if g.expCount < 4 {
		g.expCount = 4
	}
	g.exports = make([][]driver, len(leaves))

	// Phase B: record every leaf's synthesis decisions in parallel. Each
	// leaf draws from its own seeded RNG stream and consults only a-priori
	// facts about the others (parent indices, the fixed export count), so
	// the records are identical at every worker count.
	plans := make([]leafPlan, len(leaves))
	par.ForEach(g.workers, len(leaves), func(li int) {
		g.recordLeaf(li, perLeaf, len(primary), &plans[li])
	})

	// Phase C: materialize the records serially in leaf order — instance,
	// net, and name counters advance in one fixed sequence regardless of
	// how the records were produced.
	for li, path := range leaves {
		g.materializeLeaf(li, path, &plans[li], primary)
	}

	// Macros: attach each to a leaf's exported signals.
	for mi := 0; mi < spec.Macros; mi++ {
		li := g.rng.Intn(len(leaves))
		g.addMacro(mi, li, leaves[li])
	}

	// Primary outputs: tap exported drivers from random leaves.
	nOut := spec.IOs - nIn
	if nOut < 4 {
		nOut = 4
	}
	for i := 0; i < nOut; i++ {
		name := "out" + itoa(i)
		_, err := d.AddPort(name, netlist.DirOutput)
		must(err)
		li := g.rng.Intn(len(g.exports))
		if len(g.exports[li]) == 0 {
			continue
		}
		drv := &g.exports[li][g.rng.Intn(len(g.exports[li]))]
		n := g.newNetFor(drv)
		d.Connect(n, netlist.PinRef{Inst: -1, Pin: name})
	}

	g.floorplan()
}

// driverRef names a signal source chosen during the leaf record pass,
// before any instance or net exists.
type driverRef struct {
	kind int8  // refBroadcast, refCross, refPrimary, refLocal
	a    int32 // broadcast/primary/local index, or the source leaf for refCross
	b    int32 // export index within the source leaf (refCross only)
}

const (
	refBroadcast = int8(iota)
	refCross
	refPrimary
	refLocal
)

// leafPlan is one leaf module's recorded synthesis: which comb masters to
// instantiate, where every input pin connects, how register D inputs close,
// and which local drivers the leaf exports. Records reference other leaves
// only as (leaf, export-slot) pairs, so they can be produced in parallel.
type leafPlan struct {
	gates  []int32     // comb cell master index into generator.gates
	picks  []driverRef // input pin sources, in gate-then-pin order
	dClose []int32     // local driver index closing each register D input
	exps   []int32     // local driver indices exported for cross wiring
}

// leafRecorder holds the leaf-local state the driver-selection distribution
// needs: the per-driver combinational depths and a sibling-candidate scratch.
type leafRecorder struct {
	g      *generator
	rng    *rand.Rand
	li     int
	nPrim  int
	nBcast int
	depths []int32 // local driver depths; registers occupy the front at 0
	cand   []int32
}

// pick selects a signal source for one sink, honoring the broadcast
// fraction, the cross-module fraction, and the sibling bias — the same
// distribution the serial generator used, restated over record indices.
// Cross-module drivers are assumed to sit at the depth cap, so a crossing
// immediately stops local chain extension; that bounds register-to-register
// depth without needing the source leaf's actual depths, which is what lets
// every leaf record independently.
func (lr *leafRecorder) pick() driverRef {
	g := lr.g
	r := lr.rng.Float64()
	// Global control broadcast (enable/select fanout).
	if r < g.spec.BroadcastFrac && lr.nBcast > 0 {
		return driverRef{kind: refBroadcast, a: int32(lr.rng.Intn(lr.nBcast))}
	}
	r = lr.rng.Float64()
	// Cross-module selection from earlier leaves (every leaf exports
	// expCount drivers, so earlier leaves are always valid candidates).
	if r < g.spec.CrossFrac && lr.li > 0 {
		candidates := lr.cand[:0]
		if lr.rng.Float64() < g.spec.SiblingBias {
			for lj := 0; lj < lr.li; lj++ {
				if g.leafParent[lj] == g.leafParent[lr.li] {
					candidates = append(candidates, int32(lj))
				}
			}
		}
		if len(candidates) == 0 {
			for lj := 0; lj < lr.li; lj++ {
				candidates = append(candidates, int32(lj))
			}
		}
		lr.cand = candidates[:0]
		lj := candidates[lr.rng.Intn(len(candidates))]
		return driverRef{kind: refCross, a: lj, b: int32(lr.rng.Intn(g.expCount))}
	}
	if len(lr.depths) == 0 || lr.rng.Float64() < 0.04 {
		return driverRef{kind: refPrimary, a: int32(lr.rng.Intn(lr.nPrim))}
	}
	// Locality: geometric bias toward recent drivers; the depth cap bounds
	// register-to-register combinational depth so the design's critical
	// paths track the spec's target clock period.
	for try := 0; try < 4; try++ {
		idx := len(lr.depths) - 1 - geometric(lr.rng, 0.25, len(lr.depths))
		if int(lr.depths[idx]) < g.spec.LogicDepth {
			return driverRef{kind: refLocal, a: int32(idx)}
		}
	}
	// Fall back to a shallow driver (register outputs live at the front).
	lo := lr.rng.Intn(len(lr.depths)/4 + 1)
	return driverRef{kind: refLocal, a: int32(lo)}
}

func geometric(rng *rand.Rand, p float64, bound int) int {
	k := 0
	for rng.Float64() > p && k < bound-1 {
		k++
	}
	return k
}

// recordLeaf plays out one leaf module's synthesis against leaf-local state
// only: registers seed the depth array, a combinational cloud consumes and
// extends it, register D closes and exports sample the finished driver set.
// The RNG stream is private to the leaf (seeded from spec.Seed and li), so
// any number of leaves can record concurrently.
func (g *generator) recordLeaf(li, nCells, nPrim int, plan *leafPlan) {
	nReg := int(float64(nCells) * g.spec.SeqRatio)
	if nReg < 2 {
		nReg = 2
	}
	nComb := nCells - nReg

	lr := leafRecorder{
		g:      g,
		rng:    rand.New(rand.NewSource(leafSeed(g.spec.Seed, li))),
		li:     li,
		nPrim:  nPrim,
		nBcast: len(g.broadcast),
		depths: make([]int32, nReg, nReg+nComb), // registers start at depth 0
	}
	plan.gates = make([]int32, 0, nComb)
	plan.picks = make([]driverRef, 0, 2*nComb)
	for i := 0; i < nComb; i++ {
		gi := lr.rng.Intn(len(g.gates))
		plan.gates = append(plan.gates, int32(gi))
		m := g.gates[gi]
		maxDepth := int32(0)
		for pi := range m.Pins {
			if m.Pins[pi].Dir != netlist.DirInput {
				continue
			}
			ref := lr.pick()
			plan.picks = append(plan.picks, ref)
			var dep int32
			switch ref.kind {
			case refLocal:
				dep = lr.depths[ref.a]
			case refCross:
				dep = int32(g.spec.LogicDepth - 1)
			}
			if dep > maxDepth {
				maxDepth = dep
			}
		}
		lr.depths = append(lr.depths, maxDepth+1)
	}
	// Close register D inputs from late drivers (deep paths).
	nLocal := len(lr.depths)
	lo := nLocal * 3 / 4
	plan.dClose = make([]int32, 0, nReg)
	for i := 0; i < nReg; i++ {
		plan.dClose = append(plan.dClose, int32(lo+lr.rng.Intn(nLocal-lo)))
	}
	// Export a sample of drivers for cross-module wiring.
	plan.exps = make([]int32, 0, g.expCount)
	for i := 0; i < g.expCount; i++ {
		plan.exps = append(plan.exps, int32(lr.rng.Intn(nLocal)))
	}
}

// leafSeed derives leaf li's private RNG stream from the spec seed using a
// splitmix64-style finalizer, so nearby (seed, li) pairs land on unrelated
// streams.
func leafSeed(seed int64, li int) int64 {
	z := uint64(seed)*0x9e3779b97f4a7c15 + uint64(li+1)*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// materializeLeaf turns one leaf's record into instances, nets, and
// connections. It must run in leaf order on one goroutine: the design's
// instance and net counters, and the lazily created nets shared through
// broadcast/export/primary driver structs, all advance in record order.
func (g *generator) materializeLeaf(li int, path string, plan *leafPlan, primary []driver) {
	d := g.d
	nReg := len(plan.dClose)
	local := make([]driver, 0, nReg+len(plan.gates))
	regs := make([]*netlist.Instance, 0, nReg)
	for i := 0; i < nReg; i++ {
		ff := g.addInst(path, g.dff)
		regs = append(regs, ff)
		d.Connect(g.clockNet, netlist.PinRef{Inst: ff.ID, Pin: "CK"})
		local = append(local, driver{ref: netlist.PinRef{Inst: ff.ID, Pin: "Q"}, leaf: li})
	}
	pk := 0
	for _, gi := range plan.gates {
		m := g.gates[gi]
		inst := g.addInst(path, m)
		for pi := range m.Pins {
			mp := &m.Pins[pi]
			if mp.Dir != netlist.DirInput {
				continue
			}
			ref := plan.picks[pk]
			pk++
			var drv *driver
			switch ref.kind {
			case refBroadcast:
				drv = &g.broadcast[ref.a]
			case refCross:
				drv = &g.exports[ref.a][ref.b]
			case refPrimary:
				drv = &primary[ref.a]
			default:
				drv = &local[ref.a]
			}
			n := g.newNetFor(drv)
			d.Connect(n, netlist.PinRef{Inst: inst.ID, Pin: mp.Name})
		}
		local = append(local, driver{ref: netlist.PinRef{Inst: inst.ID, Pin: "ZN"}, leaf: li})
	}
	for i, ff := range regs {
		drv := &local[plan.dClose[i]]
		n := g.newNetFor(drv)
		d.Connect(n, netlist.PinRef{Inst: ff.ID, Pin: "D"})
	}
	for _, idx := range plan.exps {
		g.exports[li] = append(g.exports[li], local[idx])
	}
}

// addMacro instantiates a RAM connected to leaf li's exports.
func (g *generator) addMacro(mi, li int, path string) {
	d := g.d
	ram, err := d.AddInstance(path+"/ram"+itoa(mi), g.ram)
	must(err)
	d.Connect(g.clockNet, netlist.PinRef{Inst: ram.ID, Pin: "CK"})
	exp := g.exports[li]
	for i := 0; i < 8 && len(exp) > 0; i++ {
		drv := &exp[g.rng.Intn(len(exp))]
		n := g.newNetFor(drv)
		d.Connect(n, netlist.PinRef{Inst: ram.ID, Pin: "A" + itoa(i)})
	}
	// RAM outputs become new exported drivers.
	for i := 0; i < 8; i++ {
		g.exports[li] = append(g.exports[li],
			driver{ref: netlist.PinRef{Inst: ram.ID, Pin: "Q" + itoa(i)}, leaf: li})
	}
}

// floorplan sizes the die/core from total area and utilization, places ports
// on the core boundary and preplaces macros along the left edge.
func (g *generator) floorplan() {
	d := g.d
	area := d.TotalCellArea() / g.spec.Utilization
	side := math.Sqrt(area)
	// Snap to row grid.
	rows := math.Ceil(side/RowHeight) + 1
	side = rows * RowHeight
	const margin = 10.0
	d.Core = netlist.Rect{X0: margin, Y0: margin, X1: margin + side, Y1: margin + side}
	d.Die = netlist.Rect{X0: 0, Y0: 0, X1: side + 2*margin, Y1: side + 2*margin}
	d.RowHeight = RowHeight
	d.SiteWidth = SiteWidth

	// Ports around the core boundary, evenly spaced.
	n := len(d.Ports)
	perim := 4 * side
	for i, p := range d.Ports {
		t := perim * float64(i) / float64(n)
		x, y := pointOnPerimeter(d.Core, t)
		p.X, p.Y, p.Placed = x, y, true
	}
	// Macros along the left and right edges, fixed.
	mi := 0
	for _, inst := range d.Insts {
		if inst.Master.Class != netlist.ClassMacro {
			continue
		}
		col := mi % 2
		row := mi / 2
		if col == 0 {
			inst.X = d.Core.X0 + 1
		} else {
			inst.X = d.Core.X1 - inst.Master.Width - 1
		}
		inst.Y = d.Core.Y0 + 1 + float64(row)*(inst.Master.Height+2)
		if inst.Y+inst.Master.Height > d.Core.Y1 {
			inst.Y = d.Core.Y1 - inst.Master.Height - 1
		}
		inst.Placed = true
		inst.Fixed = true
		mi++
	}
}

func pointOnPerimeter(r netlist.Rect, t float64) (float64, float64) {
	w, h := r.W(), r.H()
	switch {
	case t < w:
		return r.X0 + t, r.Y0
	case t < w+h:
		return r.X1, r.Y0 + (t - w)
	case t < 2*w+h:
		return r.X1 - (t - w - h), r.Y1
	default:
		return r.X0, r.Y1 - (t - 2*w - h)
	}
}

// ScaleSpec returns a synthetic benchmark spec sized for scale testing: the
// hierarchy deepens with the cell count so leaves stay a few hundred cells,
// and the macro/IO budget grows in proportion. The same (cells, seed) pair
// always yields the identical design. This is the spec the ppabench -scale
// sweep and the scale smoke test run on.
func ScaleSpec(cells int, seed int64) Spec {
	branch, depth := 6, 2
	switch {
	case cells > 300000:
		branch, depth = 8, 4
	case cells > 30000:
		branch, depth = 6, 3
	}
	return Spec{
		Name:        "scale" + itoa(cells),
		TargetInsts: cells,
		Depth:       depth,
		Branch:      branch,
		SeqRatio:    0.2,
		CrossFrac:   0.08,
		SiblingBias: 0.8,
		IOs:         192,
		Macros:      cells / 12500,
		ClockPeriod: 1.2e-9,
		Utilization: 0.5,
		LogicDepth:  20,
		Seed:        seed,
	}
}
