package designs

import "testing"

// BenchmarkGenerateAriane measures synthetic benchmark generation.
func BenchmarkGenerateAriane(b *testing.B) {
	spec, _ := Named("ariane")
	for i := 0; i < b.N; i++ {
		Generate(spec)
	}
}
