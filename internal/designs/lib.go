// Package designs provides the reproduction's benchmark substrate: a
// NanGate45-flavored standard-cell library built programmatically, and a
// deterministic synthetic design generator that emits the six benchmark
// designs of the paper (aes, jpeg, ariane, BlackParrot, MegaBoom,
// MemPool Group) at laptop scale, preserving the structural properties the
// paper's methods exploit: logical hierarchy locality, critical-path depth,
// high-activity nets and design-size ratios.
package designs

import (
	"ppaclust/internal/netlist"
)

// Library geometry constants (microns), NanGate45-like.
const (
	RowHeight = 1.4
	SiteWidth = 0.19
)

// makeTable builds a 3x4 NLDM table: delay = base + slewSens*slew + res*load.
func makeTable(base, slewSens, res float64) netlist.Table {
	slews := []float64{5e-12, 20e-12, 80e-12}
	loads := []float64{1e-15, 4e-15, 16e-15, 64e-15}
	vals := make([][]float64, len(slews))
	for i, s := range slews {
		vals[i] = make([]float64, len(loads))
		for j, l := range loads {
			vals[i][j] = base + slewSens*s + res*l
		}
	}
	return netlist.Table{Slews: slews, Loads: loads, Values: vals}
}

// makeSlewTable builds the output-slew table for a drive resistance.
func makeSlewTable(base, res float64) netlist.Table {
	slews := []float64{5e-12, 20e-12, 80e-12}
	loads := []float64{1e-15, 4e-15, 16e-15, 64e-15}
	vals := make([][]float64, len(slews))
	for i, s := range slews {
		vals[i] = make([]float64, len(loads))
		for j, l := range loads {
			vals[i][j] = base + 0.1*s + 0.8*res*l
		}
	}
	return netlist.Table{Slews: slews, Loads: loads, Values: vals}
}

type gateSpec struct {
	name       string
	widthsites int
	inputs     []string
	base       float64 // intrinsic delay (s)
	res        float64 // drive resistance (s/F)
	cap        float64 // input cap (F)
	energy     float64 // internal energy per transition (J)
	leak       float64 // leakage (W)
}

// Lib builds a fresh instance of the standard-cell library. Masters are
// immutable once built, so callers may share one library across designs.
func Lib() *netlist.Library {
	lib := netlist.NewLibrary("ppaclust45")
	combs := []gateSpec{
		{"INV_X1", 2, []string{"A"}, 12e-12, 3.0e3, 1.0e-15, 0.4e-15, 10e-9},
		{"INV_X2", 3, []string{"A"}, 10e-12, 1.6e3, 1.8e-15, 0.7e-15, 18e-9},
		{"BUF_X1", 3, []string{"A"}, 22e-12, 2.6e3, 1.0e-15, 0.6e-15, 14e-9},
		{"BUF_X4", 6, []string{"A"}, 18e-12, 0.8e3, 3.2e-15, 1.6e-15, 42e-9},
		{"NAND2_X1", 3, []string{"A1", "A2"}, 16e-12, 3.2e3, 1.1e-15, 0.7e-15, 16e-9},
		{"NOR2_X1", 3, []string{"A1", "A2"}, 18e-12, 3.6e3, 1.2e-15, 0.7e-15, 16e-9},
		{"AND2_X1", 4, []string{"A1", "A2"}, 24e-12, 3.0e3, 1.1e-15, 0.9e-15, 20e-9},
		{"OR2_X1", 4, []string{"A1", "A2"}, 26e-12, 3.0e3, 1.1e-15, 0.9e-15, 20e-9},
		{"XOR2_X1", 6, []string{"A", "B"}, 32e-12, 3.4e3, 1.8e-15, 1.4e-15, 28e-9},
		{"AOI21_X1", 4, []string{"A", "B1", "B2"}, 22e-12, 3.4e3, 1.2e-15, 0.9e-15, 18e-9},
		{"MUX2_X1", 7, []string{"A", "B", "S"}, 30e-12, 3.0e3, 1.4e-15, 1.3e-15, 26e-9},
	}
	for _, g := range combs {
		m := &netlist.Master{
			Name:    g.name,
			Class:   netlist.ClassCore,
			Width:   float64(g.widthsites) * SiteWidth,
			Height:  RowHeight,
			Leakage: g.leak,
		}
		for _, in := range g.inputs {
			m.AddPin(netlist.MasterPin{Name: in, Dir: netlist.DirInput, Cap: g.cap})
		}
		out := m.AddPin(netlist.MasterPin{Name: "ZN", Dir: netlist.DirOutput, MaxCap: 80e-15})
		for _, in := range g.inputs {
			out.Arcs = append(out.Arcs, netlist.TimingArc{
				From:   in,
				Kind:   netlist.ArcComb,
				Delay:  makeTable(g.base, 0.25, g.res),
				Slew:   makeSlewTable(6e-12, g.res),
				Energy: g.energy,
			})
		}
		mustAdd(lib, m)
	}

	// DFF_X1: D, CK -> Q with clk-to-q, setup and hold arcs.
	dff := &netlist.Master{
		Name:    "DFF_X1",
		Class:   netlist.ClassCore,
		Width:   17 * SiteWidth,
		Height:  RowHeight,
		Leakage: 60e-9,
	}
	dff.AddPin(netlist.MasterPin{
		Name: "D", Dir: netlist.DirInput, Cap: 1.2e-15,
		Arcs: []netlist.TimingArc{
			{From: "CK", Kind: netlist.ArcSetup, Delay: netlist.Const(35e-12)},
			{From: "CK", Kind: netlist.ArcHold, Delay: netlist.Const(5e-12)},
		},
	})
	dff.AddPin(netlist.MasterPin{Name: "CK", Dir: netlist.DirInput, Cap: 0.9e-15, Clock: true})
	q := dff.AddPin(netlist.MasterPin{Name: "Q", Dir: netlist.DirOutput, MaxCap: 80e-15})
	q.Arcs = []netlist.TimingArc{{
		From:   "CK",
		Kind:   netlist.ArcClkToQ,
		Delay:  makeTable(70e-12, 0.15, 2.4e3),
		Slew:   makeSlewTable(8e-12, 2.4e3),
		Energy: 2.8e-15,
	}}
	mustAdd(lib, dff)

	// A clock buffer used by CTS.
	cb := &netlist.Master{
		Name:    "CLKBUF_X2",
		Class:   netlist.ClassCore,
		Width:   5 * SiteWidth,
		Height:  RowHeight,
		Leakage: 30e-9,
	}
	cb.AddPin(netlist.MasterPin{Name: "A", Dir: netlist.DirInput, Cap: 1.6e-15})
	cbo := cb.AddPin(netlist.MasterPin{Name: "Z", Dir: netlist.DirOutput, MaxCap: 120e-15})
	cbo.Arcs = []netlist.TimingArc{{
		From:   "A",
		Kind:   netlist.ArcComb,
		Delay:  makeTable(20e-12, 0.2, 1.0e3),
		Slew:   makeSlewTable(6e-12, 1.0e3),
		Energy: 1.2e-15,
	}}
	mustAdd(lib, cb)

	// A small SRAM macro (address in, data out), preplaced in big designs.
	ram := &netlist.Master{
		Name:    "RAM32X32",
		Class:   netlist.ClassMacro,
		Width:   24,
		Height:  22.4, // 16 rows
		Leakage: 4e-6,
	}
	for i := 0; i < 8; i++ {
		ram.AddPin(netlist.MasterPin{
			Name: "A" + itoa(i), Dir: netlist.DirInput, Cap: 2.2e-15,
			OffsetX: 0.2, OffsetY: 1 + float64(i),
			Arcs: []netlist.TimingArc{{From: "CK", Kind: netlist.ArcSetup, Delay: netlist.Const(60e-12)}},
		})
	}
	ram.AddPin(netlist.MasterPin{Name: "CK", Dir: netlist.DirInput, Cap: 2.0e-15, Clock: true, OffsetX: 0.2, OffsetY: 0.5})
	for i := 0; i < 8; i++ {
		p := ram.AddPin(netlist.MasterPin{
			Name: "Q" + itoa(i), Dir: netlist.DirOutput, MaxCap: 100e-15,
			OffsetX: 23.8, OffsetY: 1 + float64(i),
		})
		p.Arcs = []netlist.TimingArc{{
			From:   "CK",
			Kind:   netlist.ArcClkToQ,
			Delay:  makeTable(240e-12, 0.1, 1.5e3),
			Slew:   makeSlewTable(12e-12, 1.5e3),
			Energy: 40e-15,
		}}
	}
	mustAdd(lib, ram)
	return lib
}

// mustAdd asserts a library-construction invariant: the synthetic cell
// library is a fixed list of distinct master names, so AddMaster cannot
// fail. A panic here is a bug in this file's master table.
func mustAdd(lib *netlist.Library, m *netlist.Master) {
	if err := lib.AddMaster(m); err != nil {
		panic(err) //ppalint:ignore nopanic invariant assertion: the static master table has distinct names, failure is a table bug
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
