package designs

import (
	"hash/fnv"
	"math"
	"testing"

	"ppaclust/internal/netlist"
)

// designFingerprint folds every structural and geometric fact of a design
// into one hash: ports (name, direction, position), instances (name, master,
// position, fixedness), and nets (name, clock flag, full pin list in order).
// Two designs with equal fingerprints are the same netlist bit for bit.
func designFingerprint(d *netlist.Design) uint64 {
	h := fnv.New64a()
	ws := func(s string) { _, _ = h.Write([]byte(s)); _, _ = h.Write([]byte{0}) }
	w64 := func(v uint64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		_, _ = h.Write(b[:])
	}
	wf := func(f float64) { w64(math.Float64bits(f)) }
	w64(uint64(len(d.Ports)))
	for _, p := range d.Ports {
		ws(p.Name)
		w64(uint64(p.Dir))
		wf(p.X)
		wf(p.Y)
	}
	w64(uint64(len(d.Insts)))
	for _, inst := range d.Insts {
		ws(inst.Name)
		ws(inst.Master.Name)
		wf(inst.X)
		wf(inst.Y)
		if inst.Fixed {
			w64(1)
		} else {
			w64(0)
		}
	}
	w64(uint64(len(d.Nets)))
	for _, n := range d.Nets {
		ws(n.Name)
		if n.Clock {
			w64(1)
		} else {
			w64(0)
		}
		w64(uint64(len(n.Pins)))
		for _, p := range n.Pins {
			w64(uint64(uint32(p.Inst)))
			ws(p.Pin)
		}
	}
	return h.Sum64()
}

// TestGenerateWorkersEquivalent checks the generator's bit-identity
// contract: the leaf record phase runs on private per-leaf RNG streams and
// materialization is a fixed serial order, so every worker count must
// produce the identical design — same names, same connectivity, same
// floorplan coordinates.
func TestGenerateWorkersEquivalent(t *testing.T) {
	spec := TinySpec(23)
	spec.Macros = 2
	ref := GenerateWorkers(spec, 1)
	refFP := designFingerprint(ref.Design)
	for _, w := range []int{2, 8} {
		got := GenerateWorkers(spec, w)
		if fp := designFingerprint(got.Design); fp != refFP {
			t.Fatalf("W=%d design fingerprint %x != %x", w, fp, refFP)
		}
		if got.Cons.ClockPeriod != ref.Cons.ClockPeriod || len(got.Cons.ClockPorts) != len(ref.Cons.ClockPorts) {
			t.Fatalf("W=%d constraints differ", w)
		}
	}
	// The cached path must agree with the uncached one.
	cached := Generate(spec)
	if fp := designFingerprint(cached.Design); fp != refFP {
		t.Fatalf("cached design fingerprint %x != %x", fp, refFP)
	}
}
