package scan

import (
	"errors"
	"strings"
	"testing"
)

func TestScannerTracksLines(t *testing.T) {
	src := "a b c\n\n  \n d e\n"
	sc := NewScanner(strings.NewReader(src), "x.def", 0)
	if !sc.Scan() {
		t.Fatal("first Scan failed")
	}
	if ln := sc.Line(); ln.Num != 1 || ln.Len() != 3 {
		t.Fatalf("line 1: %+v", ln)
	}
	if !sc.Scan() {
		t.Fatal("second Scan failed")
	}
	if ln := sc.Line(); ln.Num != 4 || ln.Fields[0] != "d" {
		t.Fatalf("blank lines not skipped with numbering kept: %+v", ln)
	}
	if sc.Scan() {
		t.Fatal("Scan past EOF")
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestLineAccessors(t *testing.T) {
	ln := &Line{File: "f.lef", Num: 7, Fields: []string{"SIZE", "1.5", "BY", "x", "3"}}
	if err := ln.Require(5); err != nil {
		t.Fatal(err)
	}
	if err := ln.Require(6); err == nil {
		t.Fatal("Require(6) passed on 5 fields")
	} else {
		var pe *ParseError
		if !errors.As(err, &pe) || pe.Line != 7 || pe.File != "f.lef" {
			t.Fatalf("Require error lost provenance: %v", err)
		}
	}
	if v, err := ln.Float(1); err != nil || v != 1.5 {
		t.Fatalf("Float(1)=%v,%v", v, err)
	}
	if _, err := ln.Float(3); err == nil {
		t.Fatal("Float of non-number passed")
	}
	if _, err := ln.Float(9); err == nil {
		t.Fatal("Float out of range passed")
	}
	if v, err := ln.Int(4); err != nil || v != 3 {
		t.Fatalf("Int(4)=%v,%v", v, err)
	}
	if _, err := ln.Int(1); err == nil {
		t.Fatal("Int of float passed")
	}
}

func TestFloatRejectsNonFinite(t *testing.T) {
	for _, tok := range []string{"NaN", "Inf", "-Inf", "+Inf", "1e300", "-2e31"} {
		ln := &Line{File: "f", Num: 1, Fields: []string{tok}}
		if _, err := ln.Float(0); err == nil {
			t.Fatalf("Float(%q) passed", tok)
		}
		if _, ok := ParseFloat(tok); ok {
			t.Fatalf("ParseFloat(%q) passed", tok)
		}
	}
	if v, ok := ParseFloat("-1.25e3"); !ok || v != -1250 {
		t.Fatalf("ParseFloat(-1.25e3)=%v,%v", v, ok)
	}
}

func TestParseErrorFormat(t *testing.T) {
	e := Errorf("a.def", 12, "ROW", "want %d fields", 13)
	want := `a.def:12: "ROW": want 13 fields`
	if e.Error() != want {
		t.Fatalf("Error()=%q want %q", e.Error(), want)
	}
	e2 := Errorf("b.sdc", 0, "", "no create_clock")
	if e2.Error() != "b.sdc: no create_clock" {
		t.Fatalf("Error()=%q", e2.Error())
	}
}

func TestWarnings(t *testing.T) {
	var w Warnings
	w.Add(Errorf("f", 1, "", "a"))
	w.Add(Errorf("f", 2, "", "b"))
	if w.Len() != 2 || len(w.List()) != 2 {
		t.Fatalf("warnings lost: %d", w.Len())
	}
	var nilW *Warnings
	nilW.Add(Errorf("f", 3, "", "c")) // must not panic
	if nilW.Len() != 0 || nilW.List() != nil {
		t.Fatal("nil Warnings misbehaved")
	}
}
