// Package scan is the shared bounds-checked token-reader layer under the
// format front-end (def, lef, liberty, sdc, verilog). Every reader builds on
// it so that a malformed input line yields a structured *ParseError carrying
// file name, line number and the offending token — never a panic, and never
// a silently defaulted value. It also carries the strict/lenient mode
// convention: strict parsing turns every recoverable field error into a
// *ParseError, lenient parsing skips the field and records the same error as
// a warning.
package scan

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// MaxAbs is the universal magnitude cap on parsed floats. Values beyond it
// (and NaN/Inf) are rejected: no physical quantity the flow consumes —
// nanoseconds, picofarads, microns, database units — comes anywhere near it,
// and the cap keeps downstream float->int conversions and unit rescaling
// away from overflow and implementation-defined behavior.
const MaxAbs = 1e30

// ParseError is the structured error every format reader returns. File is
// the file name (or the format tag, e.g. "def", when no name was given),
// Line is 1-based (0 when the error is not tied to a line), Token is the
// offending token when one exists.
type ParseError struct {
	File  string
	Line  int
	Token string
	Msg   string
}

func (e *ParseError) Error() string {
	var b strings.Builder
	b.WriteString(e.File)
	if e.Line > 0 {
		fmt.Fprintf(&b, ":%d", e.Line)
	}
	b.WriteString(": ")
	if e.Token != "" {
		fmt.Fprintf(&b, "%q: ", e.Token)
	}
	b.WriteString(e.Msg)
	return b.String()
}

// Errorf builds a *ParseError with a formatted message.
func Errorf(file string, line int, token, format string, args ...any) *ParseError {
	return &ParseError{File: file, Line: line, Token: token, Msg: fmt.Sprintf(format, args...)}
}

// Warnings collects the lenient-mode ParseErrors a reader tolerated. The
// zero value is ready to use; a nil *Warnings silently drops (strict-mode
// readers pass nil and return the error instead).
type Warnings struct {
	list []*ParseError
}

// Add records one warning.
func (w *Warnings) Add(e *ParseError) {
	if w != nil && e != nil {
		w.list = append(w.list, e)
	}
}

// List returns the recorded warnings in input order.
func (w *Warnings) List() []*ParseError {
	if w == nil {
		return nil
	}
	return w.list
}

// Len reports the number of recorded warnings.
func (w *Warnings) Len() int {
	if w == nil {
		return 0
	}
	return len(w.list)
}

// Line is one line of whitespace-separated fields with provenance. All
// accessors are bounds-checked and return *ParseError on violation.
type Line struct {
	File   string
	Num    int
	Fields []string
}

// Len returns the field count.
func (l *Line) Len() int { return len(l.Fields) }

// Tok returns field i, or "" when i is out of range. It is the total
// counterpart of Str for positional reads whose bounds were already
// established (via Require or a Len-bounded loop): no impossible-error
// plumbing, and no way to panic on a short line.
func (l *Line) Tok(i int) string {
	if i < 0 || i >= len(l.Fields) {
		return ""
	}
	return l.Fields[i]
}

// Errf builds a *ParseError anchored at this line.
func (l *Line) Errf(token, format string, args ...any) *ParseError {
	return Errorf(l.File, l.Num, token, format, args...)
}

// Require errors unless the line has at least n fields.
func (l *Line) Require(n int) error {
	if len(l.Fields) < n {
		tok := ""
		if len(l.Fields) > 0 {
			tok = l.Fields[0]
		}
		return l.Errf(tok, "want at least %d fields, got %d", n, len(l.Fields))
	}
	return nil
}

// Str returns field i.
func (l *Line) Str(i int) (string, error) {
	if i < 0 || i >= len(l.Fields) {
		return "", l.Errf("", "missing field %d (line has %d)", i, len(l.Fields))
	}
	return l.Fields[i], nil
}

// Float parses field i as a finite float64 with |v| <= MaxAbs.
func (l *Line) Float(i int) (float64, error) {
	s, err := l.Str(i)
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > MaxAbs {
		return 0, l.Errf(s, "not a finite number")
	}
	return v, nil
}

// Int parses field i as an int.
func (l *Line) Int(i int) (int, error) {
	s, err := l.Str(i)
	if err != nil {
		return 0, err
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, l.Errf(s, "not an integer")
	}
	return v, nil
}

// ParseFloat applies the Float policy (finite, |v| <= MaxAbs) to a bare
// token, for readers that are not line-oriented.
func ParseFloat(s string) (float64, bool) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > MaxAbs {
		return 0, false
	}
	return v, true
}

// Scanner wraps bufio.Scanner with file/line provenance, producing Lines.
type Scanner struct {
	sc   *bufio.Scanner
	file string
	num  int
	line Line
}

// NewScanner builds a Scanner over r. file names the source in errors (pass
// the format tag, e.g. "def", when no path is known). bufSize bounds the
// longest accepted line; 0 selects a 1 MiB default.
func NewScanner(r io.Reader, file string, bufSize int) *Scanner {
	if bufSize <= 0 {
		bufSize = 1024 * 1024
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, bufSize), bufSize)
	return &Scanner{sc: sc, file: file}
}

// Scan advances to the next non-empty line, reporting false at EOF or error.
func (s *Scanner) Scan() bool {
	for s.sc.Scan() {
		s.num++
		f := strings.Fields(s.sc.Text())
		if len(f) == 0 {
			continue
		}
		s.line = Line{File: s.file, Num: s.num, Fields: f}
		return true
	}
	return false
}

// Line returns the current line. Valid after a true Scan.
func (s *Scanner) Line() *Line { return &s.line }

// Err returns the underlying reader error, wrapped with provenance.
func (s *Scanner) Err() error {
	if err := s.sc.Err(); err != nil {
		return Errorf(s.file, s.num, "", "read: %v", err)
	}
	return nil
}

// File returns the name the scanner reports in errors.
func (s *Scanner) File() string { return s.file }

// Errf builds a *ParseError at the scanner's current line.
func (s *Scanner) Errf(token, format string, args ...any) *ParseError {
	return Errorf(s.file, s.num, token, format, args...)
}
