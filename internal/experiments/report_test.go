package experiments

import (
	"strings"
	"testing"
)

func TestWriteReportFast(t *testing.T) {
	s := NewSuite(true, 11, 4)
	var sb strings.Builder
	claims, err := s.WriteReport(&sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4", "Table 5", "Table 6",
		"Section 4.4", "Figure 5", "Reproduction shape checks",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing section %q", want)
		}
	}
	if len(claims) < 8 {
		t.Fatalf("claims=%d", len(claims))
	}
	// Paper reference values must appear alongside measured ones.
	if !strings.Contains(out, "0.131") || !strings.Contains(out, "15547") {
		t.Fatal("paper reference values missing")
	}
}
