// The -timing-driven A/B comparison: the same flow run twice, with and
// without the placer's timing/routability feedback checkpoints, on the
// Table-3/4 protocols (OpenROAD mode on the four routable designs, Innovus
// mode on all six). The clustered PPA-aware flow with uniform shapes is used
// for both arms — the model-free configuration — so the only difference
// between A and B is the place-level feedback under test.
package experiments

import (
	"ppaclust/internal/designs"
	"ppaclust/internal/flow"
	"ppaclust/internal/par"
)

// TDRow is one design/tool arm of the timing-driven A/B comparison. Every
// field is a pure quality metric (no wall-clock, no worker counts), so
// serialized rows must be byte-identical at any worker count.
type TDRow struct {
	Design string `json:"design"`
	Tool   string `json:"tool"`
	Insts  int    `json:"insts"`

	BaseHPWL  float64 `json:"base_hpwl"`
	TDHPWL    float64 `json:"td_hpwl"`
	HPWLRatio float64 `json:"hpwl_ratio"` // td/base, 1.0 = unchanged

	BaseWNSps float64 `json:"base_wns_ps"`
	TDWNSps   float64 `json:"td_wns_ps"`
	BaseTNSns float64 `json:"base_tns_ns"`
	TDTNSns   float64 `json:"td_tns_ns"`
	TNSGainNs float64 `json:"tns_gain_ns"` // td - base; TNS <= 0, so > 0 = improved

	BaseMaxCongestion float64 `json:"base_max_congestion"`
	TDMaxCongestion   float64 `json:"td_max_congestion"`
	BaseRouteOverflow int     `json:"base_route_overflow"`
	TDRouteOverflow   int     `json:"td_route_overflow"`
}

// MakeTDRow derives one A/B row from a baseline run and a timing-driven run
// of the same design.
func MakeTDRow(design, tool string, insts int, base, td *flow.Result) TDRow {
	return TDRow{
		Design:            design,
		Tool:              tool,
		Insts:             insts,
		BaseHPWL:          base.HPWL,
		TDHPWL:            td.HPWL,
		HPWLRatio:         td.HPWL / base.HPWL,
		BaseWNSps:         base.WNS * 1e12,
		TDWNSps:           td.WNS * 1e12,
		BaseTNSns:         base.TNS * 1e9,
		TDTNSns:           td.TNS * 1e9,
		TNSGainNs:         (td.TNS - base.TNS) * 1e9,
		BaseMaxCongestion: base.MaxCongestion,
		TDMaxCongestion:   td.MaxCongestion,
		BaseRouteOverflow: base.Overflow,
		TDRouteOverflow:   td.Overflow,
	}
}

// TimingDrivenAB runs the Table-3/4 protocol A/B: per (design, tool) job,
// the clustered flow without feedback vs the identical flow with
// TimingDriven and RoutabilityDriven placement enabled.
func (s *Suite) TimingDrivenAB() ([]TDRow, error) {
	type job struct {
		name string
		tool flow.Tool
	}
	var jobs []job
	t3 := []string{"aes", "jpeg", "ariane", "bp"}
	if s.Fast {
		t3 = []string{"aes", "jpeg"}
	}
	for _, n := range t3 {
		jobs = append(jobs, job{n, flow.ToolOpenROAD})
	}
	for _, n := range s.allDesigns() {
		jobs = append(jobs, job{n, flow.ToolInnovus})
	}
	fw := s.runWorkers(len(jobs))
	return mapE(par.Workers(s.Workers), len(jobs), func(i int) (TDRow, error) {
		j := jobs[i]
		b, err := s.Bench(j.name)
		if err != nil {
			return TDRow{}, err
		}
		opt := flow.Options{
			Seed: s.Seed, Tool: j.tool,
			Method: flow.MethodPPAAware, Shapes: flow.ShapeUniform,
			Workers: fw,
		}
		base, err := flow.Run(b, opt)
		if err != nil {
			return TDRow{}, err
		}
		opt.TimingDriven = true
		opt.RoutabilityDriven = true
		td, err := flow.Run(b, opt)
		if err != nil {
			return TDRow{}, err
		}
		return MakeTDRow(designs.PaperNames[j.name], j.tool.String(), len(b.Design.Insts), base, td), nil
	})
}
