package experiments

import (
	"time"

	"ppaclust/internal/designs"
	"ppaclust/internal/flow"
	"ppaclust/internal/par"
)

// RuntimeRow is the runtime breakdown of the clustered flow on one design —
// the supplementary data the paper defers to its repository ("We separately
// give the runtime breakdown of our approach in [22]").
type RuntimeRow struct {
	Design       string
	Cluster      time.Duration
	Shape        time.Duration
	SeedPlace    time.Duration
	IncrPlace    time.Duration
	Total        time.Duration // cluster + seed + incremental
	DefaultPlace time.Duration // flat-flow placement for reference
}

// RuntimeBreakdown measures per-stage runtimes of the full method
// (PPA-aware clustering + ML-accelerated V-P&R) on every benchmark. The
// designs run one at a time — fanning them out would let them contend for
// cores and distort the per-stage wall-clock — but each flow uses the
// suite's full worker budget, so the breakdown reflects the configured
// parallelism.
func (s *Suite) RuntimeBreakdown() ([]RuntimeRow, error) {
	model, err := s.Model()
	if err != nil {
		return nil, err
	}
	var rows []RuntimeRow
	for _, name := range s.allDesigns() {
		b, err := s.Bench(name)
		if err != nil {
			return nil, err
		}
		w := par.Workers(s.Workers)
		def, err := flow.RunDefault(b, flow.Options{Seed: s.Seed, SkipRoute: true, Workers: w})
		if err != nil {
			return nil, err
		}
		r, err := flow.Run(b, flow.Options{
			Seed: s.Seed, Method: flow.MethodPPAAware,
			Shapes: flow.ShapeVPRML, Model: model, SkipRoute: true, Workers: w,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, RuntimeRow{
			Design:       designs.PaperNames[name],
			Cluster:      r.ClusterTime,
			Shape:        r.ShapeTime,
			SeedPlace:    r.SeedPlaceTime,
			IncrPlace:    r.IncrPlaceTime,
			Total:        r.PlaceTime,
			DefaultPlace: def.PlaceTime,
		})
	}
	return rows, nil
}
