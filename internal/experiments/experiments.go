// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4) on the synthetic benchmark suite: Table 1
// (benchmark statistics), Table 2 (post-place HPWL/CPU vs blob placement
// [9] and the default flow), Table 3 (post-route PPA, OpenROAD), Table 4
// (post-route PPA, Innovus), Table 5 (clustering ablation), Table 6 (shape
// ablation), the Section 4.4 GNN MAE/R2 metrics, and Figure 5
// (hyperparameter sweep).
//
// Absolute values cannot match the paper (the substrate is a simulator and
// the designs are synthetic); the suite asserts and reports the paper's
// relative *shape*: who wins, in which metric, by roughly what factor.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"ppaclust/internal/cluster"
	"ppaclust/internal/designs"
	"ppaclust/internal/features"
	"ppaclust/internal/flow"
	"ppaclust/internal/gnn"
	"ppaclust/internal/vpr"
)

// Suite runs experiments with shared caches (generated designs, trained
// model).
type Suite struct {
	// Fast restricts designs to small ones and shrinks the ML dataset; used
	// by tests. The full ppabench run leaves it false.
	Fast bool
	// Seed drives all randomized stages.
	Seed int64

	benchCache map[string]*designs.Benchmark
	model      *gnn.Model
	modelStats GNNReport
}

// NewSuite returns an experiment suite.
func NewSuite(fast bool, seed int64) *Suite {
	return &Suite{Fast: fast, Seed: seed, benchCache: map[string]*designs.Benchmark{}}
}

// Bench returns the cached benchmark for a named spec.
func (s *Suite) Bench(name string) *designs.Benchmark {
	if b, ok := s.benchCache[name]; ok {
		return b
	}
	spec, ok := designs.Named(name)
	if !ok {
		panic("experiments: unknown design " + name)
	}
	if s.Fast {
		spec.TargetInsts /= 4
		if spec.TargetInsts < 400 {
			spec.TargetInsts = 400
		}
	}
	b := designs.Generate(spec)
	s.benchCache[name] = b
	return b
}

func (s *Suite) smallDesigns() []string { return []string{"aes", "jpeg", "ariane"} }

func (s *Suite) allDesigns() []string {
	if s.Fast {
		return []string{"aes", "jpeg"}
	}
	return []string{"aes", "jpeg", "ariane", "bp", "mb", "mpg"}
}

// ---- Table 1 ----

// Table1Row mirrors the paper's benchmark statistics table.
type Table1Row struct {
	Design string
	Insts  int
	Nets   int
	TCPns  float64
}

// Table1 generates the benchmark statistics.
func (s *Suite) Table1() []Table1Row {
	var rows []Table1Row
	for _, name := range s.allDesigns() {
		b := s.Bench(name)
		rows = append(rows, Table1Row{
			Design: designs.PaperNames[name],
			Insts:  len(b.Design.Insts),
			Nets:   len(b.Design.Nets),
			TCPns:  b.Spec.ClockPeriod * 1e9,
		})
	}
	return rows
}

// ---- Table 2 ----

// Table2Row is one design's post-place comparison, normalized to the
// default flow (HPWL and CPU of blob placement [9] and of our flow).
type Table2Row struct {
	Design   string
	BlobHPWL float64
	BlobCPU  float64
	OursHPWL float64
	OursCPU  float64
}

// Table2 compares post-place HPWL and placement CPU. Blob placement [9] is
// Louvain clustering + seeded placement with IO-weighted nets; ours is
// PPA-aware clustering + ML-accelerated V-P&R + seeded placement.
func (s *Suite) Table2() []Table2Row {
	model := s.Model()
	var rows []Table2Row
	for _, name := range s.allDesigns() {
		b := s.Bench(name)
		def := must(flow.RunDefault(b, flow.Options{Seed: s.Seed, SkipRoute: true}))
		blob := must(flow.Run(b, flow.Options{
			Seed: s.Seed, Method: flow.MethodLouvain, Shapes: flow.ShapeUniform,
			SkipRoute: true,
		}))
		ours := must(flow.Run(b, flow.Options{
			Seed: s.Seed, Method: flow.MethodPPAAware, Shapes: flow.ShapeVPRML,
			Model: model, SkipRoute: true,
		}))
		// CPU follows the paper's Table 2 definition: "cumulative runtimes
		// of clustering and seeded placement", normalized by the default
		// flow's placement runtime. Shape selection is reported separately
		// (its cost is the one-time-amortized ML path of Section 3.2).
		rows = append(rows, Table2Row{
			Design:   designs.PaperNames[name],
			BlobHPWL: blob.HPWL / def.HPWL,
			BlobCPU:  cpuRatio(blob.PlaceTime, def.PlaceTime),
			OursHPWL: ours.HPWL / def.HPWL,
			OursCPU:  cpuRatio(ours.PlaceTime, def.PlaceTime),
		})
	}
	return rows
}

func cpuRatio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// ---- Tables 3 and 4 ----

// PPARow is one post-route PPA comparison row.
type PPARow struct {
	Design string
	Flow   string
	RWL    float64 // normalized to the design's default flow
	WNSps  float64
	TNSns  float64
	PowerW float64
}

// Table3 is the OpenROAD post-route comparison (default vs ours) on the
// four routable designs.
func (s *Suite) Table3() []PPARow {
	names := []string{"aes", "jpeg", "ariane", "bp"}
	if s.Fast {
		names = []string{"aes", "jpeg"}
	}
	return s.postRouteCompare(names, flow.ToolOpenROAD)
}

// Table4 is the Innovus-mode post-route comparison on all six designs.
func (s *Suite) Table4() []PPARow {
	return s.postRouteCompare(s.allDesigns(), flow.ToolInnovus)
}

func (s *Suite) postRouteCompare(names []string, tool flow.Tool) []PPARow {
	model := s.Model()
	var rows []PPARow
	for _, name := range names {
		b := s.Bench(name)
		def := must(flow.RunDefault(b, flow.Options{Seed: s.Seed, Tool: tool}))
		ours := must(flow.Run(b, flow.Options{
			Seed: s.Seed, Tool: tool,
			Method: flow.MethodPPAAware, Shapes: flow.ShapeVPRML, Model: model,
		}))
		rows = append(rows,
			PPARow{Design: designs.PaperNames[name], Flow: "Default", RWL: 1.0,
				WNSps: def.WNS * 1e12, TNSns: def.TNS * 1e9, PowerW: def.Power},
			PPARow{Design: designs.PaperNames[name], Flow: "Ours", RWL: ours.RoutedWL / def.RoutedWL,
				WNSps: ours.WNS * 1e12, TNSns: ours.TNS * 1e9, PowerW: ours.Power},
		)
	}
	return rows
}

// ---- Table 5 ----

// Table5 compares clustering methods (Leiden, MFC, ours) inside the same
// overall flow on the three small designs, OpenROAD mode.
func (s *Suite) Table5() []PPARow {
	model := s.Model()
	names := s.smallDesigns()
	if s.Fast {
		names = names[:2]
	}
	var rows []PPARow
	for _, name := range names {
		b := s.Bench(name)
		def := must(flow.RunDefault(b, flow.Options{Seed: s.Seed}))
		for _, m := range []struct {
			label  string
			method flow.Method
		}{
			{"Leiden", flow.MethodLeiden},
			{"MFC", flow.MethodMFC},
			{"Ours", flow.MethodPPAAware},
		} {
			r := must(flow.Run(b, flow.Options{
				Seed: s.Seed, Method: m.method,
				Shapes: flow.ShapeVPRML, Model: model,
			}))
			rows = append(rows, PPARow{
				Design: designs.PaperNames[name], Flow: m.label,
				RWL:   r.RoutedWL / def.RoutedWL,
				WNSps: r.WNS * 1e12, TNSns: r.TNS * 1e9, PowerW: r.Power,
			})
		}
	}
	return rows
}

// ---- Table 6 ----

// Table6 compares shape-assignment strategies (Random, Uniform, V-P&R_ML)
// in Innovus mode; rWL is normalized to the Uniform arm per the paper.
func (s *Suite) Table6() []PPARow {
	model := s.Model()
	names := []string{"ariane", "jpeg", "mb"}
	if s.Fast {
		names = []string{"aes", "jpeg"}
	}
	var rows []PPARow
	for _, name := range names {
		b := s.Bench(name)
		arms := []struct {
			label string
			mode  flow.ShapeMode
		}{
			{"Random", flow.ShapeRandom},
			{"Uniform", flow.ShapeUniform},
			{"V-P&R_ML", flow.ShapeVPRML},
		}
		// Average each arm over a few seeds: at reproduction scale the
		// shape-selection effect is second-order, so single runs are noisy.
		seeds := []int64{s.Seed, s.Seed + 1}
		type acc struct{ rwl, wns, tns, pwr float64 }
		results := make([]acc, len(arms))
		for i, a := range arms {
			for _, seed := range seeds {
				r := must(flow.Run(b, flow.Options{
					Seed: seed, Tool: flow.ToolInnovus,
					Method: flow.MethodPPAAware, Shapes: a.mode, Model: model,
				}))
				results[i].rwl += r.RoutedWL / float64(len(seeds))
				results[i].wns += r.WNS * 1e12 / float64(len(seeds))
				results[i].tns += r.TNS * 1e9 / float64(len(seeds))
				results[i].pwr += r.Power / float64(len(seeds))
			}
		}
		uniform := results[1]
		for i, a := range arms {
			rows = append(rows, PPARow{
				Design: designs.PaperNames[name], Flow: a.label,
				RWL:   results[i].rwl / uniform.rwl,
				WNSps: results[i].wns, TNSns: results[i].tns,
				PowerW: results[i].pwr,
			})
		}
	}
	return rows
}

// ---- Figure 5 ----

// Figure5Point is one sweep point: a hyperparameter multiplier and the mean
// normalized post-place HPWL over the sweep designs (1.0 = default).
type Figure5Point struct {
	Param      string
	Multiplier float64
	Score      float64
}

// Figure5 sweeps multipliers 1..6 on each of alpha, beta, gamma, mu,
// normalizing post-place HPWL to the default-multiplier run per design.
func (s *Suite) Figure5() []Figure5Point {
	names := s.smallDesigns()
	mults := []float64{1, 2, 3, 4, 5, 6}
	if s.Fast {
		names = names[:1]
		mults = []float64{1, 2, 3}
	}
	base := map[string]float64{}
	for _, name := range names {
		b := s.Bench(name)
		r := must(flow.Run(b, flow.Options{Seed: s.Seed, Shapes: flow.ShapeUniform, SkipRoute: true}))
		base[name] = r.HPWL
	}
	var pts []Figure5Point
	for _, param := range []string{"alpha", "beta", "gamma", "mu"} {
		for _, m := range mults {
			var sum float64
			for _, name := range names {
				b := s.Bench(name)
				opt := flow.Options{Seed: s.Seed, Shapes: flow.ShapeUniform, SkipRoute: true}
				switch param {
				case "alpha":
					opt.Alpha = m
				case "beta":
					opt.Beta = m
				case "gamma":
					opt.Gamma = m
				case "mu":
					opt.Mu = 2 * m
				}
				r := must(flow.Run(b, opt))
				sum += r.HPWL / base[name]
			}
			pts = append(pts, Figure5Point{Param: param, Multiplier: m, Score: sum / float64(len(names))})
		}
	}
	return pts
}

// ---- Section 4.4: GNN model quality ----

// GNNReport carries the model-quality metrics of Section 4.4.
type GNNReport struct {
	Train, Val, Test gnn.Metrics
	LabelMin         float64
	LabelMax         float64
	LabelMean        float64
	Samples          int
	TrainTime        time.Duration
	SpeedupX         float64 // exact V-P&R time / ML inference time per shape
}

// Model returns the trained Total Cost predictor, training it on first use.
func (s *Suite) Model() *gnn.Model {
	if s.model == nil {
		s.model, s.modelStats = s.trainModel()
	}
	return s.model
}

// GNNMetrics returns the Section 4.4 quality report (training on demand).
func (s *Suite) GNNMetrics() GNNReport {
	s.Model()
	return s.modelStats
}

// trainModel builds the V-P&R dataset by perturbing clustering seeds on the
// small designs (the paper perturbs seed/coarsening hyperparameters), labels
// every (cluster, shape) pair with exact V-P&R, and fits the GNN.
func (s *Suite) trainModel() (*gnn.Model, GNNReport) {
	nSeeds := 4
	minClusterInsts := 25
	if s.Fast {
		nSeeds = 1
	}
	var samples []gnn.Sample
	var exactTime time.Duration
	names := s.smallDesigns()
	if s.Fast {
		names = names[:1]
	}
	for _, name := range names {
		b := s.Bench(name)
		view := b.Design.ToHypergraph()
		for k := 0; k < nSeeds; k++ {
			res := cluster.MultilevelFC(view.H, cluster.Options{
				Seed:           s.Seed + int64(100*k),
				TargetClusters: 10 + 6*k,
			})
			members := make([][]int, res.NumClusters)
			for v, c := range res.Assign {
				members[c] = append(members[c], v)
			}
			for c := range members {
				if len(members[c]) < minClusterInsts || len(members[c]) > 400 {
					continue
				}
				sub, err := vpr.InduceSubNetlist(b.Design, members[c])
				if err != nil {
					continue
				}
				g := gnn.BuildGraphInput(sub, features.Options{Seed: s.Seed})
				runner := vpr.Runner{Opt: vpr.Options{Seed: s.Seed}}
				t0 := time.Now()
				for _, shape := range vpr.ShapeCandidates() {
					label := runner.Evaluate(sub, shape).TotalCost
					samples = append(samples, gnn.Sample{Graph: g, Shape: shape, Label: label})
				}
				exactTime += time.Since(t0)
			}
		}
	}
	// Deterministic split 70/15/15 by sample index stride.
	var train, val, test []gnn.Sample
	for i, smp := range samples {
		switch i % 20 {
		case 17, 18:
			val = append(val, smp)
		case 19, 16:
			test = append(test, smp)
		default:
			train = append(train, smp)
		}
	}
	model := gnn.NewModel(s.Seed)
	epochs := 10
	if s.Fast {
		epochs = 3
	}
	t0 := time.Now()
	model.Fit(train, gnn.TrainOptions{Epochs: epochs, LR: 1.5e-3, Seed: s.Seed})
	trainTime := time.Since(t0)

	rep := GNNReport{
		Train:     model.Evaluate(train),
		Val:       model.Evaluate(val),
		Test:      model.Evaluate(test),
		Samples:   len(samples),
		TrainTime: trainTime,
	}
	rep.LabelMin, rep.LabelMax, rep.LabelMean = labelStats(samples)
	// Inference speedup: time 20 predictions vs the recorded exact V-P&R.
	if len(samples) > 0 && exactTime > 0 {
		t0 = time.Now()
		n := 0
		for _, shape := range vpr.ShapeCandidates() {
			model.Predict(samples[0].Graph, shape)
			n++
		}
		perPredict := time.Since(t0) / time.Duration(n)
		perExact := exactTime / time.Duration(len(samples))
		if perPredict > 0 {
			rep.SpeedupX = float64(perExact) / float64(perPredict)
		}
	}
	return model, rep
}

func labelStats(samples []gnn.Sample) (min, max, mean float64) {
	if len(samples) == 0 {
		return
	}
	min, max = samples[0].Label, samples[0].Label
	var sum float64
	for _, s := range samples {
		if s.Label < min {
			min = s.Label
		}
		if s.Label > max {
			max = s.Label
		}
		sum += s.Label
	}
	return min, max, sum / float64(len(samples))
}

func must(r *flow.Result, err error) *flow.Result {
	if err != nil {
		panic(err)
	}
	return r
}

// ---- rendering ----

// FprintTable renders rows of any table type as an aligned text table.
func FprintTable(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		for j := 0; j < widths[i]; j++ {
			sep[i] += "-"
		}
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

// SortPPARows orders rows by design then flow for stable output.
func SortPPARows(rows []PPARow) {
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Design != rows[j].Design {
			return rows[i].Design < rows[j].Design
		}
		return rows[i].Flow < rows[j].Flow
	})
}
