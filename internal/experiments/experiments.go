// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4) on the synthetic benchmark suite: Table 1
// (benchmark statistics), Table 2 (post-place HPWL/CPU vs blob placement
// [9] and the default flow), Table 3 (post-route PPA, OpenROAD), Table 4
// (post-route PPA, Innovus), Table 5 (clustering ablation), Table 6 (shape
// ablation), the Section 4.4 GNN MAE/R2 metrics, and Figure 5
// (hyperparameter sweep).
//
// Absolute values cannot match the paper (the substrate is a simulator and
// the designs are synthetic); the suite asserts and reports the paper's
// relative *shape*: who wins, in which metric, by roughly what factor.
//
// Error contract: every table/figure method returns the first flow or
// benchmark-generation error instead of panicking; callers (cmd/ppabench,
// tests) decide how to die. Parallel fan-outs collect per-slot errors and
// surface the lowest-index one, so the reported error is deterministic for
// any worker count.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"ppaclust/internal/cluster"
	"ppaclust/internal/designs"
	"ppaclust/internal/features"
	"ppaclust/internal/flow"
	"ppaclust/internal/gnn"
	"ppaclust/internal/par"
	"ppaclust/internal/vpr"
)

// Suite runs experiments with shared caches (generated designs, trained
// model).
type Suite struct {
	// Fast restricts designs to small ones and shrinks the ML dataset; used
	// by tests. The full ppabench run leaves it false.
	Fast bool
	// Seed drives all randomized stages.
	Seed int64
	// Workers bounds the suite's total goroutine budget: 0 = auto
	// (PPACLUST_WORKERS, else GOMAXPROCS), 1 = fully sequential. Tables fan
	// out across designs; every flow underneath is bit-identical for any
	// worker count, so table contents never depend on Workers.
	Workers int

	benchMu    sync.Mutex
	benchCache map[string]*benchEntry
	modelOnce  sync.Once
	model      *gnn.Model
	modelStats GNNReport
	modelErr   error
}

type benchEntry struct {
	once sync.Once
	b    *designs.Benchmark
	err  error
}

// NewSuite returns an experiment suite using up to workers goroutines
// (0 = auto).
func NewSuite(fast bool, seed int64, workers int) *Suite {
	return &Suite{Fast: fast, Seed: seed, Workers: workers,
		benchCache: map[string]*benchEntry{}}
}

// Bench returns the cached benchmark for a named spec, or an error for an
// unknown name. It is safe for concurrent use; each design is generated
// exactly once per suite.
func (s *Suite) Bench(name string) (*designs.Benchmark, error) {
	s.benchMu.Lock()
	e, ok := s.benchCache[name]
	if !ok {
		e = &benchEntry{}
		s.benchCache[name] = e
	}
	s.benchMu.Unlock()
	e.once.Do(func() {
		spec, ok := designs.Named(name)
		if !ok {
			e.err = fmt.Errorf("experiments: unknown design %q", name)
			return
		}
		if s.Fast {
			spec.TargetInsts /= 4
			if spec.TargetInsts < 400 {
				spec.TargetInsts = 400
			}
		}
		e.b = designs.Generate(spec)
	})
	return e.b, e.err
}

// mapE fans fn out over [0, n) like par.Map and joins per-slot errors: the
// lowest-index error wins, so the surfaced failure is deterministic for any
// worker count.
func mapE[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	type slot struct {
		v   T
		err error
	}
	out := par.Map(workers, n, func(i int) slot {
		v, err := fn(i)
		return slot{v, err}
	})
	vals := make([]T, n)
	for i, o := range out {
		if o.err != nil {
			return nil, o.err
		}
		vals[i] = o.v
	}
	return vals, nil
}

// runWorkers splits the worker budget between a table's design-level fan-out
// and the flow kernels underneath: with several designs in flight, the
// fan-out owns the parallelism and each flow runs sequentially; a single
// design hands the whole budget to the flow.
func (s *Suite) runWorkers(items int) int {
	w := par.Workers(s.Workers)
	if items > 1 && w > 1 {
		return 1
	}
	return w
}

func (s *Suite) smallDesigns() []string { return []string{"aes", "jpeg", "ariane"} }

func (s *Suite) allDesigns() []string {
	if s.Fast {
		return []string{"aes", "jpeg"}
	}
	return []string{"aes", "jpeg", "ariane", "bp", "mb", "mpg"}
}

// ---- Table 1 ----

// Table1Row mirrors the paper's benchmark statistics table.
type Table1Row struct {
	Design string
	Insts  int
	Nets   int
	TCPns  float64
}

// Table1 generates the benchmark statistics, generating designs in parallel.
func (s *Suite) Table1() ([]Table1Row, error) {
	names := s.allDesigns()
	return mapE(par.Workers(s.Workers), len(names), func(i int) (Table1Row, error) {
		b, err := s.Bench(names[i])
		if err != nil {
			return Table1Row{}, err
		}
		return Table1Row{
			Design: designs.PaperNames[names[i]],
			Insts:  len(b.Design.Insts),
			Nets:   len(b.Design.Nets),
			TCPns:  b.Spec.ClockPeriod * 1e9,
		}, nil
	})
}

// ---- Table 2 ----

// Table2Row is one design's post-place comparison, normalized to the
// default flow (HPWL and CPU of blob placement [9] and of our flow).
type Table2Row struct {
	Design   string
	BlobHPWL float64
	BlobCPU  float64
	OursHPWL float64
	OursCPU  float64
}

// Table2 compares post-place HPWL and placement CPU. Blob placement [9] is
// Louvain clustering + seeded placement with IO-weighted nets; ours is
// PPA-aware clustering + ML-accelerated V-P&R + seeded placement.
func (s *Suite) Table2() ([]Table2Row, error) {
	model, err := s.Model()
	if err != nil {
		return nil, err
	}
	names := s.allDesigns()
	fw := s.runWorkers(len(names))
	return mapE(par.Workers(s.Workers), len(names), func(i int) (Table2Row, error) {
		b, err := s.Bench(names[i])
		if err != nil {
			return Table2Row{}, err
		}
		def, err := flow.RunDefault(b, flow.Options{Seed: s.Seed, SkipRoute: true, Workers: fw})
		if err != nil {
			return Table2Row{}, err
		}
		blob, err := flow.Run(b, flow.Options{
			Seed: s.Seed, Method: flow.MethodLouvain, Shapes: flow.ShapeUniform,
			SkipRoute: true, Workers: fw,
		})
		if err != nil {
			return Table2Row{}, err
		}
		ours, err := flow.Run(b, flow.Options{
			Seed: s.Seed, Method: flow.MethodPPAAware, Shapes: flow.ShapeVPRML,
			Model: model, SkipRoute: true, Workers: fw,
		})
		if err != nil {
			return Table2Row{}, err
		}
		// CPU follows the paper's Table 2 definition: "cumulative runtimes
		// of clustering and seeded placement", normalized by the default
		// flow's placement runtime. Shape selection is reported separately
		// (its cost is the one-time-amortized ML path of Section 3.2).
		return Table2Row{
			Design:   designs.PaperNames[names[i]],
			BlobHPWL: blob.HPWL / def.HPWL,
			BlobCPU:  cpuRatio(blob.PlaceTime, def.PlaceTime),
			OursHPWL: ours.HPWL / def.HPWL,
			OursCPU:  cpuRatio(ours.PlaceTime, def.PlaceTime),
		}, nil
	})
}

func cpuRatio(a, b time.Duration) float64 {
	if b <= 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// ---- Tables 3 and 4 ----

// PPARow is one post-route PPA comparison row.
type PPARow struct {
	Design string
	Flow   string
	RWL    float64 // normalized to the design's default flow
	WNSps  float64
	TNSns  float64
	PowerW float64
}

// Table3 is the OpenROAD post-route comparison (default vs ours) on the
// four routable designs.
func (s *Suite) Table3() ([]PPARow, error) {
	names := []string{"aes", "jpeg", "ariane", "bp"}
	if s.Fast {
		names = []string{"aes", "jpeg"}
	}
	return s.postRouteCompare(names, flow.ToolOpenROAD)
}

// Table4 is the Innovus-mode post-route comparison on all six designs.
func (s *Suite) Table4() ([]PPARow, error) {
	return s.postRouteCompare(s.allDesigns(), flow.ToolInnovus)
}

func (s *Suite) postRouteCompare(names []string, tool flow.Tool) ([]PPARow, error) {
	model, err := s.Model()
	if err != nil {
		return nil, err
	}
	fw := s.runWorkers(len(names))
	groups, err := mapE(par.Workers(s.Workers), len(names), func(i int) ([2]PPARow, error) {
		name := names[i]
		b, err := s.Bench(name)
		if err != nil {
			return [2]PPARow{}, err
		}
		def, err := flow.RunDefault(b, flow.Options{Seed: s.Seed, Tool: tool, Workers: fw})
		if err != nil {
			return [2]PPARow{}, err
		}
		ours, err := flow.Run(b, flow.Options{
			Seed: s.Seed, Tool: tool,
			Method: flow.MethodPPAAware, Shapes: flow.ShapeVPRML, Model: model,
			Workers: fw,
		})
		if err != nil {
			return [2]PPARow{}, err
		}
		return [2]PPARow{
			{Design: designs.PaperNames[name], Flow: "Default", RWL: 1.0,
				WNSps: def.WNS * 1e12, TNSns: def.TNS * 1e9, PowerW: def.Power},
			{Design: designs.PaperNames[name], Flow: "Ours", RWL: ours.RoutedWL / def.RoutedWL,
				WNSps: ours.WNS * 1e12, TNSns: ours.TNS * 1e9, PowerW: ours.Power},
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []PPARow
	for _, g := range groups {
		rows = append(rows, g[0], g[1])
	}
	return rows, nil
}

// ---- Table 5 ----

// Table5 compares clustering methods (Leiden, MFC, ours) inside the same
// overall flow on the three small designs, OpenROAD mode.
func (s *Suite) Table5() ([]PPARow, error) {
	model, err := s.Model()
	if err != nil {
		return nil, err
	}
	names := s.smallDesigns()
	if s.Fast {
		names = names[:2]
	}
	fw := s.runWorkers(len(names))
	groups, err := mapE(par.Workers(s.Workers), len(names), func(i int) ([]PPARow, error) {
		name := names[i]
		b, err := s.Bench(name)
		if err != nil {
			return nil, err
		}
		def, err := flow.RunDefault(b, flow.Options{Seed: s.Seed, Workers: fw})
		if err != nil {
			return nil, err
		}
		var rows []PPARow
		for _, m := range []struct {
			label  string
			method flow.Method
		}{
			{"Leiden", flow.MethodLeiden},
			{"MFC", flow.MethodMFC},
			{"Ours", flow.MethodPPAAware},
		} {
			r, err := flow.Run(b, flow.Options{
				Seed: s.Seed, Method: m.method,
				Shapes: flow.ShapeVPRML, Model: model, Workers: fw,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, PPARow{
				Design: designs.PaperNames[name], Flow: m.label,
				RWL:   r.RoutedWL / def.RoutedWL,
				WNSps: r.WNS * 1e12, TNSns: r.TNS * 1e9, PowerW: r.Power,
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []PPARow
	for _, g := range groups {
		rows = append(rows, g...)
	}
	return rows, nil
}

// ---- Table 6 ----

// Table6 compares shape-assignment strategies (Random, Uniform, V-P&R_ML)
// in Innovus mode; rWL is normalized to the Uniform arm per the paper.
func (s *Suite) Table6() ([]PPARow, error) {
	model, err := s.Model()
	if err != nil {
		return nil, err
	}
	names := []string{"ariane", "jpeg", "mb"}
	if s.Fast {
		names = []string{"aes", "jpeg"}
	}
	arms := []struct {
		label string
		mode  flow.ShapeMode
	}{
		{"Random", flow.ShapeRandom},
		{"Uniform", flow.ShapeUniform},
		{"V-P&R_ML", flow.ShapeVPRML},
	}
	// Average each arm over a few seeds: at reproduction scale the
	// shape-selection effect is second-order, so single runs are noisy.
	seeds := []int64{s.Seed, s.Seed + 1}
	// Fan out over (design, arm, seed) triples — the finest independent unit.
	type job struct {
		name string
		arm  int
		seed int64
	}
	var jobs []job
	for _, name := range names {
		for a := range arms {
			for _, seed := range seeds {
				jobs = append(jobs, job{name, a, seed})
			}
		}
	}
	fw := s.runWorkers(len(jobs))
	runs, err := mapE(par.Workers(s.Workers), len(jobs), func(i int) (*flow.Result, error) {
		j := jobs[i]
		b, err := s.Bench(j.name)
		if err != nil {
			return nil, err
		}
		return flow.Run(b, flow.Options{
			Seed: j.seed, Tool: flow.ToolInnovus,
			Method: flow.MethodPPAAware, Shapes: arms[j.arm].mode, Model: model,
			Workers: fw,
		})
	})
	if err != nil {
		return nil, err
	}
	var rows []PPARow
	for _, name := range names {
		type acc struct{ rwl, wns, tns, pwr float64 }
		results := make([]acc, len(arms))
		for ji, j := range jobs {
			if j.name != name {
				continue
			}
			r := runs[ji]
			results[j.arm].rwl += r.RoutedWL / float64(len(seeds))
			results[j.arm].wns += r.WNS * 1e12 / float64(len(seeds))
			results[j.arm].tns += r.TNS * 1e9 / float64(len(seeds))
			results[j.arm].pwr += r.Power / float64(len(seeds))
		}
		uniform := results[1]
		for i, a := range arms {
			rows = append(rows, PPARow{
				Design: designs.PaperNames[name], Flow: a.label,
				RWL:   results[i].rwl / uniform.rwl,
				WNSps: results[i].wns, TNSns: results[i].tns,
				PowerW: results[i].pwr,
			})
		}
	}
	return rows, nil
}

// ---- Figure 5 ----

// Figure5Point is one sweep point: a hyperparameter multiplier and the mean
// normalized post-place HPWL over the sweep designs (1.0 = default).
type Figure5Point struct {
	Param      string
	Multiplier float64
	Score      float64
}

// Figure5 sweeps multipliers 1..6 on each of alpha, beta, gamma, mu,
// normalizing post-place HPWL to the default-multiplier run per design.
func (s *Suite) Figure5() ([]Figure5Point, error) {
	names := s.smallDesigns()
	mults := []float64{1, 2, 3, 4, 5, 6}
	if s.Fast {
		names = names[:1]
		mults = []float64{1, 2, 3}
	}
	// Sweep points are independent; fan out over (param, multiplier) pairs.
	type sweep struct {
		param string
		mult  float64
	}
	var pairs []sweep
	for _, param := range []string{"alpha", "beta", "gamma", "mu"} {
		for _, m := range mults {
			pairs = append(pairs, sweep{param, m})
		}
	}
	fw := s.runWorkers(len(pairs))
	baseVals, err := mapE(par.Workers(s.Workers), len(names), func(i int) (float64, error) {
		b, err := s.Bench(names[i])
		if err != nil {
			return 0, err
		}
		r, err := flow.Run(b, flow.Options{Seed: s.Seed, Shapes: flow.ShapeUniform,
			SkipRoute: true, Workers: fw})
		if err != nil {
			return 0, err
		}
		return r.HPWL, nil
	})
	if err != nil {
		return nil, err
	}
	base := map[string]float64{}
	for i, name := range names {
		base[name] = baseVals[i]
	}
	return mapE(par.Workers(s.Workers), len(pairs), func(i int) (Figure5Point, error) {
		pr := pairs[i]
		var sum float64
		for _, name := range names {
			b, err := s.Bench(name)
			if err != nil {
				return Figure5Point{}, err
			}
			opt := flow.Options{Seed: s.Seed, Shapes: flow.ShapeUniform, SkipRoute: true,
				Workers: fw}
			switch pr.param {
			case "alpha":
				opt.Alpha = pr.mult
			case "beta":
				opt.Beta = pr.mult
			case "gamma":
				opt.Gamma = pr.mult
			case "mu":
				opt.Mu = 2 * pr.mult
			}
			r, err := flow.Run(b, opt)
			if err != nil {
				return Figure5Point{}, err
			}
			sum += r.HPWL / base[name]
		}
		return Figure5Point{Param: pr.param, Multiplier: pr.mult, Score: sum / float64(len(names))}, nil
	})
}

// ---- Section 4.4: GNN model quality ----

// GNNReport carries the model-quality metrics of Section 4.4.
type GNNReport struct {
	Train, Val, Test gnn.Metrics
	LabelMin         float64
	LabelMax         float64
	LabelMean        float64
	Samples          int
	TrainTime        time.Duration
	SpeedupX         float64 // exact V-P&R time / ML inference time per shape
}

// Model returns the trained Total Cost predictor, training it on first use.
// It is safe for concurrent use; training happens exactly once per suite.
func (s *Suite) Model() (*gnn.Model, error) {
	s.modelOnce.Do(func() {
		s.model, s.modelStats, s.modelErr = s.trainModel()
	})
	return s.model, s.modelErr
}

// GNNMetrics returns the Section 4.4 quality report (training on demand).
func (s *Suite) GNNMetrics() (GNNReport, error) {
	if _, err := s.Model(); err != nil {
		return GNNReport{}, err
	}
	return s.modelStats, nil
}

// trainModel builds the V-P&R dataset by perturbing clustering seeds on the
// small designs (the paper perturbs seed/coarsening hyperparameters), labels
// every (cluster, shape) pair with exact V-P&R, and fits the GNN.
func (s *Suite) trainModel() (*gnn.Model, GNNReport, error) {
	nSeeds := 4
	minClusterInsts := 25
	if s.Fast {
		nSeeds = 1
	}
	var samples []gnn.Sample
	var exactTime time.Duration
	names := s.smallDesigns()
	if s.Fast {
		names = names[:1]
	}
	for _, name := range names {
		b, err := s.Bench(name)
		if err != nil {
			return nil, GNNReport{}, err
		}
		view := b.Design.ToHypergraph()
		for k := 0; k < nSeeds; k++ {
			res := cluster.MultilevelFC(view.H, cluster.Options{
				Seed:           s.Seed + int64(100*k),
				TargetClusters: 10 + 6*k,
			})
			members := make([][]int, res.NumClusters)
			for v, c := range res.Assign {
				members[c] = append(members[c], v)
			}
			for c := range members {
				if len(members[c]) < minClusterInsts || len(members[c]) > 400 {
					continue
				}
				sub, err := vpr.InduceSubNetlist(b.Design, members[c])
				if err != nil {
					continue
				}
				g := gnn.BuildGraphInput(sub, features.Options{Seed: s.Seed})
				runner := vpr.Runner{Opt: vpr.Options{Seed: s.Seed}}
				t0 := time.Now()
				for _, shape := range vpr.ShapeCandidates() {
					label := runner.Evaluate(sub, shape).TotalCost
					samples = append(samples, gnn.Sample{Graph: g, Shape: shape, Label: label})
				}
				exactTime += time.Since(t0)
			}
		}
	}
	// Deterministic split 70/15/15 by sample index stride.
	var train, val, test []gnn.Sample
	for i, smp := range samples {
		switch i % 20 {
		case 17, 18:
			val = append(val, smp)
		case 19, 16:
			test = append(test, smp)
		default:
			train = append(train, smp)
		}
	}
	model := gnn.NewModel(s.Seed)
	epochs := 10
	if s.Fast {
		epochs = 3
	}
	t0 := time.Now()
	model.Fit(train, gnn.TrainOptions{Epochs: epochs, LR: 1.5e-3, Seed: s.Seed})
	trainTime := time.Since(t0)

	rep := GNNReport{
		Train:     model.Evaluate(train),
		Val:       model.Evaluate(val),
		Test:      model.Evaluate(test),
		Samples:   len(samples),
		TrainTime: trainTime,
	}
	rep.LabelMin, rep.LabelMax, rep.LabelMean = labelStats(samples)
	// Inference speedup: time 20 predictions vs the recorded exact V-P&R.
	if len(samples) > 0 && exactTime > 0 {
		t0 = time.Now()
		n := 0
		for _, shape := range vpr.ShapeCandidates() {
			model.Predict(samples[0].Graph, shape)
			n++
		}
		perPredict := time.Since(t0) / time.Duration(n)
		perExact := exactTime / time.Duration(len(samples))
		if perPredict > 0 {
			rep.SpeedupX = float64(perExact) / float64(perPredict)
		}
	}
	return model, rep, nil
}

func labelStats(samples []gnn.Sample) (min, max, mean float64) {
	if len(samples) == 0 {
		return
	}
	min, max = samples[0].Label, samples[0].Label
	var sum float64
	for _, s := range samples {
		if s.Label < min {
			min = s.Label
		}
		if s.Label > max {
			max = s.Label
		}
		sum += s.Label
	}
	return min, max, sum / float64(len(samples))
}

// ---- rendering ----

// FprintTable renders rows of any table type as an aligned text table.
func FprintTable(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s  ", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		for j := 0; j < widths[i]; j++ {
			sep[i] += "-"
		}
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

// SortPPARows orders rows by design then flow for stable output.
func SortPPARows(rows []PPARow) {
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Design != rows[j].Design {
			return rows[i].Design < rows[j].Design
		}
		return rows[i].Flow < rows[j].Flow
	})
}
