package experiments

import (
	"ppaclust/internal/designs"
	"ppaclust/internal/flow"
	"ppaclust/internal/par"
)

// AblationRow is one arm of the PPA-awareness term ablation: which rating
// terms were enabled and the resulting post-route PPA, normalized where
// noted. This extends the paper's Table 5 (which only compares whole
// methods) with a per-term breakdown — one of the "design choices" studies
// DESIGN.md commits to.
type AblationRow struct {
	Design string
	Arm    string // full | no-hierarchy | no-timing | no-switching | connectivity
	RWL    float64
	WNSps  float64
	TNSns  float64
	PowerW float64
}

// AblationClusterTerms runs the five-arm ablation on the small designs in
// OpenROAD mode with uniform shapes (isolating the clustering terms).
func (s *Suite) AblationClusterTerms() ([]AblationRow, error) {
	names := s.smallDesigns()
	if s.Fast {
		names = names[:1]
	}
	arms := []struct {
		name string
		opt  func(o *flow.Options)
	}{
		{"full", func(o *flow.Options) {}},
		{"no-hierarchy", func(o *flow.Options) { o.NoHierarchy = true }},
		{"no-timing", func(o *flow.Options) { o.Beta = -1 }},
		{"no-switching", func(o *flow.Options) { o.Gamma = -1 }},
		{"connectivity", func(o *flow.Options) { o.NoHierarchy = true; o.Beta = -1; o.Gamma = -1 }},
	}
	fw := s.runWorkers(len(names))
	groups, err := mapE(par.Workers(s.Workers), len(names), func(i int) ([]AblationRow, error) {
		name := names[i]
		b, err := s.Bench(name)
		if err != nil {
			return nil, err
		}
		def, err := flow.RunDefault(b, flow.Options{Seed: s.Seed, Workers: fw})
		if err != nil {
			return nil, err
		}
		var rows []AblationRow
		for _, arm := range arms {
			seeds := []int64{s.Seed, s.Seed + 1}
			var rwl, wns, tns, pwr float64
			for _, seed := range seeds {
				o := flow.Options{Seed: seed, Method: flow.MethodPPAAware, Shapes: flow.ShapeUniform,
					Workers: fw}
				arm.opt(&o)
				r, err := flow.Run(b, o)
				if err != nil {
					return nil, err
				}
				rwl += r.RoutedWL / def.RoutedWL / float64(len(seeds))
				wns += r.WNS * 1e12 / float64(len(seeds))
				tns += r.TNS * 1e9 / float64(len(seeds))
				pwr += r.Power / float64(len(seeds))
			}
			rows = append(rows, AblationRow{
				Design: designs.PaperNames[name], Arm: arm.name,
				RWL: rwl, WNSps: wns, TNSns: tns, PowerW: pwr,
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []AblationRow
	for _, g := range groups {
		rows = append(rows, g...)
	}
	return rows, nil
}
