package experiments

import (
	"strings"
	"testing"
)

// The fast suite shrinks designs and the ML dataset so the whole experiment
// machinery is exercised in seconds; the shape assertions mirror the paper's
// qualitative claims.

func fastSuite(t *testing.T) *Suite {
	t.Helper()
	return NewSuite(true, 7, 4)
}

func TestTable1Shape(t *testing.T) {
	s := fastSuite(t)
	rows, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("rows=%d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Insts <= 0 || rows[i].Nets <= 0 {
			t.Fatalf("bad row %+v", rows[i])
		}
	}
	if rows[0].Design != "aes" {
		t.Fatalf("first design %s", rows[0].Design)
	}
}

func TestTable2Shape(t *testing.T) {
	s := fastSuite(t)
	rows, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// HPWL within a sane band of the default flow.
		if r.OursHPWL < 0.5 || r.OursHPWL > 1.5 {
			t.Fatalf("ours HPWL ratio out of band: %+v", r)
		}
		if r.BlobHPWL < 0.5 || r.BlobHPWL > 1.8 {
			t.Fatalf("blob HPWL ratio out of band: %+v", r)
		}
		if r.OursCPU <= 0 || r.BlobCPU <= 0 {
			t.Fatalf("CPU ratios must be positive: %+v", r)
		}
	}
}

func TestTable3And4Shape(t *testing.T) {
	s := fastSuite(t)
	t3, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	t4, err := s.Table4()
	if err != nil {
		t.Fatal(err)
	}
	for _, rows := range [][]PPARow{t3, t4} {
		if len(rows)%2 != 0 || len(rows) == 0 {
			t.Fatalf("row count %d", len(rows))
		}
		for i := 0; i < len(rows); i += 2 {
			def, ours := rows[i], rows[i+1]
			if def.Flow != "Default" || ours.Flow != "Ours" {
				t.Fatalf("unexpected flow labels %s/%s", def.Flow, ours.Flow)
			}
			if def.RWL != 1.0 {
				t.Fatalf("default rWL should normalize to 1, got %v", def.RWL)
			}
			if ours.RWL < 0.5 || ours.RWL > 1.5 {
				t.Fatalf("ours rWL out of band: %+v", ours)
			}
			if def.WNSps > 0 || ours.WNSps > 0 {
				t.Fatalf("WNS must be <= 0: %+v %+v", def, ours)
			}
			if def.PowerW <= 0 || ours.PowerW <= 0 {
				t.Fatalf("power must be positive")
			}
		}
	}
}

func TestTable5Shape(t *testing.T) {
	s := fastSuite(t)
	rows, err := s.Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows)%3 != 0 || len(rows) == 0 {
		t.Fatalf("rows=%d", len(rows))
	}
	for i := 0; i < len(rows); i += 3 {
		labels := []string{rows[i].Flow, rows[i+1].Flow, rows[i+2].Flow}
		want := []string{"Leiden", "MFC", "Ours"}
		for j := range want {
			if labels[j] != want[j] {
				t.Fatalf("labels %v", labels)
			}
		}
	}
}

func TestTable6Shape(t *testing.T) {
	s := fastSuite(t)
	rows, err := s.Table6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows)%3 != 0 || len(rows) == 0 {
		t.Fatalf("rows=%d", len(rows))
	}
	for i := 0; i < len(rows); i += 3 {
		uniform := rows[i+1]
		if uniform.Flow != "Uniform" || uniform.RWL != 1.0 {
			t.Fatalf("uniform normalization broken: %+v", uniform)
		}
	}
}

func TestGNNMetrics(t *testing.T) {
	s := fastSuite(t)
	rep, err := s.GNNMetrics()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Samples == 0 {
		t.Fatal("no samples")
	}
	if rep.Train.N == 0 || rep.Test.N == 0 {
		t.Fatalf("empty splits: %+v", rep)
	}
	if rep.Train.MAE <= 0 {
		t.Fatal("MAE should be positive")
	}
	if rep.LabelMax <= rep.LabelMin {
		t.Fatalf("label range: [%v, %v]", rep.LabelMin, rep.LabelMax)
	}
	// MAE should be clearly smaller than the label spread (paper: 0.131 on
	// a [0.564, 2.96] range).
	if rep.Test.MAE > (rep.LabelMax-rep.LabelMin)*0.8 {
		t.Fatalf("test MAE %v vs label range [%v,%v]", rep.Test.MAE, rep.LabelMin, rep.LabelMax)
	}
	// At the shrunken fast-suite scale a mini-P&R can be cheaper than a GNN
	// forward pass; the crossover to the paper's ~30x speedup needs
	// full-size clusters, so here we only require the ratio to be recorded.
	if rep.SpeedupX <= 0 {
		t.Fatalf("speedup not measured: %vx", rep.SpeedupX)
	}
}

func TestFigure5Shape(t *testing.T) {
	s := fastSuite(t)
	pts, err := s.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	params := map[string]int{}
	for _, p := range pts {
		params[p.Param]++
		if p.Score < 0.5 || p.Score > 2.0 {
			t.Fatalf("score out of band: %+v", p)
		}
	}
	for _, want := range []string{"alpha", "beta", "gamma", "mu"} {
		if params[want] == 0 {
			t.Fatalf("missing param %s", want)
		}
	}
	// Multiplier 1 equals the default configuration -> score 1.0 by
	// definition for alpha (defaults are all-1).
	for _, p := range pts {
		if p.Param == "alpha" && p.Multiplier == 1 && (p.Score < 0.999 || p.Score > 1.001) {
			t.Fatalf("alpha x1 should be the baseline: %+v", p)
		}
	}
}

func TestFprintTable(t *testing.T) {
	var sb strings.Builder
	FprintTable(&sb, []string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	out := sb.String()
	if !strings.Contains(out, "333") || !strings.Contains(out, "--") {
		t.Fatalf("table output: %q", out)
	}
}

func TestSortPPARows(t *testing.T) {
	rows := []PPARow{{Design: "b", Flow: "x"}, {Design: "a", Flow: "z"}, {Design: "a", Flow: "y"}}
	SortPPARows(rows)
	if rows[0].Design != "a" || rows[0].Flow != "y" || rows[2].Design != "b" {
		t.Fatalf("sorted: %+v", rows)
	}
}

func TestBenchCaching(t *testing.T) {
	s := fastSuite(t)
	b1, err := s.Bench("aes")
	if err != nil {
		t.Fatal(err)
	}
	b2, err := s.Bench("aes")
	if err != nil {
		t.Fatal(err)
	}
	if b1 != b2 {
		t.Fatal("bench not cached")
	}
	if _, err := s.Bench("no-such-design"); err == nil {
		t.Fatal("unknown design must return an error")
	}
}

func TestAblationClusterTerms(t *testing.T) {
	s := fastSuite(t)
	rows, err := s.AblationClusterTerms()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows)%5 != 0 || len(rows) == 0 {
		t.Fatalf("rows=%d", len(rows))
	}
	arms := map[string]bool{}
	for _, r := range rows {
		arms[r.Arm] = true
		if r.RWL <= 0 || r.PowerW <= 0 {
			t.Fatalf("bad row %+v", r)
		}
		if r.TNSns > 0 || r.WNSps > 0 {
			t.Fatalf("slacks must be <= 0: %+v", r)
		}
	}
	for _, want := range []string{"full", "no-hierarchy", "no-timing", "no-switching", "connectivity"} {
		if !arms[want] {
			t.Fatalf("missing arm %s", want)
		}
	}
}

func TestRuntimeBreakdown(t *testing.T) {
	s := fastSuite(t)
	rows, err := s.RuntimeBreakdown()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.Total <= 0 || r.DefaultPlace <= 0 {
			t.Fatalf("bad durations: %+v", r)
		}
		if r.Total < r.Cluster {
			t.Fatalf("total must include clustering: %+v", r)
		}
	}
}

func TestFprintTableEmptyRows(t *testing.T) {
	var sb strings.Builder
	FprintTable(&sb, []string{"only", "header"}, nil)
	if !strings.Contains(sb.String(), "only") {
		t.Fatal("header missing")
	}
}
