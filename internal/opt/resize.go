package opt

import (
	"sort"
	"strings"

	"ppaclust/internal/netlist"
	"ppaclust/internal/sta"
)

// Gate sizing: swap cells on critical paths to higher-drive variants of the
// same function (INV_X1 -> INV_X2, BUF_X1 -> BUF_X4), the second classic
// post-placement timing repair next to buffer insertion.

// ResizeOptions configures critical-path gate sizing.
type ResizeOptions struct {
	// MaxResizes bounds the number of swaps. Default 10% of instances.
	MaxResizes int
	// Paths is how many worst paths to harvest candidates from. Default 50.
	Paths int
}

func (o ResizeOptions) withDefaults(d *netlist.Design) ResizeOptions {
	if o.MaxResizes <= 0 {
		o.MaxResizes = len(d.Insts)/10 + 1
	}
	if o.Paths <= 0 {
		o.Paths = 50
	}
	return o
}

// ResizeReport summarizes a sizing pass.
type ResizeReport struct {
	Resized   int
	WNSBefore float64
	WNSAfter  float64
}

// upsizeTable maps a master to its higher-drive variant within the built-in
// library's naming convention (FUNC_X<drive>).
func upsizeOf(lib *netlist.Library, name string) *netlist.Master {
	i := strings.LastIndex(name, "_X")
	if i < 0 {
		return nil
	}
	base := name[:i]
	drive := name[i+2:]
	// Try doubling the drive index a few times (X1 -> X2 -> X4 -> X8).
	for _, next := range []string{"2", "4", "8"} {
		if next > drive {
			if m := lib.Master(base + "_X" + next); m != nil {
				return m
			}
		}
	}
	return nil
}

// ResizeCriticalGates walks the worst timing paths and upsizes combinational
// cells along them when a higher-drive variant exists with compatible pins.
// Swaps are kept only if design-wide WNS does not degrade.
func ResizeCriticalGates(d *netlist.Design, cons sta.Constraints, opt ResizeOptions) ResizeReport {
	opt = opt.withDefaults(d)
	a := sta.New(d, cons)
	rep := ResizeReport{WNSBefore: a.Timing().WNS}
	if rep.WNSBefore >= 0 {
		rep.WNSAfter = rep.WNSBefore
		return rep // nothing failing
	}

	// Harvest candidate instances from the worst paths, most critical first.
	paths := a.TopPaths(opt.Paths)
	seen := map[int]bool{}
	var candidates []int
	for _, p := range paths {
		if p.Slack >= 0 {
			break
		}
		for _, pin := range p.Pins {
			if pin.Inst < 0 || seen[pin.Inst] {
				continue
			}
			seen[pin.Inst] = true
			candidates = append(candidates, pin.Inst)
		}
	}
	sort.Ints(candidates) // determinism after map-based dedup

	wns := rep.WNSBefore
	for _, id := range candidates {
		if rep.Resized >= opt.MaxResizes {
			break
		}
		inst := d.Insts[id]
		up := upsizeOf(d.Lib, inst.Master.Name)
		if up == nil || !pinsCompatible(inst.Master, up) {
			continue
		}
		old := inst.Master
		inst.Master = up
		trial := sta.New(d, cons).Timing().WNS
		if trial < wns {
			inst.Master = old // revert: upsizing hurt (input cap on the prev stage)
			continue
		}
		wns = trial
		rep.Resized++
	}
	rep.WNSAfter = wns
	return rep
}

// pinsCompatible checks the replacement exposes every pin of the original
// with matching directions (net connections keep working).
func pinsCompatible(a, b *netlist.Master) bool {
	for i := range a.Pins {
		bp := b.Pin(a.Pins[i].Name)
		if bp == nil || bp.Dir != a.Pins[i].Dir {
			return false
		}
	}
	return true
}
