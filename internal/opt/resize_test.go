package opt

import (
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/place"
	"ppaclust/internal/sta"
)

func TestUpsizeOf(t *testing.T) {
	lib := designs.Lib()
	if up := upsizeOf(lib, "INV_X1"); up == nil || up.Name != "INV_X2" {
		t.Fatalf("INV_X1 upsize = %v", up)
	}
	if up := upsizeOf(lib, "BUF_X1"); up == nil || up.Name != "BUF_X4" {
		t.Fatalf("BUF_X1 upsize = %v", up)
	}
	if up := upsizeOf(lib, "BUF_X4"); up != nil {
		t.Fatalf("BUF_X4 should have no upsize, got %v", up.Name)
	}
	if up := upsizeOf(lib, "RAM32X32"); up != nil {
		t.Fatal("macro should have no upsize")
	}
}

func TestResizeNeverWorsensWNS(t *testing.T) {
	b := designs.Generate(designs.TinySpec(801))
	d := b.Design
	place.Global(d, place.Options{Seed: 1, Legalize: true})
	rep := ResizeCriticalGates(d, b.Cons, ResizeOptions{MaxResizes: 40})
	if rep.WNSAfter < rep.WNSBefore {
		t.Fatalf("sizing degraded WNS: %v -> %v", rep.WNSBefore, rep.WNSAfter)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// The accepted swaps (if any) must have produced real master changes.
	if rep.Resized > 0 {
		found := false
		for _, inst := range d.Insts {
			if inst.Master.Name == "INV_X2" || inst.Master.Name == "BUF_X4" {
				found = true
			}
		}
		if !found {
			t.Fatal("reported resizes but no upsized masters present")
		}
	}
}

func TestResizeCleanDesignNoop(t *testing.T) {
	b := designs.Generate(designs.TinySpec(802))
	d := b.Design
	place.Global(d, place.Options{Seed: 2, Legalize: true})
	cons := sta.DefaultConstraints(1e-6) // absurdly slow clock: nothing fails
	cons.ClockPorts = []string{"clk"}
	rep := ResizeCriticalGates(d, cons, ResizeOptions{})
	if rep.Resized != 0 {
		t.Fatalf("clean design should not be resized: %+v", rep)
	}
}

func TestPinsCompatible(t *testing.T) {
	lib := designs.Lib()
	if !pinsCompatible(lib.Master("INV_X1"), lib.Master("INV_X2")) {
		t.Fatal("INV variants should be compatible")
	}
	if pinsCompatible(lib.Master("INV_X1"), lib.Master("NAND2_X1")) {
		t.Fatal("INV and NAND are not compatible")
	}
}
