package opt

import (
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/netlist"
	"ppaclust/internal/place"
	"ppaclust/internal/sta"
)

// longNetDesign builds a driver with sinks spread across a large core so
// at least one span exceeds any reasonable wire threshold.
func longNetDesign(t *testing.T) (*netlist.Design, sta.Constraints) {
	t.Helper()
	lib := designs.Lib()
	d := netlist.NewDesign("long", lib)
	d.Core = netlist.Rect{X0: 0, Y0: 0, X1: 400, Y1: 400}
	d.Die = d.Core
	d.RowHeight, d.SiteWidth = 1.4, 0.19
	inv := lib.Master("INV_X1")
	drv, _ := d.AddInstance("drv", inv)
	drv.X, drv.Y, drv.Placed = 0, 0, true
	n, _ := d.AddNet("bignet")
	d.Connect(n, netlist.PinRef{Inst: drv.ID, Pin: "ZN"})
	for i := 0; i < 4; i++ {
		s, _ := d.AddInstance("s"+string(rune('0'+i)), inv)
		s.X, s.Y, s.Placed = 380, float64(i*90), true
		d.Connect(n, netlist.PinRef{Inst: s.ID, Pin: "A"})
	}
	// Drive the driver from a port so timing is constrained.
	in, _ := d.AddPort("in", netlist.DirInput)
	in.X, in.Y, in.Placed = 0, 0, true
	nd, _ := d.AddNet("nin")
	d.Connect(nd, netlist.PinRef{Inst: -1, Pin: "in"})
	d.Connect(nd, netlist.PinRef{Inst: drv.ID, Pin: "A"})
	out, _ := d.AddPort("out", netlist.DirOutput)
	out.X, out.Y, out.Placed = 400, 400, true
	// One sink also drives the output port for a constrained endpoint.
	s0 := d.Instance("s0")
	no, _ := d.AddNet("nout")
	d.Connect(no, netlist.PinRef{Inst: s0.ID, Pin: "ZN"})
	d.Connect(no, netlist.PinRef{Inst: -1, Pin: "out"})
	cons := sta.DefaultConstraints(2e-9)
	return d, cons
}

func TestInsertBuffersSplitsLongNet(t *testing.T) {
	d, cons := longNetDesign(t)
	nets := len(d.Nets)
	insts := len(d.Insts)
	rep, before, after, err := RepairTiming(d, cons, BufferOptions{
		BufMaster:     d.Lib.Master("BUF_X4"),
		MaxWireLength: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Inserted == 0 {
		t.Fatal("expected at least one buffer")
	}
	if len(d.Nets) <= nets || len(d.Insts) <= insts {
		t.Fatal("netlist not modified")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Buffering a hugely overloaded wire should improve (or not hurt) WNS.
	if after < before-1e-12 {
		t.Fatalf("WNS got worse: %v -> %v", before, after)
	}
}

func TestInsertBuffersRespectsClockAndLimit(t *testing.T) {
	b := designs.Generate(designs.TinySpec(701))
	d := b.Design
	place.Global(d, place.Options{Seed: 1, Legalize: true})
	clockPins := len(d.Net("clk").Pins)
	rep, err := InsertBuffers(d, BufferOptions{
		BufMaster:  d.Lib.Master("BUF_X4"),
		MaxBuffers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Inserted > 3 {
		t.Fatalf("limit exceeded: %d", rep.Inserted)
	}
	if len(d.Net("clk").Pins) != clockPins {
		t.Fatal("clock net was modified")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertBuffersFanoutSplit(t *testing.T) {
	lib := designs.Lib()
	d := netlist.NewDesign("fan", lib)
	d.Core = netlist.Rect{X0: 0, Y0: 0, X1: 100, Y1: 100}
	inv := lib.Master("INV_X1")
	drv, _ := d.AddInstance("drv", inv)
	drv.X, drv.Y, drv.Placed = 50, 50, true
	n, _ := d.AddNet("fanout")
	d.Connect(n, netlist.PinRef{Inst: drv.ID, Pin: "ZN"})
	for i := 0; i < 30; i++ {
		s, _ := d.AddInstance("s"+itoa(i), inv)
		s.X, s.Y, s.Placed = float64(i*3), float64((i*7)%100), true
		d.Connect(n, netlist.PinRef{Inst: s.ID, Pin: "A"})
	}
	rep, err := InsertBuffers(d, BufferOptions{
		BufMaster:     lib.Master("BUF_X4"),
		MaxWireLength: 1e9, // disable length trigger; fanout only
		MaxFanout:     24,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Inserted != 1 {
		t.Fatalf("inserted=%d want 1", rep.Inserted)
	}
	// Original net fanout reduced.
	if got := len(d.Net("fanout").Pins); got >= 31 {
		t.Fatalf("fanout not reduced: %d pins", got)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertBuffersBadMaster(t *testing.T) {
	b := designs.Generate(designs.TinySpec(702))
	if _, err := InsertBuffers(b.Design, BufferOptions{}); err == nil {
		t.Fatal("expected error without BufMaster")
	}
	if _, err := InsertBuffers(b.Design, BufferOptions{BufMaster: b.Design.Lib.Master("NAND2_X1")}); err == nil {
		t.Fatal("expected error for non-buffer master")
	}
}

func itoa(v int) string {
	if v < 10 {
		return string(rune('0' + v))
	}
	return string(rune('0'+v/10)) + string(rune('0'+v%10))
}
