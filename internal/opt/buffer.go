// Package opt provides post-placement netlist optimizations, the stand-in
// for the opt_design / place_opt steps commercial flows run between
// placement and routing. Currently: buffer insertion on long or overloaded
// nets, the highest-leverage timing fix at this stage.
package opt

import (
	"fmt"
	"sort"

	"ppaclust/internal/netlist"
	"ppaclust/internal/sta"
)

// BufferOptions configures buffer insertion.
type BufferOptions struct {
	// BufMaster is the buffer cell to insert. Required.
	BufMaster *netlist.Master
	// MaxWireLength triggers insertion when a driver-to-sink span exceeds
	// it (microns). Default: 1/3 of the core half-perimeter.
	MaxWireLength float64
	// MaxFanout triggers insertion when a net drives more sinks. Default 24.
	MaxFanout int
	// MaxBuffers bounds total insertions. Default 5% of instance count.
	MaxBuffers int
}

func (o BufferOptions) withDefaults(d *netlist.Design) BufferOptions {
	if o.MaxWireLength <= 0 {
		o.MaxWireLength = (d.Core.W() + d.Core.H()) / 6
		// Below ~60um a buffer's intrinsic delay exceeds the wire it saves.
		if o.MaxWireLength < 60 {
			o.MaxWireLength = 60
		}
	}
	if o.MaxFanout <= 0 {
		o.MaxFanout = 24
	}
	if o.MaxBuffers <= 0 {
		o.MaxBuffers = len(d.Insts)/20 + 1
	}
	return o
}

// BufferReport summarizes an insertion pass.
type BufferReport struct {
	Inserted    int
	NetsTouched int
}

// InsertBuffers splits long/high-fanout signal nets by inserting buffers at
// the centroid of the far sink group. Clock nets and nets without an
// instance driver are skipped. The design is modified in place; inserted
// buffers are placed (unlegalized) at their target location — run the
// legalizer afterwards.
func InsertBuffers(d *netlist.Design, opt BufferOptions) (BufferReport, error) {
	opt = opt.withDefaults(d)
	var rep BufferReport
	if opt.BufMaster == nil {
		return rep, fmt.Errorf("opt: BufMaster is required")
	}
	bufIn, bufOut := bufferPins(opt.BufMaster)
	if bufIn == "" || bufOut == "" {
		return rep, fmt.Errorf("opt: %s is not a buffer (need 1 input, 1 output)", opt.BufMaster.Name)
	}

	// Snapshot net IDs first: we append nets while iterating.
	numNets := len(d.Nets)
	for netID := 0; netID < numNets && rep.Inserted < opt.MaxBuffers; netID++ {
		n := d.Nets[netID]
		if n.Clock {
			continue
		}
		drv, ok := d.Driver(n)
		if !ok || drv.IsPort() {
			continue
		}
		dx, dy := d.PinPos(drv)
		// Collect sinks beyond the wirelength threshold.
		type sink struct {
			pr   netlist.PinRef
			dist float64
			x, y float64
		}
		var far []sink
		sinks := 0
		for _, pr := range n.Pins {
			if pr == drv {
				continue
			}
			if pr.IsPort() {
				continue // keep port connections on the original net
			}
			mp := d.Insts[pr.Inst].Master.Pin(pr.Pin)
			if mp == nil || mp.Dir != netlist.DirInput {
				continue
			}
			sinks++
			x, y := d.PinPos(pr)
			dist := abs(x-dx) + abs(y-dy)
			if dist > opt.MaxWireLength {
				far = append(far, sink{pr, dist, x, y})
			}
		}
		overFanout := sinks > opt.MaxFanout
		if len(far) == 0 && !overFanout {
			continue
		}
		if len(far) == 0 && overFanout {
			// Split the farthest half of the sinks.
			for _, pr := range n.Pins {
				if pr == drv || pr.IsPort() {
					continue
				}
				mp := d.Insts[pr.Inst].Master.Pin(pr.Pin)
				if mp == nil || mp.Dir != netlist.DirInput {
					continue
				}
				x, y := d.PinPos(pr)
				far = append(far, sink{pr, abs(x-dx) + abs(y-dy), x, y})
			}
			sort.Slice(far, func(i, j int) bool { return far[i].dist > far[j].dist })
			far = far[:len(far)/2]
		}
		if len(far) == 0 {
			continue
		}
		// Buffer at the centroid of the far group.
		var cx, cy float64
		for _, s := range far {
			cx += s.x
			cy += s.y
		}
		cx /= float64(len(far))
		cy /= float64(len(far))
		buf, err := d.AddInstance(fmt.Sprintf("%s_buf%d", n.Name, rep.Inserted), opt.BufMaster)
		if err != nil {
			return rep, err
		}
		buf.X = clamp(cx-opt.BufMaster.Width/2, d.Core.X0, d.Core.X1-opt.BufMaster.Width)
		buf.Y = clamp(cy-opt.BufMaster.Height/2, d.Core.Y0, d.Core.Y1-opt.BufMaster.Height)
		buf.Placed = true
		// New net from buffer output to the far sinks.
		newNet, err := d.AddNet(fmt.Sprintf("%s_bufnet%d", n.Name, rep.Inserted))
		if err != nil {
			return rep, err
		}
		newNet.Weight = n.Weight
		d.Connect(newNet, netlist.PinRef{Inst: buf.ID, Pin: bufOut})
		farSet := map[netlist.PinRef]bool{}
		for _, s := range far {
			farSet[s.pr] = true
			d.Connect(newNet, s.pr)
		}
		// Remove the far sinks from the original net, add the buffer input.
		kept := n.Pins[:0]
		for _, pr := range n.Pins {
			if !farSet[pr] {
				kept = append(kept, pr)
			}
		}
		n.Pins = append(kept, netlist.PinRef{Inst: buf.ID, Pin: bufIn})
		// The pin list was rewired in place, bypassing Connect — retire the
		// cached connectivity views.
		d.InvalidateConnectivity()
		rep.Inserted++
		rep.NetsTouched++
	}
	return rep, nil
}

// bufferPins identifies the single input and output pin of a buffer master.
func bufferPins(m *netlist.Master) (in, out string) {
	for i := range m.Pins {
		switch m.Pins[i].Dir {
		case netlist.DirInput:
			if in != "" {
				return "", ""
			}
			in = m.Pins[i].Name
		case netlist.DirOutput:
			if out != "" {
				return "", ""
			}
			out = m.Pins[i].Name
		}
	}
	return in, out
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func clamp(v, lo, hi float64) float64 {
	if hi < lo {
		return lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// RepairTiming runs insertion then reports the WNS delta via fresh analyses
// (a convenience wrapper used by the flow and tests).
func RepairTiming(d *netlist.Design, cons sta.Constraints, opt BufferOptions) (BufferReport, float64, float64, error) {
	before := sta.New(d, cons).Timing().WNS
	rep, err := InsertBuffers(d, opt)
	if err != nil {
		return rep, 0, 0, err
	}
	after := sta.New(d, cons).Timing().WNS
	return rep, before, after, nil
}
