// Package features extracts the cluster-graph features the paper's GNN
// consumes (Section 3.2): two design parameters (floorplan utilization and
// aspect ratio), seventeen cluster-level features and nine cell-level
// features (with cell type expanded one-hot), for a total node-vector
// dimension of 35 matching the model's input layer.
//
// Expensive exact graph metrics (betweenness, all-pairs distances) switch to
// deterministic source sampling above a size threshold, mirroring how the
// paper's feature extraction remains tractable on large clusters.
package features

import (
	"math"
	"math/rand"
	"sort"

	"ppaclust/internal/netlist"
)

// Dim is the GNN node-feature dimension (2 design + 17 cluster + 8 cell
// scalars + 8 one-hot cell type).
const Dim = 35

// NumCellTypes is the size of the cell-type one-hot encoding.
const NumCellTypes = 8

// Options controls feature extraction.
type Options struct {
	// SampleCap bounds exact all-pairs computations; larger graphs use this
	// many sampled BFS sources. Default 128.
	SampleCap int
	// Seed drives source sampling.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.SampleCap <= 0 {
		o.SampleCap = 128
	}
	return o
}

// Features holds extracted values for one cluster sub-netlist.
type Features struct {
	// Cluster-level (17).
	NumCells         int
	NumNets          int
	NumPins          int
	NetsFanout5to10  int
	NetsFanoutGT10   int
	InternalNets     int
	BorderNets       int
	TotalCellArea    float64
	AvgCellDegree    float64
	AvgNetDegree     float64
	AvgClustering    float64
	Density          float64
	Diameter         float64
	Radius           float64
	EdgeConnectivity float64
	GreedyColors     int
	GlobalEfficiency float64

	// Cell-level, indexed by instance ID within the sub-design.
	CellArea       []float64
	CellDegree     []float64
	AvgNbrDegree   []float64
	Betweenness    []float64
	Closeness      []float64
	DegreeCentral  []float64
	ClusteringCoef []float64
	Eccentricity   []float64
	CellType       []int
}

// CellTypeIndex maps a master to its one-hot slot.
func CellTypeIndex(m *netlist.Master) int {
	name := m.Name
	switch {
	case hasPrefix(name, "INV"):
		return 0
	case hasPrefix(name, "BUF"), hasPrefix(name, "CLKBUF"):
		return 1
	case hasPrefix(name, "NAND"):
		return 2
	case hasPrefix(name, "NOR"):
		return 3
	case hasPrefix(name, "AND"), hasPrefix(name, "OR"):
		return 4
	case hasPrefix(name, "XOR"), hasPrefix(name, "XNOR"):
		return 5
	case hasPrefix(name, "MUX"), hasPrefix(name, "AOI"), hasPrefix(name, "OAI"):
		return 6
	default: // DFF, macros, everything sequential or unknown
		return 7
	}
}

func hasPrefix(s, p string) bool {
	return len(s) >= len(p) && s[:len(p)] == p
}

// Extract computes all features of a cluster sub-netlist.
func Extract(sub *netlist.Design, opt Options) *Features {
	opt = opt.withDefaults()
	n := len(sub.Insts)
	f := &Features{
		NumCells:       n,
		NumNets:        len(sub.Nets),
		CellArea:       make([]float64, n),
		CellDegree:     make([]float64, n),
		AvgNbrDegree:   make([]float64, n),
		Betweenness:    make([]float64, n),
		Closeness:      make([]float64, n),
		DegreeCentral:  make([]float64, n),
		ClusteringCoef: make([]float64, n),
		Eccentricity:   make([]float64, n),
		CellType:       make([]int, n),
	}
	if n == 0 {
		return f
	}

	// Net-derived counts.
	var pinSum, netDegSum int
	for _, net := range sub.Nets {
		pins := len(net.Pins)
		pinSum += pins
		netDegSum += pins
		fan := pins - 1
		if fan >= 5 && fan <= 10 {
			f.NetsFanout5to10++
		}
		if fan > 10 {
			f.NetsFanoutGT10++
		}
		border := false
		for _, pr := range net.Pins {
			if pr.IsPort() {
				border = true
				break
			}
		}
		if border {
			f.BorderNets++
		} else {
			f.InternalNets++
		}
	}
	f.NumPins = pinSum
	if len(sub.Nets) > 0 {
		f.AvgNetDegree = float64(netDegSum) / float64(len(sub.Nets))
	}

	// Adjacency via clique expansion (unweighted, deduplicated).
	adj := buildAdjacency(sub)
	var degSum float64
	var edges int
	for i, inst := range sub.Insts {
		f.CellArea[i] = inst.Master.Area()
		f.CellType[i] = CellTypeIndex(inst.Master)
		f.CellDegree[i] = float64(len(sub.NetsOf(inst.ID)))
		degSum += f.CellDegree[i]
		edges += len(adj[i])
	}
	edges /= 2
	f.AvgCellDegree = degSum / float64(n)
	f.TotalCellArea = sub.TotalCellArea()
	if n > 1 {
		f.Density = 2 * float64(edges) / (float64(n) * float64(n-1))
	}
	for i := range adj {
		f.DegreeCentral[i] = float64(len(adj[i]))
		if n > 1 {
			f.DegreeCentral[i] /= float64(n - 1)
		}
	}
	f.computeNeighborhoodDegree(adj)
	f.computeClustering(adj)
	f.computeDistancesAndBetweenness(adj, opt)
	f.EdgeConnectivity = edgeConnectivityApprox(adj)
	f.GreedyColors = greedyColoring(adj)
	return f
}

// buildAdjacency returns the deduplicated neighbor lists of the cell graph.
func buildAdjacency(sub *netlist.Design) [][]int {
	n := len(sub.Insts)
	adj := make([][]int, n)
	seen := make([]map[int]bool, n)
	for i := range seen {
		seen[i] = map[int]bool{}
	}
	for _, net := range sub.Nets {
		var members []int
		for _, pr := range net.Pins {
			if !pr.IsPort() {
				members = append(members, pr.Inst)
			}
		}
		if len(members) > 64 {
			continue // huge nets (clock) carry no locality
		}
		for a := 0; a < len(members); a++ {
			for b := a + 1; b < len(members); b++ {
				u, v := members[a], members[b]
				if u == v || seen[u][v] {
					continue
				}
				seen[u][v] = true
				seen[v][u] = true
				adj[u] = append(adj[u], v)
				adj[v] = append(adj[v], u)
			}
		}
	}
	return adj
}

func (f *Features) computeNeighborhoodDegree(adj [][]int) {
	for i, nbrs := range adj {
		if len(nbrs) == 0 {
			continue
		}
		var s float64
		for _, u := range nbrs {
			s += float64(len(adj[u]))
		}
		f.AvgNbrDegree[i] = s / float64(len(nbrs))
	}
}

func (f *Features) computeClustering(adj [][]int) {
	n := len(adj)
	var total float64
	mark := make([]bool, n)
	for i, nbrs := range adj {
		d := len(nbrs)
		if d < 2 {
			continue
		}
		for _, u := range nbrs {
			mark[u] = true
		}
		triangles := 0
		for _, u := range nbrs {
			for _, w := range adj[u] {
				if w > u && mark[w] {
					triangles++
				}
			}
		}
		for _, u := range nbrs {
			mark[u] = false
		}
		f.ClusteringCoef[i] = 2 * float64(triangles) / (float64(d) * float64(d-1))
		total += f.ClusteringCoef[i]
	}
	if n > 0 {
		f.AvgClustering = total / float64(n)
	}
}

// computeDistancesAndBetweenness runs (possibly sampled) Brandes' algorithm,
// filling closeness, eccentricity, diameter, radius, global efficiency and
// betweenness in one pass.
func (f *Features) computeDistancesAndBetweenness(adj [][]int, opt Options) {
	n := len(adj)
	sources := make([]int, 0, n)
	if n <= opt.SampleCap {
		for i := 0; i < n; i++ {
			sources = append(sources, i)
		}
	} else {
		rng := rand.New(rand.NewSource(opt.Seed + 99))
		perm := rng.Perm(n)
		sources = perm[:opt.SampleCap]
		sort.Ints(sources)
	}
	scale := float64(n) / float64(len(sources))

	dist := make([]int, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	queue := make([]int, 0, n)
	order := make([]int, 0, n)
	preds := make([][]int, n)

	var effSum float64
	var effPairs int
	radius := math.Inf(1)
	ecc := f.Eccentricity
	diameter := 0.0
	closenessSum := make([]float64, n)
	closenessCnt := make([]int, n)

	for _, s := range sources {
		for i := 0; i < n; i++ {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		dist[s] = 0
		sigma[s] = 1
		queue = queue[:0]
		order = order[:0]
		queue = append(queue, s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, w := range adj[v] {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
					preds[w] = append(preds[w], v)
				}
			}
		}
		// Distance-derived metrics from this source.
		maxD := 0
		var sum float64
		reach := 0
		for i := 0; i < n; i++ {
			if dist[i] <= 0 {
				continue
			}
			d := float64(dist[i])
			sum += d
			reach++
			effSum += 1 / d
			effPairs++
			if dist[i] > maxD {
				maxD = dist[i]
			}
			closenessSum[i] += d
			closenessCnt[i]++
		}
		if reach > 0 {
			ecc[s] = float64(maxD)
			if ecc[s] > diameter {
				diameter = ecc[s]
			}
			if ecc[s] < radius {
				radius = ecc[s]
			}
		}
		_ = sum
		// Brandes back-propagation.
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for _, v := range preds[w] {
				delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				f.Betweenness[w] += delta[w] * scale
			}
		}
	}
	// Closeness: reachable-count-normalized (Wasserman-Faust style).
	for i := 0; i < n; i++ {
		if closenessSum[i] > 0 {
			f.Closeness[i] = float64(closenessCnt[i]) / closenessSum[i]
		}
	}
	// For non-source vertices under sampling, eccentricity stays 0; fill
	// with the sampled diameter as a conservative default.
	for i := range ecc {
		if ecc[i] == 0 && len(adj[i]) > 0 {
			ecc[i] = diameter
		}
	}
	f.Diameter = diameter
	if math.IsInf(radius, 1) {
		radius = 0
	}
	f.Radius = radius
	if effPairs > 0 && len(adj) > 1 {
		f.GlobalEfficiency = effSum / float64(effPairs)
	}
	// Normalize betweenness by the ordered-pair count (matching networkx's
	// normalized undirected convention: sum/2 * 2/((n-1)(n-2))).
	if n > 2 {
		norm := float64((n - 1) * (n - 2))
		for i := range f.Betweenness {
			f.Betweenness[i] /= norm
		}
	}
}

// edgeConnectivityApprox uses the minimum degree as the (upper-bound)
// approximation of edge connectivity; exact max-flow-based connectivity is
// out of proportion for a feature with this little model weight.
func edgeConnectivityApprox(adj [][]int) float64 {
	if len(adj) == 0 {
		return 0
	}
	min := math.Inf(1)
	for _, nbrs := range adj {
		if float64(len(nbrs)) < min {
			min = float64(len(nbrs))
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// greedyColoring colors vertices in descending-degree order (Welsh-Powell)
// and returns the number of colors used.
func greedyColoring(adj [][]int) int {
	n := len(adj)
	if n == 0 {
		return 0
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if len(adj[order[a]]) != len(adj[order[b]]) {
			return len(adj[order[a]]) > len(adj[order[b]])
		}
		return order[a] < order[b]
	})
	color := make([]int, n)
	for i := range color {
		color[i] = -1
	}
	maxColor := 0
	used := map[int]bool{}
	for _, v := range order {
		for k := range used {
			delete(used, k)
		}
		for _, u := range adj[v] {
			if color[u] >= 0 {
				used[color[u]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		color[v] = c
		if c+1 > maxColor {
			maxColor = c + 1
		}
	}
	return maxColor
}

// NodeVec writes the 35-dim feature vector of cell i at the given candidate
// shape into out (length Dim).
func (f *Features) NodeVec(i int, aspectRatio, utilization float64, out []float64) {
	_ = out[Dim-1]
	out[0] = utilization
	out[1] = aspectRatio
	out[2] = float64(f.NumCells)
	out[3] = float64(f.NumNets)
	out[4] = float64(f.NumPins)
	out[5] = float64(f.NetsFanout5to10)
	out[6] = float64(f.NetsFanoutGT10)
	out[7] = float64(f.InternalNets)
	out[8] = float64(f.BorderNets)
	out[9] = f.TotalCellArea
	out[10] = f.AvgCellDegree
	out[11] = f.AvgNetDegree
	out[12] = f.AvgClustering
	out[13] = f.Density
	out[14] = f.Diameter
	out[15] = f.Radius
	out[16] = f.EdgeConnectivity
	out[17] = float64(f.GreedyColors)
	out[18] = f.GlobalEfficiency
	out[19] = f.CellArea[i]
	out[20] = f.CellDegree[i]
	out[21] = f.AvgNbrDegree[i]
	out[22] = f.Betweenness[i]
	out[23] = f.Closeness[i]
	out[24] = f.DegreeCentral[i]
	out[25] = f.ClusteringCoef[i]
	out[26] = f.Eccentricity[i]
	for t := 0; t < NumCellTypes; t++ {
		out[27+t] = 0
	}
	out[27+f.CellType[i]] = 1
}
