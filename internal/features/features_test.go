package features

import (
	"math"
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/netlist"
)

// pathGraphDesign builds a 4-cell path a-b-c-d via 2-pin nets.
func pathGraphDesign(t *testing.T) *netlist.Design {
	t.Helper()
	lib := designs.Lib()
	d := netlist.NewDesign("path", lib)
	inv := lib.Master("INV_X1")
	ids := make([]int, 4)
	for i := range ids {
		inst, err := d.AddInstance("g"+itoa(i), inv)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = inst.ID
	}
	for i := 1; i < 4; i++ {
		n, _ := d.AddNet("n" + itoa(i))
		d.Connect(n, netlist.PinRef{Inst: ids[i-1], Pin: "ZN"})
		d.Connect(n, netlist.PinRef{Inst: ids[i], Pin: "A"})
	}
	return d
}

func itoa(v int) string { return string(rune('0' + v)) }

func TestExtractPathGraph(t *testing.T) {
	d := pathGraphDesign(t)
	f := Extract(d, Options{})
	if f.NumCells != 4 || f.NumNets != 3 || f.NumPins != 6 {
		t.Fatalf("counts: %+v", f)
	}
	// Path graph: diameter 3, radius 2.
	if f.Diameter != 3 || f.Radius != 2 {
		t.Fatalf("diameter=%v radius=%v", f.Diameter, f.Radius)
	}
	// Middle vertices of P4 have normalized betweenness 2/3 (networkx value).
	if math.Abs(f.Betweenness[1]-2.0/3) > 1e-9 || math.Abs(f.Betweenness[2]-2.0/3) > 1e-9 {
		t.Fatalf("betweenness=%v", f.Betweenness)
	}
	if f.Betweenness[0] != 0 || f.Betweenness[3] != 0 {
		t.Fatalf("end betweenness=%v", f.Betweenness)
	}
	// Degree centrality: ends 1/3, middles 2/3.
	if math.Abs(f.DegreeCentral[0]-1.0/3) > 1e-9 || math.Abs(f.DegreeCentral[1]-2.0/3) > 1e-9 {
		t.Fatalf("degree centrality=%v", f.DegreeCentral)
	}
	// Closeness of end vertex 0: distances 1,2,3 -> 3/6.
	if math.Abs(f.Closeness[0]-0.5) > 1e-9 {
		t.Fatalf("closeness=%v", f.Closeness[0])
	}
	// Path graph has no triangles.
	if f.AvgClustering != 0 {
		t.Fatalf("clustering=%v", f.AvgClustering)
	}
	// Path is 2-colorable.
	if f.GreedyColors != 2 {
		t.Fatalf("colors=%d", f.GreedyColors)
	}
	// Min degree = 1 approximates edge connectivity.
	if f.EdgeConnectivity != 1 {
		t.Fatalf("edge connectivity=%v", f.EdgeConnectivity)
	}
	// Global efficiency for a 4-path: pairs (1,1,1,2,2,3)x2 directions ->
	// mean of 1/d over ordered pairs = (3*1 + 2*0.5 + 1/3)*2 / 12.
	want := (3*1.0 + 2*0.5 + 1.0/3) * 2 / 12
	if math.Abs(f.GlobalEfficiency-want) > 1e-9 {
		t.Fatalf("efficiency=%v want %v", f.GlobalEfficiency, want)
	}
}

func TestTriangleClustering(t *testing.T) {
	lib := designs.Lib()
	d := netlist.NewDesign("tri", lib)
	inv := lib.Master("INV_X1")
	for i := 0; i < 3; i++ {
		if _, err := d.AddInstance("g"+itoa(i), inv); err != nil {
			t.Fatal(err)
		}
	}
	pairs := [][2]int{{0, 1}, {1, 2}, {0, 2}}
	for i, p := range pairs {
		n, _ := d.AddNet("n" + itoa(i))
		d.Connect(n, netlist.PinRef{Inst: p[0], Pin: "ZN"})
		d.Connect(n, netlist.PinRef{Inst: p[1], Pin: "A"})
	}
	f := Extract(d, Options{})
	for i := 0; i < 3; i++ {
		if f.ClusteringCoef[i] != 1 {
			t.Fatalf("triangle clustering=%v", f.ClusteringCoef)
		}
	}
	if f.Density != 1 {
		t.Fatalf("density=%v", f.Density)
	}
	if f.GreedyColors != 3 {
		t.Fatalf("colors=%d", f.GreedyColors)
	}
}

func TestCellTypeIndex(t *testing.T) {
	lib := designs.Lib()
	cases := map[string]int{
		"INV_X1": 0, "BUF_X1": 1, "CLKBUF_X2": 1, "NAND2_X1": 2,
		"NOR2_X1": 3, "AND2_X1": 4, "OR2_X1": 4, "XOR2_X1": 5,
		"MUX2_X1": 6, "AOI21_X1": 6, "DFF_X1": 7, "RAM32X32": 7,
	}
	for name, want := range cases {
		if got := CellTypeIndex(lib.Master(name)); got != want {
			t.Errorf("CellTypeIndex(%s)=%d want %d", name, got, want)
		}
	}
}

func TestNodeVec(t *testing.T) {
	d := pathGraphDesign(t)
	f := Extract(d, Options{})
	vec := make([]float64, Dim)
	f.NodeVec(1, 1.25, 0.85, vec)
	if vec[0] != 0.85 || vec[1] != 1.25 {
		t.Fatalf("design params: %v %v", vec[0], vec[1])
	}
	if vec[2] != 4 {
		t.Fatalf("numCells slot: %v", vec[2])
	}
	// One-hot: INV -> slot 27.
	if vec[27] != 1 {
		t.Fatalf("one-hot: %v", vec[27:])
	}
	sum := 0.0
	for t2 := 0; t2 < NumCellTypes; t2++ {
		sum += vec[27+t2]
	}
	if sum != 1 {
		t.Fatalf("one-hot not exclusive: %v", vec[27:])
	}
}

func TestFanoutBuckets(t *testing.T) {
	lib := designs.Lib()
	d := netlist.NewDesign("fan", lib)
	inv := lib.Master("INV_X1")
	for i := 0; i < 14; i++ {
		if _, err := d.AddInstance("g"+string(rune('a'+i)), inv); err != nil {
			t.Fatal(err)
		}
	}
	// Net with fanout 6 (7 pins).
	n1, _ := d.AddNet("f6")
	d.Connect(n1, netlist.PinRef{Inst: 0, Pin: "ZN"})
	for i := 1; i <= 6; i++ {
		d.Connect(n1, netlist.PinRef{Inst: i, Pin: "A"})
	}
	// Net with fanout 12 (13 pins).
	n2, _ := d.AddNet("f12")
	d.Connect(n2, netlist.PinRef{Inst: 1, Pin: "ZN"})
	for i := 2; i <= 13; i++ {
		d.Connect(n2, netlist.PinRef{Inst: i, Pin: "A"})
	}
	f := Extract(d, Options{})
	if f.NetsFanout5to10 != 1 || f.NetsFanoutGT10 != 1 {
		t.Fatalf("fanout buckets: %d %d", f.NetsFanout5to10, f.NetsFanoutGT10)
	}
	if f.InternalNets != 2 || f.BorderNets != 0 {
		t.Fatalf("internal/border: %d %d", f.InternalNets, f.BorderNets)
	}
}

func TestSampledExtractionStable(t *testing.T) {
	b := designs.Generate(designs.TinySpec(61))
	f1 := Extract(b.Design, Options{SampleCap: 32, Seed: 1})
	f2 := Extract(b.Design, Options{SampleCap: 32, Seed: 1})
	if f1.Diameter != f2.Diameter || f1.GlobalEfficiency != f2.GlobalEfficiency {
		t.Fatal("sampled extraction not deterministic")
	}
	full := Extract(b.Design, Options{SampleCap: 1 << 20})
	if full.Diameter < f1.Diameter {
		t.Fatal("sampled diameter cannot exceed exact diameter")
	}
}

func TestEmptyDesign(t *testing.T) {
	lib := designs.Lib()
	d := netlist.NewDesign("empty", lib)
	f := Extract(d, Options{})
	if f.NumCells != 0 || f.Diameter != 0 {
		t.Fatalf("empty features: %+v", f)
	}
}
