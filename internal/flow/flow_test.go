package flow

import (
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/vpr"
)

func tinyBench(seed int64) *designs.Benchmark {
	return designs.Generate(designs.TinySpec(seed))
}

func TestRunDefaultProducesMetrics(t *testing.T) {
	b := tinyBench(81)
	res, err := RunDefault(b, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWL <= 0 || res.RoutedWL <= 0 {
		t.Fatalf("wirelength: hpwl=%v rwl=%v", res.HPWL, res.RoutedWL)
	}
	if res.WNS > 0 || res.TNS > 0 {
		t.Fatalf("slacks must be <=0: wns=%v tns=%v", res.WNS, res.TNS)
	}
	if res.Power <= 0 {
		t.Fatalf("power=%v", res.Power)
	}
	if res.PlaceTime <= 0 {
		t.Fatal("no place time recorded")
	}
	// The original design must not be mutated.
	for _, inst := range b.Design.Insts {
		if inst.Placed && !inst.Fixed {
			t.Fatal("RunDefault mutated the benchmark design")
		}
	}
}

func TestRunPPAAwareFlow(t *testing.T) {
	b := tinyBench(82)
	res, err := Run(b, Options{Seed: 2, Shapes: ShapeUniform})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters < 2 {
		t.Fatalf("clusters=%d", res.Clusters)
	}
	if res.HPWL <= 0 || res.RoutedWL <= 0 || res.Power <= 0 {
		t.Fatalf("bad metrics: %+v", res)
	}
	if res.ClusterTime <= 0 || res.SeedPlaceTime <= 0 || res.IncrPlaceTime <= 0 {
		t.Fatal("missing runtime breakdown")
	}
}

func TestRunComparableToDefault(t *testing.T) {
	b := tinyBench(83)
	def, err := RunDefault(b, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ours, err := Run(b, Options{Seed: 3, Shapes: ShapeUniform})
	if err != nil {
		t.Fatal(err)
	}
	// Clustered seeded placement should land within a reasonable factor of
	// the flat flow's HPWL on a tiny design.
	if ours.HPWL > 1.6*def.HPWL {
		t.Fatalf("clustered HPWL %v vs default %v", ours.HPWL, def.HPWL)
	}
}

func TestRunWithVPRShapes(t *testing.T) {
	b := tinyBench(84)
	res, err := Run(b, Options{Seed: 4, Shapes: ShapeVPR, VPRMinInsts: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShapedVPR == 0 {
		t.Fatal("expected at least one cluster through V-P&R")
	}
}

func TestRunInnovusModeWithRegions(t *testing.T) {
	b := tinyBench(85)
	res, err := Run(b, Options{Seed: 5, Tool: ToolInnovus, Shapes: ShapeRandom, VPRMinInsts: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.RoutedWL <= 0 {
		t.Fatal("no routing result")
	}
}

func TestRunAllMethods(t *testing.T) {
	b := tinyBench(86)
	for _, m := range []Method{MethodPPAAware, MethodMFC, MethodLeiden, MethodLouvain} {
		res, err := Run(b, Options{Seed: 6, Method: m, Shapes: ShapeUniform, SkipRoute: true})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Clusters < 2 || res.HPWL <= 0 {
			t.Fatalf("%v: %+v", m, res)
		}
	}
}

func TestVPRMLRequiresModel(t *testing.T) {
	b := tinyBench(87)
	_, err := Run(b, Options{Seed: 7, Shapes: ShapeVPRML, VPRMinInsts: 10})
	if err == nil {
		t.Fatal("expected error without a trained model")
	}
}

func TestSkipRoute(t *testing.T) {
	b := tinyBench(88)
	res, err := Run(b, Options{Seed: 8, Shapes: ShapeUniform, SkipRoute: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.RoutedWL != 0 || res.Power != 0 {
		t.Fatal("SkipRoute should skip post-route metrics")
	}
	if res.HPWL <= 0 {
		t.Fatal("HPWL should still be measured")
	}
}

func TestBuildClusteredDesign(t *testing.T) {
	b := tinyBench(89)
	d := b.Design.Clone()
	// Two-cluster split by instance parity.
	assign := make([]int, len(d.Insts))
	for i := range assign {
		assign[i] = i % 2
	}
	shapes := map[int]vpr.Shape{0: {AspectRatio: 1, Utilization: 0.9}, 1: {AspectRatio: 1.5, Utilization: 0.8}}
	cd, clusterInsts, err := BuildClusteredDesign(d, assign, 2, shapes)
	if err != nil {
		t.Fatal(err)
	}
	if len(cd.Insts) != 2 {
		t.Fatalf("cluster insts=%d", len(cd.Insts))
	}
	if err := cd.Validate(); err != nil {
		t.Fatal(err)
	}
	// Shapes respected.
	m1 := cd.Insts[clusterInsts[1]].Master
	ar := m1.Height / m1.Width
	if ar < 1.4 || ar > 1.6 {
		t.Fatalf("cluster 1 AR=%v want 1.5", ar)
	}
	// Ports carried over.
	if len(cd.Ports) != len(d.Ports) {
		t.Fatal("ports lost")
	}
	// Net contraction: all nets must span >= 2 endpoints.
	for _, n := range cd.Nets {
		if len(n.Pins) < 2 {
			t.Fatalf("degenerate clustered net %s", n.Name)
		}
	}
	// Parallel nets merged: far fewer clustered nets than flat nets.
	if len(cd.Nets) >= len(d.Nets) {
		t.Fatalf("no net merging: %d vs %d", len(cd.Nets), len(d.Nets))
	}
}

func TestScaleIONets(t *testing.T) {
	b := tinyBench(90)
	d := b.Design.Clone()
	var ioNet, coreNet string
	for _, n := range d.Nets {
		hasPort := false
		for _, pr := range n.Pins {
			if pr.IsPort() {
				hasPort = true
			}
		}
		if hasPort && ioNet == "" {
			ioNet = n.Name
		}
		if !hasPort && coreNet == "" && len(n.Pins) >= 2 {
			coreNet = n.Name
		}
	}
	scaleIONets(d, 4)
	if d.Net(ioNet).Weight != 4 {
		t.Fatalf("IO net weight=%v", d.Net(ioNet).Weight)
	}
	if d.Net(coreNet).Weight != 1 {
		t.Fatalf("core net weight=%v", d.Net(coreNet).Weight)
	}
}

func TestStringers(t *testing.T) {
	if ToolOpenROAD.String() != "openroad" || ToolInnovus.String() != "innovus" {
		t.Fatal("tool strings")
	}
	if MethodPPAAware.String() != "ppa-aware" || MethodLeiden.String() != "leiden" {
		t.Fatal("method strings")
	}
	if ShapeVPR.String() != "vpr" || ShapeVPRML.String() != "vpr-ml" {
		t.Fatal("shape strings")
	}
}

func TestRunWithBufferRepair(t *testing.T) {
	b := tinyBench(91)
	plain, err := RunDefault(b, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	repaired, err := RunDefault(b, Options{Seed: 9, RepairBuffers: true})
	if err != nil {
		t.Fatal(err)
	}
	if repaired.RoutedWL <= 0 {
		t.Fatal("repair flow produced no routing")
	}
	// Buffering must not catastrophically hurt timing (tiny designs have
	// little to repair; allow sub-ns noise).
	if repaired.TNS < plain.TNS-1e-9 {
		t.Fatalf("repair degraded TNS badly: %v vs %v", repaired.TNS, plain.TNS)
	}
	// Clustered flow with repair also runs.
	if _, err := Run(b, Options{Seed: 9, Shapes: ShapeUniform, RepairBuffers: true}); err != nil {
		t.Fatal(err)
	}
}
