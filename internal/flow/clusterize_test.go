package flow

import (
	"math"
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/netlist"
	"ppaclust/internal/vpr"
)

func TestClusterMasterAreasMatchShape(t *testing.T) {
	spec := designs.TinySpec(601)
	spec.Macros = 1
	b := designs.Generate(spec)
	d := b.Design.Clone()
	assign := make([]int, len(d.Insts))
	for i := range assign {
		assign[i] = i % 3
	}
	shapes := map[int]vpr.Shape{
		0: {AspectRatio: 1.0, Utilization: 0.8},
		1: {AspectRatio: 1.5, Utilization: 0.75},
		2: {AspectRatio: 0.75, Utilization: 0.9},
	}
	cd, clusterInsts, err := BuildClusteredDesign(d, assign, 3, shapes)
	if err != nil {
		t.Fatal(err)
	}
	// Movable member area per cluster.
	area := make([]float64, 3)
	for i, inst := range d.Insts {
		if !inst.Fixed {
			area[assign[i]] += inst.Master.Area()
		}
	}
	for c := 0; c < 3; c++ {
		m := cd.Insts[clusterInsts[c]].Master
		wantArea := area[c] / shapes[c].Utilization
		if math.Abs(m.Area()-wantArea)/wantArea > 0.01 {
			t.Fatalf("cluster %d area %v want %v", c, m.Area(), wantArea)
		}
		gotAR := m.Height / m.Width
		if math.Abs(gotAR-shapes[c].AspectRatio) > 0.01 {
			t.Fatalf("cluster %d AR %v want %v", c, gotAR, shapes[c].AspectRatio)
		}
	}
}

func TestClusteredNetWeightAccumulates(t *testing.T) {
	lib := designs.Lib()
	d := netlist.NewDesign("w", lib)
	d.Core = netlist.Rect{X0: 0, Y0: 0, X1: 50, Y1: 50}
	inv := lib.Master("INV_X1")
	for i := 0; i < 4; i++ {
		if _, err := d.AddInstance("g"+string(rune('0'+i)), inv); err != nil {
			t.Fatal(err)
		}
	}
	// Two parallel nets between the same cluster pair.
	n1, _ := d.AddNet("n1")
	d.Connect(n1, netlist.PinRef{Inst: 0, Pin: "ZN"})
	d.Connect(n1, netlist.PinRef{Inst: 2, Pin: "A"})
	n2, _ := d.AddNet("n2")
	n2.Weight = 3
	d.Connect(n2, netlist.PinRef{Inst: 1, Pin: "ZN"})
	d.Connect(n2, netlist.PinRef{Inst: 3, Pin: "A"})
	assign := []int{0, 0, 1, 1}
	cd, _, err := BuildClusteredDesign(d, assign, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cd.Nets) != 1 {
		t.Fatalf("nets=%d want 1 (parallel merge)", len(cd.Nets))
	}
	if cd.Nets[0].Weight != 4 {
		t.Fatalf("merged weight=%v want 4", cd.Nets[0].Weight)
	}
}

func TestClusteredDesignKeepsFloorplan(t *testing.T) {
	b := designs.Generate(designs.TinySpec(602))
	d := b.Design.Clone()
	assign := make([]int, len(d.Insts))
	cd, _, err := BuildClusteredDesign(d, assign, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cd.Core != d.Core || cd.Die != d.Die {
		t.Fatal("floorplan not carried over")
	}
	if cd.RowHeight != d.RowHeight || cd.SiteWidth != d.SiteWidth {
		t.Fatal("row/site geometry lost")
	}
}
