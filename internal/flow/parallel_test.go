package flow

import (
	"math"
	"testing"

	"ppaclust/internal/designs"
)

// TestRunWorkersEquivalent is the end-to-end determinism check: a full
// clustered flow (PPA-aware clustering over virtual-STA costs, seeded +
// incremental placement, routing, CTS, propagated-clock STA, power) must
// produce bit-identical metrics with Workers=1 and Workers=4.
func TestRunWorkersEquivalent(t *testing.T) {
	for _, name := range []string{"aes", "jpeg"} {
		t.Run(name, func(t *testing.T) {
			spec, _ := designs.Named(name)
			spec.TargetInsts = 600
			b := designs.Generate(spec)
			opt := Options{
				Seed: 3, Tool: ToolInnovus,
				Method: MethodPPAAware, Shapes: ShapeUniform,
			}
			os := opt
			os.Workers = 1
			op := opt
			op.Workers = 4
			rs, err := Run(b, os)
			if err != nil {
				t.Fatal(err)
			}
			rp, err := Run(b, op)
			if err != nil {
				t.Fatal(err)
			}
			cmp := func(field string, a, b float64) {
				if math.Float64bits(a) != math.Float64bits(b) {
					t.Errorf("%s: %v (seq) vs %v (par)", field, a, b)
				}
			}
			cmp("HPWL", rs.HPWL, rp.HPWL)
			cmp("RoutedWL", rs.RoutedWL, rp.RoutedWL)
			cmp("WNS", rs.WNS, rp.WNS)
			cmp("TNS", rs.TNS, rp.TNS)
			cmp("HoldWNS", rs.HoldWNS, rp.HoldWNS)
			cmp("Power", rs.Power, rp.Power)
			cmp("ClockWL", rs.ClockWL, rp.ClockWL)
			if rs.Clusters != rp.Clusters || rs.Singletons != rp.Singletons ||
				rs.ShapedVPR != rp.ShapedVPR || rs.Overflow != rp.Overflow ||
				rs.DRVCap != rp.DRVCap || rs.DRVSlew != rp.DRVSlew {
				t.Errorf("integer metrics differ: seq %+v par %+v", rs, rp)
			}
		})
	}
}
