package flow

import (
	"fmt"
	"os"

	"ppaclust/internal/def"
	"ppaclust/internal/designs"
	"ppaclust/internal/lef"
	"ppaclust/internal/liberty"
	"ppaclust/internal/netlist"
	"ppaclust/internal/sdc"
	"ppaclust/internal/verilog"
)

// Files names the input file set of Algorithm 1 (.v, .lib, .lef, .def, .sdc).
type Files struct {
	Verilog string
	Liberty string
	LEF     string
	DEF     string
	SDC     string
}

// LoadBenchmark assembles a runnable benchmark from the standard file set:
// the Liberty file provides the electrical library, LEF merges in geometry,
// Verilog provides the netlist, the DEF provides floorplan plus port and
// macro preplacement (its nets are ignored in favor of the Verilog
// connectivity), and the SDC provides constraints.
func LoadBenchmark(f Files) (*designs.Benchmark, error) {
	lbf, err := os.Open(f.Liberty)
	if err != nil {
		return nil, fmt.Errorf("flow: liberty: %w", err)
	}
	lib, err := liberty.Parse(lbf)
	lbf.Close()
	if err != nil {
		return nil, fmt.Errorf("flow: liberty: %w", err)
	}
	if f.LEF != "" {
		lf, err := os.Open(f.LEF)
		if err != nil {
			return nil, fmt.Errorf("flow: lef: %w", err)
		}
		_, err = lef.Parse(lf, lib)
		lf.Close()
		if err != nil {
			return nil, fmt.Errorf("flow: lef: %w", err)
		}
	}
	vf, err := os.Open(f.Verilog)
	if err != nil {
		return nil, fmt.Errorf("flow: verilog: %w", err)
	}
	d, err := verilog.Parse(vf, lib)
	vf.Close()
	if err != nil {
		return nil, fmt.Errorf("flow: verilog: %w", err)
	}
	if f.DEF != "" {
		df, err := os.Open(f.DEF)
		if err != nil {
			return nil, fmt.Errorf("flow: def: %w", err)
		}
		fp, err := def.Parse(df, lib)
		df.Close()
		if err != nil {
			return nil, fmt.Errorf("flow: def: %w", err)
		}
		mergeFloorplan(d, fp)
	}
	sf, err := os.Open(f.SDC)
	if err != nil {
		return nil, fmt.Errorf("flow: sdc: %w", err)
	}
	cons, err := sdc.Parse(sf)
	sf.Close()
	if err != nil {
		return nil, fmt.Errorf("flow: sdc: %w", err)
	}
	// Mark clock nets from the SDC clock roots.
	for _, clkPort := range cons.ClockPorts {
		for _, n := range d.Nets {
			for _, pr := range n.Pins {
				if pr.IsPort() && pr.Pin == clkPort {
					n.Clock = true
				}
			}
		}
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("flow: loaded design invalid: %w", err)
	}
	return &designs.Benchmark{Design: d, Cons: cons}, nil
}

// mergeFloorplan copies geometry from a DEF-parsed design into the
// Verilog-parsed design by name: die/core/rows, port placement, instance
// placement and fixed status.
func mergeFloorplan(d, fp *netlist.Design) {
	d.Die, d.Core = fp.Die, fp.Core
	d.RowHeight, d.SiteWidth = fp.RowHeight, fp.SiteWidth
	for _, p := range fp.Ports {
		if dp := d.Port(p.Name); dp != nil && p.Placed {
			dp.X, dp.Y, dp.Placed = p.X, p.Y, true
		}
	}
	for _, inst := range fp.Insts {
		if di := d.Instance(inst.Name); di != nil && (inst.Placed || inst.Fixed) {
			di.X, di.Y = inst.X, inst.Y
			di.Placed = inst.Placed
			di.Fixed = inst.Fixed
		}
	}
}
