package flow

import (
	"fmt"
	"os"

	"ppaclust/internal/def"
	"ppaclust/internal/designs"
	"ppaclust/internal/lef"
	"ppaclust/internal/liberty"
	"ppaclust/internal/netlist"
	"ppaclust/internal/scan"
	"ppaclust/internal/sdc"
	"ppaclust/internal/verilog"
)

// Files names the input file set of Algorithm 1 (.v, .lib, .lef, .def, .sdc).
type Files struct {
	Verilog string
	Liberty string
	LEF     string
	DEF     string
	SDC     string
}

// LoadBenchmark assembles a runnable benchmark from the standard file set:
// the Liberty file provides the electrical library, LEF merges in geometry,
// Verilog provides the netlist, the DEF provides floorplan plus port and
// macro preplacement (its nets are ignored in favor of the Verilog
// connectivity), and the SDC provides constraints. Parsing is strict; parse
// failures surface as *scan.ParseError values carrying file and line.
func LoadBenchmark(f Files) (*designs.Benchmark, error) {
	b, _, err := LoadBenchmarkWith(f, false)
	return b, err
}

// LoadBenchmarkWith loads the file set, optionally in lenient mode: parsers
// skip recoverable malformed fields and report them in the returned warning
// list instead of failing. Structural errors remain fatal either way.
func LoadBenchmarkWith(f Files, lenient bool) (*designs.Benchmark, []*scan.ParseError, error) {
	var warns []*scan.ParseError
	lbf, err := os.Open(f.Liberty)
	if err != nil {
		return nil, nil, fmt.Errorf("flow: liberty: %w", err)
	}
	lib, w, err := liberty.ParseWith(lbf, liberty.Options{File: f.Liberty, Lenient: lenient})
	lbf.Close()
	warns = append(warns, w...)
	if err != nil {
		return nil, warns, fmt.Errorf("flow: liberty: %w", err)
	}
	if f.LEF != "" {
		lf, err := os.Open(f.LEF)
		if err != nil {
			return nil, warns, fmt.Errorf("flow: lef: %w", err)
		}
		_, w, err := lef.ParseWith(lf, lib, lef.Options{File: f.LEF, Lenient: lenient})
		lf.Close()
		warns = append(warns, w...)
		if err != nil {
			return nil, warns, fmt.Errorf("flow: lef: %w", err)
		}
	}
	vf, err := os.Open(f.Verilog)
	if err != nil {
		return nil, warns, fmt.Errorf("flow: verilog: %w", err)
	}
	d, w, err := verilog.ParseWith(vf, lib, verilog.Options{File: f.Verilog, Lenient: lenient})
	vf.Close()
	warns = append(warns, w...)
	if err != nil {
		return nil, warns, fmt.Errorf("flow: verilog: %w", err)
	}
	if f.DEF != "" {
		df, err := os.Open(f.DEF)
		if err != nil {
			return nil, warns, fmt.Errorf("flow: def: %w", err)
		}
		fp, w, err := def.ParseWith(df, lib, def.Options{File: f.DEF, Lenient: lenient})
		df.Close()
		warns = append(warns, w...)
		if err != nil {
			return nil, warns, fmt.Errorf("flow: def: %w", err)
		}
		mergeFloorplan(d, fp)
	}
	sf, err := os.Open(f.SDC)
	if err != nil {
		return nil, warns, fmt.Errorf("flow: sdc: %w", err)
	}
	cons, w, err := sdc.ParseWith(sf, sdc.Options{File: f.SDC, Lenient: lenient})
	sf.Close()
	warns = append(warns, w...)
	if err != nil {
		return nil, warns, fmt.Errorf("flow: sdc: %w", err)
	}
	// Mark clock nets from the SDC clock roots.
	for _, clkPort := range cons.ClockPorts {
		for _, n := range d.Nets {
			for _, pr := range n.Pins {
				if pr.IsPort() && pr.Pin == clkPort {
					n.Clock = true
				}
			}
		}
	}
	if err := d.Validate(); err != nil {
		return nil, warns, fmt.Errorf("flow: loaded design invalid: %w", err)
	}
	return &designs.Benchmark{Design: d, Cons: cons}, warns, nil
}

// mergeFloorplan copies geometry from a DEF-parsed design into the
// Verilog-parsed design by name: die/core/rows, port placement, instance
// placement and fixed status.
func mergeFloorplan(d, fp *netlist.Design) {
	d.Die, d.Core = fp.Die, fp.Core
	d.RowHeight, d.SiteWidth = fp.RowHeight, fp.SiteWidth
	for _, p := range fp.Ports {
		if dp := d.Port(p.Name); dp != nil && p.Placed {
			dp.X, dp.Y, dp.Placed = p.X, p.Y, true
		}
	}
	for _, inst := range fp.Insts {
		if di := d.Instance(inst.Name); di != nil && (inst.Placed || inst.Fixed) {
			di.X, di.Y = inst.X, inst.Y
			di.Placed = inst.Placed
			di.Fixed = inst.Fixed
		}
	}
}
