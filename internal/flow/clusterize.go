package flow

import (
	"fmt"
	"math"
	"sort"

	"ppaclust/internal/features"
	"ppaclust/internal/netlist"
	"ppaclust/internal/vpr"
)

func featOptions(seed int64) features.Options {
	return features.Options{Seed: seed}
}

// BuildClusteredDesign contracts a design under a cluster assignment into a
// new design with one instance per cluster (Algorithm 1 line 10, plus the
// cluster .lef models of line 13). Each cluster's footprint comes from its
// selected shape; fixed instances (preplaced macros) contribute no area, as
// they do not move with their cluster. Parallel inter-cluster nets merge
// with accumulated weight, which is what makes seed placement fast.
//
// It returns the clustered design and, per cluster, the instance ID of its
// cluster cell. The assignment must cover every instance of d with a
// cluster id in [0, nClusters); a malformed assignment is an error, not a
// panic, so flow callers can surface it with design context.
func BuildClusteredDesign(d *netlist.Design, assign []int, nClusters int,
	shapes map[int]vpr.Shape) (*netlist.Design, []int, error) {

	if len(assign) != len(d.Insts) {
		return nil, nil, fmt.Errorf("clusterize %s: assignment covers %d of %d instances",
			d.Name, len(assign), len(d.Insts))
	}
	for inst, c := range assign {
		if c < 0 || c >= nClusters {
			return nil, nil, fmt.Errorf("clusterize %s: instance %s assigned to cluster %d of %d",
				d.Name, d.Insts[inst].Name, c, nClusters)
		}
	}

	lib := netlist.NewLibrary("clusters")
	cd := netlist.NewDesign(d.Name+"_clustered", lib)
	cd.Die, cd.Core = d.Die, d.Core
	cd.RowHeight, cd.SiteWidth = d.RowHeight, d.SiteWidth

	area := make([]float64, nClusters)
	for inst, c := range assign {
		if d.Insts[inst].Fixed {
			continue
		}
		area[c] += d.Insts[inst].Master.Area()
	}
	clusterInsts := make([]int, nClusters)
	for c := 0; c < nClusters; c++ {
		shape, ok := shapes[c]
		if !ok {
			shape = vpr.UniformShape
		}
		a := area[c] / shape.Utilization
		if a < 1 {
			a = 1
		}
		w := math.Sqrt(a / shape.AspectRatio)
		h := w * shape.AspectRatio
		m := &netlist.Master{
			Name:   fmt.Sprintf("CLUST_%d", c),
			Class:  netlist.ClassCore,
			Width:  w,
			Height: h,
		}
		m.AddPin(netlist.MasterPin{Name: "P", Dir: netlist.DirInout})
		if err := lib.AddMaster(m); err != nil {
			return nil, nil, fmt.Errorf("clusterize %s: cluster master %d: %w", d.Name, c, err)
		}
		ci, err := cd.AddInstance(fmt.Sprintf("clust_%d", c), m)
		if err != nil {
			return nil, nil, fmt.Errorf("clusterize %s: cluster instance %d: %w", d.Name, c, err)
		}
		clusterInsts[c] = ci.ID
	}

	// Ports carry over verbatim. Duplicate port names would come from a
	// corrupt input design; report them with design context.
	for _, p := range d.Ports {
		np, err := cd.AddPort(p.Name, p.Dir)
		if err != nil {
			return nil, nil, fmt.Errorf("clusterize %s: port %s: %w", d.Name, p.Name, err)
		}
		np.X, np.Y, np.Placed = p.X, p.Y, p.Placed
	}

	// Contract nets, merging parallels.
	merged := map[string]*netlist.Net{}
	var kb []byte
	for _, n := range d.Nets {
		clusterSet := map[int]bool{}
		var ports []string
		for _, pr := range n.Pins {
			if pr.IsPort() {
				ports = append(ports, pr.Pin)
				continue
			}
			clusterSet[assign[pr.Inst]] = true
		}
		if len(clusterSet)+len(ports) < 2 || len(clusterSet) == 0 {
			continue
		}
		cids := make([]int, 0, len(clusterSet))
		for c := range clusterSet {
			cids = append(cids, c)
		}
		sort.Ints(cids)
		sort.Strings(ports)
		kb = kb[:0]
		for _, c := range cids {
			kb = append(kb, fmt.Sprintf("c%d,", c)...)
		}
		for _, p := range ports {
			kb = append(kb, 'p')
			kb = append(kb, p...)
			kb = append(kb, ',')
		}
		k := string(kb)
		if ex, ok := merged[k]; ok {
			ex.Weight += n.Weight
			continue
		}
		nn, err := cd.AddNet(fmt.Sprintf("cn%d", len(cd.Nets)))
		if err != nil {
			return nil, nil, fmt.Errorf("clusterize %s: net %s: %w", d.Name, n.Name, err)
		}
		nn.Weight = n.Weight
		nn.Clock = n.Clock
		for _, c := range cids {
			cd.Connect(nn, netlist.PinRef{Inst: clusterInsts[c], Pin: "P"})
		}
		for _, p := range ports {
			cd.Connect(nn, netlist.PinRef{Inst: -1, Pin: p})
		}
		merged[k] = nn
	}
	return cd, clusterInsts, nil
}
