// Package flow orchestrates the paper's Algorithm 1: PPA-aware clustering of
// the input netlist, ML-accelerated (or exact) V-P&R cluster shaping, seeded
// placement in either the OpenROAD or the Innovus style, and post-route PPA
// evaluation (HPWL, routed wirelength, WNS, TNS, power).
package flow

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"ppaclust/internal/cluster"
	"ppaclust/internal/community"
	"ppaclust/internal/cts"
	"ppaclust/internal/designs"
	"ppaclust/internal/gnn"
	"ppaclust/internal/hier"
	"ppaclust/internal/netlist"
	netopt "ppaclust/internal/opt"
	"ppaclust/internal/par"
	"ppaclust/internal/place"
	"ppaclust/internal/power"
	"ppaclust/internal/route"
	"ppaclust/internal/sta"
	"ppaclust/internal/vpr"
)

// Tool selects the seeded-placement recipe of Algorithm 1 lines 15-25.
type Tool int

// Tools.
const (
	// ToolOpenROAD scales IO net weights by 4 and runs incremental global
	// placement without region constraints (lines 22-25).
	ToolOpenROAD Tool = iota
	// ToolInnovus builds region constraints from the shaped clusters before
	// incremental placement (lines 16-20).
	ToolInnovus
)

func (t Tool) String() string {
	if t == ToolInnovus {
		return "innovus"
	}
	return "openroad"
}

// Method selects the clustering algorithm.
type Method int

// Clustering methods.
const (
	// MethodPPAAware is the paper's contribution: hierarchy grouping
	// constraints + timing costs + switching costs in multilevel FC.
	MethodPPAAware Method = iota
	// MethodMFC is TritonPart's default multilevel FC (connectivity only).
	MethodMFC
	// MethodLeiden uses Leiden community detection (Table 5 baseline).
	MethodLeiden
	// MethodLouvain uses Louvain communities (the blob placement of [9]).
	MethodLouvain
)

func (m Method) String() string {
	switch m {
	case MethodMFC:
		return "mfc"
	case MethodLeiden:
		return "leiden"
	case MethodLouvain:
		return "louvain"
	default:
		return "ppa-aware"
	}
}

// ShapeMode selects how cluster shapes are assigned (Table 6 ablation).
type ShapeMode int

// Shape modes.
const (
	// ShapeVPRML predicts shapes with the trained GNN (requires Model).
	ShapeVPRML ShapeMode = iota
	// ShapeVPR runs the exact 20-candidate V-P&R sweep.
	ShapeVPR
	// ShapeUniform assigns utilization 0.9, aspect ratio 1.0 everywhere.
	ShapeUniform
	// ShapeRandom assigns a random candidate shape per cluster.
	ShapeRandom
)

func (s ShapeMode) String() string {
	switch s {
	case ShapeVPR:
		return "vpr"
	case ShapeUniform:
		return "uniform"
	case ShapeRandom:
		return "random"
	default:
		return "vpr-ml"
	}
}

// Options configures one flow run.
type Options struct {
	Tool           Tool
	Method         Method
	Shapes         ShapeMode
	Model          *gnn.Model // required for ShapeVPRML
	NumPaths       int        // |P|, default 100000
	Alpha          float64    // Eq. 3 connectivity weight, default 1
	Beta           float64    // Eq. 3 timing weight, default 1; negative = disabled (0)
	Gamma          float64    // Eq. 3 switching weight, default 1; negative = disabled (0)
	Mu             float64    // Eq. 2 exponent, default 2
	NoHierarchy    bool       // drop the hierarchy grouping constraints (ablation)
	TargetClusters int        // 0 = auto (~N/400, see cluster.Options)
	VPRMinInsts    int        // shape-selection gate; default 50 (paper: 200)
	IOWeightScale  float64    // OpenROAD IO net weight scale, default 4
	Seed           int64
	SkipRoute      bool // post-place evaluation only (hyperparameter study)
	// RepairBuffers runs post-placement buffer insertion on long and
	// high-fanout nets before evaluation (the opt_design analogue). Applied
	// identically by Run and RunDefault so comparisons stay fair.
	RepairBuffers bool
	// TimingDriven enables STA-feedback net reweighting at the flat
	// placement's overflow checkpoints (place.Options.TimingDriven), using
	// the benchmark's constraints. Applied identically by Run and
	// RunDefault.
	TimingDriven bool
	// RoutabilityDriven enables congestion-feedback cell inflation at the
	// flat placement's overflow checkpoints
	// (place.Options.RoutabilityDriven). Applied identically by Run and
	// RunDefault.
	RoutabilityDriven bool
	// Workers bounds the goroutines used by the STA, clustering, placement,
	// routing and CTS kernels: 0 = auto (PPACLUST_WORKERS, else GOMAXPROCS),
	// 1 = sequential. Results are bit-identical for every worker count.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.NumPaths <= 0 {
		o.NumPaths = 100000
	}
	if o.Alpha == 0 {
		o.Alpha = 1
	}
	if o.Beta == 0 {
		o.Beta = 1
	}
	if o.Gamma == 0 {
		o.Gamma = 1
	}
	if o.Mu == 0 {
		o.Mu = 2
	}
	if o.VPRMinInsts <= 0 {
		o.VPRMinInsts = 50
	}
	if o.IOWeightScale <= 0 {
		o.IOWeightScale = 4
	}
	return o
}

// Result carries every metric Algorithm 1 returns plus runtime breakdown.
type Result struct {
	HPWL     float64
	RoutedWL float64 // microns, signal + clock tree
	WNS      float64 // seconds (<= 0)
	TNS      float64 // seconds (<= 0)
	HoldWNS  float64 // worst hold slack (seconds, <= 0 when violating)
	HoldTNS  float64 // total negative hold slack (seconds)
	DRVCap   int     // max-capacitance violations
	DRVSlew  int     // max-transition violations
	Power    float64 // watts, including clock tree
	PowerRep power.Report
	ClockWL  float64
	Overflow int
	// MaxCongestion is the routing grid's worst edge utilization
	// (use/capacity) from the evaluation route.
	MaxCongestion float64

	Clusters   int
	Singletons int
	ShapedVPR  int // clusters that went through shape selection

	// Placed is the final placed-and-evaluated design (a clone of the
	// input benchmark's design), for DEF export or inspection.
	Placed *netlist.Design

	ClusterTime   time.Duration
	ShapeTime     time.Duration
	SeedPlaceTime time.Duration
	IncrPlaceTime time.Duration
	RouteTime     time.Duration
	// PlaceTime is the clustering-flow placement cost compared against the
	// default flow in Table 2: clustering + seed + incremental placement.
	PlaceTime time.Duration
}

// Run executes the clustered flow on a copy of the benchmark design and
// returns the metrics. The benchmark's design is not mutated.
func Run(b *designs.Benchmark, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	d := b.Design.Clone()
	res := &Result{}
	// Validate the int32 compact-CSR capacity here at the boundary, so an
	// oversized design fails with an error instead of tripping the
	// must-style Compact panic deep inside a stage.
	if _, err := d.CompactChecked(); err != nil {
		return nil, err
	}

	// ---- Clustering (Algorithm 1 lines 2-10) ----
	t0 := time.Now()
	assign, nClusters, an, err := clusterNetlist(d, b.Cons, opt)
	if err != nil {
		return nil, err
	}
	res.Clusters = nClusters
	res.ClusterTime = time.Since(t0)

	// ---- Cluster shapes (lines 12-13) ----
	t0 = time.Now()
	shapes, shaped, err := selectShapes(d, assign, nClusters, opt)
	if err != nil {
		return nil, err
	}
	res.ShapedVPR = len(shaped)
	res.ShapeTime = time.Since(t0)

	// ---- Seed placement of the clustered netlist (lines 15-25) ----
	t0 = time.Now()
	cd, clusterInsts, err := BuildClusteredDesign(d, assign, nClusters, shapes)
	if err != nil {
		return nil, err
	}
	if opt.Tool == ToolOpenROAD {
		scaleIONets(cd, opt.IOWeightScale)
	}
	place.Global(cd, place.Options{Seed: opt.Seed, Workers: opt.Workers})
	// Cluster cells are macro-sized; remove overlaps so cluster footprints
	// (and the region constraints derived from them) are disjoint.
	place.RemoveOverlaps(cd)
	res.SeedPlaceTime = time.Since(t0)

	// Place instances at their cluster centers.
	t0 = time.Now()
	for instID, c := range assign {
		inst := d.Insts[instID]
		if inst.Fixed {
			continue
		}
		ci := cd.Insts[clusterInsts[c]]
		inst.X = ci.CenterX() - inst.Master.Width/2
		inst.Y = ci.CenterY() - inst.Master.Height/2
		inst.Placed = true
	}
	// Incremental flat placement. The timing/routability feedback runs here,
	// on the flat design — the clustered seed placement's synthetic masters
	// have no timing arcs to analyze.
	popt := place.Options{Seed: opt.Seed, Incremental: true, Legalize: true, AnchorWeight: 0.1,
		Workers: opt.Workers,
		TimingDriven: opt.TimingDriven, RoutabilityDriven: opt.RoutabilityDriven,
		TimingCons: b.Cons}
	if opt.Tool == ToolInnovus {
		// Region constraints guide the incremental placement and are then
		// removed (Algorithm 1 lines 18-20): soft regions.
		popt.Regions = buildRegions(d, assign, shaped, cd, clusterInsts)
		popt.SoftRegions = true
		popt.RegionIterations = 2
	}
	place.Global(d, popt)
	place.Detailed(d, place.DetailedOptions{Seed: opt.Seed})
	res.IncrPlaceTime = time.Since(t0)
	res.PlaceTime = res.ClusterTime + res.SeedPlaceTime + res.IncrPlaceTime

	if err := maybeRepair(d, opt); err != nil {
		return nil, err
	}
	// ---- Evaluation (lines 27-30) ----
	evaluate(d, b.Cons, opt, res, an)
	res.Placed = d
	return res, nil
}

// maybeRepair runs optional buffer insertion followed by re-legalization.
func maybeRepair(d *netlist.Design, o Options) error {
	if !o.RepairBuffers {
		return nil
	}
	buf := d.Lib.Master("BUF_X4")
	if buf == nil {
		return fmt.Errorf("flow: RepairBuffers needs BUF_X4 in the library")
	}
	if _, err := netopt.InsertBuffers(d, netopt.BufferOptions{BufMaster: buf}); err != nil {
		return err
	}
	place.Legalize(d)
	return nil
}

// RunDefault executes the flat (no clustering, no V-P&R) baseline flow.
func RunDefault(b *designs.Benchmark, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	d := b.Design.Clone()
	res := &Result{}
	if _, err := d.CompactChecked(); err != nil {
		return nil, err
	}
	t0 := time.Now()
	place.Global(d, place.Options{Seed: opt.Seed, Legalize: true, Workers: opt.Workers,
		TimingDriven: opt.TimingDriven, RoutabilityDriven: opt.RoutabilityDriven,
		TimingCons: b.Cons})
	place.Detailed(d, place.DetailedOptions{Seed: opt.Seed})
	res.IncrPlaceTime = time.Since(t0)
	res.PlaceTime = res.IncrPlaceTime
	if err := maybeRepair(d, opt); err != nil {
		return nil, err
	}
	evaluate(d, b.Cons, opt, res, nil)
	res.Placed = d
	return res, nil
}

// clusterNetlist runs the selected clustering method and returns a dense
// instance->cluster assignment. The PPA-aware method also returns the
// zero-wire analyzer it timed the netlist with, so evaluate can reuse the
// timing graph (switched to placed parasitics) instead of rebuilding it.
func clusterNetlist(d *netlist.Design, cons sta.Constraints, opt Options) ([]int, int, *sta.Analyzer, error) {
	view := d.ToHypergraph()
	switch opt.Method {
	case MethodLeiden, MethodLouvain:
		g := view.H.CliqueExpand()
		var assign []int
		if opt.Method == MethodLeiden {
			assign = community.Leiden(g, community.Options{Seed: opt.Seed})
		} else {
			assign = community.Louvain(g, community.Options{Seed: opt.Seed})
		}
		return assign, community.NumCommunities(assign), nil, nil
	case MethodMFC:
		res := cluster.MultilevelFC(view.H, cluster.Options{
			Alpha: 1, TargetClusters: targetFor(opt, len(d.Insts)), Seed: opt.Seed,
			Workers: opt.Workers,
		})
		return res.Assign, res.NumClusters, nil, nil
	case MethodPPAAware:
		// Hierarchy-based grouping constraints (Algorithm 2).
		var groups []int
		if !opt.NoHierarchy {
			if hres, ok := hier.Cluster(d, view.H); ok {
				groups = hres.Assign
			}
		}
		// Timing and switching info from the virtual STA. The netlist is
		// unplaced at this point, so wire parasitics are ignored — timing
		// criticality reflects logic depth, as in the paper's pre-placement
		// OpenSTA extraction.
		zc := cons
		zc.ZeroWire = true
		an := sta.New(d, zc)
		an.Workers = opt.Workers
		paths := an.TopPaths(opt.NumPaths)
		pathNets := make([][]int, len(paths))
		slacks := make([]float64, len(paths))
		for i, p := range paths {
			slacks[i] = p.Slack
			for _, netID := range p.Nets {
				if e := view.EdgeOfNet[netID]; e >= 0 {
					pathNets[i] = append(pathNets[i], e)
				}
			}
		}
		tCost := cluster.TimingCosts(pathNets, slacks, cons.ClockPeriod, view.H.NumEdges())
		netAct := an.NetActivity()
		edgeAct := make([]float64, view.H.NumEdges())
		for e, netID := range view.NetOfEdge {
			edgeAct[e] = netAct[netID]
		}
		sCost := cluster.SwitchCosts(edgeAct, opt.Mu)
		res := cluster.MultilevelFC(view.H, cluster.Options{
			Alpha: opt.Alpha, Beta: nonNegative(opt.Beta), Gamma: nonNegative(opt.Gamma),
			TargetClusters: targetFor(opt, len(d.Insts)), Seed: opt.Seed,
			Groups:         groups,
			EdgeTimingCost: tCost,
			EdgeSwitchCost: sCost,
			Workers:        opt.Workers,
		})
		return res.Assign, res.NumClusters, an, nil
	}
	return nil, 0, nil, fmt.Errorf("flow: unknown clustering method %d", opt.Method)
}

// selectShapes assigns a shape to every cluster. Clusters above the VPR gate
// go through the selected shape engine and are marked as shaped (they will
// receive region constraints in Innovus mode, whatever the engine); the rest
// use the uniform shape without a region.
func selectShapes(d *netlist.Design, assign []int, nClusters int, opt Options) (map[int]vpr.Shape, map[int]bool, error) {
	shapes := make(map[int]vpr.Shape, nClusters)
	shaped := make(map[int]bool)
	members := make([][]int, nClusters)
	for inst, c := range assign {
		members[c] = append(members[c], inst)
	}
	rng := rand.New(rand.NewSource(opt.Seed + 5))
	cands := vpr.ShapeCandidates()
	for c := 0; c < nClusters; c++ {
		shapes[c] = vpr.UniformShape
		if len(members[c]) <= opt.VPRMinInsts {
			continue
		}
		shaped[c] = true
		switch opt.Shapes {
		case ShapeUniform:
			// keep uniform
		case ShapeRandom:
			shapes[c] = cands[rng.Intn(len(cands))]
		case ShapeVPR:
			sub, err := vpr.InduceSubNetlist(d, members[c])
			if err != nil {
				return nil, nil, err
			}
			best, _ := vpr.BestShape(sub, vpr.Runner{Opt: vpr.Options{Seed: opt.Seed}})
			shapes[c] = best
		case ShapeVPRML:
			if opt.Model == nil {
				return nil, nil, fmt.Errorf("flow: ShapeVPRML requires a trained model")
			}
			sub, err := vpr.InduceSubNetlist(d, members[c])
			if err != nil {
				return nil, nil, err
			}
			g := gnn.BuildGraphInput(sub, featOptions(opt.Seed))
			shapes[c] = opt.Model.PredictBestShape(g)
		}
	}
	return shapes, shaped, nil
}

// scaleIONets multiplies the weight of nets touching top-level ports by the
// IO weight scale ([9]'s x4 rule, Algorithm 1 line 22).
func scaleIONets(d *netlist.Design, scale float64) {
	for _, n := range d.Nets {
		for _, pr := range n.Pins {
			if pr.IsPort() {
				n.Weight *= scale
				break
			}
		}
	}
}

// regionUtil is the cell utilization every region is drawn at, regardless
// of the cluster's V-P&R shape. Keeping region *area* shape-independent
// means shape choice influences the flow through seed geometry and packing,
// not through how much slack the region grants the incremental placer.
const regionUtil = 0.55

// buildRegions creates the per-instance region constraints of the Innovus
// recipe: each shaped cluster's region is centered on its seed footprint,
// carries the shape's aspect ratio, holds the cluster's cells at regionUtil,
// and is clamped into the core.
func buildRegions(d *netlist.Design, assign []int, shaped map[int]bool,
	cd *netlist.Design, clusterInsts []int) map[int]netlist.Rect {

	regions := make(map[int]netlist.Rect)
	core := d.Core
	// Cell area per cluster (movable cells only).
	area := make([]float64, len(clusterInsts))
	for inst, c := range assign {
		if !d.Insts[inst].Fixed {
			area[c] += d.Insts[inst].Master.Area()
		}
	}
	rects := make([]netlist.Rect, len(clusterInsts))
	for c, ii := range clusterInsts {
		ci := cd.Insts[ii]
		ar := ci.Master.Height / ci.Master.Width
		if ar <= 0 {
			ar = 1
		}
		ra := area[c] / regionUtil
		w := mathSqrt(ra / ar)
		h := w * ar
		cx, cy := ci.CenterX(), ci.CenterY()
		r := netlist.Rect{X0: cx - w/2, Y0: cy - h/2, X1: cx + w/2, Y1: cy + h/2}
		if r.X0 < core.X0 {
			r.X0 = core.X0
		}
		if r.Y0 < core.Y0 {
			r.Y0 = core.Y0
		}
		if r.X1 > core.X1 {
			r.X1 = core.X1
		}
		if r.Y1 > core.Y1 {
			r.Y1 = core.Y1
		}
		rects[c] = r
	}
	for inst, c := range assign {
		if d.Insts[inst].Fixed {
			continue
		}
		if shaped[c] {
			regions[inst] = rects[c]
		}
	}
	return regions
}

// nonNegative maps the "negative = disabled" convention to a weight.
func nonNegative(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// targetFor resolves the FC cluster-count target: the user's explicit value,
// else the cluster package's size-scaled default.
func targetFor(opt Options, n int) int {
	return opt.TargetClusters
}

func mathSqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// evaluate fills HPWL and (unless SkipRoute) post-route PPA into res. When
// the clustering stage already built an analyzer (PPA-aware method), it is
// reused: the graph topology is unchanged, so switching it from zero-wire to
// placed parasitics and refreshing via Invalidate/Update yields bit-identical
// results to a fresh sta.New. Buffer repair inserts instances and nets — a
// topology change — so the analyzer is rebuilt in that case.
func evaluate(d *netlist.Design, cons sta.Constraints, opt Options, res *Result, an *sta.Analyzer) {
	res.HPWL = d.HPWLWorkers(par.Workers(opt.Workers))
	if opt.SkipRoute {
		return
	}
	t0 := time.Now()
	rres := route.GlobalRoute(d, route.Options{Workers: opt.Workers})
	res.RouteTime = time.Since(t0)
	res.Overflow = rres.Overflow
	res.MaxCongestion = rres.MaxCongestion

	// CTS on the clock net (if any), then propagated-clock STA.
	if an == nil || opt.RepairBuffers {
		an = sta.New(d, cons)
		an.Workers = opt.Workers
	} else {
		an.SetZeroWire(cons.ZeroWire)
		an.Update()
	}
	var clockPower float64
	for _, n := range d.Nets {
		if !n.Clock {
			continue
		}
		copt := cts.Options{BufMaster: d.Lib.Master("CLKBUF_X2"), SkipArrivalMap: true, Workers: opt.Workers}
		cres := cts.Synthesize(d, n, copt)
		if len(cres.ArrivalList) > 0 {
			an.SetClockArrivalList(cres.ArrivalList)
			cres.EstimatePower(copt, cons.ClockPeriod, power.DefaultVdd)
			clockPower += cres.Power
			res.ClockWL += cres.WirelengthUM
		}
		break // single clock domain in our benchmarks
	}
	res.RoutedWL = rres.WirelengthUM + res.ClockWL
	sum := an.Timing()
	res.WNS = sum.WNS
	res.TNS = sum.TNS
	hold := an.HoldTiming()
	res.HoldWNS = hold.WHS
	res.HoldTNS = hold.THS
	drv := an.DRV()
	res.DRVCap = drv.MaxCapViolations
	res.DRVSlew = drv.MaxSlewViolations
	res.PowerRep = power.Analyze(an, power.DefaultVdd)
	res.Power = res.PowerRep.Total() + clockPower
}
