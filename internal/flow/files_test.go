package flow

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"ppaclust/internal/def"
	"ppaclust/internal/designs"
	"ppaclust/internal/lef"
	"ppaclust/internal/liberty"
	"ppaclust/internal/sdc"
	"ppaclust/internal/verilog"
)

// TestLoadBenchmarkRoundTrip writes a benchmark out as the five standard
// files, loads it back, and runs the full flow on the file-loaded design —
// the complete Algorithm 1 input path.
func TestLoadBenchmarkRoundTrip(t *testing.T) {
	b := designs.Generate(designs.TinySpec(201))
	dir := t.TempDir()
	write := func(name string, fn func(f *os.File) error) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := fn(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	files := Files{
		Verilog: write("t.v", func(f *os.File) error { return verilog.Write(f, b.Design) }),
		DEF:     write("t.def", func(f *os.File) error { return def.Write(f, b.Design) }),
		SDC:     write("t.sdc", func(f *os.File) error { return sdc.Write(f, b.Cons) }),
		Liberty: write("t.lib", func(f *os.File) error { return liberty.Write(f, b.Design.Lib) }),
		LEF:     write("t.lef", func(f *os.File) error { return lef.Write(f, b.Design.Lib) }),
	}
	loaded, err := LoadBenchmark(files)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Design.Insts) != len(b.Design.Insts) {
		t.Fatalf("insts %d != %d", len(loaded.Design.Insts), len(b.Design.Insts))
	}
	if math.Abs(loaded.Cons.ClockPeriod-b.Cons.ClockPeriod) > 1e-15 {
		t.Fatalf("clock period %v != %v", loaded.Cons.ClockPeriod, b.Cons.ClockPeriod)
	}
	if len(loaded.Cons.ClockPorts) != 1 || loaded.Cons.ClockPorts[0] != "clk" {
		t.Fatalf("clock ports %v", loaded.Cons.ClockPorts)
	}
	// Floorplan must have merged.
	if math.Abs(loaded.Design.Core.W()-b.Design.Core.W()) > 1.5 {
		t.Fatalf("core %v != %v", loaded.Design.Core, b.Design.Core)
	}
	if loaded.Design.RowHeight == 0 || loaded.Design.SiteWidth == 0 {
		t.Fatal("row/site geometry lost")
	}
	// Clock net flagged from SDC.
	clk := loaded.Design.Net("clk")
	if clk == nil || !clk.Clock {
		t.Fatal("clock net not marked")
	}
	// The full flow must run on the loaded benchmark.
	res, err := Run(loaded, Options{Seed: 1, Shapes: ShapeUniform})
	if err != nil {
		t.Fatal(err)
	}
	if res.RoutedWL <= 0 || res.TNS > 0 {
		t.Fatalf("bad metrics from file-loaded flow: %+v", res)
	}
	// And should be in the same ballpark as the in-memory flow.
	ref, err := Run(b, Options{Seed: 1, Shapes: ShapeUniform})
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWL < 0.5*ref.HPWL || res.HPWL > 2.0*ref.HPWL {
		t.Fatalf("file-loaded HPWL %v vs in-memory %v", res.HPWL, ref.HPWL)
	}
}

func TestLoadBenchmarkMissingFiles(t *testing.T) {
	if _, err := LoadBenchmark(Files{Verilog: "/nonexistent.v", Liberty: "/nonexistent.lib", SDC: "/nonexistent.sdc"}); err == nil {
		t.Fatal("expected error")
	}
}
