package flow

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ppaclust/internal/def"
	"ppaclust/internal/designs"
	"ppaclust/internal/lef"
	"ppaclust/internal/liberty"
	"ppaclust/internal/scan"
	"ppaclust/internal/sdc"
	"ppaclust/internal/verilog"
	"ppaclust/internal/vpr"
)

// writeBenchFiles emits the five standard files for a generated benchmark
// and returns the Files set plus the directory for corrupting them.
func writeBenchFiles(t *testing.T, seed int64) (Files, string) {
	t.Helper()
	b := designs.Generate(designs.TinySpec(seed))
	dir := t.TempDir()
	write := func(name string, fn func(f *os.File) error) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := fn(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	return Files{
		Verilog: write("t.v", func(f *os.File) error { return verilog.Write(f, b.Design) }),
		DEF:     write("t.def", func(f *os.File) error { return def.Write(f, b.Design) }),
		SDC:     write("t.sdc", func(f *os.File) error { return sdc.Write(f, b.Cons) }),
		Liberty: write("t.lib", func(f *os.File) error { return liberty.Write(f, b.Design.Lib) }),
		LEF:     write("t.lef", func(f *os.File) error { return lef.Write(f, b.Design.Lib) }),
	}, dir
}

// TestLoadBenchmarkCorruptInputs feeds a truncated DEF and a flagless SDC
// through the full benchmark loader and asserts each fails with a clean
// *scan.ParseError naming the on-disk file — no panics, no silent
// defaults. This is the flow-level regression for the former panic sites
// in the format readers.
func TestLoadBenchmarkCorruptInputs(t *testing.T) {
	t.Run("truncated def", func(t *testing.T) {
		files, _ := writeBenchFiles(t, 211)
		data, err := os.ReadFile(files.DEF)
		if err != nil {
			t.Fatal(err)
		}
		// Cut the file mid-COMPONENTS, mid-line.
		cut := len(data) / 2
		if err := os.WriteFile(files.DEF, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = LoadBenchmark(files)
		if err == nil {
			// A mid-line cut can still parse if it lands between items; force
			// a malformed line instead.
			if err := os.WriteFile(files.DEF,
				append(data[:cut], []byte("\nROW r site 0 0 N DO 10 BY 2 STEP 400\n")...), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err = LoadBenchmark(files)
		}
		if err == nil {
			t.Fatal("corrupt DEF accepted")
		}
		var pe *scan.ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("error is not a *scan.ParseError: %T: %v", err, err)
		}
		if !strings.HasSuffix(pe.File, "t.def") {
			t.Fatalf("error does not name the DEF file: %v", pe)
		}
	})
	t.Run("flagless sdc", func(t *testing.T) {
		files, _ := writeBenchFiles(t, 211)
		if err := os.WriteFile(files.SDC,
			[]byte("create_clock -name clk -period\nset_input_delay 0.1 -clock clk [all_inputs]\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := LoadBenchmark(files)
		if err == nil {
			t.Fatal("flagless create_clock accepted")
		}
		var pe *scan.ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("error is not a *scan.ParseError: %T: %v", err, err)
		}
		if !strings.HasSuffix(pe.File, "t.sdc") || pe.Line != 1 {
			t.Fatalf("wrong provenance: %v", pe)
		}
		if !strings.Contains(pe.Msg, "last token") {
			t.Fatalf("period-at-end-of-line not diagnosed: %v", pe)
		}
	})
	t.Run("lenient load collects warnings", func(t *testing.T) {
		files, _ := writeBenchFiles(t, 211)
		data, err := os.ReadFile(files.DEF)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(files.DEF,
			append(data, []byte("ROW r site 0 0 N DO 10 BY 2 STEP 400\n")...), 0o644); err != nil {
			t.Fatal(err)
		}
		b, warns, err := LoadBenchmarkWith(files, true)
		if err != nil {
			t.Fatalf("lenient load failed: %v", err)
		}
		if b == nil || len(warns) == 0 {
			t.Fatalf("expected warnings from lenient load, got %v", warns)
		}
		if !strings.HasSuffix(warns[0].File, "t.def") {
			t.Fatalf("warning does not name its file: %v", warns[0])
		}
	})
}

// TestBuildClusteredDesignErrors checks the de-panicked clusterizer reports
// malformed assignments with design context.
func TestBuildClusteredDesignErrors(t *testing.T) {
	b := designs.Generate(designs.TinySpec(212))
	d := b.Design.Clone()
	short := make([]int, len(d.Insts)-1)
	if _, _, err := BuildClusteredDesign(d, short, 2, nil); err == nil ||
		!strings.Contains(err.Error(), d.Name) {
		t.Fatalf("short assignment not reported with design context: %v", err)
	}
	bad := make([]int, len(d.Insts))
	bad[0] = 7
	if _, _, err := BuildClusteredDesign(d, bad, 2, map[int]vpr.Shape{}); err == nil ||
		!strings.Contains(err.Error(), "cluster 7 of 2") {
		t.Fatalf("out-of-range cluster id not reported: %v", err)
	}
	neg := make([]int, len(d.Insts))
	neg[0] = -1
	if _, _, err := BuildClusteredDesign(d, neg, 2, nil); err == nil {
		t.Fatal("negative cluster id accepted")
	}
}
