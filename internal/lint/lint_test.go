package lint_test

import (
	"os"
	"strings"
	"testing"

	"ppaclust/internal/lint"
	"ppaclust/internal/lint/linttest"
)

// The fixture packages carry at least one real (pre-fix) diagnostic per
// check plus the approved alternatives and a written-reason suppression, so
// these tests pin both halves of each contract: what fires and what stays
// silent.

func TestMapOrderFixture(t *testing.T) {
	linttest.RunDir(t, "testdata/maporder", "ppaclust/internal/sta", "maporder")
}

func TestNoPanicFixture(t *testing.T) {
	linttest.RunDir(t, "testdata/nopanic", "ppaclust/internal/fixture", "nopanic")
}

func TestRawIndexFixture(t *testing.T) {
	linttest.RunDir(t, "testdata/rawindex", "ppaclust/internal/def", "rawindex")
}

func TestErrDropFixture(t *testing.T) {
	linttest.RunDir(t, "testdata/errdrop", "ppaclust/internal/fixtureed", "errdrop")
}

func TestPrintLibFixture(t *testing.T) {
	linttest.RunDir(t, "testdata/printlib", "ppaclust/internal/fixturepl", "printlib")
}

func TestPreallocFixture(t *testing.T) {
	linttest.RunDir(t, "testdata/prealloc", "ppaclust/internal/place", "prealloc")
}

func TestParShareFixture(t *testing.T) {
	linttest.RunDir(t, "testdata/parshare", "ppaclust/internal/fixturepar", "parshare")
}

func TestI32TruncFixture(t *testing.T) {
	linttest.RunDir(t, "testdata/i32trunc", "ppaclust/internal/netlist", "i32trunc")
}

func TestNDSourceFixture(t *testing.T) {
	linttest.RunDir(t, "testdata/ndsource", "ppaclust/internal/fixturend", "ndsource")
}

// TestNDSourceAllowedPackages pins the allowed side: the same time.Now call
// that fires in a library package is silent under flow's import path. The
// fixture carries no want annotations, so RunDir asserts zero findings.
func TestNDSourceAllowedPackages(t *testing.T) {
	linttest.RunDir(t, "testdata/ndsource_allowed", "ppaclust/internal/flow", "ndsource")
}

// TestSuppressContract covers malformed directives: they are reported under
// the "suppress" check and silence nothing.
func TestSuppressContract(t *testing.T) {
	linttest.RunDir(t, "testdata/suppress", "ppaclust/internal/fixturesup", "nopanic")
}

// TestSuppressionAudit pins the -suppressions contract on a fixture with one
// live directive, one stale one, and one for an unselected check.
func TestSuppressionAudit(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadAs("testdata/suppressaudit", "ppaclust/internal/fixturesa")
	if err != nil {
		t.Fatal(err)
	}
	checks, err := lint.Select("nopanic")
	if err != nil {
		t.Fatal(err)
	}
	diags, sups := lint.Audit([]*lint.Package{pkg}, checks)
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
	if len(sups) != 3 {
		t.Fatalf("got %d suppressions, want 3: %v", len(sups), sups)
	}
	byCheckReason := map[string]bool{}
	for _, s := range sups {
		byCheckReason[s.Check+"|"+s.Reason] = s.Stale
	}
	assertStale := func(check, wantSub string, want bool) {
		t.Helper()
		for k, stale := range byCheckReason {
			if strings.HasPrefix(k, check+"|") && strings.Contains(k, wantSub) {
				if stale != want {
					t.Errorf("directive %q: stale = %v, want %v", k, stale, want)
				}
				return
			}
		}
		t.Errorf("no %s directive containing %q in %v", check, wantSub, sups)
	}
	assertStale("nopanic", "live directive", false)
	assertStale("nopanic", "stale directive", true)
	assertStale("maporder", "unselected check", false)
}

// TestDescribe pins the -describe contract: every catalog entry resolves and
// carries a contract and at least one approved idiom; unknown names error.
func TestDescribe(t *testing.T) {
	for _, name := range lint.CheckNames() {
		c, err := lint.Describe(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.Contract == "" || len(c.Approved) == 0 {
			t.Errorf("check %s is missing Contract or Approved idioms", name)
		}
	}
	if _, err := lint.Describe("nosuchcheck"); err == nil {
		t.Fatal("Describe must reject unknown check names")
	}
}

// TestReadmeListsAllChecks keeps the README's ppalint section in sync with
// the catalog: every check name must appear in README.md.
func TestReadmeListsAllChecks(t *testing.T) {
	data, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range lint.CheckNames() {
		if !strings.Contains(string(data), name) {
			t.Errorf("README.md does not mention check %q", name)
		}
	}
}

func TestSelect(t *testing.T) {
	all, err := lint.Select("")
	if err != nil || len(all) != len(lint.CheckNames()) {
		t.Fatalf("Select(\"\") = %d checks, err %v", len(all), err)
	}
	two, err := lint.Select("maporder, nopanic")
	if err != nil || len(two) != 2 {
		t.Fatalf("Select subset = %d checks, err %v", len(two), err)
	}
	if _, err := lint.Select("nosuchcheck"); err == nil {
		t.Fatal("Select must reject unknown check names")
	}
}

// TestRepoIsLintClean is the self-lint gate: the tree at HEAD must produce
// zero findings under all nine checks and zero stale suppressions, so any
// new contract violation (or a directive that outlived its finding) fails
// the ordinary test suite even before scripts/check.sh runs the CLI.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo type-check is slow; run without -short")
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := lint.Expand(loader.ModRoot, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*lint.Package
	for _, d := range dirs {
		p, err := loader.Load(d)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, p)
	}
	diags, sups := lint.Audit(pkgs, lint.Checks())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	for _, s := range sups {
		if s.Stale {
			t.Errorf("%s:%d: stale //ppalint:ignore %s directive (%s)", s.File, s.Line, s.Check, s.Reason)
		}
	}
}
