package lint_test

import (
	"testing"

	"ppaclust/internal/lint"
	"ppaclust/internal/lint/linttest"
)

// The fixture packages carry at least one real (pre-fix) diagnostic per
// check plus the approved alternatives and a written-reason suppression, so
// these tests pin both halves of each contract: what fires and what stays
// silent.

func TestMapOrderFixture(t *testing.T) {
	linttest.RunDir(t, "testdata/maporder", "ppaclust/internal/sta", "maporder")
}

func TestNoPanicFixture(t *testing.T) {
	linttest.RunDir(t, "testdata/nopanic", "ppaclust/internal/fixture", "nopanic")
}

func TestRawIndexFixture(t *testing.T) {
	linttest.RunDir(t, "testdata/rawindex", "ppaclust/internal/def", "rawindex")
}

func TestErrDropFixture(t *testing.T) {
	linttest.RunDir(t, "testdata/errdrop", "ppaclust/internal/fixtureed", "errdrop")
}

func TestPrintLibFixture(t *testing.T) {
	linttest.RunDir(t, "testdata/printlib", "ppaclust/internal/fixturepl", "printlib")
}

func TestPreallocFixture(t *testing.T) {
	linttest.RunDir(t, "testdata/prealloc", "ppaclust/internal/place", "prealloc")
}

// TestSuppressContract covers malformed directives: they are reported under
// the "suppress" check and silence nothing.
func TestSuppressContract(t *testing.T) {
	linttest.RunDir(t, "testdata/suppress", "ppaclust/internal/fixturesup", "nopanic")
}

func TestSelect(t *testing.T) {
	all, err := lint.Select("")
	if err != nil || len(all) != len(lint.CheckNames()) {
		t.Fatalf("Select(\"\") = %d checks, err %v", len(all), err)
	}
	two, err := lint.Select("maporder, nopanic")
	if err != nil || len(two) != 2 {
		t.Fatalf("Select subset = %d checks, err %v", len(two), err)
	}
	if _, err := lint.Select("nosuchcheck"); err == nil {
		t.Fatal("Select must reject unknown check names")
	}
}

// TestRepoIsLintClean is the self-lint gate: the tree at HEAD must produce
// zero findings, so any new contract violation fails the ordinary test
// suite even before scripts/check.sh runs the CLI.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-repo type-check is slow; run without -short")
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := lint.Expand(loader.ModRoot, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*lint.Package
	for _, d := range dirs {
		p, err := loader.Load(d)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, p)
	}
	for _, d := range lint.Run(pkgs, lint.Checks()) {
		t.Errorf("%s", d)
	}
}
