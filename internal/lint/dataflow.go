// The capture/dataflow layer under the concurrency- and scale-aware checks
// (parshare, i32trunc). It is deliberately lightweight — no SSA, no escape
// analysis — and works on three ideas:
//
//  1. Capture classification by position: an object written inside a
//     function literal is *captured* when its declaration lies outside the
//     literal's source range (closure locals and parameters are inside).
//
//  2. An *index-derived* object set per closure: the closure's parameters
//     (the par.ForEach/Map element index, the par.Blocks worker id and
//     block bounds) seed a fixpoint that adds every local assigned from an
//     expression mentioning a derived object — loop counters `for k := lo;
//     k < hi`, per-worker views `sc := scratch[w]`, range variables over
//     derived slices. A write is *partitioned* when some slice/array index
//     (or slice-expression bound) on its access path mentions a derived
//     object; partitioned writes touch worker-private slots and are the
//     approved parallel idiom.
//
//  3. One level of local call following: a call from a closure to a
//     function or method declared in the same package is analyzed with its
//     parameters classified from the call site (derived argument ->
//     derived parameter, captured reference argument -> shared parameter).
//     Calls inside the followee are not followed further (cycle-guarded by
//     construction), so helpers-of-helpers are a documented false-negative
//     class, as are aliases taken through non-derived locals and calls
//     through captured function values.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// funcDecls maps each package-level function/method object to its
// declaration, for the one-level call following. Built lazily, once per
// package.
func (p *Package) funcDecls() map[*types.Func]*ast.FuncDecl {
	if p.decls != nil {
		return p.decls
	}
	p.decls = map[*types.Func]*ast.FuncDecl{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					p.decls[fn] = fd
				}
			}
		}
	}
	return p.decls
}

// declaredWithin reports whether obj's declaration lies inside node's source
// range.
func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj != nil && obj.Pos() != token.NoPos && obj.Pos() >= n.Pos() && obj.Pos() <= n.End()
}

// mentionsAny reports whether e references any object of set.
func mentionsAny(p *Package, e ast.Expr, set map[types.Object]bool) bool {
	if e == nil || len(set) == 0 {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if o := p.Info.Uses[id]; o != nil && set[o] {
				found = true
			}
		}
		return !found
	})
	return found
}

// derivedObjs computes the index-derived set of body: seeds plus, to a
// fixpoint, every variable assigned (or range-bound) from an expression
// mentioning a derived object.
func derivedObjs(p *Package, body ast.Node, seeds []types.Object) map[types.Object]bool {
	derived := map[types.Object]bool{}
	for _, s := range seeds {
		if s != nil {
			derived[s] = true
		}
	}
	addIdent := func(id *ast.Ident) bool {
		var o types.Object
		if o = p.Info.Defs[id]; o == nil {
			o = p.Info.Uses[id]
		}
		if _, ok := o.(*types.Var); ok && !derived[o] {
			derived[o] = true
			return true
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					var rhs ast.Expr
					if len(n.Lhs) == len(n.Rhs) {
						rhs = n.Rhs[i]
					} else if len(n.Rhs) == 1 {
						rhs = n.Rhs[0] // multi-value call or comma-ok
					}
					if rhs != nil && mentionsAny(p, rhs, derived) {
						if addIdent(id) {
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				if mentionsAny(p, n.X, derived) {
					for _, e := range []ast.Expr{n.Key, n.Value} {
						if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
							if addIdent(id) {
								changed = true
							}
						}
					}
				}
			}
			return true
		})
	}
	return derived
}

// pathStep is one access step of an lvalue, recorded root-outward.
type pathStep struct {
	index   ast.Expr       // non-nil for an index step s[e]
	slice   *ast.SliceExpr // non-nil for a slicing step s[lo:hi]
	mapBase bool           // index step whose base is a map
}

// lvaluePath decomposes an lvalue (or a write target such as copy's dst)
// into its root object and access steps from root outward. The root of
// `p.buf[w].xs` is the object of `p`; a selector through a package
// qualifier roots at the package-level variable itself. Returns a nil root
// for forms the layer does not model.
func lvaluePath(p *Package, e ast.Expr) (types.Object, []pathStep) {
	var rev []pathStep
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			o := p.Info.Uses[x]
			if o == nil {
				o = p.Info.Defs[x]
			}
			if _, ok := o.(*types.Var); !ok {
				return nil, nil
			}
			// Reverse into root-outward order.
			for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
				rev[i], rev[j] = rev[j], rev[i]
			}
			return o, rev
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
				if _, isPkg := p.Info.Uses[id].(*types.PkgName); isPkg {
					o := p.Info.Uses[x.Sel]
					if _, ok := o.(*types.Var); !ok {
						return nil, nil
					}
					for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
						rev[i], rev[j] = rev[j], rev[i]
					}
					return o, rev
				}
			}
			e = x.X
		case *ast.IndexExpr:
			rev = append(rev, pathStep{index: x.Index, mapBase: isMapType(p.Info.TypeOf(x.X))})
			e = x.X
		case *ast.SliceExpr:
			rev = append(rev, pathStep{slice: x})
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, nil
		}
	}
}

// isMapType reports whether t (possibly through a pointer) is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	u := t.Underlying()
	if ptr, ok := u.(*types.Pointer); ok {
		u = ptr.Elem().Underlying()
	}
	_, ok := u.(*types.Map)
	return ok
}

// classifyPath walks steps root-outward and reports whether the write is
// partitioned by a derived index before any map-index step, or hits a map
// first (mapWrite). A write with neither property is a plain shared write.
func classifyPath(p *Package, steps []pathStep, derived map[types.Object]bool) (partitioned, mapWrite bool) {
	for _, st := range steps {
		switch {
		case st.slice != nil:
			if mentionsAny(p, st.slice.Low, derived) || mentionsAny(p, st.slice.High, derived) ||
				mentionsAny(p, st.slice.Max, derived) {
				partitioned = true
			}
		case st.mapBase:
			if !partitioned {
				return false, true
			}
		case st.index != nil:
			if mentionsAny(p, st.index, derived) {
				partitioned = true
			}
		}
	}
	return partitioned, false
}

// pkgLevelVar reports whether obj is a package-level variable (of any
// package): shared by every goroutine regardless of capture.
func pkgLevelVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

// refType reports whether t can alias memory visible to the caller: a
// pointer, slice, or map (channels and interfaces are out of model).
func refType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

// rootsOutside reports whether e references any variable declared outside
// scope (the closure): such an expression can carry shared state into a
// callee.
func rootsOutside(p *Package, e ast.Expr, scope ast.Node) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := p.Info.Uses[id].(*types.Var); ok {
				if pkgLevelVar(v) || !declaredWithin(v, scope) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
