// The parshare check: capture analysis of every function literal handed to
// internal/par, enforcing the pool's determinism contract at the source —
// closures may write only memory partitioned by their own index/block.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

var parShareCheck = &Check{
	Name: "parshare",
	Doc: "write through a captured variable inside a par.ForEach/Blocks/Map closure " +
		"that is not partitioned by the closure's index (shared append, shared-map " +
		"write, shared-scalar accumulation); use per-index slots or per-worker " +
		"partials merged in fixed order",
	Contract: "Every function literal passed to par.ForEach, par.Blocks, or par.Map runs " +
		"concurrently on the worker pool, and the repo's determinism contract requires " +
		"bit-identical results at any worker count. The closure may therefore write only " +
		"memory that its own index partitions: an element of a captured slice indexed by " +
		"the loop/block index (or a value derived from it), or a per-worker slot merged " +
		"afterwards in fixed order. Appends to a captured slice, writes into a captured " +
		"map, accumulation into a captured scalar, and writes through captured pointers " +
		"are findings: they race, and even under a lock their order would depend on " +
		"scheduling. Package-level variables are shared no matter how they are reached. " +
		"Helper functions and methods of the same package called from the closure are " +
		"analyzed one level deep with parameters classified from the call site " +
		"(index-derived argument -> partitioning parameter, captured reference argument " +
		"-> shared parameter); findings in a helper are reported at the call site. " +
		"Known false negatives (see DESIGN.md §16): aliases taken through non-derived " +
		"locals, calls through captured function values, helpers of helpers, channels.",
	Approved: []string{
		"out[i] = f(i) — per-index slot write, the par.Map/ForEach idiom",
		"parts[w] += v inside par.Blocks — per-worker partial, merged in block order afterwards",
		"gp := &parts[w]; gp.xs = append(gp.xs, v) — per-worker gather arena via a derived local",
		"for k := lo; k < hi; k++ { dst[k] = v } — block-partitioned loop counter",
		"helper(dst, i, v) where helper writes dst[i] — one-level call following approves partitioned helpers",
	},
	Run: runParShare,
}

// parEntry names the three pool entry points and, per entry, which closure
// parameters partition writes (all of them, for all three).
var parEntry = map[string]bool{"ForEach": true, "Blocks": true, "Map": true}

func runParShare(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if !internalPkg(p.Path) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || fn.Pkg() == nil || pkgBase(fn.Pkg().Path()) != "par" ||
				!internalPkg(fn.Pkg().Path()) || !parEntry[fn.Name()] {
				return true
			}
			var lit *ast.FuncLit
			for _, a := range call.Args {
				if fl, ok := ast.Unparen(a).(*ast.FuncLit); ok {
					lit = fl
				}
			}
			if lit == nil {
				return true // named function value: out of model
			}
			analyzeParClosure(p, fn.Name(), lit, report)
			return true
		})
	}
}

// litParams collects the closure's parameter objects — the index/block
// variables that partition writes.
func litParams(p *Package, lit *ast.FuncLit) []types.Object {
	var out []types.Object
	for _, fld := range lit.Type.Params.List {
		for _, name := range fld.Names {
			if o := p.Info.Defs[name]; o != nil {
				out = append(out, o)
			}
		}
	}
	return out
}

// analyzeParClosure checks every write of the closure body (including nested
// literals, which still run on the worker) and follows same-package calls
// one level.
func analyzeParClosure(p *Package, entry string, lit *ast.FuncLit, report func(pos token.Pos, format string, args ...any)) {
	derived := derivedObjs(p, lit.Body, litParams(p, lit))
	captured := func(obj types.Object) bool {
		return pkgLevelVar(obj) || !declaredWithin(obj, lit)
	}
	checkTarget := func(pos token.Pos, e ast.Expr, form string) {
		root, steps := lvaluePath(p, e)
		if root == nil || !captured(root) {
			return
		}
		partitioned, mapWrite := classifyPath(p, steps, derived)
		switch {
		case mapWrite:
			report(pos, "par.%s closure writes captured map through %q: concurrent map writes race and bake iteration order in; shard per worker and merge in fixed order", entry, root.Name())
		case !partitioned:
			report(pos, "par.%s closure %s captured %q without partitioning by the closure index; use per-index slots or per-worker partials merged in fixed order", entry, form, root.Name())
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				form := "writes to"
				switch {
				case n.Tok != token.ASSIGN && n.Tok != token.DEFINE:
					form = "accumulates into"
				case len(n.Lhs) == len(n.Rhs) && isAppendCall(p, n.Rhs[i]):
					form = "appends to"
				case len(n.Lhs) == len(n.Rhs) && isSelfBinOp(p, lhs, n.Rhs[i]):
					form = "accumulates into"
				}
				if n.Tok == token.DEFINE {
					continue // new closure-local
				}
				checkTarget(n.Pos(), lhs, form)
			}
		case *ast.IncDecStmt:
			checkTarget(n.Pos(), n.X, "accumulates into")
		case *ast.CallExpr:
			switch calleeBuiltin(p, n) {
			case "copy", "clear", "delete":
				if len(n.Args) > 0 {
					checkTarget(n.Pos(), n.Args[0], "writes to")
				}
			case "":
				followLocalCall(p, entry, lit, n, derived, report)
			}
		}
		return true
	})
}

// isAppendCall reports whether e is a call to the append builtin.
func isAppendCall(p *Package, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok && calleeBuiltin(p, call) == "append"
}

// isSelfBinOp reports whether rhs is a binary expression mentioning lhs's
// root — the spelled-out x = x + v accumulation.
func isSelfBinOp(p *Package, lhs, rhs ast.Expr) bool {
	be, ok := ast.Unparen(rhs).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	root, _ := lvaluePath(p, lhs)
	return root != nil && exprUsesObj(p, be, root)
}

// followLocalCall analyzes one call from a par closure to a function or
// method declared in the same package. Parameters are classified from the
// call site; writes inside the callee rooted at a shared parameter, shared
// receiver, or package-level variable are reported at the call site. Calls
// inside the callee are not followed (one level, cycle-free by
// construction).
func followLocalCall(p *Package, entry string, lit *ast.FuncLit, call *ast.CallExpr,
	derived map[types.Object]bool, report func(pos token.Pos, format string, args ...any)) {

	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg() != p.Types {
		return
	}
	decl := p.funcDecls()[fn]
	if decl == nil || decl.Body == nil {
		return
	}

	shared := map[types.Object]bool{}
	var seeds []types.Object
	classify := func(arg ast.Expr, param types.Object) {
		if param == nil {
			return
		}
		switch {
		case mentionsAny(p, arg, derived):
			seeds = append(seeds, param)
		case rootsOutside(p, arg, lit) && refType(param.Type()):
			shared[param] = true
		}
	}

	// Receiver.
	if decl.Recv != nil && len(decl.Recv.List) > 0 && len(decl.Recv.List[0].Names) > 0 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if recv := p.Info.Defs[decl.Recv.List[0].Names[0]]; recv != nil {
				classify(sel.X, recv)
			}
		}
	}
	// Positional parameters (variadic tail shares the last parameter).
	var params []types.Object
	for _, fld := range decl.Type.Params.List {
		for _, name := range fld.Names {
			params = append(params, p.Info.Defs[name])
		}
	}
	for i, arg := range call.Args {
		pi := i
		if pi >= len(params) {
			pi = len(params) - 1
		}
		if pi < 0 {
			break
		}
		classify(arg, params[pi])
	}
	if len(shared) == 0 {
		// The callee can still write package-level state; fall through with
		// an empty shared-parameter set so only globals are findings.
	}

	calleeDerived := derivedObjs(p, decl.Body, seeds)
	reported := map[types.Object]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		var targets []ast.Expr
		form := "writes to"
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			if n.Tok != token.ASSIGN {
				form = "accumulates into"
			}
			targets = n.Lhs
		case *ast.IncDecStmt:
			form = "accumulates into"
			targets = []ast.Expr{n.X}
		case *ast.CallExpr:
			switch calleeBuiltin(p, n) {
			case "copy", "clear", "delete":
				if len(n.Args) > 0 {
					targets = n.Args[:1]
				}
			}
		}
		for _, t := range targets {
			root, steps := lvaluePath(p, t)
			if root == nil || reported[root] {
				continue
			}
			if !shared[root] && !pkgLevelVar(root) {
				continue
			}
			partitioned, mapWrite := classifyPath(p, steps, calleeDerived)
			switch {
			case mapWrite:
				reported[root] = true
				report(call.Pos(), "par.%s closure calls %s, which writes captured map through %q; shard per worker and merge in fixed order", entry, fn.Name(), root.Name())
			case !partitioned:
				reported[root] = true
				report(call.Pos(), "par.%s closure calls %s, which %s shared %q without partitioning by the closure index", entry, fn.Name(), form, root.Name())
			}
		}
		return true
	})
}
