// Package linttest is the expected-diagnostic harness for ppalint checks.
// A fixture package under testdata/ annotates each offending line with a
//
//	// want `regex`
//
// comment (block comments work too, for lines that already carry a
// directive); RunDir loads the fixture under a faked import path, runs the
// selected checks, and fails the test unless findings and annotations agree
// one-to-one. Each regex is matched against "check: message", so a want can
// pin the check name, the message, or both.
package linttest

import (
	"path/filepath"
	"regexp"
	"testing"

	"ppaclust/internal/lint"
)

// wantRe extracts the backquoted pattern of a want annotation.
var wantRe = regexp.MustCompile("want `([^`]+)`")

// RunDir type-checks the fixture package in dir as if it lived at
// importPath (so path-sensitive checks treat it exactly like the real
// tree), runs the checks named by the comma-separated spec ("" = all), and
// compares diagnostics against the fixture's want annotations. Every want
// must be matched by exactly one finding on its line, and every finding
// must be claimed by a want; a suppressed or benign line therefore simply
// carries no annotation.
func RunDir(t *testing.T, dir, importPath, checkSpec string) {
	t.Helper()
	checks, err := lint.Select(checkSpec)
	if err != nil {
		t.Fatal(err)
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(abs)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadAs(abs, importPath)
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Run([]*lint.Package{pkg}, checks)

	type expect struct {
		file string
		line int
		re   *regexp.Regexp
		used bool
	}
	var expects []*expect
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						pos := pkg.Fset.Position(c.Pos())
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					expects = append(expects, &expect{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		s := d.Check + ": " + d.Msg
		claimed := false
		for _, e := range expects {
			if !e.used && e.file == d.File && e.line == d.Line && e.re.MatchString(s) {
				e.used, claimed = true, true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range expects {
		if !e.used {
			t.Errorf("%s:%d: no diagnostic matched want `%s`", e.file, e.line, e.re)
		}
	}
}
