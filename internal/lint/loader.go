// Package loading and type-checking for ppalint, on the standard library
// only. Module-local import paths are resolved against the go.mod module
// root and type-checked from source recursively; everything else (the
// standard library) is delegated to go/importer's source-mode importer,
// which compiles $GOROOT packages on demand. One Loader memoizes both kinds
// per process, so a whole-repo run type-checks each dependency once.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package as the checks see it.
type Package struct {
	Path  string // import path ("ppaclust/internal/sta"); fixtures may fake one
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test files only, in file-name order
	Types *types.Package
	Info  *types.Info

	decls map[*types.Func]*ast.FuncDecl // lazy; see funcDecls
}

// Loader loads module packages from source. It is not safe for concurrent
// use; a run drives one loader sequentially (determinism contract: package
// order, file order and diagnostic order never depend on map iteration).
type Loader struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string

	std     types.ImporterFrom
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // cycle guard
}

// NewLoader builds a loader for the module containing dir (found by walking
// up to the nearest go.mod).
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	return &Loader{
		Fset:    fset,
		ModRoot: root,
		ModPath: modPath,
		std:     std,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

// findModule walks up from dir to the nearest go.mod and returns the module
// root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-local paths load from the
// module tree, everything else falls through to the stdlib source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		p, err := l.load(filepath.Join(l.ModRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// Load type-checks the package in dir under its module-derived import path.
func (l *Loader) Load(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.ModRoot)
	}
	path := l.ModPath
	if rel != "." {
		path += "/" + filepath.ToSlash(rel)
	}
	return l.load(abs, path)
}

// LoadAs type-checks the package in dir pretending it lives at importPath.
// The test harness uses it to place fixture packages on path-sensitive
// checks' home turf (e.g. a testdata dir acting as ppaclust/internal/sta).
func (l *Loader) LoadAs(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(abs, importPath)
}

// load parses and type-checks one directory. Results are memoized by import
// path.
func (l *Loader) load(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l, FakeImportC: true}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// goFiles lists dir's buildable non-test Go files in sorted order.
func goFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Expand resolves command-line package patterns ("./...", "./internal/sta",
// "internal/...") into package directories, relative to base. Directories
// named testdata (and hidden/underscore directories) are skipped, as are
// directories without non-test Go files.
func Expand(base string, patterns []string) ([]string, error) {
	var dirs []string
	seen := map[string]bool{}
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, recursive = rest, true
		}
		root := pat
		if !filepath.IsAbs(root) {
			root = filepath.Join(base, root)
		}
		st, err := os.Stat(root)
		if err != nil || !st.IsDir() {
			return nil, fmt.Errorf("lint: no such package directory %q", pat)
		}
		if !recursive {
			if names, err := goFiles(root); err == nil && len(names) > 0 {
				add(root)
			} else {
				return nil, fmt.Errorf("lint: no non-test Go files in %q", pat)
			}
			continue
		}
		err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if names, err := goFiles(path); err == nil && len(names) > 0 {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}
