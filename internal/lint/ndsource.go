// The ndsource check: nondeterminism entering through the side doors the
// other checks don't watch — wall-clock reads, the process-global math/rand
// source, and map iteration order flowing straight into serialized output.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// timeNowAllowed names the internal packages whose *contract* is wall-clock
// measurement: flow stamps per-stage runtimes into its Result and
// experiments reports suite runtimes. Both keep timings out of the
// determinism-gated quality fields; everywhere else time.Now is a
// nondeterminism bug.
var timeNowAllowed = map[string]bool{"flow": true, "experiments": true}

var ndSourceCheck = &Check{
	Name: "ndsource",
	Doc: "nondeterminism source in a library package: time.Now outside flow/experiments, " +
		"package-global math/rand functions (use rand.New(rand.NewSource(seed))), or a " +
		"map range whose body feeds JSON/writer output",
	Contract: "The reproduction protocol depends on bit-identical reruns, so nondeterminism " +
		"may only enter where it is part of the contract. time.Now is allowed in " +
		"internal/flow and internal/experiments (stage/suite runtime measurement, kept " +
		"out of quality fields) and nowhere else under internal/. Package-global " +
		"math/rand functions (rand.Intn, rand.Float64, rand.Shuffle, ...) draw from the " +
		"process-wide, auto-seeded source and are findings everywhere; construct a local " +
		"seeded generator with rand.New(rand.NewSource(seed)) instead. A for-range over " +
		"a map whose body calls into encoding/json or writes through fmt.Fprint* bakes " +
		"random iteration order into serialized output: collect keys, sort, then range " +
		"the sorted slice (numeric in-memory accumulation from map ranges is maporder's " +
		"half of this contract).",
	Approved: []string{
		"rng := rand.New(rand.NewSource(opt.Seed)); rng.Intn(n) — locally seeded generator",
		"time.Now in internal/flow and internal/experiments runtime stamps",
		"keys := make(...); for k := range m { keys = append(keys, k) }; sort; then encode in sorted order",
	},
	Run: runNDSource,
}

func runNDSource(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if !internalPkg(p.Path) {
		return
	}
	base := pkgBase(p.Path)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(p, n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				sig, _ := fn.Type().(*types.Signature)
				switch fn.Pkg().Path() {
				case "time":
					if fn.Name() == "Now" && !timeNowAllowed[base] {
						report(n.Pos(), "time.Now in a library package outside flow/experiments; wall-clock reads break reproducibility — plumb timings from the caller or move them behind the flow/experiments boundary")
					}
				case "math/rand", "math/rand/v2":
					if sig != nil && sig.Recv() == nil && fn.Name() != "New" &&
						fn.Name() != "NewSource" && fn.Name() != "NewPCG" && fn.Name() != "NewChaCha8" {
						report(n.Pos(), "package-global math/rand.%s draws from the process-wide auto-seeded source; use a locally seeded rand.New(rand.NewSource(seed))", fn.Name())
					}
				}
			case *ast.RangeStmt:
				t := p.Info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if why := mapOutputUse(p, n); why != "" {
					report(n.For, "map iteration order is random and this range body %s; collect keys, sort, then range the sorted slice", why)
				}
			}
			return true
		})
	}
}

// mapOutputUse classifies a map-range body: "" when benign, otherwise the
// way it feeds serialized output.
func mapOutputUse(p *Package, rs *ast.RangeStmt) string {
	why := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(p, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch {
		case fn.Pkg().Path() == "encoding/json":
			why = "feeds encoding/json (" + fn.Name() + ")"
		case fn.Pkg().Path() == "fmt" && (fn.Name() == "Fprint" || fn.Name() == "Fprintf" || fn.Name() == "Fprintln"):
			why = "writes through fmt." + fn.Name()
		}
		return why == ""
	})
	return why
}
