// Package lint is ppalint's analyzer framework: a stdlib-only package
// loader/type-checker driver (loader.go), a diagnostic model with file:line
// provenance, per-line suppressions with a staleness audit, and the nine
// project-contract checks (maporder, nopanic, rawindex, errdrop, printlib,
// prealloc, parshare, i32trunc, ndsource) that mechanically enforce the
// repo's determinism, no-panic, bounds-checked-parsing, hot-loop
// preallocation, partitioned-parallel-write, and guarded-int32-narrowing
// invariants. The dataflow trio (parshare, i32trunc, ndsource) builds on a
// lightweight capture/derived-value layer in dataflow.go.
//
// The framework deliberately uses nothing outside the standard library
// (go/parser, go/ast, go/types, go/importer) so the pure-Go constraint of
// the reproduction holds for its tooling too.
//
// Suppression contract: a finding is silenced by a comment of the form
//
//	//ppalint:ignore <check> <reason>
//
// placed either on the offending line or on the line directly above it. The
// reason is mandatory; a reasonless or unknown-check directive is itself
// reported (check name "suppress") and suppresses nothing.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, anchored to a position in a source file.
type Diagnostic struct {
	Check string `json:"check"`
	File  string `json:"file"`
	Line  int    `json:"line"`
	Col   int    `json:"col"`
	Msg   string `json:"msg"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Check, d.Msg)
}

// Check is one named analysis over a type-checked package. Doc is the
// one-line summary; Contract and Approved are the long-form description and
// approved-idiom list behind `ppalint -describe` — the single source the
// README section is kept in sync with.
type Check struct {
	Name     string
	Doc      string
	Contract string
	Approved []string
	Run      func(p *Package, report func(pos token.Pos, format string, args ...any))
}

// Checks returns the full project check catalog in a fixed order.
func Checks() []*Check {
	return []*Check{
		mapOrderCheck, noPanicCheck, rawIndexCheck, errDropCheck, printLibCheck, preallocCheck,
		parShareCheck, i32TruncCheck, ndSourceCheck,
	}
}

// Describe resolves one check by name for `ppalint -describe`.
func Describe(name string) (*Check, error) {
	for _, c := range Checks() {
		if c.Name == name {
			return c, nil
		}
	}
	return nil, fmt.Errorf("unknown check %q (have %s)", name, strings.Join(CheckNames(), ", "))
}

// CheckNames returns the catalog's names, in catalog order.
func CheckNames() []string {
	var names []string
	for _, c := range Checks() {
		names = append(names, c.Name)
	}
	return names
}

// Select resolves a comma-separated check-name list against the catalog. An
// empty spec selects everything.
func Select(spec string) ([]*Check, error) {
	all := Checks()
	if strings.TrimSpace(spec) == "" {
		return all, nil
	}
	byName := make(map[string]*Check, len(all))
	for _, c := range all {
		byName[c.Name] = c
	}
	var out []*Check
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		c, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown check %q (have %s)", name, strings.Join(CheckNames(), ", "))
		}
		out = append(out, c)
	}
	return out, nil
}

// ignoreDirective is one parsed //ppalint:ignore comment.
type ignoreDirective struct {
	check  string
	reason string
	file   string
	line   int
	col    int
}

const ignorePrefix = "//ppalint:ignore"

// parseIgnores extracts every //ppalint:ignore directive of a file.
func parseIgnores(fset *token.FileSet, f *ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, ignorePrefix)
			pos := fset.Position(c.Pos())
			d := ignoreDirective{file: pos.Filename, line: pos.Line, col: pos.Column}
			fields := strings.Fields(rest)
			if len(fields) > 0 {
				d.check = fields[0]
				d.reason = strings.Join(fields[1:], " ")
			}
			out = append(out, d)
		}
	}
	return out
}

// Suppression is one valid //ppalint:ignore directive as the audit sees it.
// Stale means no finding of the named check landed on the directive's line
// or the line below during the run — the directive outlived the code it
// excused and must be deleted.
type Suppression struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Check  string `json:"check"`
	Reason string `json:"reason"`
	Stale  bool   `json:"stale"`
}

// Run applies checks to pkgs and returns the surviving diagnostics sorted by
// file, line, column, check. Suppression directives are honored here;
// malformed directives surface as "suppress" diagnostics.
func Run(pkgs []*Package, checks []*Check) []Diagnostic {
	diags, _ := runChecks(pkgs, checks)
	return diags
}

// Audit runs like Run but additionally accounts for every valid suppression
// directive: a directive is live when it silenced at least one finding of
// its check, stale otherwise. Staleness is only judged for directives whose
// check was actually selected. Suppressions are returned sorted by file,
// line, check.
func Audit(pkgs []*Package, checks []*Check) ([]Diagnostic, []Suppression) {
	return runChecks(pkgs, checks)
}

func runChecks(pkgs []*Package, checks []*Check) ([]Diagnostic, []Suppression) {
	var diags []Diagnostic
	type suppressKey struct {
		file  string
		line  int
		check string
	}
	suppressed := map[suppressKey]bool{}
	used := map[suppressKey]bool{}
	known := map[string]bool{}
	for _, c := range Checks() {
		known[c.Name] = true
	}
	selected := map[string]bool{}
	for _, c := range checks {
		selected[c.Name] = true
	}

	var directives []ignoreDirective
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range parseIgnores(p.Fset, f) {
				switch {
				case d.check == "":
					diags = append(diags, Diagnostic{Check: "suppress", File: d.file, Line: d.line, Col: d.col,
						Msg: "ppalint:ignore needs a check name and a reason"})
				case !known[d.check]:
					diags = append(diags, Diagnostic{Check: "suppress", File: d.file, Line: d.line, Col: d.col,
						Msg: fmt.Sprintf("ppalint:ignore names unknown check %q", d.check)})
				case d.reason == "":
					diags = append(diags, Diagnostic{Check: "suppress", File: d.file, Line: d.line, Col: d.col,
						Msg: fmt.Sprintf("ppalint:ignore %s needs a written reason", d.check)})
				default:
					suppressed[suppressKey{d.file, d.line, d.check}] = true
					directives = append(directives, d)
				}
			}
		}
	}

	for _, p := range pkgs {
		for _, c := range checks {
			c.Run(p, func(pos token.Pos, format string, args ...any) {
				where := p.Fset.Position(pos)
				// A valid directive on the finding's own line or the line
				// directly above silences it.
				for _, line := range [2]int{where.Line, where.Line - 1} {
					k := suppressKey{where.Filename, line, c.Name}
					if suppressed[k] {
						used[k] = true
						return
					}
				}
				diags = append(diags, Diagnostic{
					Check: c.Name, File: where.Filename, Line: where.Line, Col: where.Column,
					Msg: fmt.Sprintf(format, args...),
				})
			})
		}
	}

	var sups []Suppression
	for _, d := range directives {
		sups = append(sups, Suppression{
			File: d.file, Line: d.line, Check: d.check, Reason: d.reason,
			Stale: selected[d.check] && !used[suppressKey{d.file, d.line, d.check}],
		})
	}
	sort.Slice(sups, func(i, j int) bool {
		a, b := sups[i], sups[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Check < b.Check
	})

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	})
	return diags, sups
}

// internalPkg reports whether path is a library package under the module's
// internal tree (fixtures get the same treatment through their declared
// import path).
func internalPkg(path string) bool {
	return strings.Contains(path, "/internal/")
}

// pkgBase returns the last import-path element ("ppaclust/internal/sta" ->
// "sta").
func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
