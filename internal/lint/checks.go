// The original six project-contract checks (the dataflow trio lives in
// parshare.go, i32trunc.go, ndsource.go). Each is a pure function over one
// type-checked package; path-sensitive checks decide applicability from the
// package's import path, so testdata fixtures loaded under a faked path get
// identical treatment to the real tree.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

var errorType = types.Universe.Lookup("error").Type()

// calleeFunc resolves the *types.Func a call invokes (package function or
// method), or nil for builtins, conversions and indirect calls.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// calleeBuiltin returns the builtin name a call invokes ("append", "panic",
// "println", ...) or "".
func calleeBuiltin(p *Package, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := p.Info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// funcFromPkg reports whether fn is a function or method belonging to the
// package import path pkgPath.
func funcFromPkg(fn *types.Func, pkgPath string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// isFloat reports whether t's underlying type is a floating-point basic.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// ---- maporder ----

// mapOrderCritical names the determinism-critical packages: every float
// accumulation, append, or parallel dispatch in them must happen in a fixed
// order, so iterating a map directly is forbidden when the body does any of
// those.
var mapOrderCritical = map[string]bool{
	"sta": true, "cluster": true, "place": true,
	"hypergraph": true, "netlist": true, "flow": true, "designs": true,
	"route": true, "cts": true,
}

var mapOrderCheck = &Check{
	Name: "maporder",
	Doc: "for-range over a map whose body accumulates floats, appends, or dispatches to internal/par " +
		"in a determinism-critical package (sta, cluster, place, hypergraph, netlist, flow, designs, " +
		"route, cts); collect keys, sort, then iterate the sorted slice",
	Contract: "Map iteration order is randomized per run, so in a determinism-critical " +
		"package (sta, cluster, place, hypergraph, netlist, flow, designs, route, cts) a " +
		"for-range over a map may not feed an order-sensitive sink: float accumulation " +
		"(addition does not commute bit-exactly), appends that fix an output order, or " +
		"dispatch into internal/par. Collect the keys, sort them, then iterate the " +
		"sorted slice. Order-insensitive bodies — integer counting, set membership, " +
		"max/min over exact values — are not flagged.",
	Approved: []string{
		"keys := make([]K, 0, len(m)); for k := range m { keys = append(keys, k) }; sort; for _, k := range keys { ... }",
		"for _, v := range m { count++ } — integer accumulation commutes exactly",
	},
	Run: runMapOrder,
}

func runMapOrder(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if !internalPkg(p.Path) || !mapOrderCritical[pkgBase(p.Path)] {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if why := mapOrderViolation(p, rs); why != "" {
				report(rs.For, "map iteration order is random: body %s; collect keys, sort, then range the slice", why)
			}
			return true
		})
	}
}

// rangeKeyObj returns the object bound to the range key variable, if any.
func rangeKeyObj(p *Package, rs *ast.RangeStmt) types.Object {
	id, ok := rs.Key.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if o := p.Info.Defs[id]; o != nil {
		return o
	}
	return p.Info.Uses[id]
}

// mapOrderViolation classifies a map-range body: "" means benign, otherwise
// a human-readable reason. The sorted-keys idiom — a body that only appends
// the range key into a slice (sorted afterwards) — is recognized as benign;
// writes into other maps, deletes, counters and comparisons are
// order-independent and never flagged.
func mapOrderViolation(p *Package, rs *ast.RangeStmt) string {
	key := rangeKeyObj(p, rs)
	why := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if why != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range n.Lhs {
					if t := p.Info.TypeOf(lhs); t != nil && isFloat(t) {
						why = "accumulates a float"
						return false
					}
				}
			case token.ASSIGN:
				// x = x <op> ... — the spelled-out accumulation.
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					lid, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					lobj := p.Info.Uses[lid]
					t := p.Info.TypeOf(lhs)
					if lobj == nil || t == nil || !isFloat(t) {
						continue
					}
					if be, ok := ast.Unparen(n.Rhs[i]).(*ast.BinaryExpr); ok && exprUsesObj(p, be, lobj) {
						switch be.Op {
						case token.ADD, token.SUB, token.MUL, token.QUO:
							why = "accumulates a float"
							return false
						}
					}
				}
			}
		case *ast.CallExpr:
			switch {
			case calleeBuiltin(p, n) == "append":
				// append(keys, k) with k the range key is the sorted-keys
				// collection idiom; anything else bakes map order into a
				// slice.
				if n.Ellipsis != token.NoPos || len(n.Args) != 2 {
					why = "appends to a slice"
					return false
				}
				id, ok := ast.Unparen(n.Args[1]).(*ast.Ident)
				if !ok || key == nil || p.Info.Uses[id] != key {
					why = "appends a non-key value to a slice"
					return false
				}
			default:
				if fn := calleeFunc(p, n); fn != nil && fn.Pkg() != nil &&
					strings.HasSuffix(fn.Pkg().Path(), "/internal/par") {
					why = "dispatches work to internal/par"
					return false
				}
			}
		}
		return true
	})
	return why
}

// exprUsesObj reports whether obj appears as an identifier inside e.
func exprUsesObj(p *Package, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// ---- nopanic ----

var noPanicCheck = &Check{
	Name: "nopanic",
	Doc: "panic, log.Fatal*, or os.Exit in a library package under internal/ " +
		"(internal/par's documented worker-panic propagation path is exempt); " +
		"return an error and let cmd/ decide how to die",
	Contract: "Library packages under internal/ must not unilaterally kill the process: " +
		"panic, log.Fatal*, and os.Exit are findings. Return an error and let cmd/ " +
		"decide how to die. internal/par's documented worker-panic propagation path is " +
		"exempt; invariant assertions whose failure is by construction a programming " +
		"bug (not bad input) carry a reasoned suppression, as does re-raising a " +
		"captured child-goroutine panic.",
	Approved: []string{
		"return fmt.Errorf(...) from the library, os.Exit in cmd/",
		"panic(err) //ppalint:ignore nopanic invariant assertion: ... — table/construction bugs, never input",
	},
	Run: runNoPanic,
}

func runNoPanic(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if !internalPkg(p.Path) || pkgBase(p.Path) == "par" {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if calleeBuiltin(p, call) == "panic" {
				report(call.Pos(), "panic in library package; return an error instead")
				return true
			}
			if fn := calleeFunc(p, call); fn != nil && fn.Pkg() != nil {
				switch {
				case fn.Pkg().Path() == "log" && strings.HasPrefix(fn.Name(), "Fatal"):
					report(call.Pos(), "log.%s in library package; return an error instead", fn.Name())
				case fn.Pkg().Path() == "os" && fn.Name() == "Exit":
					report(call.Pos(), "os.Exit in library package; return an error instead")
				}
			}
			return true
		})
	}
}

// ---- rawindex ----

// rawIndexPkgs are the format readers that must route every token access
// through internal/scan's bounds-checked Line accessors.
var rawIndexPkgs = map[string]bool{
	"def": true, "lef": true, "liberty": true, "sdc": true, "verilog": true,
}

var rawIndexCheck = &Check{
	Name: "rawindex",
	Doc: "direct read through a []string token slice in a format package " +
		"(def, lef, liberty, sdc, verilog); use the scan.Line accessors " +
		"(Tok/Str/Float/Int after Require). Flagged bases are bare []string " +
		"variables and .Fields selectors: those hold raw line tokens. Stores " +
		"into a freshly made slice and reads through other struct fields " +
		"(domain data such as port lists, with their own invariants) are not " +
		"token access and stay exempt.",
	Contract: "The format readers (def, lef, liberty, sdc, verilog) parse whitespace-split " +
		"token lines, and a raw f[i] read past the token count panics on malformed " +
		"input. Token access goes through scan.Line — Require to establish the arity, " +
		"then Tok/Str/Float/Int, which return errors instead of panicking. Flagged " +
		"bases are bare []string variables and .Fields selectors (raw line tokens); " +
		"freshly made slices and other struct fields hold domain data with their own " +
		"invariants and are exempt.",
	Approved: []string{
		"if err := ln.Require(3); err != nil { return err }; v, err := ln.Float(2)",
		"ports := make([]string, 0, n); ports[i] — domain data, not raw tokens",
	},
	Run: runRawIndex,
}

// tokenSliceBase reports whether the indexed expression is a raw token
// slice: a plain []string variable (typically an alias of Line.Fields or a
// tokenizer result) or a selector of a field literally named Fields.
func tokenSliceBase(x ast.Expr) bool {
	switch e := ast.Unparen(x).(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return e.Sel.Name == "Fields"
	}
	return false
}

func runRawIndex(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if !internalPkg(p.Path) || !rawIndexPkgs[pkgBase(p.Path)] {
		return
	}
	for _, f := range p.Files {
		// Collect index expressions that are assignment targets: writing
		// parts[i] into a slice sized with make is construction, not token
		// access.
		stores := map[*ast.IndexExpr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					stores[ix] = true
				}
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			ix, ok := n.(*ast.IndexExpr)
			if !ok || stores[ix] || !tokenSliceBase(ix.X) {
				return true
			}
			t := p.Info.TypeOf(ix.X)
			if t == nil {
				return true
			}
			sl, ok := t.Underlying().(*types.Slice)
			if !ok {
				return true
			}
			if b, ok := sl.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.String {
				report(ix.Lbrack, "raw index into a token slice; use scan.Line accessors (Tok/Str/Float/Int)")
			}
			return true
		})
	}
}

// ---- errdrop ----

// errDropPkgs are the packages whose error results must never be discarded:
// the scan layer, the five format readers, and the flow driver.
var errDropPkgs = map[string]bool{
	"scan": true, "def": true, "lef": true, "liberty": true,
	"sdc": true, "verilog": true, "flow": true,
}

var errDropCheck = &Check{
	Name: "errdrop",
	Doc: "error result of a scan/parser/flow API call discarded (call used as a " +
		"bare statement, or its error assigned to _)",
	Contract: "Errors from the scan/parser/flow APIs carry file:line provenance for " +
		"malformed input; discarding one (calling as a bare statement, or assigning " +
		"the error result to _) turns a diagnosable input bug into silent garbage. " +
		"Check the error or propagate it. An intentionally unused probe call carries " +
		"a reasoned suppression.",
	Approved: []string{
		"v, err := ln.Float(2); if err != nil { return err }",
		"ln.Str(0) //ppalint:ignore errdrop probe call, the result is intentionally unused",
	},
	Run: runErrDrop,
}

// errDropScoped reports whether call invokes a guarded API and returns the
// display name and the indices of its error results.
func errDropScoped(p *Package, call *ast.CallExpr) (name string, errIdx []int) {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil {
		return "", nil
	}
	path := fn.Pkg().Path()
	if !internalPkg(path) || !errDropPkgs[pkgBase(path)] {
		return "", nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", nil
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errorType) {
			errIdx = append(errIdx, i)
		}
	}
	return pkgBase(path) + "." + fn.Name(), errIdx
}

func runErrDrop(p *Package, report func(pos token.Pos, format string, args ...any)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if name, errIdx := errDropScoped(p, call); len(errIdx) > 0 {
						report(call.Pos(), "error result of %s discarded; handle or record it", name)
					}
				}
			case *ast.AssignStmt:
				if len(n.Rhs) != 1 {
					return true
				}
				call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				name, errIdx := errDropScoped(p, call)
				if len(errIdx) == 0 {
					return true
				}
				for _, i := range errIdx {
					if i >= len(n.Lhs) {
						continue
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						report(n.Pos(), "error result of %s assigned to _; handle or record it", name)
					}
				}
			}
			return true
		})
	}
}

// ---- prealloc ----

// preallocPkgs are the hot-path packages whose loops run over nets and
// cells: an append into a never-preallocated slice there reallocates
// O(log n) times and copies O(n) memory for no reason.
var preallocPkgs = map[string]bool{
	"netlist": true, "hypergraph": true, "cluster": true,
	"place": true, "designs": true, "route": true, "cts": true,
}

var preallocCheck = &Check{
	Name: "prealloc",
	Doc: "append inside a loop into a slice declared nil or empty (var s []T " +
		"or s := []T{}) in a hot-path package (netlist, hypergraph, cluster, " +
		"place, designs, route, cts); pre-size with make(..., 0, n). A slice later " +
		"reassigned from make, a slicing expression (s = buf[:0] reuse), or " +
		"any other non-append source is treated as sized and not flagged.",
	Contract: "In the hot-path packages (netlist, hypergraph, cluster, place, designs, " +
		"route, cts) an append loop into a slice declared nil or empty (var s []T, " +
		"s := []T{}) regrows and recopies O(log n) times at million-element scale. " +
		"Pre-size with make(T, 0, n) when a bound is known. Slices reassigned from " +
		"make, from a slicing expression (s = buf[:0] reuse), or from any other " +
		"non-append source are treated as sized; genuinely unknowable survivor counts " +
		"carry a reasoned suppression.",
	Approved: []string{
		"out := make([]int32, 0, nPins); for ... { out = append(out, v) }",
		"s = buf[:0] — arena reuse counts as sized",
	},
	Run: runPrealloc,
}

// isSliceObj reports whether obj is a variable of slice type.
func isSliceObj(obj types.Object) bool {
	if obj == nil {
		return false
	}
	_, ok := obj.Type().Underlying().(*types.Slice)
	return ok
}

// emptySliceLit reports whether e is an empty slice literal ([]T{}).
func emptySliceLit(p *Package, e ast.Expr) bool {
	cl, ok := ast.Unparen(e).(*ast.CompositeLit)
	if !ok || len(cl.Elts) != 0 {
		return false
	}
	t := p.Info.TypeOf(cl)
	if t == nil {
		return false
	}
	_, isSlice := t.Underlying().(*types.Slice)
	return isSlice
}

// appendToSelf reports whether e is append(obj, ...) growing obj itself.
func appendToSelf(p *Package, e ast.Expr, obj types.Object) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || calleeBuiltin(p, call) != "append" || len(call.Args) < 1 {
		return false
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && p.Info.Uses[id] == obj
}

// runPrealloc flags x = append(x, ...) inside a loop when x was declared
// with no backing array (var x []T or x := []T{}) outside that loop and is
// never re-pointed at sized storage. The declaration classification is
// deliberately conservative: any assignment from a non-append source —
// make, a slicing expression, a call result — makes the variable "sized or
// unknowable" and exempt, so reuse patterns (s = buf[:0]) stay silent.
func runPrealloc(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if !internalPkg(p.Path) || !preallocPkgs[pkgBase(p.Path)] {
		return
	}
	for _, f := range p.Files {
		// Pass 1: slice variables whose declaration provides no capacity.
		bare := map[types.Object]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ValueSpec:
				for i, name := range n.Names {
					obj := p.Info.Defs[name]
					if !isSliceObj(obj) {
						continue
					}
					if len(n.Values) == 0 || (i < len(n.Values) && emptySliceLit(p, n.Values[i])) {
						bare[obj] = true
					}
				}
			case *ast.AssignStmt:
				if n.Tok != token.DEFINE {
					return true
				}
				for i, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || i >= len(n.Rhs) {
						continue
					}
					obj := p.Info.Defs[id]
					if isSliceObj(obj) && emptySliceLit(p, n.Rhs[i]) {
						bare[obj] = true
					}
				}
			}
			return true
		})
		// Pass 2: demote variables that are ever re-pointed at anything other
		// than their own append result.
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.Info.Uses[id]
				if obj == nil || !bare[obj] {
					continue
				}
				if len(as.Lhs) != len(as.Rhs) || !appendToSelf(p, as.Rhs[i], obj) {
					delete(bare, obj)
				}
			}
			return true
		})
		// Pass 3: flag self-appends inside a loop whose variable was declared
		// outside it (so the growth accumulates across iterations).
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Info.Uses[id]
			if obj == nil || !bare[obj] || !appendToSelf(p, as.Rhs[0], obj) {
				return true
			}
			for i := len(stack) - 2; i >= 0; i-- {
				var body ast.Node
				switch l := stack[i].(type) {
				case *ast.ForStmt:
					body = l
				case *ast.RangeStmt:
					body = l
				case *ast.FuncLit, *ast.FuncDecl:
					return true // function boundary: not in a loop
				}
				if body == nil {
					continue
				}
				if obj.Pos() < body.Pos() || obj.Pos() > body.End() {
					report(as.Pos(), "append into %s grows an unpreallocated slice inside a loop; pre-size with make(..., 0, n)", obj.Name())
				}
				return true // only the innermost loop decides
			}
			return true
		})
	}
}

// ---- printlib ----

var printLibCheck = &Check{
	Name: "printlib",
	Doc: "fmt.Print/Printf/Println or builtin print/println writing to stdout " +
		"from a package under internal/; output belongs to cmd/ (or an io.Writer parameter)",
	Contract: "Library packages under internal/ must not write to stdout: fmt.Print, " +
		"fmt.Printf, fmt.Println, and the builtin print/println are findings. Output " +
		"belongs to cmd/, or goes through an io.Writer parameter the caller controls. " +
		"fmt.Fprintf to an explicit writer is fine anywhere; a helper whose documented " +
		"contract is progress output carries a reasoned suppression.",
	Approved: []string{
		"fmt.Fprintf(w, ...) with w an io.Writer parameter",
		"fmt.Println in cmd/ — the CLI owns stdout",
	},
	Run: runPrintLib,
}

func runPrintLib(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if !internalPkg(p.Path) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch calleeBuiltin(p, call) {
			case "print", "println":
				report(call.Pos(), "builtin %s writes to stderr from a library package; take an io.Writer or return data", calleeBuiltin(p, call))
				return true
			}
			if fn := calleeFunc(p, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
				switch fn.Name() {
				case "Print", "Printf", "Println":
					report(call.Pos(), "fmt.%s writes to stdout from a library package; take an io.Writer or return data", fn.Name())
				}
			}
			return true
		})
	}
}
