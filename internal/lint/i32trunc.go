// The i32trunc check: unguarded int32/uint32 narrowing of length-derived or
// accumulated counts on the compact-CSR build paths. At the 1M-cell scale of
// the flow a silent truncation does not fail — it corrupts connectivity and
// quietly changes every downstream quality number.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// i32truncPkgs are the CSR/SoA builder packages: everything that packs
// len()-sized offsets into int32 arrays.
var i32truncPkgs = map[string]bool{
	"netlist": true, "hypergraph": true, "sta": true,
	"route": true, "cts": true, "place": true,
}

var i32TruncCheck = &Check{
	Name: "i32trunc",
	Doc: "int32(x)/uint32(x) conversion of a len()-derived or accumulated count with no " +
		"preceding math.MaxInt32 bound check in the same function, in a CSR/SoA builder " +
		"package (netlist, hypergraph, sta, route, cts, place); guard with an explicit " +
		"> math.MaxInt32 error return",
	Contract: "The compact-CSR structures of netlist, hypergraph, sta, route, cts, and place " +
		"store offsets and ids as int32. A conversion int32(x) where x comes from len() " +
		"or from a counter accumulated in the same function truncates silently once the " +
		"design crosses 2^31 pins/edges/nodes: connectivity wraps around instead of " +
		"failing, and every quality number downstream is quietly wrong. Such conversions " +
		"must be preceded (anywhere earlier in the same function declaration, including " +
		"closures it contains) by a bound check comparing against math.MaxInt32 or " +
		"math.MaxUint32 — preferably one that returns an error. Conversions of constants " +
		"and of values already 32 bits or narrower are exempt. The guard is recognized " +
		"function-granularly: one explicit check per builder covers its conversions, " +
		"which also means a guard on the wrong quantity is a documented false-negative " +
		"class (DESIGN.md §16); sub-slice lengths bounded by int32 CSR offsets are the " +
		"usual reasoned suppression.",
	Approved: []string{
		"if nPins > math.MaxInt32 { return nil, fmt.Errorf(...) } before the build loop",
		"int32(k) of a plain k++ packing counter: out of model, bounded by the guarded container size",
		"int32(len(sub)) where sub sits between two int32 CSR offsets — suppress with that reason",
	},
	Run: runI32Trunc,
}

func runI32Trunc(p *Package, report func(pos token.Pos, format string, args ...any)) {
	if !internalPkg(p.Path) || !i32truncPkgs[pkgBase(p.Path)] {
		return
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncTrunc(p, fd, report)
		}
	}
}

// checkFuncTrunc analyzes one function declaration: collects its MaxInt32
// guards and accumulated counters, then flags narrowing conversions that no
// guard precedes.
func checkFuncTrunc(p *Package, fd *ast.FuncDecl, report func(pos token.Pos, format string, args ...any)) {
	// Guard positions: if-conditions comparing something against
	// math.MaxInt32 / math.MaxUint32.
	var guards []token.Pos
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		if condMentionsMax32(p, ifs.Cond) {
			guards = append(guards, ifs.Pos())
		}
		return true
	})
	guardedBefore := func(pos token.Pos) bool {
		for _, g := range guards {
			if g < pos {
				return true
			}
		}
		return false
	}

	// Accumulated counters: objects assigned with op-assign or the
	// spelled-out x = x + ... form. Plain x++ counters are deliberately out
	// of model: in this tree they are dense packing indices bounded by the
	// container they fill, whose size the len()-derived half already guards.
	accum := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.MUL_ASSIGN:
				for _, lhs := range n.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						if o := p.Info.Uses[id]; o != nil {
							accum[o] = true
						}
					}
				}
			case token.ASSIGN:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					id, ok := ast.Unparen(lhs).(*ast.Ident)
					if !ok {
						continue
					}
					o := p.Info.Uses[id]
					if o == nil {
						continue
					}
					if be, ok := ast.Unparen(n.Rhs[i]).(*ast.BinaryExpr); ok &&
						(be.Op == token.ADD || be.Op == token.MUL) && exprUsesObj(p, be, o) {
						accum[o] = true
					}
				}
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		tv, ok := p.Info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return true
		}
		b, ok := tv.Type.Underlying().(*types.Basic)
		if !ok || (b.Kind() != types.Int32 && b.Kind() != types.Uint32) {
			return true
		}
		arg := ast.Unparen(call.Args[0])
		if av, ok := p.Info.Types[arg]; ok && av.Value != nil {
			return true // constant: checked at compile time
		}
		if t := p.Info.TypeOf(arg); t == nil || narrow32(t) {
			return true // already 32 bits or narrower: no truncation
		}
		why := ""
		switch {
		case containsLen(p, arg):
			why = "a len()-derived count"
		case isAccumIdent(p, arg, accum):
			why = "an accumulated count"
		default:
			return true
		}
		if !guardedBefore(call.Pos()) {
			report(call.Pos(), "%s(%s) narrows %s with no preceding math.MaxInt32 bound check in %s; at 1M+ scale silent truncation corrupts connectivity — guard with an explicit > math.MaxInt32 error return",
				b.Name(), exprString(p, arg), why, fd.Name.Name)
		}
		return true
	})
}

// condMentionsMax32 reports whether a condition references math.MaxInt32 or
// math.MaxUint32 inside a comparison.
func condMentionsMax32(p *Package, cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.GTR, token.GEQ, token.LSS, token.LEQ:
			if mentionsMax32Const(p, be.X) || mentionsMax32Const(p, be.Y) {
				found = true
			}
		}
		return !found
	})
	return found
}

func mentionsMax32Const(p *Package, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if c, ok := p.Info.Uses[id].(*types.Const); ok {
			if c.Name() == "MaxInt32" || c.Name() == "MaxUint32" {
				found = true
			}
		}
		return !found
	})
	return found
}

// containsLen reports whether e contains a call to the len builtin.
func containsLen(p *Package, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && calleeBuiltin(p, call) == "len" {
			found = true
		}
		return !found
	})
	return found
}

// isAccumIdent reports whether e is an identifier the enclosing function
// accumulates into.
func isAccumIdent(p *Package, e ast.Expr, accum map[types.Object]bool) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	o := p.Info.Uses[id]
	return o != nil && accum[o]
}

// narrow32 reports whether t's underlying basic type is 32 bits or narrower,
// so an int32/uint32 conversion cannot drop high bits.
func narrow32(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int32, types.Uint32, types.Int16, types.Uint16, types.Int8, types.Uint8, types.Bool:
		return true
	}
	return false
}

// exprString renders a short source-ish form of e for messages.
func exprString(p *Package, e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.CallExpr:
		if calleeBuiltin(p, x) == "len" {
			return "len(...)"
		}
	}
	return "..."
}
