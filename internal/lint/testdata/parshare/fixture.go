// Package fixturepar is a parshare fixture; the harness loads it under the
// faked import path ppaclust/internal/fixturepar. The firing half writes
// shared captured state from par closures; the approved half uses the
// repo's partitioned idioms (per-index slots, per-worker partials, gather
// arenas, partitioned helpers) and must stay silent.
package fixturepar

import "ppaclust/internal/par"

// SharedAppend appends to a captured slice from every worker: flagged.
func SharedAppend(vals []float64, workers int) []float64 {
	var out []float64
	par.ForEach(workers, len(vals), func(i int) {
		out = append(out, vals[i]*2) // want `parshare: par.ForEach closure appends to captured "out"`
	})
	return out
}

// SharedSum accumulates into a captured scalar: flagged.
func SharedSum(vals []float64, workers int) float64 {
	sum := 0.0
	par.ForEach(workers, len(vals), func(i int) {
		sum += vals[i] // want `parshare: par.ForEach closure accumulates into captured "sum"`
	})
	return sum
}

// CountByBucket writes a captured map from every worker: flagged even though
// the key is index-derived — concurrent map writes race regardless.
func CountByBucket(bucket []int, workers int) map[int]int {
	counts := map[int]int{}
	par.ForEach(workers, len(bucket), func(i int) {
		counts[bucket[i]]++ // want `parshare: par.ForEach closure writes captured map through "counts"`
	})
	return counts
}

// appendInto is the helper behind HelperAppend; the write lives here but is
// reported at the call site inside the closure.
func appendInto(dst *[]int, v int) {
	*dst = append(*dst, v)
}

// HelperAppend hides a shared append one call deep: flagged at the call.
func HelperAppend(n, workers int) []int {
	var out []int
	par.ForEach(workers, n, func(i int) {
		appendInto(&out, i) // want `parshare: par.ForEach closure calls appendInto, which writes to shared "dst"`
	})
	return out
}

type tally struct{ total float64 }

func (t *tally) add(v float64) { t.total += v }

// MethodAccum accumulates into a captured receiver through a method: flagged
// at the call.
func MethodAccum(vals []float64, workers int) float64 {
	var acc tally
	par.ForEach(workers, len(vals), func(i int) {
		acc.add(vals[i]) // want `parshare: par.ForEach closure calls add, which accumulates into shared "t"`
	})
	return acc.total
}

// Doubled writes per-index slots: the canonical approved idiom.
func Doubled(vals []float64, workers int) []float64 {
	out := make([]float64, len(vals))
	par.ForEach(workers, len(vals), func(i int) {
		out[i] = vals[i] * 2
	})
	return out
}

// ShardedSum accumulates per-worker partials, merged in fixed order after
// the parallel section: approved.
func ShardedSum(vals []float64, workers int) float64 {
	parts := make([]float64, workers)
	par.Blocks(workers, len(vals), func(w, lo, hi int) {
		for k := lo; k < hi; k++ {
			parts[w] += vals[k]
		}
	})
	sum := 0.0
	for _, v := range parts {
		sum += v
	}
	return sum
}

type gatherArena struct{ xs []int }

// GatherArenas appends through a pointer to the worker's own arena slot —
// the per-worker gather idiom: approved, the derived local partitions it.
func GatherArenas(items []int, workers int) [][]int {
	parts := make([]gatherArena, workers)
	par.Blocks(workers, len(items), func(w, lo, hi int) {
		gp := &parts[w]
		for k := lo; k < hi; k++ {
			if items[k]%2 == 0 {
				gp.xs = append(gp.xs, items[k])
			}
		}
	})
	out := make([][]int, workers)
	for w := range parts {
		out[w] = parts[w].xs
	}
	return out
}

// WorkerScratch takes a per-worker view of a captured scratch table and
// writes block-partitioned output slots: approved.
func WorkerScratch(vals []float64, workers int) []float64 {
	scratch := make([][]float64, workers)
	for w := range scratch {
		scratch[w] = make([]float64, 1)
	}
	out := make([]float64, len(vals))
	par.Blocks(workers, len(vals), func(w, lo, hi int) {
		sc := scratch[w]
		for k := lo; k < hi; k++ {
			sc[0] = vals[k]
			out[k] = sc[0] * 2
		}
	})
	return out
}

// setSlot is the partitioned helper behind HelperPartitioned.
func setSlot(dst []float64, i int, v float64) { dst[i] = v }

// HelperPartitioned writes per-index slots one call deep: the index-derived
// argument makes the helper's parameter a partitioning index, so this is
// approved.
func HelperPartitioned(vals []float64, workers int) []float64 {
	out := make([]float64, len(vals))
	par.ForEach(workers, len(vals), func(i int) {
		setSlot(out, i, vals[i]*3)
	})
	return out
}

// Squares returns per-index results through par.Map's own slot array: the
// closure writes nothing captured.
func Squares(vals []float64, workers int) []float64 {
	return par.Map(workers, len(vals), func(i int) float64 {
		return vals[i] * vals[i]
	})
}

// SuppressedAppend demonstrates a written-reason suppression of a shared
// append: silent.
func SuppressedAppend(n, workers int) []int {
	var out []int
	par.ForEach(workers, n, func(i int) {
		out = append(out, i) //ppalint:ignore parshare fixture: collected nondeterministically on purpose, order fixed by a later sort
	})
	return out
}
