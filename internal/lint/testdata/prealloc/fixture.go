// Package place is a prealloc fixture; the harness loads it under the faked
// import path ppaclust/internal/place so the check treats it as hot-path
// code.
package place

import "ppaclust/internal/par"

// GrowNil appends into a nil-declared slice across loop iterations: flagged.
func GrowNil(nets [][]int) []int {
	var pins []int
	for _, n := range nets {
		pins = append(pins, n...) // want `prealloc: append into pins grows an unpreallocated slice`
	}
	return pins
}

// GrowEmptyLit starts from an empty literal, same reallocation churn: flagged.
func GrowEmptyLit(cells []float64) []float64 {
	out := []float64{}
	for _, c := range cells {
		if c > 0 {
			out = append(out, c) // want `prealloc: append into out grows an unpreallocated slice`
		}
	}
	return out
}

// Presized carries capacity from its declaration: not flagged.
func Presized(cells []float64) []float64 {
	out := make([]float64, 0, len(cells))
	for _, c := range cells {
		out = append(out, c)
	}
	return out
}

// Reused is re-pointed at scratch storage (the s = buf[:0] reuse idiom);
// the non-append assignment makes its size unknowable: not flagged.
func Reused(cells []float64, buf []float64) []float64 {
	var out []float64
	out = buf[:0]
	for _, c := range cells {
		out = append(out, c)
	}
	return out
}

// FreshPerIteration declares the slice inside the loop, so nothing
// accumulates across iterations: not flagged.
func FreshPerIteration(nets [][]int) int {
	total := 0
	for _, n := range nets {
		var tmp []int
		tmp = append(tmp, n...)
		total += len(tmp)
	}
	return total
}

// OutsideLoop appends once with no loop around it: not flagged.
func OutsideLoop(a, b []int) []int {
	var out []int
	out = append(out, a...)
	out = append(out, b...)
	return out
}

// Suppressed documents an unknowable bound with a written reason: silenced.
func Suppressed(nets [][]int, keep func(int) bool) []int {
	var out []int
	for _, n := range nets {
		for _, v := range n {
			if keep(v) {
				//ppalint:ignore prealloc fixture: survivor count is unknowable up front
				out = append(out, v)
			}
		}
	}
	return out
}

// WorkerPartials is the sharded-accumulate-then-ordered-merge idiom from the
// route/CTS/designs parallel paths: each worker appends into its own arena
// slot, and the slots are concatenated in block order afterwards. The
// indexed appends carry no single pre-sizable declaration (shard sizes are
// workload-dependent), and the merge target is pre-sized: not flagged.
func WorkerPartials(nets [][]int, workers int) []int {
	parts := make([][]int, workers)
	par.Blocks(workers, len(nets), func(w, lo, hi int) {
		for _, n := range nets[lo:hi] {
			parts[w] = append(parts[w], n...)
		}
	})
	out := make([]int, 0, len(nets))
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// ckptScratch mirrors the placer's checkpoint state: a scratch slice owned
// by the struct and re-pointed at its own [:0] every checkpoint.
type ckptScratch struct {
	critBuf []int32
}

// Candidates is the checkpoint candidate-collection idiom: append into the
// struct-owned scratch re-sliced to zero length, then re-anchor the field to
// the grown slice. The [:0] reuse makes the bound unknowable and amortizes
// the growth across checkpoints: not flagged.
func (s *ckptScratch) Candidates(active []int32, slack []float64) []int32 {
	cand := s.critBuf[:0]
	for _, ni := range active {
		if slack[ni] < 0 {
			cand = append(cand, ni)
		}
	}
	s.critBuf = cand
	return cand
}
