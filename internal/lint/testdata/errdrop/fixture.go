// Package fixture exercises the errdrop check: calls into the guarded
// scan/parser/flow APIs must not discard their error results. The harness
// loads it as ppaclust/internal/fixtureed.
package fixture

import "ppaclust/internal/scan"

// Dropped uses a guarded call as a bare statement: flagged.
func Dropped(ln *scan.Line) {
	ln.Str(0) // want `errdrop: error result of scan.Str discarded`
}

// Blanked assigns the error result to _: flagged.
func Blanked(ln *scan.Line) string {
	v, _ := ln.Str(0) // want `errdrop: error result of scan.Str assigned to _`
	return v
}

// Handled propagates the error: the approved path.
func Handled(ln *scan.Line) (string, error) {
	return ln.Str(0)
}

// Checked inspects the error before discarding the value: fine.
func Checked(ln *scan.Line) bool {
	_, err := ln.Float(0)
	return err == nil
}

// Suppressed carries a written-reason directive: finding silenced.
func Suppressed(ln *scan.Line) {
	ln.Str(0) //ppalint:ignore errdrop fixture: probe call, the result is intentionally unused
}
