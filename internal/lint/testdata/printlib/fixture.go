// Package fixture exercises the printlib check: libraries under internal/
// must not write to stdout. The harness loads it as
// ppaclust/internal/fixturepl.
package fixture

import (
	"fmt"
	"io"
)

// Shout prints to stdout from a library: flagged.
func Shout(v int) {
	fmt.Println("v =", v) // want `printlib: fmt.Println writes to stdout`
}

// ShoutF formats to stdout from a library: flagged.
func ShoutF(v int) {
	fmt.Printf("v = %d\n", v) // want `printlib: fmt.Printf writes to stdout`
}

// Builtin uses the bootstrap builtin: flagged.
func Builtin(v int) {
	println(v) // want `printlib: builtin println writes to stderr`
}

// Approved writes to a caller-supplied writer: the approved path.
func Approved(w io.Writer, v int) {
	fmt.Fprintf(w, "v = %d\n", v)
}

// Suppressed carries a written-reason directive: finding silenced.
func Suppressed(v int) {
	fmt.Println(v) //ppalint:ignore printlib fixture: progress output is this helper's documented contract
}
