// Package flow is an ndsource fixture for the allowed side; the harness
// loads it under the faked import path ppaclust/internal/flow, where
// time.Now is part of the contract (stage-runtime measurement) and must not
// fire. The fixture carries no want annotations: the whole package must be
// clean.
package flow

import "time"

// StageTime measures a stage runtime, the allowed time.Now use.
func StageTime(stage func()) time.Duration {
	t0 := time.Now()
	stage()
	return time.Since(t0)
}
