// Package fixturend is an ndsource fixture; the harness loads it under the
// faked import path ppaclust/internal/fixturend — an ordinary library
// package, where wall-clock reads, the process-global rand source, and
// map-order serialization are all findings. The approved half uses seeded
// local generators and sorted-key encoding.
package fixturend

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"
)

// Stamp reads the wall clock in a library package: flagged.
func Stamp() int64 {
	return time.Now().UnixNano() // want `ndsource: time.Now in a library package outside flow/experiments`
}

// Roll draws from the process-global auto-seeded source: flagged.
func Roll() float64 {
	return rand.Float64() // want `ndsource: package-global math/rand.Float64 draws from the process-wide auto-seeded source`
}

// DumpScores encodes straight out of a map range, baking random iteration
// order into the output: flagged.
func DumpScores(w io.Writer, scores map[string]float64) error {
	enc := json.NewEncoder(w)
	for name, s := range scores { // want `ndsource: map iteration order is random and this range body feeds encoding/json \(Encode\)`
		if err := enc.Encode(map[string]float64{name: s}); err != nil {
			return err
		}
	}
	return nil
}

// PrintScores writes through fmt.Fprintf from a map range: flagged.
func PrintScores(w io.Writer, scores map[string]float64) {
	for name, s := range scores { // want `ndsource: map iteration order is random and this range body writes through fmt.Fprintf`
		fmt.Fprintf(w, "%s %v\n", name, s)
	}
}

// SeededRoll constructs a locally seeded generator: approved.
func SeededRoll(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// SortedDump collects, sorts, then encodes in sorted order: approved.
func SortedDump(w io.Writer, scores map[string]float64) error {
	names := make([]string, 0, len(scores))
	for name := range scores {
		names = append(names, name)
	}
	sort.Strings(names)
	enc := json.NewEncoder(w)
	for _, name := range names {
		if err := enc.Encode(map[string]float64{name: scores[name]}); err != nil {
			return err
		}
	}
	return nil
}

// Accumulate sums numerically out of a map range — order-independent, and
// maporder's half of the contract, not ndsource's: silent here.
func Accumulate(scores map[string]int) int {
	total := 0
	for _, s := range scores {
		total += s
	}
	return total
}

// SuppressedStamp demonstrates a written-reason suppression: silent.
func SuppressedStamp() int64 {
	return time.Now().UnixNano() //ppalint:ignore ndsource fixture: debug-only timestamp, never compared across runs
}
