// Package netlist is an i32trunc fixture; the harness loads it under the
// faked import path ppaclust/internal/netlist so the check treats it as a
// CSR/SoA builder package. The firing half narrows len()-derived and
// accumulated counts unguarded; the approved half guards first, packs with
// out-of-model counters, or carries a reasoned suppression.
package netlist

import (
	"fmt"
	"math"
)

// BuildOffsets narrows per-row lengths with no bound check: flagged.
func BuildOffsets(rows [][]int) []int32 {
	out := make([]int32, 0, len(rows))
	for _, r := range rows {
		out = append(out, int32(len(r))) // want `i32trunc: int32\(len\(\.\.\.\)\) narrows a len\(\)-derived count`
	}
	return out
}

// TotalPins narrows a += accumulated total with no bound check: flagged.
func TotalPins(rows [][]int) int32 {
	total := 0
	for _, r := range rows {
		total += len(r)
	}
	return int32(total) // want `i32trunc: int32\(total\) narrows an accumulated count`
}

// BuildOffsetsChecked guards the total before the narrowing conversions:
// approved.
func BuildOffsetsChecked(rows [][]int) ([]int32, error) {
	total := 0
	for _, r := range rows {
		total += len(r)
	}
	if total > math.MaxInt32 {
		return nil, fmt.Errorf("netlist: %d pins exceed the int32 CSR capacity", total)
	}
	start := make([]int32, len(rows)+1)
	var off int32
	for i, r := range rows {
		start[i] = off
		off += int32(len(r))
	}
	start[len(rows)] = int32(total)
	return start, nil
}

// PackDense converts a plain k++ packing counter: out of model (bounded by
// the container it fills), silent.
func PackDense(keep []bool) []int32 {
	out := make([]int32, 0, len(keep))
	k := 0
	for i := range keep {
		if keep[i] {
			out = append(out, int32(k))
			k++
		}
	}
	return out
}

// Widen converts values already 32 bits or narrower: silent.
func Widen(v int32, u uint16) (int32, uint32) {
	return int32(v), uint32(u)
}

// SuppressedSubSlice demonstrates the reasoned-suppression idiom for a
// sub-slice length bounded by int32 CSR offsets: silent.
func SuppressedSubSlice(pins []int, start []int32, e int) int32 {
	sub := pins[start[e]:start[e+1]]
	return int32(len(sub)) //ppalint:ignore i32trunc fixture: sub sits between two int32 CSR offsets, its length fits int32
}
