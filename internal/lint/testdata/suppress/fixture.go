// Package fixture exercises the suppression contract itself: malformed
// //ppalint:ignore directives are reported under the "suppress" check and
// silence nothing. The harness loads it as ppaclust/internal/fixturesup.
// Want annotations share the directive's line as block comments, since a
// line comment would swallow them into the directive text.
package fixture

/* want `suppress: ppalint:ignore needs a check name and a reason` */ //ppalint:ignore

/* want `suppress: ppalint:ignore names unknown check "nosuchcheck"` */ //ppalint:ignore nosuchcheck with a reason

// StillFlagged shows a reasonless directive suppressing nothing: both the
// directive and the panic it fails to cover are reported.
func StillFlagged() {
	/* want `suppress: ppalint:ignore nopanic needs a written reason` */ //ppalint:ignore nopanic
	panic("still reported")                                              // want `nopanic: panic in library package`
}
