// Package sta is a maporder fixture; the harness loads it under the faked
// import path ppaclust/internal/sta so the check treats it as
// determinism-critical code.
package sta

import (
	"sort"

	"ppaclust/internal/par"
)

// SumFloat accumulates a float in map order: flagged.
func SumFloat(m map[int]float64) float64 {
	var total float64
	for _, v := range m { // want `maporder: map iteration order is random: body accumulates a float`
		total += v
	}
	return total
}

// SpelledOutSum writes the accumulation as x = x + v: flagged.
func SpelledOutSum(m map[int]float64) float64 {
	var total float64
	for _, v := range m { // want `maporder: .*accumulates a float`
		total = total + v
	}
	return total
}

// AppendVals bakes map order into a slice: flagged.
func AppendVals(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `maporder: .*appends a non-key value to a slice`
		out = append(out, v)
	}
	return out
}

// Dispatch hands work to internal/par in map order: flagged.
func Dispatch(m map[int][]float64) {
	for _, vs := range m { // want `maporder: .*dispatches work to internal/par`
		vs := vs
		_ = par.Map(1, len(vs), func(i int) float64 { return vs[i] })
	}
}

// SortedSum is the sorted-keys idiom the check must recognize: the first
// range only collects keys, the accumulation ranges the sorted slice.
func SortedSum(m map[int]float64) float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var total float64
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// CountInts keeps integer counters: order-independent, not flagged.
func CountInts(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// SuppressedSum carries a written-reason directive: finding silenced.
func SuppressedSum(m map[int]float64) float64 {
	var total float64
	//ppalint:ignore maporder fixture: demonstrates a valid written-reason suppression
	for _, v := range m {
		total += v
	}
	return total
}

// ShardedOrderedMerge is the route/CTS parallel idiom: collect and sort the
// keys, shard the sorted work list over per-worker partial accumulators via
// internal/par, then merge the partials in fixed block order. The only map
// range is the key-collection loop; accumulation and dispatch both run over
// slices, so nothing is flagged.
func ShardedOrderedMerge(m map[int]float64, workers int) float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	parts := make([]float64, workers)
	par.Blocks(workers, len(keys), func(w, lo, hi int) {
		for _, k := range keys[lo:hi] {
			parts[w] += m[k]
		}
	})
	var total float64
	for _, p := range parts {
		total += p
	}
	return total
}

// CriticalBySlackMap mimics a broken version of the placer's timing
// checkpoint: collecting reweight candidates by ranging a slack map bakes
// the random iteration order into the candidate list, so a later
// tie-breaking sort cannot restore determinism for equal slacks. Flagged.
func CriticalBySlackMap(slack map[int32]float64) []float64 {
	var crit []float64
	for _, s := range slack { // want `maporder: .*appends a non-key value to a slice`
		if s < 0 {
			crit = append(crit, s)
		}
	}
	return crit
}

// CriticalBySortedNets is the shape the checkpoint actually uses: walk a
// deterministic net-index slice, read the map (or slice) by key, and sort
// with an explicit tie-break afterwards. The only map access is a keyed
// lookup, so nothing is flagged.
func CriticalBySortedNets(active []int32, slack map[int32]float64) []int32 {
	crit := make([]int32, 0, len(active))
	for _, ni := range active {
		if slack[ni] < 0 {
			crit = append(crit, ni)
		}
	}
	sort.Slice(crit, func(a, b int) bool {
		sa, sb := slack[crit[a]], slack[crit[b]]
		if sa != sb {
			return sa < sb
		}
		return crit[a] < crit[b]
	})
	return crit
}
