// Package def exercises the rawindex check; the harness loads it as
// ppaclust/internal/def, one of the format readers.
package def

import "ppaclust/internal/scan"

// First reads through a bare token-slice variable: flagged.
func First(f []string) string {
	return f[0] // want `rawindex: raw index into a token slice`
}

// Field reads through a .Fields selector: flagged.
func Field(ln *scan.Line) string {
	return ln.Fields[1] // want `rawindex: raw index into a token slice`
}

// Checked goes through the bounds-checked accessor: the approved path.
func Checked(ln *scan.Line) string {
	return ln.Tok(1)
}

// Build stores into a freshly made slice: construction, not token access.
func Build(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = "x"
	}
	return out
}

// route holds domain data behind a named field: reads through it carry
// their own invariants and are exempt.
type route struct{ hops []string }

func (r route) firstHop() string {
	if len(r.hops) == 0 {
		return ""
	}
	return r.hops[0]
}

// Suppressed carries a written-reason directive: finding silenced.
func Suppressed(f []string) string {
	return f[2] //ppalint:ignore rawindex fixture: bounds established by the caller's Require
}
