// Package fixture exercises the nopanic check; the harness loads it as
// ppaclust/internal/fixture, a library package with no exemption.
package fixture

import (
	"errors"
	"log"
	"os"
)

// Explode panics on a reachable condition: flagged.
func Explode(bad bool) {
	if bad {
		panic("boom") // want `nopanic: panic in library package`
	}
}

// FatalLog kills the process from a library: flagged.
func FatalLog(err error) {
	log.Fatalf("unrecoverable: %v", err) // want `nopanic: log.Fatalf in library package`
}

// Quit exits from a library: flagged.
func Quit() {
	os.Exit(2) // want `nopanic: os.Exit in library package`
}

// Returned is the approved path: errors go up, cmd/ decides how to die.
func Returned(bad bool) error {
	if bad {
		return errors.New("bad input")
	}
	return nil
}

// Rethrow re-raises a captured child-goroutine panic — the one legitimate
// library use, silenced with a written reason.
func Rethrow(pv any) {
	if pv != nil {
		panic(pv) //ppalint:ignore nopanic fixture: re-raises a captured child panic, mirroring internal/par
	}
}
