// Package fixturesa exercises the -suppressions audit: one live directive
// (it silences a real finding), one stale directive (nothing left on its
// line to silence), and one directive for a check the audit run does not
// select (never judged stale). TestSuppressionAudit loads this package with
// lint.Audit rather than the want-annotation harness.
package fixturesa

import "fmt"

// Live: the panic below is a real nopanic finding, so the directive is used.
func MustPositive(v int) int {
	if v <= 0 {
		panic(fmt.Sprintf("fixturesa: %d must be positive", v)) //ppalint:ignore nopanic fixture: live directive, silences the finding on this line
	}
	return v
}

// Stale: nothing on the annotated line fires nopanic anymore.
func Clean(v int) int {
	return v + 1 //ppalint:ignore nopanic fixture: stale directive, the panic it excused is gone
}

// Unselected: maporder is not part of the audit's check selection, so this
// directive is reported but never judged stale.
func Other(v int) int {
	return v * 2 //ppalint:ignore maporder fixture: directive for an unselected check
}
