package sdc

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"ppaclust/internal/scan"
	"ppaclust/internal/sta"
)

// FuzzReadSDC asserts the SDC reader never panics, reports every failure as
// a structured *scan.ParseError (including a -period flag that ends its
// line), and round-trips its own emission byte-for-byte.
func FuzzReadSDC(f *testing.F) {
	var seed bytes.Buffer
	if err := Write(&seed, sta.DefaultConstraints(0.8e-9)); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("create_clock -name clk -period 1.5 [get_ports clk]\n" +
		"set_input_delay 0.2 -clock clk [all_inputs]\n" +
		"set_load 0.004 [all_outputs]\n")
	f.Add("# comment\ncreate_clock -period 2.0 [get_ports ck]\nset_input_transition 0.05 [all_inputs]\n")
	f.Add("create_clock -period\n")
	f.Add("create_clock [get_ports clk] -period abc\n")
	f.Fuzz(func(t *testing.T, in string) {
		cons, _, err := ParseWith(strings.NewReader(in), Options{File: "fuzz.sdc"})
		if _, _, lerr := ParseWith(strings.NewReader(in),
			Options{File: "fuzz.sdc", Lenient: true}); lerr != nil {
			requireParseError(t, lerr)
		}
		if err != nil {
			requireParseError(t, err)
			return
		}
		var w1 bytes.Buffer
		if err := Write(&w1, cons); err != nil {
			t.Fatalf("write after accepting parse: %v", err)
		}
		cons2, err := Parse(bytes.NewReader(w1.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of own output failed: %v\noutput:\n%s", err, w1.String())
		}
		var w2 bytes.Buffer
		if err := Write(&w2, cons2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("write->read->write is not a fixpoint\n--- first:\n%s--- second:\n%s",
				w1.String(), w2.String())
		}
	})
}

func requireParseError(t *testing.T, err error) {
	t.Helper()
	var pe *scan.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is not a *scan.ParseError: %T: %v", err, err)
	}
	if pe.File == "" {
		t.Fatalf("ParseError without file context: %v", pe)
	}
}
