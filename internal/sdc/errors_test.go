package sdc

import (
	"errors"
	"math"
	"strings"
	"testing"

	"ppaclust/internal/scan"
)

// TestMalformedInputs checks the flag-parsing fixes: a flag that ends its
// line, an unparsable -period, and out-of-range values all produce
// structured errors with the right line — the clock is never silently
// defaulted.
func TestMalformedInputs(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		line    int
		msgPart string
	}{
		{"period last token", "# header\ncreate_clock -name clk -period\n", 2, "last token"},
		{"period unparsable", "create_clock -period x [get_ports clk]\n", 1, "unparsable"},
		{"period missing", "create_clock [get_ports clk]\n", 1, "missing -period"},
		{"period zero", "create_clock -period 0 [get_ports clk]\n", 1, "out of range"},
		{"period huge", "create_clock -period 1e12 [get_ports clk]\n", 1, "out of range"},
		{"portless clock", "create_clock -period 1.0\n", 1, "needs a port"},
		{"delay no value", "create_clock -period 1 [get_ports c]\nset_input_delay -clock c [all_inputs]\n", 2, "no numeric value"},
		{"load out of range", "create_clock -period 1 [get_ports c]\nset_load 1e10 [all_outputs]\n", 2, "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("parse accepted %q", tc.in)
			}
			var pe *scan.ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error is %T, not *scan.ParseError: %v", err, err)
			}
			if pe.File != "sdc" {
				t.Fatalf("file = %q", pe.File)
			}
			if pe.Line != tc.line {
				t.Fatalf("line = %d, want %d (%v)", pe.Line, tc.line, pe)
			}
			if !strings.Contains(pe.Msg, tc.msgPart) {
				t.Fatalf("msg %q does not mention %q", pe.Msg, tc.msgPart)
			}
		})
	}
	// No create_clock at all: file-level error, line 0.
	_, err := Parse(strings.NewReader("set_load 0.01 [all_outputs]\n"))
	var pe *scan.ParseError
	if !errors.As(err, &pe) || pe.Line != 0 || !strings.Contains(pe.Msg, "no create_clock") {
		t.Fatalf("missing-clock error malformed: %v", err)
	}
}

// TestLenientMode checks tolerable command errors downgrade to warnings
// while an unusable clock period stays fatal.
func TestLenientMode(t *testing.T) {
	in := "create_clock -period 2.0 [get_ports ck]\n" +
		"set_input_delay -clock ck [all_inputs]\n" + // warn: no value, default kept
		"set_load huge [all_outputs]\n" // warn: no value
	cons, warns, err := ParseWith(strings.NewReader(in), Options{Lenient: true})
	if err != nil {
		t.Fatalf("lenient parse failed: %v", err)
	}
	if len(warns) != 2 {
		t.Fatalf("warnings = %d, want 2: %v", len(warns), warns)
	}
	if cons.ClockPeriod != 2.0e-9 {
		t.Fatalf("period = %v", cons.ClockPeriod)
	}
	if cons.InputDelay != 0.1*cons.ClockPeriod {
		t.Fatalf("input delay should derive from period, got %v", cons.InputDelay)
	}
	// The clock itself stays fatal in lenient mode.
	if _, _, err := ParseWith(strings.NewReader("create_clock -period x [get_ports c]\n"),
		Options{Lenient: true}); err == nil {
		t.Fatal("unparsable period must stay fatal in lenient mode")
	}
	if _, _, err := ParseWith(strings.NewReader("set_load 0.1 [all_outputs]\n"),
		Options{Lenient: true}); err == nil {
		t.Fatal("missing create_clock must stay fatal in lenient mode")
	}
	// A portless clock is tolerated leniently: period recorded, port warned.
	cons, warns, err = ParseWith(strings.NewReader("create_clock -period 1.5\n"), Options{Lenient: true})
	if err != nil {
		t.Fatalf("portless clock should be tolerable: %v", err)
	}
	if len(warns) != 1 || math.Abs(cons.ClockPeriod-1.5e-9) > 1e-18 || len(cons.ClockPorts) != 0 {
		t.Fatalf("portless clock handling: warns=%v period=%v ports=%v",
			warns, cons.ClockPeriod, cons.ClockPorts)
	}
}

// TestExplicitZeroDelayStaysZero guards the writer round trip: an explicit
// 0.0 input delay must not re-trigger the 0.1*period default on re-parse.
func TestExplicitZeroDelayStaysZero(t *testing.T) {
	in := "create_clock -period 1.0 [get_ports ck]\n" +
		"set_input_delay 0.0 -clock ck [all_inputs]\n"
	cons, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if cons.InputDelay != 0 {
		t.Fatalf("explicit zero delay overridden to %v", cons.InputDelay)
	}
	if cons.OutputDelay != 0.1*cons.ClockPeriod {
		t.Fatalf("unset output delay should still derive: %v", cons.OutputDelay)
	}
}
