package sdc

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ppaclust/internal/sta"
)

func TestWriteParseRoundTrip(t *testing.T) {
	cons := sta.DefaultConstraints(0.8e-9)
	cons.ClockPorts = []string{"clk"}
	var buf bytes.Buffer
	if err := Write(&buf, cons); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.ClockPeriod-cons.ClockPeriod) > 1e-15 {
		t.Fatalf("period %v != %v", got.ClockPeriod, cons.ClockPeriod)
	}
	if len(got.ClockPorts) != 1 || got.ClockPorts[0] != "clk" {
		t.Fatalf("clock ports %v", got.ClockPorts)
	}
	if math.Abs(got.InputDelay-cons.InputDelay) > 1e-15 ||
		math.Abs(got.OutputDelay-cons.OutputDelay) > 1e-15 {
		t.Fatal("IO delays changed")
	}
	if math.Abs(got.PortCap-cons.PortCap) > 1e-18 {
		t.Fatalf("port cap %v != %v", got.PortCap, cons.PortCap)
	}
	if math.Abs(got.InputSlew-cons.InputSlew) > 1e-15 {
		t.Fatal("input slew changed")
	}
}

func TestParseTypicalFile(t *testing.T) {
	src := `
# constraints for aes
create_clock -name clk -period 0.55 [get_ports clk]
set_input_delay 0.05 -clock clk [all_inputs]
set_output_delay 0.06 -clock clk [all_outputs]
set_load 0.004 [all_outputs]
some_unknown_command -foo bar
`
	cons, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cons.ClockPeriod-0.55e-9) > 1e-15 {
		t.Fatalf("period=%v", cons.ClockPeriod)
	}
	if cons.ClockPorts[0] != "clk" {
		t.Fatalf("ports=%v", cons.ClockPorts)
	}
	if math.Abs(cons.InputDelay-0.05e-9) > 1e-15 {
		t.Fatalf("input delay=%v", cons.InputDelay)
	}
	if math.Abs(cons.PortCap-4e-15) > 1e-18 {
		t.Fatalf("load=%v", cons.PortCap)
	}
}

func TestParseNoClockFails(t *testing.T) {
	if _, err := Parse(strings.NewReader("set_load 0.01 [all_outputs]\n")); err == nil {
		t.Fatal("expected error without create_clock")
	}
}

func TestDefaultsDerived(t *testing.T) {
	cons, err := Parse(strings.NewReader("create_clock -name clk -period 1.0 [get_ports clk]\n"))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cons.InputDelay-0.1e-9) > 1e-15 || math.Abs(cons.OutputDelay-0.1e-9) > 1e-15 {
		t.Fatalf("derived delays: %v %v", cons.InputDelay, cons.OutputDelay)
	}
}
