// Package sdc reads and writes the SDC (Synopsys Design Constraints) subset
// the flow consumes: create_clock, set_input_delay, set_output_delay,
// set_input_transition and set_load. Times are expressed in nanoseconds and
// loads in picofarads in the file, converted to SI on parse.
package sdc

import (
	"fmt"
	"io"
	"strings"

	"ppaclust/internal/scan"
	"ppaclust/internal/sta"
)

// Parse-time sanity bounds, in file units (ns / pF). The clock period must
// be a usable positive value; delays, transitions and loads are capped so
// the fixed-precision writer round-trips exactly.
const (
	minPeriodNS = 1e-3
	maxPeriodNS = 1e9
	maxValue    = 1e9
)

// Write emits constraints in SDC syntax.
func Write(w io.Writer, cons sta.Constraints) error {
	for _, clk := range cons.ClockPorts {
		fmt.Fprintf(w, "create_clock -name %s -period %.4f [get_ports %s]\n",
			clk, cons.ClockPeriod*1e9, clk)
	}
	if len(cons.ClockPorts) > 0 {
		clk := cons.ClockPorts[0]
		fmt.Fprintf(w, "set_input_delay %.4f -clock %s [all_inputs]\n", cons.InputDelay*1e9, clk)
		fmt.Fprintf(w, "set_output_delay %.4f -clock %s [all_outputs]\n", cons.OutputDelay*1e9, clk)
	}
	fmt.Fprintf(w, "set_input_transition %.4f [all_inputs]\n", cons.InputSlew*1e9)
	_, err := fmt.Fprintf(w, "set_load %.6f [all_outputs]\n", cons.PortCap*1e12)
	return err
}

// Options configures a parse.
type Options struct {
	// File names the input in errors; defaults to "sdc".
	File string
	// Lenient tolerates recoverable field errors — a delay/transition/load
	// command without a parsable value — by keeping the default and
	// recording a warning. An unusable create_clock (missing, valueless or
	// unparsable -period) is fatal in both modes: the flow cannot default
	// the clock.
	Lenient bool
}

// Parse reads SDC commands into constraints, strictly: every malformed
// field is a *scan.ParseError. Unknown commands are ignored (the subset
// philosophy of most academic flows).
func Parse(r io.Reader) (sta.Constraints, error) {
	cons, _, err := ParseWith(r, Options{})
	return cons, err
}

// ParseWith reads SDC under the given options. In lenient mode the returned
// warnings list the fields that were skipped.
func ParseWith(r io.Reader, o Options) (sta.Constraints, []*scan.ParseError, error) {
	file := o.File
	if file == "" {
		file = "sdc"
	}
	// Start from neutral values; defaults derive from the parsed period.
	cons := sta.Constraints{InputSlew: 20e-12, PortCap: 4e-15, InputActivity: 0.15}
	var warns *scan.Warnings
	if o.Lenient {
		warns = &scan.Warnings{}
	}
	strict := !o.Lenient
	tolerate := func(err *scan.ParseError) error {
		if strict {
			return err
		}
		warns.Add(err)
		return nil
	}
	// Explicit-value tracking: a written 0.0000 must stay an explicit zero
	// instead of re-triggering the period-derived defaults.
	var sawInputDelay, sawOutputDelay bool

	sc := scan.NewScanner(r, file, 1024*1024)
	for sc.Scan() {
		ln := sc.Line()
		if strings.HasPrefix(ln.Tok(0), "#") {
			continue
		}
		ln = &scan.Line{File: ln.File, Num: ln.Num,
			Fields: tokenizeTCL(strings.Join(ln.Fields, " "))}
		switch ln.Tok(0) {
		case "create_clock":
			period, err := flagValue(ln, "-period")
			if err != nil {
				return cons, warns.List(), err
			}
			if period < minPeriodNS || period > maxPeriodNS {
				return cons, warns.List(),
					ln.Errf("-period", "clock period %g ns out of range [%g, %g]",
						period, minPeriodNS, maxPeriodNS)
			}
			port := portArg(ln)
			if port == "" {
				port, _ = flagString(ln, "-name")
			}
			// A clock without a usable port name cannot be re-emitted; the
			// period is still recorded in lenient mode (the flow needs only
			// the period, ports just mark clock nets).
			if port == "" || strings.HasPrefix(port, "-") {
				err := ln.Errf(port, "create_clock needs a port ([get_ports ...]) or -name")
				if err := tolerate(err); err != nil {
					return cons, warns.List(), err
				}
			} else {
				cons.ClockPorts = append(cons.ClockPorts, port)
			}
			cons.ClockPeriod = period * 1e-9
		case "set_input_delay":
			if v, err := commandValue(ln); err != nil {
				if err := tolerate(err); err != nil {
					return cons, warns.List(), err
				}
			} else {
				cons.InputDelay = v * 1e-9
				sawInputDelay = true
			}
		case "set_output_delay":
			if v, err := commandValue(ln); err != nil {
				if err := tolerate(err); err != nil {
					return cons, warns.List(), err
				}
			} else {
				cons.OutputDelay = v * 1e-9
				sawOutputDelay = true
			}
		case "set_input_transition":
			if v, err := commandValue(ln); err != nil {
				if err := tolerate(err); err != nil {
					return cons, warns.List(), err
				}
			} else {
				cons.InputSlew = v * 1e-9
			}
		case "set_load":
			if v, err := commandValue(ln); err != nil {
				if err := tolerate(err); err != nil {
					return cons, warns.List(), err
				}
			} else {
				cons.PortCap = v * 1e-12
			}
		}
	}
	if err := sc.Err(); err != nil {
		return cons, warns.List(), err
	}
	if cons.ClockPeriod <= 0 {
		return cons, warns.List(), scan.Errorf(file, 0, "", "no create_clock -period found")
	}
	// Derive defaults the file did not set.
	if !sawInputDelay && cons.InputDelay == 0 {
		cons.InputDelay = 0.1 * cons.ClockPeriod
	}
	if !sawOutputDelay && cons.OutputDelay == 0 {
		cons.OutputDelay = 0.1 * cons.ClockPeriod
	}
	return cons, warns.List(), nil
}

// tokenizeTCL splits a line, treating [get_ports x] brackets as grouping.
func tokenizeTCL(line string) []string {
	line = strings.ReplaceAll(line, "[", " [ ")
	line = strings.ReplaceAll(line, "]", " ] ")
	return strings.Fields(line)
}

// flagValue finds "flag value" in the line and parses the value, reporting
// a missing flag, a flag that ends the line, and an unparsable value as
// distinct errors.
func flagValue(ln *scan.Line, flag string) (float64, *scan.ParseError) {
	for i := 0; i < ln.Len(); i++ {
		if ln.Tok(i) != flag {
			continue
		}
		if i+1 >= ln.Len() {
			return 0, ln.Errf(flag, "%s is the last token; it needs a value", flag)
		}
		v, ok := scan.ParseFloat(ln.Tok(i + 1))
		if !ok {
			return 0, ln.Errf(ln.Tok(i+1), "unparsable %s value", flag)
		}
		return v, nil
	}
	return 0, ln.Errf(ln.Tok(0), "missing %s", flag)
}

// flagString finds "flag value" and returns the value token.
func flagString(ln *scan.Line, flag string) (string, bool) {
	for i := 0; i+1 < ln.Len(); i++ {
		if ln.Tok(i) == flag {
			return ln.Tok(i + 1), true
		}
	}
	return "", false
}

// portArg extracts X from "[ get_ports X ]".
func portArg(ln *scan.Line) string {
	for i := 0; i+1 < ln.Len(); i++ {
		if ln.Tok(i) == "get_ports" && ln.Tok(i+1) != "]" {
			return ln.Tok(i + 1)
		}
	}
	return ""
}

// commandValue returns the first finite number among the command's
// arguments, bounded to the writer-stable range.
func commandValue(ln *scan.Line) (float64, *scan.ParseError) {
	for i := 1; i < ln.Len(); i++ {
		tok := ln.Tok(i)
		if v, ok := scan.ParseFloat(tok); ok {
			if v < -maxValue || v > maxValue {
				return 0, ln.Errf(tok, "value out of range (|v| > %g)", float64(maxValue))
			}
			return v, nil
		}
	}
	return 0, ln.Errf(ln.Tok(0), "no numeric value found")
}
