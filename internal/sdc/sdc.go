// Package sdc reads and writes the SDC (Synopsys Design Constraints) subset
// the flow consumes: create_clock, set_input_delay, set_output_delay,
// set_input_transition and set_load. Times are expressed in nanoseconds and
// loads in picofarads in the file, converted to SI on parse.
package sdc

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ppaclust/internal/sta"
)

// Write emits constraints in SDC syntax.
func Write(w io.Writer, cons sta.Constraints) error {
	for _, clk := range cons.ClockPorts {
		fmt.Fprintf(w, "create_clock -name %s -period %.4f [get_ports %s]\n",
			clk, cons.ClockPeriod*1e9, clk)
	}
	if len(cons.ClockPorts) > 0 {
		clk := cons.ClockPorts[0]
		fmt.Fprintf(w, "set_input_delay %.4f -clock %s [all_inputs]\n", cons.InputDelay*1e9, clk)
		fmt.Fprintf(w, "set_output_delay %.4f -clock %s [all_outputs]\n", cons.OutputDelay*1e9, clk)
	}
	fmt.Fprintf(w, "set_input_transition %.4f [all_inputs]\n", cons.InputSlew*1e9)
	_, err := fmt.Fprintf(w, "set_load %.6f [all_outputs]\n", cons.PortCap*1e12)
	return err
}

// Parse reads SDC commands into constraints. Unknown commands are ignored
// (the subset philosophy of most academic flows).
func Parse(r io.Reader) (sta.Constraints, error) {
	// Start from neutral values; defaults derive from the parsed period.
	cons := sta.Constraints{InputSlew: 20e-12, PortCap: 4e-15, InputActivity: 0.15}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := tokenizeTCL(line)
		if len(f) == 0 {
			continue
		}
		switch f[0] {
		case "create_clock":
			period, err := flagValue(f, "-period")
			if err != nil {
				return cons, fmt.Errorf("sdc: line %d: %v", lineNo, err)
			}
			cons.ClockPeriod = period * 1e-9
			if port := portArg(f); port != "" {
				cons.ClockPorts = append(cons.ClockPorts, port)
			} else if name, err := flagString(f, "-name"); err == nil {
				cons.ClockPorts = append(cons.ClockPorts, name)
			}
		case "set_input_delay":
			if v, ok := firstNumber(f[1:]); ok {
				cons.InputDelay = v * 1e-9
			}
		case "set_output_delay":
			if v, ok := firstNumber(f[1:]); ok {
				cons.OutputDelay = v * 1e-9
			}
		case "set_input_transition":
			if v, ok := firstNumber(f[1:]); ok {
				cons.InputSlew = v * 1e-9
			}
		case "set_load":
			if v, ok := firstNumber(f[1:]); ok {
				cons.PortCap = v * 1e-12
			}
		}
	}
	if cons.ClockPeriod <= 0 {
		return cons, fmt.Errorf("sdc: no create_clock -period found")
	}
	// Derive defaults the file did not set.
	if cons.InputDelay == 0 {
		cons.InputDelay = 0.1 * cons.ClockPeriod
	}
	if cons.OutputDelay == 0 {
		cons.OutputDelay = 0.1 * cons.ClockPeriod
	}
	return cons, sc.Err()
}

// tokenizeTCL splits a line, treating [get_ports x] brackets as grouping.
func tokenizeTCL(line string) []string {
	line = strings.ReplaceAll(line, "[", " [ ")
	line = strings.ReplaceAll(line, "]", " ] ")
	return strings.Fields(line)
}

func flagValue(f []string, flag string) (float64, error) {
	for i := range f {
		if f[i] == flag && i+1 < len(f) {
			return strconv.ParseFloat(f[i+1], 64)
		}
	}
	return 0, fmt.Errorf("missing %s", flag)
}

func flagString(f []string, flag string) (string, error) {
	for i := range f {
		if f[i] == flag && i+1 < len(f) {
			return f[i+1], nil
		}
	}
	return "", fmt.Errorf("missing %s", flag)
}

// portArg extracts X from "[ get_ports X ]".
func portArg(f []string) string {
	for i := range f {
		if f[i] == "get_ports" && i+1 < len(f) && f[i+1] != "]" {
			return f[i+1]
		}
	}
	return ""
}

func firstNumber(f []string) (float64, bool) {
	for _, tok := range f {
		if v, err := strconv.ParseFloat(tok, 64); err == nil {
			return v, true
		}
	}
	return 0, false
}
