package vpr

import (
	"math"
	"testing"

	"ppaclust/internal/cluster"
	"ppaclust/internal/designs"
	"ppaclust/internal/netlist"
)

func TestShapeCandidates(t *testing.T) {
	cands := ShapeCandidates()
	if len(cands) != 20 {
		t.Fatalf("candidates=%d want 20", len(cands))
	}
	ars := map[float64]bool{}
	utils := map[float64]bool{}
	for _, c := range cands {
		ars[c.AspectRatio] = true
		utils[c.Utilization] = true
		if c.AspectRatio < 0.75 || c.AspectRatio > 1.75 {
			t.Fatalf("AR %v out of paper range", c.AspectRatio)
		}
		if c.Utilization < 0.75 || c.Utilization > 0.90 {
			t.Fatalf("util %v out of paper range", c.Utilization)
		}
	}
	if len(ars) != 5 || len(utils) != 4 {
		t.Fatalf("ARs=%d utils=%d want 5x4", len(ars), len(utils))
	}
}

// clusteredTiny builds a tiny benchmark and returns the members of its
// largest cluster.
func clusteredTiny(t *testing.T, seed int64) (*netlist.Design, []int) {
	t.Helper()
	b := designs.Generate(designs.TinySpec(seed))
	view := b.Design.ToHypergraph()
	res := cluster.MultilevelFC(view.H, cluster.Options{Seed: seed, TargetClusters: 6})
	sizes := cluster.Sizes(res.Assign, res.NumClusters)
	bestC, bestN := 0, 0
	for c, n := range sizes {
		if n > bestN {
			bestC, bestN = c, n
		}
	}
	var members []int
	for v, c := range res.Assign {
		if c == bestC {
			members = append(members, v)
		}
	}
	return b.Design, members
}

func TestInduceSubNetlist(t *testing.T) {
	d, members := clusteredTiny(t, 51)
	sub, err := InduceSubNetlist(d, members)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Insts) != len(members) {
		t.Fatalf("sub insts=%d want %d", len(sub.Insts), len(members))
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(sub.Ports) == 0 {
		t.Fatal("expected boundary ports for inter-cluster nets")
	}
	// Port direction sanity: vin ports are inputs, vout outputs.
	for _, p := range sub.Ports {
		if p.Name[:3] == "vin" && p.Dir != netlist.DirInput {
			t.Fatalf("port %s should be input", p.Name)
		}
		if p.Name[:4] == "vout" && p.Dir != netlist.DirOutput {
			t.Fatalf("port %s should be output", p.Name)
		}
	}
	// Every sub net must have >= 2 connections or a port.
	for _, n := range sub.Nets {
		if len(n.Pins) < 2 {
			t.Fatalf("degenerate sub net %s", n.Name)
		}
	}
}

func TestFloorplanShapes(t *testing.T) {
	d, members := clusteredTiny(t, 52)
	sub, _ := InduceSubNetlist(d, members)
	for _, s := range []Shape{{0.75, 0.75}, {1.0, 0.9}, {1.75, 0.8}} {
		c := sub.Clone()
		Floorplan(c, s)
		gotAR := c.Core.H() / c.Core.W()
		if math.Abs(gotAR-s.AspectRatio) > 0.01 {
			t.Fatalf("AR=%v want %v", gotAR, s.AspectRatio)
		}
		gotU := c.TotalCellArea() / c.Core.Area()
		if math.Abs(gotU-s.Utilization) > 0.02 {
			t.Fatalf("util=%v want %v", gotU, s.Utilization)
		}
		for _, p := range c.Ports {
			if !p.Placed {
				t.Fatal("port unplaced")
			}
		}
	}
}

func TestEvaluateShapeCosts(t *testing.T) {
	d, members := clusteredTiny(t, 53)
	sub, _ := InduceSubNetlist(d, members)
	r := Runner{Opt: Options{Seed: 1}}
	ev := r.Evaluate(sub, Shape{AspectRatio: 1.0, Utilization: 0.8})
	if ev.CostHPWL <= 0 {
		t.Fatalf("CostHPWL=%v", ev.CostHPWL)
	}
	if ev.TotalCost < ev.CostHPWL {
		t.Fatal("total cost must include congestion term")
	}
	if ev.CoreW <= 0 || ev.CoreH <= 0 {
		t.Fatal("core not set")
	}
	// Evaluate must not mutate the input sub-netlist placement.
	for _, inst := range sub.Insts {
		if inst.Placed {
			t.Fatal("Evaluate mutated the input design")
		}
	}
}

func TestBestShapeExactRunner(t *testing.T) {
	d, members := clusteredTiny(t, 54)
	sub, _ := InduceSubNetlist(d, members)
	best, evals := BestShape(sub, Runner{Opt: Options{Seed: 2}})
	if len(evals) != 20 {
		t.Fatalf("evals=%d", len(evals))
	}
	for _, ev := range evals {
		if ev.Shape == best {
			continue
		}
		// No other candidate may beat the winner.
		bestCost := math.Inf(1)
		for _, e2 := range evals {
			if e2.Shape == best {
				bestCost = e2.TotalCost
			}
		}
		if ev.TotalCost < bestCost-1e-12 {
			t.Fatalf("shape %+v beats winner", ev.Shape)
		}
	}
}

type fixedModel struct{ want Shape }

func (m fixedModel) TotalCost(sub *netlist.Design, s Shape) float64 {
	if s == m.want {
		return 0
	}
	return 1
}

func TestBestShapeCustomModel(t *testing.T) {
	d, members := clusteredTiny(t, 55)
	sub, _ := InduceSubNetlist(d, members)
	want := Shape{AspectRatio: 1.25, Utilization: 0.85}
	got, evals := BestShape(sub, fixedModel{want: want})
	if got != want {
		t.Fatalf("got %+v want %+v", got, want)
	}
	if evals != nil {
		t.Fatal("custom models should not produce runner evals")
	}
}

func TestUniformShapeConstant(t *testing.T) {
	if UniformShape.AspectRatio != 1.0 || UniformShape.Utilization != 0.90 {
		t.Fatalf("uniform shape %+v", UniformShape)
	}
}

func TestInduceEmptyMembers(t *testing.T) {
	d, _ := clusteredTiny(t, 56)
	sub, err := InduceSubNetlist(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Insts) != 0 || len(sub.Nets) != 0 {
		t.Fatal("empty member set should give empty sub-design")
	}
}
