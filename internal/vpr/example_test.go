package vpr_test

import (
	"fmt"

	"ppaclust/internal/vpr"
)

// The paper sweeps 5 aspect ratios x 4 utilizations.
func ExampleShapeCandidates() {
	cands := vpr.ShapeCandidates()
	fmt.Println("candidates:", len(cands))
	fmt.Printf("first: AR=%.2f util=%.2f\n", cands[0].AspectRatio, cands[0].Utilization)
	fmt.Printf("last:  AR=%.2f util=%.2f\n", cands[19].AspectRatio, cands[19].Utilization)
	// Output:
	// candidates: 20
	// first: AR=0.75 util=0.75
	// last:  AR=1.75 util=0.90
}
