// Package vpr implements the paper's virtualized P&R (V-P&R) framework
// (Section 3.2): for a given cluster, it induces the cluster's sub-netlist
// (creating IO ports for inter-cluster nets), sweeps 20 candidate shapes
// (aspect ratio x utilization), runs placement and global routing on a
// virtual die for each, and scores them with
//
//	Cost_HPWL  = HPWL_avg / (Width_core + Height_core)          (Eq. 4)
//	Cost_Cong  = mean congestion over the top-X% GCells          (Eq. 5)
//	Total Cost = Cost_HPWL + delta * Cost_Cong
//
// The shape with minimum Total Cost models the cluster during seeded
// placement. The ML model of package gnn can substitute for the P&R runs via
// the CostModel interface (the "ML-accelerated" variant).
package vpr

import (
	"fmt"
	"math"

	"ppaclust/internal/netlist"
	"ppaclust/internal/place"
	"ppaclust/internal/route"
)

// Shape is one cluster-shape candidate.
type Shape struct {
	AspectRatio float64 // core height / width
	Utilization float64
}

// ShapeCandidates returns the paper's 20 sweep points: AR in [0.75, 1.75]
// step 0.25, utilization in [0.75, 0.90] step 0.05.
func ShapeCandidates() []Shape {
	var out []Shape
	for ar := 0.75; ar <= 1.75+1e-9; ar += 0.25 {
		for u := 0.75; u <= 0.90+1e-9; u += 0.05 {
			out = append(out, Shape{AspectRatio: round2(ar), Utilization: round2(u)})
		}
	}
	return out
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

// UniformShape is the fixed assignment used by the "Uniform" ablation arm in
// Table 6 (utilization 0.9, aspect ratio 1.0).
var UniformShape = Shape{AspectRatio: 1.0, Utilization: 0.90}

// Eval is the outcome of evaluating one shape candidate.
type Eval struct {
	Shape     Shape
	CostHPWL  float64
	CostCong  float64
	TotalCost float64
	HPWL      float64
	CoreW     float64
	CoreH     float64
}

// Options configures the V-P&R runs.
type Options struct {
	// TopPercent is X in Eq. 5. Default 10.
	TopPercent float64
	// Delta is the congestion normalization factor. Default 0.01.
	Delta float64
	// PlaceIterations bounds the virtual placement effort. Default 10.
	PlaceIterations int
	// RouteCapacity is the per-edge track capacity of the virtual router.
	// Default 6 — deliberately tight so Cost_Congestion discriminates
	// between utilizations (the whole point of Eq. 5).
	RouteCapacity int
	// Seed drives placement determinism.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.TopPercent <= 0 {
		o.TopPercent = 10
	}
	if o.Delta <= 0 {
		o.Delta = 0.01
	}
	if o.PlaceIterations <= 0 {
		o.PlaceIterations = 10
	}
	if o.RouteCapacity <= 0 {
		o.RouteCapacity = 6
	}
	return o
}

// CostModel predicts the Total Cost of placing a cluster sub-netlist at a
// candidate shape. The V-P&R runner is the exact implementation; the GNN
// model is the accelerated one.
type CostModel interface {
	TotalCost(sub *netlist.Design, shape Shape) float64
}

// Runner is the exact (P&R-based) cost model.
type Runner struct {
	Opt Options
}

// TotalCost implements CostModel by running virtual place-and-route.
func (r Runner) TotalCost(sub *netlist.Design, shape Shape) float64 {
	return r.Evaluate(sub, shape).TotalCost
}

// Evaluate runs one virtual P&R at the given shape and returns all costs.
func (r Runner) Evaluate(sub *netlist.Design, shape Shape) Eval {
	opt := r.Opt.withDefaults()
	d := sub.Clone()
	Floorplan(d, shape)
	place.Global(d, place.Options{
		Iterations: opt.PlaceIterations,
		Seed:       opt.Seed,
	})
	rres := route.GlobalRoute(d, route.Options{
		CapacityH: opt.RouteCapacity,
		CapacityV: opt.RouteCapacity,
	})
	ev := Eval{Shape: shape, CoreW: d.Core.W(), CoreH: d.Core.H()}
	// HPWL_avg over nets with at least 2 pins.
	var total float64
	nets := 0
	for _, n := range d.Nets {
		if len(n.Pins) < 2 {
			continue
		}
		total += d.NetHPWL(n)
		nets++
	}
	if nets > 0 {
		ev.HPWL = total
		ev.CostHPWL = (total / float64(nets)) / (d.Core.W() + d.Core.H())
	}
	ev.CostCong = rres.Grid.TopPercentAvg(opt.TopPercent)
	ev.TotalCost = ev.CostHPWL + opt.Delta*ev.CostCong
	return ev
}

// Floorplan sizes the design's die/core for the given shape and places the
// ports around the boundary (the stand-in for the OpenROAD pin placer).
func Floorplan(d *netlist.Design, shape Shape) {
	area := d.TotalCellArea() / shape.Utilization
	if area <= 0 {
		area = 1
	}
	w := math.Sqrt(area / shape.AspectRatio)
	h := w * shape.AspectRatio
	const margin = 2.0
	d.Core = netlist.Rect{X0: margin, Y0: margin, X1: margin + w, Y1: margin + h}
	d.Die = netlist.Rect{X0: 0, Y0: 0, X1: w + 2*margin, Y1: h + 2*margin}
	n := len(d.Ports)
	if n == 0 {
		return
	}
	perim := 2 * (w + h)
	for i, p := range d.Ports {
		t := perim * float64(i) / float64(n)
		p.X, p.Y = perimeterPoint(d.Core, t)
		p.Placed = true
	}
}

func perimeterPoint(r netlist.Rect, t float64) (float64, float64) {
	w, h := r.W(), r.H()
	switch {
	case t < w:
		return r.X0 + t, r.Y0
	case t < w+h:
		return r.X1, r.Y0 + (t - w)
	case t < 2*w+h:
		return r.X1 - (t - w - h), r.Y1
	default:
		return r.X0, r.Y1 - (t - 2*w - h)
	}
}

// InduceSubNetlist extracts the sub-design over the given member instances.
// For every net crossing the cluster boundary, an input port is created when
// the driver is external and sinks are internal, and an output port when the
// driver is internal and sinks are external — exactly the paper's port
// creation rule.
func InduceSubNetlist(d *netlist.Design, members []int) (*netlist.Design, error) {
	sub := netlist.NewDesign(d.Name+"_cluster", d.Lib)
	inside := make(map[int]bool, len(members))
	for _, id := range members {
		inside[id] = true
	}
	newID := make(map[int]int, len(members))
	for _, id := range members {
		inst := d.Insts[id]
		ni, err := sub.AddInstance(inst.Name, inst.Master)
		if err != nil {
			return nil, err
		}
		newID[id] = ni.ID
	}
	for _, n := range d.Nets {
		var internal []netlist.PinRef
		externalDrv := false
		externalSink := false
		internalDrv := false
		drv, hasDrv := d.Driver(n)
		for _, pr := range n.Pins {
			if !pr.IsPort() && inside[pr.Inst] {
				internal = append(internal, netlist.PinRef{Inst: newID[pr.Inst], Pin: pr.Pin})
				if hasDrv && pr == drv {
					internalDrv = true
				}
			} else {
				if hasDrv && pr == drv {
					externalDrv = true
				} else {
					externalSink = true
				}
			}
		}
		if len(internal) == 0 {
			continue
		}
		needInPort := externalDrv
		needOutPort := internalDrv && externalSink
		if len(internal) < 2 && !needInPort && !needOutPort {
			continue
		}
		sn, err := sub.AddNet(n.Name)
		if err != nil {
			return nil, err
		}
		sn.Weight = n.Weight
		sn.Clock = n.Clock
		for _, pr := range internal {
			sub.Connect(sn, pr)
		}
		if needInPort {
			pname := fmt.Sprintf("vin_%s", n.Name)
			if _, err := sub.AddPort(pname, netlist.DirInput); err != nil {
				return nil, err
			}
			sub.Connect(sn, netlist.PinRef{Inst: -1, Pin: pname})
		}
		if needOutPort {
			pname := fmt.Sprintf("vout_%s", n.Name)
			if _, err := sub.AddPort(pname, netlist.DirOutput); err != nil {
				return nil, err
			}
			sub.Connect(sn, netlist.PinRef{Inst: -1, Pin: pname})
		}
	}
	return sub, nil
}

// BestShape runs the full V-P&R sweep over all 20 candidates with the given
// cost model and returns the winner plus all evaluations (evaluations are
// nil when the model is not the exact Runner).
func BestShape(sub *netlist.Design, model CostModel) (Shape, []Eval) {
	cands := ShapeCandidates()
	best := cands[0]
	bestCost := math.Inf(1)
	var evals []Eval
	runner, isRunner := model.(Runner)
	for _, s := range cands {
		var cost float64
		if isRunner {
			ev := runner.Evaluate(sub, s)
			evals = append(evals, ev)
			cost = ev.TotalCost
		} else {
			cost = model.TotalCost(sub, s)
		}
		if cost < bestCost {
			bestCost = cost
			best = s
		}
	}
	return best, evals
}
