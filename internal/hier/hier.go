// Package hier implements the paper's Algorithm 2: hierarchy-based
// clustering. The logical hierarchy tree of the netlist is interpreted as a
// dendrogram, the dendrogram is levelized by replicating shallow leaves, and
// the level whose induced clustering minimizes the weighted-average Rent
// exponent (Eq. 1) is selected.
package hier

import (
	"math"
	"sort"
	"strings"

	"ppaclust/internal/hypergraph"
	"ppaclust/internal/netlist"
)

// Dendrogram is the levelized logical-hierarchy dendrogram of a design.
type Dendrogram struct {
	parent   []int
	level    []int
	children [][]int
	insts    [][]int // instances attached to this node (leaves only after levelize)
	name     []string
	root     int
	levelMax int
	nInsts   int
}

// LevelMax returns the (post-levelization) common leaf level.
func (dg *Dendrogram) LevelMax() int { return dg.levelMax }

// NumNodes returns the number of dendrogram nodes.
func (dg *Dendrogram) NumNodes() int { return len(dg.parent) }

// NodeName returns the scope name of node i (for debugging/reports).
func (dg *Dendrogram) NodeName(i int) string { return dg.name[i] }

// Build constructs the dendrogram from the design's instance hierarchy
// (instance names are '/'-separated paths). ok is false when the design is
// flat (no hierarchy information to exploit).
func Build(d *netlist.Design) (*Dendrogram, bool) {
	dg := &Dendrogram{nInsts: len(d.Insts)}
	byPath := map[string]int{}
	newNode := func(path string, parent int) int {
		id := len(dg.parent)
		dg.parent = append(dg.parent, parent)
		dg.level = append(dg.level, 0)
		dg.children = append(dg.children, nil)
		dg.insts = append(dg.insts, nil)
		dg.name = append(dg.name, path)
		if parent >= 0 {
			dg.children[parent] = append(dg.children[parent], id)
		}
		byPath[path] = id
		return id
	}
	dg.root = newNode("", -1)

	ensure := func(path string) int {
		if id, ok := byPath[path]; ok {
			return id
		}
		// Create all missing ancestors.
		parts := strings.Split(path, "/")
		parent := dg.root
		cur := ""
		for _, p := range parts {
			if cur == "" {
				cur = p
			} else {
				cur = cur + "/" + p
			}
			id, ok := byPath[cur]
			if !ok {
				id = newNode(cur, parent)
			}
			parent = id
		}
		return parent
	}

	anyHier := false
	for _, inst := range d.Insts {
		scope := inst.HierPath()
		if len(scope) == 0 {
			dg.insts[dg.root] = append(dg.insts[dg.root], inst.ID)
			continue
		}
		anyHier = true
		node := ensure(strings.Join(scope, "/"))
		dg.insts[node] = append(dg.insts[node], inst.ID)
	}
	if !anyHier {
		return nil, false
	}
	dg.splitMixedNodes()
	dg.computeLevels()
	dg.levelize()
	return dg, true
}

// splitMixedNodes moves instances of internal nodes into a dedicated child
// leaf so every instance lives at a leaf of the dendrogram.
func (dg *Dendrogram) splitMixedNodes() {
	n := len(dg.parent)
	for i := 0; i < n; i++ {
		if len(dg.children[i]) == 0 || len(dg.insts[i]) == 0 {
			continue
		}
		id := len(dg.parent)
		dg.parent = append(dg.parent, i)
		dg.level = append(dg.level, 0)
		dg.children = append(dg.children, nil)
		dg.insts = append(dg.insts, dg.insts[i])
		dg.name = append(dg.name, dg.name[i]+"/<insts>")
		dg.children[i] = append(dg.children[i], id)
		dg.insts[i] = nil
	}
}

func (dg *Dendrogram) computeLevels() {
	// BFS from root.
	queue := []int{dg.root}
	dg.level[dg.root] = 0
	dg.levelMax = 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, c := range dg.children[v] {
			dg.level[c] = dg.level[v] + 1
			queue = append(queue, c)
		}
		if len(dg.children[v]) == 0 && dg.level[v] > dg.levelMax {
			dg.levelMax = dg.level[v]
		}
	}
}

// levelize replicates shallow leaves (Algorithm 2 lines 7-12) so that every
// leaf sits at levelMax.
func (dg *Dendrogram) levelize() {
	n := len(dg.parent)
	for v := 0; v < n; v++ {
		if len(dg.children[v]) != 0 || dg.level[v] >= dg.levelMax {
			continue
		}
		cur := v
		for k := dg.level[v]; k < dg.levelMax; k++ {
			id := len(dg.parent)
			dg.parent = append(dg.parent, cur)
			dg.level = append(dg.level, k+1)
			dg.children = append(dg.children, nil)
			dg.insts = append(dg.insts, dg.insts[cur])
			dg.name = append(dg.name, dg.name[cur])
			dg.children[cur] = append(dg.children[cur], id)
			dg.insts[cur] = nil
			cur = id
		}
	}
}

// ancestorAt returns the ancestor of node v at the given level.
func (dg *Dendrogram) ancestorAt(v, level int) int {
	for dg.level[v] > level {
		v = dg.parent[v]
	}
	return v
}

// ClusteringAtLevel returns the instance->cluster assignment induced by the
// dendrogram nodes at level k. Cluster labels are dendrogram node IDs.
func (dg *Dendrogram) ClusteringAtLevel(k int) []int {
	assign := make([]int, dg.nInsts)
	for v := range dg.parent {
		if len(dg.insts[v]) == 0 {
			continue
		}
		c := dg.ancestorAt(v, k)
		for _, inst := range dg.insts[v] {
			assign[inst] = c
		}
	}
	return assign
}

// LevelScore is the Rent-criterion value of one dendrogram level.
type LevelScore struct {
	Level int
	RAvg  float64
}

// Result is the outcome of hierarchy-based clustering.
type Result struct {
	Assign   []int        // instance -> cluster label
	Level    int          // selected dendrogram level
	RAvg     float64      // weighted-average Rent exponent at that level
	Scores   []LevelScore // all evaluated levels, ascending level
	Clusters int          // number of distinct clusters
}

// Cluster runs Algorithm 2 end to end on a design: it builds the dendrogram,
// evaluates the Rent criterion at each level in [1, levelMax), and returns
// the best clustering. ok is false for flat designs.
//
// Level 0 (the root: one all-inclusive cluster) carries no information, so
// evaluation starts at level 1; this matches the paper's "level_max - 1
// clusterings".
func Cluster(d *netlist.Design, h *hypergraph.Hypergraph) (Result, bool) {
	dg, ok := Build(d)
	if !ok {
		return Result{}, false
	}
	if dg.levelMax < 1 {
		return Result{}, false
	}
	best := Result{RAvg: math.Inf(1), Level: -1}
	for k := 1; k < dg.levelMax || k == 1; k++ {
		assign := dg.ClusteringAtLevel(k)
		r := h.WeightedAvgRent(assign)
		best.Scores = append(best.Scores, LevelScore{Level: k, RAvg: r})
		if r < best.RAvg {
			best.RAvg = r
			best.Level = k
			best.Assign = assign
		}
		if dg.levelMax <= 1 {
			break
		}
	}
	if best.Assign == nil {
		return Result{}, false
	}
	best.Clusters = countDistinct(best.Assign)
	return best, true
}

func countDistinct(assign []int) int {
	seen := map[int]bool{}
	for _, c := range assign {
		seen[c] = true
	}
	return len(seen)
}

// GroupSizes returns the sizes of clusters in an assignment, descending.
func GroupSizes(assign []int) []int {
	count := map[int]int{}
	for _, c := range assign {
		count[c]++
	}
	out := make([]int, 0, len(count))
	for _, n := range count {
		out = append(out, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out
}
