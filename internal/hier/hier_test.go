package hier

import (
	"fmt"
	"math"
	"testing"

	"ppaclust/internal/netlist"
)

func miniLib() *netlist.Library {
	l := netlist.NewLibrary("t")
	m := &netlist.Master{Name: "G", Width: 1, Height: 1}
	m.AddPin(netlist.MasterPin{Name: "A", Dir: netlist.DirInput, Cap: 1e-15})
	y := m.AddPin(netlist.MasterPin{Name: "Y", Dir: netlist.DirOutput})
	y.Arcs = []netlist.TimingArc{{From: "A", Kind: netlist.ArcComb, Delay: netlist.Const(1e-12), Slew: netlist.Const(1e-12)}}
	if err := l.AddMaster(m); err != nil {
		panic(err)
	}
	return l
}

// hierDesign: two modules a and b, each with k instances densely connected
// internally; one net between the modules. Module a also has a submodule
// a/sub with k instances (making the tree unbalanced, exercising
// levelization).
func hierDesign(t *testing.T, k int) *netlist.Design {
	t.Helper()
	l := miniLib()
	d := netlist.NewDesign("h", l)
	add := func(name string) *netlist.Instance {
		inst, err := d.AddInstance(name, l.Master("G"))
		if err != nil {
			t.Fatal(err)
		}
		return inst
	}
	var aID, bID, sID []int
	for i := 0; i < k; i++ {
		aID = append(aID, add(fmt.Sprintf("a/g%d", i)).ID)
		bID = append(bID, add(fmt.Sprintf("b/g%d", i)).ID)
		sID = append(sID, add(fmt.Sprintf("a/sub/g%d", i)).ID)
	}
	netN := 0
	connect := func(ids []int) {
		for i := 1; i < len(ids); i++ {
			n, err := d.AddNet(fmt.Sprintf("n%d", netN))
			if err != nil {
				t.Fatal(err)
			}
			netN++
			d.Connect(n, netlist.PinRef{Inst: ids[i-1], Pin: "Y"})
			d.Connect(n, netlist.PinRef{Inst: ids[i], Pin: "A"})
			// Add a chord for density.
			if i >= 2 {
				c, _ := d.AddNet(fmt.Sprintf("n%d", netN))
				netN++
				d.Connect(c, netlist.PinRef{Inst: ids[i-2], Pin: "Y"})
				d.Connect(c, netlist.PinRef{Inst: ids[i], Pin: "A"})
			}
		}
	}
	connect(aID)
	connect(bID)
	connect(sID)
	// One cross-module net.
	x, _ := d.AddNet("xab")
	d.Connect(x, netlist.PinRef{Inst: aID[0], Pin: "Y"})
	d.Connect(x, netlist.PinRef{Inst: bID[0], Pin: "A"})
	// Connect sub to its parent module a.
	x2, _ := d.AddNet("xas")
	d.Connect(x2, netlist.PinRef{Inst: aID[k-1], Pin: "Y"})
	d.Connect(x2, netlist.PinRef{Inst: sID[0], Pin: "A"})
	return d
}

func TestBuildFlatDesignFails(t *testing.T) {
	l := miniLib()
	d := netlist.NewDesign("flat", l)
	for i := 0; i < 4; i++ {
		if _, err := d.AddInstance(fmt.Sprintf("g%d", i), l.Master("G")); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := Build(d); ok {
		t.Fatal("flat design should not produce a dendrogram")
	}
	if _, ok := Cluster(d, d.ToHypergraph().H); ok {
		t.Fatal("flat design clustering should report !ok")
	}
}

func TestBuildLevelsAndLevelize(t *testing.T) {
	d := hierDesign(t, 4)
	dg, ok := Build(d)
	if !ok {
		t.Fatal("expected dendrogram")
	}
	// Scopes: a (with insts + child sub -> mixed, splits), b, a/sub.
	// Leaf levels: b's insts at level 1 originally -> replicated to levelMax.
	if dg.LevelMax() < 2 {
		t.Fatalf("levelMax=%d want >=2", dg.LevelMax())
	}
	// After levelization, every instance-bearing node is a leaf at levelMax.
	for v := 0; v < dg.NumNodes(); v++ {
		if len(dg.insts[v]) > 0 {
			if len(dg.children[v]) != 0 {
				t.Fatalf("node %d holds instances but has children", v)
			}
			if dg.level[v] != dg.LevelMax() {
				t.Fatalf("leaf node %d at level %d != levelMax %d", v, dg.level[v], dg.LevelMax())
			}
		}
	}
}

func TestClusteringAtLevelCoversAllInstances(t *testing.T) {
	d := hierDesign(t, 3)
	dg, _ := Build(d)
	for k := 0; k <= dg.LevelMax(); k++ {
		assign := dg.ClusteringAtLevel(k)
		if len(assign) != len(d.Insts) {
			t.Fatalf("level %d: %d assignments for %d insts", k, len(assign), len(d.Insts))
		}
	}
	// Level 0 is a single cluster (the root).
	a0 := dg.ClusteringAtLevel(0)
	for _, c := range a0 {
		if c != a0[0] {
			t.Fatal("level 0 should be one cluster")
		}
	}
	// Level 1 separates module a (incl. sub) from module b.
	a1 := dg.ClusteringAtLevel(1)
	instA := d.Instance("a/g0").ID
	instSub := d.Instance("a/sub/g0").ID
	instB := d.Instance("b/g0").ID
	if a1[instA] != a1[instSub] {
		t.Fatal("level 1: a and a/sub should share a cluster")
	}
	if a1[instA] == a1[instB] {
		t.Fatal("level 1: a and b should be separate")
	}
	// Level 2 separates a/sub from a's own instances.
	a2 := dg.ClusteringAtLevel(2)
	if a2[instA] == a2[instSub] {
		t.Fatal("level 2: a/<insts> and a/sub should be separate")
	}
}

func TestClusterSelectsInformativeLevel(t *testing.T) {
	d := hierDesign(t, 6)
	res, ok := Cluster(d, d.ToHypergraph().H)
	if !ok {
		t.Fatal("expected clustering")
	}
	if res.Level < 1 {
		t.Fatalf("level=%d", res.Level)
	}
	if res.Clusters < 2 {
		t.Fatalf("clusters=%d want >=2", res.Clusters)
	}
	if math.IsInf(res.RAvg, 0) || math.IsNaN(res.RAvg) {
		t.Fatalf("RAvg=%v", res.RAvg)
	}
	if len(res.Scores) == 0 {
		t.Fatal("no level scores recorded")
	}
	// The chosen level's score must be the minimum of all evaluated scores.
	for _, s := range res.Scores {
		if s.RAvg < res.RAvg {
			t.Fatalf("level %d has better score %v than chosen %v", s.Level, s.RAvg, res.RAvg)
		}
	}
	// The dense-module structure should beat a random split: compare with a
	// round-robin assignment of the same cluster count.
	h := d.ToHypergraph().H
	rr := make([]int, len(d.Insts))
	for i := range rr {
		rr[i] = i % res.Clusters
	}
	if h.WeightedAvgRent(res.Assign) >= h.WeightedAvgRent(rr) {
		t.Fatal("hierarchy clustering should beat round-robin on Rent")
	}
}

func TestGroupSizes(t *testing.T) {
	sizes := GroupSizes([]int{5, 5, 5, 2, 2, 9})
	if len(sizes) != 3 || sizes[0] != 3 || sizes[1] != 2 || sizes[2] != 1 {
		t.Fatalf("sizes=%v", sizes)
	}
}

func TestSingleModuleDesign(t *testing.T) {
	// All instances under one scope: levelMax==1, only level 1 evaluated.
	l := miniLib()
	d := netlist.NewDesign("one", l)
	var ids []int
	for i := 0; i < 5; i++ {
		inst, _ := d.AddInstance(fmt.Sprintf("m/g%d", i), l.Master("G"))
		ids = append(ids, inst.ID)
	}
	for i := 1; i < 5; i++ {
		n, _ := d.AddNet(fmt.Sprintf("n%d", i))
		d.Connect(n, netlist.PinRef{Inst: ids[i-1], Pin: "Y"})
		d.Connect(n, netlist.PinRef{Inst: ids[i], Pin: "A"})
	}
	res, ok := Cluster(d, d.ToHypergraph().H)
	if !ok {
		t.Fatal("single-module design should still cluster (one cluster)")
	}
	if res.Clusters != 1 || res.Level != 1 {
		t.Fatalf("res=%+v", res)
	}
}
