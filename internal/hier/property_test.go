package hier

import (
	"testing"
	"testing/quick"

	"ppaclust/internal/designs"
)

// TestPropertyLevelsAreRefinements: in a levelized dendrogram, the
// clustering at level k+1 refines the clustering at level k — two
// instances separated at level k stay separated at every deeper level.
func TestPropertyLevelsAreRefinements(t *testing.T) {
	f := func(seed int64) bool {
		spec := designs.TinySpec(3000 + seed%7)
		spec.Depth = 3
		spec.Branch = 2
		spec.TargetInsts = 120
		b := designs.Generate(spec)
		dg, ok := Build(b.Design)
		if !ok {
			return false
		}
		prev := dg.ClusteringAtLevel(0)
		for k := 1; k <= dg.LevelMax(); k++ {
			cur := dg.ClusteringAtLevel(k)
			// Same cluster at level k implies same cluster at level k-1.
			rep := map[int]int{}
			for v := range cur {
				if r, seen := rep[cur[v]]; seen {
					if prev[r] != prev[v] {
						return false
					}
				} else {
					rep[cur[v]] = v
				}
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 14}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRentChosenIsMinimum: the selected level always carries the
// minimum R_avg among evaluated levels.
func TestPropertyRentChosenIsMinimum(t *testing.T) {
	f := func(seed int64) bool {
		spec := designs.TinySpec(4000 + seed%5)
		b := designs.Generate(spec)
		h := b.Design.ToHypergraph().H
		res, ok := Cluster(b.Design, h)
		if !ok {
			return false
		}
		for _, sc := range res.Scores {
			if sc.RAvg < res.RAvg-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
