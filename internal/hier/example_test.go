package hier_test

import (
	"fmt"

	"ppaclust/internal/designs"
	"ppaclust/internal/hier"
)

// Algorithm 2 picks the dendrogram level minimizing the weighted Rent
// exponent of Eq. 1.
func ExampleCluster() {
	b := designs.Generate(designs.TinySpec(7))
	res, ok := hier.Cluster(b.Design, b.Design.ToHypergraph().H)
	fmt.Println("ok:", ok)
	fmt.Println("levels evaluated:", len(res.Scores))
	fmt.Println("clusters at best level:", res.Clusters > 1)
	// Output:
	// ok: true
	// levels evaluated: 2
	// clusters at best level: true
}
