package lef

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/netlist"
	"ppaclust/internal/scan"
)

// FuzzReadLEF asserts the LEF reader never panics, returns structured
// errors, and round-trips its own emission byte-for-byte.
func FuzzReadLEF(f *testing.F) {
	var seed bytes.Buffer
	if err := Write(&seed, designs.Lib()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("MACRO INV\n  CLASS CORE ;\n  SIZE 0.8 BY 1.4 ;\n" +
		"  PIN A\n    DIRECTION INPUT ;\n    ORIGIN 0.1 0.7 ;\n  END A\nEND INV\n")
	f.Add("MACRO M\n  CLASS BLOCK ;\n  PIN CK\n    USE CLOCK ;\n  END CK\nEND M\n")
	f.Add("MACRO\nSIZE 1 ;\nDIRECTION\n")
	f.Fuzz(func(t *testing.T, in string) {
		lib := netlist.NewLibrary("fuzz")
		_, _, err := ParseWith(strings.NewReader(in), lib, Options{File: "fuzz.lef"})
		if _, _, lerr := ParseWith(strings.NewReader(in), netlist.NewLibrary("fuzz"),
			Options{File: "fuzz.lef", Lenient: true}); lerr != nil {
			requireParseError(t, lerr)
		}
		if err != nil {
			requireParseError(t, err)
			return
		}
		var w1 bytes.Buffer
		if err := Write(&w1, lib); err != nil {
			t.Fatalf("write after accepting parse: %v", err)
		}
		lib2 := netlist.NewLibrary("fuzz")
		if _, err := Parse(bytes.NewReader(w1.Bytes()), lib2); err != nil {
			t.Fatalf("re-parse of own output failed: %v\noutput:\n%s", err, w1.String())
		}
		var w2 bytes.Buffer
		if err := Write(&w2, lib2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("write->read->write is not a fixpoint\n--- first:\n%s--- second:\n%s",
				w1.String(), w2.String())
		}
	})
}

func requireParseError(t *testing.T, err error) {
	t.Helper()
	var pe *scan.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is not a *scan.ParseError: %T: %v", err, err)
	}
	if pe.File == "" {
		t.Fatalf("ParseError without file context: %v", pe)
	}
}
