package lef

import (
	"errors"
	"strings"
	"testing"

	"ppaclust/internal/netlist"
	"ppaclust/internal/scan"
)

// TestMalformedInputs drives the strict parser through every former panic
// site (bare keyword lines indexed f[1] unchecked) and checks the
// structured error carries the right file and line.
func TestMalformedInputs(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		line    int
		msgPart string
	}{
		{"bare macro", "MACRO\n", 1, "fields"},
		{"bare class", "MACRO M\nCLASS\n", 2, "fields"},
		{"bare direction", "MACRO M\nPIN P\nDIRECTION\n", 3, "fields"},
		{"bare use in pin", "MACRO M\nPIN P\nUSE\n", 3, "fields"},
		{"bare pin", "MACRO M\nPIN\n", 2, "fields"},
		{"size short", "MACRO M\nSIZE 1 ;\n", 2, "fields"},
		{"size bad dim", "MACRO M\nSIZE w BY 1.4 ;\n", 2, "number"},
		{"size negative", "MACRO M\nSIZE -1 BY 1.4 ;\n", 2, "range"},
		{"origin short", "MACRO M\nPIN P\nORIGIN ;\n", 3, "fields"},
		{"origin bad", "MACRO M\nPIN P\nORIGIN 0.1 y ;\n", 3, "number"},
		{"class outside macro", "CLASS CORE ;\n", 1, "outside"},
		{"direction outside pin", "DIRECTION INPUT ;\n", 1, "outside"},
		{"origin outside pin", "MACRO M\nORIGIN 1 2 ;\n", 2, "outside"},
		{"size outside macro", "SIZE 1 BY 2 ;\n", 1, "outside"},
		{"dim overflow", "MACRO M\nSIZE 999999999 BY 1 ;\n", 2, "range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.in), netlist.NewLibrary("t"))
			if err == nil {
				t.Fatalf("parse accepted %q", tc.in)
			}
			var pe *scan.ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error is %T, not *scan.ParseError: %v", err, err)
			}
			if pe.File != "lef" {
				t.Fatalf("file = %q", pe.File)
			}
			if pe.Line != tc.line {
				t.Fatalf("line = %d, want %d (%v)", pe.Line, tc.line, pe)
			}
			if !strings.Contains(pe.Msg, tc.msgPart) {
				t.Fatalf("msg %q does not mention %q", pe.Msg, tc.msgPart)
			}
		})
	}
}

// TestLenientMode checks field errors downgrade to warnings while
// structural errors stay fatal.
func TestLenientMode(t *testing.T) {
	in := "MACRO M\n" +
		"CLASS\n" + // tolerable
		"SIZE 0.8 BY oops ;\n" + // tolerable
		"PIN P\n" +
		"DIRECTION\n" + // tolerable
		"ORIGIN 0.1 0.7 ;\n" +
		"END P\nEND M\n"
	lib := netlist.NewLibrary("t")
	names, warns, err := ParseWith(strings.NewReader(in), lib, Options{Lenient: true})
	if err != nil {
		t.Fatalf("lenient parse failed: %v", err)
	}
	if len(names) != 1 || names[0] != "M" {
		t.Fatalf("names = %v", names)
	}
	if len(warns) != 3 {
		t.Fatalf("warnings = %d, want 3: %v", len(warns), warns)
	}
	m := lib.Master("M")
	if m == nil || m.Pin("P") == nil {
		t.Fatal("macro or pin lost in lenient mode")
	}
	if m.Pin("P").OffsetX != 0.1 {
		t.Fatalf("offset = %v", m.Pin("P").OffsetX)
	}
	// MACRO without a name stays fatal.
	if _, _, err := ParseWith(strings.NewReader("MACRO\n"), netlist.NewLibrary("t"),
		Options{Lenient: true}); err == nil {
		t.Fatal("bare MACRO must stay fatal in lenient mode")
	}
}
