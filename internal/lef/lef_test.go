package lef

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/netlist"
)

func TestWriteParseRoundTrip(t *testing.T) {
	lib := designs.Lib()
	var buf bytes.Buffer
	if err := Write(&buf, lib); err != nil {
		t.Fatal(err)
	}
	got := netlist.NewLibrary("parsed")
	names, err := Parse(bytes.NewReader(buf.Bytes()), got)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != len(lib.MasterNames()) {
		t.Fatalf("macros %d != %d", len(names), len(lib.MasterNames()))
	}
	for _, name := range lib.MasterNames() {
		om := lib.Master(name)
		gm := got.Master(name)
		if gm == nil {
			t.Fatalf("macro %s lost", name)
		}
		if math.Abs(gm.Width-om.Width) > 1e-4 || math.Abs(gm.Height-om.Height) > 1e-4 {
			t.Fatalf("%s size %vx%v != %vx%v", name, gm.Width, gm.Height, om.Width, om.Height)
		}
		if gm.Class != om.Class {
			t.Fatalf("%s class mismatch", name)
		}
		if len(gm.Pins) != len(om.Pins) {
			t.Fatalf("%s pins %d != %d", name, len(gm.Pins), len(om.Pins))
		}
		for pi := range om.Pins {
			op := &om.Pins[pi]
			gp := gm.Pin(op.Name)
			if gp == nil || gp.Dir != op.Dir || gp.Clock != op.Clock {
				t.Fatalf("%s pin %s mismatch", name, op.Name)
			}
			if gp.OffsetX != op.OffsetX || gp.OffsetY != op.OffsetY {
				t.Fatalf("%s pin %s offsets lost", name, op.Name)
			}
		}
	}
}

func TestParseIntoExistingLibraryMerges(t *testing.T) {
	// Liberty-then-LEF order: LEF must update geometry of existing masters.
	lib := netlist.NewLibrary("x")
	m := &netlist.Master{Name: "INV_X1"}
	m.AddPin(netlist.MasterPin{Name: "A", Dir: netlist.DirInput, Cap: 5e-15})
	if err := lib.AddMaster(m); err != nil {
		t.Fatal(err)
	}
	src := `MACRO INV_X1
  CLASS CORE ;
  SIZE 0.38 BY 1.4 ;
  PIN A
    DIRECTION INPUT ;
  END A
END INV_X1`
	if _, err := Parse(strings.NewReader(src), lib); err != nil {
		t.Fatal(err)
	}
	if m.Width != 0.38 || m.Height != 1.4 {
		t.Fatalf("geometry not merged: %v x %v", m.Width, m.Height)
	}
	if m.Pin("A").Cap != 5e-15 {
		t.Fatal("electrical data clobbered")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"MACRO\n",
		"MACRO M\nSIZE 1 ;\nEND M",
		"DIRECTION INPUT ;",
		"CLASS CORE ;",
	}
	for _, src := range cases {
		lib := netlist.NewLibrary("x")
		if _, err := Parse(strings.NewReader(src), lib); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
}
