// Package lef reads and writes the LEF subset that carries the physical
// view the flow needs: macro class, size, and pin directions/offsets. It is
// also used to emit the cluster .lef models that Algorithm 1 line 13
// produces for seeded placement.
package lef

import (
	"fmt"
	"io"
	"math"

	"ppaclust/internal/netlist"
	"ppaclust/internal/scan"
)

// maxDimUM bounds every parsed dimension (sizes, pin offsets) in microns.
// Larger magnitudes are input corruption and would destabilize the %.4f
// writer round trip.
const maxDimUM = 1e8

// Write emits the physical view of every master in the library.
func Write(w io.Writer, lib *netlist.Library) error {
	fmt.Fprintf(w, "VERSION 5.8 ;\nBUSBITCHARS \"[]\" ;\nDIVIDERCHAR \"/\" ;\n\n")
	for _, name := range lib.MasterNames() {
		if err := WriteMacro(w, lib.Master(name)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "END LIBRARY")
	return err
}

// WriteMacro emits one MACRO block.
func WriteMacro(w io.Writer, m *netlist.Master) error {
	class := "CORE"
	switch m.Class {
	case netlist.ClassMacro:
		class = "BLOCK"
	case netlist.ClassPad:
		class = "PAD"
	}
	fmt.Fprintf(w, "MACRO %s\n  CLASS %s ;\n  SIZE %.4f BY %.4f ;\n", m.Name, class, m.Width, m.Height)
	for i := range m.Pins {
		p := &m.Pins[i]
		dir := "INPUT"
		switch p.Dir {
		case netlist.DirOutput:
			dir = "OUTPUT"
		case netlist.DirInout:
			dir = "INOUT"
		}
		fmt.Fprintf(w, "  PIN %s\n    DIRECTION %s ;\n", p.Name, dir)
		if p.Clock {
			fmt.Fprintf(w, "    USE CLOCK ;\n")
		}
		if p.OffsetX != 0 || p.OffsetY != 0 {
			fmt.Fprintf(w, "    ORIGIN %.4f %.4f ;\n", p.OffsetX, p.OffsetY)
		}
		fmt.Fprintf(w, "  END %s\n", p.Name)
	}
	_, err := fmt.Fprintf(w, "END %s\n\n", m.Name)
	return err
}

// Options configures a parse.
type Options struct {
	// File names the input in errors; defaults to "lef".
	File string
	// Lenient tolerates recoverable field errors — malformed SIZE or ORIGIN
	// values, keyword lines without an argument — by skipping the field and
	// recording a warning. Structural errors (MACRO without a name,
	// attributes outside their block) are fatal in both modes.
	Lenient bool
}

// Parse reads MACRO blocks into the given library, creating masters that do
// not exist and updating geometry of those that do (the usual
// liberty-then-lef load order). It returns the names of the macros read.
// Parsing is strict: every malformed field is a *scan.ParseError.
func Parse(r io.Reader, lib *netlist.Library) ([]string, error) {
	names, _, err := ParseWith(r, lib, Options{})
	return names, err
}

// ParseWith reads LEF under the given options. In lenient mode the returned
// warnings list the fields that were skipped.
func ParseWith(r io.Reader, lib *netlist.Library, o Options) ([]string, []*scan.ParseError, error) {
	file := o.File
	if file == "" {
		file = "lef"
	}
	p := &lefParser{lib: lib, strict: !o.Lenient}
	if o.Lenient {
		p.warns = &scan.Warnings{}
	}
	sc := scan.NewScanner(r, file, 1024*1024)
	for sc.Scan() {
		if err := p.line(sc.Line()); err != nil {
			return nil, p.warns.List(), err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, p.warns.List(), err
	}
	return p.names, p.warns.List(), nil
}

type lefParser struct {
	lib    *netlist.Library
	names  []string
	m      *netlist.Master
	pin    *netlist.MasterPin
	strict bool
	warns  *scan.Warnings
}

func (p *lefParser) tolerate(err error) error {
	if err == nil || p.strict {
		return err
	}
	if pe, ok := err.(*scan.ParseError); ok {
		p.warns.Add(pe)
	} else {
		p.warns.Add(&scan.ParseError{Msg: err.Error()})
	}
	return nil
}

// quant snaps a micron value to the writer's %.4f grid, so re-emission is
// an exact inverse of parsing (a sub-grid offset would otherwise flip the
// "offset is zero" test between cycles).
func quant(v float64) float64 { return math.Round(v*1e4) / 1e4 }

// dim parses field i as a dimension in microns, within [0, maxDimUM].
func (p *lefParser) dim(ln *scan.Line, i int) (float64, error) {
	v, err := ln.Float(i)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > maxDimUM {
		return 0, ln.Errf(ln.Tok(i), "dimension out of range [0, %g]", float64(maxDimUM))
	}
	return quant(v), nil
}

// offset parses field i as a signed pin offset in microns.
func (p *lefParser) offset(ln *scan.Line, i int) (float64, error) {
	v, err := ln.Float(i)
	if err != nil {
		return 0, err
	}
	if v < -maxDimUM || v > maxDimUM {
		return 0, ln.Errf(ln.Tok(i), "offset out of range")
	}
	return quant(v), nil
}

func (p *lefParser) line(ln *scan.Line) error {
	switch ln.Tok(0) {
	case "MACRO":
		if err := ln.Require(2); err != nil {
			return err
		}
		if ex := p.lib.Master(ln.Tok(1)); ex != nil {
			p.m = ex
		} else {
			p.m = &netlist.Master{Name: ln.Tok(1)}
			if err := p.lib.AddMaster(p.m); err != nil {
				return ln.Errf(ln.Tok(1), "%v", err)
			}
		}
		p.names = append(p.names, ln.Tok(1))
		p.pin = nil
	case "CLASS":
		if p.m == nil {
			return ln.Errf(ln.Tok(0), "CLASS outside MACRO")
		}
		if err := ln.Require(2); err != nil {
			return p.tolerate(err)
		}
		switch ln.Tok(1) {
		case "BLOCK":
			p.m.Class = netlist.ClassMacro
		case "PAD":
			p.m.Class = netlist.ClassPad
		default:
			p.m.Class = netlist.ClassCore
		}
	case "SIZE":
		if p.m == nil {
			return ln.Errf(ln.Tok(0), "SIZE outside MACRO")
		}
		if err := p.size(ln); err != nil {
			return p.tolerate(err)
		}
	case "PIN":
		if p.m == nil {
			return ln.Errf(ln.Tok(0), "PIN outside MACRO")
		}
		if err := ln.Require(2); err != nil {
			return err
		}
		if ex := p.m.Pin(ln.Tok(1)); ex != nil {
			p.pin = ex
		} else {
			p.pin = p.m.AddPin(netlist.MasterPin{Name: ln.Tok(1)})
		}
	case "DIRECTION":
		if p.pin == nil {
			return ln.Errf(ln.Tok(0), "DIRECTION outside PIN")
		}
		if err := ln.Require(2); err != nil {
			return p.tolerate(err)
		}
		switch ln.Tok(1) {
		case "OUTPUT":
			p.pin.Dir = netlist.DirOutput
		case "INOUT":
			p.pin.Dir = netlist.DirInout
		default:
			p.pin.Dir = netlist.DirInput
		}
	case "USE":
		if p.pin == nil {
			return nil // macro-level USE lines are outside the subset
		}
		if err := ln.Require(2); err != nil {
			return p.tolerate(err)
		}
		if ln.Tok(1) == "CLOCK" {
			p.pin.Clock = true
		}
	case "ORIGIN":
		if p.pin == nil {
			return ln.Errf(ln.Tok(0), "ORIGIN outside PIN")
		}
		if err := p.origin(ln); err != nil {
			return p.tolerate(err)
		}
	case "END":
		// Close the innermost open block first, so a pin that shares its
		// macro's name does not end the macro early.
		if ln.Len() >= 2 && p.pin != nil && ln.Tok(1) == p.pin.Name {
			p.pin = nil
		} else if ln.Len() >= 2 && p.m != nil && ln.Tok(1) == p.m.Name {
			p.m = nil
		}
	}
	return nil
}

func (p *lefParser) size(ln *scan.Line) error {
	if err := ln.Require(4); err != nil {
		return err
	}
	w, err := p.dim(ln, 1)
	if err != nil {
		return err
	}
	h, err := p.dim(ln, 3)
	if err != nil {
		return err
	}
	p.m.Width, p.m.Height = w, h
	return nil
}

func (p *lefParser) origin(ln *scan.Line) error {
	if err := ln.Require(3); err != nil {
		return err
	}
	x, err := p.offset(ln, 1)
	if err != nil {
		return err
	}
	y, err := p.offset(ln, 2)
	if err != nil {
		return err
	}
	p.pin.OffsetX, p.pin.OffsetY = x, y
	return nil
}
