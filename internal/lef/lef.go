// Package lef reads and writes the LEF subset that carries the physical
// view the flow needs: macro class, size, and pin directions/offsets. It is
// also used to emit the cluster .lef models that Algorithm 1 line 13
// produces for seeded placement.
package lef

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ppaclust/internal/netlist"
)

// Write emits the physical view of every master in the library.
func Write(w io.Writer, lib *netlist.Library) error {
	fmt.Fprintf(w, "VERSION 5.8 ;\nBUSBITCHARS \"[]\" ;\nDIVIDERCHAR \"/\" ;\n\n")
	for _, name := range lib.MasterNames() {
		if err := WriteMacro(w, lib.Master(name)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "END LIBRARY")
	return err
}

// WriteMacro emits one MACRO block.
func WriteMacro(w io.Writer, m *netlist.Master) error {
	class := "CORE"
	switch m.Class {
	case netlist.ClassMacro:
		class = "BLOCK"
	case netlist.ClassPad:
		class = "PAD"
	}
	fmt.Fprintf(w, "MACRO %s\n  CLASS %s ;\n  SIZE %.4f BY %.4f ;\n", m.Name, class, m.Width, m.Height)
	for i := range m.Pins {
		p := &m.Pins[i]
		dir := "INPUT"
		switch p.Dir {
		case netlist.DirOutput:
			dir = "OUTPUT"
		case netlist.DirInout:
			dir = "INOUT"
		}
		fmt.Fprintf(w, "  PIN %s\n    DIRECTION %s ;\n", p.Name, dir)
		if p.Clock {
			fmt.Fprintf(w, "    USE CLOCK ;\n")
		}
		if p.OffsetX != 0 || p.OffsetY != 0 {
			fmt.Fprintf(w, "    ORIGIN %.4f %.4f ;\n", p.OffsetX, p.OffsetY)
		}
		fmt.Fprintf(w, "  END %s\n", p.Name)
	}
	_, err := fmt.Fprintf(w, "END %s\n\n", m.Name)
	return err
}

// Parse reads MACRO blocks into the given library, creating masters that do
// not exist and updating geometry of those that do (the usual
// liberty-then-lef load order). It returns the names of the macros read.
func Parse(r io.Reader, lib *netlist.Library) ([]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var names []string
	var m *netlist.Master
	var pin *netlist.MasterPin
	lineNo := 0
	for sc.Scan() {
		lineNo++
		f := strings.Fields(strings.TrimSpace(sc.Text()))
		if len(f) == 0 {
			continue
		}
		switch f[0] {
		case "MACRO":
			if len(f) < 2 {
				return nil, fmt.Errorf("lef: line %d: MACRO without name", lineNo)
			}
			if ex := lib.Master(f[1]); ex != nil {
				m = ex
			} else {
				m = &netlist.Master{Name: f[1]}
				if err := lib.AddMaster(m); err != nil {
					return nil, err
				}
			}
			names = append(names, f[1])
			pin = nil
		case "CLASS":
			if m == nil {
				return nil, fmt.Errorf("lef: line %d: CLASS outside MACRO", lineNo)
			}
			switch f[1] {
			case "BLOCK":
				m.Class = netlist.ClassMacro
			case "PAD":
				m.Class = netlist.ClassPad
			default:
				m.Class = netlist.ClassCore
			}
		case "SIZE":
			if m == nil || len(f) < 4 {
				return nil, fmt.Errorf("lef: line %d: bad SIZE", lineNo)
			}
			var err error
			if m.Width, err = strconv.ParseFloat(f[1], 64); err != nil {
				return nil, fmt.Errorf("lef: line %d: %v", lineNo, err)
			}
			if m.Height, err = strconv.ParseFloat(f[3], 64); err != nil {
				return nil, fmt.Errorf("lef: line %d: %v", lineNo, err)
			}
		case "PIN":
			if m == nil || len(f) < 2 {
				return nil, fmt.Errorf("lef: line %d: bad PIN", lineNo)
			}
			if ex := m.Pin(f[1]); ex != nil {
				pin = ex
			} else {
				pin = m.AddPin(netlist.MasterPin{Name: f[1]})
			}
		case "DIRECTION":
			if pin == nil {
				return nil, fmt.Errorf("lef: line %d: DIRECTION outside PIN", lineNo)
			}
			switch f[1] {
			case "OUTPUT":
				pin.Dir = netlist.DirOutput
			case "INOUT":
				pin.Dir = netlist.DirInout
			default:
				pin.Dir = netlist.DirInput
			}
		case "USE":
			if pin != nil && f[1] == "CLOCK" {
				pin.Clock = true
			}
		case "ORIGIN":
			if pin == nil || len(f) < 3 {
				return nil, fmt.Errorf("lef: line %d: bad ORIGIN", lineNo)
			}
			pin.OffsetX, _ = strconv.ParseFloat(f[1], 64)
			pin.OffsetY, _ = strconv.ParseFloat(f[2], 64)
		case "END":
			if len(f) >= 2 && m != nil && f[1] == m.Name {
				m = nil
			}
			if len(f) >= 2 && pin != nil && f[1] == pin.Name {
				pin = nil
			}
		}
	}
	return names, sc.Err()
}
