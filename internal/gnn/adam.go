package gnn

import "math"

// Adam is the Adam optimizer over a parameter list.
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Eps     float64
	params  []*Tensor
	m, v    [][]float64
	t       int
	ClipAbs float64 // per-element gradient clip (0 = off)
}

// NewAdam builds an optimizer for the given parameters.
func NewAdam(params []*Tensor, lr float64) *Adam {
	a := &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		params:  params,
		ClipAbs: 5,
	}
	for _, p := range params {
		a.m = append(a.m, make([]float64, len(p.Data)))
		a.v = append(a.v, make([]float64, len(p.Data)))
	}
	return a
}

// Step applies one Adam update and clears the gradients.
func (a *Adam) Step() {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for pi, p := range a.params {
		m, v := a.m[pi], a.v[pi]
		for i, g := range p.Grad {
			if a.ClipAbs > 0 {
				if g > a.ClipAbs {
					g = a.ClipAbs
				} else if g < -a.ClipAbs {
					g = -a.ClipAbs
				}
			}
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			p.Data[i] -= a.LR * (m[i] / bc1) / (math.Sqrt(v[i]/bc2) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// ZeroGrads clears every parameter gradient without stepping.
func (a *Adam) ZeroGrads() {
	for _, p := range a.params {
		p.ZeroGrad()
	}
}
