package gnn

import (
	"math"
	"math/rand"
)

// Linear is a fully connected layer y = xW + b.
type Linear struct {
	W *Tensor
	B *Tensor
}

// NewLinear builds a Glorot-initialized linear layer.
func NewLinear(in, out int, rng *rand.Rand) *Linear {
	l := &Linear{W: NewParam(in, out, rng), B: NewTensor(1, out)}
	l.B.param = true
	return l
}

// Forward applies the layer.
func (l *Linear) Forward(c *Ctx, x *Tensor) *Tensor {
	return c.AddBias(c.MatMul(x, l.W), l.B)
}

// Params returns the learnable tensors.
func (l *Linear) Params() []*Tensor { return []*Tensor{l.W, l.B} }

// BatchNorm normalizes each feature column over the rows of the batch
// (the nodes of the graph), with learnable scale/shift and running
// statistics for inference.
type BatchNorm struct {
	Gamma, Beta     *Tensor
	RunMean, RunVar []float64
	Momentum, Eps   float64
	initialized     bool
}

// NewBatchNorm builds a batch-norm layer over dim features.
func NewBatchNorm(dim int) *BatchNorm {
	bn := &BatchNorm{
		Gamma:    NewTensor(1, dim),
		Beta:     NewTensor(1, dim),
		RunMean:  make([]float64, dim),
		RunVar:   make([]float64, dim),
		Momentum: 0.1,
		Eps:      1e-5,
	}
	bn.Gamma.param = true
	bn.Beta.param = true
	for i := range bn.Gamma.Data {
		bn.Gamma.Data[i] = 1
		bn.RunVar[i] = 1
	}
	return bn
}

// Params returns the learnable tensors.
func (bn *BatchNorm) Params() []*Tensor { return []*Tensor{bn.Gamma, bn.Beta} }

// Forward normalizes x over the rows of the current graph whenever more
// than one row is present — in both training and inference. Because each
// "batch" is a single cluster graph, using the graph's own statistics at
// inference keeps train/eval behavior identical (the GraphNorm convention);
// running estimates are still tracked and used for 1-row inputs (the
// prediction head), where batch statistics are undefined.
func (bn *BatchNorm) Forward(c *Ctx, x *Tensor) *Tensor {
	n, d := x.R, x.C
	mean := make([]float64, d)
	variance := make([]float64, d)
	if n > 1 {
		inv := 1 / float64(n)
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				mean[j] += x.Data[i*d+j] * inv
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < d; j++ {
				dv := x.Data[i*d+j] - mean[j]
				variance[j] += dv * dv * inv
			}
		}
		if c.train {
			m := bn.Momentum
			if !bn.initialized {
				m = 1
				bn.initialized = true
			}
			for j := 0; j < d; j++ {
				bn.RunMean[j] = (1-m)*bn.RunMean[j] + m*mean[j]
				bn.RunVar[j] = (1-m)*bn.RunVar[j] + m*variance[j]
			}
		}
	} else {
		copy(mean, bn.RunMean)
		copy(variance, bn.RunVar)
	}
	invStd := make([]float64, d)
	for j := 0; j < d; j++ {
		invStd[j] = 1 / math.Sqrt(variance[j]+bn.Eps)
	}
	xhat := make([]float64, n*d)
	out := NewTensor(n, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			h := (x.Data[i*d+j] - mean[j]) * invStd[j]
			xhat[i*d+j] = h
			out.Data[i*d+j] = bn.Gamma.Data[j]*h + bn.Beta.Data[j]
		}
	}
	useBatchStats := n > 1
	c.push(func() {
		if !useBatchStats {
			// Running-stat normalization is a per-element affine map.
			for i := 0; i < n; i++ {
				for j := 0; j < d; j++ {
					g := out.Grad[i*d+j]
					bn.Gamma.Grad[j] += g * xhat[i*d+j]
					bn.Beta.Grad[j] += g
					x.Grad[i*d+j] += g * bn.Gamma.Data[j] * invStd[j]
				}
			}
			return
		}
		// Full batch-norm backward.
		invN := 1 / float64(n)
		for j := 0; j < d; j++ {
			var sumG, sumGH float64
			for i := 0; i < n; i++ {
				g := out.Grad[i*d+j]
				sumG += g
				sumGH += g * xhat[i*d+j]
				bn.Gamma.Grad[j] += g * xhat[i*d+j]
				bn.Beta.Grad[j] += g
			}
			for i := 0; i < n; i++ {
				g := out.Grad[i*d+j]
				x.Grad[i*d+j] += bn.Gamma.Data[j] * invStd[j] *
					(g - sumG*invN - xhat[i*d+j]*sumGH*invN)
			}
		}
	})
	return out
}

// ConvBlock is one hypergraph-convolution block: propagate, transform,
// normalize, activate, with a skip connection when dimensions match.
type ConvBlock struct {
	Lin  *Linear
	BN   *BatchNorm
	Skip bool
}

// NewConvBlock builds a block; skip connections activate when in == out
// (as in the paper).
func NewConvBlock(in, out int, rng *rand.Rand) *ConvBlock {
	return &ConvBlock{
		Lin:  NewLinear(in, out, rng),
		BN:   NewBatchNorm(out),
		Skip: in == out,
	}
}

// Forward applies the block to node features x under propagation operator s.
func (b *ConvBlock) Forward(c *Ctx, s *Sparse, x *Tensor) *Tensor {
	h := c.SpMM(s, x)
	h = b.Lin.Forward(c, h)
	h = b.BN.Forward(c, h)
	h = c.ReLU(h)
	if b.Skip {
		h = c.Add(h, x)
	}
	return h
}

// Params returns the learnable tensors.
func (b *ConvBlock) Params() []*Tensor {
	return append(b.Lin.Params(), b.BN.Params()...)
}
