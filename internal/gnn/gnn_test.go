package gnn

import (
	"math"
	"math/rand"
	"testing"

	"ppaclust/internal/cluster"
	"ppaclust/internal/designs"
	"ppaclust/internal/features"
	"ppaclust/internal/vpr"
)

func TestMatMulForward(t *testing.T) {
	a := NewTensor(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	b := NewTensor(3, 2)
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	c := NewCtx(false)
	out := c.MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range want {
		if math.Abs(out.Data[i]-v) > 1e-12 {
			t.Fatalf("matmul out=%v", out.Data)
		}
	}
}

// numericalGrad checks the analytic gradient of a scalar loss w.r.t. one
// parameter element via central differences.
func numericalGrad(t *testing.T, param *Tensor, idx int, loss func() float64, analytic float64) {
	t.Helper()
	const h = 1e-6
	orig := param.Data[idx]
	param.Data[idx] = orig + h
	lp := loss()
	param.Data[idx] = orig - h
	lm := loss()
	param.Data[idx] = orig
	num := (lp - lm) / (2 * h)
	if math.Abs(num-analytic) > 1e-4*(1+math.Abs(num)) {
		t.Fatalf("grad mismatch: numeric %v analytic %v", num, analytic)
	}
}

func TestGradientsMatMulBias(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := NewTensor(3, 4)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	lin := NewLinear(4, 2, rng)
	w2 := NewParam(2, 1, rng)
	loss := func() float64 {
		c := NewCtx(false)
		h := lin.Forward(c, x)
		h = c.ReLU(h)
		out := c.MeanRows(h)
		out = c.MatMul(out, w2)
		return c.MSE(out, 0.7)
	}
	// Analytic.
	c := NewCtx(false)
	h := lin.Forward(c, x)
	h = c.ReLU(h)
	out := c.MeanRows(h)
	out = c.MatMul(out, w2)
	_ = c.MSE(out, 0.7)
	c.Backward()
	numericalGrad(t, lin.W, 3, loss, lin.W.Grad[3])
	numericalGrad(t, lin.B, 1, loss, lin.B.Grad[1])
	numericalGrad(t, w2, 0, loss, w2.Grad[0])
}

func TestGradientsBatchNormTrain(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := NewTensor(5, 3)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64() * 2
	}
	// Fresh BN per loss call so running stats don't drift between probes.
	mk := func() *BatchNorm { return NewBatchNorm(3) }
	bn := mk()
	g0 := bn.Gamma
	w := NewParam(3, 1, rng)
	forward := func(b *BatchNorm) (*Ctx, *Tensor) {
		c := NewCtx(true)
		h := b.Forward(c, x)
		o := c.MeanRows(h)
		return c, c.MatMul(o, w)
	}
	c, out := forward(bn)
	_ = c.MSE(out, 0.3)
	c.Backward()
	analytic := g0.Grad[1]
	loss := func() float64 {
		b := mk()
		b.Gamma.Data[1] = g0.Data[1]
		c2, o := forward(b)
		return c2.MSE(o, 0.3)
	}
	const h = 1e-6
	orig := g0.Data[1]
	g0.Data[1] = orig + h
	lp := loss()
	g0.Data[1] = orig - h
	lm := loss()
	g0.Data[1] = orig
	num := (lp - lm) / (2 * h)
	if math.Abs(num-analytic) > 1e-4*(1+math.Abs(num)) {
		t.Fatalf("bn gamma grad: numeric %v analytic %v", num, analytic)
	}
}

func TestGradientSpMM(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSparse(3)
	s.Add(0, 1, 0.5)
	s.Add(1, 0, 0.5)
	s.Add(2, 2, 1.0)
	s.Add(0, 0, 0.3)
	x := NewParam(3, 2, rng)
	loss := func() float64 {
		c := NewCtx(false)
		h := c.SpMM(s, x)
		o := c.MeanRows(h)
		o2 := NewTensor(1, 1)
		o2.Data[0] = o.Data[0] + o.Data[1]
		// use MatMul with ones to stay on tape
		ones := NewTensor(2, 1)
		ones.Data[0], ones.Data[1] = 1, 1
		p := c.MatMul(o, ones)
		return c.MSE(p, 0.1)
	}
	c := NewCtx(false)
	h := c.SpMM(s, x)
	o := c.MeanRows(h)
	ones := NewTensor(2, 1)
	ones.Data[0], ones.Data[1] = 1, 1
	p := c.MatMul(o, ones)
	_ = c.MSE(p, 0.1)
	c.Backward()
	numericalGrad(t, x, 2, loss, x.Grad[2])
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w - 3)^2 via the tape machinery.
	rng := rand.New(rand.NewSource(4))
	w := NewParam(1, 1, rng)
	one := NewTensor(1, 1)
	one.Data[0] = 1
	adam := NewAdam([]*Tensor{w}, 0.1)
	for i := 0; i < 200; i++ {
		c := NewCtx(false)
		out := c.MatMul(one, w)
		c.MSE(out, 3.0)
		c.Backward()
		adam.Step()
	}
	if math.Abs(w.Data[0]-3) > 1e-2 {
		t.Fatalf("w=%v want 3", w.Data[0])
	}
}

// toyGraphs builds tiny synthetic cluster graphs whose cost depends on the
// shape and a graph statistic, so the model has learnable signal.
func toySamples(t *testing.T, n int, seed int64) []Sample {
	t.Helper()
	b := designs.Generate(designs.TinySpec(seed))
	view := b.Design.ToHypergraph()
	res := cluster.MultilevelFC(view.H, cluster.Options{Seed: seed, TargetClusters: 8})
	var graphs []*GraphInput
	for cID := 0; cID < res.NumClusters; cID++ {
		var members []int
		for v, c := range res.Assign {
			if c == cID {
				members = append(members, v)
			}
		}
		if len(members) < 10 {
			continue
		}
		sub, err := vpr.InduceSubNetlist(b.Design, members)
		if err != nil {
			t.Fatal(err)
		}
		graphs = append(graphs, BuildGraphInput(sub, features.Options{Seed: seed}))
	}
	if len(graphs) == 0 {
		t.Fatal("no usable clusters")
	}
	var out []Sample
	i := 0
	for len(out) < n {
		g := graphs[i%len(graphs)]
		for _, s := range vpr.ShapeCandidates() {
			// Synthetic smooth label: depends on shape and graph size.
			label := 0.5 + 0.8*math.Abs(s.AspectRatio-1.0) + 0.5*(s.Utilization-0.75) +
				0.1*math.Log(float64(g.NumNodes()))
			out = append(out, Sample{Graph: g, Shape: s, Label: label})
			if len(out) >= n {
				break
			}
		}
		i++
	}
	return out
}

func TestFitReducesLoss(t *testing.T) {
	samples := toySamples(t, 60, 71)
	m := NewModel(5)
	losses := m.Fit(samples, TrainOptions{Epochs: 6, LR: 2e-3, Seed: 1})
	if len(losses) != 6 {
		t.Fatalf("losses=%v", losses)
	}
	if !(losses[len(losses)-1] < losses[0]) {
		t.Fatalf("training did not reduce loss: %v", losses)
	}
}

func TestEvaluateMetrics(t *testing.T) {
	samples := toySamples(t, 80, 72)
	m := NewModel(6)
	m.Fit(samples[:60], TrainOptions{Epochs: 25, LR: 3e-3, Seed: 2})
	train := m.Evaluate(samples[:60])
	test := m.Evaluate(samples[60:])
	if train.N != 60 || test.N != 20 {
		t.Fatalf("counts: %d %d", train.N, test.N)
	}
	if train.MAE <= 0 || test.MAE <= 0 {
		t.Fatal("MAE should be positive")
	}
	// The synthetic label is smooth in the inputs; training must beat the
	// trivial predictor on the train split (R2 > 0).
	if train.R2 <= 0 {
		t.Fatalf("train R2=%v", train.R2)
	}
}

func TestPredictBestShapeAndCostModel(t *testing.T) {
	samples := toySamples(t, 60, 73)
	m := NewModel(7)
	m.Fit(samples, TrainOptions{Epochs: 8, LR: 2e-3, Seed: 3})
	g := samples[0].Graph
	best := m.PredictBestShape(g)
	// The synthetic label is minimized at AR=1.0, util=0.75.
	if math.Abs(best.AspectRatio-1.0) > 0.26 {
		t.Fatalf("predicted AR=%v, expected near 1.0", best.AspectRatio)
	}
	// CostModel wrapper consistency.
	cm := m.CostModelFor(g)
	s := vpr.Shape{AspectRatio: 1.0, Utilization: 0.8}
	if cm.TotalCost(nil, s) != m.Predict(g, s) {
		t.Fatal("cost model disagrees with Predict")
	}
}

func TestEvaluateEmpty(t *testing.T) {
	m := NewModel(8)
	if got := m.Evaluate(nil); got.N != 0 {
		t.Fatalf("empty evaluate: %+v", got)
	}
	if m.Fit(nil, TrainOptions{}) != nil {
		t.Fatal("fit on empty set should return nil")
	}
}

func TestBuildGraphInputSelfLoops(t *testing.T) {
	b := designs.Generate(designs.TinySpec(74))
	g := BuildGraphInput(b.Design, features.Options{})
	if g.NumNodes() != len(b.Design.Insts) {
		t.Fatal("node count mismatch")
	}
	// Every node must have at least the 0.5 self entry.
	for i := 0; i < g.S.N; i++ {
		found := false
		for _, e := range g.S.rows[i] {
			if e.col == i {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d missing self-loop", i)
		}
	}
}

func TestModelDeterministicPredict(t *testing.T) {
	samples := toySamples(t, 40, 75)
	m := NewModel(9)
	m.Fit(samples, TrainOptions{Epochs: 3, Seed: 4})
	p1 := m.Predict(samples[0].Graph, samples[0].Shape)
	p2 := m.Predict(samples[0].Graph, samples[0].Shape)
	if p1 != p2 {
		t.Fatal("inference not deterministic")
	}
}
