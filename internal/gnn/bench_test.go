package gnn

import (
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/features"
	"ppaclust/internal/vpr"
)

func benchGraph(b *testing.B) *GraphInput {
	b.Helper()
	bench := designs.Generate(designs.TinySpec(500))
	return BuildGraphInput(bench.Design, features.Options{Seed: 1})
}

// BenchmarkPredict measures one forward pass of the 4-branch model.
func BenchmarkPredict(b *testing.B) {
	g := benchGraph(b)
	m := NewModel(1)
	shape := vpr.Shape{AspectRatio: 1.0, Utilization: 0.85}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(g, shape)
	}
}

// BenchmarkTrainStep measures one forward+backward+Adam step.
func BenchmarkTrainStep(b *testing.B) {
	g := benchGraph(b)
	m := NewModel(2)
	adam := NewAdam(m.Params(), 1e-3)
	shape := vpr.Shape{AspectRatio: 1.25, Utilization: 0.8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCtx(true)
		out := m.forward(c, g, shape)
		c.MSE(out, 1.0)
		c.Backward()
		adam.Step()
	}
}
