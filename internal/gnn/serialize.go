package gnn

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary model serialization: a magic header, the architecture constants
// (validated on load), then every parameter tensor, batch-norm running
// statistic and normalization vector in a fixed order. This lets a flow
// train the Total Cost predictor once and reuse it across runs, the
// "one-time training cost" the paper's conclusion highlights.

const modelMagic = "PPACLUST-GNN-1\n"

// Save writes the model to w.
func (m *Model) Save(w io.Writer) error {
	if _, err := io.WriteString(w, modelMagic); err != nil {
		return err
	}
	dims := []int64{InputDim, HiddenDim, EmbedDim, HeadDim, Branches}
	for _, v := range dims {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, t := range m.Params() {
		if err := writeFloats(w, t.Data); err != nil {
			return err
		}
	}
	for _, bn := range m.batchNorms() {
		if err := writeFloats(w, bn.RunMean); err != nil {
			return err
		}
		if err := writeFloats(w, bn.RunVar); err != nil {
			return err
		}
	}
	if err := writeFloats(w, m.featMean); err != nil {
		return err
	}
	if err := writeFloats(w, m.featStd); err != nil {
		return err
	}
	return writeFloats(w, []float64{m.labelMean, m.labelStd})
}

// LoadModel reads a model previously written by Save.
func LoadModel(r io.Reader) (*Model, error) {
	magic := make([]byte, len(modelMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("gnn: reading magic: %w", err)
	}
	if string(magic) != modelMagic {
		return nil, fmt.Errorf("gnn: bad model file magic %q", magic)
	}
	dims := make([]int64, 5)
	for i := range dims {
		if err := binary.Read(r, binary.LittleEndian, &dims[i]); err != nil {
			return nil, err
		}
	}
	want := []int64{InputDim, HiddenDim, EmbedDim, HeadDim, Branches}
	for i := range want {
		if dims[i] != want[i] {
			return nil, fmt.Errorf("gnn: model dims %v incompatible with build %v", dims, want)
		}
	}
	m := NewModel(0)
	for _, t := range m.Params() {
		if err := readFloats(r, t.Data); err != nil {
			return nil, err
		}
	}
	for _, bn := range m.batchNorms() {
		if err := readFloats(r, bn.RunMean); err != nil {
			return nil, err
		}
		if err := readFloats(r, bn.RunVar); err != nil {
			return nil, err
		}
		bn.initialized = true
	}
	if err := readFloats(r, m.featMean); err != nil {
		return nil, err
	}
	if err := readFloats(r, m.featStd); err != nil {
		return nil, err
	}
	tail := make([]float64, 2)
	if err := readFloats(r, tail); err != nil {
		return nil, err
	}
	m.labelMean, m.labelStd = tail[0], tail[1]
	return m, nil
}

// batchNorms enumerates every batch-norm layer in deterministic order.
func (m *Model) batchNorms() []*BatchNorm {
	var out []*BatchNorm
	for b := range m.branches {
		for _, blk := range m.branches[b] {
			out = append(out, blk.BN)
		}
	}
	return append(out, m.headBN)
}

func writeFloats(w io.Writer, vs []float64) error {
	if err := binary.Write(w, binary.LittleEndian, int64(len(vs))); err != nil {
		return err
	}
	buf := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	_, err := w.Write(buf)
	return err
}

func readFloats(r io.Reader, vs []float64) error {
	var n int64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return err
	}
	if int(n) != len(vs) {
		return fmt.Errorf("gnn: vector length %d, expected %d", n, len(vs))
	}
	buf := make([]byte, 8*n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range vs {
		vs[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return nil
}
