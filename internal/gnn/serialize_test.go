package gnn

import (
	"bytes"
	"strings"
	"testing"

	"ppaclust/internal/vpr"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	samples := toySamples(t, 40, 91)
	m := NewModel(3)
	m.Fit(samples, TrainOptions{Epochs: 3, Seed: 1})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Predictions must match bit-for-bit.
	for _, s := range samples[:5] {
		want := m.Predict(s.Graph, s.Shape)
		got := loaded.Predict(s.Graph, s.Shape)
		if want != got {
			t.Fatalf("prediction drift after load: %v != %v", got, want)
		}
	}
	// Best-shape selection agrees too.
	if m.PredictBestShape(samples[0].Graph) != loaded.PredictBestShape(samples[0].Graph) {
		t.Fatal("best-shape drift after load")
	}
	_ = vpr.Shape{}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadModel(strings.NewReader("not a model file at all")); err == nil {
		t.Fatal("expected magic error")
	}
	var buf bytes.Buffer
	m := NewModel(1)
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncated stream fails cleanly.
	if _, err := LoadModel(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("expected truncation error")
	}
}
