package gnn

import "testing"

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c := NewCtx(false)
	c.MatMul(NewTensor(2, 3), NewTensor(4, 2))
}

func TestAddShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c := NewCtx(false)
	c.Add(NewTensor(2, 3), NewTensor(3, 2))
}

func TestSpMMShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c := NewCtx(false)
	s := NewSparse(3)
	c.SpMM(s, NewTensor(4, 2))
}

func TestMSERequiresScalar(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c := NewCtx(false)
	c.MSE(NewTensor(2, 1), 0)
}

func TestTensorAccessors(t *testing.T) {
	x := NewTensor(2, 3)
	x.Set(1, 2, 7)
	if x.At(1, 2) != 7 {
		t.Fatal("At/Set broken")
	}
	x.Grad[0] = 5
	x.ZeroGrad()
	if x.Grad[0] != 0 {
		t.Fatal("ZeroGrad broken")
	}
	if x.String() != "Tensor(2x3)" {
		t.Fatalf("String()=%q", x.String())
	}
}

func TestReLUForwardBackwardSigns(t *testing.T) {
	c := NewCtx(false)
	x := NewTensor(1, 4)
	copy(x.Data, []float64{-2, -0.5, 0.5, 2})
	y := c.ReLU(x)
	want := []float64{0, 0, 0.5, 2}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("relu fwd: %v", y.Data)
		}
	}
	for i := range y.Grad {
		y.Grad[i] = 1
	}
	c.Backward()
	if x.Grad[0] != 0 || x.Grad[1] != 0 || x.Grad[2] != 1 || x.Grad[3] != 1 {
		t.Fatalf("relu bwd: %v", x.Grad)
	}
}
