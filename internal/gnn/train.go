package gnn

import (
	"math"
	"math/rand"

	"ppaclust/internal/netlist"
	"ppaclust/internal/vpr"
)

// Sample is one training example: a cluster graph, a candidate shape, and
// the Total Cost label from exact V-P&R.
type Sample struct {
	Graph *GraphInput
	Shape vpr.Shape
	Label float64
}

// TrainOptions configures training.
type TrainOptions struct {
	Epochs int     // default 8
	LR     float64 // default 1e-3
	Seed   int64
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.Epochs <= 0 {
		o.Epochs = 8
	}
	if o.LR <= 0 {
		o.LR = 1e-3
	}
	return o
}

// Fit standardizes features/labels from the training set and runs Adam over
// per-sample (stochastic) updates. It returns the per-epoch training loss
// (MSE in standardized label units).
func (m *Model) Fit(train []Sample, opt TrainOptions) []float64 {
	opt = opt.withDefaults()
	if len(train) == 0 {
		return nil
	}
	m.fitNormalization(train)
	adam := NewAdam(m.Params(), opt.LR)
	rng := rand.New(rand.NewSource(opt.Seed + 7))
	losses := make([]float64, 0, opt.Epochs)
	order := make([]int, len(train))
	for i := range order {
		order[i] = i
	}
	for ep := 0; ep < opt.Epochs; ep++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		var sum float64
		for _, idx := range order {
			s := train[idx]
			if s.Graph.NumNodes() == 0 {
				continue
			}
			c := NewCtx(true)
			out := m.forward(c, s.Graph, s.Shape)
			label := (s.Label - m.labelMean) / m.labelStd
			sum += c.MSE(out, label)
			c.Backward()
			adam.Step()
		}
		losses = append(losses, sum/float64(len(train)))
	}
	return losses
}

// fitNormalization computes feature and label standardization from samples.
func (m *Model) fitNormalization(train []Sample) {
	dim := InputDim
	mean := make([]float64, dim)
	sq := make([]float64, dim)
	row := make([]float64, dim)
	count := 0
	var lSum, lSq float64
	for _, s := range train {
		g := s.Graph
		for i := 0; i < g.NumNodes(); i++ {
			g.F.NodeVec(i, s.Shape.AspectRatio, s.Shape.Utilization, row)
			for j := 0; j < dim; j++ {
				mean[j] += row[j]
				sq[j] += row[j] * row[j]
			}
			count++
		}
		lSum += s.Label
		lSq += s.Label * s.Label
	}
	if count == 0 {
		return
	}
	for j := 0; j < dim; j++ {
		mean[j] /= float64(count)
		v := sq[j]/float64(count) - mean[j]*mean[j]
		if v < 1e-12 {
			v = 1
		}
		m.featMean[j] = mean[j]
		m.featStd[j] = math.Sqrt(v)
	}
	n := float64(len(train))
	m.labelMean = lSum / n
	lv := lSq/n - m.labelMean*m.labelMean
	if lv < 1e-12 {
		lv = 1
	}
	m.labelStd = math.Sqrt(lv)
}

// Metrics summarizes prediction quality on a dataset (Section 4.4 reports
// MAE and the R2 score).
type Metrics struct {
	MAE  float64
	R2   float64
	RMSE float64
	N    int
}

// Evaluate computes MAE/R2/RMSE of the model on a sample set.
func (m *Model) Evaluate(samples []Sample) Metrics {
	var mae, se, labelSum float64
	n := 0
	for _, s := range samples {
		if s.Graph.NumNodes() == 0 {
			continue
		}
		p := m.Predict(s.Graph, s.Shape)
		d := p - s.Label
		mae += math.Abs(d)
		se += d * d
		labelSum += s.Label
		n++
	}
	if n == 0 {
		return Metrics{}
	}
	mean := labelSum / float64(n)
	var tss float64
	for _, s := range samples {
		if s.Graph.NumNodes() == 0 {
			continue
		}
		d := s.Label - mean
		tss += d * d
	}
	met := Metrics{MAE: mae / float64(n), RMSE: math.Sqrt(se / float64(n)), N: n}
	if tss > 0 {
		met.R2 = 1 - se/tss
	}
	return met
}

// CostModelFor wraps the trained model as a vpr.CostModel bound to one
// prepared cluster graph, making it a drop-in replacement for the exact
// V-P&R runner in vpr.BestShape.
func (m *Model) CostModelFor(g *GraphInput) vpr.CostModel {
	return &modelCost{m: m, g: g}
}

type modelCost struct {
	m *Model
	g *GraphInput
}

// TotalCost implements vpr.CostModel; the sub-design argument is unused
// because the graph input was prepared up front.
func (mc *modelCost) TotalCost(_ *netlist.Design, shape vpr.Shape) float64 {
	return mc.m.Predict(mc.g, shape)
}

// PredictBestShape evaluates all 20 candidates on one graph and returns the
// arg-min shape, the accelerated path of Figure 3.
func (m *Model) PredictBestShape(g *GraphInput) vpr.Shape {
	cands := vpr.ShapeCandidates()
	best := cands[0]
	bestCost := math.Inf(1)
	for _, s := range cands {
		if c := m.Predict(g, s); c < bestCost {
			bestCost = c
			best = s
		}
	}
	return best
}
