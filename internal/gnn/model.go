package gnn

import (
	"math"
	"math/rand"

	"ppaclust/internal/features"
	"ppaclust/internal/netlist"
	"ppaclust/internal/vpr"
)

// Architecture constants from the paper (Figure 4).
const (
	InputDim  = features.Dim // 35
	HiddenDim = 64
	EmbedDim  = 32
	HeadDim   = 64
	Branches  = 4
)

// Model is the Total Cost predictor: four convolution branches whose outputs
// are accumulated, global mean pooling, then a two-layer head.
type Model struct {
	branches [Branches][3]*ConvBlock
	head1    *Linear
	headBN   *BatchNorm
	head2    *Linear

	// Input feature standardization (fit on the training set).
	featMean []float64
	featStd  []float64
	// Label standardization.
	labelMean, labelStd float64
}

// NewModel builds a freshly initialized model.
func NewModel(seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	m := &Model{
		head1:    NewLinear(EmbedDim, HeadDim, rng),
		headBN:   NewBatchNorm(HeadDim),
		head2:    NewLinear(HeadDim, 1, rng),
		featMean: make([]float64, InputDim),
		featStd:  onesVec(InputDim),
		labelStd: 1,
	}
	for b := 0; b < Branches; b++ {
		m.branches[b][0] = NewConvBlock(InputDim, HiddenDim, rng)
		m.branches[b][1] = NewConvBlock(HiddenDim, HiddenDim, rng)
		m.branches[b][2] = NewConvBlock(HiddenDim, EmbedDim, rng)
	}
	return m
}

func onesVec(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Params returns every learnable tensor.
func (m *Model) Params() []*Tensor {
	var out []*Tensor
	for b := range m.branches {
		for _, blk := range m.branches[b] {
			out = append(out, blk.Params()...)
		}
	}
	out = append(out, m.head1.Params()...)
	out = append(out, m.headBN.Params()...)
	out = append(out, m.head2.Params()...)
	return out
}

// forward computes the standardized-cost prediction tensor for one graph.
func (m *Model) forward(c *Ctx, g *GraphInput, shape vpr.Shape) *Tensor {
	x := m.inputTensor(g, shape)
	var acc *Tensor
	for b := range m.branches {
		h := x
		for _, blk := range m.branches[b] {
			h = blk.Forward(c, g.S, h)
		}
		if acc == nil {
			acc = h
		} else {
			acc = c.Add(acc, h)
		}
	}
	emb := c.MeanRows(acc)
	h := m.head1.Forward(c, emb)
	h = m.headBN.Forward(c, h)
	h = c.ReLU(h)
	return m.head2.Forward(c, h)
}

// inputTensor builds the standardized node-feature matrix.
func (m *Model) inputTensor(g *GraphInput, shape vpr.Shape) *Tensor {
	n := g.NumNodes()
	x := NewTensor(n, InputDim)
	row := make([]float64, InputDim)
	for i := 0; i < n; i++ {
		g.F.NodeVec(i, shape.AspectRatio, shape.Utilization, row)
		for j := 0; j < InputDim; j++ {
			x.Data[i*InputDim+j] = (row[j] - m.featMean[j]) / m.featStd[j]
		}
	}
	return x
}

// Predict returns the predicted Total Cost for a cluster graph and shape.
func (m *Model) Predict(g *GraphInput, shape vpr.Shape) float64 {
	c := NewCtx(false)
	out := m.forward(c, g, shape)
	return out.Data[0]*m.labelStd + m.labelMean
}

// GraphInput is one cluster graph prepared for the model.
type GraphInput struct {
	S *Sparse
	F *features.Features
}

// NumNodes returns the node count.
func (g *GraphInput) NumNodes() int { return g.F.NumCells }

// BuildGraphInput converts a cluster sub-netlist into the model's input:
// extracted features plus the normalized hypergraph propagation operator
//
//	S = 1/2 I + 1/2 D_v^{-1/2} H D_e^{-1} H^T D_v^{-1/2}
//
// (clique-free hyperedge averaging with a self-connection for stability).
func BuildGraphInput(sub *netlist.Design, fopt features.Options) *GraphInput {
	f := features.Extract(sub, fopt)
	n := len(sub.Insts)
	s := NewSparse(n)
	if n == 0 {
		return &GraphInput{S: s, F: f}
	}
	// Hyperedges: nets with 2..64 instance pins.
	var edges [][]int
	deg := make([]float64, n)
	for _, net := range sub.Nets {
		var members []int
		seen := map[int]bool{}
		for _, pr := range net.Pins {
			if !pr.IsPort() && !seen[pr.Inst] {
				seen[pr.Inst] = true
				members = append(members, pr.Inst)
			}
		}
		if len(members) < 2 || len(members) > 64 {
			continue
		}
		edges = append(edges, members)
		for _, v := range members {
			deg[v]++
		}
	}
	invSqrt := make([]float64, n)
	for i := range invSqrt {
		if deg[i] > 0 {
			invSqrt[i] = 1 / math.Sqrt(deg[i])
		}
	}
	for i := 0; i < n; i++ {
		s.Add(i, i, 0.5)
	}
	for _, members := range edges {
		de := float64(len(members))
		for _, u := range members {
			for _, v := range members {
				s.Add(u, v, 0.5*invSqrt[u]*invSqrt[v]/de)
			}
		}
	}
	return &GraphInput{S: s, F: f}
}
