// Package gnn implements the paper's GNN-based Total Cost predictor in pure
// Go: a small reverse-mode autograd over dense matrices, hypergraph
// convolution blocks (Bai et al. [3]) with batch normalization and skip
// connections, four accumulated convolution branches, global mean pooling
// and a two-layer prediction head — the architecture of Figure 4 — trained
// with Adam on labels produced by the exact V-P&R runner.
package gnn

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major matrix participating in autograd.
type Tensor struct {
	R, C  int
	Data  []float64
	Grad  []float64
	param bool
}

// NewTensor allocates a zero tensor.
func NewTensor(r, c int) *Tensor {
	return &Tensor{R: r, C: c, Data: make([]float64, r*c), Grad: make([]float64, r*c)}
}

// NewParam allocates a parameter tensor with Glorot-uniform init.
func NewParam(r, c int, rng *rand.Rand) *Tensor {
	t := NewTensor(r, c)
	t.param = true
	limit := math.Sqrt(6 / float64(r+c))
	for i := range t.Data {
		t.Data[i] = (rng.Float64()*2 - 1) * limit
	}
	return t
}

// At returns element (i,j).
func (t *Tensor) At(i, j int) float64 { return t.Data[i*t.C+j] }

// Set assigns element (i,j).
func (t *Tensor) Set(i, j int, v float64) { t.Data[i*t.C+j] = v }

// ZeroGrad clears the gradient buffer.
func (t *Tensor) ZeroGrad() {
	for i := range t.Grad {
		t.Grad[i] = 0
	}
}

func (t *Tensor) String() string { return fmt.Sprintf("Tensor(%dx%d)", t.R, t.C) }

// Ctx records the operation tape for one forward pass. Backward() replays
// it in reverse. A Ctx is single-use.
type Ctx struct {
	tape  []func()
	train bool
}

// NewCtx returns a fresh tape. train enables batch-norm batch statistics.
func NewCtx(train bool) *Ctx { return &Ctx{train: train} }

func (c *Ctx) push(back func()) {
	c.tape = append(c.tape, back)
}

// Backward runs the tape in reverse. The caller must have seeded the output
// gradient (e.g. via a loss op).
func (c *Ctx) Backward() {
	for i := len(c.tape) - 1; i >= 0; i-- {
		c.tape[i]()
	}
}

// badShape reports a tensor-shape violation. Layer shapes are fixed by the
// model architecture at construction time, so a mismatch is a wiring bug in
// the calling code, never a runtime data condition; threading errors
// through every arithmetic op would bury the math under impossible-error
// plumbing.
func badShape(msg string) {
	panic(msg) //ppalint:ignore nopanic invariant assertion: layer shapes are fixed by the architecture, a mismatch is a wiring bug
}

// MatMul returns a@b, recording the backward closure.
func (c *Ctx) MatMul(a, b *Tensor) *Tensor {
	if a.C != b.R {
		badShape(fmt.Sprintf("gnn: matmul shape mismatch %v x %v", a, b))
	}
	out := NewTensor(a.R, b.C)
	matmul(a.Data, b.Data, out.Data, a.R, a.C, b.C, false, false)
	c.push(func() {
		// dA += dOut @ B^T ; dB += A^T @ dOut
		matmulAcc(out.Grad, b.Data, a.Grad, a.R, b.C, a.C, false, true)
		matmulAcc(a.Data, out.Grad, b.Grad, a.C, a.R, b.C, true, false)
	})
	return out
}

// matmul computes out = A@B with optional transposes (dims are of the
// effective operation: out is m x n, inner k).
func matmul(a, b, out []float64, m, k, n int, ta, tb bool) {
	for i := range out {
		out[i] = 0
	}
	matmulAcc(a, b, out, m, k, n, ta, tb)
}

// matmulAcc accumulates out += op(A)@op(B). For ta=false, A is m x k; for
// ta=true, A is k x m. For tb=false, B is k x n; tb=true, B is n x k.
func matmulAcc(a, b, out []float64, m, k, n int, ta, tb bool) {
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			var av float64
			if ta {
				av = a[p*m+i]
			} else {
				av = a[i*k+p]
			}
			if av == 0 {
				continue
			}
			outRow := out[i*n : (i+1)*n]
			if tb {
				for j := 0; j < n; j++ {
					outRow[j] += av * b[j*k+p]
				}
			} else {
				bRow := b[p*n : (p+1)*n]
				for j := 0; j < n; j++ {
					outRow[j] += av * bRow[j]
				}
			}
		}
	}
}

// AddBias adds a row-vector bias to every row.
func (c *Ctx) AddBias(x, b *Tensor) *Tensor {
	if b.R != 1 || b.C != x.C {
		badShape("gnn: bias shape mismatch")
	}
	out := NewTensor(x.R, x.C)
	for i := 0; i < x.R; i++ {
		for j := 0; j < x.C; j++ {
			out.Data[i*x.C+j] = x.Data[i*x.C+j] + b.Data[j]
		}
	}
	c.push(func() {
		for i := 0; i < x.R; i++ {
			for j := 0; j < x.C; j++ {
				g := out.Grad[i*x.C+j]
				x.Grad[i*x.C+j] += g
				b.Grad[j] += g
			}
		}
	})
	return out
}

// Add returns x+y for equal shapes (used for skip connections and branch
// accumulation).
func (c *Ctx) Add(x, y *Tensor) *Tensor {
	if x.R != y.R || x.C != y.C {
		badShape("gnn: add shape mismatch")
	}
	out := NewTensor(x.R, x.C)
	for i := range out.Data {
		out.Data[i] = x.Data[i] + y.Data[i]
	}
	c.push(func() {
		for i := range out.Grad {
			x.Grad[i] += out.Grad[i]
			y.Grad[i] += out.Grad[i]
		}
	})
	return out
}

// ReLU applies max(0, x) elementwise.
func (c *Ctx) ReLU(x *Tensor) *Tensor {
	out := NewTensor(x.R, x.C)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	c.push(func() {
		for i := range out.Grad {
			if x.Data[i] > 0 {
				x.Grad[i] += out.Grad[i]
			}
		}
	})
	return out
}

// MeanRows performs global mean pooling over rows: [n x d] -> [1 x d].
func (c *Ctx) MeanRows(x *Tensor) *Tensor {
	out := NewTensor(1, x.C)
	inv := 1 / float64(x.R)
	for i := 0; i < x.R; i++ {
		for j := 0; j < x.C; j++ {
			out.Data[j] += x.Data[i*x.C+j] * inv
		}
	}
	c.push(func() {
		for i := 0; i < x.R; i++ {
			for j := 0; j < x.C; j++ {
				x.Grad[i*x.C+j] += out.Grad[j] * inv
			}
		}
	})
	return out
}

// Sparse is a fixed (non-learnable) sparse matrix in CSR-like row lists,
// used for the hypergraph propagation operator.
type Sparse struct {
	N    int
	rows [][]sparseEntry
}

type sparseEntry struct {
	col int
	val float64
}

// NewSparse allocates an empty n x n sparse matrix.
func NewSparse(n int) *Sparse {
	return &Sparse{N: n, rows: make([][]sparseEntry, n)}
}

// Add accumulates S[i][j] += v.
func (s *Sparse) Add(i, j int, v float64) {
	s.rows[i] = append(s.rows[i], sparseEntry{j, v})
}

// SpMM returns S @ x ([n x n] @ [n x d]). S carries no gradient; the
// backward pass multiplies by S^T.
func (c *Ctx) SpMM(s *Sparse, x *Tensor) *Tensor {
	if s.N != x.R {
		badShape("gnn: spmm shape mismatch")
	}
	out := NewTensor(x.R, x.C)
	d := x.C
	for i, row := range s.rows {
		for _, e := range row {
			xv := x.Data[e.col*d : (e.col+1)*d]
			ov := out.Data[i*d : (i+1)*d]
			for j := 0; j < d; j++ {
				ov[j] += e.val * xv[j]
			}
		}
	}
	c.push(func() {
		for i, row := range s.rows {
			for _, e := range row {
				og := out.Grad[i*d : (i+1)*d]
				xg := x.Grad[e.col*d : (e.col+1)*d]
				for j := 0; j < d; j++ {
					xg[j] += e.val * og[j]
				}
			}
		}
	})
	return out
}

// MSE seeds the backward pass with the mean-squared-error gradient of a
// [1x1] prediction against a scalar label, returning the loss value.
func (c *Ctx) MSE(pred *Tensor, label float64) float64 {
	if pred.R != 1 || pred.C != 1 {
		badShape("gnn: MSE expects 1x1 prediction")
	}
	diff := pred.Data[0] - label
	pred.Grad[0] += 2 * diff
	return diff * diff
}
