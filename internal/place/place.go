// Package place is the reproduction's global placer, standing in for
// RePlAce/OpenROAD gpl and the Innovus placer. It is a quadratic placer:
// a bound-to-bound (B2B) net model is solved per axis with Jacobi-
// preconditioned conjugate gradient, interleaved with FastPlace-style
// cell-shifting spreading anchored through pseudo-nets. From-scratch runs on
// large designs warm-start from a cluster-hierarchy coarse placement
// (multigrid style; see multigrid.go). It supports the two modes the
// paper's flow requires: from-scratch placement of (clustered) netlists, and
// incremental placement seeded from initial positions (Algorithm 1 lines
// 15-25), optionally under per-instance region constraints (Innovus mode).
// A Tetris-style legalizer snaps cells to rows/sites.
//
// The hot paths run on the netlist's Compact CSR view: system assembly walks
// flat pin arrays (variable index or precomputed constant coordinate per
// pin) instead of *Net/*Instance pointers and port-name map lookups, and all
// solver scratch is allocated once per run, so per-iteration work is
// allocation-free in steady state.
package place

import (
	"math"
	"math/rand"

	"ppaclust/internal/netlist"
	"ppaclust/internal/par"
	"ppaclust/internal/sortx"
	"ppaclust/internal/sta"
)

// Options configures a placement run.
type Options struct {
	// Iterations is the number of solve+spread rounds. Default 24 (8 when
	// Incremental).
	Iterations int
	// CGIterations bounds the conjugate-gradient iterations per solve.
	// Default 50. Solves also exit early once the preconditioned residual
	// drops by cgRelTol relative to the start of the solve.
	CGIterations int
	// TargetDensity is the per-bin density ceiling. Default max(0.75,
	// utilization*1.1) clamped to 1.
	TargetDensity float64
	// Incremental starts from the instances' current positions and anchors
	// to them instead of starting at the core center.
	Incremental bool
	// AnchorWeight scales the seed anchors in incremental mode. Default 0.03.
	AnchorWeight float64
	// SpreadWeight scales the spreading pseudo-net weights. Default 0.18.
	SpreadWeight float64
	// Regions constrains instances (by ID) to rectangles; cells are clamped
	// into their region after every round.
	Regions map[int]netlist.Rect
	// SoftRegions makes regions guide instead of confine: spreading anchors
	// are clamped into the region but final positions may spill out. This
	// models Innovus-style region constraints that are removed after
	// incremental placement (Algorithm 1 line 20).
	SoftRegions bool
	// RegionIterations bounds how many initial rounds the regions steer
	// (0 = all rounds). Small values give brief guidance then free
	// refinement — the "run incremental placement, remove constraints"
	// recipe.
	RegionIterations int
	// Seed jitters the initial placement deterministically.
	Seed int64
	// Legalize snaps cells to rows and sites after global placement.
	Legalize bool
	// OverflowStop ends iterations early once bin overflow drops below this
	// fraction. Default 0.12.
	OverflowStop float64
	// Workers bounds the goroutines used by net assembly, the CG matvec and
	// density evaluation: 0 = auto (PPACLUST_WORKERS, else GOMAXPROCS), 1 =
	// exact sequential path. All parallel paths reduce in fixed order, so the
	// placement is bit-identical for every worker count.
	Workers int
	// Precond selects the CG preconditioner: 0 = auto (multilevel
	// aggregation over the MultilevelFC cluster hierarchy in the large
	// no-warm-start band, Jacobi otherwise — the multigrid warm start and
	// the aggregation ladder are alternative cures for the same smooth
	// modes and do not stack profitably), 1 = force the aggregation
	// preconditioner, -1 = force plain Jacobi. See precond.go.
	Precond int
	// CoarseInit controls the cluster-hierarchy (multigrid-style) warm
	// start for from-scratch placement: 0 = auto (on for large designs),
	// 1 = force on, -1 = force off. The warm start coarse-places the
	// MultilevelFC cluster hierarchy, interpolates positions down to the
	// cells, and then refines — deterministic for every worker count.
	CoarseInit int
	// TimingDriven enables STA feedback at the overflow checkpoints: the
	// incremental analyzer runs on the current coordinates, nets are ranked
	// by worst slack, and the most critical TimingNetsPercent get their B2B
	// weights multiplied (capped at NetWeightMax times the original weight).
	// Off by default. See driven.go.
	TimingDriven bool
	// TimingCons are the constraints the checkpoint STA runs under. Only
	// read when TimingDriven is set.
	TimingCons sta.Constraints
	// RoutabilityDriven enables congestion feedback at the overflow
	// checkpoints: the GCell router runs on a coarse grid and movable cells
	// in congested GCells have their spreading areas inflated so the next
	// rounds push them apart. Off by default. See driven.go.
	RoutabilityDriven bool
	// CheckpointOverflows are the descending bin-overflow thresholds at
	// which the timing/routability feedback fires, one checkpoint per
	// threshold, at most one per round (mirrors OpenROAD's
	// -timing_driven_net_reweight_overflow). nil = default {0.5, 0.3, 0.2};
	// an empty non-nil slice disables all checkpoints.
	CheckpointOverflows []float64
	// TimingNetsPercent is the share of rankable nets reweighted per timing
	// checkpoint. Default 10; negative = reweight nothing.
	TimingNetsPercent float64
	// TimingNetReweight is the weight multiplier applied to the single most
	// critical net; the boost ramps linearly down to 1 across the selected
	// set. Default 1.9; negative = 1 (no boost).
	TimingNetReweight float64
	// NetWeightMax caps a net's accumulated weight at this multiple of its
	// original weight. Default 5; negative = uncapped.
	NetWeightMax float64
	// InflationRatioCoef scales a congested cell's area inflation:
	// ratio = 1 + InflationRatioCoef*(congestion-1). Default 2.5;
	// negative = no inflation.
	InflationRatioCoef float64
	// MaxInflationRatio caps a cell's accumulated area inflation relative to
	// its physical area. Default 1.25 — a deliberately tight cap: with the
	// hotspot-selective threshold, modest inflation flattens congestion peaks
	// while keeping the HPWL cost of the extra spreading small. Negative =
	// uncapped.
	MaxInflationRatio float64
	// MaxInflationIters bounds how many checkpoints run the router and
	// inflate. Default 3; negative = 0 (no inflation rounds).
	MaxInflationIters int
	// noStall disables the overflow-stagnation stop. Only the coarse
	// warm-start recursion sets it: the coarse model's huge cluster-cells
	// floor its quantized overflow immediately, yet the later rounds keep
	// improving the positions the fine problem interpolates from, and the
	// coarse solve is too cheap for early exit to matter.
	noStall bool
}

// Option resolution convention: for every tunable scalar, zero selects the
// default and a negative value means "explicitly disabled" — resolved to the
// value that makes the knob a no-op (0 for additive weights and thresholds,
// 1 for the density ceiling and multipliers, +Inf for caps). Positive values
// pass through unchanged. Iterations and CGIterations have no meaningful
// disabled state, so for them any value <= 0 selects the default.
func resolveOpt(v, def, disabled float64) float64 {
	switch {
	case v == 0:
		return def
	case v < 0:
		return disabled
	}
	return v
}

// defaultCheckpoints are the overflow thresholds used when
// Options.CheckpointOverflows is nil. Read-only.
var defaultCheckpoints = []float64{0.5, 0.3, 0.2}

func (o Options) withDefaults(d *netlist.Design) Options {
	if o.Iterations <= 0 {
		if o.Incremental {
			o.Iterations = 12
		} else {
			o.Iterations = 24
		}
	}
	if o.CGIterations <= 0 {
		o.CGIterations = 50
	}
	if o.TargetDensity == 0 {
		u := d.Utilization() * 1.15
		if u < 0.75 {
			u = 0.75
		}
		if u > 1 {
			u = 1
		}
		o.TargetDensity = u
	} else if o.TargetDensity < 0 {
		o.TargetDensity = 1 // disabled headroom: bins fill to 100%
	}
	o.AnchorWeight = resolveOpt(o.AnchorWeight, 0.03, 0)
	o.SpreadWeight = resolveOpt(o.SpreadWeight, 0.18, 0)
	o.OverflowStop = resolveOpt(o.OverflowStop, 0.12, 0) // overflow is never < 0
	if o.CheckpointOverflows == nil {
		o.CheckpointOverflows = defaultCheckpoints
	}
	o.TimingNetsPercent = resolveOpt(o.TimingNetsPercent, 10, 0)
	o.TimingNetReweight = resolveOpt(o.TimingNetReweight, 1.9, 1)
	o.NetWeightMax = resolveOpt(o.NetWeightMax, 5, math.Inf(1))
	o.InflationRatioCoef = resolveOpt(o.InflationRatioCoef, 2.5, 0)
	o.MaxInflationRatio = resolveOpt(o.MaxInflationRatio, 1.25, math.Inf(1))
	if o.MaxInflationIters == 0 {
		o.MaxInflationIters = 3
	} else if o.MaxInflationIters < 0 {
		o.MaxInflationIters = 0
	}
	return o
}

// cgRelTol is the relative preconditioned-residual reduction at which a CG
// solve stops early: rz <= cgRelTol^2 * rz0 corresponds to a cgRelTol drop
// of the preconditioned residual norm. The placer interleaves solves with
// spreading, so squeezing the last digits out of an intermediate solve buys
// nothing — this cuts iterations sharply once warm starts get good.
const cgRelTol = 1e-5

// Overflow stagnation cut. The density grid quantizes overflow: with n x n
// bins over nCells cells (n ~ sqrt(nCells/4), clamped to [4,128]), a small
// design's overflow floor can sit well above OverflowStop — at 10k cells the
// 52x52 grid floors near 0.196 and the OverflowStop=0.12 exit never fires,
// so the loop used to burn all 24 rounds grinding an already-converged
// placement. Instead, once past the mandatory two rounds, stop after the
// overflow has failed to beat its best value by more than
// overflowStallRelImprove for overflowStallRounds consecutive rounds.
const (
	overflowStallRelImprove = 0.01
	overflowStallRounds     = 3
)

// Result reports the outcome of a placement run.
type Result struct {
	HPWL       float64
	Iterations int
	// Overflow is the bin overflow fraction of the placement the caller
	// actually gets: re-measured from the committed instance positions and
	// physical cell areas after legalization (and after any inflation), not
	// the last loop iterate.
	Overflow float64
	// CGIterations is the total conjugate-gradient iterations spent across
	// all axis solves (including the coarse warm-start solve, if any).
	CGIterations int
	// TimingReweights and RouteInflations count the feedback checkpoints
	// that actually changed net weights / cell areas (see driven.go).
	TimingReweights int
	RouteInflations int
}

type placer struct {
	d       *netlist.Design
	opt     Options
	core    netlist.Rect
	workers int

	movable []int // instance IDs of movable cells
	varOf   []int // instance ID -> variable index, -1 if fixed
	x, y    []float64
	w, h    []float64 // cell dims per variable
	area    []float64 // spreading area per variable: w*h, scaled by inflation

	// Flat connectivity snapshot for system assembly, derived from the
	// design's Compact view at collect time. Fixed instances and ports do
	// not move during a run, so their pin coordinates are constants.
	cm         *netlist.Compact
	pinVar     []int32   // per compact pin: variable index, or -1 (constant)
	pinCX      []float64 // per compact pin: x coordinate when constant
	pinCY      []float64 // per compact pin: y coordinate when constant
	netW       []float64 // per net: weight
	activeNets []int32   // nets with 2..maxNetPins pins, ascending

	// per-axis linear system accumulators. addSpring assembles into the
	// per-row off lists; flattenSystem mirrors them into the offStart/offEnt
	// CSR the CG matvec runs on: one interleaved 8-byte {col, weight} record
	// per entry, half the stream of separate int32/float64 arrays. Weights
	// are stored float32 — a ~1e-7 relative rounding, orders of magnitude
	// below the solve tolerance — and both records of a symmetric pair round
	// identically, so the operator stays symmetric.
	diag     []float64
	rhs      []float64
	off      [][]sparseEntry
	offStart []int32
	offEnt   []csrEnt
	invDiag  []float64 // 1/diag (0 where diag <= 0), the Jacobi preconditioner
	bins     *binGrid
	anchX    []float64 // spreading targets
	anchY    []float64
	seedX    []float64 // incremental seed positions
	seedY    []float64

	// solver and spreading scratch, allocated once per run
	cgX, cgAx, cgR, cgD []float64
	cgZ                 []float64 // preconditioned residual (aggregation path)
	pre                 *aggPre   // multilevel preconditioner, nil = Jacobi
	aggPending          bool      // ladder build deferred to the first agg solve
	byX, byY, partBuf   []int32      // bisection orderings + partition scratch
	sorter              sortx.Sorter // shared radix-sort scratch
	sideLo              []bool       // bisection membership marks
	cgIters             int
	iter                int // current outer round (for the precond dispatch)

	netActs [][]springAction // per-net spring actions (parallel assembly)
	binIdx  []int32          // per-cell bin index (parallel density pass)

	// timing/routability feedback state (driven.go)
	ckptNext   int           // next CheckpointOverflows index to fire
	an         *sta.Analyzer // built lazily at the first timing checkpoint
	slackBuf   []float64     // NetSlackInto scratch
	netW0      []float64     // pre-reweight net weights (NetWeightMax base)
	critBuf    []int32       // candidate net scratch for criticality ranking
	reweights  int
	inflations int
}

// maxNetPins is the pin-count ceiling above which a net is excluded from the
// B2B model (huge nets carry no locality information and would produce dense
// rows).
const maxNetPins = 2000

// springAction is one deferred addSpring call; per-net action lists are
// computed in parallel and then applied sequentially in net order, which
// reproduces the sequential assembly bit for bit.
type springAction struct {
	vi, vj int
	ci, cj float64
	w      float64
}

type sparseEntry struct {
	col int
	w   float64
}

// Global runs global placement on the design and writes final positions
// into the instances.
func Global(d *netlist.Design, opt Options) Result {
	opt = opt.withDefaults(d)
	p := &placer{d: d, opt: opt, core: d.Core, workers: par.Workers(opt.Workers)}
	p.collect()
	if len(p.movable) == 0 {
		return Result{HPWL: d.HPWL()}
	}
	p.initPositions()
	p.setupAggregates()
	if p.useCoarseInit() {
		p.coarseInit()
	}

	iter := 0
	overflow := 1.0
	best := math.Inf(1)
	stall := 0
	for ; iter < opt.Iterations; iter++ {
		p.iter = iter
		if opt.RegionIterations > 0 && iter == opt.RegionIterations {
			p.opt.Regions = nil // constraints removed after the guided phase
		}
		spreadW := opt.SpreadWeight * math.Sqrt(float64(iter))
		p.solveAxis(true, spreadW)
		p.solveAxis(false, spreadW)
		p.clampAll()
		overflow = p.computeSpreadTargets()
		if p.checkpoint(overflow) {
			// A feedback checkpoint changed net weights or cell areas; give
			// the loop fresh rounds to absorb it before any stagnation cut
			// or early exit. The reset is a pure function of the overflow
			// sequence, so it is bit-identical across worker counts.
			best = math.Inf(1)
			stall = 0
			continue
		}
		if overflow < opt.OverflowStop && iter >= 2 {
			iter++
			break
		}
		// Overflow has a floor set by the bin quantization (see DESIGN.md):
		// a small design on a coarse grid can sit above OverflowStop forever.
		// Stop once overflow fails to improve on its best by >1% for three
		// consecutive rounds — pure function of the overflow sequence, so the
		// cut is bit-identical across worker counts.
		if overflow < best*(1-overflowStallRelImprove) {
			best = overflow
			stall = 0
		} else if iter >= 2 && !opt.noStall {
			stall++
			if stall >= overflowStallRounds {
				iter++
				break
			}
		}
	}
	p.writeBack()
	if opt.Legalize {
		Legalize(d)
	}
	return Result{
		HPWL:            d.HPWLWorkers(p.workers),
		Iterations:      iter,
		Overflow:        p.finalOverflow(),
		CGIterations:    p.cgIters,
		TimingReweights: p.reweights,
		RouteInflations: p.inflations,
	}
}

// finalOverflow re-measures bin overflow from the committed instance
// positions and physical master areas. The loop-iterate overflow describes
// pre-legalization coordinates and inflation-scaled areas; Result.Overflow
// must describe the placement the caller actually gets. The bin lookups fan
// out into per-cell slots and the deposits accumulate sequentially in
// movable order, so the measurement is bit-identical at any worker count.
func (p *placer) finalOverflow() float64 {
	g := p.bins
	g.clear()
	d := p.d
	if p.workers > 1 {
		if p.binIdx == nil {
			p.binIdx = make([]int32, len(p.movable))
		}
		par.ForEach(p.workers, len(p.movable), func(k int) {
			inst := d.Insts[p.movable[k]]
			i, j := g.index(inst.CenterX(), inst.CenterY())
			p.binIdx[k] = int32(j*g.nx + i)
		})
		for k, id := range p.movable {
			m := d.Insts[id].Master
			g.area[p.binIdx[k]] += m.Width * m.Height
		}
	} else {
		for _, id := range p.movable {
			inst := d.Insts[id]
			g.deposit(inst.CenterX(), inst.CenterY(), inst.Master.Width*inst.Master.Height)
		}
	}
	return g.overflow()
}

func (p *placer) collect() {
	d := p.d
	p.varOf = make([]int, len(d.Insts))
	for i := range p.varOf {
		p.varOf[i] = -1
	}
	for _, inst := range d.Insts {
		if inst.Fixed {
			continue
		}
		p.varOf[inst.ID] = len(p.movable)
		p.movable = append(p.movable, inst.ID)
	}
	n := len(p.movable)
	p.x = make([]float64, n)
	p.y = make([]float64, n)
	p.w = make([]float64, n)
	p.h = make([]float64, n)
	p.anchX = make([]float64, n)
	p.anchY = make([]float64, n)
	p.seedX = make([]float64, n)
	p.seedY = make([]float64, n)
	p.area = make([]float64, n)
	for vi, id := range p.movable {
		m := d.Insts[id].Master
		p.w[vi] = m.Width
		p.h[vi] = m.Height
		p.area[vi] = m.Width * m.Height
	}
	p.diag = make([]float64, n)
	p.rhs = make([]float64, n)
	p.off = make([][]sparseEntry, n)
	p.offStart = make([]int32, n+1)
	p.invDiag = make([]float64, n)
	p.cgX = make([]float64, n)
	p.cgAx = make([]float64, n)
	p.cgR = make([]float64, n)
	p.cgD = make([]float64, n)
	p.byX = make([]int32, n)
	p.byY = make([]int32, n)
	p.partBuf = make([]int32, n)
	p.sideLo = make([]bool, n)
	p.bins = newBinGrid(p.core, n, p.opt.TargetDensity)
	// Fixed macro area reduces bin capacity.
	for _, inst := range d.Insts {
		if inst.Fixed && inst.Master.Class == netlist.ClassMacro {
			p.bins.blockArea(inst.X, inst.Y, inst.Master.Width, inst.Master.Height)
		}
	}
	p.snapshotConnectivity()
}

// snapshotConnectivity resolves every compact pin to either a variable index
// or a constant axis coordinate, so assembly never touches a pointer or a
// map. It mirrors the coordinate rules of the former pointer walk: a port
// pin sits at the port (an unknown port at (0,0)); a fixed instance pin sits
// at the cell center; a movable instance pin tracks the cell-center
// variable.
func (p *placer) snapshotConnectivity() {
	d := p.d
	cm := d.Compact()
	p.cm = cm
	nPins := len(cm.PinInst)
	p.pinVar = make([]int32, nPins)
	p.pinCX = make([]float64, nPins)
	p.pinCY = make([]float64, nPins)
	for k := 0; k < nPins; k++ {
		id := cm.PinInst[k]
		switch {
		case id == netlist.CompactNoPort:
			p.pinVar[k] = -1
		case id < 0:
			port := d.Ports[-1-id]
			p.pinVar[k] = -1
			p.pinCX[k] = port.X
			p.pinCY[k] = port.Y
		default:
			inst := d.Insts[id]
			if vi := p.varOf[id]; vi >= 0 {
				p.pinVar[k] = int32(vi)
			} else {
				p.pinVar[k] = -1
				p.pinCX[k] = inst.CenterX()
				p.pinCY[k] = inst.CenterY()
			}
		}
	}
	p.netW = make([]float64, len(d.Nets))
	p.activeNets = make([]int32, 0, len(d.Nets))
	for ni, net := range d.Nets {
		p.netW[ni] = net.Weight
		if pc := cm.NumNetPins(ni); pc >= 2 && pc <= maxNetPins {
			p.activeNets = append(p.activeNets, int32(ni))
		}
	}
}

func (p *placer) initPositions() {
	d := p.d
	rng := rand.New(rand.NewSource(p.opt.Seed + 17))
	cx := (p.core.X0 + p.core.X1) / 2
	cy := (p.core.Y0 + p.core.Y1) / 2
	for vi, id := range p.movable {
		inst := d.Insts[id]
		if p.opt.Incremental && inst.Placed {
			p.x[vi] = inst.CenterX()
			p.y[vi] = inst.CenterY()
		} else {
			p.x[vi] = cx + (rng.Float64()-0.5)*p.core.W()*0.05
			p.y[vi] = cy + (rng.Float64()-0.5)*p.core.H()*0.05
		}
		p.anchX[vi], p.anchY[vi] = p.x[vi], p.y[vi]
		p.seedX[vi], p.seedY[vi] = p.x[vi], p.y[vi]
	}
}

// solveAxis builds the B2B system for one axis and solves it with CG. With
// workers > 1, per-net spring actions are computed in parallel against the
// frozen positions and then applied sequentially in net order — the same
// accumulation order as the sequential assembly, hence bit-identical.
func (p *placer) solveAxis(xAxis bool, spreadW float64) {
	n := len(p.movable)
	for i := 0; i < n; i++ {
		p.diag[i] = 0
		p.rhs[i] = 0
		p.off[i] = p.off[i][:0]
	}
	if p.workers > 1 {
		if p.netActs == nil {
			p.netActs = make([][]springAction, len(p.activeNets))
		}
		par.Blocks(p.workers, len(p.activeNets), func(w, lo, hi int) {
			var pins []pinc
			for ai := lo; ai < hi; ai++ {
				pins, p.netActs[ai] = p.appendNetSprings(int(p.activeNets[ai]), xAxis, pins, p.netActs[ai][:0])
			}
		})
		for ai := range p.activeNets {
			for _, a := range p.netActs[ai] {
				p.addSpring(a.vi, a.vj, a.ci, a.cj, a.w)
			}
		}
	} else {
		var pins []pinc
		var acts []springAction
		for _, ni := range p.activeNets {
			pins, acts = p.appendNetSprings(int(ni), xAxis, pins, acts[:0])
			for _, a := range acts {
				p.addSpring(a.vi, a.vj, a.ci, a.cj, a.w)
			}
		}
	}
	// Spreading anchors (toward the bisection upper-bound placement) and,
	// in incremental mode, seed anchors (toward the initial positions).
	for vi := 0; vi < n; vi++ {
		var spreadT, seedT float64
		if xAxis {
			spreadT, seedT = p.anchX[vi], p.seedX[vi]
		} else {
			spreadT, seedT = p.anchY[vi], p.seedY[vi]
		}
		if spreadW > 0 {
			p.diag[vi] += spreadW
			p.rhs[vi] += spreadW * spreadT
		}
		if p.opt.Incremental {
			p.diag[vi] += p.opt.AnchorWeight
			p.rhs[vi] += p.opt.AnchorWeight * seedT
		}
	}
	p.flattenSystem()
	sol := p.cg(xAxis)
	if xAxis {
		copy(p.x, sol)
	} else {
		copy(p.y, sol)
	}
}

// flattenSystem mirrors the per-row off lists into the flat CSR arrays and
// precomputes the Jacobi reciprocals. Row order and within-row entry order
// are preserved, so the flat matvec accumulates in exactly the order the
// per-row walk did.
func (p *placer) flattenSystem() {
	n := len(p.movable)
	nnz := 0
	for i := 0; i < n; i++ {
		nnz += len(p.off[i])
	}
	if cap(p.offEnt) < nnz {
		p.offEnt = make([]csrEnt, nnz)
	}
	p.offEnt = p.offEnt[:nnz]
	k := 0
	for i := 0; i < n; i++ {
		p.offStart[i] = int32(k)
		for _, e := range p.off[i] {
			p.offEnt[k] = csrEnt{int32(e.col), e.w}
			k++
		}
	}
	p.offStart[n] = int32(k)
	for i := 0; i < n; i++ {
		p.invDiag[i] = 0
		if p.diag[i] > 0 {
			p.invDiag[i] = 1 / p.diag[i]
		}
	}
}

// pinc is one net pin projected onto the active axis.
type pinc struct {
	c  float64
	vi int
}

// appendNetSprings computes the B2B spring actions of one net against the
// current (frozen) positions, reading the flat pin snapshot. It only reads
// placer state, so calls for different nets may run concurrently. pins is a
// reusable scratch buffer.
func (p *placer) appendNetSprings(ni int, xAxis bool, pins []pinc,
	out []springAction) ([]pinc, []springAction) {

	lo, hi := p.cm.NetStart[ni], p.cm.NetStart[ni+1]
	pos, fix := p.x, p.pinCX
	if !xAxis {
		pos, fix = p.y, p.pinCY
	}
	pins = pins[:0]
	minI, maxI := 0, 0
	for k := lo; k < hi; k++ {
		vi := int(p.pinVar[k])
		c := fix[k]
		if vi >= 0 {
			c = pos[vi]
		}
		pins = append(pins, pinc{c, vi})
		if c < pins[minI].c {
			minI = len(pins) - 1
		}
		if c > pins[maxI].c {
			maxI = len(pins) - 1
		}
	}
	P := len(pins)
	if P < 2 {
		return pins, out
	}
	wNet := p.netW[ni]
	// B2B: connect every pin to both boundary pins.
	for _, bi := range [2]int{minI, maxI} {
		b := pins[bi]
		for i, q := range pins {
			if i == bi || (bi == maxI && i == minI) {
				continue
			}
			dist := math.Abs(q.c - b.c)
			if dist < 1e-3 {
				dist = 1e-3
			}
			w := wNet * 2 / (float64(P-1) * dist)
			out = append(out, springAction{q.vi, b.vi, q.c, b.c, w})
		}
	}
	return pins, out
}

// addSpring adds a two-point quadratic term w*(a-b)^2 where each endpoint is
// a variable (vi >= 0) or a constant coordinate.
func (p *placer) addSpring(vi, vj int, ci, cj float64, w float64) {
	switch {
	case vi >= 0 && vj >= 0:
		if vi == vj {
			return
		}
		p.diag[vi] += w
		p.diag[vj] += w
		p.off[vi] = append(p.off[vi], sparseEntry{vj, w})
		p.off[vj] = append(p.off[vj], sparseEntry{vi, w})
	case vi >= 0:
		p.diag[vi] += w
		p.rhs[vi] += w * cj
	case vj >= 0:
		p.diag[vj] += w
		p.rhs[vj] += w * ci
	}
}

// cg solves (D - O) x = rhs with Jacobi-preconditioned conjugate gradient,
// warm-started from the current positions. Work vectors live on the placer
// and are reused across solves; the returned slice is p.cgX, valid until the
// next call. Solves stop at CGIterations, at an absolute residual floor, or
// once the preconditioned residual norm drops below cgRelTol times the
// right-hand side's — the textbook relative criterion, which lets
// warm-started solves (coarse-init refinement, incremental mode) exit after
// a handful of iterations.
func (p *placer) cg(xAxis bool) []float64 {
	if p.iter >= aggFirstRound {
		if p.aggPending {
			p.ensureAggLadder()
		}
		if p.pre != nil {
			return p.cgAgg(xAxis)
		}
	}
	n := len(p.movable)
	x := p.cgX
	if xAxis {
		copy(x, p.x)
	} else {
		copy(x, p.y)
	}
	ax := p.cgAx
	r := p.cgR
	d := p.cgD
	rhs := p.rhs
	iv := p.invDiag
	p.mulA(x, ax)
	var rz, bz float64
	for i := 0; i < n; i++ {
		ri := rhs[i] - ax[i]
		r[i] = ri
		d[i] = ri * iv[i]
		rz += ri * (ri * iv[i])
		bz += rhs[i] * rhs[i] * iv[i]
	}
	floor := cgRelTol * cgRelTol * bz
	if floor < 1e-20 {
		floor = 1e-20
	}
	it := 0
	for ; it < p.opt.CGIterations && rz > floor; it++ {
		dad := p.mulADot(d, ax)
		if dad <= 0 {
			break
		}
		alpha := rz / dad
		var rzNew float64
		for i := 0; i < n; i++ {
			x[i] += alpha * d[i]
			ri := r[i] - alpha*ax[i]
			r[i] = ri
			rzNew += ri * (ri * iv[i])
		}
		beta := rzNew / rz
		rz = rzNew
		for i := 0; i < n; i++ {
			d[i] = r[i]*iv[i] + beta*d[i]
		}
	}
	p.cgIters += it
	return x
}

// mulA computes out = (D - O) v on the flat CSR. Rows are independent slots
// and every row keeps its sequential term order, so any worker count is
// bit-identical to the plain loop.
func (p *placer) mulA(v, out []float64) {
	if p.workers <= 1 {
		p.mulARange(v, out, 0, len(p.movable))
		return
	}
	par.Blocks(p.workers, len(p.movable), func(w, lo, hi int) {
		p.mulARange(v, out, lo, hi)
	})
}

// csrEnt is one off-diagonal matrix entry: the column paired with its weight
// in a single 8-byte record, so the matvec streams one array instead of two.
type csrEnt struct {
	col int32
	w   float64
}

func (p *placer) mulARange(v, out []float64, lo, hi int) {
	diag := p.diag
	offStart := p.offStart
	offEnt := p.offEnt
	for i := lo; i < hi; i++ {
		out[i] = rowDot(diag[i]*v[i], offEnt[offStart[i]:offStart[i+1]], v)
	}
}

// rowDot computes s - sum(ent.w * v[ent.col]) in entry order — the one
// association every caller shares, fused or parallel, any worker count.
func rowDot(s float64, row []csrEnt, v []float64) float64 {
	for _, e := range row {
		s -= e.w * v[e.col]
	}
	return s
}

// mulADot is mulA fused with the d·Ad dot product. The dot accumulates in
// ascending row order on both the sequential (fused) and parallel (separate
// reduction pass) paths, so the result is bit-identical either way.
func (p *placer) mulADot(d, ax []float64) float64 {
	n := len(p.movable)
	var dad float64
	if p.workers <= 1 {
		diag := p.diag
		offStart := p.offStart
		offEnt := p.offEnt
		for i := 0; i < n; i++ {
			s := rowDot(diag[i]*d[i], offEnt[offStart[i]:offStart[i+1]], d)
			ax[i] = s
			dad += d[i] * s
		}
		return dad
	}
	p.mulA(d, ax)
	for i := 0; i < n; i++ {
		dad += d[i] * ax[i]
	}
	return dad
}

// clampAll keeps cells inside the core and, for hard regions, inside their
// region rectangles.
func (p *placer) clampAll() {
	for vi, id := range p.movable {
		r := p.core
		if p.opt.Regions != nil && !p.opt.SoftRegions {
			if reg, ok := p.opt.Regions[id]; ok {
				r = reg
			}
		}
		p.x[vi] = clamp(p.x[vi], r.X0+p.w[vi]/2, r.X1-p.w[vi]/2)
		p.y[vi] = clamp(p.y[vi], r.Y0+p.h[vi]/2, r.Y1-p.h[vi]/2)
	}
}

func clamp(v, lo, hi float64) float64 {
	if hi < lo {
		return (lo + hi) / 2
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// computeSpreadTargets measures bin overflow, then computes an upper-bound
// (overlap-reduced) placement by recursive capacity-proportional bisection
// (in the spirit of SimPL's look-ahead legalization) and stores it as the
// next round's anchor targets.
func (p *placer) computeSpreadTargets() float64 {
	g := p.bins
	g.clear()
	if p.workers > 1 {
		// Bin lookups fan out into per-cell slots; the deposits themselves
		// accumulate sequentially in cell order, as in the sequential pass.
		if p.binIdx == nil {
			p.binIdx = make([]int32, len(p.movable))
		}
		par.ForEach(p.workers, len(p.movable), func(vi int) {
			i, j := g.index(p.x[vi], p.y[vi])
			p.binIdx[vi] = int32(j*g.nx + i)
		})
		for vi := range p.movable {
			g.area[p.binIdx[vi]] += p.area[vi]
		}
	} else {
		for vi := range p.movable {
			g.deposit(p.x[vi], p.y[vi], p.area[vi])
		}
	}
	of := g.overflow()

	n := len(p.movable)
	if n <= 3 {
		// Degenerate top level: distribute along x in index order, matching
		// the recursive leaf rule on the identity ordering.
		cy := (p.core.Y0 + p.core.Y1) / 2
		for i := 0; i < n; i++ {
			f := (float64(i) + 0.5) / float64(n)
			p.anchX[i] = p.core.X0 + f*p.core.W()
			p.anchY[i] = cy
		}
	} else {
		// Sort once per axis; the recursion below splits these orderings with
		// stable partitions instead of re-sorting every level. The radix sort
		// is stable over an ascending-index fill, so ties resolve by index —
		// the same (coord, index) total order a comparator sort would produce.
		p.sortByCoord(p.byX, p.x)
		p.sortByCoord(p.byY, p.y)
		p.bisect(p.core, p.byX, p.byY, p.partBuf, true, p.workers)
	}
	// Keep region cells anchored inside their region.
	if p.opt.Regions != nil {
		for vi, id := range p.movable {
			if reg, ok := p.opt.Regions[id]; ok {
				p.anchX[vi] = clamp(p.anchX[vi], reg.X0, reg.X1)
				p.anchY[vi] = clamp(p.anchY[vi], reg.Y0, reg.Y1)
			}
		}
	}
	return of
}

// sortByCoord fills ord with 0..n-1 and sorts it by coord with the shared
// stable LSD radix sort (sortx.Sorter). Stability over the ascending fill
// resolves ties by index, the strict total order the bisection recursion
// depends on; see internal/sortx for the determinism argument.
func (p *placer) sortByCoord(ord []int32, coord []float64) {
	p.sorter.IndexByFloat64(ord, coord)
}

// bisect recursively splits the cell set between the two halves of r in
// proportion to their free capacity, alternating axes, and assigns leaf
// region centers as anchor targets.
//
// act holds the set sorted by the active axis (ties by index); oth holds the
// same set sorted by the other axis — the order the child recursion needs —
// and buf is partition scratch of the same length. Splitting act is a slice
// cut; oth is split by a stable partition on membership, which keeps both
// children's orderings sorted without any per-level re-sort. A stable
// partition of a (coord, index)-sorted sequence is exactly the sort the
// per-level algorithm would compute, so the anchors are identical to it.
//
// The two halves touch disjoint cell subslices, scratch ranges and anchor
// slots, so with workers > 1 the top of the recursion forks; the anchors
// written are identical either way.
func (p *placer) bisect(r netlist.Rect, act, oth, buf []int32, xAxis bool, workers int) {
	n := len(act)
	if n == 0 {
		return
	}
	if n <= 3 || (r.W() < 2*p.bins.bw && r.H() < 2*p.bins.bh) {
		// Distribute the few remaining cells across the region, in the
		// parent ordering they arrived in.
		cx := (r.X0 + r.X1) / 2
		cy := (r.Y0 + r.Y1) / 2
		for i, vi := range oth {
			f := (float64(i) + 0.5) / float64(n)
			if xAxis {
				p.anchX[vi] = r.X0 + f*r.W()
				p.anchY[vi] = cy
			} else {
				p.anchX[vi] = cx
				p.anchY[vi] = r.Y0 + f*r.H()
			}
		}
		return
	}
	var lo, hi netlist.Rect
	if xAxis {
		mid := (r.X0 + r.X1) / 2
		lo = netlist.Rect{X0: r.X0, Y0: r.Y0, X1: mid, Y1: r.Y1}
		hi = netlist.Rect{X0: mid, Y0: r.Y0, X1: r.X1, Y1: r.Y1}
	} else {
		mid := (r.Y0 + r.Y1) / 2
		lo = netlist.Rect{X0: r.X0, Y0: r.Y0, X1: r.X1, Y1: mid}
		hi = netlist.Rect{X0: r.X0, Y0: mid, X1: r.X1, Y1: r.Y1}
	}
	capLo := p.bins.capacityOf(lo)
	capHi := p.bins.capacityOf(hi)
	if capLo+capHi <= 0 {
		capLo, capHi = 1, 1
	}
	var totalArea float64
	for _, vi := range act {
		totalArea += p.area[vi]
	}
	wantLo := totalArea * capLo / (capLo + capHi)
	var acc float64
	cut := 0
	for cut < n-1 {
		a := p.area[act[cut]]
		if acc+a > wantLo && cut > 0 {
			break
		}
		acc += a
		cut++
	}
	// Stable-partition oth by membership in the low half.
	for _, vi := range act[:cut] {
		p.sideLo[vi] = true
	}
	nl, nh := 0, 0
	for _, vi := range oth {
		if p.sideLo[vi] {
			oth[nl] = vi
			nl++
		} else {
			buf[nh] = vi
			nh++
		}
	}
	copy(oth[nl:], buf[:nh])
	for _, vi := range act[:cut] {
		p.sideLo[vi] = false
	}
	if workers > 1 && cut > 0 && cut < n && n > 128 {
		done := make(chan any, 1)
		go func() {
			defer func() { done <- recover() }()
			p.bisect(lo, oth[:cut], act[:cut], buf[:cut], !xAxis, workers/2)
		}()
		p.bisect(hi, oth[cut:], act[cut:], buf[cut:], !xAxis, workers-workers/2)
		if pv := <-done; pv != nil {
			// Re-raise the forked child's panic on the parent goroutine —
			// the same propagation contract internal/par implements.
			panic(pv) //ppalint:ignore nopanic re-raises a captured child-goroutine panic, mirroring internal/par's propagation contract
		}
		return
	}
	p.bisect(lo, oth[:cut], act[:cut], buf[:cut], !xAxis, 1)
	p.bisect(hi, oth[cut:], act[cut:], buf[cut:], !xAxis, 1)
}

func (p *placer) writeBack() {
	for vi, id := range p.movable {
		inst := p.d.Insts[id]
		inst.X = p.x[vi] - p.w[vi]/2
		inst.Y = p.y[vi] - p.h[vi]/2
		inst.Placed = true
	}
}
