// Package place is the reproduction's global placer, standing in for
// RePlAce/OpenROAD gpl and the Innovus placer. It is a quadratic placer:
// a bound-to-bound (B2B) net model is solved per axis with preconditioned
// conjugate gradient, interleaved with FastPlace-style cell-shifting
// spreading anchored through pseudo-nets. It supports the two modes the
// paper's flow requires: from-scratch placement of (clustered) netlists, and
// incremental placement seeded from initial positions (Algorithm 1 lines
// 15-25), optionally under per-instance region constraints (Innovus mode).
// A Tetris-style legalizer snaps cells to rows/sites.
package place

import (
	"math"
	"math/rand"
	"sort"

	"ppaclust/internal/netlist"
	"ppaclust/internal/par"
)

// Options configures a placement run.
type Options struct {
	// Iterations is the number of solve+spread rounds. Default 24 (8 when
	// Incremental).
	Iterations int
	// CGIterations bounds the conjugate-gradient iterations per solve.
	// Default 50.
	CGIterations int
	// TargetDensity is the per-bin density ceiling. Default max(0.75,
	// utilization*1.1) clamped to 1.
	TargetDensity float64
	// Incremental starts from the instances' current positions and anchors
	// to them instead of starting at the core center.
	Incremental bool
	// AnchorWeight scales the seed anchors in incremental mode. Default 0.03.
	AnchorWeight float64
	// SpreadWeight scales the spreading pseudo-net weights. Default 0.18.
	SpreadWeight float64
	// Regions constrains instances (by ID) to rectangles; cells are clamped
	// into their region after every round.
	Regions map[int]netlist.Rect
	// SoftRegions makes regions guide instead of confine: spreading anchors
	// are clamped into the region but final positions may spill out. This
	// models Innovus-style region constraints that are removed after
	// incremental placement (Algorithm 1 line 20).
	SoftRegions bool
	// RegionIterations bounds how many initial rounds the regions steer
	// (0 = all rounds). Small values give brief guidance then free
	// refinement — the "run incremental placement, remove constraints"
	// recipe.
	RegionIterations int
	// Seed jitters the initial placement deterministically.
	Seed int64
	// Legalize snaps cells to rows and sites after global placement.
	Legalize bool
	// OverflowStop ends iterations early once bin overflow drops below this
	// fraction. Default 0.12.
	OverflowStop float64
	// Workers bounds the goroutines used by net assembly, the CG matvec and
	// density evaluation: 0 = auto (PPACLUST_WORKERS, else GOMAXPROCS), 1 =
	// exact sequential path. All parallel paths reduce in fixed order, so the
	// placement is bit-identical for every worker count.
	Workers int
}

func (o Options) withDefaults(d *netlist.Design) Options {
	if o.Iterations <= 0 {
		if o.Incremental {
			o.Iterations = 12
		} else {
			o.Iterations = 24
		}
	}
	if o.CGIterations <= 0 {
		o.CGIterations = 50
	}
	if o.TargetDensity <= 0 {
		u := d.Utilization() * 1.15
		if u < 0.75 {
			u = 0.75
		}
		if u > 1 {
			u = 1
		}
		o.TargetDensity = u
	}
	if o.AnchorWeight <= 0 {
		o.AnchorWeight = 0.03
	}
	if o.SpreadWeight <= 0 {
		o.SpreadWeight = 0.18
	}
	if o.OverflowStop <= 0 {
		o.OverflowStop = 0.12
	}
	return o
}

// Result reports the outcome of a placement run.
type Result struct {
	HPWL       float64
	Iterations int
	Overflow   float64 // final bin overflow fraction
}

type placer struct {
	d       *netlist.Design
	opt     Options
	core    netlist.Rect
	workers int

	movable []int // instance IDs of movable cells
	varOf   []int // instance ID -> variable index, -1 if fixed
	x, y    []float64
	w, h    []float64 // cell dims per variable

	// per-axis linear system accumulators
	diag  []float64
	rhs   []float64
	off   [][]sparseEntry
	bins  *binGrid
	anchX []float64 // spreading targets
	anchY []float64
	seedX []float64 // incremental seed positions
	seedY []float64

	netActs [][]springAction // per-net spring actions (parallel assembly)
	binIdx  []int32          // per-cell bin index (parallel density pass)
}

// springAction is one deferred addSpring call; per-net action lists are
// computed in parallel and then applied sequentially in net order, which
// reproduces the sequential assembly bit for bit.
type springAction struct {
	vi, vj int
	ci, cj float64
	w      float64
}

type sparseEntry struct {
	col int
	w   float64
}

// Global runs global placement on the design and writes final positions
// into the instances.
func Global(d *netlist.Design, opt Options) Result {
	opt = opt.withDefaults(d)
	p := &placer{d: d, opt: opt, core: d.Core, workers: par.Workers(opt.Workers)}
	p.collect()
	if len(p.movable) == 0 {
		return Result{HPWL: d.HPWL()}
	}
	p.initPositions()

	iter := 0
	overflow := 1.0
	for ; iter < opt.Iterations; iter++ {
		if opt.RegionIterations > 0 && iter == opt.RegionIterations {
			p.opt.Regions = nil // constraints removed after the guided phase
		}
		spreadW := opt.SpreadWeight * math.Sqrt(float64(iter))
		p.solveAxis(true, spreadW)
		p.solveAxis(false, spreadW)
		p.clampAll()
		overflow = p.computeSpreadTargets()
		if overflow < opt.OverflowStop && iter >= 2 {
			iter++
			break
		}
	}
	p.writeBack()
	if opt.Legalize {
		Legalize(d)
	}
	return Result{HPWL: d.HPWLWorkers(p.workers), Iterations: iter, Overflow: overflow}
}

func (p *placer) collect() {
	d := p.d
	p.varOf = make([]int, len(d.Insts))
	for i := range p.varOf {
		p.varOf[i] = -1
	}
	for _, inst := range d.Insts {
		if inst.Fixed {
			continue
		}
		p.varOf[inst.ID] = len(p.movable)
		p.movable = append(p.movable, inst.ID)
	}
	n := len(p.movable)
	p.x = make([]float64, n)
	p.y = make([]float64, n)
	p.w = make([]float64, n)
	p.h = make([]float64, n)
	p.anchX = make([]float64, n)
	p.anchY = make([]float64, n)
	p.seedX = make([]float64, n)
	p.seedY = make([]float64, n)
	for vi, id := range p.movable {
		m := d.Insts[id].Master
		p.w[vi] = m.Width
		p.h[vi] = m.Height
	}
	p.diag = make([]float64, n)
	p.rhs = make([]float64, n)
	p.off = make([][]sparseEntry, n)
	p.bins = newBinGrid(p.core, n, p.opt.TargetDensity)
	// Fixed macro area reduces bin capacity.
	for _, inst := range d.Insts {
		if inst.Fixed && inst.Master.Class == netlist.ClassMacro {
			p.bins.blockArea(inst.X, inst.Y, inst.Master.Width, inst.Master.Height)
		}
	}
}

func (p *placer) initPositions() {
	d := p.d
	rng := rand.New(rand.NewSource(p.opt.Seed + 17))
	cx := (p.core.X0 + p.core.X1) / 2
	cy := (p.core.Y0 + p.core.Y1) / 2
	for vi, id := range p.movable {
		inst := d.Insts[id]
		if p.opt.Incremental && inst.Placed {
			p.x[vi] = inst.CenterX()
			p.y[vi] = inst.CenterY()
		} else {
			p.x[vi] = cx + (rng.Float64()-0.5)*p.core.W()*0.05
			p.y[vi] = cy + (rng.Float64()-0.5)*p.core.H()*0.05
		}
		p.anchX[vi], p.anchY[vi] = p.x[vi], p.y[vi]
		p.seedX[vi], p.seedY[vi] = p.x[vi], p.y[vi]
	}
}

// pinCoord returns the coordinate of a net pin on the given axis plus the
// variable index (-1 for fixed).
func (p *placer) pinCoord(pr netlist.PinRef, xAxis bool) (float64, int) {
	d := p.d
	if pr.IsPort() {
		port := d.Port(pr.Pin)
		if port == nil {
			return 0, -1
		}
		if xAxis {
			return port.X, -1
		}
		return port.Y, -1
	}
	inst := d.Insts[pr.Inst]
	vi := p.varOf[pr.Inst]
	if vi < 0 {
		if xAxis {
			return inst.CenterX(), -1
		}
		return inst.CenterY(), -1
	}
	if xAxis {
		return p.x[vi], vi
	}
	return p.y[vi], vi
}

// solveAxis builds the B2B system for one axis and solves it with CG. With
// workers > 1, per-net spring actions are computed in parallel against the
// frozen positions and then applied sequentially in net order — the same
// accumulation order as the sequential assembly, hence bit-identical.
func (p *placer) solveAxis(xAxis bool, spreadW float64) {
	n := len(p.movable)
	for i := 0; i < n; i++ {
		p.diag[i] = 0
		p.rhs[i] = 0
		p.off[i] = p.off[i][:0]
	}
	nets := p.d.Nets
	if p.workers > 1 {
		if p.netActs == nil {
			p.netActs = make([][]springAction, len(nets))
		}
		par.Blocks(p.workers, len(nets), func(w, lo, hi int) {
			var pins []pinc
			for ni := lo; ni < hi; ni++ {
				pins, p.netActs[ni] = p.appendNetSprings(nets[ni], xAxis, pins, p.netActs[ni][:0])
			}
		})
		for ni := range nets {
			for _, a := range p.netActs[ni] {
				p.addSpring(a.vi, a.vj, a.ci, a.cj, a.w)
			}
		}
	} else {
		var pins []pinc
		var acts []springAction
		for _, net := range nets {
			pins, acts = p.appendNetSprings(net, xAxis, pins, acts[:0])
			for _, a := range acts {
				p.addSpring(a.vi, a.vj, a.ci, a.cj, a.w)
			}
		}
	}
	// Spreading anchors (toward the bisection upper-bound placement) and,
	// in incremental mode, seed anchors (toward the initial positions).
	for vi := 0; vi < n; vi++ {
		var spreadT, seedT float64
		if xAxis {
			spreadT, seedT = p.anchX[vi], p.seedX[vi]
		} else {
			spreadT, seedT = p.anchY[vi], p.seedY[vi]
		}
		if spreadW > 0 {
			p.diag[vi] += spreadW
			p.rhs[vi] += spreadW * spreadT
		}
		if p.opt.Incremental {
			p.diag[vi] += p.opt.AnchorWeight
			p.rhs[vi] += p.opt.AnchorWeight * seedT
		}
	}
	sol := p.cg(xAxis)
	if xAxis {
		copy(p.x, sol)
	} else {
		copy(p.y, sol)
	}
}

// pinc is one net pin projected onto the active axis.
type pinc struct {
	c  float64
	vi int
}

// appendNetSprings computes the B2B spring actions of one net against the
// current (frozen) positions. It only reads placer state, so calls for
// different nets may run concurrently. pins is a reusable scratch buffer.
func (p *placer) appendNetSprings(net *netlist.Net, xAxis bool, pins []pinc,
	out []springAction) ([]pinc, []springAction) {

	if len(net.Pins) < 2 || len(net.Pins) > 2000 {
		return pins, out
	}
	pins = pins[:0]
	minI, maxI := 0, 0
	for _, pr := range net.Pins {
		c, vi := p.pinCoord(pr, xAxis)
		pins = append(pins, pinc{c, vi})
		if c < pins[minI].c {
			minI = len(pins) - 1
		}
		if c > pins[maxI].c {
			maxI = len(pins) - 1
		}
	}
	P := len(pins)
	if P < 2 {
		return pins, out
	}
	// B2B: connect every pin to both boundary pins.
	for _, bi := range []int{minI, maxI} {
		b := pins[bi]
		for i, q := range pins {
			if i == bi || (bi == maxI && i == minI) {
				continue
			}
			dist := math.Abs(q.c - b.c)
			if dist < 1e-3 {
				dist = 1e-3
			}
			w := net.Weight * 2 / (float64(P-1) * dist)
			out = append(out, springAction{q.vi, b.vi, q.c, b.c, w})
		}
	}
	return pins, out
}

// addSpring adds a two-point quadratic term w*(a-b)^2 where each endpoint is
// a variable (vi >= 0) or a constant coordinate.
func (p *placer) addSpring(vi, vj int, ci, cj float64, w float64) {
	switch {
	case vi >= 0 && vj >= 0:
		if vi == vj {
			return
		}
		p.diag[vi] += w
		p.diag[vj] += w
		p.off[vi] = append(p.off[vi], sparseEntry{vj, w})
		p.off[vj] = append(p.off[vj], sparseEntry{vi, w})
	case vi >= 0:
		p.diag[vi] += w
		p.rhs[vi] += w * cj
	case vj >= 0:
		p.diag[vj] += w
		p.rhs[vj] += w * ci
	}
}

// cg solves (D - O) x = rhs with Jacobi-preconditioned conjugate gradient,
// warm-started from the current positions.
func (p *placer) cg(xAxis bool) []float64 {
	n := len(p.movable)
	x := make([]float64, n)
	if xAxis {
		copy(x, p.x)
	} else {
		copy(x, p.y)
	}
	ax := make([]float64, n)
	// Row-parallel matvec: each row's dot product keeps its sequential term
	// order and lands in its own slot, so any worker count is bit-identical
	// (ForEach runs inline when workers <= 1).
	mulA := func(v, out []float64) {
		par.ForEach(p.workers, n, func(i int) {
			s := p.diag[i] * v[i]
			for _, e := range p.off[i] {
				s -= e.w * v[e.col]
			}
			out[i] = s
		})
	}
	r := make([]float64, n)
	z := make([]float64, n)
	d := make([]float64, n)
	mulA(x, ax)
	var rz float64
	for i := 0; i < n; i++ {
		r[i] = p.rhs[i] - ax[i]
		if p.diag[i] > 0 {
			z[i] = r[i] / p.diag[i]
		}
		d[i] = z[i]
		rz += r[i] * z[i]
	}
	for it := 0; it < p.opt.CGIterations && rz > 1e-20; it++ {
		mulA(d, ax)
		var dad float64
		for i := 0; i < n; i++ {
			dad += d[i] * ax[i]
		}
		if dad <= 0 {
			break
		}
		alpha := rz / dad
		var rzNew float64
		for i := 0; i < n; i++ {
			x[i] += alpha * d[i]
			r[i] -= alpha * ax[i]
			if p.diag[i] > 0 {
				z[i] = r[i] / p.diag[i]
			}
			rzNew += r[i] * z[i]
		}
		beta := rzNew / rz
		rz = rzNew
		for i := 0; i < n; i++ {
			d[i] = z[i] + beta*d[i]
		}
	}
	return x
}

// clampAll keeps cells inside the core and, for hard regions, inside their
// region rectangles.
func (p *placer) clampAll() {
	for vi, id := range p.movable {
		r := p.core
		if p.opt.Regions != nil && !p.opt.SoftRegions {
			if reg, ok := p.opt.Regions[id]; ok {
				r = reg
			}
		}
		p.x[vi] = clamp(p.x[vi], r.X0+p.w[vi]/2, r.X1-p.w[vi]/2)
		p.y[vi] = clamp(p.y[vi], r.Y0+p.h[vi]/2, r.Y1-p.h[vi]/2)
	}
}

func clamp(v, lo, hi float64) float64 {
	if hi < lo {
		return (lo + hi) / 2
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// computeSpreadTargets measures bin overflow, then computes an upper-bound
// (overlap-reduced) placement by recursive capacity-proportional bisection
// (in the spirit of SimPL's look-ahead legalization) and stores it as the
// next round's anchor targets.
func (p *placer) computeSpreadTargets() float64 {
	g := p.bins
	g.clear()
	if p.workers > 1 {
		// Bin lookups fan out into per-cell slots; the deposits themselves
		// accumulate sequentially in cell order, as in the sequential pass.
		if p.binIdx == nil {
			p.binIdx = make([]int32, len(p.movable))
		}
		par.ForEach(p.workers, len(p.movable), func(vi int) {
			i, j := g.index(p.x[vi], p.y[vi])
			p.binIdx[vi] = int32(j*g.nx + i)
		})
		for vi := range p.movable {
			g.area[p.binIdx[vi]] += p.w[vi] * p.h[vi]
		}
	} else {
		for vi := range p.movable {
			g.deposit(p.x[vi], p.y[vi], p.w[vi]*p.h[vi])
		}
	}
	of := g.overflow()

	idx := make([]int, len(p.movable))
	for i := range idx {
		idx[i] = i
	}
	p.bisect(p.core, idx, true, p.workers)
	// Keep region cells anchored inside their region.
	if p.opt.Regions != nil {
		for vi, id := range p.movable {
			if reg, ok := p.opt.Regions[id]; ok {
				p.anchX[vi] = clamp(p.anchX[vi], reg.X0, reg.X1)
				p.anchY[vi] = clamp(p.anchY[vi], reg.Y0, reg.Y1)
			}
		}
	}
	return of
}

// bisect recursively splits the cell set between the two halves of r in
// proportion to their free capacity, alternating axes, and assigns leaf
// region centers as anchor targets. The two halves touch disjoint cell
// subslices and anchor slots, so with workers > 1 the top of the recursion
// forks; the anchors written are identical either way.
func (p *placer) bisect(r netlist.Rect, cells []int, xAxis bool, workers int) {
	if len(cells) == 0 {
		return
	}
	if len(cells) <= 3 || (r.W() < 2*p.bins.bw && r.H() < 2*p.bins.bh) {
		// Distribute the few remaining cells across the region.
		cx := (r.X0 + r.X1) / 2
		cy := (r.Y0 + r.Y1) / 2
		for i, vi := range cells {
			f := (float64(i) + 0.5) / float64(len(cells))
			if xAxis {
				p.anchX[vi] = r.X0 + f*r.W()
				p.anchY[vi] = cy
			} else {
				p.anchX[vi] = cx
				p.anchY[vi] = r.Y0 + f*r.H()
			}
		}
		return
	}
	var lo, hi netlist.Rect
	if xAxis {
		mid := (r.X0 + r.X1) / 2
		lo = netlist.Rect{X0: r.X0, Y0: r.Y0, X1: mid, Y1: r.Y1}
		hi = netlist.Rect{X0: mid, Y0: r.Y0, X1: r.X1, Y1: r.Y1}
	} else {
		mid := (r.Y0 + r.Y1) / 2
		lo = netlist.Rect{X0: r.X0, Y0: r.Y0, X1: r.X1, Y1: mid}
		hi = netlist.Rect{X0: r.X0, Y0: mid, X1: r.X1, Y1: r.Y1}
	}
	capLo := p.bins.capacityOf(lo)
	capHi := p.bins.capacityOf(hi)
	if capLo+capHi <= 0 {
		capLo, capHi = 1, 1
	}
	// Sort cells by current coordinate to preserve relative order.
	sort.Slice(cells, func(a, b int) bool {
		if xAxis {
			if p.x[cells[a]] != p.x[cells[b]] {
				return p.x[cells[a]] < p.x[cells[b]]
			}
		} else {
			if p.y[cells[a]] != p.y[cells[b]] {
				return p.y[cells[a]] < p.y[cells[b]]
			}
		}
		return cells[a] < cells[b]
	})
	var totalArea float64
	for _, vi := range cells {
		totalArea += p.w[vi] * p.h[vi]
	}
	wantLo := totalArea * capLo / (capLo + capHi)
	var acc float64
	cut := 0
	for cut < len(cells)-1 {
		a := p.w[cells[cut]] * p.h[cells[cut]]
		if acc+a > wantLo && cut > 0 {
			break
		}
		acc += a
		cut++
	}
	if workers > 1 && cut > 0 && cut < len(cells) && len(cells) > 128 {
		done := make(chan any, 1)
		go func() {
			defer func() { done <- recover() }()
			p.bisect(lo, cells[:cut], !xAxis, workers/2)
		}()
		p.bisect(hi, cells[cut:], !xAxis, workers-workers/2)
		if pv := <-done; pv != nil {
			// Re-raise the forked child's panic on the parent goroutine —
			// the same propagation contract internal/par implements.
			panic(pv) //ppalint:ignore nopanic re-raises a captured child-goroutine panic, mirroring internal/par's propagation contract
		}
		return
	}
	p.bisect(lo, cells[:cut], !xAxis, 1)
	p.bisect(hi, cells[cut:], !xAxis, 1)
}

func (p *placer) writeBack() {
	for vi, id := range p.movable {
		inst := p.d.Insts[id]
		inst.X = p.x[vi] - p.w[vi]/2
		inst.Y = p.y[vi] - p.h[vi]/2
		inst.Placed = true
	}
}
