package place

import (
	"testing"

	"ppaclust/internal/designs"
)

func benchDesign(b *testing.B, name string) *designs.Benchmark {
	b.Helper()
	spec, ok := designs.Named(name)
	if !ok {
		b.Fatal("unknown design")
	}
	return designs.Generate(spec)
}

// BenchmarkGlobalPlace measures from-scratch global placement of ariane.
func BenchmarkGlobalPlace(b *testing.B) {
	bench := benchDesign(b, "ariane")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := bench.Design.Clone()
		Global(d, Options{Seed: 1})
	}
}

// BenchmarkIncrementalPlace measures seeded incremental placement.
func BenchmarkIncrementalPlace(b *testing.B) {
	bench := benchDesign(b, "ariane")
	d0 := bench.Design.Clone()
	Global(d0, Options{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := d0.Clone()
		Global(d, Options{Seed: 1, Incremental: true})
	}
}

// BenchmarkLegalize measures Tetris legalization.
func BenchmarkLegalize(b *testing.B) {
	bench := benchDesign(b, "ariane")
	d0 := bench.Design.Clone()
	Global(d0, Options{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := d0.Clone()
		Legalize(d)
	}
}

// BenchmarkDetailed measures swap-based detailed placement.
func BenchmarkDetailed(b *testing.B) {
	bench := benchDesign(b, "jpeg")
	d0 := bench.Design.Clone()
	Global(d0, Options{Seed: 1, Legalize: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := d0.Clone()
		Detailed(d, DetailedOptions{Seed: 1})
	}
}
