package place

import (
	"math"
	"testing"

	"ppaclust/internal/designs"
)

func arianeSpec(t *testing.T) designs.Spec {
	t.Helper()
	spec, ok := designs.Named("ariane")
	if !ok {
		t.Fatal("ariane spec missing")
	}
	return spec
}

// TestAggPrecondMatchesJacobiQuality forces the aggregation preconditioner
// on a mid-size benchmark and checks the tentpole contract: it must spend
// strictly fewer CG iterations than Jacobi while landing on an
// equal-quality placement. Both solvers stop at the same cgRelTol relative
// criterion, so the placements agree to well under a percent of HPWL even
// though the CG trajectories differ.
func TestAggPrecondMatchesJacobiQuality(t *testing.T) {
	jac := designs.Generate(arianeSpec(t))
	agg := designs.Generate(arianeSpec(t))

	rJac := Global(jac.Design, Options{Seed: 5, Precond: -1})
	rAgg := Global(agg.Design, Options{Seed: 5, Precond: 1})

	if rAgg.CGIterations >= rJac.CGIterations {
		t.Fatalf("aggregation preconditioner did not cut CG iterations: agg=%d jacobi=%d",
			rAgg.CGIterations, rJac.CGIterations)
	}
	rel := math.Abs(rAgg.HPWL-rJac.HPWL) / rJac.HPWL
	if rel > 0.02 {
		t.Fatalf("HPWL diverged: agg=%.4g jacobi=%.4g (rel %.4f)", rAgg.HPWL, rJac.HPWL, rel)
	}
	t.Logf("CG iterations: jacobi=%d agg=%d (%.2fx); HPWL rel diff %.5f",
		rJac.CGIterations, rAgg.CGIterations,
		float64(rJac.CGIterations)/float64(rAgg.CGIterations), rel)
}

// TestAggPrecondDeterministicAcrossWorkers checks the preconditioned solve
// keeps the placer's bit-identity contract: every worker count must produce
// exactly the same positions.
func TestAggPrecondDeterministicAcrossWorkers(t *testing.T) {
	b1 := designs.Generate(arianeSpec(t))
	b4 := designs.Generate(arianeSpec(t))

	r1 := Global(b1.Design, Options{Seed: 5, Precond: 1, Workers: 1})
	r4 := Global(b4.Design, Options{Seed: 5, Precond: 1, Workers: 4})

	if math.Float64bits(r1.HPWL) != math.Float64bits(r4.HPWL) {
		t.Fatalf("HPWL differs across workers: %v vs %v", r1.HPWL, r4.HPWL)
	}
	if r1.CGIterations != r4.CGIterations {
		t.Fatalf("CG iterations differ across workers: %d vs %d", r1.CGIterations, r4.CGIterations)
	}
	for i := range b1.Design.Insts {
		a, b := b1.Design.Insts[i], b4.Design.Insts[i]
		if math.Float64bits(a.X) != math.Float64bits(b.X) ||
			math.Float64bits(a.Y) != math.Float64bits(b.Y) {
			t.Fatalf("inst %d position differs across workers: (%v,%v) vs (%v,%v)",
				i, a.X, a.Y, b.X, b.Y)
		}
	}
}
