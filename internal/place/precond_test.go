package place

import (
	"math"
	"testing"

	"ppaclust/internal/designs"
)

func arianeSpec(t *testing.T) designs.Spec {
	t.Helper()
	spec, ok := designs.Named("ariane")
	if !ok {
		t.Fatal("ariane spec missing")
	}
	return spec
}

// TestAggPrecondMatchesJacobiQuality forces the aggregation preconditioner
// on a mid-size benchmark and checks the tentpole contract: it must spend
// strictly fewer CG iterations than Jacobi while landing on an
// equal-quality placement. Both solvers stop at the same cgRelTol relative
// criterion, so the placements agree to well under a percent of HPWL even
// though the CG trajectories differ.
func TestAggPrecondMatchesJacobiQuality(t *testing.T) {
	jac := designs.Generate(arianeSpec(t))
	agg := designs.Generate(arianeSpec(t))

	rJac := Global(jac.Design, Options{Seed: 5, Precond: -1})
	rAgg := Global(agg.Design, Options{Seed: 5, Precond: 1})

	if rAgg.CGIterations >= rJac.CGIterations {
		t.Fatalf("aggregation preconditioner did not cut CG iterations: agg=%d jacobi=%d",
			rAgg.CGIterations, rJac.CGIterations)
	}
	rel := math.Abs(rAgg.HPWL-rJac.HPWL) / rJac.HPWL
	if rel > 0.02 {
		t.Fatalf("HPWL diverged: agg=%.4g jacobi=%.4g (rel %.4f)", rAgg.HPWL, rJac.HPWL, rel)
	}
	t.Logf("CG iterations: jacobi=%d agg=%d (%.2fx); HPWL rel diff %.5f",
		rJac.CGIterations, rAgg.CGIterations,
		float64(rJac.CGIterations)/float64(rAgg.CGIterations), rel)
}

// TestAggPrecondDeterministicAcrossWorkers checks the preconditioned solve
// keeps the placer's bit-identity contract: every worker count must produce
// exactly the same positions. The multi-worker runs engage the parallel
// fused-Jacobi level-0 smoother (vcycleFine), whose restriction gathers
// aggregate members in ascending order — the same association as the
// sequential pass — so the placements must match to the bit.
func TestAggPrecondDeterministicAcrossWorkers(t *testing.T) {
	b1 := designs.Generate(arianeSpec(t))
	r1 := Global(b1.Design, Options{Seed: 5, Precond: 1, Workers: 1})

	for _, w := range []int{4, 8} {
		bw := designs.Generate(arianeSpec(t))
		rw := Global(bw.Design, Options{Seed: 5, Precond: 1, Workers: w})

		if math.Float64bits(r1.HPWL) != math.Float64bits(rw.HPWL) {
			t.Fatalf("HPWL differs at W=%d: %v vs %v", w, r1.HPWL, rw.HPWL)
		}
		if r1.CGIterations != rw.CGIterations {
			t.Fatalf("CG iterations differ at W=%d: %d vs %d", w, r1.CGIterations, rw.CGIterations)
		}
		for i := range b1.Design.Insts {
			a, b := b1.Design.Insts[i], bw.Design.Insts[i]
			if math.Float64bits(a.X) != math.Float64bits(b.X) ||
				math.Float64bits(a.Y) != math.Float64bits(b.Y) {
				t.Fatalf("inst %d position differs at W=%d: (%v,%v) vs (%v,%v)",
					i, w, a.X, a.Y, b.X, b.Y)
			}
		}
	}
}
