package place

import (
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/netlist"
)

func TestDetailedNeverWorsensHPWL(t *testing.T) {
	b := designs.Generate(designs.TinySpec(301))
	d := b.Design
	Global(d, Options{Seed: 1, Legalize: true})
	res := Detailed(d, DetailedOptions{Seed: 1})
	if res.HPWLAfter > res.HPWLBefore+1e-6 {
		t.Fatalf("detailed placement worsened HPWL: %v -> %v", res.HPWLBefore, res.HPWLAfter)
	}
	if d.HPWL() != res.HPWLAfter {
		t.Fatal("reported HPWL inconsistent with design state")
	}
}

func TestDetailedImprovesScatteredPlacement(t *testing.T) {
	b := designs.Generate(designs.TinySpec(302))
	d := b.Design
	// A deliberately poor but legal placement: global then legalize, then
	// shuffle equal-width cells pairwise to inject badness.
	Global(d, Options{Seed: 2, Legalize: true})
	var last map[float64]int
	_ = last
	byWidth := map[float64][]int{}
	for _, inst := range d.Insts {
		if !inst.Fixed {
			byWidth[inst.Master.Width] = append(byWidth[inst.Master.Width], inst.ID)
		}
	}
	for _, ids := range byWidth {
		for i := 0; i+1 < len(ids); i += 2 {
			a, bb := d.Insts[ids[i]], d.Insts[ids[i+1]]
			a.X, bb.X = bb.X, a.X
			a.Y, bb.Y = bb.Y, a.Y
		}
	}
	res := Detailed(d, DetailedOptions{Seed: 2, Passes: 3})
	if res.Swaps == 0 {
		t.Fatal("expected improving swaps on a shuffled placement")
	}
	if res.HPWLAfter >= res.HPWLBefore {
		t.Fatalf("no improvement: %v -> %v", res.HPWLBefore, res.HPWLAfter)
	}
}

func TestDetailedPreservesLegality(t *testing.T) {
	b := designs.Generate(designs.TinySpec(303))
	d := b.Design
	Global(d, Options{Seed: 3, Legalize: true})
	Detailed(d, DetailedOptions{Seed: 3})
	rep := CheckLegal(d)
	if rep.Overlaps != 0 || rep.OffRow != 0 || rep.Outside != 0 {
		t.Fatalf("legality broken: %+v", rep)
	}
}

func TestDetailedEmptyDesign(t *testing.T) {
	lib := designs.Lib()
	d := netlist.NewDesign("empty-dp", lib)
	d.Core = netlist.Rect{X0: 0, Y0: 0, X1: 10, Y1: 10}
	res := Detailed(d, DetailedOptions{})
	if res.Swaps != 0 || res.HPWLAfter != res.HPWLBefore {
		t.Fatalf("empty design result: %+v", res)
	}
}
