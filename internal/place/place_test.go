package place

import (
	"math"
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/netlist"
)

func tinyPlaced(t *testing.T, seed int64) *netlist.Design {
	t.Helper()
	b := designs.Generate(designs.TinySpec(seed))
	return b.Design
}

func scatter(d *netlist.Design, seed int64) {
	// Deterministic pseudo-random scatter for baselines.
	s := uint64(seed)*2862933555777941757 + 3037000493
	next := func() float64 {
		s = s*2862933555777941757 + 3037000493
		return float64(s>>11) / float64(1<<53)
	}
	for _, inst := range d.Insts {
		if inst.Fixed {
			continue
		}
		inst.X = d.Core.X0 + next()*(d.Core.W()-inst.Master.Width)
		inst.Y = d.Core.Y0 + next()*(d.Core.H()-inst.Master.Height)
		inst.Placed = true
	}
}

func TestGlobalBeatsRandomScatter(t *testing.T) {
	d := tinyPlaced(t, 21)
	ref := d.Clone()
	scatter(ref, 1)
	randomHPWL := ref.HPWL()
	res := Global(d, Options{Seed: 1})
	if res.HPWL <= 0 {
		t.Fatal("zero HPWL")
	}
	if res.HPWL > 0.7*randomHPWL {
		t.Fatalf("placed HPWL %v not much better than random %v", res.HPWL, randomHPWL)
	}
	if res.Overflow > 0.5 {
		t.Fatalf("overflow=%v too high", res.Overflow)
	}
}

func TestAllCellsInsideCore(t *testing.T) {
	d := tinyPlaced(t, 22)
	Global(d, Options{Seed: 2})
	for _, inst := range d.Insts {
		if inst.Fixed {
			continue
		}
		if !inst.Placed {
			t.Fatalf("instance %s unplaced", inst.Name)
		}
		if inst.X < d.Core.X0-1e-6 || inst.X+inst.Master.Width > d.Core.X1+1e-6 ||
			inst.Y < d.Core.Y0-1e-6 || inst.Y+inst.Master.Height > d.Core.Y1+1e-6 {
			t.Fatalf("instance %s outside core at (%v,%v)", inst.Name, inst.X, inst.Y)
		}
	}
}

func TestSpreadingReducesClumping(t *testing.T) {
	d := tinyPlaced(t, 23)
	res := Global(d, Options{Seed: 3})
	// Measure max local density over a coarse grid.
	const n = 6
	var binArea [n][n]float64
	bw, bh := d.Core.W()/n, d.Core.H()/n
	for _, inst := range d.Insts {
		if inst.Fixed {
			continue
		}
		i := int((inst.CenterX() - d.Core.X0) / bw)
		j := int((inst.CenterY() - d.Core.Y0) / bh)
		if i >= n {
			i = n - 1
		}
		if j >= n {
			j = n - 1
		}
		if i < 0 {
			i = 0
		}
		if j < 0 {
			j = 0
		}
		binArea[i][j] += inst.Master.Area()
	}
	var maxUtil float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			u := binArea[i][j] / (bw * bh)
			if u > maxUtil {
				maxUtil = u
			}
		}
	}
	if maxUtil > 1.6 {
		t.Fatalf("max bin utilization %v: spreading failed (overflow=%v)", maxUtil, res.Overflow)
	}
}

func TestIncrementalStaysNearSeed(t *testing.T) {
	d := tinyPlaced(t, 24)
	Global(d, Options{Seed: 4})
	// Record seed positions, then rerun incrementally: cells should stay
	// close to the seed (the whole point of seeded placement).
	seedX := make([]float64, len(d.Insts))
	seedY := make([]float64, len(d.Insts))
	for i, inst := range d.Insts {
		seedX[i], seedY[i] = inst.CenterX(), inst.CenterY()
	}
	Global(d, Options{Seed: 4, Incremental: true, AnchorWeight: 0.5, Iterations: 4})
	var totalMove float64
	for i, inst := range d.Insts {
		totalMove += math.Abs(inst.CenterX()-seedX[i]) + math.Abs(inst.CenterY()-seedY[i])
	}
	avgMove := totalMove / float64(len(d.Insts))
	if avgMove > d.Core.W()*0.25 {
		t.Fatalf("incremental placement moved cells too far: avg %v", avgMove)
	}
}

func TestIncrementalImprovesSeededHPWL(t *testing.T) {
	d := tinyPlaced(t, 25)
	// Seed: everything at core center (like cluster-center seeding).
	cx, cy := (d.Core.X0+d.Core.X1)/2, (d.Core.Y0+d.Core.Y1)/2
	for _, inst := range d.Insts {
		if inst.Fixed {
			continue
		}
		inst.X, inst.Y, inst.Placed = cx, cy, true
	}
	res := Global(d, Options{Seed: 5, Incremental: true})
	if res.Overflow > 0.5 {
		t.Fatalf("incremental run failed to spread: overflow %v", res.Overflow)
	}
}

func TestRegionConstraintsRespected(t *testing.T) {
	d := tinyPlaced(t, 26)
	region := netlist.Rect{
		X0: d.Core.X0, Y0: d.Core.Y0,
		X1: d.Core.X0 + d.Core.W()*0.4, Y1: d.Core.Y0 + d.Core.H()*0.4,
	}
	regions := map[int]netlist.Rect{}
	for i := 0; i < len(d.Insts)/4; i++ {
		if !d.Insts[i].Fixed {
			regions[i] = region
		}
	}
	Global(d, Options{Seed: 6, Regions: regions})
	for id := range regions {
		inst := d.Insts[id]
		if inst.CenterX() < region.X0-1e-6 || inst.CenterX() > region.X1+1e-6 ||
			inst.CenterY() < region.Y0-1e-6 || inst.CenterY() > region.Y1+1e-6 {
			t.Fatalf("instance %s escaped its region: (%v,%v)", inst.Name, inst.CenterX(), inst.CenterY())
		}
	}
}

func TestFixedCellsDoNotMove(t *testing.T) {
	spec := designs.TinySpec(27)
	spec.Macros = 2
	b := designs.Generate(spec)
	d := b.Design
	type pos struct{ x, y float64 }
	fixed := map[int]pos{}
	for _, inst := range d.Insts {
		if inst.Fixed {
			fixed[inst.ID] = pos{inst.X, inst.Y}
		}
	}
	if len(fixed) == 0 {
		t.Fatal("expected fixed macros")
	}
	Global(d, Options{Seed: 7})
	for id, p := range fixed {
		if d.Insts[id].X != p.x || d.Insts[id].Y != p.y {
			t.Fatal("fixed instance moved")
		}
	}
}

func TestLegalize(t *testing.T) {
	d := tinyPlaced(t, 28)
	Global(d, Options{Seed: 8, Legalize: true})
	rep := CheckLegal(d)
	if rep.OffRow != 0 || rep.OffSite != 0 {
		t.Fatalf("off-grid cells: %+v", rep)
	}
	if rep.Overlaps != 0 {
		t.Fatalf("overlapping cells: %+v", rep)
	}
	if rep.Outside != 0 {
		t.Fatalf("cells outside core: %+v", rep)
	}
}

func TestLegalizeKeepsHPWLReasonable(t *testing.T) {
	d := tinyPlaced(t, 29)
	res := Global(d, Options{Seed: 9})
	before := res.HPWL
	Legalize(d)
	after := d.HPWL()
	if after > 1.8*before {
		t.Fatalf("legalization exploded HPWL: %v -> %v", before, after)
	}
}

func TestDeterministicPlacement(t *testing.T) {
	d1 := tinyPlaced(t, 30)
	d2 := tinyPlaced(t, 30)
	r1 := Global(d1, Options{Seed: 11})
	r2 := Global(d2, Options{Seed: 11})
	if math.Abs(r1.HPWL-r2.HPWL) > 1e-9 {
		t.Fatalf("placement not deterministic: %v vs %v", r1.HPWL, r2.HPWL)
	}
}

func TestEmptyDesign(t *testing.T) {
	lib := designs.Lib()
	d := netlist.NewDesign("empty", lib)
	d.Core = netlist.Rect{X0: 0, Y0: 0, X1: 10, Y1: 10}
	res := Global(d, Options{})
	if res.HPWL != 0 {
		t.Fatalf("empty design HPWL=%v", res.HPWL)
	}
}

func TestClampHelper(t *testing.T) {
	if clamp(5, 0, 10) != 5 || clamp(-1, 0, 10) != 0 || clamp(11, 0, 10) != 10 {
		t.Fatal("clamp broken")
	}
	if got := clamp(3, 8, 4); got != 6 {
		t.Fatalf("inverted bounds should give midpoint, got %v", got)
	}
}

func TestBinGridOverflowAndShift(t *testing.T) {
	core := netlist.Rect{X0: 0, Y0: 0, X1: 40, Y1: 40}
	g := newBinGrid(core, 64, 1.0)
	// Pile area into one corner bin.
	for i := 0; i < 50; i++ {
		g.deposit(1, 1, 10)
	}
	if g.overflow() <= 0 {
		t.Fatal("expected overflow")
	}
	// Shifting should push a cell in the hot corner away from it.
	nx, ny := g.shift(1, 1)
	if nx < 1 && ny < 1 {
		t.Fatalf("shift moved cell into the corner: (%v,%v)", nx, ny)
	}
	g.clear()
	if g.overflow() != 0 {
		t.Fatal("clear failed")
	}
}

func TestBlockAreaReducesCapacity(t *testing.T) {
	core := netlist.Rect{X0: 0, Y0: 0, X1: 40, Y1: 40}
	g := newBinGrid(core, 64, 1.0)
	before := g.capacity[0]
	g.blockArea(0, 0, 5, 5)
	if g.capacity[0] >= before {
		t.Fatal("blockage did not reduce capacity")
	}
}

func TestRemoveOverlaps(t *testing.T) {
	lib := designs.Lib()
	d := netlist.NewDesign("fp", lib)
	d.Core = netlist.Rect{X0: 0, Y0: 0, X1: 100, Y1: 100}
	// Big synthetic blocks, all piled at the same spot.
	for i := 0; i < 6; i++ {
		m := &netlist.Master{Name: "BLK" + string(rune('A'+i)), Width: 30, Height: 25}
		m.AddPin(netlist.MasterPin{Name: "P", Dir: netlist.DirInout})
		if err := lib.AddMaster(m); err != nil {
			t.Fatal(err)
		}
		inst, _ := d.AddInstance("b"+string(rune('a'+i)), m)
		inst.X, inst.Y, inst.Placed = 35, 35, true
	}
	if OverlapArea(d) == 0 {
		t.Fatal("expected initial overlap")
	}
	RemoveOverlaps(d)
	if got := OverlapArea(d); got > 1e-6 {
		t.Fatalf("overlap remains: %v", got)
	}
	for _, inst := range d.Insts {
		if inst.X < d.Core.X0-1e-9 || inst.X+inst.Master.Width > d.Core.X1+1e-9 ||
			inst.Y < d.Core.Y0-1e-9 || inst.Y+inst.Master.Height > d.Core.Y1+1e-9 {
			t.Fatalf("cell %s outside core", inst.Name)
		}
	}
}

func TestRemoveOverlapsRespectsFixed(t *testing.T) {
	lib := designs.Lib()
	d := netlist.NewDesign("fp2", lib)
	d.Core = netlist.Rect{X0: 0, Y0: 0, X1: 60, Y1: 60}
	m := &netlist.Master{Name: "BLKF", Width: 20, Height: 20}
	m.AddPin(netlist.MasterPin{Name: "P", Dir: netlist.DirInout})
	if err := lib.AddMaster(m); err != nil {
		t.Fatal(err)
	}
	fixed, _ := d.AddInstance("fix", m)
	fixed.X, fixed.Y, fixed.Placed, fixed.Fixed = 20, 20, true, true
	mov, _ := d.AddInstance("mov", m)
	mov.X, mov.Y, mov.Placed = 21, 21, true
	RemoveOverlaps(d)
	if fixed.X != 20 || fixed.Y != 20 {
		t.Fatal("fixed cell moved")
	}
	if OverlapArea(d) > 1e-6 {
		t.Fatal("overlap with fixed cell remains")
	}
}

func TestPropertyRemoveOverlapsAlwaysLegal(t *testing.T) {
	// Random piles of mixed-size blocks must come out overlap-free whenever
	// the core has room.
	for seed := int64(0); seed < 6; seed++ {
		lib := netlist.NewLibrary("fpq")
		d := netlist.NewDesign("fpq", lib)
		d.Core = netlist.Rect{X0: 0, Y0: 0, X1: 120, Y1: 120}
		s := uint64(seed)*6364136223846793005 + 1442695040888963407
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>11) / float64(1<<53)
		}
		for i := 0; i < 12; i++ {
			m := &netlist.Master{
				Name:   "B" + string(rune('A'+i)),
				Width:  8 + next()*18,
				Height: 8 + next()*18,
			}
			m.AddPin(netlist.MasterPin{Name: "P", Dir: netlist.DirInout})
			if err := lib.AddMaster(m); err != nil {
				t.Fatal(err)
			}
			inst, _ := d.AddInstance("b"+string(rune('a'+i)), m)
			inst.X = next() * 40
			inst.Y = next() * 40
			inst.Placed = true
		}
		RemoveOverlaps(d)
		if ov := OverlapArea(d); ov > 1e-6 {
			t.Fatalf("seed %d: overlap %v remains", seed, ov)
		}
	}
}
