package place

import (
	"math"

	"ppaclust/internal/netlist"
)

// binGrid is the density grid used for overflow measurement and FastPlace
// style cell shifting.
type binGrid struct {
	core     netlist.Rect
	nx, ny   int
	bw, bh   float64
	area     []float64 // deposited movable area per bin
	capacity []float64 // usable area per bin (after blockages) * targetDensity
}

func newBinGrid(core netlist.Rect, nCells int, targetDensity float64) *binGrid {
	n := int(math.Sqrt(float64(nCells)/4)) + 2
	if n < 4 {
		n = 4
	}
	if n > 128 {
		n = 128
	}
	g := &binGrid{
		core: core,
		nx:   n,
		ny:   n,
		bw:   core.W() / float64(n),
		bh:   core.H() / float64(n),
	}
	g.area = make([]float64, n*n)
	g.capacity = make([]float64, n*n)
	binArea := g.bw * g.bh * targetDensity
	for i := range g.capacity {
		g.capacity[i] = binArea
	}
	return g
}

func (g *binGrid) index(x, y float64) (int, int) {
	i := int((x - g.core.X0) / g.bw)
	j := int((y - g.core.Y0) / g.bh)
	if i < 0 {
		i = 0
	}
	if i >= g.nx {
		i = g.nx - 1
	}
	if j < 0 {
		j = 0
	}
	if j >= g.ny {
		j = g.ny - 1
	}
	return i, j
}

// blockArea removes a fixed blockage's footprint from bin capacities.
func (g *binGrid) blockArea(x, y, w, h float64) {
	x1, y1 := x+w, y+h
	i0, j0 := g.index(x, y)
	i1, j1 := g.index(x1, y1)
	for j := j0; j <= j1; j++ {
		for i := i0; i <= i1; i++ {
			bx0 := g.core.X0 + float64(i)*g.bw
			by0 := g.core.Y0 + float64(j)*g.bh
			ox := overlap1d(x, x1, bx0, bx0+g.bw)
			oy := overlap1d(y, y1, by0, by0+g.bh)
			c := &g.capacity[j*g.nx+i]
			*c -= ox * oy
			if *c < 0 {
				*c = 0
			}
		}
	}
}

func overlap1d(a0, a1, b0, b1 float64) float64 {
	lo := math.Max(a0, b0)
	hi := math.Min(a1, b1)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

func (g *binGrid) clear() {
	for i := range g.area {
		g.area[i] = 0
	}
}

func (g *binGrid) deposit(x, y, area float64) {
	i, j := g.index(x, y)
	g.area[j*g.nx+i] += area
}

// overflow returns the fraction of movable area above bin capacity.
func (g *binGrid) overflow() float64 {
	var over, total float64
	for i := range g.area {
		total += g.area[i]
		if g.area[i] > g.capacity[i] {
			over += g.area[i] - g.capacity[i]
		}
	}
	if total <= 0 {
		return 0
	}
	return over / total
}

// shift returns the cell-shifted position of (x, y): 1-D shifting along x
// within the cell's bin row, then along y within its bin column (FastPlace).
func (g *binGrid) shift(x, y float64) (float64, float64) {
	i, j := g.index(x, y)
	nx := g.shift1d(x, i, func(k int) float64 { return g.util(k, j) },
		g.core.X0, g.bw, g.nx)
	ny := g.shift1d(y, j, func(k int) float64 { return g.util(i, k) },
		g.core.Y0, g.bh, g.ny)
	return nx, ny
}

func (g *binGrid) util(i, j int) float64 {
	c := g.capacity[j*g.nx+i]
	if c <= 0 {
		return 4 // fully blocked bins repel strongly
	}
	u := g.area[j*g.nx+i] / c
	if u > 4 {
		u = 4
	}
	return u
}

// shift1d implements FastPlace's bin-boundary shifting for one axis: the
// boundary between bin k and k+1 moves toward the less-utilized side, and a
// cell's position maps linearly from old bin extents to new ones.
func (g *binGrid) shift1d(pos float64, k int, util func(int) float64,
	origin, binSize float64, nBins int) float64 {

	const delta = 0.3
	b0 := origin + float64(k)*binSize // old left boundary
	b1 := b0 + binSize                // old right boundary
	// New boundaries, each computed against the neighbor across it.
	nb0, nb1 := b0, b1
	if k > 0 {
		uL, uC := util(k-1), util(k)
		// An overfull bin expands into its lighter neighbor: the shared
		// boundary moves toward the lighter side. Both adjacent bins compute
		// the same new boundary (the expression is antisymmetric).
		nb0 = b0 - 0.5*binSize*(uC-uL)/(uC+uL+delta)
	}
	if k < nBins-1 {
		uC, uR := util(k), util(k+1)
		nb1 = b1 + 0.5*binSize*(uC-uR)/(uC+uR+delta)
	}
	if nb1-nb0 < 0.05*binSize {
		mid := (nb0 + nb1) / 2
		nb0, nb1 = mid-0.025*binSize, mid+0.025*binSize
	}
	t := (pos - b0) / binSize
	return nb0 + t*(nb1-nb0)
}

// capacityOf approximates the free capacity inside a rectangle by summing
// bin capacities weighted by overlap fraction.
func (g *binGrid) capacityOf(r netlist.Rect) float64 {
	i0, j0 := g.index(r.X0, r.Y0)
	i1, j1 := g.index(r.X1-1e-9, r.Y1-1e-9)
	var total float64
	for j := j0; j <= j1; j++ {
		for i := i0; i <= i1; i++ {
			bx0 := g.core.X0 + float64(i)*g.bw
			by0 := g.core.Y0 + float64(j)*g.bh
			ox := overlap1d(r.X0, r.X1, bx0, bx0+g.bw)
			oy := overlap1d(r.Y0, r.Y1, by0, by0+g.bh)
			total += g.capacity[j*g.nx+i] * (ox * oy) / (g.bw * g.bh)
		}
	}
	return total
}
