package place

import (
	"math"
	"strconv"

	"ppaclust/internal/cluster"
	"ppaclust/internal/netlist"
)

// Multigrid-style warm start: instead of dropping 10^5-10^6 cells at the
// core center and letting CG untangle them, coarse-place the MultilevelFC
// cluster hierarchy (a few thousand variables), interpolate cluster
// positions down to the member cells, and let the fine solves refine from an
// already-spread state. Every stage — clustering, the coarse quadratic
// solve, the spiral interpolation — is bit-identical across worker counts,
// so the warm start preserves the placer's determinism contract.

// coarseInitMinCells is the movable-cell count at which the auto mode turns
// the warm start on. Below it the flat solve converges in a handful of
// rounds and the clustering pass would dominate the runtime.
const coarseInitMinCells = 200000

// coarseInitMaxClusters caps the coarse problem size; coarseInitCellsPer
// sets the target cells-per-cluster ratio.
const (
	coarseInitMaxClusters = 4096
	coarseInitMinClusters = 64
	coarseInitCellsPer    = 128
)

// useCoarseInit decides whether this run warm-starts from the cluster
// hierarchy. Regions are excluded: the coarse model has no per-cell region
// notion, and region runs are incremental-style refinements anyway.
func (p *placer) useCoarseInit() bool {
	if p.opt.CoarseInit < 0 {
		return false
	}
	if p.opt.CoarseInit > 0 {
		return true
	}
	return !p.opt.Incremental && p.opt.Regions == nil &&
		len(p.movable) >= coarseInitMinCells
}

// keepResolved forwards an already-resolved option value into a child solve:
// a resolved 0 means "explicitly disabled", which the child's withDefaults
// expresses as a negative value (0 would flip back to the default).
func keepResolved(v float64) float64 {
	if v == 0 {
		return -1
	}
	return v
}

// coarseInit overwrites the initial positions (and first-round spreading
// anchors) with the interpolated coarse placement. On any degenerate input
// (clustering collapses, contraction fails) it leaves the center-seeded
// positions from initPositions untouched.
func (p *placer) coarseInit() {
	d := p.d
	k := len(p.movable) / coarseInitCellsPer
	if k < coarseInitMinClusters {
		k = coarseInitMinClusters
	}
	if k > coarseInitMaxClusters {
		k = coarseInitMaxClusters
	}
	if len(d.Insts) <= 2*k {
		return
	}
	// The warm start clusters on its own, with its own target: the
	// preconditioner's shared hierarchy (precond.go) coarsens ~20x per
	// level, so its stored levels land far from the k this model needs and
	// the granularity mismatch measurably hurts the interpolated start.
	hv := d.ToHypergraph()
	cres := cluster.MultilevelFC(hv.H, cluster.Options{
		TargetClusters: k,
		Seed:           p.opt.Seed,
		Workers:        p.opt.Workers,
	})
	con, err := hv.H.ContractWorkers(cres.Assign, p.opt.Workers)
	if err != nil || con.Coarse.NumVertices() < 2 {
		return
	}
	coarse := con.Coarse
	nc := coarse.NumVertices()

	// Gather per-cluster movable members (variable indices, ascending
	// instance ID) and fixed-member area/centroid accumulators.
	memberStart := make([]int32, nc+1)
	for _, id := range p.movable {
		memberStart[con.VertexMap[id]+1]++
	}
	for c := 0; c < nc; c++ {
		memberStart[c+1] += memberStart[c]
	}
	members := make([]int32, len(p.movable))
	fill := make([]int32, nc)
	copy(fill, memberStart[:nc])
	for vi, id := range p.movable {
		c := con.VertexMap[id]
		members[fill[c]] = int32(vi)
		fill[c]++
	}
	fixedArea := make([]float64, nc)
	fixedCX := make([]float64, nc)
	fixedCY := make([]float64, nc)
	for _, inst := range d.Insts {
		if !inst.Fixed {
			continue
		}
		c := con.VertexMap[inst.ID]
		a := inst.Master.Area()
		if a <= 0 {
			a = 1
		}
		fixedArea[c] += a
		fixedCX[c] += a * inst.CenterX()
		fixedCY[c] += a * inst.CenterY()
	}

	// Synthetic coarse design: one square cell per cluster (side sqrt of the
	// summed member area), one net per coarse hyperedge. Pins resolve to the
	// cell center (no master pins), matching the placer's cell-center model.
	lib := netlist.NewLibrary(d.Name + "_coarse_lib")
	cd := netlist.NewDesignSized(d.Name+"_coarse", lib, nc, coarse.NumEdges())
	cd.Core = p.core
	maxSide := math.Min(p.core.W(), p.core.H()) / 2
	for c := 0; c < nc; c++ {
		side := math.Sqrt(coarse.VertexWeight(c))
		if side <= 0 {
			side = 1e-3
		}
		if side > maxSide {
			side = maxSide
		}
		m := &netlist.Master{
			Name:   "cm" + strconv.Itoa(c),
			Class:  netlist.ClassCore,
			Width:  side,
			Height: side,
		}
		if lib.AddMaster(m) != nil {
			return
		}
		inst, err := cd.AddInstance("c"+strconv.Itoa(c), m)
		if err != nil {
			return
		}
		if fixedArea[c] > 0 {
			// A cluster holding fixed cells is pinned at their area-weighted
			// centroid so it anchors its neighborhood, as the fixed cells
			// anchor the fine problem.
			inst.Fixed = true
			inst.Placed = true
			inst.X = fixedCX[c]/fixedArea[c] - side/2
			inst.Y = fixedCY[c]/fixedArea[c] - side/2
		}
	}
	for e := 0; e < coarse.NumEdges(); e++ {
		net, err := cd.AddNet("n" + strconv.Itoa(e))
		if err != nil {
			return
		}
		net.Weight = coarse.EdgeWeight(e)
		for _, v := range coarse.Edge(e) {
			cd.Connect(net, netlist.PinRef{Inst: v, Pin: "p"})
		}
	}

	cres2 := Global(cd, Options{
		Iterations:    p.opt.Iterations,
		CGIterations:  p.opt.CGIterations,
		TargetDensity: p.opt.TargetDensity,
		SpreadWeight:  keepResolved(p.opt.SpreadWeight),
		OverflowStop:  keepResolved(p.opt.OverflowStop),
		Seed:          p.opt.Seed,
		Workers:       p.opt.Workers,
		CoarseInit:    -1,
		noStall:       true,
	})
	p.cgIters += cres2.CGIterations

	// Interpolate: members fan out on a golden-angle spiral inside their
	// cluster's footprint, deterministically by member rank. The spiral
	// spreads area roughly uniformly, so the first spreading round starts
	// from low local overlap.
	const goldenAngle = 2.39996322972865332 // pi * (3 - sqrt(5))
	for c := 0; c < nc; c++ {
		lo, hi := memberStart[c], memberStart[c+1]
		if lo == hi {
			continue
		}
		ci := cd.Insts[c]
		cx, cy := ci.CenterX(), ci.CenterY()
		radius := ci.Master.Width / 2
		m := float64(hi - lo)
		for i := lo; i < hi; i++ {
			vi := members[i]
			rank := float64(i - lo)
			r := radius * math.Sqrt((rank+0.5)/m)
			theta := goldenAngle * rank
			p.x[vi] = clamp(cx+r*math.Cos(theta), p.core.X0+p.w[vi]/2, p.core.X1-p.w[vi]/2)
			p.y[vi] = clamp(cy+r*math.Sin(theta), p.core.Y0+p.h[vi]/2, p.core.Y1-p.h[vi]/2)
			p.anchX[vi], p.anchY[vi] = p.x[vi], p.y[vi]
		}
	}
}
