package place

import (
	"math"
	"testing"

	"ppaclust/internal/designs"
)

// TestOptionsWithDefaults pins the resolution of every tunable option under
// the repo-wide convention: zero selects the default, negative explicitly
// disables (resolving to the knob's no-op value), positive passes through.
// Iterations and CGIterations have no disabled state (<=0 selects the
// default), and TargetDensity's default derives from the design utilization.
func TestOptionsWithDefaults(t *testing.T) {
	d := designs.Generate(designs.TinySpec(7)).Design
	wantDensity := d.Utilization() * 1.15
	if wantDensity < 0.75 {
		wantDensity = 0.75
	}
	if wantDensity > 1 {
		wantDensity = 1
	}

	type tc struct {
		name string
		in   Options
		get  func(Options) float64
		want float64
	}
	inf := math.Inf(1)
	cases := []tc{
		{"Iterations default", Options{}, func(o Options) float64 { return float64(o.Iterations) }, 24},
		{"Iterations default incremental", Options{Incremental: true}, func(o Options) float64 { return float64(o.Iterations) }, 12},
		{"Iterations negative selects default", Options{Iterations: -1}, func(o Options) float64 { return float64(o.Iterations) }, 24},
		{"Iterations passthrough", Options{Iterations: 7}, func(o Options) float64 { return float64(o.Iterations) }, 7},
		{"CGIterations default", Options{}, func(o Options) float64 { return float64(o.CGIterations) }, 50},
		{"CGIterations negative selects default", Options{CGIterations: -3}, func(o Options) float64 { return float64(o.CGIterations) }, 50},
		{"CGIterations passthrough", Options{CGIterations: 9}, func(o Options) float64 { return float64(o.CGIterations) }, 9},
		{"TargetDensity default from utilization", Options{}, func(o Options) float64 { return o.TargetDensity }, wantDensity},
		{"TargetDensity disabled fills bins", Options{TargetDensity: -1}, func(o Options) float64 { return o.TargetDensity }, 1},
		{"TargetDensity passthrough", Options{TargetDensity: 0.9}, func(o Options) float64 { return o.TargetDensity }, 0.9},
		{"AnchorWeight default", Options{}, func(o Options) float64 { return o.AnchorWeight }, 0.03},
		{"AnchorWeight disabled", Options{AnchorWeight: -1}, func(o Options) float64 { return o.AnchorWeight }, 0},
		{"AnchorWeight passthrough", Options{AnchorWeight: 0.5}, func(o Options) float64 { return o.AnchorWeight }, 0.5},
		{"SpreadWeight default", Options{}, func(o Options) float64 { return o.SpreadWeight }, 0.18},
		{"SpreadWeight disabled", Options{SpreadWeight: -1}, func(o Options) float64 { return o.SpreadWeight }, 0},
		{"SpreadWeight passthrough", Options{SpreadWeight: 0.4}, func(o Options) float64 { return o.SpreadWeight }, 0.4},
		{"OverflowStop default", Options{}, func(o Options) float64 { return o.OverflowStop }, 0.12},
		{"OverflowStop disabled never fires", Options{OverflowStop: -1}, func(o Options) float64 { return o.OverflowStop }, 0},
		{"OverflowStop passthrough", Options{OverflowStop: 0.2}, func(o Options) float64 { return o.OverflowStop }, 0.2},
		{"TimingNetsPercent default", Options{}, func(o Options) float64 { return o.TimingNetsPercent }, 10},
		{"TimingNetsPercent disabled", Options{TimingNetsPercent: -1}, func(o Options) float64 { return o.TimingNetsPercent }, 0},
		{"TimingNetsPercent passthrough", Options{TimingNetsPercent: 25}, func(o Options) float64 { return o.TimingNetsPercent }, 25},
		{"TimingNetReweight default", Options{}, func(o Options) float64 { return o.TimingNetReweight }, 1.9},
		{"TimingNetReweight disabled is unit", Options{TimingNetReweight: -1}, func(o Options) float64 { return o.TimingNetReweight }, 1},
		{"TimingNetReweight passthrough", Options{TimingNetReweight: 2.5}, func(o Options) float64 { return o.TimingNetReweight }, 2.5},
		{"NetWeightMax default", Options{}, func(o Options) float64 { return o.NetWeightMax }, 5},
		{"NetWeightMax disabled is uncapped", Options{NetWeightMax: -1}, func(o Options) float64 { return o.NetWeightMax }, inf},
		{"NetWeightMax passthrough", Options{NetWeightMax: 3}, func(o Options) float64 { return o.NetWeightMax }, 3},
		{"InflationRatioCoef default", Options{}, func(o Options) float64 { return o.InflationRatioCoef }, 2.5},
		{"InflationRatioCoef disabled", Options{InflationRatioCoef: -1}, func(o Options) float64 { return o.InflationRatioCoef }, 0},
		{"InflationRatioCoef passthrough", Options{InflationRatioCoef: 1.5}, func(o Options) float64 { return o.InflationRatioCoef }, 1.5},
		{"MaxInflationRatio default", Options{}, func(o Options) float64 { return o.MaxInflationRatio }, 1.25},
		{"MaxInflationRatio disabled is uncapped", Options{MaxInflationRatio: -1}, func(o Options) float64 { return o.MaxInflationRatio }, inf},
		{"MaxInflationRatio passthrough", Options{MaxInflationRatio: 2}, func(o Options) float64 { return o.MaxInflationRatio }, 2},
		{"MaxInflationIters default", Options{}, func(o Options) float64 { return float64(o.MaxInflationIters) }, 3},
		{"MaxInflationIters disabled", Options{MaxInflationIters: -1}, func(o Options) float64 { return float64(o.MaxInflationIters) }, 0},
		{"MaxInflationIters passthrough", Options{MaxInflationIters: 2}, func(o Options) float64 { return float64(o.MaxInflationIters) }, 2},
	}
	for _, c := range cases {
		got := c.get(c.in.withDefaults(d))
		if math.Float64bits(got) != math.Float64bits(c.want) {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}

	// CheckpointOverflows: nil selects the defaults, an empty non-nil slice
	// stays empty (all checkpoints disabled), explicit thresholds pass through.
	if got := (Options{}).withDefaults(d).CheckpointOverflows; len(got) != 3 ||
		got[0] != 0.5 || got[1] != 0.3 || got[2] != 0.2 {
		t.Errorf("nil CheckpointOverflows resolved to %v, want [0.5 0.3 0.2]", got)
	}
	if got := (Options{CheckpointOverflows: []float64{}}).withDefaults(d).CheckpointOverflows; len(got) != 0 {
		t.Errorf("empty CheckpointOverflows resolved to %v, want empty", got)
	}
	if got := (Options{CheckpointOverflows: []float64{0.4}}).withDefaults(d).CheckpointOverflows; len(got) != 1 || got[0] != 0.4 {
		t.Errorf("explicit CheckpointOverflows resolved to %v, want [0.4]", got)
	}
}

// TestDisabledSpreadingIsExpressible is the regression for the old <=0
// coercion: SpreadWeight=-1 must genuinely turn spreading off, which leaves
// the quadratic optimum untouched (lower HPWL, higher overflow than the
// spread run).
func TestDisabledSpreadingIsExpressible(t *testing.T) {
	d1 := designs.Generate(designs.TinySpec(11)).Design
	d2 := designs.Generate(designs.TinySpec(11)).Design
	on := Global(d1, Options{Seed: 1})
	off := Global(d2, Options{Seed: 1, SpreadWeight: -1})
	if off.HPWL >= on.HPWL {
		t.Fatalf("disabled spreading HPWL %v not below spread HPWL %v", off.HPWL, on.HPWL)
	}
	if off.Overflow <= on.Overflow {
		t.Fatalf("disabled spreading overflow %v not above spread overflow %v", off.Overflow, on.Overflow)
	}
}
