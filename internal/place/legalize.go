package place

import (
	"math"
	"sort"

	"ppaclust/internal/netlist"
)

// Legalize snaps all movable standard cells onto rows and site columns with
// a Tetris-style greedy sweep: cells are processed left to right, and each
// cell takes the row position minimizing its displacement given the row
// cursors. Fixed cells and macros are untouched; rows overlapped by fixed
// macros start their cursors past the macro.
func Legalize(d *netlist.Design) {
	core := d.Core
	rowH := d.RowHeight
	if rowH <= 0 {
		rowH = 1.4
	}
	siteW := d.SiteWidth
	if siteW <= 0 {
		siteW = 0.19
	}
	nRows := int(core.H() / rowH)
	if nRows <= 0 {
		return
	}
	// Row cursors: next free x per row. Macros create per-row skip windows;
	// for simplicity the cursor starts after the right-most fixed blockage
	// that begins at the row's left half, and cells that would land inside a
	// blockage are pushed past it.
	type blockage struct{ x0, x1 float64 }
	rowBlocks := make([][]blockage, nRows)
	for _, inst := range d.Insts {
		if !inst.Fixed {
			continue
		}
		r0 := int((inst.Y - core.Y0) / rowH)
		r1 := int((inst.Y + inst.Master.Height - core.Y0) / rowH)
		for r := r0; r <= r1 && r < nRows; r++ {
			if r < 0 {
				continue
			}
			rowBlocks[r] = append(rowBlocks[r], blockage{inst.X, inst.X + inst.Master.Width})
		}
	}
	for r := range rowBlocks {
		sort.Slice(rowBlocks[r], func(i, j int) bool { return rowBlocks[r][i].x0 < rowBlocks[r][j].x0 })
	}
	cursor := make([]float64, nRows)
	for r := range cursor {
		cursor[r] = core.X0
	}

	cells := make([]*netlist.Instance, 0, len(d.Insts))
	for _, inst := range d.Insts {
		if inst.Fixed || inst.Master.Class == netlist.ClassMacro {
			continue
		}
		cells = append(cells, inst)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].X != cells[j].X {
			return cells[i].X < cells[j].X
		}
		return cells[i].ID < cells[j].ID
	})

	// placeInRow returns the x the cell would get in row r and the cost.
	placeInRow := func(inst *netlist.Instance, r int) (float64, float64) {
		x := math.Max(cursor[r], inst.X)
		w := inst.Master.Width
		// Skip blockages.
		for _, b := range rowBlocks[r] {
			if x+w > b.x0 && x < b.x1 {
				x = b.x1
			}
		}
		// Snap to site grid.
		x = core.X0 + math.Round((x-core.X0)/siteW)*siteW
		if x < cursor[r] {
			x += siteW
		}
		if x+w > core.X1 {
			return x, math.Inf(1)
		}
		ry := core.Y0 + float64(r)*rowH
		cost := math.Abs(x-inst.X) + math.Abs(ry-inst.Y)
		return x, cost
	}

	for _, inst := range cells {
		pref := int((inst.Y - core.Y0) / rowH)
		bestR, bestX, bestCost := -1, 0.0, math.Inf(1)
		// Search rows outward from the preferred row.
		for dr := 0; dr < nRows; dr++ {
			for _, r := range []int{pref - dr, pref + dr} {
				if r < 0 || r >= nRows || (dr == 0 && r != pref) {
					continue
				}
				x, cost := placeInRow(inst, r)
				if cost < bestCost {
					bestR, bestX, bestCost = r, x, cost
				}
			}
			// Row distance alone already exceeds the best cost: stop.
			if bestR >= 0 && float64(dr)*rowH > bestCost {
				break
			}
		}
		if bestR < 0 {
			// Core is over-capacity; leave the cell at its global position.
			continue
		}
		inst.X = bestX
		inst.Y = core.Y0 + float64(bestR)*rowH
		inst.Placed = true
		cursor[bestR] = bestX + inst.Master.Width
	}
}

// CheckLegal reports row-alignment and overlap violations (for tests).
type LegalReport struct {
	OffRow   int
	OffSite  int
	Overlaps int
	Outside  int
}

// CheckLegal verifies the legality of all movable standard cells.
func CheckLegal(d *netlist.Design) LegalReport {
	var rep LegalReport
	core := d.Core
	rowH := d.RowHeight
	siteW := d.SiteWidth
	type span struct{ x0, x1 float64 }
	rows := map[int][]span{}
	for _, inst := range d.Insts {
		if inst.Fixed || inst.Master.Class == netlist.ClassMacro {
			continue
		}
		ry := (inst.Y - core.Y0) / rowH
		if math.Abs(ry-math.Round(ry)) > 1e-6 {
			rep.OffRow++
		}
		sx := (inst.X - core.X0) / siteW
		if math.Abs(sx-math.Round(sx)) > 1e-6 {
			rep.OffSite++
		}
		if inst.X < core.X0-1e-9 || inst.X+inst.Master.Width > core.X1+1e-9 ||
			inst.Y < core.Y0-1e-9 || inst.Y+inst.Master.Height > core.Y1+1e-9 {
			rep.Outside++
		}
		r := int(math.Round(ry))
		rows[r] = append(rows[r], span{inst.X, inst.X + inst.Master.Width})
	}
	for _, spans := range rows {
		sort.Slice(spans, func(i, j int) bool { return spans[i].x0 < spans[j].x0 })
		for i := 1; i < len(spans); i++ {
			if spans[i].x0 < spans[i-1].x1-1e-9 {
				rep.Overlaps++
			}
		}
	}
	return rep
}
