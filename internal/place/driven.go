// Timing- and routability-driven feedback for the global placer.
//
// The quadratic loop minimizes weighted wirelength; on its own it never sees
// timing or congestion. This file closes that loop the way OpenROAD's
// global_placement does: at configurable bin-overflow checkpoints (default
// 0.5/0.3/0.2, à la -timing_driven_net_reweight_overflow), the placer
// commits its coordinates and (a) runs the incremental STA, ranks nets by
// worst slack and multiplicatively reweights the most critical ones so the
// next B2B assemblies pull them shorter, and (b) runs the GCell global
// router on a coarse grid and inflates the spreading areas of cells sitting
// in congested GCells so the next spreading rounds push them apart.
//
// Determinism: a checkpoint fires when the round's overflow first drops
// below the next threshold — a pure function of the overflow sequence, which
// is itself bit-identical across worker counts. Inside a checkpoint, the STA
// slacks and router congestion are bit-identical at any worker count (their
// packages' contracts), the criticality ranking breaks slack ties by net ID,
// and the weight/area updates walk nets and cells in index order. So the
// whole feedback path preserves the placer's bit-identity contract.
package place

import (
	"math"
	"sort"

	"ppaclust/internal/route"
	"ppaclust/internal/sta"
)

// drivenEnabled reports whether any feedback checkpoint could still fire.
func (p *placer) drivenEnabled() bool {
	if p.opt.TimingDriven {
		return true
	}
	return p.opt.RoutabilityDriven && p.inflations < p.opt.MaxInflationIters
}

// checkpoint fires the next overflow checkpoint if this round's overflow
// reached it, and reports whether any feedback actually changed state. At
// most one checkpoint fires per round; if overflow skips below several
// thresholds at once, the remaining ones fire on the following rounds.
func (p *placer) checkpoint(overflow float64) bool {
	if !p.drivenEnabled() || p.ckptNext >= len(p.opt.CheckpointOverflows) {
		return false
	}
	if overflow > p.opt.CheckpointOverflows[p.ckptNext] {
		return false
	}
	p.ckptNext++
	// Both feedback passes read committed instance coordinates; the final
	// writeBack after the loop overwrites these with the converged ones.
	p.writeBack()
	ran := false
	if p.opt.TimingDriven {
		ran = p.reweightCriticalNets() || ran
	}
	if p.opt.RoutabilityDriven && p.inflations < p.opt.MaxInflationIters {
		ran = p.inflateCongested() || ran
	}
	return ran
}

// reweightCriticalNets runs STA on the committed coordinates and boosts the
// B2B weights of the top TimingNetsPercent most critical active nets. The
// boost ramps linearly from TimingNetReweight at the worst net down to 1 at
// the selection edge, and the accumulated weight is capped at NetWeightMax
// times the net's original weight so repeated checkpoints cannot run away.
func (p *placer) reweightCriticalNets() bool {
	if p.opt.TimingNetsPercent <= 0 || p.opt.TimingNetReweight <= 1 {
		return false
	}
	if p.an == nil {
		p.an = sta.New(p.d, p.opt.TimingCons)
		p.an.Workers = p.workers
		p.netW0 = append([]float64(nil), p.netW...)
	} else {
		// Later checkpoints reuse the analyzer: every movable cell moved, so
		// mark their nets dirty and let the incremental engine repropagate
		// (a mostly-dirty graph reduces to a full refresh internally).
		for _, id := range p.movable {
			p.an.InvalidateInst(id)
		}
		p.an.Update()
	}
	p.slackBuf = p.an.NetSlackInto(p.slackBuf)
	slack := p.slackBuf
	cand := p.critBuf[:0]
	for _, ni := range p.activeNets {
		if !math.IsInf(slack[ni], 1) {
			cand = append(cand, ni)
		}
	}
	p.critBuf = cand
	if len(cand) == 0 {
		return false
	}
	sort.Slice(cand, func(a, b int) bool {
		sa, sb := slack[cand[a]], slack[cand[b]]
		if sa != sb {
			return sa < sb
		}
		return cand[a] < cand[b] // slack ties resolve by net ID
	})
	k := int(math.Ceil(float64(len(cand)) * p.opt.TimingNetsPercent / 100))
	if k > len(cand) {
		k = len(cand)
	}
	boost := p.opt.TimingNetReweight - 1
	for i := 0; i < k; i++ {
		ni := cand[i]
		w := p.netW[ni] * (1 + boost*float64(k-i)/float64(k))
		if maxW := p.netW0[ni] * p.opt.NetWeightMax; w > maxW {
			w = maxW
		}
		p.netW[ni] = w
	}
	p.reweights++
	return true
}

// inflateCongested routes the committed placement on the coarse auto GCell
// grid and scales up the spreading areas of movable cells whose GCell is
// over capacity. Only p.area changes — the physical w/h stay untouched, so
// clamping, write-back and legalization keep using real cell dimensions.
func (p *placer) inflateCongested() bool {
	if p.opt.InflationRatioCoef <= 0 {
		return false
	}
	rres := route.GlobalRoute(p.d, route.Options{Workers: p.workers})
	cong := rres.Grid.CellCongestion()
	nx, _ := rres.Grid.Dims()
	// Inflate hotspots only: when a design is congested across the board,
	// inflating every over-capacity GCell just scales all areas uniformly —
	// pure wirelength loss with no relief. The threshold sits halfway between
	// nominal capacity and the worst GCell, so inflation targets the cells
	// whose spreading actually flattens the congestion peak.
	thresh := 1.0
	if rres.MaxCongestion > 1 {
		thresh = 1 + (rres.MaxCongestion-1)/2
	}
	changed := false
	for vi := range p.movable {
		i, j := rres.Grid.Cell(p.x[vi], p.y[vi])
		c := cong[j*nx+i]
		if c <= thresh {
			continue
		}
		ratio := 1 + p.opt.InflationRatioCoef*(c-thresh)
		if ratio > p.opt.MaxInflationRatio {
			ratio = p.opt.MaxInflationRatio
		}
		a := p.area[vi] * ratio
		if maxA := p.w[vi] * p.h[vi] * p.opt.MaxInflationRatio; a > maxA {
			a = maxA
		}
		if a != p.area[vi] {
			p.area[vi] = a
			changed = true
		}
	}
	if changed {
		p.inflations++
	}
	return changed
}
