package place

import (
	"math"
	"math/rand"
	"sort"

	"ppaclust/internal/netlist"
)

// DetailedOptions configures detailed placement.
type DetailedOptions struct {
	// Passes over all cells. Default 2.
	Passes int
	// Seed drives the visit order.
	Seed int64
	// MaxNetPins skips cells on huge nets when computing optimal regions.
	// Default 64.
	MaxNetPins int
}

func (o DetailedOptions) withDefaults() DetailedOptions {
	if o.Passes <= 0 {
		o.Passes = 2
	}
	if o.MaxNetPins <= 0 {
		o.MaxNetPins = 64
	}
	return o
}

// DetailedResult reports the refinement outcome.
type DetailedResult struct {
	HPWLBefore float64
	HPWLAfter  float64
	Swaps      int
	Moves      int
}

// Detailed runs swap-based detailed placement on a legalized design: every
// movable cell is driven toward the median of its connected pins, realized
// as an equal-width swap with the cell nearest that spot, or as a move into
// whitespace. Only strictly HPWL-improving changes are accepted, so the
// result is never worse than the input and stays legal.
func Detailed(d *netlist.Design, opt DetailedOptions) DetailedResult {
	opt = opt.withDefaults()
	// All wirelength reads and writes in the swap loop go through the
	// incremental bbox cache: a candidate swap touches O(pins-of-cell) state
	// instead of recomputing every incident net. Cached values are
	// bit-identical to NetHPWL/HPWL, so accept/revert decisions — and the
	// final placement — match the from-scratch evaluation exactly.
	wl := netlist.NewWirelenCache(d)
	res := DetailedResult{HPWLBefore: wl.Total()}
	rng := rand.New(rand.NewSource(opt.Seed + 31))

	cells := make([]*netlist.Instance, 0, len(d.Insts))
	for _, inst := range d.Insts {
		if !inst.Fixed && inst.Master.Class == netlist.ClassCore {
			cells = append(cells, inst)
		}
	}
	if len(cells) == 0 {
		res.HPWLAfter = res.HPWLBefore
		return res
	}

	// netCost sums the cached HPWL of the nets touching the two instances
	// (the only terms a swap can alter), deduped with an epoch stamp.
	stamp := make([]int64, len(d.Nets))
	var epoch int64
	netCost := func(id1, id2 int) float64 {
		epoch++
		var sum float64
		for _, id := range [2]int{id1, id2} {
			for _, netID := range d.NetsOf(id) {
				if stamp[netID] != epoch {
					stamp[netID] = epoch
					sum += wl.NetHPWL(netID)
				}
			}
		}
		return sum
	}

	// Spatial index rebuilt once per pass: cells bucketed on a coarse grid.
	const gridN = 24
	bw := d.Core.W() / gridN
	bh := d.Core.H() / gridN
	var buckets [][]*netlist.Instance
	bucketOf := func(x, y float64) int {
		i := int((x - d.Core.X0) / bw)
		j := int((y - d.Core.Y0) / bh)
		if i < 0 {
			i = 0
		}
		if i >= gridN {
			i = gridN - 1
		}
		if j < 0 {
			j = 0
		}
		if j >= gridN {
			j = gridN - 1
		}
		return j*gridN + i
	}
	rebuild := func() {
		buckets = make([][]*netlist.Instance, gridN*gridN)
		for _, c := range cells {
			b := bucketOf(c.CenterX(), c.CenterY())
			buckets[b] = append(buckets[b], c)
		}
	}

	order := rng.Perm(len(cells))
	var sc spotScratch
	for pass := 0; pass < opt.Passes; pass++ {
		rebuild()
		for _, ci := range order {
			inst := cells[ci]
			ox, oy, ok := optimalSpot(d, inst, opt.MaxNetPins, &sc)
			if !ok {
				continue
			}
			if math.Abs(ox-inst.CenterX())+math.Abs(oy-inst.CenterY()) < bw/2 {
				continue // already near-optimal
			}
			// Candidate: equal-width cell nearest the optimal spot.
			cand := nearestSameWidth(buckets, bucketOf(ox, oy), gridN, inst, ox, oy)
			if cand == nil || cand == inst {
				continue
			}
			before := netCost(inst.ID, cand.ID)
			ix, iy := inst.X, inst.Y
			cx, cy := cand.X, cand.Y
			wl.MoveCell(inst.ID, cx, cy)
			wl.MoveCell(cand.ID, ix, iy)
			after := netCost(inst.ID, cand.ID)
			if after < before-1e-9 {
				res.Swaps++
			} else {
				// Revert.
				wl.MoveCell(inst.ID, ix, iy)
				wl.MoveCell(cand.ID, cx, cy)
			}
		}
	}
	res.HPWLAfter = wl.Total()
	return res
}

// spotScratch holds the median buffers optimalSpot reuses across the swap
// loop's calls, so the steady state allocates nothing.
type spotScratch struct {
	xs, ys []float64
}

// optimalSpot returns the median position of the other pins on the cell's
// nets — the classic optimal-region center for single-cell moves.
func optimalSpot(d *netlist.Design, inst *netlist.Instance, maxPins int, sc *spotScratch) (float64, float64, bool) {
	xs, ys := sc.xs[:0], sc.ys[:0]
	for _, netID := range d.NetsOf(inst.ID) {
		n := d.Nets[netID]
		if len(n.Pins) > maxPins {
			continue
		}
		for _, pr := range n.Pins {
			if !pr.IsPort() && pr.Inst == inst.ID {
				continue
			}
			x, y := d.PinPos(pr)
			xs = append(xs, x)
			ys = append(ys, y)
		}
	}
	sc.xs, sc.ys = xs, ys
	if len(xs) == 0 {
		return 0, 0, false
	}
	sort.Float64s(xs)
	sort.Float64s(ys)
	return xs[len(xs)/2], ys[len(ys)/2], true
}

// nearestSameWidth scans outward from the given bucket for the closest cell
// with the same width (so a swap preserves legality).
func nearestSameWidth(buckets [][]*netlist.Instance, start, gridN int,
	self *netlist.Instance, ox, oy float64) *netlist.Instance {

	si, sj := start%gridN, start/gridN
	var best *netlist.Instance
	bestD := math.Inf(1)
	for r := 0; r <= 2; r++ {
		for dj := -r; dj <= r; dj++ {
			for di := -r; di <= r; di++ {
				if maxAbs(di, dj) != r {
					continue
				}
				i, j := si+di, sj+dj
				if i < 0 || i >= gridN || j < 0 || j >= gridN {
					continue
				}
				for _, c := range buckets[j*gridN+i] {
					if c == self || c.Master.Width != self.Master.Width {
						continue
					}
					dd := math.Abs(c.CenterX()-ox) + math.Abs(c.CenterY()-oy)
					if dd < bestD {
						best, bestD = c, dd
					}
				}
			}
		}
		if best != nil {
			return best
		}
	}
	return best
}

func maxAbs(a, b int) int {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}
