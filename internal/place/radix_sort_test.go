package place

import (
	"math/rand"
	"slices"
	"testing"
)

// TestSortByCoordMatchesComparator checks the stable radix sort against the
// comparator sort it replaced, including negative coordinates, duplicates
// (index tie-break), and signed zeros.
func TestSortByCoordMatchesComparator(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{4, 5, 17, 100, 1000} {
		coord := make([]float64, n)
		for i := range coord {
			coord[i] = float64(rng.Intn(20)) * 1.5
			if rng.Intn(4) == 0 {
				coord[i] = -coord[i] // exercises -0.0 == +0.0 ties too
			}
		}
		p := &placer{
			radKey:    make([]uint64, n),
			radKeyTmp: make([]uint64, n),
			radVal:    make([]int32, n),
			radHist:   make([]int32, radBuckets),
		}
		got := make([]int32, n)
		p.sortByCoord(got, coord)
		want := make([]int32, n)
		for i := range want {
			want[i] = int32(i)
		}
		slices.SortFunc(want, func(a, b int32) int {
			switch {
			case coord[a] < coord[b]:
				return -1
			case coord[a] > coord[b]:
				return 1
			}
			return int(a) - int(b)
		})
		if !slices.Equal(got, want) {
			t.Fatalf("n=%d got %v want %v", n, got, want)
		}
	}
}
