package place

import (
	"math/rand"
	"slices"
	"testing"
)

// TestSortByCoordMatchesComparator checks the placer's ordering primitive
// (now backed by the shared sortx radix sort) against the comparator sort it
// replaced, including negative coordinates, duplicates (index tie-break),
// and signed zeros. The full algorithmic suite lives in internal/sortx; this
// guards the placer-side wiring.
func TestSortByCoordMatchesComparator(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{4, 5, 17, 100, 1000} {
		coord := make([]float64, n)
		for i := range coord {
			coord[i] = float64(rng.Intn(20)) * 1.5
			if rng.Intn(4) == 0 {
				coord[i] = -coord[i] // exercises -0.0 == +0.0 ties too
			}
		}
		p := &placer{}
		got := make([]int32, n)
		p.sortByCoord(got, coord)
		want := make([]int32, n)
		for i := range want {
			want[i] = int32(i)
		}
		slices.SortFunc(want, func(a, b int32) int {
			switch {
			case coord[a] < coord[b]:
				return -1
			case coord[a] > coord[b]:
				return 1
			}
			return int(a) - int(b)
		})
		if !slices.Equal(got, want) {
			t.Fatalf("n=%d got %v want %v", n, got, want)
		}
	}
}
