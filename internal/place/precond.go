package place

import (
	"ppaclust/internal/par"
)

// Multilevel aggregation preconditioner for the axis solves.
//
// Jacobi handles the locally stiff part of the B2B operator but is blind to
// its smooth, global error modes — exactly the modes a quadratic placement
// system is full of, since it is a graph Laplacian plus a (initially weak)
// anchor diagonal. Those modes are what pin the early solves at the CG
// iteration cap. The cure is the standard aggregation-AMG one: a ladder of
// coarse spaces.
//
// The ladder is built by operator-strength pairwise aggregation (the AGMG
// recipe): when the first preconditioned solve runs, the freshly assembled
// B2B matrix itself is aggregated — two greedy strongest-neighbor pairing
// passes per level, so each level coarsens ~4x — until fewer than ~100 rows
// remain. Aggregating the operator instead of reusing the FC cluster
// hierarchy (the PR-6 design) keeps the same iteration counts while deleting
// the MultilevelFC run from the placement hot path, which at 100k cells cost
// more than the entire Jacobi-PCG reference solve. The FC hierarchy remains
// the basis of the multigrid warm start (multigrid.go), where cluster
// quality, not setup time, dominates.
//
// Prolongation is piecewise constant (P₀): restriction sums a residual over
// each aggregate and prolongation copies the coarse correction to the
// members, so both transfers are O(n) and the Galerkin product A_c = P₀ᵀAP₀
// collapses to summing each fine entry into its aggregate pair — one O(nnz)
// pass per level per rebuild, no smoothed-basis fill-in. The cycle
// compensates for the flatter basis exactly the way the truncated Jacobi
// path does: solves stop early (aggRelTol, aggMaxIters), because the placer
// interleaves solves with spreading and pays for exactness it cannot use.
//
// One symmetric V-cycle runs per CG iteration. Level 0 — the only level
// whose size matters — smooths with a parallel fused damped-Jacobi V(1,1)
// leg (see vcycleFine); coarser levels keep sequential forward/backward
// Gauss-Seidel V(2,2) legs, an adjoint pair. Both smoothers are symmetric
// and convergent, and the coarse correction is symmetric PSD, so the cycle
// is a symmetric positive definite operator and plain CG applies unchanged.
//
// The V-cycle path handles rounds >= aggFirstRound only: the anchor-free
// round-0 solve deliberately stays on truncated Jacobi-CG (see
// aggFirstRound for why exactness there hurts placement quality).
//
// The aggregates and member lists (T) are computed once per placement run;
// the Galerkin operators, per-level diagonals, and the coarsest dense
// factorization are rebuilt once per axis solve — cached across all CG
// iterations of that solve — since the B2B weights are position-dependent.
// Every stage is sequential or fixed-order/fixed-association, so placements
// remain bit-identical across worker counts.

const (
	// aggMinCells is the movable-cell count at which auto mode switches from
	// Jacobi to the aggregation preconditioner. Below it the flat solves are
	// cheap and the ladder setup would dominate. The auto band is
	// bounded above too: once the multigrid warm start engages
	// (coarseInitMinCells) auto mode stays on Jacobi — see setupAggregates.
	aggMinCells = 20000
	// aggCoarseTarget stops the pairing recursion: a level at most this size
	// becomes the coarsest and is solved directly.
	aggCoarseTarget = 96
	// aggMaxDirect bounds the coarsest level solved with dense LDLᵀ. A
	// ladder whose pairing stalls above it falls back to Jacobi.
	aggMaxDirect = 1024
	// aggMaxLevels bounds the ladder depth (a 4x-per-level ladder reaches
	// aggCoarseTarget from far beyond any practical design size first).
	aggMaxLevels = 16
	// aggAbsorbCap bounds the aggregate size one pairing pass can form. Rows
	// whose neighbors are all matched (the spokes of star nets, after their
	// hub pairs) would otherwise stay singletons forever and stall the
	// coarsening; instead they join their strongest existing aggregate up to
	// this cap.
	aggAbsorbCap = 4
	// aggOmega is the damped-Jacobi weight used by the level-0 smoother.
	aggOmega = 2.0 / 3.0
	// aggRelTol is the aggregation path's relative stopping tolerance,
	// deliberately far looser than cgRelTol. The Jacobi path never reaches
	// its own tolerance on large designs — it runs to the iteration cap and
	// the placer's spread/solve interleaving absorbs the truncation. The
	// V-cycle solves therefore only need to land at a comparable terminal
	// state, and each of their iterations contracts the error by a large
	// constant factor, so a loose tolerance converts directly into fewer
	// O(nnz) passes. Measured at 100k cells the flow quality matches the
	// PR-6 (5e-2) setting while the solve time halves.
	aggRelTol = 1.5e-1
	// aggMaxIters truncates each aggregation-preconditioned solve, the
	// direct analogue of the Jacobi path running to its cap: past a handful
	// of V-cycles the remaining error is spatial detail the next spreading
	// round reshuffles anyway.
	aggMaxIters = 20
	// aggSmoothSweeps is the number of Gauss-Seidel sweeps per pre/post
	// smoothing leg on the coarse levels (k >= 1) — a V(2,2) cycle there.
	// Level 0 uses the fused damped-Jacobi V(1,1) leg instead; coarse rows
	// are few enough that the stronger sequential smoother is free.
	aggSmoothSweeps = 2
	// aggFirstRound is the first outer round the V-cycle path handles;
	// earlier rounds run plain truncated Jacobi-CG. The round-0 system has
	// no spreading anchors, and the cap-truncated Jacobi solve leaves the
	// seeded jitter in the smooth modes — spatial diversity the bisection
	// spreading unfolds into a good placement. An exact round-0 solve
	// collapses cells onto the quadratic optimum's clump and the flow
	// recovers measurably worse wirelength, so exactness there is a bug,
	// not a feature.
	aggFirstRound = 1
)

// csrMat is one level's operator with the diagonal split out. Off-diagonal
// values carry their true (negative) sign, unlike the placer's offEnt.
type csrMat struct {
	n       int
	diag    []float64
	invDiag []float64
	start   []int32
	col     []int32
	val     []float64
}

func (m *csrMat) mul(v, out []float64) {
	for i := 0; i < m.n; i++ {
		s := m.diag[i] * v[i]
		for k := m.start[i]; k < m.start[i+1]; k++ {
			s += m.val[k] * v[m.col[k]]
		}
		out[i] = s
	}
}

// gsForward runs one forward Gauss-Seidel sweep on z from a zero start
// (caller zeroes z); gsBackward runs the adjoint backward sweep in place.
// The pair keeps the V-cycle symmetric. Both are strictly sequential in a
// fixed row order, hence bit-identical everywhere.
func (m *csrMat) gsForward(r, z []float64) {
	for i := 0; i < m.n; i++ {
		s := r[i]
		for k := m.start[i]; k < m.start[i+1]; k++ {
			s -= m.val[k] * z[m.col[k]]
		}
		z[i] = s * m.invDiag[i]
	}
}

func (m *csrMat) gsBackward(r, z []float64) {
	for i := m.n - 1; i >= 0; i-- {
		s := r[i]
		for k := m.start[i]; k < m.start[i+1]; k++ {
			s -= m.val[k] * z[m.col[k]]
		}
		z[i] = s * m.invDiag[i]
	}
}

// aggT lists each aggregate's member rows, ascending — the transpose of the
// piecewise-constant prolongation, cached for the whole run.
type aggT struct {
	start []int32
	idx   []int32
}

// aggPre holds the preconditioner ladder and scratch.
type aggPre struct {
	nlev int       // number of aggregation levels
	nsz  []int     // level sizes: nsz[0] = fine n .. nsz[nlev] = coarsest
	agg  [][]int32 // agg[k]: level-k row -> level-(k+1) aggregate
	T    []aggT    // T[k]: level-(k+1) aggregate -> level-k member rows

	A []csrMat // A[0..nlev]; A[0] mirrors the placer system

	chol  []float64 // dense LDLᵀ factor at the coarsest level (lower part)
	cholD []float64 // pivots (0 = skipped null row)

	rv, zv, tv [][]float64 // per-level cycle vectors

	// Dense accumulation scratch (first-touch ordered flush) for the
	// Galerkin contractions, sized for the largest coarse space ever
	// contracted into (the ladder build's first pairing pass).
	accVal  []float64
	accUsed []bool
	touched []int32

	// fresh marks the Galerkin operators as already matching the current
	// assembled system (set by the ladder build, which runs inside the
	// first preconditioned solve), so that solve skips its rebuild.
	fresh bool
}

// add accumulates v into the dense scratch, recording first touches.
func (a *aggPre) add(c int32, v float64) {
	if !a.accUsed[c] {
		a.accUsed[c] = true
		a.touched = append(a.touched, c)
	}
	a.accVal[c] += v
}

// pairPass greedily aggregates rows with their strongest (most negative
// off-diagonal) unmatched neighbor: ascending row order, first-strongest
// entry wins ties. A row with no free neighbor joins its strongest existing
// aggregate instead, up to aggAbsorbCap members (without this, star-shaped
// nets stall the coarsening: once the hub pairs, every remaining spoke's
// only neighbor is matched). Aggregate ids come out in first-touch
// (ascending row) order and sizes update sequentially, so the pass is
// deterministic. sz is caller scratch of length >= n; returns the aggregate
// count.
func pairPass(n int, start, col []int32, val []float64, out, sz []int32) int {
	for i := 0; i < n; i++ {
		out[i] = -1
	}
	nc := int32(0)
	for i := 0; i < n; i++ {
		if out[i] >= 0 {
			continue
		}
		bestFree, bestAgg := int32(-1), int32(-1)
		bwFree, bwAgg := 0.0, 0.0
		for e := start[i]; e < start[i+1]; e++ {
			j := col[e]
			if int(j) == i {
				continue
			}
			w := -val[e]
			if out[j] < 0 {
				if w > bwFree {
					bwFree, bestFree = w, j
				}
			} else if sz[out[j]] < aggAbsorbCap && w > bwAgg {
				bwAgg, bestAgg = w, j
			}
		}
		switch {
		case bestFree >= 0:
			out[i] = nc
			out[bestFree] = nc
			sz[nc] = 2
			nc++
		case bestAgg >= 0:
			c := out[bestAgg]
			out[i] = c
			sz[c]++
		default:
			out[i] = nc
			sz[nc] = 1
			nc++
		}
	}
	return int(nc)
}

// buildT counting-sorts an aggregate map into member lists, ascending rows
// within each aggregate.
func buildT(agg []int32, nc int, t *aggT) {
	t.start = make([]int32, nc+1)
	t.idx = make([]int32, len(agg))
	for _, c := range agg {
		t.start[c+1]++
	}
	for c := 0; c < nc; c++ {
		t.start[c+1] += t.start[c]
	}
	fill := make([]int32, nc)
	copy(fill, t.start[:nc])
	for i, c := range agg {
		t.idx[fill[c]] = int32(i)
		fill[c]++
	}
}

// contract computes the piecewise-constant Galerkin product C = P₀ᵀ A P₀:
// every fine entry lands on its aggregate pair, accumulated per coarse row
// over ascending member rows in entry order — a fixed association, hence
// deterministic. C.start must be presized to len(t.start); col/val capacity
// is reused across rebuilds.
func (a *aggPre) contract(A *csrMat, t *aggT, agg []int32, C *csrMat) {
	nc := len(t.start) - 1
	C.n = nc
	C.col = C.col[:0]
	C.val = C.val[:0]
	C.start[0] = 0
	for c := 0; c < nc; c++ {
		d := 0.0
		for q := t.start[c]; q < t.start[c+1]; q++ {
			i := t.idx[q]
			d += A.diag[i]
			for e := A.start[i]; e < A.start[i+1]; e++ {
				cc := agg[A.col[e]]
				if int(cc) == c {
					d += A.val[e]
				} else {
					a.add(cc, A.val[e])
				}
			}
		}
		for _, tc := range a.touched {
			C.col = append(C.col, tc)
			C.val = append(C.val, a.accVal[tc])
			a.accUsed[tc] = false
			a.accVal[tc] = 0
		}
		a.touched = a.touched[:0]
		C.diag[c] = d
		C.start[c+1] = int32(len(C.col)) //ppalint:ignore i32trunc coarse matrix entries never exceed the fine system's, whose int32 CSR the caller built
		if d > 0 {
			C.invDiag[c] = 1 / d
		} else {
			C.invDiag[c] = 0
		}
	}
}

// setupAggregates decides whether this run should use the aggregation
// preconditioner. The ladder itself is built lazily by the first
// preconditioned solve (ensureAggLadder), which aggregates the actual
// assembled operator instead of a connectivity proxy.
func (p *placer) setupAggregates() {
	if p.opt.Precond < 0 {
		return
	}
	n := len(p.movable)
	if p.opt.Precond == 0 && (n < aggMinCells || p.useCoarseInit()) {
		// The multigrid warm start and this preconditioner are alternative
		// cures for the same smooth-mode stiffness: once the warm start
		// engages (auto at >=200k movable cells) the fine solves start from
		// interpolated coarse positions and truncated Jacobi-CG's implicit
		// trust region preserves them — layering near-exact V-cycle solves
		// on top measured slightly worse HPWL (+1.8% at 1M) for twice the
		// setup cost. Auto mode therefore uses aggregation only in the
		// no-warm-start band; Precond=1 still forces it anywhere.
		return
	}
	p.aggPending = true
}

// ensureAggLadder builds the aggregate ladder from the operator of the
// current (first preconditioned) solve: double pairwise aggregation per
// level until aggCoarseTarget rows remain. Any degenerate outcome — pairing
// stalls, coarsest level too large for the direct solve — leaves p.pre nil
// and the run falls back to Jacobi. Runs at most once per placement.
func (p *placer) ensureAggLadder() {
	p.aggPending = false
	n := len(p.movable)
	a := &aggPre{}

	// Level-0 mirror of the placer CSR (off-diagonals negated to true
	// values). The arrays stay on the ladder and are refreshed per solve.
	a0 := csrMat{n: n, diag: p.diag, invDiag: p.invDiag}
	a0.start = make([]int32, n+1)
	copy(a0.start, p.offStart)
	a0.col = make([]int32, len(p.offEnt))
	a0.val = make([]float64, len(p.offEnt))
	for k, e := range p.offEnt {
		a0.col[k] = e.col
		a0.val[k] = -e.w
	}

	m1 := make([]int32, n)
	m2 := make([]int32, n)
	sz := make([]int32, n)
	mats := []csrMat{a0}
	cur := &mats[0]
	for cur.n > aggCoarseTarget && a.nlev < aggMaxLevels {
		nc1 := pairPass(cur.n, cur.start, cur.col, cur.val, m1, sz)
		if a.accVal == nil {
			// First pairing of the finest level: the largest coarse space
			// any contraction will ever touch.
			a.accVal = make([]float64, nc1)
			a.accUsed = make([]bool, nc1)
			a.touched = make([]int32, 0, nc1)
		}
		// Contract to the pair graph and pair once more (double pairwise,
		// ~4x per ladder level), then compose the two maps.
		var t1 aggT
		buildT(m1[:cur.n], nc1, &t1)
		aux := csrMat{
			diag:    make([]float64, nc1),
			invDiag: make([]float64, nc1),
			start:   make([]int32, nc1+1),
		}
		a.contract(cur, &t1, m1[:cur.n], &aux)
		nc2 := pairPass(nc1, aux.start, aux.col, aux.val, m2, sz)
		if nc2*4 > cur.n*3 {
			break // pairing stalled; keep the ladder built so far
		}
		agg := make([]int32, cur.n)
		for i := 0; i < cur.n; i++ {
			agg[i] = m2[m1[i]]
		}
		a.agg = append(a.agg, agg)
		var t aggT
		buildT(agg, nc2, &t)
		a.T = append(a.T, t)
		next := csrMat{
			diag:    make([]float64, nc2),
			invDiag: make([]float64, nc2),
			start:   make([]int32, nc2+1),
		}
		a.contract(cur, &t, agg, &next)
		mats = append(mats, next)
		a.nlev++
		cur = &mats[a.nlev]
	}
	if a.nlev == 0 || cur.n > aggMaxDirect {
		return
	}

	a.A = mats
	a.nsz = make([]int, a.nlev+1)
	a.rv = make([][]float64, a.nlev+1)
	a.zv = make([][]float64, a.nlev+1)
	a.tv = make([][]float64, a.nlev+1)
	for k := 0; k <= a.nlev; k++ {
		sz := a.A[k].n
		a.nsz[k] = sz
		if k > 0 {
			a.rv[k] = make([]float64, sz)
			a.zv[k] = make([]float64, sz)
		}
		a.tv[k] = make([]float64, sz)
	}
	ncL := a.nsz[a.nlev]
	a.chol = make([]float64, ncL*ncL)
	a.cholD = make([]float64, ncL)
	a.factorCoarsest()
	a.fresh = true
	p.pre = a
	p.cgZ = make([]float64, n)
}

// aggBuild refreshes the ladder from the freshly assembled system: mirrors
// the fine operator, re-contracts every Galerkin level over the frozen
// aggregates, and factors the coarsest operator. Called once per axis solve,
// after flattenSystem; all products are cached across that solve's CG
// iterations.
func (p *placer) aggBuild() {
	a := p.pre
	a0 := &a.A[0]
	a0.diag = p.diag
	a0.invDiag = p.invDiag
	copy(a0.start, p.offStart)
	nnz := len(p.offEnt)
	if cap(a0.col) < nnz {
		a0.col = make([]int32, nnz)
		a0.val = make([]float64, nnz)
	}
	a0.col = a0.col[:nnz]
	a0.val = a0.val[:nnz]
	for k, e := range p.offEnt {
		a0.col[k] = e.col
		a0.val[k] = -e.w
	}

	for k := 0; k < a.nlev; k++ {
		a.contract(&a.A[k], &a.T[k], a.agg[k], &a.A[k+1])
	}
	a.factorCoarsest()
}

// factorCoarsest builds a dense LDLᵀ factorization of the coarsest operator.
// Non-positive pivots (null modes of an unanchored system) are skipped,
// which projects them out of the correction — the cycle stays PSD.
func (a *aggPre) factorCoarsest() {
	A := &a.A[a.nlev]
	n := A.n
	L := a.chol
	for i := range L {
		L[i] = 0
	}
	maxd := 0.0
	for i := 0; i < n; i++ {
		L[i*n+i] = A.diag[i]
		if A.diag[i] > maxd {
			maxd = A.diag[i]
		}
		for e := A.start[i]; e < A.start[i+1]; e++ {
			L[i*n+int(A.col[e])] = A.val[e]
		}
	}
	eps := 1e-12 * maxd
	for j := 0; j < n; j++ {
		d := L[j*n+j]
		for k := 0; k < j; k++ {
			if a.cholD[k] != 0 {
				ljk := L[j*n+k]
				d -= ljk * ljk / a.cholD[k]
			}
		}
		if d <= eps {
			a.cholD[j] = 0
			continue
		}
		a.cholD[j] = d
		for i := j + 1; i < n; i++ {
			s := L[i*n+j]
			for k := 0; k < j; k++ {
				if a.cholD[k] != 0 {
					s -= L[i*n+k] * L[j*n+k] / a.cholD[k]
				}
			}
			L[i*n+j] = s
		}
	}
}

// coarseSolve solves the coarsest system with the LDLᵀ factor. Skipped
// (null) pivots zero the corresponding solution entry.
func (a *aggPre) coarseSolve(r, z []float64) {
	A := &a.A[a.nlev]
	n := A.n
	L := a.chol
	copy(z, r)
	for j := 0; j < n; j++ {
		if a.cholD[j] == 0 {
			z[j] = 0
			continue
		}
		zj := z[j] / a.cholD[j]
		for i := j + 1; i < n; i++ {
			z[i] -= L[i*n+j] * zj
		}
	}
	for j := 0; j < n; j++ {
		if a.cholD[j] != 0 {
			z[j] /= a.cholD[j]
		}
	}
	for j := n - 1; j >= 0; j-- {
		if a.cholD[j] == 0 {
			continue
		}
		var s float64
		for i := j + 1; i < n; i++ {
			s += L[i*n+j] * z[i]
		}
		z[j] -= s / a.cholD[j]
	}
}

// vcycle applies one symmetric cycle at level k. Level 0 — the only level
// whose row count matters — runs the restructured parallel damped-Jacobi
// V(1,1) leg (see vcycleFine); coarser levels keep sequential Gauss-Seidel
// V(2,2) legs, whose forward/backward sweeps are adjoint pairs. Both
// smoothers are symmetric, so the whole cycle remains a symmetric positive
// definite operator and plain CG applies unchanged.
func (p *placer) vcycle(k int, r, z []float64) {
	a := p.pre
	if k == a.nlev {
		a.coarseSolve(r, z)
		return
	}
	if k == 0 {
		p.vcycleFine(r, z)
		return
	}
	A := &a.A[k]
	n := A.n
	t := a.tv[k]
	for i := 0; i < n; i++ {
		z[i] = 0
	}
	for s := 0; s < aggSmoothSweeps; s++ {
		A.gsForward(r, z)
	}
	p.levelMul(k, z, t)
	for i := 0; i < n; i++ {
		t[i] = r[i] - t[i]
	}
	// Restrict the residual through the piecewise-constant basis (scatter
	// over ascending rows) and recurse.
	agg := a.agg[k]
	rc := a.rv[k+1]
	for c := range rc {
		rc[c] = 0
	}
	for i := 0; i < n; i++ {
		rc[agg[i]] += t[i]
	}
	p.vcycle(k+1, rc, a.zv[k+1])
	zc := a.zv[k+1]
	for i := 0; i < n; i++ {
		z[i] += zc[agg[i]]
	}
	for s := 0; s < aggSmoothSweeps; s++ {
		A.gsBackward(r, z)
	}
}

// vcycleFine is the level-0 leg of the V-cycle, restructured from the PR-6
// sequential Gauss-Seidel V(2,2) into a parallel damped-Jacobi V(1,1). Three
// structural savings pay for the weaker smoother:
//
//   - the zero-start pre-smooth collapses to z = ωD⁻¹r — a diagonal scale,
//     no matvec at all;
//   - the post-smooth folds its residual into the sweep itself,
//     z ← u + ωD⁻¹(r − Au), one fused O(nnz) pass instead of sweep+matvec;
//   - the prolongation u = z + zc[agg] lands directly in the post-smooth's
//     input buffer, so no separate correction pass runs.
//
// That is 2 O(nnz) passes per cycle against the Gauss-Seidel leg's 5. Every
// pass is per-row parallel with the rowDot fixed association, and the
// restriction gathers each aggregate's members in ascending row order — the
// exact association of the sequential scatter it replaces — so results are
// bit-identical at any worker count. The damped-Jacobi sweep operator ωD⁻¹
// is symmetric, pre and post legs use one sweep each, and the cycle stays
// symmetric positive definite.
func (p *placer) vcycleFine(r, z []float64) {
	a := p.pre
	n := len(p.movable)
	t := a.tv[0]
	diag, iv := p.diag, p.invDiag
	offStart, offEnt := p.offStart, p.offEnt

	// Pre-smooth from zero, then the residual t = r − Az in one fused pass.
	p.blocks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			z[i] = aggOmega * iv[i] * r[i]
		}
	})
	p.blocks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t[i] = r[i] - rowDot(diag[i]*z[i], offEnt[offStart[i]:offStart[i+1]], z)
		}
	})

	// Restrict rc = P₀ᵀt by summing each aggregate's members in ascending
	// row order (T is built that way), matching the sequential scatter's
	// association exactly.
	T := &a.T[0]
	rc := a.rv[1]
	p.blocks(a.nsz[1], func(lo, hi int) {
		for c := lo; c < hi; c++ {
			var s float64
			for e := T.start[c]; e < T.start[c+1]; e++ {
				s += t[T.idx[e]]
			}
			rc[c] = s
		}
	})

	p.vcycle(1, rc, a.zv[1])

	// Prolongate u = z + zc[agg] into the scratch buffer, then post-smooth
	// z = u + ωD⁻¹(r − Au) two-buffered (reads t, writes z).
	agg := a.agg[0]
	zc := a.zv[1]
	p.blocks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			t[i] = z[i] + zc[agg[i]]
		}
	})
	p.blocks(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			au := rowDot(diag[i]*t[i], offEnt[offStart[i]:offStart[i+1]], t)
			z[i] = t[i] + aggOmega*iv[i]*(r[i]-au)
		}
	})
}

// blocks runs fn over contiguous row ranges of [0,n), on the caller's
// goroutine when the worker budget is 1. Writes must stay within each range;
// any cross-row reduction belongs in a separate fixed-order pass.
func (p *placer) blocks(n int, fn func(lo, hi int)) {
	if p.workers <= 1 {
		fn(0, n)
		return
	}
	par.Blocks(p.workers, n, func(w, lo, hi int) { fn(lo, hi) })
}

// levelMul multiplies by the level-k operator. Level 0 uses the shared
// parallel matvec (same values, same fixed accumulation order).
func (p *placer) levelMul(k int, v, out []float64) {
	if k == 0 {
		p.mulA(v, out)
		return
	}
	p.pre.A[k].mul(v, out)
}

// aggApply computes z = M⁻¹ r with one V-cycle.
func (p *placer) aggApply(r, z []float64) {
	p.vcycle(0, r, z)
}

// cgAgg is the aggregation-preconditioned variant of cg. The Jacobi path in
// cg is kept verbatim so runs without the preconditioner stay bit-identical
// to previous releases.
func (p *placer) cgAgg(xAxis bool) []float64 {
	n := len(p.movable)
	x := p.cgX
	if xAxis {
		copy(x, p.x)
	} else {
		copy(x, p.y)
	}
	if p.pre.fresh {
		p.pre.fresh = false
	} else {
		p.aggBuild()
	}
	ax, r, d, z := p.cgAx, p.cgR, p.cgD, p.cgZ
	rhs := p.rhs

	p.mulA(x, ax)
	for i := 0; i < n; i++ {
		r[i] = rhs[i] - ax[i]
	}
	p.aggApply(r, z)
	var rz float64
	for i := 0; i < n; i++ {
		rz += r[i] * z[i]
	}
	copy(d, z)

	// Relative floor on the initial residual in the M⁻¹ norm. The Jacobi
	// path floors on the right-hand-side norm, but under proximal damping
	// the rhs carries the (large) μ·diag·x_prev shift while the residual is
	// exactly the undamped one, so the initial residual is the meaningful
	// reference (see aggRelTol for why the constant differs from cgRelTol).
	floor := aggRelTol * aggRelTol * rz
	if floor < 1e-20 {
		floor = 1e-20
	}
	itCap := p.opt.CGIterations
	if itCap > aggMaxIters {
		itCap = aggMaxIters
	}

	it := 0
	for ; it < itCap && rz > floor; it++ {
		dad := p.mulADot(d, ax)
		if dad <= 0 {
			break
		}
		alpha := rz / dad
		for i := 0; i < n; i++ {
			x[i] += alpha * d[i]
			r[i] -= alpha * ax[i]
		}
		p.aggApply(r, z)
		var rzNew float64
		for i := 0; i < n; i++ {
			rzNew += r[i] * z[i]
		}
		beta := rzNew / rz
		rz = rzNew
		for i := 0; i < n; i++ {
			d[i] = z[i] + beta*d[i]
		}
	}
	p.cgIters += it
	return x
}
