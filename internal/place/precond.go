package place

import (
	"ppaclust/internal/cluster"
)

// Multilevel aggregation preconditioner for the axis solves.
//
// Jacobi handles the locally stiff part of the B2B operator but is blind to
// its smooth, global error modes — exactly the modes a quadratic placement
// system is full of, since it is a graph Laplacian plus a (initially weak)
// anchor diagonal. Those modes are what pin the early solves at the CG
// iteration cap. The cure is the standard smoothed-aggregation AMG one: a
// ladder of coarse spaces. We reuse the MultilevelFC cluster hierarchy as
// that ladder (the paper's clustering is connectivity-driven, so its levels
// are exactly the nested strongly-coupled groups an AMG aggregation pass
// would form), smooth each piecewise-constant prolongation one damped-Jacobi
// step, Galerkin-coarsen level by level, and apply one symmetric V(2,2)
// cycle per CG iteration: forward Gauss-Seidel pre-smoothing, coarse-grid
// correction, backward Gauss-Seidel post-smoothing, with A_c = Pᵀ A P,
// P = (I − ω D⁻¹ A) P₀ and ω = 2/3, bottoming out in a dense LDLᵀ solve at
// the coarsest level. The forward/backward sweeps are adjoint pairs, so the
// cycle is a symmetric positive definite operator and plain CG applies
// unchanged.
//
// The V-cycle path handles rounds ≥ aggFirstRound only: the anchor-free
// round-0 solve deliberately stays on truncated Jacobi-CG (see
// aggFirstRound for why exactness there hurts placement quality).
//
// The aggregate ladder is computed once per placement run (connectivity does
// not change); the prolongations and Galerkin operators are rebuilt per axis
// solve, since the B2B weights are position-dependent. Setup is O(nnz) per
// level with small constants, and every stage — clustering, triple products,
// the cycle, the direct coarsest solve — is sequential or fixed-order, so
// placements remain bit-identical across worker counts.

const (
	// aggMinCells is the movable-cell count at which auto mode switches from
	// Jacobi to the aggregation preconditioner. Below it the flat solves are
	// cheap and the clustering pass would dominate. The auto band is
	// bounded above too: once the multigrid warm start engages
	// (coarseInitMinCells) auto mode stays on Jacobi — see setupAggregates.
	aggMinCells = 20000
	// aggTargetCoarsest is the MultilevelFC target when the hierarchy is
	// built: coarsening runs until roughly this many clusters remain, and
	// every intermediate level is kept for the ladder.
	aggTargetCoarsest = 64
	// aggLevelFactor is the minimum fine/coarse size ratio between adjacent
	// ladder levels; FC levels that shrink less are skipped.
	aggLevelFactor = 3
	// aggMaxDirect bounds the coarsest level solved with dense LDLᵀ. A
	// hierarchy whose coarsest level stalls above it falls back to Jacobi.
	aggMaxDirect = 1024
	// aggOmega is the damped-Jacobi weight used for both the prolongation
	// smoothing and the V-cycle smoothers.
	aggOmega = 2.0 / 3.0
	// aggSmoothDegCap bounds the row degree up to which prolongation rows
	// are smoothed. Heavier rows (boundary pins of huge nets) keep their
	// piecewise-constant row, which caps the Galerkin fill-in.
	aggSmoothDegCap = 48
	// aggRelTol is the aggregation path's relative stopping tolerance,
	// deliberately looser than cgRelTol. The two floors are not comparable:
	// each path measures the residual in its own M⁻¹ norm, and the V-cycle
	// norm tracks the A-norm within a small constant while the Jacobi norm
	// is far weaker. Measured at 100k cells, 50 Jacobi iterations leave the
	// hard mid-flow solves at a residual reduction of only ~1.5e-1 in the
	// weak norm; a V-cycle-preconditioned solve to aggRelTol lands well past
	// that in the strong norm — a tighter terminal state for a fraction of
	// the iterations. The placer interleaves solves with spreading, so the
	// extra digits Jacobi never reached buy nothing.
	aggRelTol = 5e-2
	// aggSmoothSweeps is the number of Gauss-Seidel sweeps per pre/post
	// smoothing leg — a V(2,2) cycle. The second sweep costs one extra
	// O(nnz) pass but measurably cuts outer CG iterations.
	aggSmoothSweeps = 2
	// aggFirstRound is the first outer round the V-cycle path handles;
	// earlier rounds run plain truncated Jacobi-CG. The round-0 system has
	// no spreading anchors, and the cap-truncated Jacobi solve leaves the
	// seeded jitter in the smooth modes — spatial diversity the bisection
	// spreading unfolds into a good placement. An exact round-0 solve
	// collapses cells onto the quadratic optimum's clump and the flow
	// recovers measurably worse wirelength, so exactness there is a bug,
	// not a feature.
	aggFirstRound = 1
)

// csrMat is one level's operator with the diagonal split out. Off-diagonal
// values carry their true (negative) sign, unlike the placer's offEnt.
type csrMat struct {
	n       int
	diag    []float64
	invDiag []float64
	start   []int32
	col     []int32
	val     []float64
}

func (m *csrMat) mul(v, out []float64) {
	for i := 0; i < m.n; i++ {
		s := m.diag[i] * v[i]
		for k := m.start[i]; k < m.start[i+1]; k++ {
			s += m.val[k] * v[m.col[k]]
		}
		out[i] = s
	}
}

// gsForward runs one forward Gauss-Seidel sweep on z from a zero start
// (caller zeroes z); gsBackward runs the adjoint backward sweep in place.
// The pair keeps the V-cycle symmetric. Both are strictly sequential in a
// fixed row order, hence bit-identical everywhere.
func (m *csrMat) gsForward(r, z []float64) {
	for i := 0; i < m.n; i++ {
		s := r[i]
		for k := m.start[i]; k < m.start[i+1]; k++ {
			s -= m.val[k] * z[m.col[k]]
		}
		z[i] = s * m.invDiag[i]
	}
}

func (m *csrMat) gsBackward(r, z []float64) {
	for i := m.n - 1; i >= 0; i-- {
		s := r[i]
		for k := m.start[i]; k < m.start[i+1]; k++ {
			s -= m.val[k] * z[m.col[k]]
		}
		z[i] = s * m.invDiag[i]
	}
}

// csrP is a prolongation (rows = finer level, cols = coarser) or its
// transpose.
type csrP struct {
	start []int32
	col   []int32
	val   []float64
}

// aggPre holds the preconditioner ladder and scratch.
type aggPre struct {
	nlev int       // number of prolongation levels
	nsz  []int     // level sizes: nsz[0] = fine n .. nsz[nlev] = coarsest
	agg  [][]int32 // agg[k]: level-k index -> level-(k+1) aggregate

	A []csrMat // A[0..nlev]; A[0] mirrors the placer system
	P []csrP   // P[k] prolongates level k+1 to level k
	T []csrP   // P[k]ᵀ (finer rows ascending within each coarse row)
	w csrP     // W = A·P build scratch, reused across levels

	chol  []float64 // dense LDLᵀ factor at the coarsest level (lower part)
	cholD []float64 // pivots (0 = skipped null row)

	rv, zv, tv [][]float64 // per-level cycle vectors

	// Dense accumulation scratch (first-touch ordered flush), sized nsz[1].
	accVal  []float64
	accUsed []bool
	touched []int32
}

// add accumulates v into the dense scratch, recording first touches.
func (a *aggPre) add(c int32, v float64) {
	if !a.accUsed[c] {
		a.accUsed[c] = true
		a.touched = append(a.touched, c)
	}
	a.accVal[c] += v
}

// flushRow drains the dense scratch into a CSR row in first-touch order.
func (a *aggPre) flushRow(cols *[]int32, vals *[]float64) {
	for _, t := range a.touched {
		*cols = append(*cols, t)
		*vals = append(*vals, a.accVal[t])
		a.accUsed[t] = false
		a.accVal[t] = 0
	}
	a.touched = a.touched[:0]
}

// buildHierarchy runs MultilevelFC once, keeping every level, for both the
// preconditioner ladder and the coarse-init warm start. At most once per run.
func (p *placer) buildHierarchy() {
	if p.hierAssigns != nil {
		return
	}
	hv := p.d.ToHypergraph()
	cres := cluster.MultilevelFC(hv.H, cluster.Options{
		TargetClusters:   aggTargetCoarsest,
		Seed:             p.opt.Seed,
		Workers:          p.opt.Workers,
		KeepLevelAssigns: true,
	})
	p.hierAssigns = cres.LevelAssigns
	p.hierCounts = cres.LevelCounts
	if p.hierAssigns == nil {
		p.hierAssigns = [][]int{} // mark built even when FC yields no levels
	}
}

// hierPickAssign returns the stored hierarchy level whose cluster count is
// closest to k, for reuse by the coarse-init warm start. Nil when the
// hierarchy is empty.
func (p *placer) hierPickAssign(k int) []int {
	best := -1
	for j, c := range p.hierCounts {
		if best < 0 || abs(c-k) < abs(p.hierCounts[best]-k) {
			best = j
		}
	}
	if best < 0 {
		return nil
	}
	return p.hierAssigns[best]
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// setupAggregates selects the ladder levels over the movable variables and
// allocates the per-level solve state. Any degenerate outcome leaves p.pre
// nil, falling back to plain Jacobi.
func (p *placer) setupAggregates() {
	if p.opt.Precond < 0 {
		return
	}
	n := len(p.movable)
	if p.opt.Precond == 0 && (n < aggMinCells || p.useCoarseInit()) {
		// The multigrid warm start and this preconditioner are alternative
		// cures for the same smooth-mode stiffness: once the warm start
		// engages (auto at >=200k movable cells) the fine solves start from
		// interpolated coarse positions and truncated Jacobi-CG's implicit
		// trust region preserves them — layering near-exact V-cycle solves
		// on top measured slightly worse HPWL (+1.8% at 1M) for twice the
		// setup cost. Auto mode therefore uses aggregation only in the
		// no-warm-start band; Precond=1 still forces it anywhere.
		return
	}
	p.buildHierarchy()
	if len(p.hierAssigns) == 0 {
		return
	}

	// Compress each stored level to labels over movable variables and keep a
	// subsequence that coarsens by at least aggLevelFactor per step. The
	// coarsest stored level always terminates the ladder so the direct solve
	// stays small even when the last FC passes shrink slowly.
	labs := make([][]int32, 0, len(p.hierAssigns))
	counts := make([]int, 0, len(p.hierAssigns))
	prev := n
	for li, assign := range p.hierAssigns {
		lab, cnt := p.compressOverMovable(assign)
		last := li == len(p.hierAssigns)-1
		if cnt*aggLevelFactor <= prev || (last && (len(counts) == 0 || cnt < counts[len(counts)-1])) {
			labs = append(labs, lab)
			counts = append(counts, cnt)
			prev = cnt
		}
	}
	if len(counts) == 0 || counts[0] >= n || counts[len(counts)-1] > aggMaxDirect {
		return
	}

	a := &aggPre{nlev: len(counts)}
	a.nsz = make([]int, a.nlev+1)
	a.nsz[0] = n
	copy(a.nsz[1:], counts)
	// Chain the per-variable labels into level-to-level aggregate maps. The
	// FC hierarchy nests, so the map from level k to level k+1 is well
	// defined: every level-k cluster has a single level-(k+1) parent.
	a.agg = make([][]int32, a.nlev)
	a.agg[0] = labs[0]
	for k := 1; k < a.nlev; k++ {
		m := make([]int32, counts[k-1])
		for vi := 0; vi < n; vi++ {
			m[labs[k-1][vi]] = labs[k][vi]
		}
		a.agg[k] = m
	}

	a.A = make([]csrMat, a.nlev+1)
	a.P = make([]csrP, a.nlev)
	a.T = make([]csrP, a.nlev)
	a.rv = make([][]float64, a.nlev+1)
	a.zv = make([][]float64, a.nlev+1)
	a.tv = make([][]float64, a.nlev+1)
	for k := 0; k <= a.nlev; k++ {
		sz := a.nsz[k]
		a.A[k].start = make([]int32, sz+1)
		if k > 0 {
			a.A[k].diag = make([]float64, sz)
			a.A[k].invDiag = make([]float64, sz)
			a.rv[k] = make([]float64, sz)
			a.zv[k] = make([]float64, sz)
		}
		a.tv[k] = make([]float64, sz)
		if k < a.nlev {
			a.P[k].start = make([]int32, sz+1)
			a.T[k].start = make([]int32, a.nsz[k+1]+1)
		}
	}
	a.w.start = make([]int32, n+1)
	nc1 := a.nsz[1]
	a.accVal = make([]float64, nc1)
	a.accUsed = make([]bool, nc1)
	a.touched = make([]int32, 0, nc1)
	ncL := a.nsz[a.nlev]
	a.chol = make([]float64, ncL*ncL)
	a.cholD = make([]float64, ncL)
	p.pre = a
	p.cgZ = make([]float64, n)
}

// compressOverMovable remaps one hierarchy level's labels to dense ids over
// the movable variables, in first-touch (ascending variable) order.
func (p *placer) compressOverMovable(assign []int) ([]int32, int) {
	remap := make(map[int]int32, 1024)
	lab := make([]int32, len(p.movable))
	for vi, id := range p.movable {
		c := assign[id]
		r, ok := remap[c]
		if !ok {
			r = int32(len(remap))
			remap[c] = r
		}
		lab[vi] = r
	}
	return lab, len(remap)
}

// aggBuild rebuilds the ladder from the freshly assembled system: mirrors
// the fine operator, builds smoothed P and the Galerkin product level by
// level, and factors the coarsest operator. Called once per axis solve,
// after flattenSystem.
func (p *placer) aggBuild() {
	a := p.pre
	n := len(p.movable)

	// Level 0 mirrors the placer CSR (off-diagonals negated to true values).
	a0 := &a.A[0]
	a0.n = n
	a0.diag = p.diag
	a0.invDiag = p.invDiag
	copy(a0.start, p.offStart)
	nnz := len(p.offEnt)
	if cap(a0.col) < nnz {
		a0.col = make([]int32, nnz)
		a0.val = make([]float64, nnz)
	}
	a0.col = a0.col[:nnz]
	a0.val = a0.val[:nnz]
	for k, e := range p.offEnt {
		a0.col[k] = e.col
		a0.val[k] = -e.w
	}

	for k := 0; k < a.nlev; k++ {
		a.buildP(k)
		a.galerkin(k)
	}
	a.factorCoarsest()
}

// buildP constructs the smoothed prolongation P[k] = (I − ωD⁻¹A)P₀ and its
// transpose. Row i of P is (1−ω) at its own aggregate plus −ω·D⁻¹ᵢᵢ·a_ij at
// each neighbor's aggregate, collapsed by aggregate in first-touch order.
// Heavy or zero-diagonal rows keep the unit P₀ row.
func (a *aggPre) buildP(k int) {
	A := &a.A[k]
	P := &a.P[k]
	agg := a.agg[k]
	P.col = P.col[:0]
	P.val = P.val[:0]
	P.start[0] = 0
	for i := 0; i < A.n; i++ {
		lo, hi := A.start[i], A.start[i+1]
		if int(hi-lo) > aggSmoothDegCap || A.invDiag[i] == 0 {
			P.col = append(P.col, agg[i])
			P.val = append(P.val, 1)
		} else {
			a.add(agg[i], 1-aggOmega)
			s := -aggOmega * A.invDiag[i]
			for e := lo; e < hi; e++ {
				a.add(agg[A.col[e]], s*A.val[e])
			}
			a.flushRow(&P.col, &P.val)
		}
		P.start[i+1] = int32(len(P.col))
	}

	// Transpose by counting sort; finer rows stay ascending per aggregate.
	T := &a.T[k]
	nc := a.nsz[k+1]
	for c := 0; c <= nc; c++ {
		T.start[c] = 0
	}
	for _, c := range P.col {
		T.start[c+1]++
	}
	for c := 0; c < nc; c++ {
		T.start[c+1] += T.start[c]
	}
	nnzP := len(P.col)
	if cap(T.col) < nnzP {
		T.col = make([]int32, nnzP)
		T.val = make([]float64, nnzP)
	}
	T.col = T.col[:nnzP]
	T.val = T.val[:nnzP]
	fill := a.rv[k+1] // borrow a coarse vector as the fill cursor
	for c := 0; c < nc; c++ {
		fill[c] = float64(T.start[c])
	}
	for i := 0; i < A.n; i++ {
		for e := P.start[i]; e < P.start[i+1]; e++ {
			c := P.col[e]
			at := int(fill[c])
			T.col[at] = int32(i)
			T.val[at] = P.val[e]
			fill[c]++
		}
	}
}

// galerkin computes A[k+1] = P[k]ᵀ A[k] P[k], one coarse row at a time:
// row c is Σ_{i : P[i][c]≠0} P[i][c]·W_i with W = A·P, accumulated in
// ascending fine-row order — a fixed association, hence deterministic.
func (a *aggPre) galerkin(k int) {
	A := &a.A[k]
	P := &a.P[k]
	T := &a.T[k]
	W := &a.w
	W.col = W.col[:0]
	W.val = W.val[:0]
	W.start[0] = 0
	for i := 0; i < A.n; i++ {
		di := A.diag[i]
		for e := P.start[i]; e < P.start[i+1]; e++ {
			a.add(P.col[e], di*P.val[e])
		}
		for e := A.start[i]; e < A.start[i+1]; e++ {
			j := A.col[e]
			v := A.val[e]
			for q := P.start[j]; q < P.start[j+1]; q++ {
				a.add(P.col[q], v*P.val[q])
			}
		}
		a.flushRow(&W.col, &W.val)
		W.start[i+1] = int32(len(W.col))
	}

	C := &a.A[k+1]
	nc := a.nsz[k+1]
	C.n = nc
	C.col = C.col[:0]
	C.val = C.val[:0]
	C.start[0] = 0
	for c := 0; c < nc; c++ {
		for t := T.start[c]; t < T.start[c+1]; t++ {
			i := T.col[t]
			pv := T.val[t]
			for e := W.start[i]; e < W.start[i+1]; e++ {
				a.add(W.col[e], pv*W.val[e])
			}
		}
		// Split the diagonal out of the flush.
		d := 0.0
		if a.accUsed[int32(c)] {
			d = a.accVal[int32(c)]
		}
		for _, t := range a.touched {
			if t == int32(c) {
				continue
			}
			C.col = append(C.col, t)
			C.val = append(C.val, a.accVal[t])
		}
		for _, t := range a.touched {
			a.accUsed[t] = false
			a.accVal[t] = 0
		}
		a.touched = a.touched[:0]
		C.diag[c] = d
		C.start[c+1] = int32(len(C.col))
		if d > 0 {
			C.invDiag[c] = 1 / d
		} else {
			C.invDiag[c] = 0
		}
	}
}

// factorCoarsest builds a dense LDLᵀ factorization of the coarsest operator.
// Non-positive pivots (null modes of an unanchored system) are skipped,
// which projects them out of the correction — the cycle stays PSD.
func (a *aggPre) factorCoarsest() {
	A := &a.A[a.nlev]
	n := A.n
	L := a.chol
	for i := range L {
		L[i] = 0
	}
	maxd := 0.0
	for i := 0; i < n; i++ {
		L[i*n+i] = A.diag[i]
		if A.diag[i] > maxd {
			maxd = A.diag[i]
		}
		for e := A.start[i]; e < A.start[i+1]; e++ {
			L[i*n+int(A.col[e])] = A.val[e]
		}
	}
	eps := 1e-12 * maxd
	for j := 0; j < n; j++ {
		d := L[j*n+j]
		for k := 0; k < j; k++ {
			if a.cholD[k] != 0 {
				ljk := L[j*n+k]
				d -= ljk * ljk / a.cholD[k]
			}
		}
		if d <= eps {
			a.cholD[j] = 0
			continue
		}
		a.cholD[j] = d
		for i := j + 1; i < n; i++ {
			s := L[i*n+j]
			for k := 0; k < j; k++ {
				if a.cholD[k] != 0 {
					s -= L[i*n+k] * L[j*n+k] / a.cholD[k]
				}
			}
			L[i*n+j] = s
		}
	}
}

// coarseSolve solves the coarsest system with the LDLᵀ factor. Skipped
// (null) pivots zero the corresponding solution entry.
func (a *aggPre) coarseSolve(r, z []float64) {
	A := &a.A[a.nlev]
	n := A.n
	L := a.chol
	copy(z, r)
	for j := 0; j < n; j++ {
		if a.cholD[j] == 0 {
			z[j] = 0
			continue
		}
		zj := z[j] / a.cholD[j]
		for i := j + 1; i < n; i++ {
			z[i] -= L[i*n+j] * zj
		}
	}
	for j := 0; j < n; j++ {
		if a.cholD[j] != 0 {
			z[j] /= a.cholD[j]
		}
	}
	for j := n - 1; j >= 0; j-- {
		if a.cholD[j] == 0 {
			continue
		}
		var s float64
		for i := j + 1; i < n; i++ {
			s += L[i*n+j] * z[i]
		}
		z[j] -= s / a.cholD[j]
	}
}

// vcycle applies one symmetric V(1,1) cycle at level k: forward
// Gauss-Seidel pre-smooth from zero, coarse-grid correction, backward
// Gauss-Seidel post-smooth (the adjoint pair keeps M symmetric). Level-0
// residual matvecs go through the placer's parallel (fixed-order,
// bit-identical) kernel; smoothing and coarser levels run sequentially.
func (p *placer) vcycle(k int, r, z []float64) {
	a := p.pre
	if k == a.nlev {
		a.coarseSolve(r, z)
		return
	}
	A := &a.A[k]
	n := A.n
	t := a.tv[k]
	for i := 0; i < n; i++ {
		z[i] = 0
	}
	for s := 0; s < aggSmoothSweeps; s++ {
		A.gsForward(r, z)
	}
	p.levelMul(k, z, t)
	for i := 0; i < n; i++ {
		t[i] = r[i] - t[i]
	}
	// Restrict the residual and recurse.
	P := &a.P[k]
	rc := a.rv[k+1]
	for c := range rc {
		rc[c] = 0
	}
	for i := 0; i < n; i++ {
		ti := t[i]
		for e := P.start[i]; e < P.start[i+1]; e++ {
			rc[P.col[e]] += P.val[e] * ti
		}
	}
	p.vcycle(k+1, rc, a.zv[k+1])
	zc := a.zv[k+1]
	for i := 0; i < n; i++ {
		s := z[i]
		for e := P.start[i]; e < P.start[i+1]; e++ {
			s += P.val[e] * zc[P.col[e]]
		}
		z[i] = s
	}
	for s := 0; s < aggSmoothSweeps; s++ {
		A.gsBackward(r, z)
	}
}

// levelMul multiplies by the level-k operator. Level 0 uses the shared
// parallel matvec (same values, same fixed accumulation order).
func (p *placer) levelMul(k int, v, out []float64) {
	if k == 0 {
		p.mulA(v, out)
		return
	}
	p.pre.A[k].mul(v, out)
}

// aggApply computes z = M⁻¹ r with one V-cycle.
func (p *placer) aggApply(r, z []float64) {
	p.vcycle(0, r, z)
}

// cgAgg is the aggregation-preconditioned variant of cg. The Jacobi path in
// cg is kept verbatim so runs without the preconditioner stay bit-identical
// to previous releases.
func (p *placer) cgAgg(xAxis bool) []float64 {
	n := len(p.movable)
	x := p.cgX
	if xAxis {
		copy(x, p.x)
	} else {
		copy(x, p.y)
	}
	p.aggBuild()
	ax, r, d, z := p.cgAx, p.cgR, p.cgD, p.cgZ
	rhs := p.rhs

	p.mulA(x, ax)
	for i := 0; i < n; i++ {
		r[i] = rhs[i] - ax[i]
	}
	p.aggApply(r, z)
	var rz float64
	for i := 0; i < n; i++ {
		rz += r[i] * z[i]
	}
	copy(d, z)

	// Relative floor on the initial residual in the M⁻¹ norm. The Jacobi
	// path floors on the right-hand-side norm, but under proximal damping
	// the rhs carries the (large) μ·diag·x_prev shift while the residual is
	// exactly the undamped one, so the initial residual is the meaningful
	// reference (see aggRelTol for why the constant differs from cgRelTol).
	floor := aggRelTol * aggRelTol * rz
	if floor < 1e-20 {
		floor = 1e-20
	}

	it := 0
	for ; it < p.opt.CGIterations && rz > floor; it++ {
		dad := p.mulADot(d, ax)
		if dad <= 0 {
			break
		}
		alpha := rz / dad
		for i := 0; i < n; i++ {
			x[i] += alpha * d[i]
			r[i] -= alpha * ax[i]
		}
		p.aggApply(r, z)
		var rzNew float64
		for i := 0; i < n; i++ {
			rzNew += r[i] * z[i]
		}
		beta := rzNew / rz
		rz = rzNew
		for i := 0; i < n; i++ {
			d[i] = z[i] + beta*d[i]
		}
	}
	p.cgIters += it
	return x
}


