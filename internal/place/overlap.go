package place

import (
	"math"
	"sort"

	"ppaclust/internal/netlist"
)

// RemoveOverlaps legalizes a placement of large rectangular cells (cluster
// cells, macros) so that no two movable cells overlap and all lie inside the
// core: a greedy floorplan legalizer. Cells are processed in descending area
// order; each keeps its position when legal, otherwise it moves to the
// nearest legal position found by a spiral grid search around its target.
//
// This is the overlap removal a macro-capable seed placer performs before
// region constraints are derived from cluster footprints (Algorithm 1 line
// 18): overlapping regions would confine cells into super-dense boxes.
func RemoveOverlaps(d *netlist.Design) {
	core := d.Core
	type box struct {
		x0, y0, x1, y1 float64
	}
	placed := make([]box, 0, len(d.Insts))
	for _, inst := range d.Insts {
		if inst.Fixed {
			placed = append(placed, box{inst.X, inst.Y, inst.X + inst.Master.Width, inst.Y + inst.Master.Height})
		}
	}
	overlaps := func(b box) bool {
		if b.x0 < core.X0-1e-9 || b.y0 < core.Y0-1e-9 || b.x1 > core.X1+1e-9 || b.y1 > core.Y1+1e-9 {
			return true
		}
		for _, p := range placed {
			if b.x0 < p.x1-1e-9 && p.x0 < b.x1-1e-9 && b.y0 < p.y1-1e-9 && p.y0 < b.y1-1e-9 {
				return true
			}
		}
		return false
	}

	cells := make([]*netlist.Instance, 0, len(d.Insts))
	for _, inst := range d.Insts {
		if !inst.Fixed {
			cells = append(cells, inst)
		}
	}
	sort.Slice(cells, func(i, j int) bool {
		ai := cells[i].Master.Area()
		aj := cells[j].Master.Area()
		if ai != aj {
			return ai > aj
		}
		return cells[i].ID < cells[j].ID
	})

	// Spiral search step: fine enough to pack, coarse enough to stay fast.
	step := math.Max(core.W(), core.H()) / 96
	for _, inst := range cells {
		w, h := inst.Master.Width, inst.Master.Height
		tx := clamp(inst.X, core.X0, core.X1-w)
		ty := clamp(inst.Y, core.Y0, core.Y1-h)
		b := box{tx, ty, tx + w, ty + h}
		if !overlaps(b) {
			inst.X, inst.Y, inst.Placed = tx, ty, true
			placed = append(placed, b)
			continue
		}
		found := false
		maxR := int(math.Max(core.W(), core.H())/step) + 2
		for r := 1; r <= maxR && !found; r++ {
			// Ring of candidate offsets at radius r.
			for _, off := range ringOffsets(r) {
				x := clamp(tx+float64(off[0])*step, core.X0, core.X1-w)
				y := clamp(ty+float64(off[1])*step, core.Y0, core.Y1-h)
				cb := box{x, y, x + w, y + h}
				if !overlaps(cb) {
					inst.X, inst.Y, inst.Placed = x, y, true
					placed = append(placed, cb)
					found = true
					break
				}
			}
		}
		if !found {
			// Core too full to host this cell without overlap; keep the
			// clamped position (callers see a best-effort result).
			inst.X, inst.Y, inst.Placed = tx, ty, true
			placed = append(placed, b)
		}
	}
}

// ringOffsets enumerates the lattice ring at Chebyshev radius r.
func ringOffsets(r int) [][2]int {
	out := make([][2]int, 0, 8*r)
	for dx := -r; dx <= r; dx++ {
		out = append(out, [2]int{dx, -r}, [2]int{dx, r})
	}
	for dy := -r + 1; dy < r; dy++ {
		out = append(out, [2]int{-r, dy}, [2]int{r, dy})
	}
	return out
}

// OverlapArea returns the total pairwise overlap area between movable cells
// (diagnostic used by tests and the flow's assertions).
func OverlapArea(d *netlist.Design) float64 {
	cells := make([]*netlist.Instance, 0, len(d.Insts))
	for _, inst := range d.Insts {
		if inst.Placed || inst.Fixed {
			cells = append(cells, inst)
		}
	}
	var total float64
	for i := 0; i < len(cells); i++ {
		for j := i + 1; j < len(cells); j++ {
			a, b := cells[i], cells[j]
			ox := overlap1d(a.X, a.X+a.Master.Width, b.X, b.X+b.Master.Width)
			oy := overlap1d(a.Y, a.Y+a.Master.Height, b.Y, b.Y+b.Master.Height)
			total += ox * oy
		}
	}
	return total
}
