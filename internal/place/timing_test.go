package place

import (
	"math"
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/netlist"
	"ppaclust/internal/sta"
)

// drivenSpec is large enough that the placement is genuinely congested —
// the routability checkpoints only inflate when some GCell sits above the
// hotspot threshold, which never happens on the tiny benchmark.
func drivenSpec(seed int64) designs.Spec {
	return designs.ScaleSpec(6000, seed)
}

func drivenOptions(b *designs.Benchmark) Options {
	return Options{
		Seed:              1,
		TimingDriven:      true,
		RoutabilityDriven: true,
		TimingCons:        b.Cons,
	}
}

// TestTimingDrivenWorkersEquivalent extends the placer's bit-identity
// contract to the feedback path: with timing reweighting and congestion
// inflation enabled, every worker count must produce bit-identical
// positions and results, and the feedback must actually have fired.
func TestTimingDrivenWorkersEquivalent(t *testing.T) {
	b := designs.Generate(drivenSpec(91))
	ds := b.Design.Clone()
	dp := b.Design.Clone()
	opt := drivenOptions(b)
	os := opt
	os.Workers = 1
	op := opt
	op.Workers = 8
	rs := Global(ds, os)
	rp := Global(dp, op)
	if rs.TimingReweights == 0 {
		t.Fatal("no timing checkpoint fired; the test design is too easy")
	}
	if rs.RouteInflations == 0 {
		t.Fatal("no inflation checkpoint fired; the test design is not congested")
	}
	if math.Float64bits(rs.HPWL) != math.Float64bits(rp.HPWL) ||
		rs.Iterations != rp.Iterations ||
		rs.TimingReweights != rp.TimingReweights ||
		rs.RouteInflations != rp.RouteInflations ||
		math.Float64bits(rs.Overflow) != math.Float64bits(rp.Overflow) {
		t.Fatalf("results differ: seq %+v par %+v", rs, rp)
	}
	for i := range ds.Insts {
		a, b := ds.Insts[i], dp.Insts[i]
		if math.Float64bits(a.X) != math.Float64bits(b.X) ||
			math.Float64bits(a.Y) != math.Float64bits(b.Y) {
			t.Fatalf("instance %s placed at (%v,%v) seq vs (%v,%v) par",
				a.Name, a.X, a.Y, b.X, b.Y)
		}
	}
}

// TestTimingDrivenDeterministic asserts that two identical timing-driven
// runs fire the same checkpoints and produce identical placements — the
// checkpoint schedule is a pure function of the overflow sequence.
func TestTimingDrivenDeterministic(t *testing.T) {
	b := designs.Generate(drivenSpec(92))
	d1 := b.Design.Clone()
	d2 := b.Design.Clone()
	opt := drivenOptions(b)
	r1 := Global(d1, opt)
	r2 := Global(d2, opt)
	if math.Float64bits(r1.HPWL) != math.Float64bits(r2.HPWL) ||
		r1.Iterations != r2.Iterations ||
		r1.TimingReweights != r2.TimingReweights ||
		r1.RouteInflations != r2.RouteInflations ||
		math.Float64bits(r1.Overflow) != math.Float64bits(r2.Overflow) {
		t.Fatalf("repeat run differs: %+v vs %+v", r1, r2)
	}
	for i := range d1.Insts {
		a, b := d1.Insts[i], d2.Insts[i]
		if math.Float64bits(a.X) != math.Float64bits(b.X) ||
			math.Float64bits(a.Y) != math.Float64bits(b.Y) {
			t.Fatalf("instance %s moved between identical runs", a.Name)
		}
	}
}

// TestTimingDrivenImprovesTNS is the quality gate for the feedback loop:
// on a congested design, timing-driven placement must improve TNS without
// costing more than a bounded HPWL ratio.
func TestTimingDrivenImprovesTNS(t *testing.T) {
	b := designs.Generate(drivenSpec(93))
	base := b.Design.Clone()
	td := b.Design.Clone()
	rb := Global(base, Options{Seed: 1})
	rt := Global(td, drivenOptions(b))
	tnsOf := func(d *netlist.Design) float64 {
		a := sta.New(d, b.Cons)
		return a.Timing().TNS
	}
	baseTNS, tdTNS := tnsOf(base), tnsOf(td)
	if tdTNS < baseTNS {
		t.Fatalf("timing-driven TNS %v worse than baseline %v", tdTNS, baseTNS)
	}
	if rt.HPWL > 1.05*rb.HPWL {
		t.Fatalf("timing-driven HPWL %v exceeds 1.05x baseline %v", rt.HPWL, rb.HPWL)
	}
}

// TestOverflowMeasuredAfterLegalize is the regression for Result.Overflow
// being sampled mid-loop: with legalization on, the reported overflow must
// describe the final (legalized) positions, not the last spreading round.
func TestOverflowMeasuredAfterLegalize(t *testing.T) {
	d := designs.Generate(designs.TinySpec(94)).Design
	res := Global(d, Options{Seed: 2, Legalize: true})
	// Recompute the bin overflow from the design's final coordinates with an
	// independent placer instance and compare bit-for-bit.
	p := &placer{d: d, opt: Options{Seed: 2, Legalize: true}.withDefaults(d), core: d.Core, workers: 1}
	p.collect()
	want := p.finalOverflow()
	if math.Float64bits(res.Overflow) != math.Float64bits(want) {
		t.Fatalf("Result.Overflow %v != post-legalize overflow %v", res.Overflow, want)
	}
}
