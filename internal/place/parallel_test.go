package place

import (
	"math"
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/netlist"
)

// TestGlobalWorkersEquivalent asserts the determinism contract for the
// placer: Workers=N produces bit-identical positions, HPWL and overflow to
// Workers=1, in both from-scratch and incremental mode.
func TestGlobalWorkersEquivalent(t *testing.T) {
	run := func(t *testing.T, d *netlist.Design, opt Options) {
		ds := d.Clone()
		dp := d.Clone()
		os := opt
		os.Workers = 1
		op := opt
		op.Workers = 4
		rs := Global(ds, os)
		rp := Global(dp, op)
		if math.Float64bits(rs.HPWL) != math.Float64bits(rp.HPWL) ||
			rs.Iterations != rp.Iterations ||
			math.Float64bits(rs.Overflow) != math.Float64bits(rp.Overflow) {
			t.Fatalf("results differ: seq %+v par %+v", rs, rp)
		}
		for i := range ds.Insts {
			a, b := ds.Insts[i], dp.Insts[i]
			if math.Float64bits(a.X) != math.Float64bits(b.X) ||
				math.Float64bits(a.Y) != math.Float64bits(b.Y) {
				t.Fatalf("instance %s placed at (%v,%v) seq vs (%v,%v) par",
					a.Name, a.X, a.Y, b.X, b.Y)
			}
		}
	}
	t.Run("scratch", func(t *testing.T) {
		d := designs.Generate(designs.TinySpec(31)).Design
		run(t, d, Options{Seed: 3, Legalize: true})
	})
	t.Run("incremental", func(t *testing.T) {
		d := designs.Generate(designs.TinySpec(32)).Design
		Global(d, Options{Seed: 4}) // seed positions
		run(t, d, Options{Seed: 5, Incremental: true})
	})
}

// TestGlobalCoarseInitWorkersEquivalent forces the multigrid warm start on a
// design far below its auto threshold and asserts the full pipeline —
// clustering, the coarse solve, spiral interpolation, fine refinement — is
// bit-identical across worker counts.
func TestGlobalCoarseInitWorkersEquivalent(t *testing.T) {
	d := designs.Generate(designs.TinySpec(33)).Design
	ds := d.Clone()
	dp := d.Clone()
	rs := Global(ds, Options{Seed: 6, Workers: 1, CoarseInit: 1})
	rp := Global(dp, Options{Seed: 6, Workers: 4, CoarseInit: 1})
	if math.Float64bits(rs.HPWL) != math.Float64bits(rp.HPWL) ||
		rs.Iterations != rp.Iterations ||
		rs.CGIterations != rp.CGIterations ||
		math.Float64bits(rs.Overflow) != math.Float64bits(rp.Overflow) {
		t.Fatalf("results differ: seq %+v par %+v", rs, rp)
	}
	for i := range ds.Insts {
		a, b := ds.Insts[i], dp.Insts[i]
		if math.Float64bits(a.X) != math.Float64bits(b.X) ||
			math.Float64bits(a.Y) != math.Float64bits(b.Y) {
			t.Fatalf("instance %s placed at (%v,%v) seq vs (%v,%v) par",
				a.Name, a.X, a.Y, b.X, b.Y)
		}
	}
	// The warm start must actually have engaged: a coarse-solved start
	// differs from the center-seeded flat solve.
	dflat := d.Clone()
	rf := Global(dflat, Options{Seed: 6, Workers: 1, CoarseInit: -1})
	if math.Float64bits(rf.HPWL) == math.Float64bits(rs.HPWL) &&
		rf.CGIterations == rs.CGIterations {
		t.Fatal("CoarseInit:1 produced the flat-solve result; warm start did not engage")
	}
}
