// External equivalence tests on generated designs (internal/designs imports
// sta, so these live in package sta_test to avoid an import cycle).
package sta_test

import (
	"math"
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/sta"
)

// TestAnalyzerWorkersEquivalent asserts the determinism contract on full
// generated benchmarks: per-net slacks, the timing summary and net activity
// are bit-identical between Workers=1 and Workers=8, placed or not.
func TestAnalyzerWorkersEquivalent(t *testing.T) {
	for _, name := range []string{"aes", "jpeg"} {
		t.Run(name, func(t *testing.T) {
			spec, ok := designs.Named(name)
			if !ok {
				t.Fatalf("unknown design %s", name)
			}
			spec.TargetInsts = 800
			b := designs.Generate(spec)

			seq := sta.New(b.Design, b.Cons)
			seq.Workers = 1
			pp := sta.New(b.Design, b.Cons)
			pp.Workers = 8
			if !pp.ParallelScheduled() {
				t.Fatal("parallel schedule rejected a generated design")
			}
			seq.Run()
			pp.Run()

			ss, ps := seq.NetSlack(), pp.NetSlack()
			if len(ss) != len(ps) {
				t.Fatal("net slack length mismatch")
			}
			for i := range ss {
				if math.Float64bits(ss[i]) != math.Float64bits(ps[i]) {
					t.Fatalf("net %d slack %v (seq) vs %v (par)", i, ss[i], ps[i])
				}
			}
			st, pt := seq.Timing(), pp.Timing()
			if math.Float64bits(st.WNS) != math.Float64bits(pt.WNS) ||
				math.Float64bits(st.TNS) != math.Float64bits(pt.TNS) ||
				st.Endpoints != pt.Endpoints || st.Failing != pt.Failing {
				t.Fatalf("summary differs: seq %+v par %+v", st, pt)
			}
			sa, pa := seq.NetActivity(), pp.NetActivity()
			for i := range sa {
				if math.Float64bits(sa[i]) != math.Float64bits(pa[i]) {
					t.Fatalf("net %d activity %v (seq) vs %v (par)", i, sa[i], pa[i])
				}
			}
		})
	}
}
