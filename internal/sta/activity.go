package sta

import (
	"strings"

	"ppaclust/internal/netlist"
)

// Vectorless switching-activity propagation, the reproduction's equivalent of
// OpenSTA's findClkedActivity. Activities are expressed in toggles per clock
// cycle. Clock nets toggle twice per cycle; data inputs start at
// Constraints.InputActivity; gate outputs derive from input activities via a
// per-function attenuation factor (the standard lag-one vectorless model).

// activityFactor returns the output/input activity ratio for a master,
// inferred from its name family. Unknown cells behave like buffers.
func activityFactor(master string) float64 {
	u := strings.ToUpper(master)
	switch {
	case strings.HasPrefix(u, "XOR"), strings.HasPrefix(u, "XNOR"):
		return 1.5 // XOR-class gates amplify toggling
	case strings.HasPrefix(u, "NAND"), strings.HasPrefix(u, "AND"),
		strings.HasPrefix(u, "NOR"), strings.HasPrefix(u, "OR"),
		strings.HasPrefix(u, "AOI"), strings.HasPrefix(u, "OAI"):
		return 0.75 // masking gates attenuate
	case strings.HasPrefix(u, "MUX"):
		return 0.9
	default:
		return 1.0 // INV/BUF and unknown
	}
}

const clockActivity = 2.0 // two transitions per cycle

// runActivity propagates activities over the topological order.
func (a *Analyzer) runActivity() {
	if a.actDone {
		return
	}
	n := a.numNodes()
	act := make([]float64, n)
	// Per-master activity factors, memoized by master identity so the hot
	// loop never re-parses cell-name prefixes.
	factors := make(map[*netlist.Master]float64)
	factorOf := func(m *netlist.Master) float64 {
		if f, ok := factors[m]; ok {
			return f
		}
		f := activityFactor(m.Name)
		factors[m] = f
		return f
	}
	// Seeds.
	for i := 0; i < n; i++ {
		if a.kind[i] != nodePortIn {
			continue
		}
		if a.isClk[i] {
			act[i] = clockActivity
		} else {
			act[i] = a.cons.InputActivity
		}
	}
	for _, v := range a.topo {
		// Registers resample: Q toggles at most once per cycle, at half the
		// data rate (lag-one model), regardless of clock activity.
		for _, ei := range a.inEdge[a.inOff[v]:a.inOff[v+1]] {
			if !a.isLaunchEdge(ei) {
				continue
			}
			// Find the D-pin activity of the same instance.
			dAct := a.cons.InputActivity
			inst := a.nodeInst[v]
			m := a.d.Insts[inst].Master
			base := a.instPinStart[inst]
			for pi := range m.Pins {
				mp := &m.Pins[pi]
				if mp.Dir != netlist.DirInput || mp.Clock {
					continue
				}
				if dn := a.pinNode[base+int32(pi)]; dn >= 0 {
					dAct = act[dn]
					break
				}
			}
			q := 0.5 * dAct
			if q > 1 {
				q = 1
			}
			if q > act[v] {
				act[v] = q
			}
		}
		for _, ei := range a.outEdge[a.outOff[v]:a.outOff[v+1]] {
			if a.isLaunchEdge(ei) {
				continue
			}
			to := a.eTo[ei]
			var propagated float64
			if a.eArc[ei] != nil {
				propagated = act[v] * factorOf(a.d.Insts[a.nodeInst[to]].Master)
			} else {
				propagated = act[v] // wires carry activity unchanged
			}
			if a.isClk[to] {
				propagated = clockActivity
			}
			if propagated > act[to] {
				act[to] = propagated
			}
		}
	}
	a.activity = act
	a.actDone = true
}

// NetActivity returns the switching activity (toggles/cycle) of every net,
// taken from the net's driver output. Undriven nets report zero. Clock nets
// report the clock activity.
func (a *Analyzer) NetActivity() []float64 {
	a.runActivity()
	c := a.d.Compact()
	out := make([]float64, len(a.d.Nets))
	for ni, net := range a.d.Nets {
		if kd := c.NetDrv[ni]; kd >= 0 {
			if dn := a.nodeOfSlot(c, kd); dn >= 0 {
				out[ni] = a.activity[dn]
			}
		}
		if net.Clock {
			out[ni] = clockActivity
		}
	}
	return out
}

// PinActivity returns the switching activity at one pin (0 if unknown).
func (a *Analyzer) PinActivity(id PinID) float64 {
	a.runActivity()
	if n, ok := a.nodeOfPin(id); ok {
		return a.activity[n]
	}
	return 0
}
