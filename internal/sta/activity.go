package sta

import (
	"strings"

	"ppaclust/internal/netlist"
)

// Vectorless switching-activity propagation, the reproduction's equivalent of
// OpenSTA's findClkedActivity. Activities are expressed in toggles per clock
// cycle. Clock nets toggle twice per cycle; data inputs start at
// Constraints.InputActivity; gate outputs derive from input activities via a
// per-function attenuation factor (the standard lag-one vectorless model).

// activityFactor returns the output/input activity ratio for a master,
// inferred from its name family. Unknown cells behave like buffers.
func activityFactor(master string) float64 {
	u := strings.ToUpper(master)
	switch {
	case strings.HasPrefix(u, "XOR"), strings.HasPrefix(u, "XNOR"):
		return 1.5 // XOR-class gates amplify toggling
	case strings.HasPrefix(u, "NAND"), strings.HasPrefix(u, "AND"),
		strings.HasPrefix(u, "NOR"), strings.HasPrefix(u, "OR"),
		strings.HasPrefix(u, "AOI"), strings.HasPrefix(u, "OAI"):
		return 0.75 // masking gates attenuate
	case strings.HasPrefix(u, "MUX"):
		return 0.9
	default:
		return 1.0 // INV/BUF and unknown
	}
}

const clockActivity = 2.0 // two transitions per cycle

// runActivity propagates activities over the topological order.
func (a *Analyzer) runActivity() {
	if a.actDone {
		return
	}
	act := make([]float64, len(a.nodes))
	// Seeds.
	for i := range a.nodes {
		nd := &a.nodes[i]
		if nd.kind != nodePortIn {
			continue
		}
		if nd.isClk {
			act[i] = clockActivity
		} else {
			act[i] = a.cons.InputActivity
		}
	}
	for _, v := range a.topo {
		nd := &a.nodes[v]
		// Registers resample: Q toggles at most once per cycle, at half the
		// data rate (lag-one model), regardless of clock activity.
		for _, ei := range a.in[v] {
			e := &a.edges[ei]
			if e.isCell && e.arc.Kind == netlist.ArcClkToQ {
				// Find the D-pin activity of the same instance.
				dAct := a.cons.InputActivity
				inst := a.d.Insts[nd.id.Inst]
				for pi := range inst.Master.Pins {
					mp := &inst.Master.Pins[pi]
					if mp.Dir != netlist.DirInput || mp.Clock {
						continue
					}
					if n, ok := a.nodeOf[PinID{nd.id.Inst, mp.Name}]; ok {
						dAct = act[n]
						break
					}
				}
				q := 0.5 * dAct
				if q > 1 {
					q = 1
				}
				if q > act[v] {
					act[v] = q
				}
			}
		}
		for _, ei := range a.out[v] {
			e := &a.edges[ei]
			if e.isCell && e.arc.Kind == netlist.ArcClkToQ {
				continue
			}
			to := e.to
			var propagated float64
			if e.isCell {
				propagated = act[v] * activityFactor(a.d.Insts[a.nodes[to].id.Inst].Master.Name)
			} else {
				propagated = act[v] // wires carry activity unchanged
			}
			if a.nodes[to].isClk {
				propagated = clockActivity
			}
			if propagated > act[to] {
				act[to] = propagated
			}
		}
	}
	a.activity = act
	a.actDone = true
}

// NetActivity returns the switching activity (toggles/cycle) of every net,
// taken from the net's driver output. Undriven nets report zero. Clock nets
// report the clock activity.
func (a *Analyzer) NetActivity() []float64 {
	a.runActivity()
	out := make([]float64, len(a.d.Nets))
	for _, net := range a.d.Nets {
		drv, ok := a.d.Driver(net)
		if !ok {
			continue
		}
		if n, found := a.nodeOf[PinID{drv.Inst, drv.Pin}]; found {
			out[net.ID] = a.activity[n]
		}
		if net.Clock {
			out[net.ID] = clockActivity
		}
	}
	return out
}

// PinActivity returns the switching activity at one pin (0 if unknown).
func (a *Analyzer) PinActivity(id PinID) float64 {
	a.runActivity()
	if n, ok := a.nodeOf[id]; ok {
		return a.activity[n]
	}
	return 0
}
