package sta

import (
	"fmt"
	"io"
)

// WriteReport renders the worst maxPaths timing paths in the familiar
// report_checks style: per-point incremental and cumulative arrival times,
// the required time, and the slack verdict.
func (a *Analyzer) WriteReport(w io.Writer, maxPaths int) error {
	a.Run()
	paths := a.TopPaths(maxPaths)
	if len(paths) == 0 {
		_, err := fmt.Fprintln(w, "No constrained paths.")
		return err
	}
	for pi, p := range paths {
		fmt.Fprintf(w, "Path %d: endpoint %s\n", pi+1, a.pinName(p.Endpoint))
		fmt.Fprintf(w, "%12s %12s  %s\n", "Delay", "Time", "Point")
		prev := 0.0
		first := true
		for _, pin := range p.Pins {
			at, ok := a.ArrivalAt(pin)
			if !ok {
				continue
			}
			incr := at - prev
			if first {
				incr = at
				first = false
			}
			fmt.Fprintf(w, "%12.1f %12.1f  %s\n", incr*1e12, at*1e12, a.pinName(pin))
			prev = at
		}
		rat := prev + p.Slack
		fmt.Fprintf(w, "%12s %12.1f  data required time\n", "", rat*1e12)
		verdict := "MET"
		if p.Slack < 0 {
			verdict = "VIOLATED"
		}
		fmt.Fprintf(w, "%12s %12.1f  slack (%s)\n\n", "", p.Slack*1e12, verdict)
	}
	sum := a.Timing()
	_, err := fmt.Fprintf(w, "wns %.1f ps   tns %.3f ns   %d/%d endpoints failing\n",
		sum.WNS*1e12, sum.TNS*1e9, sum.Failing, sum.Endpoints)
	return err
}

func (a *Analyzer) pinName(id PinID) string {
	if id.Inst < 0 {
		return "port " + id.Pin
	}
	return a.d.Insts[id.Inst].Name + "/" + id.Pin + " (" + a.d.Insts[id.Inst].Master.Name + ")"
}
