package sta

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ppaclust/internal/netlist"
)

// refAnalyzer is the pre-CSR, map-based timing analyzer kept verbatim as a
// test oracle: nodes keyed by PinID through a hash map, pointer-API netlist
// walks (Design.Driver, PinPos, NetHPWL), AoS node records. The production
// Analyzer rebuilt the same graph on netlist.Compact with SoA value arrays;
// these tests pin the rewrite to the original bit for bit.
type refAnalyzer struct {
	d    *netlist.Design
	cons Constraints

	nodes   []refNode
	edges   []refEdge
	in      [][]int
	out     [][]int
	nodeOf  map[PinID]int
	topo    []int
	netLoad []float64

	clockArrival map[int]float64
	derate       Derate
}

type refEdge struct {
	from, to int
	isCell   bool
	arc      *netlist.TimingArc
	wireLen  float64
}

type refNode struct {
	id      PinID
	kind    nodeKind
	net     int
	at      float64
	rat     float64
	slew    float64
	hasAT   bool
	hasRAT  bool
	isClk   bool
	endp    bool
}

func newRef(d *netlist.Design, cons Constraints) *refAnalyzer {
	r := &refAnalyzer{d: d, cons: cons, nodeOf: make(map[PinID]int)}
	r.build()
	return r
}

func (r *refAnalyzer) addNode(id PinID, kind nodeKind) int {
	if idx, ok := r.nodeOf[id]; ok {
		return idx
	}
	idx := len(r.nodes)
	r.nodes = append(r.nodes, refNode{id: id, kind: kind, net: -1})
	r.nodeOf[id] = idx
	return idx
}

func (r *refAnalyzer) addEdge(e refEdge) {
	idx := len(r.edges)
	r.edges = append(r.edges, e)
	r.out[e.from] = append(r.out[e.from], idx)
	r.in[e.to] = append(r.in[e.to], idx)
}

func (r *refAnalyzer) build() {
	d := r.d
	clockPorts := make(map[string]bool)
	for _, p := range r.cons.ClockPorts {
		clockPorts[p] = true
	}
	for _, p := range d.Ports {
		kind := nodePortIn
		if p.Dir == netlist.DirOutput {
			kind = nodePortOut
		}
		n := r.addNode(PinID{Inst: -1, Pin: p.Name}, kind)
		if clockPorts[p.Name] {
			r.nodes[n].isClk = true
		}
	}
	for _, net := range d.Nets {
		for _, pr := range net.Pins {
			if pr.IsPort() {
				continue
			}
			mp := d.Insts[pr.Inst].Master.Pin(pr.Pin)
			if mp == nil {
				continue
			}
			kind := nodeInput
			if mp.Dir == netlist.DirOutput {
				kind = nodeOutput
			}
			r.addNode(PinID{pr.Inst, pr.Pin}, kind)
		}
	}
	r.in = make([][]int, len(r.nodes))
	r.out = make([][]int, len(r.nodes))
	r.netLoad = make([]float64, len(d.Nets))

	for _, net := range d.Nets {
		drv, ok := d.Driver(net)
		if !ok {
			continue
		}
		drvNode := r.nodeOf[PinID{drv.Inst, drv.Pin}]
		dx, dy := d.PinPos(drv)
		var load float64
		for _, pr := range net.Pins {
			if pr == drv {
				continue
			}
			var sinkNode int
			if pr.IsPort() {
				port := d.Port(pr.Pin)
				if port == nil || port.Dir != netlist.DirOutput {
					continue
				}
				sinkNode = r.nodeOf[PinID{-1, pr.Pin}]
				load += r.cons.PortCap
			} else {
				mp := d.Insts[pr.Inst].Master.Pin(pr.Pin)
				if mp == nil || mp.Dir == netlist.DirOutput {
					continue
				}
				sinkNode = r.nodeOf[PinID{pr.Inst, pr.Pin}]
				load += mp.Cap
			}
			wl := 0.0
			if !r.cons.ZeroWire {
				sx, sy := d.PinPos(pr)
				wl = math.Abs(sx-dx) + math.Abs(sy-dy)
			}
			r.addEdge(refEdge{from: drvNode, to: sinkNode, wireLen: wl})
			r.nodes[sinkNode].net = net.ID
		}
		r.nodes[drvNode].net = net.ID
		if r.cons.ZeroWire {
			r.netLoad[net.ID] = load
		} else {
			r.netLoad[net.ID] = load + WireCapPerMicron*d.NetHPWL(net)
		}
	}

	for _, inst := range d.Insts {
		for pi := range inst.Master.Pins {
			mp := &inst.Master.Pins[pi]
			if mp.Dir != netlist.DirOutput {
				continue
			}
			toNode, ok := r.nodeOf[PinID{inst.ID, mp.Name}]
			if !ok {
				continue
			}
			for ai := range mp.Arcs {
				arc := &mp.Arcs[ai]
				if arc.Kind != netlist.ArcComb && arc.Kind != netlist.ArcClkToQ {
					continue
				}
				fromNode, ok := r.nodeOf[PinID{inst.ID, arc.From}]
				if !ok {
					continue
				}
				r.addEdge(refEdge{from: fromNode, to: toNode, isCell: true, arc: arc})
			}
		}
	}

	// Clock marking.
	var queue []int
	for i := range r.nodes {
		if r.nodes[i].isClk {
			queue = append(queue, i)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		n := queue[qi]
		for _, ei := range r.out[n] {
			e := &r.edges[ei]
			to := &r.nodes[e.to]
			if to.isClk {
				continue
			}
			if e.isCell && e.arc.Kind != netlist.ArcComb {
				continue
			}
			to.isClk = true
			queue = append(queue, e.to)
		}
	}
	for i := range r.nodes {
		nd := &r.nodes[i]
		if nd.id.Inst >= 0 {
			mp := d.Insts[nd.id.Inst].Master.Pin(nd.id.Pin)
			if mp != nil && mp.Clock {
				nd.isClk = true
			}
		}
	}
	// Endpoints.
	for i := range r.nodes {
		nd := &r.nodes[i]
		switch nd.kind {
		case nodePortOut:
			nd.endp = true
		case nodeInput:
			mp := d.Insts[nd.id.Inst].Master.Pin(nd.id.Pin)
			if mp != nil {
				for ai := range mp.Arcs {
					if mp.Arcs[ai].Kind == netlist.ArcSetup {
						nd.endp = true
					}
				}
			}
		}
	}

	// Kahn topo sort with launch arcs excluded, IDs appended on cycles.
	n := len(r.nodes)
	indeg := make([]int, n)
	enabled := make([]bool, len(r.edges))
	for ei, e := range r.edges {
		if e.isCell && e.arc.Kind == netlist.ArcClkToQ {
			continue
		}
		enabled[ei] = true
		indeg[e.to]++
	}
	q := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			q = append(q, i)
		}
	}
	order := make([]int, 0, n)
	for qi := 0; qi < len(q); qi++ {
		v := q[qi]
		order = append(order, v)
		for _, ei := range r.out[v] {
			if !enabled[ei] {
				continue
			}
			t := r.edges[ei].to
			indeg[t]--
			if indeg[t] == 0 {
				q = append(q, t)
			}
		}
	}
	if len(order) < n {
		seen := make([]bool, n)
		for _, v := range order {
			seen[v] = true
		}
		for i := 0; i < n; i++ {
			if !seen[i] {
				order = append(order, i)
			}
		}
	}
	r.topo = order
}

func (r *refAnalyzer) setClockArrivals(arrivals map[PinID]float64) {
	if arrivals == nil {
		r.clockArrival = nil
		return
	}
	r.clockArrival = make(map[int]float64, len(arrivals))
	for id, t := range arrivals {
		if n, ok := r.nodeOf[id]; ok {
			r.clockArrival[n] = t
		}
	}
}

func (r *refAnalyzer) clockAtInst(inst int, clkPin string) float64 {
	if r.clockArrival == nil {
		return 0
	}
	if n, ok := r.nodeOf[PinID{inst, clkPin}]; ok {
		return r.clockArrival[n]
	}
	return 0
}

func (r *refAnalyzer) loadOf(outNode int) float64 {
	netID := r.nodes[outNode].net
	if netID < 0 {
		return 0
	}
	return r.netLoad[netID]
}

func (r *refAnalyzer) sinkCap(sinkNode int) float64 {
	nd := &r.nodes[sinkNode]
	if nd.id.Inst < 0 {
		return r.cons.PortCap
	}
	mp := r.d.Insts[nd.id.Inst].Master.Pin(nd.id.Pin)
	if mp == nil {
		return 0
	}
	return mp.Cap
}

func (r *refAnalyzer) run() {
	for i := range r.nodes {
		nd := &r.nodes[i]
		nd.at = math.Inf(-1)
		nd.hasAT = false
		nd.slew = r.cons.InputSlew
		if nd.kind == nodePortIn {
			if nd.isClk {
				nd.at = 0
			} else {
				nd.at = r.cons.InputDelay
			}
			nd.hasAT = true
		}
	}
	for _, v := range r.topo {
		nd := &r.nodes[v]
		for _, ei := range r.in[v] {
			e := &r.edges[ei]
			if !e.isCell || e.arc.Kind != netlist.ArcClkToQ {
				continue
			}
			load := r.loadOf(v)
			clkAt := r.clockAtInst(nd.id.Inst, e.arc.From)
			slewIn := r.nodes[e.from].slew
			at := clkAt + r.derate.late()*e.arc.Delay.Lookup(slewIn, load)
			if at > nd.at {
				nd.at = at
				nd.hasAT = true
				nd.slew = e.arc.Slew.Lookup(slewIn, load)
			}
		}
		if !nd.hasAT {
			continue
		}
		for _, ei := range r.out[v] {
			e := &r.edges[ei]
			if e.isCell && e.arc.Kind == netlist.ArcClkToQ {
				continue
			}
			to := &r.nodes[e.to]
			var at, slew float64
			if e.isCell {
				load := r.loadOf(e.to)
				at = nd.at + r.derate.late()*e.arc.Delay.Lookup(nd.slew, load)
				slew = e.arc.Slew.Lookup(nd.slew, load)
			} else {
				sinkCap := r.sinkCap(e.to)
				wd := r.derate.late() * WireResPerMicron * e.wireLen * (WireCapPerMicron*e.wireLen/2 + sinkCap)
				at = nd.at + wd
				slew = nd.slew + 0.2*wd
			}
			if at > to.at {
				to.at = at
				to.hasAT = true
				to.slew = slew
			}
		}
	}

	T := r.cons.ClockPeriod
	for i := range r.nodes {
		nd := &r.nodes[i]
		nd.rat = math.Inf(1)
		nd.hasRAT = false
	}
	for i := range r.nodes {
		nd := &r.nodes[i]
		if !nd.endp {
			continue
		}
		switch nd.kind {
		case nodePortOut:
			nd.rat = T - r.cons.OutputDelay
			nd.hasRAT = true
		case nodeInput:
			mp := r.d.Insts[nd.id.Inst].Master.Pin(nd.id.Pin)
			for ai := range mp.Arcs {
				arc := &mp.Arcs[ai]
				if arc.Kind != netlist.ArcSetup {
					continue
				}
				setup := arc.Delay.Lookup(nd.slew, 0)
				captureClk := r.clockAtInst(nd.id.Inst, arc.From)
				rat := T + captureClk - setup
				if rat < nd.rat {
					nd.rat = rat
					nd.hasRAT = true
				}
			}
		}
	}
	for i := len(r.topo) - 1; i >= 0; i-- {
		v := r.topo[i]
		nd := &r.nodes[v]
		if !nd.hasRAT {
			continue
		}
		for _, ei := range r.in[v] {
			e := &r.edges[ei]
			if e.isCell && e.arc.Kind == netlist.ArcClkToQ {
				continue
			}
			from := &r.nodes[e.from]
			var rat float64
			if e.isCell {
				load := r.loadOf(v)
				rat = nd.rat - r.derate.late()*e.arc.Delay.Lookup(from.slew, load)
			} else {
				sinkCap := r.sinkCap(v)
				wd := r.derate.late() * WireResPerMicron * e.wireLen * (WireCapPerMicron*e.wireLen/2 + sinkCap)
				rat = nd.rat - wd
			}
			if rat < from.rat {
				from.rat = rat
				from.hasRAT = true
			}
		}
	}
}

// compareToRef checks every reference node's at/rat/slew/hasAT/hasRAT against
// the production analyzer, bit for bit, and that node counts agree.
func compareToRef(t *testing.T, tag string, a *Analyzer, r *refAnalyzer) {
	t.Helper()
	if a.numNodes() != len(r.nodes) {
		t.Fatalf("%s: node count %d != reference %d", tag, a.numNodes(), len(r.nodes))
	}
	for i := range r.nodes {
		rn := &r.nodes[i]
		n, ok := a.nodeOfPin(rn.id)
		if !ok {
			t.Fatalf("%s: pin %v missing from compact analyzer", tag, rn.id)
		}
		if a.hasAT[n] != rn.hasAT || a.hasRAT[n] != rn.hasRAT {
			t.Fatalf("%s: pin %v flags differ (hasAT %v/%v hasRAT %v/%v)",
				tag, rn.id, a.hasAT[n], rn.hasAT, a.hasRAT[n], rn.hasRAT)
		}
		if math.Float64bits(a.at[n]) != math.Float64bits(rn.at) ||
			math.Float64bits(a.rat[n]) != math.Float64bits(rn.rat) ||
			math.Float64bits(a.slew[n]) != math.Float64bits(rn.slew) {
			t.Fatalf("%s: pin %v differs: at %v/%v rat %v/%v slew %v/%v",
				tag, rn.id, a.at[n], rn.at, a.rat[n], rn.rat, a.slew[n], rn.slew)
		}
	}
}

// tangledDesign builds an irregular placed netlist exercising the corners the
// regular fixtures miss: multi-fanout nets, shared clock tree through a
// buffer, output ports, multi-input gates, and a seeded random placement.
func tangledDesign(t *testing.T, cells int) *netlist.Design {
	t.Helper()
	l := lib()
	d := netlist.NewDesign("tangled", l)
	rng := rand.New(rand.NewSource(7))
	clk, _ := d.AddPort("clk", netlist.DirInput)
	clk.X, clk.Y = 0, 0
	cn, _ := d.AddNet("clkroot")
	cn.Clock = true
	d.Connect(cn, netlist.PinRef{Inst: -1, Pin: "clk"})
	cbuf, _ := d.AddInstance("cbuf", l.Master("INV"))
	cbuf.X, cbuf.Y = 1, 1
	d.Connect(cn, netlist.PinRef{Inst: cbuf.ID, Pin: "A"})
	ctree, _ := d.AddNet("clktree")
	ctree.Clock = true
	d.Connect(ctree, netlist.PinRef{Inst: cbuf.ID, Pin: "Y"})

	in0, _ := d.AddPort("in0", netlist.DirInput)
	in0.X, in0.Y = 0, 5
	in1, _ := d.AddPort("in1", netlist.DirInput)
	in1.X, in1.Y = 0, 9
	drivers := []netlist.PinRef{{Inst: -1, Pin: "in0"}, {Inst: -1, Pin: "in1"}}
	masters := []string{"INV", "NAND2", "DFF"}
	for i := 0; i < cells; i++ {
		m := l.Master(masters[rng.Intn(len(masters))])
		g, _ := d.AddInstance(fmt.Sprintf("u%d", i), m)
		g.X, g.Y = 100*rng.Float64(), 100*rng.Float64()
		if m.Name == "DFF" {
			n, _ := d.AddNet(fmt.Sprintf("d%d", i))
			d.Connect(n, drivers[rng.Intn(len(drivers))])
			d.Connect(n, netlist.PinRef{Inst: g.ID, Pin: "D"})
			d.Connect(ctree, netlist.PinRef{Inst: g.ID, Pin: "CK"})
			drivers = append(drivers, netlist.PinRef{Inst: g.ID, Pin: "Q"})
			continue
		}
		ins := []string{"A"}
		if m.Name == "NAND2" {
			ins = append(ins, "B")
		}
		for _, pin := range ins {
			n, _ := d.AddNet(fmt.Sprintf("w%d%s", i, pin))
			d.Connect(n, drivers[rng.Intn(len(drivers))])
			d.Connect(n, netlist.PinRef{Inst: g.ID, Pin: pin})
			// Random extra fanout onto the same net.
			if rng.Intn(3) == 0 && i > 2 {
				d.Connect(n, netlist.PinRef{Inst: d.Insts[rng.Intn(i)].ID, Pin: "A"})
			}
		}
		drivers = append(drivers, netlist.PinRef{Inst: g.ID, Pin: "Y"})
	}
	out, _ := d.AddPort("dout", netlist.DirOutput)
	out.X, out.Y = 120, 60
	on, _ := d.AddNet("outnet")
	d.Connect(on, drivers[len(drivers)-1])
	d.Connect(on, netlist.PinRef{Inst: -1, Pin: "dout"})
	return d
}

// TestCompactMatchesReferenceFull pins the CSR/SoA analyzer to the map-based
// reference on full propagation: every arrival, required, and slew must match
// bit for bit, sequential and parallel, with and without wire parasitics.
func TestCompactMatchesReferenceFull(t *testing.T) {
	fixtures := []struct {
		name string
		d    *netlist.Design
	}{
		{"pipeline", benchPipeline(8, 6)},
		{"tangled", tangledDesign(t, 120)},
		{"regpair", regPair(t)},
	}
	for _, fx := range fixtures {
		for _, zeroWire := range []bool{false, true} {
			for _, workers := range []int{1, 4} {
				cons := DefaultConstraints(0.4e-9)
				cons.ClockPorts = []string{"clk"}
				cons.ZeroWire = zeroWire
				r := newRef(fx.d, cons)
				r.run()
				a := New(fx.d, cons)
				a.Workers = workers
				a.Run()
				tag := fmt.Sprintf("%s/zeroWire=%v/workers=%d", fx.name, zeroWire, workers)
				compareToRef(t, tag, a, r)
			}
		}
	}
}

// TestCompactMatchesReferenceClockArrivals checks the dense clockAt array
// against the reference's map under CTS-style useful skew, for both the map
// and the slice installer.
func TestCompactMatchesReferenceClockArrivals(t *testing.T) {
	d := benchPipeline(6, 4)
	cons := DefaultConstraints(0.4e-9)
	cons.ClockPorts = []string{"clk"}

	arr := make(map[PinID]float64)
	var list []ClockArrival
	for _, inst := range d.Insts {
		if inst.Master.Name != "DFF" {
			continue
		}
		t := 1e-12 * float64(inst.ID%7)
		arr[PinID{inst.ID, "CK"}] = t
		list = append(list, ClockArrival{Inst: inst.ID, Pin: "CK", T: t})
	}
	r := newRef(d, cons)
	r.setClockArrivals(arr)
	r.run()

	am := New(d, cons)
	am.SetClockArrivals(arr)
	am.Run()
	compareToRef(t, "map", am, r)

	al := New(d, cons)
	al.SetClockArrivalList(list)
	al.Run()
	compareToRef(t, "list", al, r)
}

// TestIncrementalMatchesReference moves cells, applies the dirty-cone update,
// and checks the result is bit-identical to a reference built fresh from the
// moved design — while proving the incremental path actually engaged.
func TestIncrementalMatchesReference(t *testing.T) {
	for _, workers := range []int{1, 4} {
		d := benchPipeline(8, 6)
		cons := DefaultConstraints(0.4e-9)
		cons.ClockPorts = []string{"clk"}
		a := New(d, cons)
		a.Workers = workers
		a.Run()

		// Move a handful of cells and update incrementally.
		moved := []int{3, 11, 25}
		for _, id := range moved {
			d.Insts[id].X += 2.5
			d.Insts[id].Y += 1.25
			a.InvalidateInst(id)
		}
		a.Update()
		a.Run()
		if n := a.LastUpdateNodes(); n <= 0 {
			t.Fatalf("workers=%d: dirty-cone path did not engage (LastUpdateNodes=%d)", workers, n)
		} else if n >= a.numNodes() {
			t.Fatalf("workers=%d: incremental update touched the whole graph (%d nodes)", workers, n)
		}

		r := newRef(d, cons)
		r.run()
		compareToRef(t, fmt.Sprintf("incremental/workers=%d", workers), a, r)
	}
}
