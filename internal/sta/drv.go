package sta

import "ppaclust/internal/netlist"

// Design-rule (DRV) checks: max-capacitance and max-transition violations,
// the electrical sanity checks signoff flows report next to WNS/TNS.

// DRVReport summarizes electrical rule violations.
type DRVReport struct {
	// MaxCapViolations counts driver pins whose net load exceeds the
	// library's max_capacitance.
	MaxCapViolations int
	// WorstCapRatio is the largest load/limit ratio observed (>1 violating).
	WorstCapRatio float64
	// MaxSlewViolations counts pins whose propagated slew exceeds the limit.
	MaxSlewViolations int
	// WorstSlew is the largest slew seen (s).
	WorstSlew float64
	// CheckedDrivers counts output pins with a max-cap limit.
	CheckedDrivers int
}

// DefaultMaxSlew is the transition limit applied when checking slews.
const DefaultMaxSlew = 300e-12

// DRV runs the electrical checks against current loads and slews.
func (a *Analyzer) DRV() DRVReport {
	a.Run()
	var rep DRVReport
	c := a.d.Compact()
	for ni := range a.d.Nets {
		kd := c.NetDrv[ni]
		if kd < 0 || c.PinInst[kd] < 0 {
			continue // undriven or port-driven
		}
		mpIdx := c.PinMP[kd]
		if mpIdx < 0 {
			continue
		}
		mp := &a.d.Insts[c.PinInst[kd]].Master.Pins[mpIdx]
		if mp.MaxCap <= 0 {
			continue
		}
		rep.CheckedDrivers++
		ratio := a.netLoad[ni] / mp.MaxCap
		if ratio > rep.WorstCapRatio {
			rep.WorstCapRatio = ratio
		}
		if ratio > 1 {
			rep.MaxCapViolations++
		}
	}
	for i := 0; i < a.numNodes(); i++ {
		if !a.hasAT[i] {
			continue
		}
		if a.slew[i] > rep.WorstSlew {
			rep.WorstSlew = a.slew[i]
		}
		if a.slew[i] > DefaultMaxSlew {
			rep.MaxSlewViolations++
		}
	}
	return rep
}

// FanoutHistogram buckets nets by fanout (sinks per net) — a quick netlist
// quality diagnostic used by the cluster tooling.
func FanoutHistogram(d *netlist.Design, buckets []int) []int {
	out := make([]int, len(buckets)+1)
	for _, n := range d.Nets {
		fan := len(n.Pins) - 1
		if fan < 0 {
			fan = 0
		}
		placed := false
		for bi, lim := range buckets {
			if fan <= lim {
				out[bi]++
				placed = true
				break
			}
		}
		if !placed {
			out[len(buckets)]++
		}
	}
	return out
}
