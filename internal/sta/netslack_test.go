// External test package: designs imports sta for its constraints type, so
// an in-package test could not generate a benchmark without a cycle.
package sta_test

import (
	"math"
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/sta"
)

// TestNetSlackIntoMatchesNetSlack checks the reuse path bit-for-bit against
// the allocating wrapper, including capacity-growth and reuse cases.
func TestNetSlackIntoMatchesNetSlack(t *testing.T) {
	b := designs.Generate(designs.TinySpec(21))
	a := sta.New(b.Design, b.Cons)
	want := a.NetSlack()

	// nil dst allocates, short dst grows, oversized dst reuses its backing.
	for _, dst := range [][]float64{nil, make([]float64, 2), make([]float64, len(want)+16)} {
		got := a.NetSlackInto(dst)
		if len(got) != len(want) {
			t.Fatalf("len=%d want %d", len(got), len(want))
		}
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("net %d slack %v != %v", i, got[i], want[i])
			}
		}
	}
}

// TestNetSlackIntoAllocFree gates the fix for NetSlack allocating on every
// call: with a warm analyzer and a capacious destination, repeated slack
// extraction must not allocate.
func TestNetSlackIntoAllocFree(t *testing.T) {
	b := designs.Generate(designs.TinySpec(22))
	a := sta.New(b.Design, b.Cons)
	dst := a.NetSlackInto(nil) // warm: analyzer run + full-size buffer
	avg := testing.AllocsPerRun(50, func() {
		dst = a.NetSlackInto(dst)
	})
	if avg != 0 {
		t.Fatalf("NetSlackInto allocates %.1f times per call, want 0", avg)
	}
}
