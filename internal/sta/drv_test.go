package sta

import (
	"testing"

	"ppaclust/internal/netlist"
)

func TestDRVCleanDesign(t *testing.T) {
	d := combChain(t, 3)
	a := New(d, consFor(1e-9))
	rep := a.DRV()
	if rep.CheckedDrivers == 0 {
		t.Fatal("no drivers checked")
	}
	if rep.MaxCapViolations != 0 || rep.MaxSlewViolations != 0 {
		t.Fatalf("clean design reports violations: %+v", rep)
	}
	if rep.WorstCapRatio <= 0 || rep.WorstCapRatio >= 1 {
		t.Fatalf("worst cap ratio=%v", rep.WorstCapRatio)
	}
}

func TestDRVMaxCapViolation(t *testing.T) {
	l := lib()
	// Give INV a tiny max cap so any load violates.
	inv := l.Master("INV")
	inv.Pin("Y").MaxCap = 0.1e-15
	d := netlist.NewDesign("v", l)
	g0, _ := d.AddInstance("g0", inv)
	g1, _ := d.AddInstance("g1", inv)
	in, _ := d.AddPort("in", netlist.DirInput)
	in.X, in.Y = 0, 0
	n0, _ := d.AddNet("n0")
	d.Connect(n0, netlist.PinRef{Inst: -1, Pin: "in"})
	d.Connect(n0, netlist.PinRef{Inst: g0.ID, Pin: "A"})
	n1, _ := d.AddNet("n1")
	d.Connect(n1, netlist.PinRef{Inst: g0.ID, Pin: "Y"})
	_ = n1
	d.Connect(n1, netlist.PinRef{Inst: g1.ID, Pin: "A"})
	a := New(d, consFor(1e-9))
	rep := a.DRV()
	if rep.MaxCapViolations != 1 {
		t.Fatalf("want 1 max-cap violation, got %+v", rep)
	}
	if rep.WorstCapRatio <= 1 {
		t.Fatalf("ratio=%v", rep.WorstCapRatio)
	}
}

func TestFanoutHistogram(t *testing.T) {
	d := combChain(t, 4)
	hist := FanoutHistogram(d, []int{1, 4, 10})
	total := 0
	for _, c := range hist {
		total += c
	}
	if total != len(d.Nets) {
		t.Fatalf("histogram total %d != nets %d", total, len(d.Nets))
	}
	// All chain nets have fanout 1.
	if hist[0] != len(d.Nets) {
		t.Fatalf("hist=%v", hist)
	}
}
