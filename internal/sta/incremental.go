// Incremental timing update: dirty-cone repropagation.
//
// The analyzer tracks a set of dirty nets (marked via the Invalidate* calls
// after cells move or the parasitics mode flips). Update refreshes the wire
// geometry of exactly those nets and repropagates arrivals through the dirty
// fanout cone and requireds through the dirty fanin cone, instead of
// re-running the full passes.
//
// The repropagation reuses the per-node pull primitives of the parallel
// kernels (pullArrival/pullRequired in parallel.go): each recomputed node is
// reset to its seed state and then relaxed from its candidates in the exact
// sequential order, so a recomputed node lands on the same bits as a full
// pass would. Nodes outside the cone keep their values; by induction over
// the level schedule those are bit-identical too, because every input they
// would re-read is unchanged bitwise. A full-graph dirty set, a graph the
// level scheduler rejects (combinational cycles, unsafe launch arcs), or an
// analyzer whose timing was never propagated all reduce to the existing full
// propagation in Run.
//
// Worklist invariants (see also DESIGN.md §9):
//   - Forward seeds of a dirty net: the driver node (its in-arcs read the
//     net's load, which changed) and every net-arc sink (the arc's wire
//     length changed). A recomputed node whose (at, slew, hasAT) changed
//     bitwise enqueues all out-edge targets — launch arcs included, since a
//     launch samples its clock pin's slew.
//   - Backward seeds: every node whose slew changed in the forward pass (its
//     own required pull and setup-endpoint seed read it), plus each dirty
//     net's driver (out net-arc wire lengths changed) and the sources of
//     cell arcs into that driver (their arc delay reads the driver's net
//     load). A node whose (rat, hasRAT) changed enqueues its non-launch
//     in-edge sources.
//   - Levels strictly increase along every edge (parallel.go), so processing
//     forward buckets in ascending and backward buckets in descending level
//     order never revisits a bucket.
package sta

import (
	"math"

	"ppaclust/internal/netlist"
)

// incState holds the dirty-set bookkeeping and the reusable worklist
// buffers of the incremental engine.
type incState struct {
	built     bool
	neOff     []int32 // net -> offset into neEdge (net-arc edge CSR)
	neEdge    []int32 // net-arc edge ids grouped by net
	netDriver []int32 // net -> driver node, -1 when undriven

	levelOf []int32 // node -> level of the parallel schedule

	netDirty  []bool
	dirtyNets []int32
	dirtyAll  bool

	pend    []bool    // node queued in the current pass
	buckets [][]int32 // per-level worklists, reused across Updates
	bwdSeed []int32

	lastNodes int // nodes repropagated by the last Update, -1 after a full one
}

// ensureIncIndex builds (once) the net -> {driver node, net-arc edges} CSR
// index the dirty-set machinery needs.
func (a *Analyzer) ensureIncIndex() {
	if a.inc.built {
		return
	}
	a.inc.built = true
	a.inc.lastNodes = -1
	d := a.d
	c := d.Compact()
	nNets := len(d.Nets)
	a.inc.neOff = make([]int32, nNets+1)
	for ei := range a.eFrom {
		if a.eArc[ei] != nil {
			continue
		}
		if netID := a.net[a.eFrom[ei]]; netID >= 0 {
			a.inc.neOff[netID+1]++
		}
	}
	for i := 1; i <= nNets; i++ {
		a.inc.neOff[i] += a.inc.neOff[i-1]
	}
	a.inc.neEdge = make([]int32, a.inc.neOff[nNets])
	fill := append([]int32(nil), a.inc.neOff[:nNets]...)
	for ei := range a.eFrom {
		if a.eArc[ei] != nil {
			continue
		}
		if netID := a.net[a.eFrom[ei]]; netID >= 0 {
			a.inc.neEdge[fill[netID]] = int32(ei)
			fill[netID]++
		}
	}
	a.inc.netDriver = make([]int32, nNets)
	for ni := 0; ni < nNets; ni++ {
		if kd := c.NetDrv[ni]; kd >= 0 {
			a.inc.netDriver[ni] = a.nodeOfSlot(c, kd)
		} else {
			a.inc.netDriver[ni] = -1
		}
	}
	a.inc.netDirty = make([]bool, nNets)
}

// netArcEdges returns the net-arc edge ids of one net.
func (a *Analyzer) netArcEdges(netID int) []int32 {
	return a.inc.neEdge[a.inc.neOff[netID]:a.inc.neOff[netID+1]]
}

// InvalidateNets marks nets whose pin positions (or connectivity-independent
// parasitics) changed; the next Update refreshes their geometry and
// repropagates the affected cones.
func (a *Analyzer) InvalidateNets(nets ...int) {
	a.ensureIncIndex()
	for _, n := range nets {
		if n < 0 || n >= len(a.inc.netDirty) || a.inc.netDirty[n] {
			continue
		}
		a.inc.netDirty[n] = true
		a.inc.dirtyNets = append(a.inc.dirtyNets, int32(n))
	}
}

// InvalidateInst marks every net connected to the instance dirty; call it
// after moving a cell.
func (a *Analyzer) InvalidateInst(id int) {
	a.ensureIncIndex()
	c := a.d.Compact()
	for _, n := range c.InstNets[c.InstStart[id]:c.InstStart[id+1]] {
		if a.inc.netDirty[n] {
			continue
		}
		a.inc.netDirty[n] = true
		a.inc.dirtyNets = append(a.inc.dirtyNets, n)
	}
}

// InvalidatePin marks the net of one pin dirty.
func (a *Analyzer) InvalidatePin(id PinID) {
	a.ensureIncIndex()
	if n, ok := a.nodeOfPin(id); ok {
		if netID := a.net[n]; netID >= 0 {
			a.InvalidateNets(int(netID))
		}
	}
}

// InvalidateAll marks the whole graph dirty; the next Update reduces to the
// full refresh + propagation.
func (a *Analyzer) InvalidateAll() {
	a.ensureIncIndex()
	a.inc.dirtyAll = true
}

// SetZeroWire switches between zero-wire (pre-placement, Algorithm 1 lines
// 4-5) and placed-parasitics timing. The geometry source changes for every
// net, so the whole graph is invalidated; call Update to apply.
func (a *Analyzer) SetZeroWire(zw bool) {
	a.cons.ZeroWire = zw
	a.InvalidateAll()
}

// LastUpdateNodes reports how many nodes the last Update repropagated
// incrementally, or -1 when it fell back to (or was) a full refresh.
// Diagnostic, used by tests to prove the dirty-cone path engaged.
func (a *Analyzer) LastUpdateNodes() int {
	if !a.inc.built {
		return -1
	}
	return a.inc.lastNodes
}

// Update applies pending invalidations: it refreshes wire loads/lengths of
// the dirty nets from current pin positions and repropagates the dirty
// cones. Calling Update with no recorded invalidations keeps the legacy
// semantics of refreshing everything. A full-graph dirty set (or a graph
// the level scheduler rejects) reduces to the existing full propagation.
func (a *Analyzer) Update() {
	a.ensureIncIndex()
	if !a.inc.dirtyAll && len(a.inc.dirtyNets) == 0 {
		a.inc.dirtyAll = true
	}
	if a.inc.dirtyAll || !a.timeDone || !a.ensureSched() {
		a.refreshAllNets()
		a.clearDirty()
		a.inc.lastNodes = -1
		a.timeDone = false
		a.actDone = false
		return
	}
	a.updateIncremental()
}

func (a *Analyzer) clearDirty() {
	for _, n := range a.inc.dirtyNets {
		a.inc.netDirty[n] = false
	}
	a.inc.dirtyNets = a.inc.dirtyNets[:0]
	a.inc.dirtyAll = false
}

// refreshAllNets refreshes every net's geometry over freshly gathered
// positions — the full-update path, flat over the compact CSR.
func (a *Analyzer) refreshAllNets() {
	a.gatherPositions()
	c := a.d.Compact()
	for ni := range a.d.Nets {
		a.refreshNet(c, ni)
	}
}

// refreshNet recomputes one net's load, HPWL and per-sink wire lengths from
// the gathered pin positions. The pin-cap accumulation mirrors build exactly
// (same pin order, same skip rules), so a refreshed analyzer is bit-identical
// to a freshly built one. Callers must gatherPositions first.
func (a *Analyzer) refreshNet(c *netlist.Compact, ni int) {
	d := a.d
	kd := c.NetDrv[ni]
	if kd < 0 {
		return
	}
	drvID, drvMP := c.PinInst[kd], c.PinMP[kd]
	var load float64
	for k := c.NetStart[ni]; k < c.NetStart[ni+1]; k++ {
		if c.PinInst[k] == drvID && (drvID < 0 || c.PinMP[k] == drvMP) {
			continue
		}
		id := c.PinInst[k]
		if id < 0 {
			if id == netlist.CompactNoPort {
				continue
			}
			if d.Ports[-1-id].Dir != netlist.DirOutput {
				continue
			}
			load += a.cons.PortCap
		} else {
			mpIdx := c.PinMP[k]
			if mpIdx < 0 {
				continue
			}
			mp := &d.Insts[id].Master.Pins[mpIdx]
			if mp.Dir == netlist.DirOutput {
				continue
			}
			load += mp.Cap
		}
	}
	if a.cons.ZeroWire {
		a.netLoad[ni] = load
		a.netLen[ni] = 0
		for _, ei := range a.netArcEdges(ni) {
			a.eWire[ei] = 0
		}
		return
	}
	hp := a.netHPWLGathered(c, ni)
	a.netLoad[ni] = load + WireCapPerMicron*hp
	a.netLen[ni] = hp
	dx, dy := a.posOfSlot(c, kd)
	for _, ei := range a.netArcEdges(ni) {
		to := a.eTo[ei]
		var sx, sy float64
		if id := a.nodeInst[to]; id >= 0 {
			sx, sy = a.gInstX[id]+a.nodeDX[to], a.gInstY[id]+a.nodeDY[to]
		} else {
			p := d.Ports[-1-id]
			sx, sy = p.X, p.Y
		}
		a.eWire[ei] = math.Abs(sx-dx) + math.Abs(sy-dy)
	}
}

// ensureLevels derives the node -> level map from the parallel schedule.
func (a *Analyzer) ensureLevels() {
	if a.inc.levelOf != nil {
		return
	}
	a.inc.levelOf = make([]int32, a.numNodes())
	for li := 0; li+1 < len(a.sched.levelOff); li++ {
		for _, v := range a.sched.levelNodes[a.sched.levelOff[li]:a.sched.levelOff[li+1]] {
			a.inc.levelOf[v] = int32(li)
		}
	}
	if a.inc.buckets == nil {
		a.inc.buckets = make([][]int32, len(a.sched.levelOff)-1)
	}
	if a.inc.pend == nil {
		a.inc.pend = make([]bool, a.numNodes())
	}
}

func (a *Analyzer) enqueue(v int32) {
	if a.inc.pend[v] {
		return
	}
	a.inc.pend[v] = true
	l := a.inc.levelOf[v]
	a.inc.buckets[l] = append(a.inc.buckets[l], v)
}

// updateIncremental refreshes the dirty nets' geometry and repropagates
// arrivals/requireds through the affected cones only. Precondition: the
// level schedule exists, timing is propagated, and the dirty set is partial.
func (a *Analyzer) updateIncremental() {
	a.ensureLevels()
	a.gatherPositions()
	c := a.d.Compact()
	bwdSeed := a.inc.bwdSeed[:0]

	// Geometry refresh + seeding.
	for _, netID32 := range a.inc.dirtyNets {
		netID := int(netID32)
		a.refreshNet(c, netID)
		if drvNode := a.inc.netDriver[netID]; drvNode >= 0 {
			a.enqueue(drvNode)
			bwdSeed = append(bwdSeed, drvNode)
			for _, ei := range a.inEdge[a.inOff[drvNode]:a.inOff[drvNode+1]] {
				if a.eArc[ei] != nil && !a.isLaunchEdge(ei) {
					bwdSeed = append(bwdSeed, a.eFrom[ei])
				}
			}
		}
		for _, ei := range a.netArcEdges(netID) {
			a.enqueue(a.eTo[ei])
		}
	}

	recomputed := 0
	// Forward cone, ascending levels. Changed-node targets always sit on a
	// strictly higher level, so each bucket is complete when reached.
	for li := 0; li < len(a.inc.buckets); li++ {
		bucket := a.inc.buckets[li]
		for _, v := range bucket {
			a.inc.pend[v] = false
			recomputed++
			oldAT, oldSlew := math.Float64bits(a.at[v]), math.Float64bits(a.slew[v])
			oldHas := a.hasAT[v]
			a.at[v] = math.Inf(-1)
			a.hasAT[v] = false
			a.worstIn[v] = -1
			a.slew[v] = a.cons.InputSlew
			if a.kind[v] == nodePortIn {
				if a.isClk[v] {
					a.at[v] = 0
				} else {
					a.at[v] = a.cons.InputDelay
				}
				a.hasAT[v] = true
			}
			a.pullArrival(v)
			slewChanged := math.Float64bits(a.slew[v]) != oldSlew
			if slewChanged {
				bwdSeed = append(bwdSeed, v)
			}
			if slewChanged || math.Float64bits(a.at[v]) != oldAT || a.hasAT[v] != oldHas {
				for _, ei := range a.outEdge[a.outOff[v]:a.outOff[v+1]] {
					a.enqueue(a.eTo[ei])
				}
			}
		}
		a.inc.buckets[li] = bucket[:0]
	}

	// Backward cone, descending levels.
	for _, v := range bwdSeed {
		a.enqueue(v)
	}
	for li := len(a.inc.buckets) - 1; li >= 0; li-- {
		bucket := a.inc.buckets[li]
		for _, u := range bucket {
			a.inc.pend[u] = false
			recomputed++
			oldRAT, oldHas := math.Float64bits(a.rat[u]), a.hasRAT[u]
			a.rat[u] = math.Inf(1)
			a.hasRAT[u] = false
			if a.endp[u] {
				a.seedRequired(u, a.cons.ClockPeriod)
			}
			a.pullRequired(u)
			if math.Float64bits(a.rat[u]) != oldRAT || a.hasRAT[u] != oldHas {
				for _, ei := range a.inEdge[a.inOff[u]:a.inOff[u+1]] {
					if !a.isLaunchEdge(ei) {
						a.enqueue(a.eFrom[ei])
					}
				}
			}
		}
		a.inc.buckets[li] = bucket[:0]
	}

	a.inc.bwdSeed = bwdSeed[:0]
	a.inc.lastNodes = recomputed
	a.clearDirty()
	// Activity depends only on topology and constraints, not geometry, so it
	// stays valid across incremental updates.
}
