// Incremental timing update: dirty-cone repropagation.
//
// The analyzer tracks a set of dirty nets (marked via the Invalidate* calls
// after cells move or the parasitics mode flips). Update refreshes the wire
// geometry of exactly those nets and repropagates arrivals through the dirty
// fanout cone and requireds through the dirty fanin cone, instead of
// re-running the full passes.
//
// The repropagation reuses the per-node pull primitives of the parallel
// kernels (pullArrival/pullRequired in parallel.go): each recomputed node is
// reset to its seed state and then relaxed from its candidates in the exact
// sequential order, so a recomputed node lands on the same bits as a full
// pass would. Nodes outside the cone keep their values; by induction over
// the level schedule those are bit-identical too, because every input they
// would re-read is unchanged bitwise. A full-graph dirty set, a graph the
// level scheduler rejects (combinational cycles, unsafe launch arcs), or an
// analyzer whose timing was never propagated all reduce to the existing full
// propagation in Run.
//
// Worklist invariants (see also DESIGN.md §9):
//   - Forward seeds of a dirty net: the driver node (its in-arcs read the
//     net's load, which changed) and every net-arc sink (the arc's wire
//     length changed). A recomputed node whose (at, slew, hasAT) changed
//     bitwise enqueues all out-edge targets — launch arcs included, since a
//     launch samples its clock pin's slew.
//   - Backward seeds: every node whose slew changed in the forward pass (its
//     own required pull and setup-endpoint seed read it), plus each dirty
//     net's driver (out net-arc wire lengths changed) and the sources of
//     cell arcs into that driver (their arc delay reads the driver's net
//     load). A node whose (rat, hasRAT) changed enqueues its non-launch
//     in-edge sources.
//   - Levels strictly increase along every edge (parallel.go), so processing
//     forward buckets in ascending and backward buckets in descending level
//     order never revisits a bucket.
package sta

import (
	"math"

	"ppaclust/internal/netlist"
)

// incState holds the dirty-set bookkeeping and the reusable worklist
// buffers of the incremental engine.
type incState struct {
	built     bool
	netEdges  [][]int32 // net -> net-arc edge ids
	netDriver []int32   // net -> driver node, -1 when undriven

	levelOf []int32 // node -> level of the parallel schedule

	netDirty  []bool
	dirtyNets []int32
	dirtyAll  bool

	pend    []bool    // node queued in the current pass
	buckets [][]int32 // per-level worklists, reused across Updates
	bwdSeed []int32

	lastNodes int // nodes repropagated by the last Update, -1 after a full one
}

// ensureIncIndex builds (once) the net -> {driver node, net-arc edges} index
// the dirty-set machinery needs.
func (a *Analyzer) ensureIncIndex() {
	if a.inc.built {
		return
	}
	a.inc.built = true
	a.inc.lastNodes = -1
	d := a.d
	a.inc.netEdges = make([][]int32, len(d.Nets))
	a.inc.netDriver = make([]int32, len(d.Nets))
	for i := range a.inc.netDriver {
		a.inc.netDriver[i] = -1
	}
	for ei := range a.edges {
		e := &a.edges[ei]
		if e.isCell {
			continue
		}
		if netID := a.nodes[e.from].net; netID >= 0 {
			a.inc.netEdges[netID] = append(a.inc.netEdges[netID], int32(ei))
		}
	}
	for _, net := range d.Nets {
		drv, ok := d.Driver(net)
		if !ok {
			continue
		}
		if n, found := a.nodeOf[PinID{drv.Inst, drv.Pin}]; found {
			a.inc.netDriver[net.ID] = int32(n)
		}
	}
	a.inc.netDirty = make([]bool, len(d.Nets))
}

// InvalidateNets marks nets whose pin positions (or connectivity-independent
// parasitics) changed; the next Update refreshes their geometry and
// repropagates the affected cones.
func (a *Analyzer) InvalidateNets(nets ...int) {
	a.ensureIncIndex()
	for _, n := range nets {
		if n < 0 || n >= len(a.inc.netDirty) || a.inc.netDirty[n] {
			continue
		}
		a.inc.netDirty[n] = true
		a.inc.dirtyNets = append(a.inc.dirtyNets, int32(n))
	}
}

// InvalidateInst marks every net connected to the instance dirty; call it
// after moving a cell.
func (a *Analyzer) InvalidateInst(id int) {
	a.ensureIncIndex()
	for _, n := range a.d.NetsOf(id) {
		if a.inc.netDirty[n] {
			continue
		}
		a.inc.netDirty[n] = true
		a.inc.dirtyNets = append(a.inc.dirtyNets, int32(n))
	}
}

// InvalidatePin marks the net of one pin dirty.
func (a *Analyzer) InvalidatePin(id PinID) {
	a.ensureIncIndex()
	if n, ok := a.nodeOf[id]; ok {
		if netID := a.nodes[n].net; netID >= 0 {
			a.InvalidateNets(netID)
		}
	}
}

// InvalidateAll marks the whole graph dirty; the next Update reduces to the
// full refresh + propagation.
func (a *Analyzer) InvalidateAll() {
	a.ensureIncIndex()
	a.inc.dirtyAll = true
}

// SetZeroWire switches between zero-wire (pre-placement, Algorithm 1 lines
// 4-5) and placed-parasitics timing. The geometry source changes for every
// net, so the whole graph is invalidated; call Update to apply.
func (a *Analyzer) SetZeroWire(zw bool) {
	a.cons.ZeroWire = zw
	a.InvalidateAll()
}

// LastUpdateNodes reports how many nodes the last Update repropagated
// incrementally, or -1 when it fell back to (or was) a full refresh.
// Diagnostic, used by tests to prove the dirty-cone path engaged.
func (a *Analyzer) LastUpdateNodes() int {
	if !a.inc.built {
		return -1
	}
	return a.inc.lastNodes
}

// Update applies pending invalidations: it refreshes wire loads/lengths of
// the dirty nets from current pin positions and repropagates the dirty
// cones. Calling Update with no recorded invalidations keeps the legacy
// semantics of refreshing everything. A full-graph dirty set (or a graph
// the level scheduler rejects) reduces to the existing full propagation.
func (a *Analyzer) Update() {
	a.ensureIncIndex()
	if !a.inc.dirtyAll && len(a.inc.dirtyNets) == 0 {
		a.inc.dirtyAll = true
	}
	if a.inc.dirtyAll || !a.timeDone || !a.ensureSched() {
		for _, net := range a.d.Nets {
			a.refreshNet(net)
		}
		a.clearDirty()
		a.inc.lastNodes = -1
		a.timeDone = false
		a.actDone = false
		return
	}
	a.updateIncremental()
}

func (a *Analyzer) clearDirty() {
	for _, n := range a.inc.dirtyNets {
		a.inc.netDirty[n] = false
	}
	a.inc.dirtyNets = a.inc.dirtyNets[:0]
	a.inc.dirtyAll = false
}

// refreshNet recomputes one net's load, HPWL and per-sink wire lengths from
// current pin positions. The pin-cap accumulation mirrors build exactly
// (same pin order, same skip rules), so a refreshed analyzer is bit-identical
// to a freshly built one.
func (a *Analyzer) refreshNet(net *netlist.Net) {
	d := a.d
	drv, ok := d.Driver(net)
	if !ok {
		return
	}
	var load float64
	for _, pr := range net.Pins {
		if pr == drv {
			continue
		}
		if pr.IsPort() {
			port := d.Port(pr.Pin)
			if port == nil || port.Dir != netlist.DirOutput {
				continue
			}
			load += a.cons.PortCap
		} else {
			mp := d.Insts[pr.Inst].Master.Pin(pr.Pin)
			if mp == nil || mp.Dir == netlist.DirOutput {
				continue
			}
			load += mp.Cap
		}
	}
	if a.cons.ZeroWire {
		a.netLoad[net.ID] = load
		a.netLen[net.ID] = 0
		for _, ei := range a.inc.netEdges[net.ID] {
			a.edges[ei].wireLen = 0
		}
		return
	}
	hp := d.NetHPWL(net)
	a.netLoad[net.ID] = load + WireCapPerMicron*hp
	a.netLen[net.ID] = hp
	dx, dy := d.PinPos(drv)
	for _, ei := range a.inc.netEdges[net.ID] {
		e := &a.edges[ei]
		sx, sy := a.pinPosOf(e.to)
		e.wireLen = math.Abs(sx-dx) + math.Abs(sy-dy)
	}
}

// ensureLevels derives the node -> level map from the parallel schedule.
func (a *Analyzer) ensureLevels() {
	if a.inc.levelOf != nil {
		return
	}
	a.inc.levelOf = make([]int32, len(a.nodes))
	for li := 0; li+1 < len(a.sched.levelOff); li++ {
		for _, v := range a.sched.levelNodes[a.sched.levelOff[li]:a.sched.levelOff[li+1]] {
			a.inc.levelOf[v] = int32(li)
		}
	}
	if a.inc.buckets == nil {
		a.inc.buckets = make([][]int32, len(a.sched.levelOff)-1)
	}
	if a.inc.pend == nil {
		a.inc.pend = make([]bool, len(a.nodes))
	}
}

func (a *Analyzer) enqueue(v int) {
	if a.inc.pend[v] {
		return
	}
	a.inc.pend[v] = true
	l := a.inc.levelOf[v]
	a.inc.buckets[l] = append(a.inc.buckets[l], int32(v))
}

// updateIncremental refreshes the dirty nets' geometry and repropagates
// arrivals/requireds through the affected cones only. Precondition: the
// level schedule exists, timing is propagated, and the dirty set is partial.
func (a *Analyzer) updateIncremental() {
	a.ensureLevels()
	bwdSeed := a.inc.bwdSeed[:0]

	// Geometry refresh + seeding.
	for _, netID32 := range a.inc.dirtyNets {
		netID := int(netID32)
		a.refreshNet(a.d.Nets[netID])
		if drvNode := a.inc.netDriver[netID]; drvNode >= 0 {
			a.enqueue(int(drvNode))
			bwdSeed = append(bwdSeed, drvNode)
			for _, ei := range a.in[int(drvNode)] {
				if e := &a.edges[ei]; e.isCell && !e.isLaunch() {
					bwdSeed = append(bwdSeed, int32(e.from))
				}
			}
		}
		for _, ei := range a.inc.netEdges[netID] {
			a.enqueue(a.edges[ei].to)
		}
	}

	recomputed := 0
	// Forward cone, ascending levels. Changed-node targets always sit on a
	// strictly higher level, so each bucket is complete when reached.
	for li := 0; li < len(a.inc.buckets); li++ {
		bucket := a.inc.buckets[li]
		for _, v32 := range bucket {
			v := int(v32)
			a.inc.pend[v] = false
			recomputed++
			nd := &a.nodes[v]
			oldAT, oldSlew := math.Float64bits(nd.at), math.Float64bits(nd.slew)
			oldHas := nd.hasAT
			nd.at = math.Inf(-1)
			nd.hasAT = false
			nd.worstIn = -1
			nd.slew = a.cons.InputSlew
			if nd.kind == nodePortIn {
				if nd.isClk {
					nd.at = 0
				} else {
					nd.at = a.cons.InputDelay
				}
				nd.hasAT = true
			}
			a.pullArrival(v)
			slewChanged := math.Float64bits(nd.slew) != oldSlew
			if slewChanged {
				bwdSeed = append(bwdSeed, v32)
			}
			if slewChanged || math.Float64bits(nd.at) != oldAT || nd.hasAT != oldHas {
				for _, ei := range a.out[v] {
					a.enqueue(a.edges[ei].to)
				}
			}
		}
		a.inc.buckets[li] = bucket[:0]
	}

	// Backward cone, descending levels.
	for _, v := range bwdSeed {
		a.enqueue(int(v))
	}
	for li := len(a.inc.buckets) - 1; li >= 0; li-- {
		bucket := a.inc.buckets[li]
		for _, u32 := range bucket {
			u := int(u32)
			a.inc.pend[u] = false
			recomputed++
			nd := &a.nodes[u]
			oldRAT, oldHas := math.Float64bits(nd.rat), nd.hasRAT
			nd.rat = math.Inf(1)
			nd.hasRAT = false
			if nd.endp {
				switch nd.kind {
				case nodePortOut:
					nd.rat = a.cons.ClockPeriod - a.cons.OutputDelay
					nd.hasRAT = true
				case nodeInput:
					mp := a.d.Insts[nd.id.Inst].Master.Pin(nd.id.Pin)
					for ai := range mp.Arcs {
						arc := &mp.Arcs[ai]
						if arc.Kind != netlist.ArcSetup {
							continue
						}
						setup := arc.Delay.Lookup(nd.slew, 0)
						captureClk := a.clockAtInst(nd.id.Inst, arc.From)
						rat := a.cons.ClockPeriod + captureClk - setup
						if rat < nd.rat {
							nd.rat = rat
							nd.hasRAT = true
						}
					}
				}
			}
			a.pullRequired(u)
			if math.Float64bits(nd.rat) != oldRAT || nd.hasRAT != oldHas {
				for _, ei := range a.in[u] {
					if e := &a.edges[ei]; !e.isLaunch() {
						a.enqueue(e.from)
					}
				}
			}
		}
		a.inc.buckets[li] = bucket[:0]
	}

	a.inc.bwdSeed = bwdSeed[:0]
	a.inc.lastNodes = recomputed
	a.clearDirty()
	// Activity depends only on topology and constraints, not geometry, so it
	// stays valid across incremental updates.
}
