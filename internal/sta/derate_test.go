package sta

import (
	"math"
	"testing"
)

func TestLateDerateScalesSetupSlack(t *testing.T) {
	d := regPair(t)
	period := 100e-12
	a := New(d, consFor(period, "clk"))
	base := a.SlackAt(PinID{Inst: d.Instance("ff1").ID, Pin: "D"})
	// 10% late derate: data path (clk2q + inv) grows by 10%.
	sum := a.TimingOCV(Derate{Late: 1.1})
	_ = sum
	a.SetDerate(Derate{Late: 1.1})
	derated := a.SlackAt(PinID{Inst: d.Instance("ff1").ID, Pin: "D"})
	wantDelta := -0.1 * (clk2q + invDelay)
	if math.Abs((derated-base)-wantDelta) > 1e-15 {
		t.Fatalf("slack delta %v want %v", derated-base, wantDelta)
	}
	// Restore.
	a.SetDerate(Derate{})
	if math.Abs(a.SlackAt(PinID{Inst: d.Instance("ff1").ID, Pin: "D"})-base) > 1e-15 {
		t.Fatal("derate reset failed")
	}
}

func TestEarlyDerateWorsensHold(t *testing.T) {
	d := regPair(t)
	a := New(d, consFor(1e-9, "clk"))
	base := a.HoldTiming()
	// Early derate 0.5: min path halves -> closer to (or past) violation.
	fast := a.HoldTimingOCV(Derate{Early: 0.5})
	if base.Failing == 0 && fast.Failing > 0 {
		return // clean -> violating: definitely worse, pass
	}
	// Otherwise WHS must not improve under a pessimistic early derate.
	if fast.WHS > base.WHS {
		t.Fatalf("early derate improved hold: %v -> %v", base.WHS, fast.WHS)
	}
}

func TestDerateZeroValueIsIdentity(t *testing.T) {
	var dr Derate
	if dr.late() != 1 || dr.early() != 1 {
		t.Fatal("zero derate should be identity")
	}
}
