package sta

import (
	"fmt"
	"testing"

	"ppaclust/internal/netlist"
)

// benchPipeline builds a wide register pipeline: w parallel chains of depth
// dep between register stages, all clocked.
func benchPipeline(w, dep int) *netlist.Design {
	l := lib()
	d := netlist.NewDesign("pipe", l)
	clk, _ := d.AddPort("clk", netlist.DirInput)
	clk.X, clk.Y = 0, 0
	cn, _ := d.AddNet("clknet")
	cn.Clock = true
	d.Connect(cn, netlist.PinRef{Inst: -1, Pin: "clk"})
	for lane := 0; lane < w; lane++ {
		in, _ := d.AddPort(fmt.Sprintf("in%d", lane), netlist.DirInput)
		in.X, in.Y = 0, float64(lane)
		prev := netlist.PinRef{Inst: -1, Pin: fmt.Sprintf("in%d", lane)}
		for k := 0; k < dep; k++ {
			g, _ := d.AddInstance(fmt.Sprintf("g%d_%d", lane, k), l.Master("INV"))
			g.X, g.Y = float64(k), float64(lane)
			n, _ := d.AddNet(fmt.Sprintf("n%d_%d", lane, k))
			d.Connect(n, prev)
			d.Connect(n, netlist.PinRef{Inst: g.ID, Pin: "A"})
			prev = netlist.PinRef{Inst: g.ID, Pin: "Y"}
		}
		ff, _ := d.AddInstance(fmt.Sprintf("ff%d", lane), l.Master("DFF"))
		ff.X, ff.Y = float64(dep), float64(lane)
		dn, _ := d.AddNet(fmt.Sprintf("d%d", lane))
		d.Connect(dn, prev)
		d.Connect(dn, netlist.PinRef{Inst: ff.ID, Pin: "D"})
		d.Connect(cn, netlist.PinRef{Inst: ff.ID, Pin: "CK"})
	}
	return d
}

// BenchmarkSTABuildAndRun measures timing-graph construction plus full
// arrival/required propagation on a ~10k-pin pipeline.
func BenchmarkSTABuildAndRun(b *testing.B) {
	d := benchPipeline(100, 30)
	cons := consForBench()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := New(d, cons)
		a.Run()
	}
}

// BenchmarkSTATopPaths measures path enumeration.
func BenchmarkSTATopPaths(b *testing.B) {
	d := benchPipeline(100, 30)
	a := New(d, consForBench())
	a.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.TopPaths(100)
	}
}

// BenchmarkSTAActivity measures vectorless activity propagation.
func BenchmarkSTAActivity(b *testing.B) {
	d := benchPipeline(100, 30)
	cons := consForBench()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := New(d, cons)
		a.NetActivity()
	}
}

func consForBench() Constraints {
	c := DefaultConstraints(1e-9)
	c.ClockPorts = []string{"clk"}
	return c
}
