package sta

import (
	"math"
	"testing"
)

func TestHoldRegPairClean(t *testing.T) {
	d := regPair(t)
	a := New(d, consFor(1e-9, "clk"))
	sum := a.HoldTiming()
	if sum.Endpoints == 0 {
		t.Fatal("no hold endpoints")
	}
	// Min path = clk2q (40ps) + inv (10ps) = 50ps > 5ps hold: clean.
	if sum.Failing != 0 || sum.WHS != 0 {
		t.Fatalf("unexpected hold violation: %+v", sum)
	}
}

func TestHoldViolationWithSkew(t *testing.T) {
	d := regPair(t)
	a := New(d, consFor(1e-9, "clk"))
	// Capture clock arrives 100ps late: data (50ps) beats clk+hold (105ps).
	a.SetClockArrivals(map[PinID]float64{
		{Inst: d.Instance("ff0").ID, Pin: "CK"}: 0,
		{Inst: d.Instance("ff1").ID, Pin: "CK"}: 100e-12,
	})
	sum := a.HoldTiming()
	if sum.Failing == 0 {
		t.Fatalf("expected hold violation under heavy skew: %+v", sum)
	}
	// slack = 50ps - (100ps + 5ps) = -55ps.
	if math.Abs(sum.WHS-(-55e-12)) > 1e-15 {
		t.Fatalf("WHS=%v want -55ps", sum.WHS)
	}
	if sum.THS > sum.WHS {
		t.Fatalf("THS %v should be <= WHS %v", sum.THS, sum.WHS)
	}
}

func TestHoldIgnoresCombOnlyDesign(t *testing.T) {
	d := combChain(t, 3)
	a := New(d, consFor(1e-9))
	sum := a.HoldTiming()
	if sum.Endpoints != 0 {
		t.Fatalf("pure combinational design has no hold endpoints: %+v", sum)
	}
}
