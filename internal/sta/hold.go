package sta

import (
	"math"

	"ppaclust/internal/netlist"
)

// Hold (min-delay) analysis: the fastest arrival at each register data pin
// must not beat the same-cycle clock edge plus the hold requirement. This
// mirrors the max-delay machinery with min-propagation; wire delays and arc
// delays are reused (a single corner — the common academic simplification).

// HoldSummary reports hold-check results.
type HoldSummary struct {
	WHS       float64 // worst hold slack (<= 0 when violating, else >= 0)
	THS       float64 // total (negative) hold slack
	Endpoints int
	Failing   int
}

// HoldTiming propagates minimum arrivals and evaluates hold checks at every
// register data input:
//
//	slack_hold = AT_min(D) - (clk_arrival + t_hold)
func (a *Analyzer) HoldTiming() HoldSummary {
	n := a.numNodes()
	minAT := make([]float64, n)
	hasMin := make([]bool, n)
	for i := range minAT {
		minAT[i] = math.Inf(1)
	}
	// Seed startpoints: input ports at their input delay, launch clk->Q at
	// clock arrival + min clk-to-q.
	for i := 0; i < n; i++ {
		if a.kind[i] == nodePortIn {
			if a.isClk[i] {
				minAT[i] = 0
			} else {
				minAT[i] = a.cons.InputDelay
			}
			hasMin[i] = true
		}
	}
	for _, v := range a.topo {
		for _, ei := range a.inEdge[a.inOff[v]:a.inOff[v+1]] {
			if !a.isLaunchEdge(ei) {
				continue
			}
			arc := a.eArc[ei]
			load := a.loadOf(v)
			clkAt := a.clockAtNode(a.eFrom[ei])
			at := clkAt + a.derate.early()*arc.Delay.Lookup(a.cons.InputSlew, load)
			if at < minAT[v] {
				minAT[v] = at
				hasMin[v] = true
			}
		}
		if !hasMin[v] {
			continue
		}
		for _, ei := range a.outEdge[a.outOff[v]:a.outOff[v+1]] {
			if a.isLaunchEdge(ei) {
				continue
			}
			arc := a.eArc[ei]
			to := a.eTo[ei]
			var at float64
			if arc != nil {
				at = minAT[v] + a.derate.early()*arc.Delay.Lookup(a.cons.InputSlew, a.loadOf(to))
			} else {
				sinkCap := a.nodeCap[to]
				at = minAT[v] + a.derate.early()*WireResPerMicron*a.eWire[ei]*(WireCapPerMicron*a.eWire[ei]/2+sinkCap)
			}
			if at < minAT[to] {
				minAT[to] = at
				hasMin[to] = true
			}
		}
	}

	var sum HoldSummary
	for i := 0; i < n; i++ {
		if a.kind[i] != nodeInput || !a.endp[i] || !hasMin[i] {
			continue
		}
		inst := a.nodeInst[i]
		mp := &a.d.Insts[inst].Master.Pins[a.nodeMP[i]]
		for ai := range mp.Arcs {
			arc := &mp.Arcs[ai]
			if arc.Kind != netlist.ArcHold {
				continue
			}
			hold := arc.Delay.Lookup(a.cons.InputSlew, 0)
			clkAt := a.clockAtInst(inst, arc.From)
			slack := minAT[i] - (clkAt + hold)
			sum.Endpoints++
			if slack < 0 {
				sum.Failing++
				sum.THS += slack
				if slack < sum.WHS {
					sum.WHS = slack
				}
			}
		}
	}
	return sum
}
