package sta

import (
	"math"

	"ppaclust/internal/netlist"
)

// Hold (min-delay) analysis: the fastest arrival at each register data pin
// must not beat the same-cycle clock edge plus the hold requirement. This
// mirrors the max-delay machinery with min-propagation; wire delays and arc
// delays are reused (a single corner — the common academic simplification).

// HoldSummary reports hold-check results.
type HoldSummary struct {
	WHS       float64 // worst hold slack (<= 0 when violating, else >= 0)
	THS       float64 // total (negative) hold slack
	Endpoints int
	Failing   int
}

// HoldTiming propagates minimum arrivals and evaluates hold checks at every
// register data input:
//
//	slack_hold = AT_min(D) - (clk_arrival + t_hold)
func (a *Analyzer) HoldTiming() HoldSummary {
	minAT := make([]float64, len(a.nodes))
	hasMin := make([]bool, len(a.nodes))
	for i := range minAT {
		minAT[i] = math.Inf(1)
	}
	// Seed startpoints: input ports at their input delay, launch clk->Q at
	// clock arrival + min clk-to-q.
	for i := range a.nodes {
		nd := &a.nodes[i]
		if nd.kind == nodePortIn {
			if nd.isClk {
				minAT[i] = 0
			} else {
				minAT[i] = a.cons.InputDelay
			}
			hasMin[i] = true
		}
	}
	for _, v := range a.topo {
		nd := &a.nodes[v]
		for _, ei := range a.in[v] {
			e := &a.edges[ei]
			if !e.isCell || e.arc.Kind != netlist.ArcClkToQ {
				continue
			}
			load := a.loadOf(v)
			clkAt := a.clockAtInst(nd.id.Inst, e.arc.From)
			at := clkAt + a.derate.early()*e.arc.Delay.Lookup(a.cons.InputSlew, load)
			if at < minAT[v] {
				minAT[v] = at
				hasMin[v] = true
			}
		}
		if !hasMin[v] {
			continue
		}
		for _, ei := range a.out[v] {
			e := &a.edges[ei]
			if e.isCell && e.arc.Kind == netlist.ArcClkToQ {
				continue
			}
			var at float64
			if e.isCell {
				at = minAT[v] + a.derate.early()*e.arc.Delay.Lookup(a.cons.InputSlew, a.loadOf(e.to))
			} else {
				sinkCap := a.sinkCap(e.to)
				at = minAT[v] + a.derate.early()*WireResPerMicron*e.wireLen*(WireCapPerMicron*e.wireLen/2+sinkCap)
			}
			if at < minAT[e.to] {
				minAT[e.to] = at
				hasMin[e.to] = true
			}
		}
	}

	var sum HoldSummary
	for i := range a.nodes {
		nd := &a.nodes[i]
		if nd.kind != nodeInput || !nd.endp || !hasMin[i] {
			continue
		}
		mp := a.d.Insts[nd.id.Inst].Master.Pin(nd.id.Pin)
		if mp == nil {
			continue
		}
		for ai := range mp.Arcs {
			arc := &mp.Arcs[ai]
			if arc.Kind != netlist.ArcHold {
				continue
			}
			hold := arc.Delay.Lookup(a.cons.InputSlew, 0)
			clkAt := a.clockAtInst(nd.id.Inst, arc.From)
			slack := minAT[i] - (clkAt + hold)
			sum.Endpoints++
			if slack < 0 {
				sum.Failing++
				sum.THS += slack
				if slack < sum.WHS {
					sum.WHS = slack
				}
			}
		}
	}
	return sum
}
