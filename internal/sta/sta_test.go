package sta

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"ppaclust/internal/netlist"
)

const (
	invDelay  = 10e-12
	clk2q     = 40e-12
	setupTime = 20e-12
	holdTime  = 5e-12
)

func lib() *netlist.Library {
	l := netlist.NewLibrary("t")
	inv := &netlist.Master{Name: "INV", Width: 1, Height: 2, Leakage: 1e-9}
	inv.AddPin(netlist.MasterPin{Name: "A", Dir: netlist.DirInput, Cap: 1e-15})
	y := inv.AddPin(netlist.MasterPin{Name: "Y", Dir: netlist.DirOutput, MaxCap: 50e-15})
	y.Arcs = []netlist.TimingArc{{From: "A", Kind: netlist.ArcComb,
		Delay: netlist.Const(invDelay), Slew: netlist.Const(5e-12), Energy: 1e-15}}
	nand := &netlist.Master{Name: "NAND2", Width: 1.5, Height: 2, Leakage: 2e-9}
	nand.AddPin(netlist.MasterPin{Name: "A", Dir: netlist.DirInput, Cap: 1e-15})
	nand.AddPin(netlist.MasterPin{Name: "B", Dir: netlist.DirInput, Cap: 1e-15})
	ny := nand.AddPin(netlist.MasterPin{Name: "Y", Dir: netlist.DirOutput, MaxCap: 50e-15})
	ny.Arcs = []netlist.TimingArc{
		{From: "A", Kind: netlist.ArcComb, Delay: netlist.Const(15e-12), Slew: netlist.Const(6e-12), Energy: 1.2e-15},
		{From: "B", Kind: netlist.ArcComb, Delay: netlist.Const(15e-12), Slew: netlist.Const(6e-12), Energy: 1.2e-15},
	}
	dff := &netlist.Master{Name: "DFF", Width: 3, Height: 2, Leakage: 3e-9}
	dff.AddPin(netlist.MasterPin{Name: "D", Dir: netlist.DirInput, Cap: 1.2e-15,
		Arcs: []netlist.TimingArc{
			{From: "CK", Kind: netlist.ArcSetup, Delay: netlist.Const(setupTime)},
			{From: "CK", Kind: netlist.ArcHold, Delay: netlist.Const(holdTime)},
		}})
	dff.AddPin(netlist.MasterPin{Name: "CK", Dir: netlist.DirInput, Cap: 0.8e-15, Clock: true})
	q := dff.AddPin(netlist.MasterPin{Name: "Q", Dir: netlist.DirOutput, MaxCap: 60e-15})
	q.Arcs = []netlist.TimingArc{{From: "CK", Kind: netlist.ArcClkToQ,
		Delay: netlist.Const(clk2q), Slew: netlist.Const(8e-12), Energy: 2e-15}}
	for _, m := range []*netlist.Master{inv, nand, dff} {
		if err := l.AddMaster(m); err != nil {
			panic(err)
		}
	}
	return l
}

// combChain: in -> INV*n -> out, all cells coincident so wire delay is zero.
func combChain(t *testing.T, n int) *netlist.Design {
	t.Helper()
	l := lib()
	d := netlist.NewDesign("chain", l)
	in, _ := d.AddPort("in", netlist.DirInput)
	in.X, in.Y = 0, 0
	out, _ := d.AddPort("out", netlist.DirOutput)
	out.X, out.Y = 0, 0
	prev := netlist.PinRef{Inst: -1, Pin: "in"}
	for i := 0; i < n; i++ {
		inst, err := d.AddInstance(fmt.Sprintf("i%d", i), l.Master("INV"))
		if err != nil {
			t.Fatal(err)
		}
		inst.X, inst.Y = -0.5, -1 // center at origin
		net, _ := d.AddNet(fmt.Sprintf("n%d", i))
		d.Connect(net, prev)
		d.Connect(net, netlist.PinRef{Inst: inst.ID, Pin: "A"})
		prev = netlist.PinRef{Inst: inst.ID, Pin: "Y"}
	}
	last, _ := d.AddNet("nout")
	d.Connect(last, prev)
	d.Connect(last, netlist.PinRef{Inst: -1, Pin: "out"})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

// regPair: clk port -> two DFFs; ff0.Q -> INV -> ff1.D. Coincident placement.
func regPair(t *testing.T) *netlist.Design {
	t.Helper()
	l := lib()
	d := netlist.NewDesign("regpair", l)
	clk, _ := d.AddPort("clk", netlist.DirInput)
	clk.X, clk.Y = 0, 0
	ff0, _ := d.AddInstance("ff0", l.Master("DFF"))
	ff1, _ := d.AddInstance("ff1", l.Master("DFF"))
	inv, _ := d.AddInstance("mid", l.Master("INV"))
	for _, inst := range d.Insts {
		inst.X, inst.Y = -inst.Master.Width/2, -1
	}
	cn, _ := d.AddNet("clknet")
	cn.Clock = true
	d.Connect(cn, netlist.PinRef{Inst: -1, Pin: "clk"})
	d.Connect(cn, netlist.PinRef{Inst: ff0.ID, Pin: "CK"})
	d.Connect(cn, netlist.PinRef{Inst: ff1.ID, Pin: "CK"})
	n0, _ := d.AddNet("q0")
	d.Connect(n0, netlist.PinRef{Inst: ff0.ID, Pin: "Q"})
	d.Connect(n0, netlist.PinRef{Inst: inv.ID, Pin: "A"})
	n1, _ := d.AddNet("d1")
	d.Connect(n1, netlist.PinRef{Inst: inv.ID, Pin: "Y"})
	d.Connect(n1, netlist.PinRef{Inst: ff1.ID, Pin: "D"})
	// ff0.D floats; drive it from a data port to make it reachable.
	din, _ := d.AddPort("din", netlist.DirInput)
	din.X, din.Y = 0, 0
	nd, _ := d.AddNet("d0")
	d.Connect(nd, netlist.PinRef{Inst: -1, Pin: "din"})
	d.Connect(nd, netlist.PinRef{Inst: ff0.ID, Pin: "D"})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func consFor(period float64, clocks ...string) Constraints {
	c := DefaultConstraints(period)
	c.ClockPorts = clocks
	return c
}

func TestCombChainArrival(t *testing.T) {
	d := combChain(t, 3)
	cons := consFor(1e-9)
	a := New(d, cons)
	at, ok := a.ArrivalAt(PinID{Inst: -1, Pin: "out"})
	if !ok {
		t.Fatal("out not reached")
	}
	want := cons.InputDelay + 3*invDelay
	if math.Abs(at-want) > 1e-15 {
		t.Fatalf("AT(out)=%v want %v", at, want)
	}
	slack := a.SlackAt(PinID{Inst: -1, Pin: "out"})
	wantSlack := (1e-9 - cons.OutputDelay) - want
	if math.Abs(slack-wantSlack) > 1e-15 {
		t.Fatalf("slack=%v want %v", slack, wantSlack)
	}
	sum := a.Timing()
	if sum.Endpoints != 1 || sum.Failing != 0 || sum.WNS != 0 || sum.TNS != 0 {
		t.Fatalf("summary=%+v", sum)
	}
}

func TestCombChainViolation(t *testing.T) {
	d := combChain(t, 5)
	// Make the clock absurdly tight so the path fails.
	cons := consFor(40e-12)
	a := New(d, cons)
	sum := a.Timing()
	if sum.Failing != 1 || sum.WNS >= 0 || math.Abs(sum.TNS-sum.WNS) > 1e-18 {
		t.Fatalf("summary=%+v", sum)
	}
}

func TestRegToRegSlack(t *testing.T) {
	d := regPair(t)
	period := 100e-12
	a := New(d, consFor(period, "clk"))
	slack := a.SlackAt(PinID{Inst: d.Instance("ff1").ID, Pin: "D"})
	want := period - setupTime - (clk2q + invDelay)
	if math.Abs(slack-want) > 1e-15 {
		t.Fatalf("slack=%v want %v", slack, want)
	}
}

func TestClockArrivalsShiftSlack(t *testing.T) {
	d := regPair(t)
	period := 100e-12
	a := New(d, consFor(period, "clk"))
	base := a.SlackAt(PinID{Inst: d.Instance("ff1").ID, Pin: "D"})
	// Useful skew: delay capture clock by 10ps -> slack improves by 10ps.
	skew := 10e-12
	a.SetClockArrivals(map[PinID]float64{
		{Inst: d.Instance("ff0").ID, Pin: "CK"}: 0,
		{Inst: d.Instance("ff1").ID, Pin: "CK"}: skew,
	})
	got := a.SlackAt(PinID{Inst: d.Instance("ff1").ID, Pin: "D"})
	if math.Abs(got-(base+skew)) > 1e-15 {
		t.Fatalf("slack with skew=%v want %v", got, base+skew)
	}
	// Restore ideal clock.
	a.SetClockArrivals(nil)
	if math.Abs(a.SlackAt(PinID{Inst: d.Instance("ff1").ID, Pin: "D"})-base) > 1e-15 {
		t.Fatal("resetting clock arrivals should restore base slack")
	}
}

func TestWireDelayMatters(t *testing.T) {
	d := combChain(t, 2)
	cons := consFor(1e-9)
	a := New(d, cons)
	at0, _ := a.ArrivalAt(PinID{Inst: -1, Pin: "out"})
	// Spread the cells far apart and update.
	d.Insts[0].X, d.Insts[0].Y = 0, 0
	d.Insts[1].X, d.Insts[1].Y = 500, 500
	a.Update()
	at1, _ := a.ArrivalAt(PinID{Inst: -1, Pin: "out"})
	if at1 <= at0 {
		t.Fatalf("wire delay did not increase arrival: %v <= %v", at1, at0)
	}
}

func TestTopPathsOrderAndContent(t *testing.T) {
	d := regPair(t)
	a := New(d, consFor(50e-12, "clk"))
	paths := a.TopPaths(10)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	for i := 1; i < len(paths); i++ {
		if paths[i].Slack < paths[i-1].Slack {
			t.Fatal("paths not sorted by ascending slack")
		}
	}
	// The worst path should end at ff1/D and start at ff0 (launch).
	p := paths[0]
	ff1 := d.Instance("ff1").ID
	if p.Endpoint != (PinID{Inst: ff1, Pin: "D"}) {
		t.Fatalf("worst endpoint=%v", p.Endpoint)
	}
	first := p.Pins[0]
	if first.Inst != d.Instance("ff0").ID {
		t.Fatalf("path should start at ff0 launch, got %v", first)
	}
	if len(p.Nets) == 0 {
		t.Fatal("path should traverse nets")
	}
}

func TestTopPathsLimit(t *testing.T) {
	d := regPair(t)
	a := New(d, consFor(50e-12, "clk"))
	if got := len(a.TopPaths(1)); got != 1 {
		t.Fatalf("len=%d want 1", got)
	}
}

func TestNetSlack(t *testing.T) {
	d := regPair(t)
	a := New(d, consFor(50e-12, "clk"))
	ns := a.NetSlack()
	q0 := d.Net("q0").ID
	d1 := d.Net("d1").ID
	if math.IsInf(ns[q0], 1) || math.IsInf(ns[d1], 1) {
		t.Fatalf("critical nets should have finite slack: q0=%v d1=%v", ns[q0], ns[d1])
	}
	// Data path is failing at 50ps period (needs 70ps), so slacks negative.
	if ns[d1] >= 0 {
		t.Fatalf("d1 slack=%v want negative", ns[d1])
	}
}

func TestActivityPropagation(t *testing.T) {
	d := regPair(t)
	cons := consFor(1e-9, "clk")
	a := New(d, cons)
	act := a.NetActivity()
	if got := act[d.Net("clknet").ID]; got != 2.0 {
		t.Fatalf("clock activity=%v want 2", got)
	}
	// ff0 Q toggles at half its D activity.
	wantQ := 0.5 * cons.InputActivity
	if got := act[d.Net("q0").ID]; math.Abs(got-wantQ) > 1e-12 {
		t.Fatalf("q0 activity=%v want %v", got, wantQ)
	}
	// INV preserves activity.
	if got := act[d.Net("d1").ID]; math.Abs(got-wantQ) > 1e-12 {
		t.Fatalf("d1 activity=%v want %v", got, wantQ)
	}
}

func TestActivityGateAttenuation(t *testing.T) {
	l := lib()
	d := netlist.NewDesign("nand", l)
	a1, _ := d.AddPort("a", netlist.DirInput)
	a1.X, a1.Y = 0, 0
	b1, _ := d.AddPort("b", netlist.DirInput)
	b1.X, b1.Y = 0, 0
	out, _ := d.AddPort("y", netlist.DirOutput)
	out.X, out.Y = 0, 0
	g, _ := d.AddInstance("g", l.Master("NAND2"))
	na, _ := d.AddNet("na")
	d.Connect(na, netlist.PinRef{Inst: -1, Pin: "a"})
	d.Connect(na, netlist.PinRef{Inst: g.ID, Pin: "A"})
	nb, _ := d.AddNet("nb")
	d.Connect(nb, netlist.PinRef{Inst: -1, Pin: "b"})
	d.Connect(nb, netlist.PinRef{Inst: g.ID, Pin: "B"})
	ny, _ := d.AddNet("ny")
	d.Connect(ny, netlist.PinRef{Inst: g.ID, Pin: "Y"})
	d.Connect(ny, netlist.PinRef{Inst: -1, Pin: "y"})
	cons := consFor(1e-9)
	an := New(d, cons)
	act := an.NetActivity()
	want := 0.75 * cons.InputActivity
	if got := act[ny.ID]; math.Abs(got-want) > 1e-12 {
		t.Fatalf("nand out activity=%v want %v", got, want)
	}
}

func TestActivityFactorFamilies(t *testing.T) {
	cases := map[string]float64{
		"XOR2_X1": 1.5, "NAND2_X2": 0.75, "NOR3_X1": 0.75, "AOI21_X1": 0.75,
		"MUX2_X1": 0.9, "INV_X4": 1.0, "BUF_X8": 1.0, "DFF_X1": 1.0,
	}
	for name, want := range cases {
		if got := activityFactor(name); got != want {
			t.Errorf("activityFactor(%s)=%v want %v", name, got, want)
		}
	}
}

func TestUnconstrainedPinSlackInf(t *testing.T) {
	d := combChain(t, 1)
	a := New(d, consFor(1e-9))
	if !math.IsInf(a.SlackAt(PinID{Inst: 99, Pin: "Z"}), 1) {
		t.Fatal("unknown pin should report +Inf slack")
	}
}

func TestCombinationalLoopDoesNotHang(t *testing.T) {
	l := lib()
	d := netlist.NewDesign("loop", l)
	g0, _ := d.AddInstance("g0", l.Master("INV"))
	g1, _ := d.AddInstance("g1", l.Master("INV"))
	n0, _ := d.AddNet("n0")
	d.Connect(n0, netlist.PinRef{Inst: g0.ID, Pin: "Y"})
	d.Connect(n0, netlist.PinRef{Inst: g1.ID, Pin: "A"})
	n1, _ := d.AddNet("n1")
	d.Connect(n1, netlist.PinRef{Inst: g1.ID, Pin: "Y"})
	d.Connect(n1, netlist.PinRef{Inst: g0.ID, Pin: "A"})
	a := New(d, consFor(1e-9))
	a.Run() // must terminate
	sum := a.Timing()
	if sum.Endpoints != 0 {
		t.Fatalf("loop-only design has no endpoints, got %+v", sum)
	}
}

func TestWriteReport(t *testing.T) {
	d := regPair(t)
	a := New(d, consFor(50e-12, "clk"))
	var sb strings.Builder
	if err := a.WriteReport(&sb, 2); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Path 1", "slack (VIOLATED)", "data required time", "wns"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// Empty design reports gracefully.
	lib2 := lib()
	empty := netlist.NewDesign("e", lib2)
	a2 := New(empty, consFor(1e-9))
	sb.Reset()
	if err := a2.WriteReport(&sb, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "No constrained paths") {
		t.Fatal("empty report wrong")
	}
}
