package sta

import (
	"math"
	"testing"
)

// TestParallelScheduleEngages guards against the parallel path silently
// degrading to the sequential fallback on ordinary designs.
func TestParallelScheduleEngages(t *testing.T) {
	d := benchPipeline(6, 5)
	a := New(d, DefaultConstraints(1e-9))
	if !a.ensureSched() {
		t.Fatal("level schedule rejected an acyclic pipeline")
	}
	if len(a.sched.levelOff) < 3 {
		t.Fatalf("suspiciously flat schedule: %d levels", len(a.sched.levelOff)-1)
	}
}

// TestParallelPropagationMatchesSequential checks bit-identical arrival,
// required and slack values between the sequential pass and the levelized
// parallel pass on the pipeline fixture, with and without wire parasitics.
func TestParallelPropagationMatchesSequential(t *testing.T) {
	for _, zeroWire := range []bool{true, false} {
		d := benchPipeline(8, 6)
		cons := DefaultConstraints(0.4e-9)
		cons.ClockPorts = []string{"clk"}
		cons.ZeroWire = zeroWire

		seq := New(d, cons)
		seq.Workers = 1
		pp := New(d, cons)
		pp.Workers = 4
		if !pp.ensureSched() {
			t.Fatal("parallel schedule unavailable")
		}
		seq.Run()
		pp.Run()

		if len(seq.nodes) != len(pp.nodes) {
			t.Fatal("node count mismatch")
		}
		for i := range seq.nodes {
			s, p := &seq.nodes[i], &pp.nodes[i]
			if s.hasAT != p.hasAT || s.hasRAT != p.hasRAT || s.worstIn != p.worstIn {
				t.Fatalf("zeroWire=%v node %v: flags differ (hasAT %v/%v hasRAT %v/%v worstIn %d/%d)",
					zeroWire, s.id, s.hasAT, p.hasAT, s.hasRAT, p.hasRAT, s.worstIn, p.worstIn)
			}
			if math.Float64bits(s.at) != math.Float64bits(p.at) ||
				math.Float64bits(s.rat) != math.Float64bits(p.rat) ||
				math.Float64bits(s.slew) != math.Float64bits(p.slew) {
				t.Fatalf("zeroWire=%v node %v: at %v/%v rat %v/%v slew %v/%v",
					zeroWire, s.id, s.at, p.at, s.rat, p.rat, s.slew, p.slew)
			}
		}
	}
}
