package sta

import (
	"math"
	"testing"
)

// TestParallelScheduleEngages guards against the parallel path silently
// degrading to the sequential fallback on ordinary designs.
func TestParallelScheduleEngages(t *testing.T) {
	d := benchPipeline(6, 5)
	a := New(d, DefaultConstraints(1e-9))
	if !a.ensureSched() {
		t.Fatal("level schedule rejected an acyclic pipeline")
	}
	if len(a.sched.levelOff) < 3 {
		t.Fatalf("suspiciously flat schedule: %d levels", len(a.sched.levelOff)-1)
	}
}

// TestParallelPropagationMatchesSequential checks bit-identical arrival,
// required and slack values between the sequential pass and the levelized
// parallel pass on the pipeline fixture, with and without wire parasitics.
func TestParallelPropagationMatchesSequential(t *testing.T) {
	for _, zeroWire := range []bool{true, false} {
		d := benchPipeline(8, 6)
		cons := DefaultConstraints(0.4e-9)
		cons.ClockPorts = []string{"clk"}
		cons.ZeroWire = zeroWire

		seq := New(d, cons)
		seq.Workers = 1
		pp := New(d, cons)
		pp.Workers = 4
		if !pp.ensureSched() {
			t.Fatal("parallel schedule unavailable")
		}
		seq.Run()
		pp.Run()

		if seq.numNodes() != pp.numNodes() {
			t.Fatal("node count mismatch")
		}
		for i := 0; i < seq.numNodes(); i++ {
			if seq.hasAT[i] != pp.hasAT[i] || seq.hasRAT[i] != pp.hasRAT[i] || seq.worstIn[i] != pp.worstIn[i] {
				t.Fatalf("zeroWire=%v node %v: flags differ (hasAT %v/%v hasRAT %v/%v worstIn %d/%d)",
					zeroWire, seq.pinIDOf(i), seq.hasAT[i], pp.hasAT[i], seq.hasRAT[i], pp.hasRAT[i], seq.worstIn[i], pp.worstIn[i])
			}
			if math.Float64bits(seq.at[i]) != math.Float64bits(pp.at[i]) ||
				math.Float64bits(seq.rat[i]) != math.Float64bits(pp.rat[i]) ||
				math.Float64bits(seq.slew[i]) != math.Float64bits(pp.slew[i]) {
				t.Fatalf("zeroWire=%v node %v: at %v/%v rat %v/%v slew %v/%v",
					zeroWire, seq.pinIDOf(i), seq.at[i], pp.at[i], seq.rat[i], pp.rat[i], seq.slew[i], pp.slew[i])
			}
		}
	}
}
