// Benchmarks for the incremental engine: a ≤5% perturbation followed by
// Update vs. a from-scratch sta.New + full propagation, on the largest
// generated design (results recorded in BENCH_incremental.json).
package sta_test

import (
	"math/rand"
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/netlist"
	"ppaclust/internal/sta"
)

func benchDesign(b *testing.B) *designs.Benchmark {
	b.Helper()
	name := "mpg" // largest spec (~27k insts)
	if testing.Short() {
		name = "aes"
	}
	spec, ok := designs.Named(name)
	if !ok {
		b.Fatalf("unknown design %s", name)
	}
	bm := designs.Generate(spec)
	rng := rand.New(rand.NewSource(77))
	for _, inst := range bm.Design.Insts {
		if inst.Fixed {
			continue
		}
		inst.X = bm.Design.Core.X0 + rng.Float64()*(bm.Design.Core.W()-inst.Master.Width)
		inst.Y = bm.Design.Core.Y0 + rng.Float64()*(bm.Design.Core.H()-inst.Master.Height)
		inst.Placed = true
	}
	return bm
}

// perturbCells moves ~5% of the movable cells, returning the moved IDs.
func perturbCells(d *netlist.Design, rng *rand.Rand) []int {
	var moved []int
	for _, inst := range d.Insts {
		if inst.Fixed || rng.Float64() >= 0.05 {
			continue
		}
		inst.X = d.Core.X0 + rng.Float64()*(d.Core.W()-inst.Master.Width)
		inst.Y = d.Core.Y0 + rng.Float64()*(d.Core.H()-inst.Master.Height)
		moved = append(moved, inst.ID)
	}
	return moved
}

// BenchmarkIncrementalSTA: perturb 5% of cells, Invalidate + Update through
// the dirty cones, and read the timing summary.
func BenchmarkIncrementalSTA(b *testing.B) {
	bm := benchDesign(b)
	an := sta.New(bm.Design, bm.Cons)
	an.Workers = 1
	an.Run()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, id := range perturbCells(bm.Design, rng) {
			an.InvalidateInst(id)
		}
		an.Update()
		an.Timing()
	}
}

// BenchmarkFullSTAReanalysis: the same perturbation followed by the
// pre-incremental protocol — a fresh analyzer build and full propagation.
func BenchmarkFullSTAReanalysis(b *testing.B) {
	bm := benchDesign(b)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perturbCells(bm.Design, rng)
		an := sta.New(bm.Design, bm.Cons)
		an.Workers = 1
		an.Timing()
	}
}
