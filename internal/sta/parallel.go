// Levelized parallel arrival/required propagation.
//
// The sequential passes in sta.go are push-relaxations over the topological
// order. The parallel kernels below restate them as pull-reductions over a
// level schedule: level(v) = 1 + max level over ALL in-edges (including
// clk->Q launch arcs), so when a level runs, every value a node reads — its
// sources' at/slew on the forward pass, its sinks' rat on the backward pass,
// and the clock-pin slew a launch arc samples — is final. Nodes within a
// level touch only their own fields, so workers never race.
//
// Bit-exactness: for each node the incoming candidates are applied in
// exactly the order the sequential pass would have relaxed them —
// (topo rank of source, edge id) on the forward pass with launch arcs last,
// (descending topo rank of sink, edge id) on the backward pass — with the
// same strict comparisons. Since each candidate is computed from the same
// finalized inputs with the same float64 expressions, the parallel result is
// bit-identical to Workers=1 regardless of worker count or scheduling.
//
// Two graph shapes cannot be scheduled this way and fall back to the
// sequential pass: graphs whose full edge set (with clk->Q arcs) is cyclic,
// and graphs where a launch arc's clock pin is still being relaxed when the
// sequential pass samples its slew (some clock-network writer ranks after
// the launch target). ensureSched detects both once per graph build.
package sta

import (
	"math"
	"sort"

	"ppaclust/internal/netlist"
	"ppaclust/internal/par"
)

// parSched is the cached level schedule and per-node pull orders.
type parSched struct {
	done bool
	ok   bool

	levelOff   []int   // level -> offset into levelNodes
	levelNodes []int32 // nodes grouped by level

	pullInOff []int32 // node -> offset into pullIn
	pullIn    []int32 // in-edge ids in sequential relax order (launches last)

	pullOutOff []int32 // node -> offset into pullOut
	pullOut    []int32 // out-edge ids in sequential backward relax order
}

// ParallelScheduled reports whether the timing graph admits the levelized
// parallel propagation; when false, Run silently uses the sequential passes
// whatever Workers says. Diagnostic, and used by equivalence tests to prove
// the parallel path actually engaged.
func (a *Analyzer) ParallelScheduled() bool { return a.ensureSched() }

// ensureSched builds (once) the level schedule; false means the graph cannot
// be scheduled and callers must use the sequential passes.
func (a *Analyzer) ensureSched() bool {
	if a.sched.done {
		return a.sched.ok
	}
	a.sched.done = true
	if a.cyclic {
		return false
	}
	if len(a.eFrom) > math.MaxInt32 {
		return false // pull-order offsets are int32; fall back to the sequential passes
	}
	n := a.numNodes()
	rank := make([]int32, n)
	for i, v := range a.topo {
		rank[v] = int32(i)
	}

	// Longest-path levels over the full edge set (launch arcs included, so
	// a launch's clock-pin slew is final before its target level runs).
	indeg := make([]int32, n)
	for _, t := range a.eTo {
		indeg[t]++
	}
	level := make([]int32, n)
	queue := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		for _, ei := range a.outEdge[a.outOff[v]:a.outOff[v+1]] {
			t := a.eTo[ei]
			if l := level[v] + 1; l > level[t] {
				level[t] = l
			}
			if indeg[t]--; indeg[t] == 0 {
				queue = append(queue, t)
			}
		}
	}
	if len(queue) < n {
		return false // launch arcs close a cycle over the full edge set
	}

	// Launch-safety: when a launch arc's clock pin c ranks after its target
	// v, the sequential pass samples c.slew mid-relaxation unless every
	// writer of c (its in-edge sources) ranks before v.
	for ei := range a.eFrom {
		if !a.isLaunchEdge(int32(ei)) || rank[a.eFrom[ei]] <= rank[a.eTo[ei]] {
			continue
		}
		from := a.eFrom[ei]
		for _, ci := range a.inEdge[a.inOff[from]:a.inOff[from+1]] {
			if rank[a.eFrom[ci]] > rank[a.eTo[ei]] {
				return false
			}
		}
	}

	// Bucket nodes by level.
	maxLevel := int32(0)
	for _, l := range level {
		if l > maxLevel {
			maxLevel = l
		}
	}
	a.sched.levelOff = make([]int, maxLevel+2)
	for _, l := range level {
		a.sched.levelOff[l+1]++
	}
	for i := 1; i < len(a.sched.levelOff); i++ {
		a.sched.levelOff[i] += a.sched.levelOff[i-1]
	}
	a.sched.levelNodes = make([]int32, n)
	fill := append([]int(nil), a.sched.levelOff...)
	for v := 0; v < n; v++ {
		a.sched.levelNodes[fill[level[v]]] = int32(v)
		fill[level[v]]++
	}

	// Forward pull order per node: plain in-edges by (source rank, edge id)
	// — the order their sources' visits relaxed this node — then launch arcs
	// in in-list order (they fire at the node's own visit).
	a.sched.pullInOff = make([]int32, n+1)
	a.sched.pullIn = make([]int32, 0, len(a.eFrom))
	var tmp []int32
	for v := 0; v < n; v++ {
		tmp = tmp[:0]
		for _, ei := range a.inEdge[a.inOff[v]:a.inOff[v+1]] {
			if !a.isLaunchEdge(ei) {
				tmp = append(tmp, ei)
			}
		}
		sort.Slice(tmp, func(i, j int) bool {
			ri, rj := rank[a.eFrom[tmp[i]]], rank[a.eFrom[tmp[j]]]
			if ri != rj {
				return ri < rj
			}
			return tmp[i] < tmp[j]
		})
		a.sched.pullIn = append(a.sched.pullIn, tmp...)
		for _, ei := range a.inEdge[a.inOff[v]:a.inOff[v+1]] {
			if a.isLaunchEdge(ei) {
				a.sched.pullIn = append(a.sched.pullIn, ei)
			}
		}
		a.sched.pullInOff[v+1] = int32(len(a.sched.pullIn))
	}

	// Backward pull order per node: out-edges (launches excluded, as in the
	// sequential pass) by (descending sink rank, edge id) — the order the
	// sinks' reverse-topo visits relaxed this node.
	a.sched.pullOutOff = make([]int32, n+1)
	a.sched.pullOut = make([]int32, 0, len(a.eFrom))
	for v := 0; v < n; v++ {
		tmp = tmp[:0]
		for _, ei := range a.outEdge[a.outOff[v]:a.outOff[v+1]] {
			if !a.isLaunchEdge(ei) {
				tmp = append(tmp, ei)
			}
		}
		sort.Slice(tmp, func(i, j int) bool {
			ri, rj := rank[a.eTo[tmp[i]]], rank[a.eTo[tmp[j]]]
			if ri != rj {
				return ri > rj
			}
			return tmp[i] < tmp[j]
		})
		a.sched.pullOut = append(a.sched.pullOut, tmp...)
		a.sched.pullOutOff[v+1] = int32(len(a.sched.pullOut))
	}

	a.sched.ok = true
	return true
}

func (a *Analyzer) propagateArrivalsPar(workers int) {
	par.ForEach(workers, a.numNodes(), func(i int) {
		a.at[i] = math.Inf(-1)
		a.hasAT[i] = false
		a.worstIn[i] = -1
		a.slew[i] = a.cons.InputSlew
		if a.kind[i] == nodePortIn {
			if a.isClk[i] {
				a.at[i] = 0
			} else {
				a.at[i] = a.cons.InputDelay
			}
			a.hasAT[i] = true
		}
	})
	for li := 0; li+1 < len(a.sched.levelOff); li++ {
		lo, hi := a.sched.levelOff[li], a.sched.levelOff[li+1]
		par.ForEach(workers, hi-lo, func(k int) {
			a.pullArrival(a.sched.levelNodes[lo+k])
		})
	}
}

// pullArrival applies every in-candidate of v in sequential relax order.
func (a *Analyzer) pullArrival(v int32) {
	for _, ei := range a.sched.pullIn[a.sched.pullInOff[v]:a.sched.pullInOff[v+1]] {
		arc := a.eArc[ei]
		if arc != nil && arc.Kind == netlist.ArcClkToQ {
			load := a.loadOf(v)
			clkAt := a.clockAtNode(a.eFrom[ei])
			slewIn := a.slew[a.eFrom[ei]]
			at := clkAt + a.derate.late()*arc.Delay.Lookup(slewIn, load)
			if at > a.at[v] {
				a.at[v] = at
				a.hasAT[v] = true
				a.worstIn[v] = ei
				a.slew[v] = arc.Slew.Lookup(slewIn, load)
			}
			continue
		}
		from := a.eFrom[ei]
		if !a.hasAT[from] {
			continue
		}
		var at, slew float64
		if arc != nil {
			load := a.loadOf(v)
			at = a.at[from] + a.derate.late()*arc.Delay.Lookup(a.slew[from], load)
			slew = arc.Slew.Lookup(a.slew[from], load)
		} else {
			sinkCap := a.nodeCap[v]
			wd := a.derate.late() * WireResPerMicron * a.eWire[ei] * (WireCapPerMicron*a.eWire[ei]/2 + sinkCap)
			at = a.at[from] + wd
			slew = a.slew[from] + 0.2*wd
		}
		if at > a.at[v] {
			a.at[v] = at
			a.hasAT[v] = true
			a.worstIn[v] = ei
			a.slew[v] = slew
		}
	}
}

func (a *Analyzer) propagateRequiredPar(workers int) {
	T := a.cons.ClockPeriod
	par.ForEach(workers, a.numNodes(), func(i int) {
		a.rat[i] = math.Inf(1)
		a.hasRAT[i] = false
		if a.endp[i] {
			a.seedRequired(int32(i), T)
		}
	})
	for li := len(a.sched.levelOff) - 2; li >= 0; li-- {
		lo, hi := a.sched.levelOff[li], a.sched.levelOff[li+1]
		par.ForEach(workers, hi-lo, func(k int) {
			a.pullRequired(a.sched.levelNodes[lo+k])
		})
	}
}

// pullRequired applies every out-candidate of u in sequential relax order.
func (a *Analyzer) pullRequired(u int32) {
	for _, ei := range a.sched.pullOut[a.sched.pullOutOff[u]:a.sched.pullOutOff[u+1]] {
		to := a.eTo[ei]
		if !a.hasRAT[to] {
			continue
		}
		arc := a.eArc[ei]
		var rat float64
		if arc != nil {
			load := a.loadOf(to)
			rat = a.rat[to] - a.derate.late()*arc.Delay.Lookup(a.slew[u], load)
		} else {
			sinkCap := a.nodeCap[to]
			wd := a.derate.late() * WireResPerMicron * a.eWire[ei] * (WireCapPerMicron*a.eWire[ei]/2 + sinkCap)
			rat = a.rat[to] - wd
		}
		if rat < a.rat[u] {
			a.rat[u] = rat
			a.hasRAT[u] = true
		}
	}
}
