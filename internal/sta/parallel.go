// Levelized parallel arrival/required propagation.
//
// The sequential passes in sta.go are push-relaxations over the topological
// order. The parallel kernels below restate them as pull-reductions over a
// level schedule: level(v) = 1 + max level over ALL in-edges (including
// clk->Q launch arcs), so when a level runs, every value a node reads — its
// sources' at/slew on the forward pass, its sinks' rat on the backward pass,
// and the clock-pin slew a launch arc samples — is final. Nodes within a
// level touch only their own fields, so workers never race.
//
// Bit-exactness: for each node the incoming candidates are applied in
// exactly the order the sequential pass would have relaxed them —
// (topo rank of source, edge id) on the forward pass with launch arcs last,
// (descending topo rank of sink, edge id) on the backward pass — with the
// same strict comparisons. Since each candidate is computed from the same
// finalized inputs with the same float64 expressions, the parallel result is
// bit-identical to Workers=1 regardless of worker count or scheduling.
//
// Two graph shapes cannot be scheduled this way and fall back to the
// sequential pass: graphs whose full edge set (with clk->Q arcs) is cyclic,
// and graphs where a launch arc's clock pin is still being relaxed when the
// sequential pass samples its slew (some clock-network writer ranks after
// the launch target). ensureSched detects both once per graph build.
package sta

import (
	"math"
	"sort"

	"ppaclust/internal/netlist"
	"ppaclust/internal/par"
)

// parSched is the cached level schedule and per-node pull orders.
type parSched struct {
	done bool
	ok   bool

	levelOff   []int   // level -> offset into levelNodes
	levelNodes []int32 // nodes grouped by level

	pullInOff []int32 // node -> offset into pullIn
	pullIn    []int32 // in-edge ids in sequential relax order (launches last)

	pullOutOff []int32 // node -> offset into pullOut
	pullOut    []int32 // out-edge ids in sequential backward relax order
}

func (e *edge) isLaunch() bool {
	return e.isCell && e.arc.Kind == netlist.ArcClkToQ
}

// ParallelScheduled reports whether the timing graph admits the levelized
// parallel propagation; when false, Run silently uses the sequential passes
// whatever Workers says. Diagnostic, and used by equivalence tests to prove
// the parallel path actually engaged.
func (a *Analyzer) ParallelScheduled() bool { return a.ensureSched() }

// ensureSched builds (once) the level schedule; false means the graph cannot
// be scheduled and callers must use the sequential passes.
func (a *Analyzer) ensureSched() bool {
	if a.sched.done {
		return a.sched.ok
	}
	a.sched.done = true
	if a.cyclic {
		return false
	}
	n := len(a.nodes)
	rank := make([]int32, n)
	for i, v := range a.topo {
		rank[v] = int32(i)
	}

	// Longest-path levels over the full edge set (launch arcs included, so
	// a launch's clock-pin slew is final before its target level runs).
	indeg := make([]int32, n)
	for _, e := range a.edges {
		indeg[e.to]++
	}
	level := make([]int32, n)
	queue := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		v := int(queue[qi])
		for _, ei := range a.out[v] {
			t := a.edges[ei].to
			if l := level[v] + 1; l > level[t] {
				level[t] = l
			}
			if indeg[t]--; indeg[t] == 0 {
				queue = append(queue, int32(t))
			}
		}
	}
	if len(queue) < n {
		return false // launch arcs close a cycle over the full edge set
	}

	// Launch-safety: when a launch arc's clock pin c ranks after its target
	// v, the sequential pass samples c.slew mid-relaxation unless every
	// writer of c (its in-edge sources) ranks before v.
	for ei := range a.edges {
		e := &a.edges[ei]
		if !e.isLaunch() || rank[e.from] <= rank[e.to] {
			continue
		}
		for _, ci := range a.in[e.from] {
			if rank[a.edges[ci].from] > rank[e.to] {
				return false
			}
		}
	}

	// Bucket nodes by level.
	maxLevel := int32(0)
	for _, l := range level {
		if l > maxLevel {
			maxLevel = l
		}
	}
	a.sched.levelOff = make([]int, maxLevel+2)
	for _, l := range level {
		a.sched.levelOff[l+1]++
	}
	for i := 1; i < len(a.sched.levelOff); i++ {
		a.sched.levelOff[i] += a.sched.levelOff[i-1]
	}
	a.sched.levelNodes = make([]int32, n)
	fill := append([]int(nil), a.sched.levelOff...)
	for v := 0; v < n; v++ {
		a.sched.levelNodes[fill[level[v]]] = int32(v)
		fill[level[v]]++
	}

	// Forward pull order per node: plain in-edges by (source rank, edge id)
	// — the order their sources' visits relaxed this node — then launch arcs
	// in in-list order (they fire at the node's own visit).
	a.sched.pullInOff = make([]int32, n+1)
	a.sched.pullIn = make([]int32, 0, len(a.edges))
	var tmp []int32
	for v := 0; v < n; v++ {
		tmp = tmp[:0]
		for _, ei := range a.in[v] {
			if !a.edges[ei].isLaunch() {
				tmp = append(tmp, int32(ei))
			}
		}
		sort.Slice(tmp, func(i, j int) bool {
			ri, rj := rank[a.edges[tmp[i]].from], rank[a.edges[tmp[j]].from]
			if ri != rj {
				return ri < rj
			}
			return tmp[i] < tmp[j]
		})
		a.sched.pullIn = append(a.sched.pullIn, tmp...)
		for _, ei := range a.in[v] {
			if a.edges[ei].isLaunch() {
				a.sched.pullIn = append(a.sched.pullIn, int32(ei))
			}
		}
		a.sched.pullInOff[v+1] = int32(len(a.sched.pullIn))
	}

	// Backward pull order per node: out-edges (launches excluded, as in the
	// sequential pass) by (descending sink rank, edge id) — the order the
	// sinks' reverse-topo visits relaxed this node.
	a.sched.pullOutOff = make([]int32, n+1)
	a.sched.pullOut = make([]int32, 0, len(a.edges))
	for v := 0; v < n; v++ {
		tmp = tmp[:0]
		for _, ei := range a.out[v] {
			if !a.edges[ei].isLaunch() {
				tmp = append(tmp, int32(ei))
			}
		}
		sort.Slice(tmp, func(i, j int) bool {
			ri, rj := rank[a.edges[tmp[i]].to], rank[a.edges[tmp[j]].to]
			if ri != rj {
				return ri > rj
			}
			return tmp[i] < tmp[j]
		})
		a.sched.pullOut = append(a.sched.pullOut, tmp...)
		a.sched.pullOutOff[v+1] = int32(len(a.sched.pullOut))
	}

	a.sched.ok = true
	return true
}

func (a *Analyzer) propagateArrivalsPar(workers int) {
	par.ForEach(workers, len(a.nodes), func(i int) {
		nd := &a.nodes[i]
		nd.at = math.Inf(-1)
		nd.hasAT = false
		nd.worstIn = -1
		nd.slew = a.cons.InputSlew
		if nd.kind == nodePortIn {
			if nd.isClk {
				nd.at = 0
			} else {
				nd.at = a.cons.InputDelay
			}
			nd.hasAT = true
		}
	})
	for li := 0; li+1 < len(a.sched.levelOff); li++ {
		lo, hi := a.sched.levelOff[li], a.sched.levelOff[li+1]
		par.ForEach(workers, hi-lo, func(k int) {
			a.pullArrival(int(a.sched.levelNodes[lo+k]))
		})
	}
}

// pullArrival applies every in-candidate of v in sequential relax order.
func (a *Analyzer) pullArrival(v int) {
	nd := &a.nodes[v]
	for _, ei32 := range a.sched.pullIn[a.sched.pullInOff[v]:a.sched.pullInOff[v+1]] {
		ei := int(ei32)
		e := &a.edges[ei]
		if e.isLaunch() {
			load := a.loadOf(v)
			clkAt := a.clockAtInst(nd.id.Inst, e.arc.From)
			slewIn := a.nodes[e.from].slew
			at := clkAt + a.derate.late()*e.arc.Delay.Lookup(slewIn, load)
			if at > nd.at {
				nd.at = at
				nd.hasAT = true
				nd.worstIn = ei
				nd.slew = e.arc.Slew.Lookup(slewIn, load)
			}
			continue
		}
		from := &a.nodes[e.from]
		if !from.hasAT {
			continue
		}
		var at, slew float64
		if e.isCell {
			load := a.loadOf(v)
			at = from.at + a.derate.late()*e.arc.Delay.Lookup(from.slew, load)
			slew = e.arc.Slew.Lookup(from.slew, load)
		} else {
			sinkCap := a.sinkCap(v)
			wd := a.derate.late() * WireResPerMicron * e.wireLen * (WireCapPerMicron*e.wireLen/2 + sinkCap)
			at = from.at + wd
			slew = from.slew + 0.2*wd
		}
		if at > nd.at {
			nd.at = at
			nd.hasAT = true
			nd.worstIn = ei
			nd.slew = slew
		}
	}
}

func (a *Analyzer) propagateRequiredPar(workers int) {
	T := a.cons.ClockPeriod
	par.ForEach(workers, len(a.nodes), func(i int) {
		nd := &a.nodes[i]
		nd.rat = math.Inf(1)
		nd.hasRAT = false
		if !nd.endp {
			return
		}
		switch nd.kind {
		case nodePortOut:
			nd.rat = T - a.cons.OutputDelay
			nd.hasRAT = true
		case nodeInput:
			mp := a.d.Insts[nd.id.Inst].Master.Pin(nd.id.Pin)
			for ai := range mp.Arcs {
				arc := &mp.Arcs[ai]
				if arc.Kind != netlist.ArcSetup {
					continue
				}
				setup := arc.Delay.Lookup(nd.slew, 0)
				captureClk := a.clockAtInst(nd.id.Inst, arc.From)
				rat := T + captureClk - setup
				if rat < nd.rat {
					nd.rat = rat
					nd.hasRAT = true
				}
			}
		}
	})
	for li := len(a.sched.levelOff) - 2; li >= 0; li-- {
		lo, hi := a.sched.levelOff[li], a.sched.levelOff[li+1]
		par.ForEach(workers, hi-lo, func(k int) {
			a.pullRequired(int(a.sched.levelNodes[lo+k]))
		})
	}
}

// pullRequired applies every out-candidate of u in sequential relax order.
func (a *Analyzer) pullRequired(u int) {
	un := &a.nodes[u]
	for _, ei32 := range a.sched.pullOut[a.sched.pullOutOff[u]:a.sched.pullOutOff[u+1]] {
		ei := int(ei32)
		e := &a.edges[ei]
		nd := &a.nodes[e.to]
		if !nd.hasRAT {
			continue
		}
		var rat float64
		if e.isCell {
			load := a.loadOf(e.to)
			rat = nd.rat - a.derate.late()*e.arc.Delay.Lookup(un.slew, load)
		} else {
			sinkCap := a.sinkCap(e.to)
			wd := a.derate.late() * WireResPerMicron * e.wireLen * (WireCapPerMicron*e.wireLen/2 + sinkCap)
			rat = nd.rat - wd
		}
		if rat < un.rat {
			un.rat = rat
			un.hasRAT = true
		}
	}
}
