package sta

// On-chip-variation (OCV) derating: signoff flows scale late (setup) paths
// up and early (hold) paths down to cover process variation. Derates apply
// multiplicatively to every cell and wire delay of the respective analysis.

// Derate holds the late/early scale factors. The zero value means no
// derating (both treated as 1.0).
type Derate struct {
	// Late multiplies delays in the max (setup) analysis; >= 1 is pessimistic.
	Late float64
	// Early multiplies delays in the min (hold) analysis; <= 1 is pessimistic.
	Early float64
}

func (d Derate) late() float64 {
	if d.Late <= 0 {
		return 1
	}
	return d.Late
}

func (d Derate) early() float64 {
	if d.Early <= 0 {
		return 1
	}
	return d.Early
}

// SetDerate installs OCV derates and invalidates cached timing.
func (a *Analyzer) SetDerate(d Derate) {
	a.derate = d
	a.timeDone = false
}

// TimingOCV runs setup analysis under the given derate without disturbing
// the analyzer's configured derate.
func (a *Analyzer) TimingOCV(d Derate) Summary {
	saved := a.derate
	a.SetDerate(d)
	sum := a.Timing()
	a.SetDerate(saved)
	return sum
}

// HoldTimingOCV runs hold analysis under the given derate.
func (a *Analyzer) HoldTimingOCV(d Derate) HoldSummary {
	saved := a.derate
	a.SetDerate(d)
	sum := a.HoldTiming()
	a.SetDerate(saved)
	return sum
}
