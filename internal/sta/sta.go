// Package sta is a graph-based static timing analyzer, the reproduction's
// stand-in for OpenSTA. It computes arrival/required times and slacks over a
// pin-level timing graph, enumerates the worst path per endpoint (the
// equivalent of OpenSTA's findPathEnds with endpoint_count=1), and propagates
// vectorless switching activity (the equivalent of findClkedActivity).
//
// The timing graph is built from the netlist.Compact CSR view and stored as
// flat struct-of-arrays: int32 node/edge identifiers, per-node float64
// arrival/required/slew arrays, and int32 in/out adjacency CSR. Pin lookup
// uses a dense (instance, master-pin-index) -> node table instead of a
// map[PinID]int, and CTS clock arrivals live in a dense per-node array, so a
// million-cell graph builds and propagates without per-pin hashing.
//
// Units: seconds, farads, watts, microns.
package sta

import (
	"fmt"
	"math"
	"sort"

	"ppaclust/internal/netlist"
	"ppaclust/internal/par"
)

// Constraints is the subset of SDC the flow consumes.
type Constraints struct {
	ClockPeriod   float64  // target clock period (s)
	ClockPorts    []string // input ports that are clock roots
	InputDelay    float64  // arrival at non-clock input ports (s)
	OutputDelay   float64  // required margin at output ports (s)
	InputSlew     float64  // transition at input ports (s)
	PortCap       float64  // load presented by output ports (F)
	InputActivity float64  // toggles per cycle at data inputs
	// ZeroWire ignores wire parasitics entirely (zero wire delay and load),
	// the mode used when timing is extracted from an unplaced netlist, as in
	// Algorithm 1 lines 4-5.
	ZeroWire bool
}

// DefaultConstraints returns reasonable defaults for a given clock period.
func DefaultConstraints(period float64) Constraints {
	return Constraints{
		ClockPeriod:   period,
		InputDelay:    0.1 * period,
		OutputDelay:   0.1 * period,
		InputSlew:     20e-12,
		PortCap:       4e-15,
		InputActivity: 0.15,
	}
}

// Wire RC constants (per micron), loosely calibrated to a 45nm metal stack.
const (
	WireCapPerMicron = 0.2e-15 // F/um
	WireResPerMicron = 2.0     // ohm/um
)

// PinID identifies a timing graph node: an instance pin, or a port when
// Inst < 0.
type PinID struct {
	Inst int
	Pin  string
}

func (p PinID) String() string {
	if p.Inst < 0 {
		return "port:" + p.Pin
	}
	return fmt.Sprintf("%d/%s", p.Inst, p.Pin)
}

type nodeKind uint8

const (
	nodeInput   nodeKind = iota // instance input pin
	nodeOutput                  // instance output pin
	nodePortIn                  // top-level input port
	nodePortOut                 // top-level output port
)

// Analyzer holds the timing graph of one design under one set of constraints.
type Analyzer struct {
	d    *netlist.Design
	cons Constraints

	// Workers bounds the goroutines used by arrival/required propagation:
	// 0 = auto (PPACLUST_WORKERS, else GOMAXPROCS), 1 = the exact sequential
	// code path. Parallel propagation is bit-identical to sequential (see
	// parallel.go for the determinism argument).
	Workers int

	// Node SoA. Node i's identity is (nodeInst[i], nodeMP[i]): an instance
	// ID plus master-pin index, or a port encoded as -1-portIdx with
	// nodeMP = -1. Ports occupy nodes [0, len(d.Ports)) in port order.
	nodeInst []int32
	nodeMP   []int32
	kind     []nodeKind
	net      []int32 // net the pin connects to, -1 if none
	isClk    []bool
	endp     []bool // timing endpoint (reg D or output port)
	startp   []bool // timing startpoint (reg CK->Q origin or input port)
	nodeCap  []float64 // sink load contribution: input-pin cap or PortCap
	nodeDX   []float64 // pin offset from instance origin (0 for ports)
	nodeDY   []float64

	at, rat, slew  []float64
	hasAT, hasRAT  []bool
	worstIn        []int32 // in-edge achieving the worst (max) arrival, -1

	// Edge SoA. eArc == nil marks a net arc; cell arcs carry the library arc.
	eFrom, eTo []int32
	eWire      []float64 // net arcs: driver-to-sink manhattan distance
	eArc       []*netlist.TimingArc

	// Adjacency CSR, edge ids in insertion order (matching the sequential
	// relax order of the original push propagation).
	inOff, inEdge   []int32
	outOff, outEdge []int32

	// Dense pin -> node index: instPinStart[i]+mpIdx slots pinNode, -1 when
	// the pin never appears on a net.
	instPinStart []int32
	pinNode      []int32

	// Setup-check CSR per endpoint node: the setup arcs of the node's master
	// pin (in mp.Arcs order) with their capture-clock nodes preresolved.
	setupOff []int32
	setupArc []*netlist.TimingArc
	setupClk []int32

	topo    []int32
	cyclic  bool      // topo order was incomplete (combinational loop)
	sched   parSched  // cached level schedule for parallel propagation
	netLoad []float64 // total load capacitance per net
	netLen  []float64 // HPWL per net (for wire delay)

	clockAt []float64 // per-node clock arrival (from CTS); nil = ideal clock
	derate  Derate    // OCV scale factors
	inc     incState  // dirty-net set for incremental updates

	activity []float64 // per-node switching activity (toggles/cycle)
	actDone  bool
	timeDone bool

	// Position gather scratch for full geometry refresh.
	gInstX, gInstY []float64
}

// New builds the timing graph for the design. The graph uses current pin
// positions for wire delays; call Update after moving cells.
func New(d *netlist.Design, cons Constraints) *Analyzer {
	a := &Analyzer{d: d, cons: cons}
	a.build()
	return a
}

// Design returns the design under analysis.
func (a *Analyzer) Design() *netlist.Design { return a.d }

// Constraints returns the analyzer's constraints.
func (a *Analyzer) Constraints() Constraints { return a.cons }

func (a *Analyzer) numNodes() int { return len(a.nodeInst) }

// pinIDOf reconstructs the public PinID of a node.
func (a *Analyzer) pinIDOf(v int) PinID {
	id := a.nodeInst[v]
	if id < 0 {
		return PinID{Inst: -1, Pin: a.d.Ports[-1-id].Name}
	}
	return PinID{Inst: int(id), Pin: a.d.Insts[id].Master.Pins[a.nodeMP[v]].Name}
}

// nodeOfPin resolves a PinID to its node index (false when the pin has no
// node). Ports resolve through the design's port index; instance pins through
// the master pin index and the dense pin-node table.
func (a *Analyzer) nodeOfPin(id PinID) (int, bool) {
	if id.Inst < 0 {
		pi := a.d.PortIndex(id.Pin)
		if pi < 0 || pi >= len(a.d.Ports) {
			return 0, false
		}
		return pi, true // ports occupy nodes [0, len(Ports)) in order
	}
	if id.Inst >= len(a.d.Insts) {
		return 0, false
	}
	mpIdx := a.d.Insts[id.Inst].Master.PinIndex(id.Pin)
	if mpIdx < 0 {
		return 0, false
	}
	n := a.pinNode[a.instPinStart[id.Inst]+int32(mpIdx)]
	if n < 0 {
		return 0, false
	}
	return int(n), true
}

func (a *Analyzer) addNode(inst, mpIdx int32, k nodeKind) int32 {
	idx := int32(len(a.nodeInst)) //ppalint:ignore i32trunc node count <= ports + pin slots, bounded by build's MaxInt32 slot guard
	a.nodeInst = append(a.nodeInst, inst)
	a.nodeMP = append(a.nodeMP, mpIdx)
	a.kind = append(a.kind, k)
	a.net = append(a.net, -1)
	a.isClk = append(a.isClk, false)
	a.endp = append(a.endp, false)
	a.startp = append(a.startp, false)
	a.nodeCap = append(a.nodeCap, 0)
	a.nodeDX = append(a.nodeDX, 0)
	a.nodeDY = append(a.nodeDY, 0)
	return idx
}

func (a *Analyzer) addEdge(from, to int32, arc *netlist.TimingArc, wireLen float64) {
	a.eFrom = append(a.eFrom, from)
	a.eTo = append(a.eTo, to)
	a.eArc = append(a.eArc, arc)
	a.eWire = append(a.eWire, wireLen)
}

// build constructs nodes for every connected pin and port, then net arcs and
// cell arcs, entirely over the compact CSR view: one pass assigns node ids in
// the same first-seen order as the original map-based construction, so the
// graph (and therefore every propagated value) is bit-identical to it.
func (a *Analyzer) build() {
	d := a.d
	c := d.Compact()
	clockPorts := make(map[string]bool)
	for _, p := range a.cons.ClockPorts {
		clockPorts[p] = true
	}

	// Dense (instance, master-pin-index) -> node table. Count slots in int
	// first: the per-instance prefix sums below narrow to int32, and past
	// 2^31 pin slots that narrowing would wrap instead of failing.
	slots := 0
	for _, inst := range d.Insts {
		slots += len(inst.Master.Pins)
	}
	if slots > math.MaxInt32 {
		panic(fmt.Sprintf("sta: design has %d instance pin slots, beyond the %d the int32 node table can index", slots, math.MaxInt32)) //ppalint:ignore nopanic capacity assertion behind flow's CompactChecked boundary; New has no error return
	}
	a.instPinStart = make([]int32, len(d.Insts)+1)
	var totalSlots int32
	for i, inst := range d.Insts {
		a.instPinStart[i] = totalSlots
		totalSlots += int32(len(inst.Master.Pins))
	}
	a.instPinStart[len(d.Insts)] = totalSlots
	a.pinNode = make([]int32, totalSlots)
	for i := range a.pinNode {
		a.pinNode[i] = -1
	}

	// Nodes for ports (node i == port i).
	for pi, p := range d.Ports {
		k := nodePortIn
		if p.Dir == netlist.DirOutput {
			k = nodePortOut
		}
		n := a.addNode(int32(-1-pi), -1, k)
		a.nodeCap[n] = a.cons.PortCap
		if clockPorts[p.Name] {
			a.isClk[n] = true
		}
	}
	// Nodes for instance pins that appear on nets, in net/pin order.
	for ni := range d.Nets {
		for k := c.NetStart[ni]; k < c.NetStart[ni+1]; k++ {
			id := c.PinInst[k]
			if id < 0 {
				continue
			}
			mpIdx := c.PinMP[k]
			if mpIdx < 0 {
				continue
			}
			slot := a.instPinStart[id] + mpIdx
			if a.pinNode[slot] >= 0 {
				continue
			}
			mp := &d.Insts[id].Master.Pins[mpIdx]
			kind := nodeInput
			if mp.Dir == netlist.DirOutput {
				kind = nodeOutput
			}
			n := a.addNode(id, mpIdx, kind)
			a.pinNode[slot] = n
			a.nodeCap[n] = mp.Cap
			a.nodeDX[n] = c.PinDX[k]
			a.nodeDY[n] = c.PinDY[k]
		}
	}

	a.netLoad = make([]float64, len(d.Nets))
	a.netLen = make([]float64, len(d.Nets))

	// Net arcs: driver -> each sink, over the compact pin CSR.
	a.gatherPositions()
	for ni := range d.Nets {
		kd := c.NetDrv[ni]
		if kd < 0 {
			continue
		}
		drvNode := a.nodeOfSlot(c, kd)
		dx, dy := a.posOfSlot(c, kd)
		drvID, drvMP := c.PinInst[kd], c.PinMP[kd]
		var load float64
		for k := c.NetStart[ni]; k < c.NetStart[ni+1]; k++ {
			// Skip every pin equal (by value) to the driver reference.
			if c.PinInst[k] == drvID && (drvID < 0 || c.PinMP[k] == drvMP) {
				continue
			}
			id := c.PinInst[k]
			var sinkNode int32
			if id < 0 {
				if id == netlist.CompactNoPort {
					continue
				}
				pidx := -1 - id
				if d.Ports[pidx].Dir != netlist.DirOutput {
					continue
				}
				sinkNode = pidx
				load += a.cons.PortCap
			} else {
				mpIdx := c.PinMP[k]
				if mpIdx < 0 {
					continue
				}
				mp := &d.Insts[id].Master.Pins[mpIdx]
				if mp.Dir == netlist.DirOutput {
					continue
				}
				sinkNode = a.pinNode[a.instPinStart[id]+mpIdx]
				load += mp.Cap
			}
			wl := 0.0
			if !a.cons.ZeroWire {
				sx, sy := a.posOfSlot(c, k)
				wl = math.Abs(sx-dx) + math.Abs(sy-dy)
			}
			a.addEdge(drvNode, sinkNode, nil, wl)
			a.net[sinkNode] = int32(ni)
		}
		a.net[drvNode] = int32(ni)
		if a.cons.ZeroWire {
			a.netLoad[ni] = load
		} else {
			hp := a.netHPWLGathered(c, ni)
			a.netLoad[ni] = load + WireCapPerMicron*hp
			a.netLen[ni] = hp
		}
	}

	// Cell arcs: combinational and clk->Q edges within each instance.
	for _, inst := range d.Insts {
		base := a.instPinStart[inst.ID]
		for pi := range inst.Master.Pins {
			mp := &inst.Master.Pins[pi]
			if mp.Dir != netlist.DirOutput {
				continue
			}
			toNode := a.pinNode[base+int32(pi)]
			if toNode < 0 {
				continue
			}
			for ai := range mp.Arcs {
				arc := &mp.Arcs[ai]
				if arc.Kind != netlist.ArcComb && arc.Kind != netlist.ArcClkToQ {
					continue
				}
				fi := inst.Master.PinIndex(arc.From)
				if fi < 0 {
					continue
				}
				fromNode := a.pinNode[base+int32(fi)]
				if fromNode < 0 {
					continue
				}
				a.addEdge(fromNode, toNode, arc, 0)
			}
		}
	}

	a.buildAdjacency()
	a.buildSetupIndex()
	a.initValueArrays()
	a.markSpecialNodes(clockPorts)
	a.topoSort()
}

// nodeOfSlot resolves a compact pin slot to its node.
func (a *Analyzer) nodeOfSlot(c *netlist.Compact, k int32) int32 {
	id := c.PinInst[k]
	if id < 0 {
		return -1 - id // port index == node index
	}
	return a.pinNode[a.instPinStart[id]+c.PinMP[k]]
}

// gatherPositions snapshots instance origins into contiguous scratch; port
// coordinates are read directly (few ports).
func (a *Analyzer) gatherPositions() {
	d := a.d
	if len(a.gInstX) != len(d.Insts) {
		a.gInstX = make([]float64, len(d.Insts))
		a.gInstY = make([]float64, len(d.Insts))
	}
	for i, inst := range d.Insts {
		a.gInstX[i] = inst.X
		a.gInstY[i] = inst.Y
	}
}

// posOfSlot resolves a compact pin slot's position against the gathered
// instance origins. The arithmetic (origin + precomputed offset) matches
// Design.PinPos bit for bit.
func (a *Analyzer) posOfSlot(c *netlist.Compact, k int32) (float64, float64) {
	id := c.PinInst[k]
	if id >= 0 {
		return a.gInstX[id] + c.PinDX[k], a.gInstY[id] + c.PinDY[k]
	}
	if id == netlist.CompactNoPort {
		return 0, 0
	}
	p := a.d.Ports[-1-id]
	return p.X, p.Y
}

// netHPWLGathered computes a net's HPWL over the gathered positions with the
// same comparison structure as Design.NetHPWL, so the result is bit-identical.
func (a *Analyzer) netHPWLGathered(c *netlist.Compact, ni int) float64 {
	lo, hi := c.NetStart[ni], c.NetStart[ni+1]
	if hi-lo < 2 {
		return 0
	}
	minX, minY := 1e308, 1e308
	maxX, maxY := -1e308, -1e308
	for k := lo; k < hi; k++ {
		x, y := a.posOfSlot(c, k)
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	return (maxX - minX) + (maxY - minY)
}

// buildAdjacency converts the edge lists into in/out CSR with edge ids in
// insertion order per node.
func (a *Analyzer) buildAdjacency() {
	n := a.numNodes()
	nE := len(a.eFrom)
	a.inOff = make([]int32, n+1)
	a.outOff = make([]int32, n+1)
	for ei := 0; ei < nE; ei++ {
		a.outOff[a.eFrom[ei]+1]++
		a.inOff[a.eTo[ei]+1]++
	}
	for i := 1; i <= n; i++ {
		a.inOff[i] += a.inOff[i-1]
		a.outOff[i] += a.outOff[i-1]
	}
	a.inEdge = make([]int32, nE)
	a.outEdge = make([]int32, nE)
	inFill := append([]int32(nil), a.inOff[:n]...)
	outFill := append([]int32(nil), a.outOff[:n]...)
	for ei := 0; ei < nE; ei++ {
		f, t := a.eFrom[ei], a.eTo[ei]
		a.outEdge[outFill[f]] = int32(ei)
		outFill[f]++
		a.inEdge[inFill[t]] = int32(ei)
		inFill[t]++
	}
}

// buildSetupIndex collects, per endpoint data pin, the setup arcs of its
// master pin (in mp.Arcs order) with preresolved capture-clock nodes, so the
// required-time seeds run without any name lookups.
func (a *Analyzer) buildSetupIndex() {
	n := a.numNodes()
	a.setupOff = make([]int32, n+1)
	a.setupArc = a.setupArc[:0]
	a.setupClk = a.setupClk[:0]
	for v := 0; v < n; v++ {
		a.setupOff[v] = int32(len(a.setupArc)) //ppalint:ignore i32trunc setup arcs are a subset of the cell arcs already indexed by the int32 edge arrays
		if a.kind[v] != nodeInput {
			continue
		}
		inst := a.nodeInst[v]
		m := a.d.Insts[inst].Master
		mp := &m.Pins[a.nodeMP[v]]
		for ai := range mp.Arcs {
			arc := &mp.Arcs[ai]
			if arc.Kind != netlist.ArcSetup {
				continue
			}
			clkNode := int32(-1)
			if fi := m.PinIndex(arc.From); fi >= 0 {
				clkNode = a.pinNode[a.instPinStart[inst]+int32(fi)]
			}
			a.setupArc = append(a.setupArc, arc)
			a.setupClk = append(a.setupClk, clkNode)
		}
	}
	a.setupOff[n] = int32(len(a.setupArc)) //ppalint:ignore i32trunc setup arcs are a subset of the cell arcs already indexed by the int32 edge arrays
}

func (a *Analyzer) initValueArrays() {
	n := a.numNodes()
	a.at = make([]float64, n)
	a.rat = make([]float64, n)
	a.slew = make([]float64, n)
	a.hasAT = make([]bool, n)
	a.hasRAT = make([]bool, n)
	a.worstIn = make([]int32, n)
}

// isLaunchEdge reports whether edge ei is a clk->Q launch arc.
func (a *Analyzer) isLaunchEdge(ei int32) bool {
	arc := a.eArc[ei]
	return arc != nil && arc.Kind == netlist.ArcClkToQ
}

// markSpecialNodes labels clock pins, startpoints and endpoints.
func (a *Analyzer) markSpecialNodes(clockPorts map[string]bool) {
	d := a.d
	// Propagate clock from clock ports through net arcs and buffers/inverters.
	var queue []int32
	for i := 0; i < a.numNodes(); i++ {
		if a.isClk[i] {
			queue = append(queue, int32(i))
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		for _, ei := range a.outEdge[a.outOff[v]:a.outOff[v+1]] {
			to := a.eTo[ei]
			if a.isClk[to] {
				continue
			}
			if arc := a.eArc[ei]; arc != nil && arc.Kind != netlist.ArcComb {
				continue // clk->Q is a data launch, not clock propagation
			}
			a.isClk[to] = true
			queue = append(queue, to)
		}
	}
	// Also mark clock input pins of sequential cells.
	for i := 0; i < a.numNodes(); i++ {
		if inst := a.nodeInst[i]; inst >= 0 {
			if d.Insts[inst].Master.Pins[a.nodeMP[i]].Clock {
				a.isClk[i] = true
			}
		}
	}
	// Startpoints and endpoints.
	for i := 0; i < a.numNodes(); i++ {
		switch a.kind[i] {
		case nodePortIn:
			if !clockPorts[d.Ports[-1-a.nodeInst[i]].Name] {
				a.startp[i] = true
			}
		case nodePortOut:
			a.endp[i] = true
		case nodeOutput:
			// Output fed by a clk->Q arc is a launch point.
			for _, ei := range a.inEdge[a.inOff[i]:a.inOff[i+1]] {
				if a.isLaunchEdge(ei) {
					a.startp[i] = true
				}
			}
		case nodeInput:
			// Data input with a setup arc is an endpoint.
			if a.setupOff[i+1] > a.setupOff[i] {
				a.endp[i] = true
			}
		}
	}
}

// topoSort orders nodes so every data edge goes forward. Clock-to-Q cell arcs
// still participate (launch ordering), but edges into clock pins from the
// clock network do not create cycles because registers' data edges do not
// feed back into their own clock pins in well-formed designs; genuinely
// cyclic combinational paths are broken by dropping the closing edge.
func (a *Analyzer) topoSort() {
	n := a.numNodes()
	indeg := make([]int32, n)
	enabled := make([]bool, len(a.eFrom))
	for ei := range a.eFrom {
		// Clk->Q arcs start a new timing frame: treat the Q output as a
		// source rather than ordering it after the clock pin.
		if a.isLaunchEdge(int32(ei)) {
			continue
		}
		enabled[ei] = true
		indeg[a.eTo[ei]]++
	}
	queue := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, int32(i))
		}
	}
	order := make([]int32, 0, n)
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		order = append(order, v)
		for _, ei := range a.outEdge[a.outOff[v]:a.outOff[v+1]] {
			if !enabled[ei] {
				continue
			}
			t := a.eTo[ei]
			indeg[t]--
			if indeg[t] == 0 {
				queue = append(queue, t)
			}
		}
	}
	if len(order) < n {
		// Combinational loop: append remaining nodes in ID order; the loop
		// edges act as cut points (their arrivals simply lag one pass).
		a.cyclic = true
		seen := make([]bool, n)
		for _, v := range order {
			seen[v] = true
		}
		for i := 0; i < n; i++ {
			if !seen[i] {
				order = append(order, int32(i))
			}
		}
	}
	a.topo = order
}

// SetClockArrivals installs per-pin clock arrival times (from CTS). Keys are
// clock pins of sequential cells. Passing nil restores the ideal clock.
func (a *Analyzer) SetClockArrivals(arrivals map[PinID]float64) {
	if arrivals == nil {
		a.clockAt = nil
		a.timeDone = false
		return
	}
	a.clockAt = make([]float64, a.numNodes())
	for id, t := range arrivals {
		if n, ok := a.nodeOfPin(id); ok {
			a.clockAt[n] = t
		}
	}
	a.timeDone = false
}

// ClockArrival is one CTS-computed clock arrival, the allocation-light
// alternative to the map form of SetClockArrivals.
type ClockArrival struct {
	Inst int
	Pin  string
	T    float64
}

// SetClockArrivalList installs clock arrivals from a slice, avoiding the
// map[PinID] allocation and string hashing of SetClockArrivals on large
// designs. Passing an empty list restores the ideal clock.
func (a *Analyzer) SetClockArrivalList(list []ClockArrival) {
	if len(list) == 0 {
		a.clockAt = nil
		a.timeDone = false
		return
	}
	a.clockAt = make([]float64, a.numNodes())
	for _, ca := range list {
		if n, ok := a.nodeOfPin(PinID{Inst: ca.Inst, Pin: ca.Pin}); ok {
			a.clockAt[n] = ca.T
		}
	}
	a.timeDone = false
}

// clockAtNode returns the clock arrival at a node (0 under the ideal clock
// or for unresolved nodes).
func (a *Analyzer) clockAtNode(n int32) float64 {
	if a.clockAt == nil || n < 0 {
		return 0
	}
	return a.clockAt[n]
}

// clockAtInst returns the clock arrival at the named pin of an instance
// (used by the cold-path hold checks, which resolve arc.From by name).
func (a *Analyzer) clockAtInst(inst int32, clkPin string) float64 {
	if a.clockAt == nil {
		return 0
	}
	if n, ok := a.nodeOfPin(PinID{Inst: int(inst), Pin: clkPin}); ok {
		return a.clockAt[n]
	}
	return 0
}

// nodePos returns the physical position of a node from current design
// coordinates (instance origin + precomputed offset, or port position).
func (a *Analyzer) nodePos(v int32) (float64, float64) {
	id := a.nodeInst[v]
	if id < 0 {
		p := a.d.Ports[-1-id]
		return p.X, p.Y
	}
	inst := a.d.Insts[id]
	return inst.X + a.nodeDX[v], inst.Y + a.nodeDY[v]
}

// Run performs arrival/required propagation if stale. With Workers != 1 the
// levelized parallel kernels run instead of the sequential passes; their
// output is bit-identical (parallel.go).
func (a *Analyzer) Run() {
	if a.timeDone {
		return
	}
	if w := par.Workers(a.Workers); w > 1 && a.ensureSched() {
		a.propagateArrivalsPar(w)
		a.propagateRequiredPar(w)
	} else {
		a.propagateArrivals()
		a.propagateRequired()
	}
	a.timeDone = true
}

func (a *Analyzer) propagateArrivals() {
	for i := 0; i < a.numNodes(); i++ {
		a.at[i] = math.Inf(-1)
		a.hasAT[i] = false
		a.worstIn[i] = -1
		a.slew[i] = a.cons.InputSlew
	}
	// Seed startpoints.
	for i := 0; i < a.numNodes(); i++ {
		if a.kind[i] == nodePortIn {
			if a.isClk[i] {
				a.at[i] = 0
			} else {
				a.at[i] = a.cons.InputDelay
			}
			a.hasAT[i] = true
		}
	}
	for _, v := range a.topo {
		// Launch clk->Q arcs: arrival = clock arrival + arc delay.
		for _, ei := range a.inEdge[a.inOff[v]:a.inOff[v+1]] {
			arc := a.eArc[ei]
			if arc == nil || arc.Kind != netlist.ArcClkToQ {
				continue
			}
			load := a.loadOf(v)
			clkAt := a.clockAtNode(a.eFrom[ei])
			slewIn := a.slew[a.eFrom[ei]]
			at := clkAt + a.derate.late()*arc.Delay.Lookup(slewIn, load)
			if at > a.at[v] {
				a.at[v] = at
				a.hasAT[v] = true
				a.worstIn[v] = ei
				a.slew[v] = arc.Slew.Lookup(slewIn, load)
			}
		}
		if !a.hasAT[v] {
			continue
		}
		for _, ei := range a.outEdge[a.outOff[v]:a.outOff[v+1]] {
			arc := a.eArc[ei]
			if arc != nil && arc.Kind == netlist.ArcClkToQ {
				continue // handled at the target via clock arrival
			}
			to := a.eTo[ei]
			var at, slew float64
			if arc != nil {
				load := a.loadOf(to)
				at = a.at[v] + a.derate.late()*arc.Delay.Lookup(a.slew[v], load)
				slew = arc.Slew.Lookup(a.slew[v], load)
			} else {
				// Net arc: Elmore-style wire delay to this sink.
				sinkCap := a.nodeCap[to]
				wd := a.derate.late() * WireResPerMicron * a.eWire[ei] * (WireCapPerMicron*a.eWire[ei]/2 + sinkCap)
				at = a.at[v] + wd
				slew = a.slew[v] + 0.2*wd
			}
			if at > a.at[to] {
				a.at[to] = at
				a.hasAT[to] = true
				a.worstIn[to] = ei
				a.slew[to] = slew
			}
		}
	}
}

func (a *Analyzer) loadOf(outNode int32) float64 {
	netID := a.net[outNode]
	if netID < 0 {
		return 0
	}
	return a.netLoad[netID]
}

func (a *Analyzer) propagateRequired() {
	T := a.cons.ClockPeriod
	for i := 0; i < a.numNodes(); i++ {
		a.rat[i] = math.Inf(1)
		a.hasRAT[i] = false
	}
	// Seed endpoints.
	for i := 0; i < a.numNodes(); i++ {
		if a.endp[i] {
			a.seedRequired(int32(i), T)
		}
	}
	// Backward pass over reverse topological order.
	for i := len(a.topo) - 1; i >= 0; i-- {
		v := a.topo[i]
		if !a.hasRAT[v] {
			continue
		}
		for _, ei := range a.inEdge[a.inOff[v]:a.inOff[v+1]] {
			arc := a.eArc[ei]
			if arc != nil && arc.Kind == netlist.ArcClkToQ {
				continue
			}
			from := a.eFrom[ei]
			var rat float64
			if arc != nil {
				load := a.loadOf(v)
				rat = a.rat[v] - a.derate.late()*arc.Delay.Lookup(a.slew[from], load)
			} else {
				sinkCap := a.nodeCap[v]
				wd := a.derate.late() * WireResPerMicron * a.eWire[ei] * (WireCapPerMicron*a.eWire[ei]/2 + sinkCap)
				rat = a.rat[v] - wd
			}
			if rat < a.rat[from] {
				a.rat[from] = rat
				a.hasRAT[from] = true
			}
		}
	}
}

// seedRequired applies the endpoint required-time seed of node v: output
// ports get T minus the output delay; register data pins get the worst setup
// check over their preresolved setup arcs.
func (a *Analyzer) seedRequired(v int32, T float64) {
	switch a.kind[v] {
	case nodePortOut:
		a.rat[v] = T - a.cons.OutputDelay
		a.hasRAT[v] = true
	case nodeInput:
		for s := a.setupOff[v]; s < a.setupOff[v+1]; s++ {
			arc := a.setupArc[s]
			setup := arc.Delay.Lookup(a.slew[v], 0)
			captureClk := a.clockAtNode(a.setupClk[s])
			rat := T + captureClk - setup
			if rat < a.rat[v] {
				a.rat[v] = rat
				a.hasRAT[v] = true
			}
		}
	}
}

// SlackAt returns the slack at a pin, or +Inf if the pin is not constrained.
func (a *Analyzer) SlackAt(id PinID) float64 {
	a.Run()
	n, ok := a.nodeOfPin(id)
	if !ok {
		return math.Inf(1)
	}
	if !a.hasAT[n] || !a.hasRAT[n] {
		return math.Inf(1)
	}
	return a.rat[n] - a.at[n]
}

// ArrivalAt returns the arrival time at a pin; ok is false when unreached.
func (a *Analyzer) ArrivalAt(id PinID) (float64, bool) {
	a.Run()
	n, found := a.nodeOfPin(id)
	if !found {
		return 0, false
	}
	return a.at[n], a.hasAT[n]
}

// Summary is the WNS/TNS report over all endpoints.
type Summary struct {
	WNS       float64 // worst negative slack (0 if all positive)
	TNS       float64 // total negative slack (sum of negative endpoint slacks)
	Endpoints int
	Failing   int
}

// Timing returns the design-wide WNS/TNS summary.
func (a *Analyzer) Timing() Summary {
	a.Run()
	var s Summary
	for i := 0; i < a.numNodes(); i++ {
		if !a.endp[i] || !a.hasAT[i] || !a.hasRAT[i] {
			continue
		}
		s.Endpoints++
		slack := a.rat[i] - a.at[i]
		if slack < 0 {
			s.Failing++
			s.TNS += slack
			if slack < s.WNS {
				s.WNS = slack
			}
		}
	}
	return s
}

// NetLoad returns the total load capacitance (pins + wire) of a net.
func (a *Analyzer) NetLoad(netID int) float64 { return a.netLoad[netID] }

// NetSlack returns for each net the worst slack over the pins of the net
// (+Inf for unconstrained nets). This is the per-net timing criticality the
// clustering consumes. Callers on a hot path should use NetSlackInto with a
// reused buffer instead.
func (a *Analyzer) NetSlack() []float64 { return a.NetSlackInto(nil) }

// NetSlackInto fills dst (grown if needed) with the per-net worst slack and
// returns it. The placer's timing-driven checkpoints call this repeatedly at
// full-design scale, so the buffer is caller-owned and the fill allocates
// nothing once dst has capacity for len(Nets).
func (a *Analyzer) NetSlackInto(dst []float64) []float64 {
	a.Run()
	n := len(a.d.Nets)
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = math.Inf(1)
	}
	for i := 0; i < a.numNodes(); i++ {
		netID := a.net[i]
		if netID < 0 || !a.hasAT[i] || !a.hasRAT[i] {
			continue
		}
		slack := a.rat[i] - a.at[i]
		if slack < dst[netID] {
			dst[netID] = slack
		}
	}
	return dst
}

// Path is one extracted timing path.
type Path struct {
	Slack    float64
	Pins     []PinID
	Nets     []int // nets traversed, aligned with hops between pins
	Endpoint PinID
}

// TopPaths enumerates up to maxPaths timing paths: the worst path per
// endpoint, sorted by ascending slack. This mirrors OpenSTA findPathEnds
// with endpoint_count=1, unique_pins=true, sort_by_slack=true.
func (a *Analyzer) TopPaths(maxPaths int) []Path {
	a.Run()
	type endSlack struct {
		node  int32
		slack float64
	}
	ends := make([]endSlack, 0, 256)
	for i := 0; i < a.numNodes(); i++ {
		if a.endp[i] && a.hasAT[i] && a.hasRAT[i] {
			ends = append(ends, endSlack{int32(i), a.rat[i] - a.at[i]})
		}
	}
	sort.Slice(ends, func(i, j int) bool {
		if ends[i].slack != ends[j].slack {
			return ends[i].slack < ends[j].slack
		}
		return ends[i].node < ends[j].node
	})
	if maxPaths > 0 && len(ends) > maxPaths {
		ends = ends[:maxPaths]
	}
	paths := make([]Path, 0, len(ends))
	for _, es := range ends {
		p := Path{Slack: es.slack, Endpoint: a.pinIDOf(int(es.node))}
		// Backtrack via worst-arrival predecessor edges.
		cur := es.node
		for cur >= 0 {
			p.Pins = append(p.Pins, a.pinIDOf(int(cur)))
			ei := a.worstIn[cur]
			if ei < 0 {
				break
			}
			arc := a.eArc[ei]
			if arc == nil {
				p.Nets = append(p.Nets, int(a.net[cur]))
			}
			if arc != nil && arc.Kind == netlist.ArcClkToQ {
				// Launch point reached.
				p.Pins = append(p.Pins, a.pinIDOf(int(a.eFrom[ei])))
				break
			}
			cur = a.eFrom[ei]
		}
		// Reverse to startpoint-first order.
		for l, r := 0, len(p.Pins)-1; l < r; l, r = l+1, r-1 {
			p.Pins[l], p.Pins[r] = p.Pins[r], p.Pins[l]
		}
		for l, r := 0, len(p.Nets)-1; l < r; l, r = l+1, r-1 {
			p.Nets[l], p.Nets[r] = p.Nets[r], p.Nets[l]
		}
		paths = append(paths, p)
	}
	return paths
}
