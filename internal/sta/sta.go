// Package sta is a graph-based static timing analyzer, the reproduction's
// stand-in for OpenSTA. It computes arrival/required times and slacks over a
// pin-level timing graph, enumerates the worst path per endpoint (the
// equivalent of OpenSTA's findPathEnds with endpoint_count=1), and propagates
// vectorless switching activity (the equivalent of findClkedActivity).
//
// Units: seconds, farads, watts, microns.
package sta

import (
	"fmt"
	"math"
	"sort"

	"ppaclust/internal/netlist"
	"ppaclust/internal/par"
)

// Constraints is the subset of SDC the flow consumes.
type Constraints struct {
	ClockPeriod   float64  // target clock period (s)
	ClockPorts    []string // input ports that are clock roots
	InputDelay    float64  // arrival at non-clock input ports (s)
	OutputDelay   float64  // required margin at output ports (s)
	InputSlew     float64  // transition at input ports (s)
	PortCap       float64  // load presented by output ports (F)
	InputActivity float64  // toggles per cycle at data inputs
	// ZeroWire ignores wire parasitics entirely (zero wire delay and load),
	// the mode used when timing is extracted from an unplaced netlist, as in
	// Algorithm 1 lines 4-5.
	ZeroWire bool
}

// DefaultConstraints returns reasonable defaults for a given clock period.
func DefaultConstraints(period float64) Constraints {
	return Constraints{
		ClockPeriod:   period,
		InputDelay:    0.1 * period,
		OutputDelay:   0.1 * period,
		InputSlew:     20e-12,
		PortCap:       4e-15,
		InputActivity: 0.15,
	}
}

// Wire RC constants (per micron), loosely calibrated to a 45nm metal stack.
const (
	WireCapPerMicron = 0.2e-15 // F/um
	WireResPerMicron = 2.0     // ohm/um
)

// PinID identifies a timing graph node: an instance pin, or a port when
// Inst < 0.
type PinID struct {
	Inst int
	Pin  string
}

func (p PinID) String() string {
	if p.Inst < 0 {
		return "port:" + p.Pin
	}
	return fmt.Sprintf("%d/%s", p.Inst, p.Pin)
}

type nodeKind int

const (
	nodeInput   nodeKind = iota // instance input pin
	nodeOutput                  // instance output pin
	nodePortIn                  // top-level input port
	nodePortOut                 // top-level output port
)

type edge struct {
	from, to int
	isCell   bool // cell arc (from input pin to output pin) vs net arc
	arc      *netlist.TimingArc
	wireLen  float64 // net arcs: driver-to-sink manhattan distance
}

type node struct {
	id      PinID
	kind    nodeKind
	net     int // net this pin connects to, -1 if none
	at      float64
	rat     float64
	slew    float64
	hasAT   bool
	hasRAT  bool
	worstIn int // edge index achieving the worst (max) arrival, -1 if none
	isClk   bool
	endp    bool // timing endpoint (reg D or output port)
	startp  bool // timing startpoint (reg CK->Q origin or input port)
}

// Analyzer holds the timing graph of one design under one set of constraints.
type Analyzer struct {
	d    *netlist.Design
	cons Constraints

	// Workers bounds the goroutines used by arrival/required propagation:
	// 0 = auto (PPACLUST_WORKERS, else GOMAXPROCS), 1 = the exact sequential
	// code path. Parallel propagation is bit-identical to sequential (see
	// parallel.go for the determinism argument).
	Workers int

	nodes   []node
	edges   []edge
	in      [][]int // node -> incoming edge indices
	out     [][]int // node -> outgoing edge indices
	nodeOf  map[PinID]int
	topo    []int
	cyclic  bool      // topo order was incomplete (combinational loop)
	sched   parSched  // cached level schedule for parallel propagation
	netLoad []float64 // total load capacitance per net
	netLen  []float64 // HPWL per net (for wire delay)

	clockArrival map[int]float64 // optional per-node clock arrival (from CTS)
	derate       Derate          // OCV scale factors
	inc          incState        // dirty-net set for incremental updates

	activity []float64 // per-node switching activity (toggles/cycle)
	actDone  bool
	timeDone bool
}

// New builds the timing graph for the design. The graph uses current pin
// positions for wire delays; call Update after moving cells.
func New(d *netlist.Design, cons Constraints) *Analyzer {
	a := &Analyzer{d: d, cons: cons, nodeOf: make(map[PinID]int)}
	a.build()
	return a
}

// Design returns the design under analysis.
func (a *Analyzer) Design() *netlist.Design { return a.d }

// Constraints returns the analyzer's constraints.
func (a *Analyzer) Constraints() Constraints { return a.cons }

func (a *Analyzer) addNode(id PinID, kind nodeKind) int {
	if idx, ok := a.nodeOf[id]; ok {
		return idx
	}
	idx := len(a.nodes)
	a.nodes = append(a.nodes, node{id: id, kind: kind, net: -1, worstIn: -1})
	a.nodeOf[id] = idx
	return idx
}

func (a *Analyzer) addEdge(e edge) {
	idx := len(a.edges)
	a.edges = append(a.edges, e)
	a.out[e.from] = append(a.out[e.from], idx)
	a.in[e.to] = append(a.in[e.to], idx)
}

// build constructs nodes for every connected pin and port, then net arcs and
// cell arcs.
func (a *Analyzer) build() {
	d := a.d
	clockPorts := make(map[string]bool)
	for _, p := range a.cons.ClockPorts {
		clockPorts[p] = true
	}

	// Nodes for ports.
	for _, p := range d.Ports {
		kind := nodePortIn
		if p.Dir == netlist.DirOutput {
			kind = nodePortOut
		}
		n := a.addNode(PinID{Inst: -1, Pin: p.Name}, kind)
		if clockPorts[p.Name] {
			a.nodes[n].isClk = true
		}
	}
	// Nodes for instance pins that appear on nets.
	for _, net := range d.Nets {
		for _, pr := range net.Pins {
			if pr.IsPort() {
				continue
			}
			mp := d.Insts[pr.Inst].Master.Pin(pr.Pin)
			if mp == nil {
				continue
			}
			kind := nodeInput
			if mp.Dir == netlist.DirOutput {
				kind = nodeOutput
			}
			a.addNode(PinID{pr.Inst, pr.Pin}, kind)
		}
	}
	a.in = make([][]int, len(a.nodes))
	a.out = make([][]int, len(a.nodes))
	a.netLoad = make([]float64, len(d.Nets))
	a.netLen = make([]float64, len(d.Nets))

	// Net arcs: driver -> each sink.
	for _, net := range d.Nets {
		drv, ok := d.Driver(net)
		if !ok {
			continue
		}
		drvNode := a.nodeOf[PinID{drv.Inst, drv.Pin}]
		dx, dy := d.PinPos(drv)
		var load float64
		for _, pr := range net.Pins {
			if pr == drv {
				continue
			}
			var sinkNode int
			if pr.IsPort() {
				port := d.Port(pr.Pin)
				if port == nil || port.Dir != netlist.DirOutput {
					continue
				}
				sinkNode = a.nodeOf[PinID{-1, pr.Pin}]
				load += a.cons.PortCap
			} else {
				mp := d.Insts[pr.Inst].Master.Pin(pr.Pin)
				if mp == nil || mp.Dir == netlist.DirOutput {
					continue
				}
				sinkNode = a.nodeOf[PinID{pr.Inst, pr.Pin}]
				load += mp.Cap
			}
			wl := 0.0
			if !a.cons.ZeroWire {
				sx, sy := d.PinPos(pr)
				wl = math.Abs(sx-dx) + math.Abs(sy-dy)
			}
			a.addEdge(edge{from: drvNode, to: sinkNode, wireLen: wl})
			a.nodes[sinkNode].net = net.ID
		}
		a.nodes[drvNode].net = net.ID
		if a.cons.ZeroWire {
			a.netLoad[net.ID] = load
		} else {
			a.netLoad[net.ID] = load + WireCapPerMicron*d.NetHPWL(net)
			a.netLen[net.ID] = d.NetHPWL(net)
		}
	}

	// Cell arcs: combinational and clk->Q edges within each instance.
	for _, inst := range d.Insts {
		for pi := range inst.Master.Pins {
			mp := &inst.Master.Pins[pi]
			if mp.Dir != netlist.DirOutput {
				continue
			}
			toNode, ok := a.nodeOf[PinID{inst.ID, mp.Name}]
			if !ok {
				continue
			}
			for ai := range mp.Arcs {
				arc := &mp.Arcs[ai]
				if arc.Kind != netlist.ArcComb && arc.Kind != netlist.ArcClkToQ {
					continue
				}
				fromNode, ok := a.nodeOf[PinID{inst.ID, arc.From}]
				if !ok {
					continue
				}
				a.addEdge(edge{from: fromNode, to: toNode, isCell: true, arc: arc})
			}
		}
	}

	a.markSpecialNodes(clockPorts)
	a.topoSort()
}

// markSpecialNodes labels clock pins, startpoints and endpoints.
func (a *Analyzer) markSpecialNodes(clockPorts map[string]bool) {
	d := a.d
	// Propagate clock from clock ports through net arcs and buffers/inverters.
	var queue []int
	for i := range a.nodes {
		if a.nodes[i].isClk {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, ei := range a.out[n] {
			e := &a.edges[ei]
			to := &a.nodes[e.to]
			if to.isClk {
				continue
			}
			if e.isCell && e.arc.Kind != netlist.ArcComb {
				continue // clk->Q is a data launch, not clock propagation
			}
			to.isClk = true
			queue = append(queue, e.to)
		}
	}
	// Also mark clock input pins of sequential cells on nets flagged Clock.
	for i := range a.nodes {
		nd := &a.nodes[i]
		if nd.id.Inst >= 0 {
			mp := d.Insts[nd.id.Inst].Master.Pin(nd.id.Pin)
			if mp != nil && mp.Clock {
				nd.isClk = true
			}
		}
	}
	// Startpoints and endpoints.
	for i := range a.nodes {
		nd := &a.nodes[i]
		switch nd.kind {
		case nodePortIn:
			if !clockPorts[nd.id.Pin] {
				nd.startp = true
			}
		case nodePortOut:
			nd.endp = true
		case nodeOutput:
			// Output fed by a clk->Q arc is a launch point.
			for _, ei := range a.in[i] {
				if a.edges[ei].isCell && a.edges[ei].arc.Kind == netlist.ArcClkToQ {
					nd.startp = true
				}
			}
		case nodeInput:
			// Data input with a setup arc is an endpoint.
			mp := d.Insts[nd.id.Inst].Master.Pin(nd.id.Pin)
			if mp != nil {
				for ai := range mp.Arcs {
					if mp.Arcs[ai].Kind == netlist.ArcSetup {
						nd.endp = true
					}
				}
			}
		}
	}
}

// topoSort orders nodes so every data edge goes forward. Clock-to-Q cell arcs
// still participate (launch ordering), but edges into clock pins from the
// clock network do not create cycles because registers' data edges do not
// feed back into their own clock pins in well-formed designs; genuinely
// cyclic combinational paths are broken by dropping the closing edge.
func (a *Analyzer) topoSort() {
	n := len(a.nodes)
	indeg := make([]int, n)
	enabled := make([]bool, len(a.edges))
	for ei, e := range a.edges {
		// Clk->Q arcs start a new timing frame: treat the Q output as a
		// source rather than ordering it after the clock pin.
		if e.isCell && e.arc.Kind == netlist.ArcClkToQ {
			continue
		}
		enabled[ei] = true
		indeg[e.to]++
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	order := make([]int, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, ei := range a.out[v] {
			if !enabled[ei] {
				continue
			}
			t := a.edges[ei].to
			indeg[t]--
			if indeg[t] == 0 {
				queue = append(queue, t)
			}
		}
	}
	if len(order) < n {
		// Combinational loop: append remaining nodes in ID order; the loop
		// edges act as cut points (their arrivals simply lag one pass).
		a.cyclic = true
		seen := make([]bool, n)
		for _, v := range order {
			seen[v] = true
		}
		for i := 0; i < n; i++ {
			if !seen[i] {
				order = append(order, i)
			}
		}
	}
	a.topo = order
}

// SetClockArrivals installs per-pin clock arrival times (from CTS). Keys are
// clock pins of sequential cells. Passing nil restores the ideal clock.
func (a *Analyzer) SetClockArrivals(arrivals map[PinID]float64) {
	if arrivals == nil {
		a.clockArrival = nil
		a.timeDone = false
		return
	}
	a.clockArrival = make(map[int]float64, len(arrivals))
	for id, t := range arrivals {
		if n, ok := a.nodeOf[id]; ok {
			a.clockArrival[n] = t
		}
	}
	a.timeDone = false
}

func (a *Analyzer) clockAt(nodeIdx int) float64 {
	if a.clockArrival == nil {
		return 0
	}
	return a.clockArrival[nodeIdx]
}

// clockAtInst returns the clock arrival at the clock pin of the instance
// owning the given node (used for launch/capture of clk->Q and setup arcs).
func (a *Analyzer) clockAtInst(inst int, clkPin string) float64 {
	if a.clockArrival == nil {
		return 0
	}
	if n, ok := a.nodeOf[PinID{inst, clkPin}]; ok {
		return a.clockArrival[n]
	}
	return 0
}

func (a *Analyzer) pinPosOf(nodeIdx int) (float64, float64) {
	id := a.nodes[nodeIdx].id
	return a.d.PinPos(netlist.PinRef{Inst: id.Inst, Pin: id.Pin})
}

// Run performs arrival/required propagation if stale. With Workers != 1 the
// levelized parallel kernels run instead of the sequential passes; their
// output is bit-identical (parallel.go).
func (a *Analyzer) Run() {
	if a.timeDone {
		return
	}
	if w := par.Workers(a.Workers); w > 1 && a.ensureSched() {
		a.propagateArrivalsPar(w)
		a.propagateRequiredPar(w)
	} else {
		a.propagateArrivals()
		a.propagateRequired()
	}
	a.timeDone = true
}

func (a *Analyzer) propagateArrivals() {
	for i := range a.nodes {
		nd := &a.nodes[i]
		nd.at = math.Inf(-1)
		nd.hasAT = false
		nd.worstIn = -1
		nd.slew = a.cons.InputSlew
	}
	// Seed startpoints.
	for i := range a.nodes {
		nd := &a.nodes[i]
		if nd.kind == nodePortIn {
			if nd.isClk {
				nd.at = 0
				nd.hasAT = true
			} else {
				nd.at = a.cons.InputDelay
				nd.hasAT = true
			}
		}
	}
	for _, v := range a.topo {
		nd := &a.nodes[v]
		// Launch clk->Q arcs: arrival = clock arrival + arc delay.
		for _, ei := range a.in[v] {
			e := &a.edges[ei]
			if !e.isCell || e.arc.Kind != netlist.ArcClkToQ {
				continue
			}
			load := a.loadOf(v)
			clkAt := a.clockAtInst(nd.id.Inst, e.arc.From)
			slewIn := a.nodes[e.from].slew
			at := clkAt + a.derate.late()*e.arc.Delay.Lookup(slewIn, load)
			if at > nd.at {
				nd.at = at
				nd.hasAT = true
				nd.worstIn = ei
				nd.slew = e.arc.Slew.Lookup(slewIn, load)
			}
		}
		if !nd.hasAT {
			continue
		}
		for _, ei := range a.out[v] {
			e := &a.edges[ei]
			if e.isCell && e.arc.Kind == netlist.ArcClkToQ {
				continue // handled at the target via clock arrival
			}
			to := &a.nodes[e.to]
			var at, slew float64
			if e.isCell {
				load := a.loadOf(e.to)
				at = nd.at + a.derate.late()*e.arc.Delay.Lookup(nd.slew, load)
				slew = e.arc.Slew.Lookup(nd.slew, load)
			} else {
				// Net arc: Elmore-style wire delay to this sink.
				sinkCap := a.sinkCap(e.to)
				wd := a.derate.late() * WireResPerMicron * e.wireLen * (WireCapPerMicron*e.wireLen/2 + sinkCap)
				at = nd.at + wd
				slew = nd.slew + 0.2*wd
			}
			if at > to.at {
				to.at = at
				to.hasAT = true
				to.worstIn = ei
				to.slew = slew
			}
		}
	}
}

func (a *Analyzer) loadOf(outNode int) float64 {
	netID := a.nodes[outNode].net
	if netID < 0 {
		return 0
	}
	return a.netLoad[netID]
}

func (a *Analyzer) sinkCap(sinkNode int) float64 {
	nd := &a.nodes[sinkNode]
	if nd.id.Inst < 0 {
		return a.cons.PortCap
	}
	mp := a.d.Insts[nd.id.Inst].Master.Pin(nd.id.Pin)
	if mp == nil {
		return 0
	}
	return mp.Cap
}

func (a *Analyzer) propagateRequired() {
	T := a.cons.ClockPeriod
	for i := range a.nodes {
		nd := &a.nodes[i]
		nd.rat = math.Inf(1)
		nd.hasRAT = false
	}
	// Seed endpoints.
	for i := range a.nodes {
		nd := &a.nodes[i]
		if !nd.endp {
			continue
		}
		switch nd.kind {
		case nodePortOut:
			nd.rat = T - a.cons.OutputDelay
			nd.hasRAT = true
		case nodeInput:
			mp := a.d.Insts[nd.id.Inst].Master.Pin(nd.id.Pin)
			for ai := range mp.Arcs {
				arc := &mp.Arcs[ai]
				if arc.Kind != netlist.ArcSetup {
					continue
				}
				setup := arc.Delay.Lookup(nd.slew, 0)
				captureClk := a.clockAtInst(nd.id.Inst, arc.From)
				rat := T + captureClk - setup
				if rat < nd.rat {
					nd.rat = rat
					nd.hasRAT = true
				}
			}
		}
	}
	// Backward pass over reverse topological order.
	for i := len(a.topo) - 1; i >= 0; i-- {
		v := a.topo[i]
		nd := &a.nodes[v]
		if !nd.hasRAT {
			continue
		}
		for _, ei := range a.in[v] {
			e := &a.edges[ei]
			if e.isCell && e.arc.Kind == netlist.ArcClkToQ {
				continue
			}
			from := &a.nodes[e.from]
			var rat float64
			if e.isCell {
				load := a.loadOf(v)
				rat = nd.rat - a.derate.late()*e.arc.Delay.Lookup(from.slew, load)
			} else {
				sinkCap := a.sinkCap(v)
				wd := a.derate.late() * WireResPerMicron * e.wireLen * (WireCapPerMicron*e.wireLen/2 + sinkCap)
				rat = nd.rat - wd
			}
			if rat < from.rat {
				from.rat = rat
				from.hasRAT = true
			}
		}
	}
}

// SlackAt returns the slack at a pin, or +Inf if the pin is not constrained.
func (a *Analyzer) SlackAt(id PinID) float64 {
	a.Run()
	n, ok := a.nodeOf[id]
	if !ok {
		return math.Inf(1)
	}
	nd := &a.nodes[n]
	if !nd.hasAT || !nd.hasRAT {
		return math.Inf(1)
	}
	return nd.rat - nd.at
}

// ArrivalAt returns the arrival time at a pin; ok is false when unreached.
func (a *Analyzer) ArrivalAt(id PinID) (float64, bool) {
	a.Run()
	n, found := a.nodeOf[id]
	if !found {
		return 0, false
	}
	nd := &a.nodes[n]
	return nd.at, nd.hasAT
}

// Summary is the WNS/TNS report over all endpoints.
type Summary struct {
	WNS       float64 // worst negative slack (0 if all positive)
	TNS       float64 // total negative slack (sum of negative endpoint slacks)
	Endpoints int
	Failing   int
}

// Timing returns the design-wide WNS/TNS summary.
func (a *Analyzer) Timing() Summary {
	a.Run()
	var s Summary
	for i := range a.nodes {
		nd := &a.nodes[i]
		if !nd.endp || !nd.hasAT || !nd.hasRAT {
			continue
		}
		s.Endpoints++
		slack := nd.rat - nd.at
		if slack < 0 {
			s.Failing++
			s.TNS += slack
			if slack < s.WNS {
				s.WNS = slack
			}
		}
	}
	return s
}

// NetLoad returns the total load capacitance (pins + wire) of a net.
func (a *Analyzer) NetLoad(netID int) float64 { return a.netLoad[netID] }

// NetSlack returns for each net the worst slack over the pins of the net
// (+Inf for unconstrained nets). This is the per-net timing criticality the
// clustering consumes.
func (a *Analyzer) NetSlack() []float64 {
	a.Run()
	out := make([]float64, len(a.d.Nets))
	for i := range out {
		out[i] = math.Inf(1)
	}
	for i := range a.nodes {
		nd := &a.nodes[i]
		if nd.net < 0 || !nd.hasAT || !nd.hasRAT {
			continue
		}
		slack := nd.rat - nd.at
		if slack < out[nd.net] {
			out[nd.net] = slack
		}
	}
	return out
}

// Path is one extracted timing path.
type Path struct {
	Slack    float64
	Pins     []PinID
	Nets     []int // nets traversed, aligned with hops between pins
	Endpoint PinID
}

// TopPaths enumerates up to maxPaths timing paths: the worst path per
// endpoint, sorted by ascending slack. This mirrors OpenSTA findPathEnds
// with endpoint_count=1, unique_pins=true, sort_by_slack=true.
func (a *Analyzer) TopPaths(maxPaths int) []Path {
	a.Run()
	type endSlack struct {
		node  int
		slack float64
	}
	ends := make([]endSlack, 0, 256)
	for i := range a.nodes {
		nd := &a.nodes[i]
		if nd.endp && nd.hasAT && nd.hasRAT {
			ends = append(ends, endSlack{i, nd.rat - nd.at})
		}
	}
	sort.Slice(ends, func(i, j int) bool {
		if ends[i].slack != ends[j].slack {
			return ends[i].slack < ends[j].slack
		}
		return ends[i].node < ends[j].node
	})
	if maxPaths > 0 && len(ends) > maxPaths {
		ends = ends[:maxPaths]
	}
	paths := make([]Path, 0, len(ends))
	for _, es := range ends {
		p := Path{Slack: es.slack, Endpoint: a.nodes[es.node].id}
		// Backtrack via worst-arrival predecessor edges.
		cur := es.node
		for cur >= 0 {
			p.Pins = append(p.Pins, a.nodes[cur].id)
			ei := a.nodes[cur].worstIn
			if ei < 0 {
				break
			}
			e := &a.edges[ei]
			if !e.isCell {
				p.Nets = append(p.Nets, a.nodes[cur].net)
			}
			if e.isCell && e.arc.Kind == netlist.ArcClkToQ {
				// Launch point reached.
				p.Pins = append(p.Pins, a.nodes[e.from].id)
				break
			}
			cur = e.from
		}
		// Reverse to startpoint-first order.
		for l, r := 0, len(p.Pins)-1; l < r; l, r = l+1, r-1 {
			p.Pins[l], p.Pins[r] = p.Pins[r], p.Pins[l]
		}
		for l, r := 0, len(p.Nets)-1; l < r; l, r = l+1, r-1 {
			p.Nets[l], p.Nets[r] = p.Nets[r], p.Nets[l]
		}
		paths = append(paths, p)
	}
	return paths
}
