// Incremental-vs-full equivalence on generated designs, in the style of
// determinism_test.go (package sta_test: internal/designs imports sta).
package sta_test

import (
	"math"
	"math/rand"
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/netlist"
	"ppaclust/internal/sta"
)

// scatter places every movable core cell at a pseudo-random spot so the
// design has non-trivial wire geometry.
func scatter(d *netlist.Design, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, inst := range d.Insts {
		if inst.Fixed {
			continue
		}
		inst.X = d.Core.X0 + rng.Float64()*(d.Core.W()-inst.Master.Width)
		inst.Y = d.Core.Y0 + rng.Float64()*(d.Core.H()-inst.Master.Height)
		inst.Placed = true
	}
}

// perturb moves ~frac of the movable cells and invalidates them on an; it
// returns the moved instance IDs.
func perturb(d *netlist.Design, an *sta.Analyzer, frac float64, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	var moved []int
	for _, inst := range d.Insts {
		if inst.Fixed || rng.Float64() >= frac {
			continue
		}
		inst.X = d.Core.X0 + rng.Float64()*(d.Core.W()-inst.Master.Width)
		inst.Y = d.Core.Y0 + rng.Float64()*(d.Core.H()-inst.Master.Height)
		if an != nil {
			an.InvalidateInst(inst.ID)
		}
		moved = append(moved, inst.ID)
	}
	return moved
}

// requireIdentical asserts slacks, the timing summary and activities of two
// analyzers match bit-for-bit.
func requireIdentical(t *testing.T, ctx string, a, b *sta.Analyzer) {
	t.Helper()
	as, bs := a.NetSlack(), b.NetSlack()
	if len(as) != len(bs) {
		t.Fatalf("%s: net slack length mismatch", ctx)
	}
	for i := range as {
		if math.Float64bits(as[i]) != math.Float64bits(bs[i]) {
			t.Fatalf("%s: net %d slack %v vs %v", ctx, i, as[i], bs[i])
		}
	}
	at, bt := a.Timing(), b.Timing()
	if math.Float64bits(at.WNS) != math.Float64bits(bt.WNS) ||
		math.Float64bits(at.TNS) != math.Float64bits(bt.TNS) ||
		at.Endpoints != bt.Endpoints || at.Failing != bt.Failing {
		t.Fatalf("%s: summary differs: %+v vs %+v", ctx, at, bt)
	}
	aa, ba := a.NetActivity(), b.NetActivity()
	for i := range aa {
		if math.Float64bits(aa[i]) != math.Float64bits(ba[i]) {
			t.Fatalf("%s: net %d activity %v vs %v", ctx, i, aa[i], ba[i])
		}
	}
}

// TestIncrementalSTAEquivalent perturbs 5% of the cells, updates via the
// dirty-cone path, and requires bit-identical results to a fresh full
// analysis — at Workers=1 and Workers=8 on both sides.
func TestIncrementalSTAEquivalent(t *testing.T) {
	for _, name := range []string{"aes", "jpeg"} {
		for _, workers := range []int{1, 8} {
			t.Run(name, func(t *testing.T) {
				spec, ok := designs.Named(name)
				if !ok {
					t.Fatalf("unknown design %s", name)
				}
				spec.TargetInsts = 800
				b := designs.Generate(spec)
				scatter(b.Design, 42)

				an := sta.New(b.Design, b.Cons)
				an.Workers = workers
				if !an.ParallelScheduled() {
					t.Fatal("parallel schedule rejected a generated design")
				}
				an.Run()

				for round := 0; round < 3; round++ {
					perturb(b.Design, an, 0.05, int64(100+round))
					an.Update()
					if an.LastUpdateNodes() < 0 {
						t.Fatal("dirty-cone path did not engage")
					}
					for _, rw := range []int{1, 8} {
						ref := sta.New(b.Design, b.Cons)
						ref.Workers = rw
						requireIdentical(t, "incremental vs full", an, ref)
					}
				}
			})
		}
	}
}

// TestIncrementalModeSwitchEquivalent drives the zero-wire -> placed
// parasitics transition the flow uses (SetZeroWire + Update must reduce to
// exactly the full propagation) and the reverse.
func TestIncrementalModeSwitchEquivalent(t *testing.T) {
	spec, _ := designs.Named("aes")
	spec.TargetInsts = 800
	b := designs.Generate(spec)
	scatter(b.Design, 7)

	zc := b.Cons
	zc.ZeroWire = true
	an := sta.New(b.Design, zc)
	an.Workers = 8
	an.Run()
	refZero := sta.New(b.Design, zc)
	requireIdentical(t, "zero-wire", an, refZero)

	an.SetZeroWire(false)
	an.Update()
	if an.LastUpdateNodes() != -1 {
		t.Fatal("full invalidation should reduce to the full propagation")
	}
	ref := sta.New(b.Design, b.Cons)
	requireIdentical(t, "placed after switch", an, ref)

	// Moving cells after the switch keeps the reused analyzer exact.
	perturb(b.Design, an, 0.05, 9)
	an.Update()
	if an.LastUpdateNodes() < 0 {
		t.Fatal("dirty-cone path did not engage after mode switch")
	}
	ref2 := sta.New(b.Design, b.Cons)
	requireIdentical(t, "perturbed after switch", an, ref2)

	// And back to zero-wire.
	an.SetZeroWire(true)
	an.Update()
	refZero2 := sta.New(b.Design, zc)
	requireIdentical(t, "back to zero-wire", an, refZero2)
}

// TestIncrementalLegacyUpdateEquivalent checks that Update with no recorded
// invalidations still refreshes everything (legacy callers move cells and
// call Update directly).
func TestIncrementalLegacyUpdateEquivalent(t *testing.T) {
	spec, _ := designs.Named("jpeg")
	spec.TargetInsts = 800
	b := designs.Generate(spec)
	scatter(b.Design, 3)

	an := sta.New(b.Design, b.Cons)
	an.Run()
	perturb(b.Design, nil, 0.3, 11)
	an.Update() // no Invalidate calls recorded
	ref := sta.New(b.Design, b.Cons)
	requireIdentical(t, "legacy update", an, ref)
}
