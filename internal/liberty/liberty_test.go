package liberty

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/netlist"
)

func TestWriteParseRoundTrip(t *testing.T) {
	lib := designs.Lib()
	var buf bytes.Buffer
	if err := Write(&buf, lib); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("%v\n--- emitted ---\n%s", err, buf.String()[:600])
	}
	if got.Name != lib.Name {
		t.Fatalf("library name %q", got.Name)
	}
	for _, name := range lib.MasterNames() {
		om := lib.Master(name)
		gm := got.Master(name)
		if gm == nil {
			t.Fatalf("cell %s lost", name)
		}
		if math.Abs(gm.Leakage-om.Leakage) > 1e-12 {
			t.Fatalf("%s leakage %v != %v", name, gm.Leakage, om.Leakage)
		}
		for pi := range om.Pins {
			op := &om.Pins[pi]
			gp := gm.Pin(op.Name)
			if gp == nil {
				t.Fatalf("%s pin %s lost", name, op.Name)
			}
			if gp.Dir != op.Dir || gp.Clock != op.Clock {
				t.Fatalf("%s pin %s flags", name, op.Name)
			}
			if math.Abs(gp.Cap-op.Cap) > 1e-20 {
				t.Fatalf("%s pin %s cap %v != %v", name, op.Name, gp.Cap, op.Cap)
			}
			if len(gp.Arcs) != len(op.Arcs) {
				t.Fatalf("%s pin %s arcs %d != %d", name, op.Name, len(gp.Arcs), len(op.Arcs))
			}
			for ai := range op.Arcs {
				oa, ga := &op.Arcs[ai], &gp.Arcs[ai]
				if ga.Kind != oa.Kind || ga.From != oa.From {
					t.Fatalf("%s/%s arc %d kind/from mismatch", name, op.Name, ai)
				}
				// Table lookups must agree at probe points.
				for _, probe := range [][2]float64{{10e-12, 5e-15}, {50e-12, 30e-15}} {
					ov := oa.Delay.Lookup(probe[0], probe[1])
					gv := ga.Delay.Lookup(probe[0], probe[1])
					if math.Abs(ov-gv) > 1e-15+1e-6*math.Abs(ov) {
						t.Fatalf("%s/%s arc delay %v != %v", name, op.Name, gv, ov)
					}
				}
				if math.Abs(ga.Energy-oa.Energy) > 1e-21 {
					t.Fatalf("%s/%s energy %v != %v", name, op.Name, ga.Energy, oa.Energy)
				}
			}
		}
	}
	// Parsed library must be functional for sequential detection.
	if !got.Master("DFF_X1").IsSequential() {
		t.Fatal("parsed DFF lost its clk->q arc")
	}
	if got.Master("RAM32X32").Class != netlist.ClassMacro {
		t.Fatal("macro flag lost")
	}
}

func TestParseMinimalCell(t *testing.T) {
	src := `library (mini) {
  cell (BUF) {
    area : 1.5;
    cell_leakage_power : 12;
    pin (A) { direction : input; capacitance : 0.002; }
    pin (Z) {
      direction : output;
      timing () {
        related_pin : "A";
        timing_type : combinational;
        cell_rise () {
          index_1 ("0.01, 0.05");
          index_2 ("0.001, 0.01");
          values ( "0.02, 0.03", "0.04, 0.05" );
        }
      }
    }
  }
}`
	lib, err := Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	buf := lib.Master("BUF")
	if buf == nil {
		t.Fatal("BUF missing")
	}
	if math.Abs(buf.Leakage-12e-9) > 1e-15 {
		t.Fatalf("leakage=%v", buf.Leakage)
	}
	arc := &buf.Pin("Z").Arcs[0]
	got := arc.Delay.Lookup(0.01e-9, 0.001e-12)
	if math.Abs(got-0.02e-9) > 1e-15 {
		t.Fatalf("table corner=%v", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"cell (X) { }",
		"library (x) { cell (c) { pin (p) { timing () { cell_rise () { index_1 (\"1\"); index_2 (\"1\"); values (\"1\", \"2\"); } } } } }",
		"library (x) { cell (",
	}
	for _, src := range cases {
		if _, err := Parse(strings.NewReader(src)); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
}

func TestDuplicateCellFails(t *testing.T) {
	src := `library (x) { cell (A) { area : 1; } cell (A) { area : 2; } }`
	if _, err := Parse(strings.NewReader(src)); err == nil {
		t.Fatal("expected duplicate cell error")
	}
}
