package liberty

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/iotest"

	"ppaclust/internal/designs"
	"ppaclust/internal/scan"
)

// TestStreamingLexerChunkInvariant checks that the streaming lexer is
// insensitive to read-boundary placement: parsing the emitted standard
// library one byte at a time must produce the same written form as a
// whole-buffer parse.
func TestStreamingLexerChunkInvariant(t *testing.T) {
	var srcBuf bytes.Buffer
	if err := Write(&srcBuf, designs.Lib()); err != nil {
		t.Fatal(err)
	}
	src := srcBuf.Bytes()
	whole, err := Parse(bytes.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	chunked, err := Parse(iotest.OneByteReader(bytes.NewReader(src)))
	if err != nil {
		t.Fatalf("one-byte reader: %v", err)
	}
	var w1, w2 bytes.Buffer
	if err := Write(&w1, whole); err != nil {
		t.Fatal(err)
	}
	if err := Write(&w2, chunked); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Fatal("parse differs between whole-buffer and one-byte readers")
	}
}

// TestStreamingReadErrorSurfaces checks that an I/O failure mid-parse is
// reported as a read *scan.ParseError — not swallowed as EOF, and not
// accepted as a truncated-but-valid library.
func TestStreamingReadErrorSurfaces(t *testing.T) {
	head := "library (l) {\n  cell (INV_X1) {\n    area : 1.0;\n"
	boom := errors.New("disk on fire")
	r := io.MultiReader(strings.NewReader(head), iotest.ErrReader(boom))
	_, err := Parse(r)
	if err == nil {
		t.Fatal("parse accepted a failing reader")
	}
	var pe *scan.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T, not *scan.ParseError: %v", err, err)
	}
	if !strings.Contains(pe.Error(), "read") || !strings.Contains(pe.Error(), "disk on fire") {
		t.Fatalf("error %q does not carry the read failure", pe.Error())
	}

	// The statement-style truncation trap: a read failure right before the
	// library body must not parse as "library (l)" with no cells.
	r = io.MultiReader(strings.NewReader("library (l)"), iotest.ErrReader(boom))
	if _, err := Parse(r); err == nil {
		t.Fatal("parse accepted a library truncated by a read failure")
	}
}
