package liberty

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/scan"
)

// FuzzReadLiberty asserts the liberty reader never panics (including on
// unterminated strings and deep group nesting), returns structured errors,
// and round-trips its own emission byte-for-byte.
func FuzzReadLiberty(f *testing.F) {
	var seed bytes.Buffer
	if err := Write(&seed, designs.Lib()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("library (l) {\n  cell (INV) {\n    area : 1.12;\n    pin (A) { direction : input; capacitance : 0.001; }\n" +
		"    pin (ZN) {\n      direction : output;\n      timing () {\n        related_pin : \"A\";\n" +
		"        timing_type : combinational;\n        cell_rise () {\n          index_1 (\"0.01\");\n" +
		"          index_2 (\"0.001\");\n          values (\"0.02\");\n        }\n      }\n    }\n  }\n}\n")
	f.Add("library (l) { cell (C) { area : bogus; } }\n")
	f.Add("library (l) { cell (C) { pin (\"unterminated) { } } }\n")
	f.Fuzz(func(t *testing.T, in string) {
		lib, _, err := ParseWith(strings.NewReader(in), Options{File: "fuzz.lib"})
		if _, _, lerr := ParseWith(strings.NewReader(in),
			Options{File: "fuzz.lib", Lenient: true}); lerr != nil {
			requireParseError(t, lerr)
		}
		if err != nil {
			requireParseError(t, err)
			return
		}
		var w1 bytes.Buffer
		if err := Write(&w1, lib); err != nil {
			t.Fatalf("write after accepting parse: %v", err)
		}
		lib2, err := Parse(bytes.NewReader(w1.Bytes()))
		if err != nil {
			t.Fatalf("re-parse of own output failed: %v\noutput:\n%s", err, w1.String())
		}
		var w2 bytes.Buffer
		if err := Write(&w2, lib2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("write->read->write is not a fixpoint\n--- first:\n%s--- second:\n%s",
				w1.String(), w2.String())
		}
	})
}

func requireParseError(t *testing.T, err error) {
	t.Helper()
	var pe *scan.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is not a *scan.ParseError: %T: %v", err, err)
	}
	if pe.File == "" {
		t.Fatalf("ParseError without file context: %v", pe)
	}
}
