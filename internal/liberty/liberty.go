// Package liberty reads and writes the Liberty (.lib) subset that carries
// the electrical view: cell area and leakage, pin direction/capacitance, and
// NLDM delay/transition tables on timing arcs. File units follow the common
// academic convention — time ns, capacitance pF, power nW, energy fJ — and
// are converted to SI on parse.
package liberty

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"ppaclust/internal/netlist"
	"ppaclust/internal/scan"
)

// Unit conversions between file and SI.
const (
	timeUnit   = 1e-9  // ns
	capUnit    = 1e-12 // pF
	leakUnit   = 1e-9  // nW
	energyUnit = 1e-15 // fJ
)

// Parse-time magnitude bounds, in file units. They reject corrupt inputs
// and keep the fixed-precision writers' write->read->write fixpoint: table
// entries additionally must not be denormal-small, or the unit rescale
// would lose precision.
const (
	maxArea     = 1e8  // um^2
	maxLeak     = 1e8  // nW
	maxCap      = 1e6  // pF
	maxEnergy   = 1e8  // fJ
	maxTableVal = 1e12 // table index/value magnitude
	minTableVal = 1e-12
	maxDepth    = 64 // group nesting
)

// Write emits the library.
func Write(w io.Writer, lib *netlist.Library) error {
	fmt.Fprintf(w, "library (%s) {\n", lib.Name)
	fmt.Fprintf(w, "  time_unit : \"1ns\";\n  capacitive_load_unit (1,pf);\n")
	for _, name := range lib.MasterNames() {
		m := lib.Master(name)
		fmt.Fprintf(w, "  cell (%s) {\n", m.Name)
		fmt.Fprintf(w, "    area : %.4f;\n", m.Area())
		fmt.Fprintf(w, "    cell_leakage_power : %.4f;\n", m.Leakage/leakUnit)
		if m.Class == netlist.ClassMacro {
			fmt.Fprintf(w, "    is_macro_cell : true;\n")
		}
		for pi := range m.Pins {
			writePin(w, &m.Pins[pi])
		}
		fmt.Fprintf(w, "  }\n")
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func writePin(w io.Writer, p *netlist.MasterPin) {
	fmt.Fprintf(w, "    pin (%s) {\n", p.Name)
	dir := "input"
	switch p.Dir {
	case netlist.DirOutput:
		dir = "output"
	case netlist.DirInout:
		dir = "inout"
	}
	fmt.Fprintf(w, "      direction : %s;\n", dir)
	if p.Cap > 0 {
		fmt.Fprintf(w, "      capacitance : %.6f;\n", p.Cap/capUnit)
	}
	if p.MaxCap > 0 {
		fmt.Fprintf(w, "      max_capacitance : %.6f;\n", p.MaxCap/capUnit)
	}
	if p.Clock {
		fmt.Fprintf(w, "      clock : true;\n")
	}
	for ai := range p.Arcs {
		writeArc(w, &p.Arcs[ai])
	}
	fmt.Fprintf(w, "    }\n")
}

func arcKindName(k netlist.ArcKind) string {
	switch k {
	case netlist.ArcClkToQ:
		return "rising_edge"
	case netlist.ArcSetup:
		return "setup_rising"
	case netlist.ArcHold:
		return "hold_rising"
	default:
		return "combinational"
	}
}

func writeArc(w io.Writer, a *netlist.TimingArc) {
	fmt.Fprintf(w, "      timing () {\n")
	fmt.Fprintf(w, "        related_pin : \"%s\";\n", a.From)
	fmt.Fprintf(w, "        timing_type : %s;\n", arcKindName(a.Kind))
	if a.Energy > 0 {
		fmt.Fprintf(w, "        energy : %.6f;\n", a.Energy/energyUnit)
	}
	writeTable(w, "cell_rise", &a.Delay)
	if len(a.Slew.Values) > 0 {
		writeTable(w, "rise_transition", &a.Slew)
	}
	fmt.Fprintf(w, "      }\n")
}

func writeTable(w io.Writer, name string, t *netlist.Table) {
	if len(t.Values) == 0 {
		return
	}
	fmt.Fprintf(w, "        %s () {\n", name)
	fmt.Fprintf(w, "          index_1 (\"%s\");\n", joinScaled(t.Slews, timeUnit))
	fmt.Fprintf(w, "          index_2 (\"%s\");\n", joinScaled(t.Loads, capUnit))
	fmt.Fprintf(w, "          values ( \\\n")
	for i, row := range t.Values {
		sep := ", \\"
		if i == len(t.Values)-1 {
			sep = " \\"
		}
		fmt.Fprintf(w, "            \"%s\"%s\n", joinScaled(row, timeUnit), sep)
	}
	fmt.Fprintf(w, "          );\n        }\n")
}

func joinScaled(vs []float64, unit float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.FormatFloat(v/unit, 'g', 8, 64)
	}
	return strings.Join(parts, ", ")
}

// Options configures a parse.
type Options struct {
	// File names the input in errors; defaults to "liberty".
	File string
	// Lenient tolerates recoverable field errors — unparsable or
	// out-of-range numeric attributes, malformed NLDM tables — by skipping
	// the attribute (or dropping the timing arc) and recording a warning.
	// Structural errors (broken group syntax, duplicate cells) are fatal in
	// both modes.
	Lenient bool
}

// Parse reads a liberty file into a new library, strictly: every malformed
// field is a *scan.ParseError.
func Parse(r io.Reader) (*netlist.Library, error) {
	lib, _, err := ParseWith(r, Options{})
	return lib, err
}

// ParseWith reads liberty under the given options. In lenient mode the
// returned warnings list the fields and arcs that were skipped.
func ParseWith(r io.Reader, o Options) (*netlist.Library, []*scan.ParseError, error) {
	file := o.File
	if file == "" {
		file = "liberty"
	}
	b := &builder{file: file, strict: !o.Lenient}
	if o.Lenient {
		b.warns = &scan.Warnings{}
	}
	p := &parser{lx: newLexer(r), file: file}
	g, err := p.parseGroup(0)
	// A mid-file read failure surfaces to the parser as plain token
	// exhaustion; report the I/O error rather than a bogus EOF diagnosis (or,
	// worse, accept a statement-style truncation of the library group).
	if lerr := p.lx.err; lerr != nil {
		return nil, b.warns.List(), scan.Errorf(file, p.lx.line, "", "read: %v", lerr)
	}
	if err != nil {
		return nil, b.warns.List(), err
	}
	if g.name != "library" {
		return nil, b.warns.List(), scan.Errorf(file, g.line, g.name, "top group is %q, want library", g.name)
	}
	libName := "lib"
	if len(g.args) > 0 && g.args[0] != "" {
		libName = g.args[0]
	}
	lib := netlist.NewLibrary(libName)
	for _, cg := range g.groups {
		if cg.name != "cell" {
			continue
		}
		if len(cg.args) == 0 || cg.args[0] == "" {
			if err := b.tolerate(scan.Errorf(file, cg.line, "cell", "cell without a name")); err != nil {
				return nil, b.warns.List(), err
			}
			continue
		}
		m, err := b.cell(cg)
		if err != nil {
			return nil, b.warns.List(), err
		}
		if err := lib.AddMaster(m); err != nil {
			return nil, b.warns.List(), scan.Errorf(file, cg.line, m.Name, "%v", err)
		}
	}
	return lib, b.warns.List(), nil
}

// group is a parsed liberty group: name(args) { attrs; subgroups }.
type group struct {
	name   string
	line   int
	args   []string
	attrs  map[string]attrVal
	groups []*group
}

// attrVal is an attribute value with the line it was defined on.
type attrVal struct {
	s    string
	line int
}

// builder turns the parsed group tree into a netlist.Library, applying the
// strict/lenient policy to numeric attributes.
type builder struct {
	file   string
	strict bool
	warns  *scan.Warnings
}

func (b *builder) tolerate(err *scan.ParseError) error {
	if err == nil || b.strict {
		if err == nil {
			return nil
		}
		return err
	}
	b.warns.Add(err)
	return nil
}

// numAttr parses the named attribute as a finite number with |v| <= maxAbs,
// scaled by unit. ok reports whether a usable value was produced; a bad
// value is an error in strict mode and a recorded warning otherwise.
func (b *builder) numAttr(g *group, name string, unit, maxAbs float64) (v float64, ok bool, err error) {
	a, present := g.attrs[name]
	if !present {
		return 0, false, nil
	}
	raw, pok := scan.ParseFloat(a.s)
	if !pok || raw < -maxAbs || raw > maxAbs {
		return 0, false, b.tolerate(scan.Errorf(b.file, a.line, a.s,
			"%s: not a finite number in [-%g, %g]", name, maxAbs, maxAbs))
	}
	return raw * unit, true, nil
}

func (b *builder) cell(g *group) (*netlist.Master, error) {
	m := &netlist.Master{Name: g.args[0]}
	if v, ok, err := b.numAttr(g, "cell_leakage_power", leakUnit, maxLeak); err != nil {
		return nil, err
	} else if ok {
		m.Leakage = v
	}
	if g.attrs["is_macro_cell"].s == "true" {
		m.Class = netlist.ClassMacro
	}
	// Geometry comes from LEF; approximate from area if present so a
	// liberty-only library is still usable.
	if a, ok, err := b.numAttr(g, "area", 1, maxArea); err != nil {
		return nil, err
	} else if ok && a > 0 {
		m.Height = 1.4
		m.Width = a / m.Height
	}
	for _, pg := range g.groups {
		if pg.name != "pin" {
			continue
		}
		if len(pg.args) == 0 || pg.args[0] == "" {
			if err := b.tolerate(scan.Errorf(b.file, pg.line, "pin", "pin without a name")); err != nil {
				return nil, err
			}
			continue
		}
		pin := netlist.MasterPin{Name: pg.args[0]}
		switch pg.attrs["direction"].s {
		case "output":
			pin.Dir = netlist.DirOutput
		case "inout":
			pin.Dir = netlist.DirInout
		default:
			pin.Dir = netlist.DirInput
		}
		if v, ok, err := b.numAttr(pg, "capacitance", capUnit, maxCap); err != nil {
			return nil, err
		} else if ok {
			pin.Cap = v
		}
		if v, ok, err := b.numAttr(pg, "max_capacitance", capUnit, maxCap); err != nil {
			return nil, err
		} else if ok {
			pin.MaxCap = v
		}
		if pg.attrs["clock"].s == "true" {
			pin.Clock = true
		}
		for _, tg := range pg.groups {
			if tg.name != "timing" {
				continue
			}
			arc, err := b.arc(tg)
			if err != nil {
				if terr := b.tolerate(asParseError(err)); terr != nil {
					return nil, terr
				}
				continue // lenient: drop the malformed arc
			}
			pin.Arcs = append(pin.Arcs, arc)
		}
		m.AddPin(pin)
	}
	return m, nil
}

func asParseError(err error) *scan.ParseError {
	if pe, ok := err.(*scan.ParseError); ok {
		return pe
	}
	return &scan.ParseError{Msg: err.Error()}
}

func (b *builder) arc(g *group) (netlist.TimingArc, error) {
	arc := netlist.TimingArc{From: strings.Trim(g.attrs["related_pin"].s, "\"")}
	switch g.attrs["timing_type"].s {
	case "rising_edge", "falling_edge":
		arc.Kind = netlist.ArcClkToQ
	case "setup_rising", "setup_falling":
		arc.Kind = netlist.ArcSetup
	case "hold_rising", "hold_falling":
		arc.Kind = netlist.ArcHold
	default:
		arc.Kind = netlist.ArcComb
	}
	// A bad energy value is always arc-fatal here; cell() downgrades it to
	// a dropped arc in lenient mode.
	if a, present := g.attrs["energy"]; present {
		v, ok := scan.ParseFloat(a.s)
		if !ok || v < -maxEnergy || v > maxEnergy {
			return arc, scan.Errorf(b.file, a.line, a.s, "energy: not a finite number in [-%g, %g]",
				float64(maxEnergy), float64(maxEnergy))
		}
		arc.Energy = v * energyUnit
	}
	for _, tg := range g.groups {
		switch tg.name {
		case "cell_rise", "cell_fall":
			t, err := b.table(tg)
			if err != nil {
				return arc, err
			}
			arc.Delay = t
		case "rise_transition", "fall_transition":
			t, err := b.table(tg)
			if err != nil {
				return arc, err
			}
			arc.Slew = t
		}
	}
	return arc, nil
}

func (b *builder) table(g *group) (netlist.Table, error) {
	var t netlist.Table
	var err error
	if t.Slews, err = b.list(g, "index_1", timeUnit); err != nil {
		return t, err
	}
	if t.Loads, err = b.list(g, "index_2", capUnit); err != nil {
		return t, err
	}
	values := g.attrs["values"]
	for _, row := range strings.Split(values.s, ";") {
		vals, err := parseList(b.file, values.line, row, timeUnit)
		if err != nil {
			return t, err
		}
		if len(vals) > 0 {
			t.Values = append(t.Values, vals)
		}
	}
	if len(t.Values) != len(t.Slews) {
		return t, scan.Errorf(b.file, g.line, g.name, "table has %d rows for %d slews",
			len(t.Values), len(t.Slews))
	}
	for _, row := range t.Values {
		if len(row) != len(t.Loads) {
			return t, scan.Errorf(b.file, g.line, g.name, "table row has %d cols for %d loads",
				len(row), len(t.Loads))
		}
	}
	return t, nil
}

func (b *builder) list(g *group, name string, unit float64) ([]float64, error) {
	a := g.attrs[name]
	return parseList(b.file, a.line, a.s, unit)
}

func parseList(file string, line int, s string, unit float64) ([]float64, error) {
	s = strings.Trim(s, "\" ")
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(strings.Trim(p, "\""))
		if p == "" {
			continue
		}
		v, ok := scan.ParseFloat(p)
		if !ok || (v != 0 && (v < -maxTableVal || v > maxTableVal ||
			(v > -minTableVal && v < minTableVal))) {
			return nil, scan.Errorf(file, line, p, "bad table number")
		}
		out = append(out, v*unit)
	}
	return out, nil
}

// ---- tokenizer and recursive-descent group parser ----

type tok struct {
	text string
	line int
}

// lexer streams tokens straight off the reader: a multi-MB liberty file is
// parsed without ever holding the raw bytes or a whole-file token slice, so
// peak memory tracks the library being built, not the file size. The empty
// token text marks exhaustion — EOF, or a read failure left sticky in err.
type lexer struct {
	br   *bufio.Reader
	line int
	last int    // line of the last real token; exhaustion reports here
	err  error  // sticky non-EOF read error
	buf  []byte // scratch for multi-byte tokens
}

func newLexer(r io.Reader) *lexer {
	return &lexer{br: bufio.NewReaderSize(r, 64<<10), line: 1}
}

func (lx *lexer) readByte() (byte, bool) {
	if lx.err != nil {
		return 0, false
	}
	c, err := lx.br.ReadByte()
	if err != nil {
		if err != io.EOF {
			lx.err = err
		}
		return 0, false
	}
	return c, true
}

func (lx *lexer) next() tok {
	t := lx.scanToken()
	if t.text != "" {
		lx.last = t.line
	}
	return t
}

func (lx *lexer) scanToken() tok {
	for {
		c, ok := lx.readByte()
		if !ok {
			return tok{"", lx.last}
		}
		switch {
		case c == '\n':
			lx.line++
		case c == ' ' || c == '\t' || c == '\r':
		case c == '\\': // line continuation
		case c == '/':
			d, ok := lx.readByte()
			if !ok {
				return lx.word(c)
			}
			if d != '*' {
				lx.br.UnreadByte()
				return lx.word(c)
			}
			prev := byte(0)
			for {
				c, ok := lx.readByte()
				if !ok {
					return tok{"", lx.last}
				}
				if c == '\n' {
					lx.line++
				}
				if prev == '*' && c == '/' {
					break
				}
				prev = c
			}
		case c == '(' || c == ')' || c == '{' || c == '}' || c == ';' || c == ':' || c == ',':
			return tok{string(c), lx.line}
		case c == '"': // quotes kept in the token; unterminated runs to EOF
			ln := lx.line
			lx.buf = append(lx.buf[:0], c)
			for {
				c, ok := lx.readByte()
				if !ok {
					break
				}
				if c == '\n' {
					lx.line++
				}
				lx.buf = append(lx.buf, c)
				if c == '"' {
					break
				}
			}
			return tok{string(lx.buf), ln}
		default:
			return lx.word(c)
		}
	}
}

// word accumulates an ordinary token starting with c, up to the next
// whitespace, punctuation, continuation or quote byte (left unread).
func (lx *lexer) word(c byte) tok {
	ln := lx.line
	lx.buf = append(lx.buf[:0], c)
	for {
		c, ok := lx.readByte()
		if !ok {
			break
		}
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' ||
			c == '(' || c == ')' || c == '{' || c == '}' || c == ';' || c == ':' || c == ',' ||
			c == '\\' || c == '"' {
			lx.br.UnreadByte()
			break
		}
		lx.buf = append(lx.buf, c)
	}
	return tok{string(lx.buf), ln}
}

// parser pulls tokens from the lexer through a two-slot lookahead buffer:
// slot 0 is the next token, and unread pushes the most recently consumed
// token back in front (parseGroup rewinds one token to re-parse "name (" as
// a sub-group after the attribute lookahead).
type parser struct {
	lx   *lexer
	pend [2]tok
	npnd int
	prev tok // most recently consumed, for unread
	file string
}

func (p *parser) peekTok() tok {
	if p.npnd == 0 {
		p.pend[0] = p.lx.next()
		p.npnd = 1
	}
	return p.pend[0]
}

func (p *parser) peek() string { return p.peekTok().text }

func (p *parser) line() int {
	t := p.peekTok()
	if t.text == "" {
		return p.lx.last
	}
	return t.line
}

func (p *parser) next() string {
	t := p.peekTok()
	p.pend[0] = p.pend[1]
	p.npnd--
	p.prev = t
	return t.text
}

func (p *parser) unread() {
	p.pend[1] = p.pend[0]
	p.pend[0] = p.prev
	p.npnd++
}

// parseGroup parses name ( args ) { body }.
func (p *parser) parseGroup(depth int) (*group, error) {
	if depth > maxDepth {
		return nil, scan.Errorf(p.file, p.line(), p.peek(), "groups nested deeper than %d", maxDepth)
	}
	g := &group{line: p.line(), attrs: map[string]attrVal{}}
	g.name = p.next()
	if p.next() != "(" {
		return nil, scan.Errorf(p.file, g.line, g.name, "expected ( after %s", g.name)
	}
	for p.peek() != ")" && p.peek() != "" {
		t := p.next()
		if t != "," {
			g.args = append(g.args, strings.Trim(t, "\""))
		}
	}
	p.next() // ")"
	if p.peek() != "{" {
		// Statement-style group without body.
		if p.peek() == ";" {
			p.next()
		}
		return g, nil
	}
	p.next() // "{"
	for {
		switch p.peek() {
		case "}":
			p.next()
			if p.peek() == ";" {
				p.next()
			}
			return g, nil
		case "":
			return nil, scan.Errorf(p.file, p.line(), g.name, "unexpected EOF in group %s", g.name)
		}
		nameLine := p.line()
		name := p.next()
		switch p.peek() {
		case ":":
			p.next()
			var val strings.Builder
			for p.peek() != ";" && p.peek() != "" {
				if val.Len() > 0 {
					val.WriteString(" ")
				}
				val.WriteString(p.next())
			}
			p.next() // ";"
			g.attrs[name] = attrVal{s: strings.TrimSpace(val.String()), line: nameLine}
		case "(":
			// Sub-group or complex attribute: rewind and parse as group.
			p.unread()
			sub, err := p.parseGroup(depth + 1)
			if err != nil {
				return nil, err
			}
			// Complex attributes (index_1, values, capacitive_load_unit)
			// are stored as joined-args attrs; real groups nest.
			if len(sub.groups) == 0 && len(sub.attrs) == 0 && sub.name != "timing" &&
				sub.name != "pin" && sub.name != "cell" &&
				sub.name != "cell_rise" && sub.name != "cell_fall" &&
				sub.name != "rise_transition" && sub.name != "fall_transition" {
				g.attrs[sub.name] = attrVal{s: strings.Join(sub.args, ";"), line: sub.line}
			} else {
				g.groups = append(g.groups, sub)
			}
		default:
			return nil, scan.Errorf(p.file, nameLine, name, "unexpected token %q after %q", p.peek(), name)
		}
	}
}
