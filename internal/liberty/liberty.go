// Package liberty reads and writes the Liberty (.lib) subset that carries
// the electrical view: cell area and leakage, pin direction/capacitance, and
// NLDM delay/transition tables on timing arcs. File units follow the common
// academic convention — time ns, capacitance pF, power nW, energy fJ — and
// are converted to SI on parse.
package liberty

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"ppaclust/internal/netlist"
)

// Unit conversions between file and SI.
const (
	timeUnit   = 1e-9  // ns
	capUnit    = 1e-12 // pF
	leakUnit   = 1e-9  // nW
	energyUnit = 1e-15 // fJ
)

// Write emits the library.
func Write(w io.Writer, lib *netlist.Library) error {
	fmt.Fprintf(w, "library (%s) {\n", lib.Name)
	fmt.Fprintf(w, "  time_unit : \"1ns\";\n  capacitive_load_unit (1,pf);\n")
	for _, name := range lib.MasterNames() {
		m := lib.Master(name)
		fmt.Fprintf(w, "  cell (%s) {\n", m.Name)
		fmt.Fprintf(w, "    area : %.4f;\n", m.Area())
		fmt.Fprintf(w, "    cell_leakage_power : %.4f;\n", m.Leakage/leakUnit)
		if m.Class == netlist.ClassMacro {
			fmt.Fprintf(w, "    is_macro_cell : true;\n")
		}
		for pi := range m.Pins {
			writePin(w, &m.Pins[pi])
		}
		fmt.Fprintf(w, "  }\n")
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func writePin(w io.Writer, p *netlist.MasterPin) {
	fmt.Fprintf(w, "    pin (%s) {\n", p.Name)
	dir := "input"
	switch p.Dir {
	case netlist.DirOutput:
		dir = "output"
	case netlist.DirInout:
		dir = "inout"
	}
	fmt.Fprintf(w, "      direction : %s;\n", dir)
	if p.Cap > 0 {
		fmt.Fprintf(w, "      capacitance : %.6f;\n", p.Cap/capUnit)
	}
	if p.MaxCap > 0 {
		fmt.Fprintf(w, "      max_capacitance : %.6f;\n", p.MaxCap/capUnit)
	}
	if p.Clock {
		fmt.Fprintf(w, "      clock : true;\n")
	}
	for ai := range p.Arcs {
		writeArc(w, &p.Arcs[ai])
	}
	fmt.Fprintf(w, "    }\n")
}

func arcKindName(k netlist.ArcKind) string {
	switch k {
	case netlist.ArcClkToQ:
		return "rising_edge"
	case netlist.ArcSetup:
		return "setup_rising"
	case netlist.ArcHold:
		return "hold_rising"
	default:
		return "combinational"
	}
}

func writeArc(w io.Writer, a *netlist.TimingArc) {
	fmt.Fprintf(w, "      timing () {\n")
	fmt.Fprintf(w, "        related_pin : \"%s\";\n", a.From)
	fmt.Fprintf(w, "        timing_type : %s;\n", arcKindName(a.Kind))
	if a.Energy > 0 {
		fmt.Fprintf(w, "        energy : %.6f;\n", a.Energy/energyUnit)
	}
	writeTable(w, "cell_rise", &a.Delay)
	if len(a.Slew.Values) > 0 {
		writeTable(w, "rise_transition", &a.Slew)
	}
	fmt.Fprintf(w, "      }\n")
}

func writeTable(w io.Writer, name string, t *netlist.Table) {
	if len(t.Values) == 0 {
		return
	}
	fmt.Fprintf(w, "        %s () {\n", name)
	fmt.Fprintf(w, "          index_1 (\"%s\");\n", joinScaled(t.Slews, timeUnit))
	fmt.Fprintf(w, "          index_2 (\"%s\");\n", joinScaled(t.Loads, capUnit))
	fmt.Fprintf(w, "          values ( \\\n")
	for i, row := range t.Values {
		sep := ", \\"
		if i == len(t.Values)-1 {
			sep = " \\"
		}
		fmt.Fprintf(w, "            \"%s\"%s\n", joinScaled(row, timeUnit), sep)
	}
	fmt.Fprintf(w, "          );\n        }\n")
}

func joinScaled(vs []float64, unit float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.FormatFloat(v/unit, 'g', 8, 64)
	}
	return strings.Join(parts, ", ")
}

// Parse reads a liberty file into a new library.
func Parse(r io.Reader) (*netlist.Library, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	toks := tokenize(string(data))
	p := &parser{toks: toks}
	g, err := p.parseGroup()
	if err != nil {
		return nil, err
	}
	if g.name != "library" {
		return nil, fmt.Errorf("liberty: top group is %q, want library", g.name)
	}
	libName := "lib"
	if len(g.args) > 0 {
		libName = g.args[0]
	}
	lib := netlist.NewLibrary(libName)
	for _, cg := range g.groups {
		if cg.name != "cell" || len(cg.args) == 0 {
			continue
		}
		m, err := buildCell(cg)
		if err != nil {
			return nil, err
		}
		if err := lib.AddMaster(m); err != nil {
			return nil, err
		}
	}
	return lib, nil
}

// group is a parsed liberty group: name(args) { attrs; subgroups }.
type group struct {
	name   string
	args   []string
	attrs  map[string]string
	groups []*group
}

func buildCell(g *group) (*netlist.Master, error) {
	m := &netlist.Master{Name: g.args[0]}
	if v, ok := g.attrs["cell_leakage_power"]; ok {
		f, _ := strconv.ParseFloat(v, 64)
		m.Leakage = f * leakUnit
	}
	if g.attrs["is_macro_cell"] == "true" {
		m.Class = netlist.ClassMacro
	}
	// Geometry comes from LEF; approximate from area if present so a
	// liberty-only library is still usable.
	if v, ok := g.attrs["area"]; ok {
		a, _ := strconv.ParseFloat(v, 64)
		if a > 0 {
			m.Height = 1.4
			m.Width = a / m.Height
		}
	}
	for _, pg := range g.groups {
		if pg.name != "pin" || len(pg.args) == 0 {
			continue
		}
		pin := netlist.MasterPin{Name: pg.args[0]}
		switch pg.attrs["direction"] {
		case "output":
			pin.Dir = netlist.DirOutput
		case "inout":
			pin.Dir = netlist.DirInout
		default:
			pin.Dir = netlist.DirInput
		}
		if v, ok := pg.attrs["capacitance"]; ok {
			f, _ := strconv.ParseFloat(v, 64)
			pin.Cap = f * capUnit
		}
		if v, ok := pg.attrs["max_capacitance"]; ok {
			f, _ := strconv.ParseFloat(v, 64)
			pin.MaxCap = f * capUnit
		}
		if pg.attrs["clock"] == "true" {
			pin.Clock = true
		}
		for _, tg := range pg.groups {
			if tg.name != "timing" {
				continue
			}
			arc, err := buildArc(tg)
			if err != nil {
				return nil, err
			}
			pin.Arcs = append(pin.Arcs, arc)
		}
		m.AddPin(pin)
	}
	return m, nil
}

func buildArc(g *group) (netlist.TimingArc, error) {
	arc := netlist.TimingArc{From: strings.Trim(g.attrs["related_pin"], "\"")}
	switch g.attrs["timing_type"] {
	case "rising_edge", "falling_edge":
		arc.Kind = netlist.ArcClkToQ
	case "setup_rising", "setup_falling":
		arc.Kind = netlist.ArcSetup
	case "hold_rising", "hold_falling":
		arc.Kind = netlist.ArcHold
	default:
		arc.Kind = netlist.ArcComb
	}
	if v, ok := g.attrs["energy"]; ok {
		f, _ := strconv.ParseFloat(v, 64)
		arc.Energy = f * energyUnit
	}
	for _, tg := range g.groups {
		switch tg.name {
		case "cell_rise", "cell_fall":
			t, err := buildTable(tg)
			if err != nil {
				return arc, err
			}
			arc.Delay = t
		case "rise_transition", "fall_transition":
			t, err := buildTable(tg)
			if err != nil {
				return arc, err
			}
			arc.Slew = t
		}
	}
	return arc, nil
}

func buildTable(g *group) (netlist.Table, error) {
	var t netlist.Table
	var err error
	if t.Slews, err = parseList(g.attrs["index_1"], timeUnit); err != nil {
		return t, err
	}
	if t.Loads, err = parseList(g.attrs["index_2"], capUnit); err != nil {
		return t, err
	}
	rows := strings.Split(g.attrs["values"], ";")
	for _, row := range rows {
		vals, err := parseList(row, timeUnit)
		if err != nil {
			return t, err
		}
		if len(vals) > 0 {
			t.Values = append(t.Values, vals)
		}
	}
	if len(t.Values) != len(t.Slews) {
		return t, fmt.Errorf("liberty: table has %d rows for %d slews", len(t.Values), len(t.Slews))
	}
	for _, row := range t.Values {
		if len(row) != len(t.Loads) {
			return t, fmt.Errorf("liberty: table row has %d cols for %d loads", len(row), len(t.Loads))
		}
	}
	return t, nil
}

func parseList(s string, unit float64) ([]float64, error) {
	s = strings.Trim(s, "\" ")
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(strings.Trim(p, "\""))
		if p == "" {
			continue
		}
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("liberty: bad number %q", p)
		}
		out = append(out, v*unit)
	}
	return out, nil
}

// ---- tokenizer and recursive-descent group parser ----

type parser struct {
	toks []string
	pos  int
}

func tokenize(s string) []string {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\\': // line continuation
			i++
		case c == '/' && i+1 < len(s) && s[i+1] == '*':
			i += 2
			for i+1 < len(s) && !(s[i] == '*' && s[i+1] == '/') {
				i++
			}
			i += 2
		case strings.ContainsRune("(){};:,", rune(c)):
			toks = append(toks, string(c))
			i++
		case c == '"':
			j := i + 1
			for j < len(s) && s[j] != '"' {
				j++
			}
			toks = append(toks, s[i:j+1])
			i = j + 1
		default:
			j := i
			for j < len(s) && !strings.ContainsRune(" \t\r\n(){};:,\\\"", rune(s[j])) {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		}
	}
	return toks
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

// parseGroup parses name ( args ) { body }.
func (p *parser) parseGroup() (*group, error) {
	g := &group{name: p.next(), attrs: map[string]string{}}
	if p.next() != "(" {
		return nil, fmt.Errorf("liberty: expected ( after %s", g.name)
	}
	for p.peek() != ")" && p.peek() != "" {
		tok := p.next()
		if tok != "," {
			g.args = append(g.args, strings.Trim(tok, "\""))
		}
	}
	p.next() // ")"
	if p.peek() != "{" {
		// Statement-style group without body.
		if p.peek() == ";" {
			p.next()
		}
		return g, nil
	}
	p.next() // "{"
	for {
		switch p.peek() {
		case "}":
			p.next()
			if p.peek() == ";" {
				p.next()
			}
			return g, nil
		case "":
			return nil, fmt.Errorf("liberty: unexpected EOF in group %s", g.name)
		}
		name := p.next()
		switch p.peek() {
		case ":":
			p.next()
			var val strings.Builder
			for p.peek() != ";" && p.peek() != "" {
				if val.Len() > 0 {
					val.WriteString(" ")
				}
				val.WriteString(p.next())
			}
			p.next() // ";"
			g.attrs[name] = strings.TrimSpace(val.String())
		case "(":
			// Sub-group or complex attribute: rewind and parse as group.
			p.pos--
			sub, err := p.parseGroup()
			if err != nil {
				return nil, err
			}
			// Complex attributes (index_1, values, capacitive_load_unit)
			// are stored as joined-args attrs; real groups nest.
			if len(sub.groups) == 0 && len(sub.attrs) == 0 && sub.name != "timing" &&
				sub.name != "pin" && sub.name != "cell" &&
				sub.name != "cell_rise" && sub.name != "cell_fall" &&
				sub.name != "rise_transition" && sub.name != "fall_transition" {
				g.attrs[sub.name] = strings.Join(sub.args, ";")
			} else {
				g.groups = append(g.groups, sub)
			}
		default:
			return nil, fmt.Errorf("liberty: unexpected token %q after %q", p.peek(), name)
		}
	}
}
