package liberty

import (
	"errors"
	"strings"
	"testing"

	"ppaclust/internal/scan"
)

// TestMalformedInputs drives the strict parser through the former panic
// sites (unterminated strings, unbounded nesting) and the former
// silent-default sites (discarded ParseFloat results) and checks the
// structured error carries the right file and line.
func TestMalformedInputs(t *testing.T) {
	deep := "library (l) {\n" + strings.Repeat("g(){", 80) + "\n"
	cases := []struct {
		name    string
		in      string
		line    int
		msgPart string
	}{
		{"not a library", "cell (c) {\n}\n", 1, "want library"},
		{"missing paren", "library l\n", 1, "expected ("},
		{"eof in group", "library (l) {\n  cell (c) {\n", 2, "unexpected EOF"},
		{"deep nesting", deep, 2, "nested deeper"},
		{"bad leakage", "library (l) {\n  cell (c) {\n    cell_leakage_power : soup;\n  }\n}\n", 3, "cell_leakage_power"},
		{"bad area", "library (l) {\n  cell (c) {\n    area : 1e99;\n  }\n}\n", 3, "area"},
		{"bad capacitance", "library (l) {\n  cell (c) {\n    pin (A) {\n      capacitance : x;\n    }\n  }\n}\n", 4, "capacitance"},
		{"nameless cell", "library (l) {\n  cell () {\n    area : 1;\n  }\n}\n", 2, "without a name"},
		{"nameless pin", "library (l) {\n  cell (c) {\n    pin () {\n      direction : input;\n    }\n  }\n}\n", 3, "without a name"},
		{"bad table number", "library (l) {\n  cell (c) {\n    pin (Z) {\n      timing () {\n        cell_rise () {\n          index_1 (\"x\");\n          values (\"0.1\");\n        }\n      }\n    }\n  }\n}\n", 6, "table number"},
		{"table shape", "library (l) {\n  cell (c) {\n    pin (Z) {\n      timing () {\n        cell_rise () {\n          index_1 (\"0.1, 0.2\");\n          index_2 (\"0.001\");\n          values (\"0.5\");\n        }\n      }\n    }\n  }\n}\n", 5, "rows"},
		{"denormal table entry", "library (l) {\n  cell (c) {\n    pin (Z) {\n      timing () {\n        cell_rise () {\n          index_1 (\"1e-300\");\n          values (\"0.1\");\n        }\n      }\n    }\n  }\n}\n", 6, "table number"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("parse accepted %q", tc.in)
			}
			var pe *scan.ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error is %T, not *scan.ParseError: %v", err, err)
			}
			if pe.File != "liberty" {
				t.Fatalf("file = %q", pe.File)
			}
			if pe.Line != tc.line {
				t.Fatalf("line = %d, want %d (%v)", pe.Line, tc.line, pe)
			}
			if !strings.Contains(pe.Error(), tc.msgPart) {
				t.Fatalf("error %q does not mention %q", pe.Error(), tc.msgPart)
			}
		})
	}
	// Unterminated quote must not panic the tokenizer (former out-of-bounds
	// slice); the input happens to parse, which is fine — the invariant is
	// no crash.
	if _, err := Parse(strings.NewReader("library (l) {\n  cell (c) {\n    x : \"unterminated;\n  }\n}\n")); err != nil {
		var pe *scan.ParseError
		if !errors.As(err, &pe) {
			t.Fatalf("unterminated string produced a non-structured error: %v", err)
		}
	}
}

// TestLenientMode checks that bad numeric attributes and malformed arcs
// downgrade to warnings that carry their line numbers.
func TestLenientMode(t *testing.T) {
	in := "library (l) {\n" +
		"  cell (C) {\n" +
		"    area : soup;\n" + // warn: bad area, cell kept
		"    cell_leakage_power : 3.0;\n" +
		"    pin (A) {\n" +
		"      direction : input;\n" +
		"      capacitance : bad;\n" + // warn: cap skipped
		"    }\n" +
		"    pin (Z) {\n" +
		"      direction : output;\n" +
		"      timing () {\n" +
		"        related_pin : \"A\";\n" +
		"        cell_rise () {\n" +
		"          index_1 (\"x\");\n" + // warn: arc dropped
		"          values (\"0.1\");\n" +
		"        }\n" +
		"      }\n" +
		"    }\n" +
		"  }\n" +
		"}\n"
	lib, warns, err := ParseWith(strings.NewReader(in), Options{Lenient: true})
	if err != nil {
		t.Fatalf("lenient parse failed: %v", err)
	}
	if len(warns) != 3 {
		t.Fatalf("warnings = %d, want 3: %v", len(warns), warns)
	}
	m := lib.Master("C")
	if m == nil {
		t.Fatal("cell lost")
	}
	if m.Leakage == 0 {
		t.Fatal("good leakage value lost")
	}
	if m.Pin("A").Cap != 0 {
		t.Fatal("bad capacitance should be skipped")
	}
	if len(m.Pin("Z").Arcs) != 0 {
		t.Fatal("malformed arc should be dropped in lenient mode")
	}
	for _, wantLine := range []int{3, 7, 14} {
		found := false
		for _, w := range warns {
			if w.Line == wantLine {
				found = true
			}
		}
		if !found {
			t.Fatalf("no warning for line %d: %v", wantLine, warns)
		}
	}
}
