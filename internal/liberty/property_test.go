package liberty

import (
	"bytes"
	"testing"

	"ppaclust/internal/designs"
)

// TestWriteParseWriteFixpoint: a parsed-then-rewritten library emits
// byte-identical text (the parse is lossless over the emitted subset).
func TestWriteParseWriteFixpoint(t *testing.T) {
	lib := designs.Lib()
	var first bytes.Buffer
	if err := Write(&first, lib); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := Write(&second, parsed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("liberty write/parse/write is not a fixpoint")
	}
}
