package partition

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ppaclust/internal/hypergraph"
)

// twoBlocks builds two dense blocks joined by a single weak edge.
func twoBlocks(s int) *hypergraph.Hypergraph {
	h := hypergraph.New(2 * s)
	for v := 0; v < 2*s; v++ {
		h.SetVertexWeight(v, 1)
	}
	for b := 0; b < 2; b++ {
		base := b * s
		for i := 0; i < s; i++ {
			for j := i + 1; j < s; j++ {
				h.AddEdge([]int{base + i, base + j}, 1)
			}
		}
	}
	h.AddEdge([]int{s - 1, s}, 0.5)
	return h
}

func TestBipartitionFindsNaturalCut(t *testing.T) {
	h := twoBlocks(10)
	side, cut := Bipartition(h, Options{Seed: 1})
	if cut != 0.5 {
		t.Fatalf("cut=%v want 0.5 (the weak bridge)", cut)
	}
	// Each block fully on one side.
	for i := 1; i < 10; i++ {
		if side[i] != side[0] || side[10+i] != side[10] {
			t.Fatal("block split")
		}
	}
	if side[0] == side[10] {
		t.Fatal("blocks on the same side")
	}
}

func TestBipartitionBalance(t *testing.T) {
	h := twoBlocks(12)
	side, _ := Bipartition(h, Options{Seed: 2, Balance: 0.55})
	var w0 float64
	for v, s := range side {
		if s == 0 {
			w0 += h.VertexWeight(v)
		}
	}
	total := h.TotalVertexWeight()
	if w0 > 0.55*total+1e-9 || total-w0 > 0.55*total+1e-9 {
		t.Fatalf("balance violated: %v of %v", w0, total)
	}
}

func TestKWay(t *testing.T) {
	// Four blocks, K=4: every block should land in its own part.
	h := hypergraph.New(32)
	for v := 0; v < 32; v++ {
		h.SetVertexWeight(v, 1)
	}
	for b := 0; b < 4; b++ {
		base := b * 8
		for i := 0; i < 8; i++ {
			for j := i + 1; j < 8; j++ {
				h.AddEdge([]int{base + i, base + j}, 1)
			}
		}
		if b > 0 {
			h.AddEdge([]int{base - 1, base}, 0.1)
		}
	}
	assign := KWay(h, 4, Options{Seed: 3})
	parts := map[int]bool{}
	for b := 0; b < 4; b++ {
		base := b * 8
		for i := 1; i < 8; i++ {
			if assign[base+i] != assign[base] {
				t.Fatalf("block %d split: %v", b, assign[base:base+8])
			}
		}
		parts[assign[base]] = true
	}
	if len(parts) != 4 {
		t.Fatalf("parts=%d want 4", len(parts))
	}
	if got := h.CutSize(assign); got > 0.31 {
		t.Fatalf("cut=%v want 0.3 (the three bridges)", got)
	}
}

func TestKWayDegenerate(t *testing.T) {
	h := hypergraph.New(3)
	for v := 0; v < 3; v++ {
		h.SetVertexWeight(v, 1)
	}
	a1 := KWay(h, 1, Options{})
	for _, c := range a1 {
		if c != 0 {
			t.Fatal("k=1 should give one part")
		}
	}
	empty := hypergraph.New(0)
	if got := KWay(empty, 4, Options{}); len(got) != 0 {
		t.Fatal("empty hypergraph")
	}
}

func TestPropertyFMBeatsRandomCut(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 16 + rng.Intn(40)
		h := hypergraph.New(n)
		for v := 0; v < n; v++ {
			h.SetVertexWeight(v, 1)
		}
		for e := 0; e < n*3; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				h.AddEdge([]int{u, v}, 1)
			}
		}
		side, cut := Bipartition(h, Options{Seed: seed})
		// Assignment well-formed.
		for _, s := range side {
			if s != 0 && s != 1 {
				return false
			}
		}
		// Compare with a random balanced split.
		randSide := make([]int, n)
		for v := range randSide {
			randSide[v] = v % 2
		}
		return cut <= h.CutSize(randSide)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyKWayBalanced(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 24 + rng.Intn(40)
		h := hypergraph.New(n)
		for v := 0; v < n; v++ {
			h.SetVertexWeight(v, 1)
		}
		for e := 0; e < n*2; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				h.AddEdge([]int{u, v}, 1)
			}
		}
		k := 2 + rng.Intn(3)*2
		assign := KWay(h, k, Options{Seed: seed})
		count := map[int]int{}
		for _, c := range assign {
			count[c]++
		}
		if len(count) > k {
			return false
		}
		// No part exceeds ~(0.55)^log2(k) relaxed bound: use 0.75*n/k*k... keep
		// a loose sanity bound: no part above 70% of the whole.
		for _, c := range count {
			if float64(c) > 0.7*float64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
