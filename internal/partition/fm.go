// Package partition implements Fiduccia-Mattheyses (FM) hypergraph
// bipartitioning (best-gain moves with prefix rollback, multi-start), plus
// recursive bisection into k parts.
// Min-cut partitioning underlies the floorplacement line of work the paper
// cites ([17]) and doubles as another clustering baseline: a k-way
// partition is a balanced, cut-minimizing clustering.
package partition

import (
	"math/rand"

	"ppaclust/internal/hypergraph"
)

// Options configures one FM bipartition.
type Options struct {
	// Balance is the maximum fraction of total vertex weight either side
	// may hold. Default 0.55 (i.e. 45/55 tolerance).
	Balance float64
	// Passes bounds FM improvement passes. Default 8.
	Passes int
	// Seed drives the initial random partition.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Balance <= 0.5 || o.Balance > 1 {
		o.Balance = 0.55
	}
	if o.Passes <= 0 {
		o.Passes = 8
	}
	return o
}

// Bipartition splits the hypergraph into sides 0 and 1, minimizing the
// weighted cut subject to the balance constraint. It runs a small
// multi-start (FM is a local search) and returns the best side assignment
// and its cut weight.
func Bipartition(h *hypergraph.Hypergraph, opt Options) ([]int, float64) {
	opt = opt.withDefaults()
	const starts = 4
	var bestSide []int
	bestCut := -1.0
	for s := 0; s < starts; s++ {
		o := opt
		o.Seed = opt.Seed + int64(1000*s)
		side, cut := bipartitionOnce(h, o)
		if bestCut < 0 || cut < bestCut {
			bestSide, bestCut = side, cut
		}
	}
	return bestSide, bestCut
}

func bipartitionOnce(h *hypergraph.Hypergraph, opt Options) ([]int, float64) {
	n := h.NumVertices()
	side := make([]int, n)
	if n == 0 {
		return side, 0
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	totalW := h.TotalVertexWeight()
	// Balance tolerance must admit at least one cell move from an even
	// split, or FM freezes at its initial random partition.
	var maxVertexW float64
	for v := 0; v < n; v++ {
		if w := h.VertexWeight(v); w > maxVertexW {
			maxVertexW = w
		}
	}
	maxSide := opt.Balance * totalW
	if min := totalW/2 + maxVertexW; maxSide < min {
		maxSide = min
	}

	// Random balanced initial partition (by weight, greedy).
	order := rng.Perm(n)
	var w0 float64
	for _, v := range order {
		if w0+h.VertexWeight(v) <= totalW/2 {
			side[v] = 0
			w0 += h.VertexWeight(v)
		} else {
			side[v] = 1
		}
	}

	sideW := [2]float64{}
	for v := 0; v < n; v++ {
		sideW[side[v]] += h.VertexWeight(v)
	}

	// pinCount[e][s]: pins of edge e on side s.
	pinCount := make([][2]int, h.NumEdges())
	recount := func() {
		for e := range pinCount {
			pinCount[e] = [2]int{}
		}
		for e := 0; e < h.NumEdges(); e++ {
			for _, v := range h.Edge(e) {
				pinCount[e][side[v]]++
			}
		}
	}
	recount()

	gainOf := func(v int) float64 {
		s := side[v]
		var g float64
		for _, e := range h.Incident(v) {
			if len(h.Edge(e)) < 2 {
				continue
			}
			w := h.EdgeWeight(e)
			if pinCount[e][s] == 1 {
				g += w // moving v uncuts e
			}
			if pinCount[e][1-s] == 0 {
				g -= w // moving v cuts e
			}
		}
		return g
	}

	for pass := 0; pass < opt.Passes; pass++ {
		locked := make([]bool, n)
		type move struct {
			v    int
			gain float64
		}
		var seq []move
		var cum, best float64
		bestIdx := -1
		// One FM pass: repeatedly move the best unlocked vertex.
		for step := 0; step < n; step++ {
			bv, bg := -1, 0.0
			for v := 0; v < n; v++ {
				if locked[v] {
					continue
				}
				// Balance check for the prospective move.
				if sideW[1-side[v]]+h.VertexWeight(v) > maxSide {
					continue
				}
				g := gainOf(v)
				if bv < 0 || g > bg {
					bv, bg = v, g
				}
			}
			if bv < 0 {
				break
			}
			// Apply the move tentatively.
			s := side[bv]
			for _, e := range h.Incident(bv) {
				pinCount[e][s]--
				pinCount[e][1-s]++
			}
			sideW[s] -= h.VertexWeight(bv)
			sideW[1-s] += h.VertexWeight(bv)
			side[bv] = 1 - s
			locked[bv] = true
			cum += bg
			seq = append(seq, move{bv, bg})
			if cum > best {
				best = cum
				bestIdx = len(seq) - 1
			}
		}
		// Roll back moves after the best prefix.
		for i := len(seq) - 1; i > bestIdx; i-- {
			v := seq[i].v
			s := side[v]
			for _, e := range h.Incident(v) {
				pinCount[e][s]--
				pinCount[e][1-s]++
			}
			sideW[s] -= h.VertexWeight(v)
			sideW[1-s] += h.VertexWeight(v)
			side[v] = 1 - s
		}
		if bestIdx < 0 {
			break // no improving prefix: converged
		}
	}
	return side, h.CutSize(side)
}

// KWay partitions the hypergraph into k parts by recursive bisection and
// returns a dense part assignment. k rounds up to the next power of two
// internally; empty parts are compacted away.
func KWay(h *hypergraph.Hypergraph, k int, opt Options) []int {
	n := h.NumVertices()
	assign := make([]int, n)
	if k <= 1 || n == 0 {
		return assign
	}
	type job struct {
		vertices []int
		parts    int
		label    int
	}
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	nextLabel := 1
	queue := []job{{all, k, 0}}
	for len(queue) > 0 {
		j := queue[0]
		queue = queue[1:]
		if j.parts <= 1 || len(j.vertices) <= 1 {
			continue
		}
		// Build the sub-hypergraph over j.vertices.
		sub := hypergraph.New(len(j.vertices))
		idx := make(map[int]int, len(j.vertices))
		for i, v := range j.vertices {
			idx[v] = i
			sub.SetVertexWeight(i, h.VertexWeight(v))
		}
		seen := map[int]bool{}
		for _, v := range j.vertices {
			for _, e := range h.Incident(v) {
				if seen[e] {
					continue
				}
				seen[e] = true
				var verts []int
				for _, u := range h.Edge(e) {
					if iu, ok := idx[u]; ok {
						verts = append(verts, iu)
					}
				}
				if len(verts) >= 2 {
					sub.AddEdge(verts, h.EdgeWeight(e))
				}
			}
		}
		side, _ := Bipartition(sub, Options{Balance: opt.Balance, Passes: opt.Passes, Seed: opt.Seed + int64(j.label)})
		var left, right []int
		for i, v := range j.vertices {
			if side[i] == 0 {
				left = append(left, v)
			} else {
				right = append(right, v)
			}
		}
		rightLabel := nextLabel
		nextLabel++
		for _, v := range right {
			assign[v] = rightLabel
		}
		lParts := j.parts / 2
		rParts := j.parts - lParts
		if lParts > 1 {
			queue = append(queue, job{left, lParts, j.label})
		}
		if rParts > 1 {
			queue = append(queue, job{right, rParts, rightLabel})
		}
	}
	return densify(assign)
}

func densify(assign []int) []int {
	dense := map[int]int{}
	out := make([]int, len(assign))
	for i, c := range assign {
		id, ok := dense[c]
		if !ok {
			id = len(dense)
			dense[c] = id
		}
		out[i] = id
	}
	return out
}
