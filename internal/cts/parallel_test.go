package cts

import (
	"math"
	"testing"

	"ppaclust/internal/netlist"
	"ppaclust/internal/sta"
)

// TestSynthesizeWorkersEquivalent checks CTS's bit-identity contract: tree
// topology, buffer count, wirelength, skew bounds, and every per-sink
// insertion delay must match exactly at any worker count. The fixed
// annotateForkDepth keeps the wirelength accumulation order worker-
// independent; everything else is per-node pure computation.
func TestSynthesizeWorkersEquivalent(t *testing.T) {
	d, clk, opt := placedBench(t, 47)
	opt.Workers = 1
	ref := Synthesize(d, clk, opt)
	for _, w := range []int{2, 8} {
		ow := opt
		ow.Workers = w
		got := Synthesize(d, clk, ow)
		if got.Buffers != ref.Buffers || got.Levels != ref.Levels {
			t.Fatalf("W=%d tree shape: buffers %d/%d levels %d/%d",
				w, got.Buffers, ref.Buffers, got.Levels, ref.Levels)
		}
		if math.Float64bits(got.WirelengthUM) != math.Float64bits(ref.WirelengthUM) {
			t.Fatalf("W=%d wirelength %v != %v", w, got.WirelengthUM, ref.WirelengthUM)
		}
		if math.Float64bits(got.MaxInsertion) != math.Float64bits(ref.MaxInsertion) ||
			math.Float64bits(got.MinInsertion) != math.Float64bits(ref.MinInsertion) {
			t.Fatalf("W=%d insertion bounds differ", w)
		}
		if len(got.ArrivalList) != len(ref.ArrivalList) {
			t.Fatalf("W=%d arrival count %d != %d", w, len(got.ArrivalList), len(ref.ArrivalList))
		}
		for i := range ref.ArrivalList {
			a, b := got.ArrivalList[i], ref.ArrivalList[i]
			if a.Inst != b.Inst || a.Pin != b.Pin || math.Float64bits(a.T) != math.Float64bits(b.T) {
				t.Fatalf("W=%d arrival %d differs: %+v vs %+v", w, i, a, b)
			}
		}
	}
}

// TestAnnotateHotLoopAllocFree gates the annotation walk: once a subtree
// task's partial has warmed arrival capacity, re-annotating must not
// allocate (the walk is the CTS O(sinks) hot path).
func TestAnnotateHotLoopAllocFree(t *testing.T) {
	d, clk, opt := placedBench(t, 48)
	res := Synthesize(d, clk, opt)
	if res.Buffers == 0 {
		t.Fatal("no tree")
	}

	// Rebuild the sink arrays and tree directly to get a subtree handle.
	opt = opt.withDefaults()
	var b builder
	c := d.Compact()
	ni := clk.ID
	for k := c.NetStart[ni]; k < c.NetStart[ni+1]; k++ {
		id := c.PinInst[k]
		if id < 0 {
			continue
		}
		mpIdx := c.PinMP[k]
		if mpIdx < 0 {
			continue
		}
		mp := &d.Insts[id].Master.Pins[mpIdx]
		if mp.Dir != netlist.DirInput {
			continue
		}
		b.x = append(b.x, d.Insts[id].X+c.PinDX[k])
		b.y = append(b.y, d.Insts[id].Y+c.PinDY[k])
		b.cap = append(b.cap, mp.Cap)
		b.inst = append(b.inst, id)
		b.mp = append(b.mp, mpIdx)
	}
	n := len(b.x)
	if n == 0 {
		t.Fatal("no sinks")
	}
	byX := make([]int32, n)
	byY := make([]int32, n)
	for i := range byX {
		byX[i] = int32(i)
		byY[i] = int32(i)
	}
	b.sideLo = make([]bool, n)
	tree := b.build(byX, byY, make([]int32, n), opt.MaxFanout, 0)

	p := annPartial{arrivals: make([]sta.ClockArrival, 0, n), minIns: math.Inf(1)}
	b.annotateSub(d, tree, opt, &p, 1e-12) // warm capacity
	avg := testing.AllocsPerRun(20, func() {
		p.arrivals = p.arrivals[:0]
		p.buffers, p.wl = 0, 0
		p.maxIns, p.minIns = 0, math.Inf(1)
		b.annotateSub(d, tree, opt, &p, 1e-12)
	})
	if avg != 0 {
		t.Fatalf("annotate allocates %.1f times per walk, want 0", avg)
	}
}
