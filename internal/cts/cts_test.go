package cts

import (
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/netlist"
	"ppaclust/internal/place"
	"ppaclust/internal/sta"
)

func placedBench(t *testing.T, seed int64) (*netlist.Design, *netlist.Net, Options) {
	t.Helper()
	b := designs.Generate(designs.TinySpec(seed))
	place.Global(b.Design, place.Options{Seed: seed})
	clk := b.Design.Net("clk")
	if clk == nil {
		t.Fatal("no clock net")
	}
	opt := Options{BufMaster: b.Design.Lib.Master("CLKBUF_X2")}
	return b.Design, clk, opt
}

func TestSynthesizeCoversAllSinks(t *testing.T) {
	d, clk, opt := placedBench(t, 41)
	res := Synthesize(d, clk, opt)
	want := 0
	for _, pr := range clk.Pins {
		if !pr.IsPort() {
			want++
		}
	}
	if len(res.Arrivals) != want {
		t.Fatalf("arrivals=%d want %d", len(res.Arrivals), want)
	}
	for pin, at := range res.Arrivals {
		if at <= 0 {
			t.Fatalf("sink %v has non-positive insertion %v", pin, at)
		}
	}
}

func TestTreeStructure(t *testing.T) {
	d, clk, opt := placedBench(t, 42)
	res := Synthesize(d, clk, opt)
	if res.Buffers == 0 || res.Levels < 2 {
		t.Fatalf("buffers=%d levels=%d", res.Buffers, res.Levels)
	}
	if res.WirelengthUM <= 0 {
		t.Fatal("no clock wirelength")
	}
	if res.Skew() < 0 {
		t.Fatal("negative skew")
	}
	// Balanced bisection should keep skew well under the max insertion.
	if res.Skew() > 0.8*res.MaxInsertion {
		t.Fatalf("skew %v vs insertion %v: tree too unbalanced", res.Skew(), res.MaxInsertion)
	}
}

func TestMaxFanoutControlsBuffers(t *testing.T) {
	d, clk, opt := placedBench(t, 43)
	optSmall := opt
	optSmall.MaxFanout = 4
	many := Synthesize(d, clk, optSmall)
	optBig := opt
	optBig.MaxFanout = 64
	few := Synthesize(d, clk, optBig)
	if many.Buffers <= few.Buffers {
		t.Fatalf("fanout 4 gave %d buffers, fanout 64 gave %d", many.Buffers, few.Buffers)
	}
}

func TestArrivalsUsableBySTA(t *testing.T) {
	b := designs.Generate(designs.TinySpec(44))
	d := b.Design
	place.Global(d, place.Options{Seed: 44})
	a := sta.New(d, b.Cons)
	ideal := a.Timing()
	res := Synthesize(d, d.Net("clk"), Options{BufMaster: d.Lib.Master("CLKBUF_X2")})
	a.SetClockArrivals(res.Arrivals)
	prop := a.Timing()
	if prop.Endpoints != ideal.Endpoints {
		t.Fatal("endpoint count changed")
	}
	// Propagated clocks shift slacks but should not be absurd.
	if prop.WNS < ideal.WNS-res.MaxInsertion-1e-12 {
		t.Fatalf("WNS degraded beyond max insertion: %v vs %v", prop.WNS, ideal.WNS)
	}
}

func TestEmptyClockNet(t *testing.T) {
	lib := designs.Lib()
	d := netlist.NewDesign("e", lib)
	n, _ := d.AddNet("clk")
	res := Synthesize(d, n, Options{BufMaster: lib.Master("CLKBUF_X2")})
	if len(res.Arrivals) != 0 || res.Buffers != 0 {
		t.Fatalf("empty net result %+v", res)
	}
}

func TestEstimatePower(t *testing.T) {
	d, clk, opt := placedBench(t, 45)
	res := Synthesize(d, clk, opt)
	res.EstimatePower(opt, 1e-9, 1.1)
	if res.Power <= 0 {
		t.Fatal("clock power should be positive")
	}
	p1 := res.Power
	res.EstimatePower(opt, 0.5e-9, 1.1)
	if res.Power <= p1 {
		t.Fatal("faster clock should burn more power")
	}
	res.EstimatePower(opt, 0, 1.1)
}

func TestDeterministic(t *testing.T) {
	d1, clk1, opt := placedBench(t, 46)
	d2, clk2, _ := placedBench(t, 46)
	r1 := Synthesize(d1, clk1, opt)
	r2 := Synthesize(d2, clk2, Options{BufMaster: d2.Lib.Master("CLKBUF_X2")})
	if r1.Buffers != r2.Buffers || r1.WirelengthUM != r2.WirelengthUM {
		t.Fatal("CTS not deterministic")
	}
}

func TestInsertionGrowsWithDistance(t *testing.T) {
	// Sinks progressively farther from the clock root should see larger
	// insertion delay once they land in different subtrees.
	lib := designs.Lib()
	d := netlist.NewDesign("spread", lib)
	d.Core = netlist.Rect{X0: 0, Y0: 0, X1: 400, Y1: 400}
	clkPort, _ := d.AddPort("clk", netlist.DirInput)
	clkPort.X, clkPort.Y, clkPort.Placed = 0, 0, true
	cn, _ := d.AddNet("clk")
	cn.Clock = true
	d.Connect(cn, netlist.PinRef{Inst: -1, Pin: "clk"})
	dff := lib.Master("DFF_X1")
	var ids []int
	for i := 0; i < 32; i++ {
		ff, _ := d.AddInstance("ff"+itoaCTS(i), dff)
		ff.X = float64(i * 12)
		ff.Y = float64(i * 12)
		ff.Placed = true
		d.Connect(cn, netlist.PinRef{Inst: ff.ID, Pin: "CK"})
		ids = append(ids, ff.ID)
	}
	res := Synthesize(d, cn, Options{BufMaster: lib.Master("CLKBUF_X2"), MaxFanout: 4})
	near := res.Arrivals[sta.PinID{Inst: ids[0], Pin: "CK"}]
	far := res.Arrivals[sta.PinID{Inst: ids[31], Pin: "CK"}]
	if near <= 0 || far <= 0 {
		t.Fatalf("arrivals: near=%v far=%v", near, far)
	}
	// The tree is balanced in levels, so skew is bounded, but wire from the
	// root at (0,0) makes the far corner at least as late as the near one.
	if far < near {
		t.Fatalf("far sink earlier than near sink: %v < %v", far, near)
	}
}

func itoaCTS(v int) string {
	if v < 10 {
		return string(rune('0' + v))
	}
	return string(rune('0'+v/10)) + string(rune('0'+v%10))
}
