package cts

import (
	"testing"

	"ppaclust/internal/designs"
	"ppaclust/internal/place"
)

// BenchmarkSynthesize measures clock-tree synthesis on a placed ariane.
func BenchmarkSynthesize(b *testing.B) {
	spec, _ := designs.Named("ariane")
	bench := designs.Generate(spec)
	place.Global(bench.Design, place.Options{Seed: 1, Legalize: true})
	clk := bench.Design.Net("clk")
	opt := Options{BufMaster: bench.Design.Lib.Master("CLKBUF_X2")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Synthesize(bench.Design, clk, opt)
	}
}
