// Package cts synthesizes a clock tree over the clock sinks of a placed
// design, the reproduction's stand-in for TritonCTS / Innovus CCOpt. It
// builds a balanced binary tree by recursive geometric bisection, sizes the
// levels with a library clock buffer, and reports per-sink insertion delays
// (fed to the STA as propagated clock arrivals), skew, buffer count and
// clock wirelength. The host netlist is not mutated; the tree is virtual,
// which is sufficient for post-route WNS/TNS/power evaluation.
//
// The sink set is collected through the netlist.Compact CSR view and stored
// as flat arrays; the bisection runs over two coordinate orderings presorted
// once with the shared radix sort and split by stable partition at each
// level — O(n log n) total with no per-level sorting or copying, which is
// what makes million-sink clock nets tractable. Fully deterministic: every
// ordering is a strict (coordinate, sink-index) total order.
package cts

import (
	"math"

	"ppaclust/internal/netlist"
	"ppaclust/internal/par"
	"ppaclust/internal/sortx"
	"ppaclust/internal/sta"
)

// Options configures clock tree synthesis.
type Options struct {
	// MaxFanout is the maximum sinks driven by one leaf buffer. Default 16.
	MaxFanout int
	// BufMaster is the clock buffer cell. Required.
	BufMaster *netlist.Master
	// InputSlew is the slew assumed at each buffer input. Default 20ps.
	InputSlew float64
	// SkipArrivalMap leaves Result.Arrivals nil and reports insertion delays
	// only through Result.ArrivalList, skipping the per-sink map insert and
	// pin-name hashing — the mode the scale flow uses with
	// sta.SetClockArrivalList.
	SkipArrivalMap bool
	// Workers caps the worker goroutines used for sink gathering, the
	// bisection recursion, and tree annotation (0 = PPACLUST_WORKERS or
	// GOMAXPROCS). Results are bit-identical at every worker count.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.MaxFanout <= 0 {
		o.MaxFanout = 16
	}
	if o.InputSlew <= 0 {
		o.InputSlew = 20e-12
	}
	return o
}

// Result reports the synthesized clock tree.
type Result struct {
	// Arrivals maps each clock sink pin to its insertion delay. Nil when
	// Options.SkipArrivalMap is set — use ArrivalList instead.
	Arrivals map[sta.PinID]float64
	// ArrivalList holds the same insertion delays as a flat slice (leaf
	// traversal order), ready for sta.SetClockArrivalList.
	ArrivalList []sta.ClockArrival
	// Buffers is the number of (virtual) clock buffers inserted.
	Buffers int
	// WirelengthUM is the total clock-tree wirelength.
	WirelengthUM float64
	// MaxInsertion and MinInsertion bound the sink insertion delays.
	MaxInsertion float64
	MinInsertion float64
	// Levels is the tree depth (buffer levels).
	Levels int
	// Power is the estimated clock-tree dynamic power adder (W) at the
	// analyzer's clock frequency, filled by EstimatePower.
	Power float64
}

// Skew returns max - min insertion delay.
func (r *Result) Skew() float64 { return r.MaxInsertion - r.MinInsertion }

// builder holds the flat sink arrays and the bisection scratch.
type builder struct {
	// Sink SoA, in clock-net pin order.
	x, y, cap []float64
	inst      []int32
	mp        []int32 // master-pin index (for the pin name at emit time)

	sideLo []bool // membership marks for the stable partitions
}

type node struct {
	x, y     float64
	children []*node
	sinks    []int32 // leaf nodes: sink indices
	loadCap  float64
	wireLen  float64 // wire from this node to children/sinks
}

// annotateForkDepth is the tree depth at which annotation forks into
// independent subtree tasks. It is a fixed constant — never derived from
// the worker count — so the floating-point accumulation order of the
// wirelength total (top nodes in DFS order, then subtree partials in DFS
// task order) is identical at every worker count, including one.
const annotateForkDepth = 3

// Synthesize builds the clock tree for the given clock net.
//
// Parallel structure (all bit-identical across worker counts):
//
//   - Sink gathering shards the clock net's pin range across workers into
//     per-worker arenas concatenated in ascending block order, recovering
//     the exact serial pin order.
//   - The bisection recursion forks its two children onto separate
//     goroutines near the top of the tree. Children operate on disjoint
//     slices of the presorted orders and disjoint sink indices of the
//     shared partition marks, and every per-node value is a pure function
//     of that node's sink set, so the tree is identical no matter how the
//     recursion is scheduled.
//   - Annotation splits the tree at a fixed depth (annotateForkDepth) into
//     subtree tasks whose partial results merge in DFS order.
func Synthesize(d *netlist.Design, clockNet *netlist.Net, opt Options) *Result {
	opt = opt.withDefaults()
	workers := par.Workers(opt.Workers)
	c := d.Compact()
	ni := clockNet.ID

	var b builder
	var rootX, rootY float64
	haveRoot := false
	s0, s1 := c.NetStart[ni], c.NetStart[ni+1]
	nPins := int(s1 - s0)

	// Per-worker gather arenas, concatenated in block order below.
	type gatherPart struct {
		x, y, cap    []float64
		inst, mp     []int32
		rootX, rootY float64
		haveRoot     bool
	}
	parts := make([]gatherPart, workers)
	par.Blocks(workers, nPins, func(w, lo, hi int) {
		gp := &parts[w]
		for k := s0 + int32(lo); k < s0+int32(hi); k++ {
			id := c.PinInst[k]
			if id < 0 {
				if id == netlist.CompactNoPort {
					continue
				}
				p := d.Ports[-1-id]
				if p.Dir == netlist.DirInput {
					gp.rootX, gp.rootY = p.X, p.Y
					gp.haveRoot = true
				}
				continue
			}
			mpIdx := c.PinMP[k]
			if mpIdx < 0 {
				continue
			}
			mp := &d.Insts[id].Master.Pins[mpIdx]
			if mp.Dir != netlist.DirInput {
				continue
			}
			gp.x = append(gp.x, d.Insts[id].X+c.PinDX[k])
			gp.y = append(gp.y, d.Insts[id].Y+c.PinDY[k])
			gp.cap = append(gp.cap, mp.Cap)
			gp.inst = append(gp.inst, id)
			gp.mp = append(gp.mp, mpIdx)
		}
	})
	b.x = make([]float64, 0, nPins)
	b.y = make([]float64, 0, nPins)
	b.cap = make([]float64, 0, nPins)
	b.inst = make([]int32, 0, nPins)
	b.mp = make([]int32, 0, nPins)
	for w := range parts {
		gp := &parts[w]
		b.x = append(b.x, gp.x...)
		b.y = append(b.y, gp.y...)
		b.cap = append(b.cap, gp.cap...)
		b.inst = append(b.inst, gp.inst...)
		b.mp = append(b.mp, gp.mp...)
		if gp.haveRoot {
			// Matches the serial walk: the last input port in pin order wins.
			rootX, rootY = gp.rootX, gp.rootY
			haveRoot = true
		}
	}
	res := &Result{}
	if !opt.SkipArrivalMap {
		res.Arrivals = make(map[sta.PinID]float64, len(b.x))
	}
	if len(b.x) == 0 {
		return res
	}
	if !haveRoot {
		rootX, rootY = centroid(&b, nil)
	}

	// Presort both coordinate orders once; the recursion splits them with
	// stable partitions instead of re-sorting every level.
	n := len(b.x)
	byX := make([]int32, n)
	byY := make([]int32, n)
	var sorter sortx.Sorter
	sorter.IndexByFloat64(byX, b.x)
	sorter.IndexByFloat64(byY, b.y)
	b.sideLo = make([]bool, n)
	buf := make([]int32, n)

	// Fork the top of the recursion wide enough to keep every worker busy.
	// The fork depth may depend on the worker count: the built tree is a
	// pure per-node function of the sink set, identical however the
	// recursion is scheduled.
	fork := 0
	for 1<<fork < workers {
		fork++
	}
	tree := b.build(byX, byY, buf, opt.MaxFanout, fork)
	res.Levels = depth(tree)

	// Root wire from the clock source to the tree root.
	rootWire := math.Abs(tree.x-rootX) + math.Abs(tree.y-rootY)
	res.WirelengthUM += rootWire
	b.annotate(d, tree, opt, res, wireDelay(rootWire, bufInCap(opt)), workers)
	return res
}

// centroid averages sink positions; idx == nil means all sinks.
func centroid(b *builder, idx []int32) (float64, float64) {
	var sx, sy float64
	if idx == nil {
		for i := range b.x {
			sx += b.x[i]
			sy += b.y[i]
		}
		n := float64(len(b.x))
		return sx / n, sy / n
	}
	for _, i := range idx {
		sx += b.x[i]
		sy += b.y[i]
	}
	n := float64(len(idx))
	return sx / n, sy / n
}

// build recursively bisects the sink set along its wider spread dimension.
// bx and by hold the same sink set sorted by x and by y (ties by index); at
// each level the chosen axis order is cut at its midpoint and the other
// order is split by a stable partition on membership, so both children
// inherit both orderings without sorting or extra allocation. For the top
// fork levels the two children run concurrently: they touch disjoint halves
// of the order slices and of the partition-mark array (marks are cleared
// before recursing), and every node value is a pure function of its sink
// set, so the result is identical at any fork depth.
func (b *builder) build(bx, by, buf []int32, maxFanout, fork int) *node {
	n := len(bx)
	cx, cy := centroid(b, bx)
	nd := &node{x: cx, y: cy}
	if n <= maxFanout {
		nd.sinks = bx
		return nd
	}
	// Spread per axis from the sorted extremes.
	spreadX := b.x[bx[n-1]] - b.x[bx[0]]
	spreadY := b.y[by[n-1]] - b.y[by[0]]
	actIsX := spreadX >= spreadY
	act, oth := bx, by
	if !actIsX {
		act, oth = by, bx
	}
	mid := n / 2
	for _, v := range act[:mid] {
		b.sideLo[v] = true
	}
	lo, hi := buf[:0], buf[mid:mid]
	for _, v := range oth {
		if b.sideLo[v] {
			lo = append(lo, v)
		} else {
			hi = append(hi, v)
		}
	}
	copy(oth, buf[:n])
	for _, v := range act[:mid] {
		b.sideLo[v] = false
	}
	actLo, actHi := act[:mid], act[mid:]
	othLo, othHi := oth[:mid], oth[mid:]
	bufLo, bufHi := buf[:mid], buf[mid:]
	loBx, loBy, hiBx, hiBy := actLo, othLo, actHi, othHi
	if !actIsX {
		loBx, loBy, hiBx, hiBy = othLo, actLo, othHi, actHi
	}
	var cLo, cHi *node
	if fork > 0 {
		done := make(chan *node, 1)
		go func() {
			done <- b.build(loBx, loBy, bufLo, maxFanout, fork-1)
		}()
		cHi = b.build(hiBx, hiBy, bufHi, maxFanout, fork-1)
		cLo = <-done
	} else {
		cLo = b.build(loBx, loBy, bufLo, maxFanout, 0)
		cHi = b.build(hiBx, hiBy, bufHi, maxFanout, 0)
	}
	nd.children = []*node{cLo, cHi}
	return nd
}

func depth(n *node) int {
	if len(n.children) == 0 {
		return 1
	}
	d := 0
	for _, c := range n.children {
		if cd := depth(c); cd > d {
			d = cd
		}
	}
	return d + 1
}

// bufInCap returns the input load a tree node presents to its parent: the
// buffer input cap (every internal and leaf node hosts a buffer).
func bufInCap(opt Options) float64 {
	for pi := range opt.BufMaster.Pins {
		mp := &opt.BufMaster.Pins[pi]
		if mp.Dir == netlist.DirInput {
			return mp.Cap
		}
	}
	return 1e-15
}

func wireDelay(length, loadCap float64) float64 {
	return sta.WireResPerMicron * length * (sta.WireCapPerMicron*length/2 + loadCap)
}

// annPartial is one annotation task's result, merged in DFS task order.
type annPartial struct {
	buffers  int
	wl       float64
	arrivals []sta.ClockArrival
	maxIns   float64
	minIns   float64
}

// annotate walks the tree computing insertion delays. The walk is split at
// annotateForkDepth into independent subtree tasks (the subtrees partition
// the sinks, and each task's delays depend only on its entry arrival), whose
// partials merge in DFS order — the same order at every worker count.
func (b *builder) annotate(d *netlist.Design, root *node, opt Options, res *Result, at0 float64, workers int) {
	type annTask struct {
		n  *node
		at float64
	}
	var tasks []annTask
	var descend func(n *node, at float64, depth int)
	descend = func(n *node, at float64, depth int) {
		if depth == annotateForkDepth || len(n.children) == 0 {
			tasks = append(tasks, annTask{n, at})
			return
		}
		res.Buffers++
		var load, wl float64
		for _, c := range n.children {
			l := math.Abs(c.x-n.x) + math.Abs(c.y-n.y)
			wl += l
			load += sta.WireCapPerMicron*l + bufInCap(opt)
		}
		n.loadCap = load
		n.wireLen = wl
		res.WirelengthUM += wl
		out := at + bufferDelay(opt, load)
		for _, c := range n.children {
			l := math.Abs(c.x-n.x) + math.Abs(c.y-n.y)
			descend(c, out+wireDelay(l, bufInCap(opt)), depth+1)
		}
	}
	descend(root, at0, 0)

	parts := make([]annPartial, len(tasks))
	par.ForEach(workers, len(tasks), func(i int) {
		p := &parts[i]
		p.minIns = math.Inf(1)
		b.annotateSub(d, tasks[i].n, opt, p, tasks[i].at)
	})
	res.MinInsertion = math.Inf(1)
	for i := range parts {
		p := &parts[i]
		res.Buffers += p.buffers
		res.WirelengthUM += p.wl
		res.ArrivalList = append(res.ArrivalList, p.arrivals...)
		if p.maxIns > res.MaxInsertion {
			res.MaxInsertion = p.maxIns
		}
		if p.minIns < res.MinInsertion {
			res.MinInsertion = p.minIns
		}
	}
	if math.IsInf(res.MinInsertion, 1) {
		res.MinInsertion = 0
	}
	if res.Arrivals != nil {
		for _, a := range res.ArrivalList {
			res.Arrivals[sta.PinID{Inst: a.Inst, Pin: a.Pin}] = a.T
		}
	}
}

// annotateSub is the sequential subtree walk: per-node loads and wires, and
// per-sink insertion delays appended in leaf order.
func (b *builder) annotateSub(d *netlist.Design, n *node, opt Options, p *annPartial, at float64) {
	p.buffers++
	// Load seen by this node's buffer: wires + child buffer inputs or sinks.
	var load, wl float64
	if len(n.children) > 0 {
		for _, c := range n.children {
			l := math.Abs(c.x-n.x) + math.Abs(c.y-n.y)
			wl += l
			load += sta.WireCapPerMicron*l + bufInCap(opt)
		}
	} else {
		for _, si := range n.sinks {
			l := math.Abs(b.x[si]-n.x) + math.Abs(b.y[si]-n.y)
			wl += l
			load += sta.WireCapPerMicron*l + b.cap[si]
		}
	}
	n.loadCap = load
	n.wireLen = wl
	p.wl += wl

	bufDelay := bufferDelay(opt, load)
	out := at + bufDelay
	if len(n.children) > 0 {
		for _, c := range n.children {
			l := math.Abs(c.x-n.x) + math.Abs(c.y-n.y)
			b.annotateSub(d, c, opt, p, out+wireDelay(l, bufInCap(opt)))
		}
		return
	}
	for _, si := range n.sinks {
		l := math.Abs(b.x[si]-n.x) + math.Abs(b.y[si]-n.y)
		ins := out + wireDelay(l, b.cap[si])
		inst := b.inst[si]
		pin := d.Insts[inst].Master.Pins[b.mp[si]].Name
		p.arrivals = append(p.arrivals, sta.ClockArrival{Inst: int(inst), Pin: pin, T: ins})
		if ins > p.maxIns {
			p.maxIns = ins
		}
		if ins < p.minIns {
			p.minIns = ins
		}
	}
}

func bufferDelay(opt Options, load float64) float64 {
	for pi := range opt.BufMaster.Pins {
		mp := &opt.BufMaster.Pins[pi]
		if mp.Dir != netlist.DirOutput {
			continue
		}
		for ai := range mp.Arcs {
			arc := &mp.Arcs[ai]
			if arc.Kind == netlist.ArcComb {
				return arc.Delay.Lookup(opt.InputSlew, load)
			}
		}
	}
	return 25e-12
}

// EstimatePower fills in the clock-tree dynamic power adder: every buffer
// output and tree wire toggles at the clock activity (2 transitions/cycle).
func (r *Result) EstimatePower(opt Options, clockPeriod, vdd float64) {
	if clockPeriod <= 0 {
		return
	}
	opt = opt.withDefaults()
	freq := 1 / clockPeriod
	wireCap := sta.WireCapPerMicron * r.WirelengthUM
	bufCap := float64(r.Buffers) * bufInCap(opt)
	var energy float64
	for pi := range opt.BufMaster.Pins {
		mp := &opt.BufMaster.Pins[pi]
		for ai := range mp.Arcs {
			energy += mp.Arcs[ai].Energy
		}
	}
	// Activity 2 toggles/cycle on every clock node.
	r.Power = (0.5*(wireCap+bufCap)*vdd*vdd)*2*freq + float64(r.Buffers)*energy*2*freq
}
