// Package cts synthesizes a clock tree over the clock sinks of a placed
// design, the reproduction's stand-in for TritonCTS / Innovus CCOpt. It
// builds a balanced binary tree by recursive geometric bisection, sizes the
// levels with a library clock buffer, and reports per-sink insertion delays
// (fed to the STA as propagated clock arrivals), skew, buffer count and
// clock wirelength. The host netlist is not mutated; the tree is virtual,
// which is sufficient for post-route WNS/TNS/power evaluation.
package cts

import (
	"math"
	"sort"

	"ppaclust/internal/netlist"
	"ppaclust/internal/sta"
)

// Options configures clock tree synthesis.
type Options struct {
	// MaxFanout is the maximum sinks driven by one leaf buffer. Default 16.
	MaxFanout int
	// BufMaster is the clock buffer cell. Required.
	BufMaster *netlist.Master
	// InputSlew is the slew assumed at each buffer input. Default 20ps.
	InputSlew float64
}

func (o Options) withDefaults() Options {
	if o.MaxFanout <= 0 {
		o.MaxFanout = 16
	}
	if o.InputSlew <= 0 {
		o.InputSlew = 20e-12
	}
	return o
}

// Result reports the synthesized clock tree.
type Result struct {
	// Arrivals maps each clock sink pin to its insertion delay.
	Arrivals map[sta.PinID]float64
	// Buffers is the number of (virtual) clock buffers inserted.
	Buffers int
	// WirelengthUM is the total clock-tree wirelength.
	WirelengthUM float64
	// MaxInsertion and MinInsertion bound the sink insertion delays.
	MaxInsertion float64
	MinInsertion float64
	// Levels is the tree depth (buffer levels).
	Levels int
	// Power is the estimated clock-tree dynamic power adder (W) at the
	// analyzer's clock frequency, filled by EstimatePower.
	Power float64
}

// Skew returns max - min insertion delay.
func (r *Result) Skew() float64 { return r.MaxInsertion - r.MinInsertion }

type sink struct {
	pin  sta.PinID
	x, y float64
	cap  float64
}

type node struct {
	x, y     float64
	children []*node
	sinks    []sink // leaf nodes only
	loadCap  float64
	wireLen  float64 // wire from this node to children/sinks
}

// Synthesize builds the clock tree for the given clock net.
func Synthesize(d *netlist.Design, clockNet *netlist.Net, opt Options) *Result {
	opt = opt.withDefaults()
	var sinks []sink
	var rootX, rootY float64
	haveRoot := false
	for _, pr := range clockNet.Pins {
		if pr.IsPort() {
			p := d.Port(pr.Pin)
			if p != nil && p.Dir == netlist.DirInput {
				rootX, rootY = p.X, p.Y
				haveRoot = true
			}
			continue
		}
		mp := d.Insts[pr.Inst].Master.Pin(pr.Pin)
		if mp == nil || mp.Dir != netlist.DirInput {
			continue
		}
		x, y := d.PinPos(pr)
		sinks = append(sinks, sink{pin: sta.PinID{Inst: pr.Inst, Pin: pr.Pin}, x: x, y: y, cap: mp.Cap})
	}
	res := &Result{Arrivals: make(map[sta.PinID]float64, len(sinks))}
	if len(sinks) == 0 {
		return res
	}
	if !haveRoot {
		rootX, rootY = centroid(sinks)
	}

	tree := build(sinks, opt.MaxFanout)
	res.Levels = depth(tree)

	// Root wire from the clock source to the tree root.
	rootWire := math.Abs(tree.x-rootX) + math.Abs(tree.y-rootY)
	res.WirelengthUM += rootWire
	annotate(tree, opt, res, wireDelay(rootWire, nodeCap(tree, opt)), 0)
	return res
}

func centroid(sinks []sink) (float64, float64) {
	var sx, sy float64
	for _, s := range sinks {
		sx += s.x
		sy += s.y
	}
	n := float64(len(sinks))
	return sx / n, sy / n
}

// build recursively bisects the sink set along its wider spread dimension.
func build(sinks []sink, maxFanout int) *node {
	cx, cy := centroid(sinks)
	n := &node{x: cx, y: cy}
	if len(sinks) <= maxFanout {
		n.sinks = sinks
		return n
	}
	minX, maxX := sinks[0].x, sinks[0].x
	minY, maxY := sinks[0].y, sinks[0].y
	for _, s := range sinks {
		minX = math.Min(minX, s.x)
		maxX = math.Max(maxX, s.x)
		minY = math.Min(minY, s.y)
		maxY = math.Max(maxY, s.y)
	}
	byX := maxX-minX >= maxY-minY
	sorted := make([]sink, len(sinks))
	copy(sorted, sinks)
	sort.Slice(sorted, func(i, j int) bool {
		if byX {
			if sorted[i].x != sorted[j].x {
				return sorted[i].x < sorted[j].x
			}
		} else {
			if sorted[i].y != sorted[j].y {
				return sorted[i].y < sorted[j].y
			}
		}
		return sorted[i].pin.Inst < sorted[j].pin.Inst
	})
	mid := len(sorted) / 2
	n.children = []*node{build(sorted[:mid], maxFanout), build(sorted[mid:], maxFanout)}
	return n
}

func depth(n *node) int {
	if len(n.children) == 0 {
		return 1
	}
	d := 0
	for _, c := range n.children {
		if cd := depth(c); cd > d {
			d = cd
		}
	}
	return d + 1
}

// nodeCap returns the input load a node presents to its parent: the buffer
// input cap (every internal and leaf node hosts a buffer).
func nodeCap(n *node, opt Options) float64 {
	for pi := range opt.BufMaster.Pins {
		mp := &opt.BufMaster.Pins[pi]
		if mp.Dir == netlist.DirInput {
			return mp.Cap
		}
	}
	return 1e-15
}

func wireDelay(length, loadCap float64) float64 {
	return sta.WireResPerMicron * length * (sta.WireCapPerMicron*length/2 + loadCap)
}

// annotate walks the tree computing insertion delays.
func annotate(n *node, opt Options, res *Result, at float64, level int) {
	res.Buffers++
	// Load seen by this node's buffer: wires + child buffer inputs or sinks.
	var load, wl float64
	if len(n.children) > 0 {
		for _, c := range n.children {
			l := math.Abs(c.x-n.x) + math.Abs(c.y-n.y)
			wl += l
			load += sta.WireCapPerMicron*l + nodeCap(c, opt)
		}
	} else {
		for _, s := range n.sinks {
			l := math.Abs(s.x-n.x) + math.Abs(s.y-n.y)
			wl += l
			load += sta.WireCapPerMicron*l + s.cap
		}
	}
	n.loadCap = load
	n.wireLen = wl
	res.WirelengthUM += wl

	bufDelay := bufferDelay(opt, load)
	out := at + bufDelay
	if len(n.children) > 0 {
		for _, c := range n.children {
			l := math.Abs(c.x-n.x) + math.Abs(c.y-n.y)
			annotate(c, opt, res, out+wireDelay(l, nodeCap(c, opt)), level+1)
		}
		return
	}
	for _, s := range n.sinks {
		l := math.Abs(s.x-n.x) + math.Abs(s.y-n.y)
		ins := out + wireDelay(l, s.cap)
		res.Arrivals[s.pin] = ins
		if ins > res.MaxInsertion {
			res.MaxInsertion = ins
		}
		if res.MinInsertion == 0 || ins < res.MinInsertion {
			res.MinInsertion = ins
		}
	}
}

func bufferDelay(opt Options, load float64) float64 {
	for pi := range opt.BufMaster.Pins {
		mp := &opt.BufMaster.Pins[pi]
		if mp.Dir != netlist.DirOutput {
			continue
		}
		for ai := range mp.Arcs {
			arc := &mp.Arcs[ai]
			if arc.Kind == netlist.ArcComb {
				return arc.Delay.Lookup(opt.InputSlew, load)
			}
		}
	}
	return 25e-12
}

// EstimatePower fills in the clock-tree dynamic power adder: every buffer
// output and tree wire toggles at the clock activity (2 transitions/cycle).
func (r *Result) EstimatePower(opt Options, clockPeriod, vdd float64) {
	if clockPeriod <= 0 {
		return
	}
	opt = opt.withDefaults()
	freq := 1 / clockPeriod
	wireCap := sta.WireCapPerMicron * r.WirelengthUM
	bufCap := float64(r.Buffers) * nodeCapMaster(opt)
	var energy float64
	for pi := range opt.BufMaster.Pins {
		mp := &opt.BufMaster.Pins[pi]
		for ai := range mp.Arcs {
			energy += mp.Arcs[ai].Energy
		}
	}
	// Activity 2 toggles/cycle on every clock node.
	r.Power = (0.5*(wireCap+bufCap)*vdd*vdd)*2*freq + float64(r.Buffers)*energy*2*freq
}

func nodeCapMaster(opt Options) float64 {
	for pi := range opt.BufMaster.Pins {
		mp := &opt.BufMaster.Pins[pi]
		if mp.Dir == netlist.DirInput {
			return mp.Cap
		}
	}
	return 1e-15
}
