// Package cts synthesizes a clock tree over the clock sinks of a placed
// design, the reproduction's stand-in for TritonCTS / Innovus CCOpt. It
// builds a balanced binary tree by recursive geometric bisection, sizes the
// levels with a library clock buffer, and reports per-sink insertion delays
// (fed to the STA as propagated clock arrivals), skew, buffer count and
// clock wirelength. The host netlist is not mutated; the tree is virtual,
// which is sufficient for post-route WNS/TNS/power evaluation.
//
// The sink set is collected through the netlist.Compact CSR view and stored
// as flat arrays; the bisection runs over two coordinate orderings presorted
// once with the shared radix sort and split by stable partition at each
// level — O(n log n) total with no per-level sorting or copying, which is
// what makes million-sink clock nets tractable. Fully deterministic: every
// ordering is a strict (coordinate, sink-index) total order.
package cts

import (
	"math"

	"ppaclust/internal/netlist"
	"ppaclust/internal/sortx"
	"ppaclust/internal/sta"
)

// Options configures clock tree synthesis.
type Options struct {
	// MaxFanout is the maximum sinks driven by one leaf buffer. Default 16.
	MaxFanout int
	// BufMaster is the clock buffer cell. Required.
	BufMaster *netlist.Master
	// InputSlew is the slew assumed at each buffer input. Default 20ps.
	InputSlew float64
	// SkipArrivalMap leaves Result.Arrivals nil and reports insertion delays
	// only through Result.ArrivalList, skipping the per-sink map insert and
	// pin-name hashing — the mode the scale flow uses with
	// sta.SetClockArrivalList.
	SkipArrivalMap bool
}

func (o Options) withDefaults() Options {
	if o.MaxFanout <= 0 {
		o.MaxFanout = 16
	}
	if o.InputSlew <= 0 {
		o.InputSlew = 20e-12
	}
	return o
}

// Result reports the synthesized clock tree.
type Result struct {
	// Arrivals maps each clock sink pin to its insertion delay. Nil when
	// Options.SkipArrivalMap is set — use ArrivalList instead.
	Arrivals map[sta.PinID]float64
	// ArrivalList holds the same insertion delays as a flat slice (leaf
	// traversal order), ready for sta.SetClockArrivalList.
	ArrivalList []sta.ClockArrival
	// Buffers is the number of (virtual) clock buffers inserted.
	Buffers int
	// WirelengthUM is the total clock-tree wirelength.
	WirelengthUM float64
	// MaxInsertion and MinInsertion bound the sink insertion delays.
	MaxInsertion float64
	MinInsertion float64
	// Levels is the tree depth (buffer levels).
	Levels int
	// Power is the estimated clock-tree dynamic power adder (W) at the
	// analyzer's clock frequency, filled by EstimatePower.
	Power float64
}

// Skew returns max - min insertion delay.
func (r *Result) Skew() float64 { return r.MaxInsertion - r.MinInsertion }

// builder holds the flat sink arrays and the bisection scratch.
type builder struct {
	// Sink SoA, in clock-net pin order.
	x, y, cap []float64
	inst      []int32
	mp        []int32 // master-pin index (for the pin name at emit time)

	sideLo []bool // membership marks for the stable partitions
}

type node struct {
	x, y     float64
	children []*node
	sinks    []int32 // leaf nodes: sink indices
	loadCap  float64
	wireLen  float64 // wire from this node to children/sinks
}

// Synthesize builds the clock tree for the given clock net.
func Synthesize(d *netlist.Design, clockNet *netlist.Net, opt Options) *Result {
	opt = opt.withDefaults()
	c := d.Compact()
	ni := clockNet.ID

	var b builder
	var rootX, rootY float64
	haveRoot := false
	nPins := c.NumNetPins(ni)
	b.x = make([]float64, 0, nPins)
	b.y = make([]float64, 0, nPins)
	b.cap = make([]float64, 0, nPins)
	b.inst = make([]int32, 0, nPins)
	b.mp = make([]int32, 0, nPins)
	for k := c.NetStart[ni]; k < c.NetStart[ni+1]; k++ {
		id := c.PinInst[k]
		if id < 0 {
			if id == netlist.CompactNoPort {
				continue
			}
			p := d.Ports[-1-id]
			if p.Dir == netlist.DirInput {
				rootX, rootY = p.X, p.Y
				haveRoot = true
			}
			continue
		}
		mpIdx := c.PinMP[k]
		if mpIdx < 0 {
			continue
		}
		mp := &d.Insts[id].Master.Pins[mpIdx]
		if mp.Dir != netlist.DirInput {
			continue
		}
		b.x = append(b.x, d.Insts[id].X+c.PinDX[k])
		b.y = append(b.y, d.Insts[id].Y+c.PinDY[k])
		b.cap = append(b.cap, mp.Cap)
		b.inst = append(b.inst, id)
		b.mp = append(b.mp, mpIdx)
	}
	res := &Result{}
	if !opt.SkipArrivalMap {
		res.Arrivals = make(map[sta.PinID]float64, len(b.x))
	}
	if len(b.x) == 0 {
		return res
	}
	if !haveRoot {
		rootX, rootY = centroid(&b, nil)
	}

	// Presort both coordinate orders once; the recursion splits them with
	// stable partitions instead of re-sorting every level.
	n := len(b.x)
	byX := make([]int32, n)
	byY := make([]int32, n)
	var sorter sortx.Sorter
	sorter.IndexByFloat64(byX, b.x)
	sorter.IndexByFloat64(byY, b.y)
	b.sideLo = make([]bool, n)
	buf := make([]int32, n)

	tree := b.build(byX, byY, buf, opt.MaxFanout)
	res.Levels = depth(tree)

	// Root wire from the clock source to the tree root.
	rootWire := math.Abs(tree.x-rootX) + math.Abs(tree.y-rootY)
	res.WirelengthUM += rootWire
	annotate(&b, d, tree, opt, res, wireDelay(rootWire, bufInCap(opt)), 0)
	return res
}

// centroid averages sink positions; idx == nil means all sinks.
func centroid(b *builder, idx []int32) (float64, float64) {
	var sx, sy float64
	if idx == nil {
		for i := range b.x {
			sx += b.x[i]
			sy += b.y[i]
		}
		n := float64(len(b.x))
		return sx / n, sy / n
	}
	for _, i := range idx {
		sx += b.x[i]
		sy += b.y[i]
	}
	n := float64(len(idx))
	return sx / n, sy / n
}

// build recursively bisects the sink set along its wider spread dimension.
// bx and by hold the same sink set sorted by x and by y (ties by index); at
// each level the chosen axis order is cut at its midpoint and the other
// order is split by a stable partition on membership, so both children
// inherit both orderings without sorting or extra allocation.
func (b *builder) build(bx, by, buf []int32, maxFanout int) *node {
	n := len(bx)
	cx, cy := centroid(b, bx)
	nd := &node{x: cx, y: cy}
	if n <= maxFanout {
		nd.sinks = bx
		return nd
	}
	// Spread per axis from the sorted extremes.
	spreadX := b.x[bx[n-1]] - b.x[bx[0]]
	spreadY := b.y[by[n-1]] - b.y[by[0]]
	actIsX := spreadX >= spreadY
	act, oth := bx, by
	if !actIsX {
		act, oth = by, bx
	}
	mid := n / 2
	for _, v := range act[:mid] {
		b.sideLo[v] = true
	}
	lo, hi := buf[:0], buf[mid:mid]
	for _, v := range oth {
		if b.sideLo[v] {
			lo = append(lo, v)
		} else {
			hi = append(hi, v)
		}
	}
	copy(oth, buf[:n])
	for _, v := range act[:mid] {
		b.sideLo[v] = false
	}
	actLo, actHi := act[:mid], act[mid:]
	othLo, othHi := oth[:mid], oth[mid:]
	bufLo, bufHi := buf[:mid], buf[mid:]
	var cLo, cHi *node
	if actIsX {
		cLo = b.build(actLo, othLo, bufLo, maxFanout)
		cHi = b.build(actHi, othHi, bufHi, maxFanout)
	} else {
		cLo = b.build(othLo, actLo, bufLo, maxFanout)
		cHi = b.build(othHi, actHi, bufHi, maxFanout)
	}
	nd.children = []*node{cLo, cHi}
	return nd
}

func depth(n *node) int {
	if len(n.children) == 0 {
		return 1
	}
	d := 0
	for _, c := range n.children {
		if cd := depth(c); cd > d {
			d = cd
		}
	}
	return d + 1
}

// bufInCap returns the input load a tree node presents to its parent: the
// buffer input cap (every internal and leaf node hosts a buffer).
func bufInCap(opt Options) float64 {
	for pi := range opt.BufMaster.Pins {
		mp := &opt.BufMaster.Pins[pi]
		if mp.Dir == netlist.DirInput {
			return mp.Cap
		}
	}
	return 1e-15
}

func wireDelay(length, loadCap float64) float64 {
	return sta.WireResPerMicron * length * (sta.WireCapPerMicron*length/2 + loadCap)
}

// annotate walks the tree computing insertion delays.
func annotate(b *builder, d *netlist.Design, n *node, opt Options, res *Result, at float64, level int) {
	res.Buffers++
	// Load seen by this node's buffer: wires + child buffer inputs or sinks.
	var load, wl float64
	if len(n.children) > 0 {
		for _, c := range n.children {
			l := math.Abs(c.x-n.x) + math.Abs(c.y-n.y)
			wl += l
			load += sta.WireCapPerMicron*l + bufInCap(opt)
		}
	} else {
		for _, si := range n.sinks {
			l := math.Abs(b.x[si]-n.x) + math.Abs(b.y[si]-n.y)
			wl += l
			load += sta.WireCapPerMicron*l + b.cap[si]
		}
	}
	n.loadCap = load
	n.wireLen = wl
	res.WirelengthUM += wl

	bufDelay := bufferDelay(opt, load)
	out := at + bufDelay
	if len(n.children) > 0 {
		for _, c := range n.children {
			l := math.Abs(c.x-n.x) + math.Abs(c.y-n.y)
			annotate(b, d, c, opt, res, out+wireDelay(l, bufInCap(opt)), level+1)
		}
		return
	}
	for _, si := range n.sinks {
		l := math.Abs(b.x[si]-n.x) + math.Abs(b.y[si]-n.y)
		ins := out + wireDelay(l, b.cap[si])
		inst := b.inst[si]
		pin := d.Insts[inst].Master.Pins[b.mp[si]].Name
		res.ArrivalList = append(res.ArrivalList, sta.ClockArrival{Inst: int(inst), Pin: pin, T: ins})
		if res.Arrivals != nil {
			res.Arrivals[sta.PinID{Inst: int(inst), Pin: pin}] = ins
		}
		if ins > res.MaxInsertion {
			res.MaxInsertion = ins
		}
		if res.MinInsertion == 0 || ins < res.MinInsertion {
			res.MinInsertion = ins
		}
	}
}

func bufferDelay(opt Options, load float64) float64 {
	for pi := range opt.BufMaster.Pins {
		mp := &opt.BufMaster.Pins[pi]
		if mp.Dir != netlist.DirOutput {
			continue
		}
		for ai := range mp.Arcs {
			arc := &mp.Arcs[ai]
			if arc.Kind == netlist.ArcComb {
				return arc.Delay.Lookup(opt.InputSlew, load)
			}
		}
	}
	return 25e-12
}

// EstimatePower fills in the clock-tree dynamic power adder: every buffer
// output and tree wire toggles at the clock activity (2 transitions/cycle).
func (r *Result) EstimatePower(opt Options, clockPeriod, vdd float64) {
	if clockPeriod <= 0 {
		return
	}
	opt = opt.withDefaults()
	freq := 1 / clockPeriod
	wireCap := sta.WireCapPerMicron * r.WirelengthUM
	bufCap := float64(r.Buffers) * bufInCap(opt)
	var energy float64
	for pi := range opt.BufMaster.Pins {
		mp := &opt.BufMaster.Pins[pi]
		for ai := range mp.Arcs {
			energy += mp.Arcs[ai].Energy
		}
	}
	// Activity 2 toggles/cycle on every clock node.
	r.Power = (0.5*(wireCap+bufCap)*vdd*vdd)*2*freq + float64(r.Buffers)*energy*2*freq
}
