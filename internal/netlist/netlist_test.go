package netlist

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// testLib builds a minimal two-cell library used across the package tests.
func testLib() *Library {
	lib := NewLibrary("test")
	inv := &Master{Name: "INV", Class: ClassCore, Width: 1, Height: 2, Leakage: 1e-9}
	inv.AddPin(MasterPin{Name: "A", Dir: DirInput, Cap: 1e-15})
	out := inv.AddPin(MasterPin{Name: "Y", Dir: DirOutput, MaxCap: 50e-15})
	out.Arcs = []TimingArc{{From: "A", Kind: ArcComb, Delay: Const(10e-12), Slew: Const(5e-12), Energy: 1e-15}}
	if err := lib.AddMaster(inv); err != nil {
		panic(err)
	}
	dff := &Master{Name: "DFF", Class: ClassCore, Width: 3, Height: 2, Leakage: 3e-9}
	dff.AddPin(MasterPin{Name: "D", Dir: DirInput, Cap: 1.2e-15,
		Arcs: []TimingArc{{From: "CK", Kind: ArcSetup, Delay: Const(20e-12)}}})
	dff.AddPin(MasterPin{Name: "CK", Dir: DirInput, Cap: 0.8e-15, Clock: true})
	q := dff.AddPin(MasterPin{Name: "Q", Dir: DirOutput, MaxCap: 60e-15})
	q.Arcs = []TimingArc{{From: "CK", Kind: ArcClkToQ, Delay: Const(40e-12), Slew: Const(8e-12), Energy: 2e-15}}
	if err := lib.AddMaster(dff); err != nil {
		panic(err)
	}
	return lib
}

// chainDesign builds port(in) -> INV x n -> DFF -> port(out) with a clock.
func chainDesign(t *testing.T, n int) *Design {
	t.Helper()
	lib := testLib()
	d := NewDesign("chain", lib)
	d.Die = Rect{0, 0, 100, 100}
	d.Core = Rect{5, 5, 95, 95}
	in, err := d.AddPort("in", DirInput)
	if err != nil {
		t.Fatal(err)
	}
	in.X, in.Y, in.Placed = 0, 50, true
	outp, _ := d.AddPort("out", DirOutput)
	outp.X, outp.Y, outp.Placed = 100, 50, true
	clk, _ := d.AddPort("clk", DirInput)
	clk.X, clk.Y, clk.Placed = 50, 0, true

	prev := PinRef{Inst: -1, Pin: "in"}
	for i := 0; i < n; i++ {
		inst, err := d.AddInstance(fmt.Sprintf("u_core/inv%d", i), lib.Master("INV"))
		if err != nil {
			t.Fatal(err)
		}
		inst.X, inst.Y, inst.Placed = float64(10+i*5), 50, true
		net, err := d.AddNet(fmt.Sprintf("n%d", i))
		if err != nil {
			t.Fatal(err)
		}
		d.Connect(net, prev)
		d.Connect(net, PinRef{Inst: inst.ID, Pin: "A"})
		prev = PinRef{Inst: inst.ID, Pin: "Y"}
	}
	ff, _ := d.AddInstance("u_core/ff", lib.Master("DFF"))
	ff.X, ff.Y, ff.Placed = 80, 50, true
	dNet, _ := d.AddNet("dnet")
	d.Connect(dNet, prev)
	d.Connect(dNet, PinRef{Inst: ff.ID, Pin: "D"})
	clkNet, _ := d.AddNet("clknet")
	clkNet.Clock = true
	d.Connect(clkNet, PinRef{Inst: -1, Pin: "clk"})
	d.Connect(clkNet, PinRef{Inst: ff.ID, Pin: "CK"})
	qNet, _ := d.AddNet("qnet")
	d.Connect(qNet, PinRef{Inst: ff.ID, Pin: "Q"})
	d.Connect(qNet, PinRef{Inst: -1, Pin: "out"})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTableLookup(t *testing.T) {
	tab := Table{
		Slews:  []float64{1, 2},
		Loads:  []float64{10, 20},
		Values: [][]float64{{100, 200}, {300, 400}},
	}
	cases := []struct {
		slew, load, want float64
	}{
		{1, 10, 100},
		{2, 20, 400},
		{1.5, 15, 250},
		{0, 0, 100},    // clamp low
		{99, 99, 400},  // clamp high
		{1, 15, 150},   // edge interp
		{1.5, 10, 200}, // edge interp
	}
	for _, c := range cases {
		if got := tab.Lookup(c.slew, c.load); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Lookup(%v,%v)=%v want %v", c.slew, c.load, got, c.want)
		}
	}
	cst := Const(7)
	if cst.Lookup(123, 456) != 7 {
		t.Error("const table should ignore indices")
	}
}

func TestMasterBasics(t *testing.T) {
	lib := testLib()
	inv := lib.Master("INV")
	if inv == nil || inv.Pin("A") == nil || inv.Pin("Y") == nil {
		t.Fatal("INV pins missing")
	}
	if inv.Pin("Z") != nil {
		t.Fatal("unexpected pin Z")
	}
	if inv.IsSequential() {
		t.Fatal("INV should not be sequential")
	}
	if !lib.Master("DFF").IsSequential() {
		t.Fatal("DFF should be sequential")
	}
	if inv.Area() != 2 {
		t.Fatalf("area=%v", inv.Area())
	}
	if err := lib.AddMaster(&Master{Name: "INV"}); err == nil {
		t.Fatal("expected duplicate master error")
	}
}

func TestDesignConstruction(t *testing.T) {
	d := chainDesign(t, 3)
	if d.Instance("u_core/inv1") == nil {
		t.Fatal("instance lookup failed")
	}
	if d.Net("dnet") == nil || d.Port("clk") == nil {
		t.Fatal("net/port lookup failed")
	}
	if _, err := d.AddInstance("u_core/inv1", d.Lib.Master("INV")); err == nil {
		t.Fatal("expected duplicate instance error")
	}
	if _, err := d.AddNet("dnet"); err == nil {
		t.Fatal("expected duplicate net error")
	}
	if _, err := d.AddPort("clk", DirInput); err == nil {
		t.Fatal("expected duplicate port error")
	}
	if got := d.Insts[0].HierPath(); len(got) != 1 || got[0] != "u_core" {
		t.Fatalf("hier path=%v", got)
	}
}

func TestDriver(t *testing.T) {
	d := chainDesign(t, 2)
	// n1 is driven by inv0/Y.
	n1 := d.Net("n1")
	drv, ok := d.Driver(n1)
	if !ok || drv.IsPort() || d.Insts[drv.Inst].Name != "u_core/inv0" || drv.Pin != "Y" {
		t.Fatalf("driver=%+v ok=%v", drv, ok)
	}
	// n0 is driven by the input port.
	n0 := d.Net("n0")
	drv, ok = d.Driver(n0)
	if !ok || !drv.IsPort() || drv.Pin != "in" {
		t.Fatalf("driver=%+v ok=%v", drv, ok)
	}
	undriven, _ := d.AddNet("floating")
	if _, ok := d.Driver(undriven); ok {
		t.Fatal("floating net should have no driver")
	}
}

func TestNetsOf(t *testing.T) {
	d := chainDesign(t, 2)
	inv0 := d.Instance("u_core/inv0")
	nets := d.NetsOf(inv0.ID)
	if len(nets) != 2 {
		t.Fatalf("inv0 nets=%v", nets)
	}
	ff := d.Instance("u_core/ff")
	if len(d.NetsOf(ff.ID)) != 3 {
		t.Fatalf("ff nets=%v", d.NetsOf(ff.ID))
	}
}

func TestHPWL(t *testing.T) {
	d := chainDesign(t, 1)
	// n0: port(0,50) to inv0 center (10.5, 51) -> 10.5 + 1.
	n0 := d.Net("n0")
	want := 10.5 + 1.0
	if got := d.NetHPWL(n0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("hpwl(n0)=%v want %v", got, want)
	}
	if d.HPWL() <= 0 {
		t.Fatal("total HPWL should be positive")
	}
	single, _ := d.AddNet("single")
	d.Connect(single, PinRef{Inst: 0, Pin: "Y"})
	if d.NetHPWL(single) != 0 {
		t.Fatal("single-pin net HPWL should be 0")
	}
}

func TestPinOffsets(t *testing.T) {
	lib := testLib()
	m := &Master{Name: "OFF", Width: 4, Height: 4}
	m.AddPin(MasterPin{Name: "P", Dir: DirInput, OffsetX: 1, OffsetY: 3})
	if err := lib.AddMaster(m); err != nil {
		t.Fatal(err)
	}
	d := NewDesign("t", lib)
	inst, _ := d.AddInstance("u1", m)
	inst.X, inst.Y = 10, 20
	x, y := d.PinPos(PinRef{Inst: inst.ID, Pin: "P"})
	if x != 11 || y != 23 {
		t.Fatalf("pin pos=(%v,%v)", x, y)
	}
}

func TestToHypergraph(t *testing.T) {
	d := chainDesign(t, 3)
	view := d.ToHypergraph()
	h := view.H
	if h.NumVertices() != 4 { // 3 inv + 1 dff
		t.Fatalf("V=%d", h.NumVertices())
	}
	// Nets n0 (port+inv0) and qnet (ff+port) have <2 instance pins -> dropped.
	// clknet also has only one instance pin -> dropped.
	// Kept: n1, n2, dnet.
	if h.NumEdges() != 3 {
		t.Fatalf("E=%d", h.NumEdges())
	}
	for e := 0; e < h.NumEdges(); e++ {
		netID := view.NetOfEdge[e]
		if view.EdgeOfNet[netID] != e {
			t.Fatalf("edge/net maps inconsistent at e=%d", e)
		}
	}
	if view.EdgeOfNet[d.Net("n0").ID] != -1 {
		t.Fatal("n0 should not map to an edge")
	}
	// Vertex weight equals instance area.
	if h.VertexWeight(0) != 2 {
		t.Fatalf("w0=%v", h.VertexWeight(0))
	}
}

func TestValidateCatchesBadRefs(t *testing.T) {
	lib := testLib()
	d := NewDesign("bad", lib)
	inst, _ := d.AddInstance("u1", lib.Master("INV"))
	n, _ := d.AddNet("n")
	d.Connect(n, PinRef{Inst: inst.ID, Pin: "NOPE"})
	if err := d.Validate(); err == nil {
		t.Fatal("expected invalid pin error")
	}
	d2 := NewDesign("bad2", lib)
	n2, _ := d2.AddNet("n")
	d2.Connect(n2, PinRef{Inst: -1, Pin: "ghost"})
	if err := d2.Validate(); err == nil {
		t.Fatal("expected unknown port error")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := chainDesign(t, 2)
	c := d.Clone()
	c.Insts[0].X = 999
	c.Nets[0].Weight = 42
	if d.Insts[0].X == 999 || d.Nets[0].Weight == 42 {
		t.Fatal("clone shares state with original")
	}
	if c.Instance("u_core/inv1") == nil || c.Net("dnet") == nil {
		t.Fatal("clone lost name indexes")
	}
	if math.Abs(c.HPWL()-d.HPWL()) > 1e-9 {
		// inv0 moved, HPWL must differ
		return
	}
	t.Fatal("expected HPWL to change after moving a clone instance")
}

func TestStats(t *testing.T) {
	d := chainDesign(t, 3)
	s := d.Stats()
	if s.Insts != 4 || s.Nets != 6 || s.Ports != 3 || s.Seq != 1 || s.Macros != 0 {
		t.Fatalf("stats=%+v", s)
	}
	if s.Area != 3*2+6 {
		t.Fatalf("area=%v", s.Area)
	}
}

func TestUtilization(t *testing.T) {
	d := chainDesign(t, 3)
	want := d.TotalCellArea() / d.Core.Area()
	if got := d.Utilization(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("util=%v want %v", got, want)
	}
	var empty Design
	if empty.Utilization() != 0 {
		t.Fatal("empty design utilization should be 0")
	}
}

func TestPropertyTableLookupWithinBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ns, nl := 2+rng.Intn(4), 2+rng.Intn(4)
		tab := Table{Slews: make([]float64, ns), Loads: make([]float64, nl)}
		for i := range tab.Slews {
			tab.Slews[i] = float64(i) + rng.Float64()*0.5
		}
		for j := range tab.Loads {
			tab.Loads[j] = float64(j) + rng.Float64()*0.5
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		tab.Values = make([][]float64, ns)
		for i := range tab.Values {
			tab.Values[i] = make([]float64, nl)
			for j := range tab.Values[i] {
				v := rng.Float64() * 100
				tab.Values[i][j] = v
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
		}
		// Bilinear interpolation of a clamped table never leaves [min,max].
		for k := 0; k < 30; k++ {
			s := rng.Float64()*10 - 2
			l := rng.Float64()*10 - 2
			v := tab.Lookup(s, l)
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyHPWLTranslationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lib := testLib()
		d := NewDesign("p", lib)
		n := 3 + rng.Intn(10)
		for i := 0; i < n; i++ {
			inst, err := d.AddInstance(fmt.Sprintf("u%d", i), lib.Master("INV"))
			if err != nil {
				return false
			}
			inst.X, inst.Y = rng.Float64()*100, rng.Float64()*100
		}
		for e := 0; e < n; e++ {
			net, err := d.AddNet(fmt.Sprintf("n%d", e))
			if err != nil {
				return false
			}
			k := 2 + rng.Intn(3)
			for j := 0; j < k; j++ {
				d.Connect(net, PinRef{Inst: rng.Intn(n), Pin: "A"})
			}
		}
		before := d.HPWL()
		dx, dy := rng.Float64()*50, rng.Float64()*50
		for _, inst := range d.Insts {
			inst.X += dx
			inst.Y += dy
		}
		return math.Abs(d.HPWL()-before) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
