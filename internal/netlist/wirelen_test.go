package netlist

import (
	"math"
	"math/rand"
	"testing"
)

// wirelenTestDesign builds a design with nCells INV cells at random spots,
// random multi-pin nets (some including ports), for cache equivalence tests.
func wirelenTestDesign(t testing.TB, nCells, nNets int, seed int64) *Design {
	t.Helper()
	lib := testLib()
	d := NewDesign("wl", lib)
	d.Core = Rect{X0: 0, Y0: 0, X1: 1000, Y1: 1000}
	rng := rand.New(rand.NewSource(seed))
	inv := lib.Master("INV")
	for i := 0; i < nCells; i++ {
		inst, err := d.AddInstance(name("c", i), inv)
		if err != nil {
			t.Fatal(err)
		}
		inst.X = rng.Float64() * 1000
		inst.Y = rng.Float64() * 1000
	}
	for i := 0; i < 8; i++ {
		p, err := d.AddPort(name("p", i), DirOutput)
		if err != nil {
			t.Fatal(err)
		}
		p.X = rng.Float64() * 1000
		p.Y = rng.Float64() * 1000
	}
	for i := 0; i < nNets; i++ {
		n, err := d.AddNet(name("n", i))
		if err != nil {
			t.Fatal(err)
		}
		fan := 1 + rng.Intn(5)
		drv := rng.Intn(nCells)
		d.Connect(n, PinRef{Inst: drv, Pin: "Y"})
		for k := 0; k < fan; k++ {
			if rng.Intn(8) == 0 {
				d.Connect(n, PinRef{Inst: -1, Pin: name("p", rng.Intn(8))})
			} else {
				d.Connect(n, PinRef{Inst: rng.Intn(nCells), Pin: "A"})
			}
		}
	}
	return d
}

func name(prefix string, i int) string {
	return prefix + string(rune('a'+i/676%26)) + string(rune('a'+i/26%26)) + string(rune('a'+i%26))
}

// TestWirelenCacheMatchesHPWL drives a random move sequence through the
// cache and checks every cached per-net value and the total against the
// from-scratch recompute, bit for bit.
func TestWirelenCacheMatchesHPWL(t *testing.T) {
	d := wirelenTestDesign(t, 120, 200, 1)
	c := NewWirelenCache(d)
	rng := rand.New(rand.NewSource(2))
	for step := 0; step < 2000; step++ {
		id := rng.Intn(len(d.Insts))
		var x, y float64
		switch rng.Intn(4) {
		case 0: // small jitter (usually expansion or interior)
			x = d.Insts[id].X + rng.NormFloat64()
			y = d.Insts[id].Y + rng.NormFloat64()
		case 1: // jump (often bbox-edge handoff -> exact recompute)
			x = rng.Float64() * 1000
			y = rng.Float64() * 1000
		case 2: // axis-only move
			x = rng.Float64() * 1000
			y = d.Insts[id].Y
		default: // revisit an old spot exactly (swap/revert pattern)
			x = math.Trunc(rng.Float64() * 10)
			y = math.Trunc(rng.Float64() * 10)
		}
		c.MoveCell(id, x, y)
		if step%97 != 0 && step != 1999 {
			continue
		}
		for i, n := range d.Nets {
			want := d.NetHPWL(n)
			if math.Float64bits(c.NetHPWL(i)) != math.Float64bits(want) {
				t.Fatalf("step %d: net %d cached %v want %v", step, i, c.NetHPWL(i), want)
			}
		}
		if math.Float64bits(c.Total()) != math.Float64bits(d.HPWL()) {
			t.Fatalf("step %d: total %v want %v", step, c.Total(), d.HPWL())
		}
	}
}

// TestWirelenCacheRebuild verifies Rebuild resyncs after out-of-band edits.
func TestWirelenCacheRebuild(t *testing.T) {
	d := wirelenTestDesign(t, 20, 30, 3)
	c := NewWirelenCache(d)
	d.Insts[4].X = 777 // bypass MoveCell
	c.Rebuild()
	for i, n := range d.Nets {
		if math.Float64bits(c.NetHPWL(i)) != math.Float64bits(d.NetHPWL(n)) {
			t.Fatalf("net %d stale after Rebuild", i)
		}
	}
}

// TestWirelenCacheMoveAllocFree asserts MoveCell allocates nothing in steady
// state, as required for the placer inner loop.
func TestWirelenCacheMoveAllocFree(t *testing.T) {
	d := wirelenTestDesign(t, 60, 100, 4)
	c := NewWirelenCache(d)
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		// Alternate spots so both the expansion and recompute paths run.
		x := float64(i%7) * 150
		y := float64(i%5) * 200
		c.MoveCell(i%len(d.Insts), x, y)
		i++
	})
	if allocs != 0 {
		t.Fatalf("MoveCell allocates %v per call, want 0", allocs)
	}
}
