package netlist

import (
	"math/rand"
	"testing"
)

// benchMoveDesign is a mid-size design for wirelength benchmarks.
func benchMoveDesign(b *testing.B) *Design {
	b.Helper()
	return wirelenTestDesign(b, 2000, 3000, 42)
}

// BenchmarkWirelenCacheMove measures one cached single-cell move (the
// detailed placer's inner-loop operation).
func BenchmarkWirelenCacheMove(b *testing.B) {
	d := benchMoveDesign(b)
	c := NewWirelenCache(d)
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.MoveCell(rng.Intn(len(d.Insts)), rng.Float64()*1000, rng.Float64()*1000)
	}
}

// BenchmarkNetHPWL measures one from-scratch per-net recompute, the unit of
// work MoveCell's bbox expansion replaces per incident net.
func BenchmarkNetHPWL(b *testing.B) {
	d := benchMoveDesign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.NetHPWL(d.Nets[i%len(d.Nets)])
	}
}

// BenchmarkFullHPWL measures the full-design recompute a move previously
// implied when the caller wanted a fresh total.
func BenchmarkFullHPWL(b *testing.B) {
	d := benchMoveDesign(b)
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := rng.Intn(len(d.Insts))
		d.Insts[id].X = rng.Float64() * 1000
		d.Insts[id].Y = rng.Float64() * 1000
		_ = d.HPWL()
	}
}
