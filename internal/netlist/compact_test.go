package netlist

import (
	"math"
	"math/rand"
	"testing"
)

// TestCompactHPWLWorkersEquivalent pins the CSR view's equivalence contract:
// per-net and total HPWL from the compact kernels are bit-identical to the
// pointer API, at any worker count, and stay so after positions move.
func TestCompactHPWLWorkersEquivalent(t *testing.T) {
	d := wirelenTestDesign(t, 200, 300, 11)
	c := d.Compact()

	checkAll := func(stage string) {
		t.Helper()
		want := d.HPWL()
		for _, got := range []float64{
			c.HPWL(), c.HPWLWorkers(1), c.HPWLWorkers(4), d.HPWLWorkers(4),
		} {
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("%s: total HPWL %v != pointer-API %v", stage, got, want)
			}
		}
		c.gatherPositions()
		for ni, n := range d.Nets {
			got := c.netHPWL(ni, c.instX, c.instY, c.portX, c.portY)
			if math.Float64bits(got) != math.Float64bits(d.NetHPWL(n)) {
				t.Fatalf("%s: net %d HPWL %v != pointer-API %v", stage, ni, got, d.NetHPWL(n))
			}
		}
	}
	checkAll("initial")

	// The compact view is a topology snapshot: moving cells must not stale it.
	rng := rand.New(rand.NewSource(12))
	for step := 0; step < 50; step++ {
		inst := d.Insts[rng.Intn(len(d.Insts))]
		inst.X = rng.Float64() * 1000
		inst.Y = rng.Float64() * 1000
	}
	checkAll("after moves")
}

// TestCompactInstNetsMatchesNetsOf checks the instance->net CSR against the
// pointer API's NetsOf for every instance: same contents, same order.
func TestCompactInstNetsMatchesNetsOf(t *testing.T) {
	d := wirelenTestDesign(t, 150, 220, 21)
	c := d.Compact()
	for id := range d.Insts {
		want := d.NetsOf(id)
		got := c.InstNets[c.InstStart[id]:c.InstStart[id+1]]
		if len(got) != len(want) {
			t.Fatalf("instance %d: %d nets in CSR, %d in NetsOf", id, len(got), len(want))
		}
		for k, ni := range want {
			if int(got[k]) != ni {
				t.Fatalf("instance %d net %d: CSR %d != NetsOf %d", id, k, got[k], ni)
			}
		}
	}
}

// TestCompactRebuildsAfterTopologyChange checks the generation-stamp
// invalidation: connecting a pin retires the cached view, and the rebuilt
// view sees the new topology.
func TestCompactRebuildsAfterTopologyChange(t *testing.T) {
	d := wirelenTestDesign(t, 40, 30, 31)
	c1 := d.Compact()
	if d.Compact() != c1 {
		t.Fatal("unchanged topology must return the cached Compact")
	}
	n, err := d.AddNet("extra")
	if err != nil {
		t.Fatal(err)
	}
	d.Connect(n, PinRef{Inst: 0, Pin: "Y"})
	d.Connect(n, PinRef{Inst: 1, Pin: "A"})
	c2 := d.Compact()
	if c2 == c1 {
		t.Fatal("topology mutation must retire the cached Compact")
	}
	if got, want := len(c2.NetStart)-1, len(d.Nets); got != want {
		t.Fatalf("rebuilt Compact has %d nets, design has %d", got, want)
	}
	if math.Float64bits(c2.HPWL()) != math.Float64bits(d.HPWL()) {
		t.Fatalf("rebuilt Compact HPWL %v != pointer-API %v", c2.HPWL(), d.HPWL())
	}
}
